package jobs

// JobStore: the persistence layer behind a Manager. The in-memory job
// map is the runtime truth; every state transition writes through, so
// the store always holds the last state each job durably reached and a
// restarted Manager can pick the queue back up (NewManager recovers:
// queued jobs re-queue, running jobs become interrupted).

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// JobStore persists job records for a Manager. Implementations must be
// safe for concurrent use.
type JobStore interface {
	// List loads every persisted job, in no particular order.
	List() ([]*Job, error)
	// Put persists j (keyed by j.ID), replacing any previous record.
	Put(j *Job) error
	// Delete removes a job record. Deleting an unknown ID is not an
	// error.
	Delete(id string) error
}

// ---- in-memory store ----

// MemJobStore is a map-backed JobStore: the write-through contract
// without durability, for tests and for Managers that don't need to
// survive a restart.
type MemJobStore struct {
	mu   sync.Mutex
	jobs map[string]*Job
}

// NewMemJobStore returns an empty in-memory job store.
func NewMemJobStore() *MemJobStore {
	return &MemJobStore{jobs: map[string]*Job{}}
}

// List implements JobStore.
func (s *MemJobStore) List() ([]*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		cp := *j
		out = append(out, &cp)
	}
	return out, nil
}

// Put implements JobStore.
func (s *MemJobStore) Put(j *Job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := *j
	s.jobs[j.ID] = &cp
	return nil
}

// Delete implements JobStore.
func (s *MemJobStore) Delete(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, id)
	return nil
}

// ---- on-disk store ----

// DiskJobStore persists each job as one JSON file under a directory:
// <id>.job, written atomically (temp file + rename, the DiskStore
// idiom) so a crash mid-Put leaves the previous record intact — the job
// store can never hold a half-written record, only the last state the
// job durably reached. Job IDs are generated hex ([a-z0-9-]), so the
// filename mapping is the identity.
type DiskJobStore struct {
	dir string
	// mu serializes writers; readers go straight to the filesystem
	// (rename makes each file's content atomic).
	mu sync.Mutex
}

// jobExt is the persisted-file suffix.
const jobExt = ".job"

// NewDiskJobStore opens (creating if needed) a job store rooted at dir.
func NewDiskJobStore(dir string) (*DiskJobStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("jobstore: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobstore: %w", err)
	}
	return &DiskJobStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *DiskJobStore) Dir() string { return s.dir }

func (s *DiskJobStore) path(id string) string {
	return filepath.Join(s.dir, id+jobExt)
}

// List implements JobStore.
func (s *DiskJobStore) List() ([]*Job, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("jobstore: %w", err)
	}
	var out []*Job
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), jobExt) || strings.HasPrefix(e.Name(), ".") {
			// Temp files and foreign droppings.
			continue
		}
		buf, err := os.ReadFile(filepath.Join(s.dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("jobstore: %w", err)
		}
		var j Job
		if err := json.Unmarshal(buf, &j); err != nil {
			return nil, fmt.Errorf("jobstore: corrupt record %q: %w", e.Name(), err)
		}
		out = append(out, &j)
	}
	return out, nil
}

// Put implements JobStore. Serialization happens before the store lock
// is taken; only the atomic rename that publishes the temp file runs
// under it, so concurrent Puts of one job still serialize into
// complete, last-write-wins files.
func (s *DiskJobStore) Put(j *Job) error {
	buf, err := json.Marshal(j)
	if err != nil {
		return fmt.Errorf("jobstore: %q: %w", j.ID, err)
	}
	tmp, err := os.CreateTemp(s.dir, ".put-*")
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	if _, err := tmp.Write(append(buf, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("jobstore: %q: %w", j.ID, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("jobstore: %q: %w", j.ID, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.Rename(tmp.Name(), s.path(j.ID)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("jobstore: %q: %w", j.ID, err)
	}
	return nil
}

// Delete implements JobStore.
func (s *DiskJobStore) Delete(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.Remove(s.path(id)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("jobstore: %q: %w", id, err)
	}
	return nil
}
