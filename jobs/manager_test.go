package jobs_test

// Scheduler-contract tests for the job manager, run under -race in CI:
// strict priority dispatch order through a single dispatch slot,
// deadline expiry that never consumes a slot, cancellation of queued
// and running jobs, and the restart contract of the DiskJobStore
// (queued jobs re-queue, running jobs come back interrupted).

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pushpull"
	"pushpull/api"
	"pushpull/jobs"
)

// traceAlgo is the test instrument: every run records its tag (the
// Iterations option) in dispatch order, and tags registered with
// traceBlock park until released (or their context ends, returned as
// the context's error so cancellation is observable).
var (
	traceMu    sync.Mutex
	traceOrder []int
	traceGates = map[int]chan struct{}{}
	traceOnce  sync.Once
)

func traceReset() {
	traceMu.Lock()
	defer traceMu.Unlock()
	traceOrder = nil
	traceGates = map[int]chan struct{}{}
}

// traceBlock makes runs tagged tag park until the returned release func
// is called.
func traceBlock(tag int) func() {
	ch := make(chan struct{})
	traceMu.Lock()
	traceGates[tag] = ch
	traceMu.Unlock()
	var once sync.Once
	return func() { once.Do(func() { close(ch) }) }
}

func traceSeen() []int {
	traceMu.Lock()
	defer traceMu.Unlock()
	return append([]int(nil), traceOrder...)
}

type traceAlgo struct{}

func (traceAlgo) Name() string        { return "test-trace" }
func (traceAlgo) Describe() string    { return "test-only: records dispatch order, parks gated tags" }
func (traceAlgo) Caps() pushpull.Caps { return pushpull.Caps{} }
func (traceAlgo) Run(ctx context.Context, w *pushpull.Workload, cfg *pushpull.Config) (*pushpull.Report, error) {
	traceMu.Lock()
	traceOrder = append(traceOrder, cfg.Iterations)
	gate := traceGates[cfg.Iterations]
	traceMu.Unlock()
	if gate != nil {
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return &pushpull.Report{Result: []float64{1}, Stats: pushpull.RunStats{Iterations: 1}}, nil
}

// newJobEngine builds a 1-worker engine (caches off, so every job is a
// real run) with one registered graph "g".
func newJobEngine(t *testing.T) *pushpull.Engine {
	t.Helper()
	traceOnce.Do(func() { pushpull.MustRegister(traceAlgo{}) })
	eng := pushpull.NewEngine(
		pushpull.WithWorkers(1), pushpull.WithShards(1),
		pushpull.WithResultCache(0), pushpull.WithSingleFlight(false),
	)
	g, err := pushpull.ErdosRenyi(64, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterWorkload("g", pushpull.NewWorkload(g)); err != nil {
		t.Fatal(err)
	}
	return eng
}

func traceSpec(tag int, prio jobs.Priority) jobs.Spec {
	return jobs.Spec{
		Graph: "g", Algorithm: "test-trace",
		Options:  api.RunOptions{Iterations: tag},
		Priority: prio,
	}
}

func waitState(t *testing.T, m *jobs.Manager, id string, want jobs.State) *jobs.Job {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		j, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if j.State == want {
			return j
		}
		if j.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("job %s is %s (%s), want %s", id, j.State, j.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestManagerPriorityOrder: with one dispatch slot, a mix of priorities
// submitted while the slot is occupied dispatches in strict order —
// high first, deadline-bearing before deadline-free within a priority,
// FIFO within that — regardless of submission order.
func TestManagerPriorityOrder(t *testing.T) {
	traceReset()
	m, err := jobs.NewManager(newJobEngine(t), jobs.WithParallel(1))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	release := traceBlock(0)
	defer release()
	gate, err := m.Submit(traceSpec(0, jobs.Normal))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, gate.ID, jobs.StateRunning)

	// Submitted deliberately out of dispatch order while the slot is held.
	specs := []jobs.Spec{
		traceSpec(11, jobs.Low),
		traceSpec(21, jobs.Normal),
		traceSpec(31, jobs.High),
		traceSpec(12, jobs.Low),
		traceSpec(22, jobs.Normal),
		traceSpec(32, jobs.High),
	}
	// A deadline-bearing normal job sorts ahead of deadline-free normals
	// even though it was submitted last (deadline far enough to not
	// expire).
	withDeadline := traceSpec(23, jobs.Normal)
	withDeadline.DeadlineMS = 60_000
	specs = append(specs, withDeadline)

	var ids []string
	for _, s := range specs {
		j, err := m.Submit(s)
		if err != nil {
			t.Fatal(err)
		}
		if j.State != jobs.StateQueued {
			t.Fatalf("submitted job state %s, want queued", j.State)
		}
		ids = append(ids, j.ID)
	}
	if st := m.Stats(); st.Queued != len(specs) || st.Running != 1 {
		t.Fatalf("stats %+v, want %d queued and 1 running", st, len(specs))
	}

	release()
	for _, id := range ids {
		j, err := m.Wait(context.Background(), id, time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if j.State != jobs.StateDone {
			t.Fatalf("job %s ended %s (%s), want done", id, j.State, j.Error)
		}
		if j.Result == nil || j.Stats == nil {
			t.Errorf("done job %s has no result/stats", id)
		}
	}

	want := []int{0, 31, 32, 23, 21, 22, 11, 12}
	got := traceSeen()
	if len(got) != len(want) {
		t.Fatalf("dispatch order %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", got, want)
		}
	}
}

// TestManagerDeadlineExpiry: a queued job whose deadline passes while
// every dispatch slot is busy fails promptly with ErrDeadlineExceeded —
// StartedMS stays zero (it never consumed a slot) and the algorithm
// never observes it.
func TestManagerDeadlineExpiry(t *testing.T) {
	traceReset()
	m, err := jobs.NewManager(newJobEngine(t), jobs.WithParallel(1))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	release := traceBlock(0)
	defer release()
	gate, err := m.Submit(traceSpec(0, jobs.Normal))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, gate.ID, jobs.StateRunning)

	doomed := traceSpec(99, jobs.High)
	doomed.DeadlineMS = 50
	j, err := m.Submit(doomed)
	if err != nil {
		t.Fatal(err)
	}
	if j.DeadlineUnixMS == 0 {
		t.Fatal("submitted job carries no absolute deadline")
	}

	// The slot is still held: expiry must be detected by the deadline
	// timer, not by a dispatch that cannot happen.
	final, err := m.Wait(context.Background(), j.ID, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != jobs.StateFailed || final.Error != jobs.ErrDeadlineExceeded.Error() {
		t.Fatalf("expired job: state %s error %q, want failed/%q",
			final.State, final.Error, jobs.ErrDeadlineExceeded.Error())
	}
	if final.StartedMS != 0 {
		t.Errorf("expired job has StartedMS %d; it must never start", final.StartedMS)
	}
	if _, err := m.Result(j.ID); !errors.Is(err, jobs.ErrDeadlineExceeded) {
		t.Errorf("Result(expired) = %v, want ErrDeadlineExceeded", err)
	}

	release()
	for _, tag := range traceSeen() {
		if tag == 99 {
			t.Fatal("deadline-expired job was dispatched to the engine")
		}
	}
}

// TestManagerCancel: canceling a queued job finishes it immediately and
// it never runs; canceling a running job cancels its context and the
// job lands canceled, not done.
func TestManagerCancel(t *testing.T) {
	traceReset()
	m, err := jobs.NewManager(newJobEngine(t), jobs.WithParallel(1))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	release := traceBlock(0)
	defer release()
	running, err := m.Submit(traceSpec(0, jobs.Normal))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, running.ID, jobs.StateRunning)
	queued, err := m.Submit(traceSpec(7, jobs.Normal))
	if err != nil {
		t.Fatal(err)
	}

	if j, err := m.Cancel(queued.ID); err != nil || j.State != jobs.StateCanceled {
		t.Fatalf("cancel queued: %+v, %v; want canceled", j, err)
	}
	if j, err := m.Cancel(running.ID); err != nil || j.State != jobs.StateRunning {
		t.Fatalf("cancel running returned %+v, %v; cancellation lands when the run returns", j, err)
	}
	final, err := m.Wait(context.Background(), running.ID, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != jobs.StateCanceled {
		t.Fatalf("canceled running job ended %s (%s), want canceled", final.State, final.Error)
	}
	if _, err := m.Result(queued.ID); err == nil || errors.Is(err, jobs.ErrNotDone) {
		t.Errorf("Result(canceled) = %v, want a terminal non-done error", err)
	}
	for _, tag := range traceSeen() {
		if tag == 7 {
			t.Fatal("a job canceled while queued was dispatched anyway")
		}
	}
}

// TestManagerRestartRecovery: a DiskJobStore-backed manager that dies
// mid-queue hands its successor the truth — the job that was running
// comes back interrupted, still-queued jobs re-queue and run to done.
func TestManagerRestartRecovery(t *testing.T) {
	traceReset()
	dir := t.TempDir()
	store, err := jobs.NewDiskJobStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	m1, err := jobs.NewManager(newJobEngine(t), jobs.WithStore(store), jobs.WithParallel(1))
	if err != nil {
		t.Fatal(err)
	}
	release := traceBlock(0)
	defer release() // lets m1's parked execute goroutine exit at test end
	running, err := m1.Submit(traceSpec(0, jobs.Normal))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m1, running.ID, jobs.StateRunning)
	var queuedIDs []string
	for _, tag := range []int{41, 42} {
		j, err := m1.Submit(traceSpec(tag, jobs.Normal))
		if err != nil {
			t.Fatal(err)
		}
		queuedIDs = append(queuedIDs, j.ID)
	}
	// Simulated kill: stop the scheduler without releasing the running
	// job. The store still says "running" — exactly what a kill -9 leaves.
	m1.Close()

	m2, err := jobs.NewManager(newJobEngine(t), jobs.WithStore(store), jobs.WithParallel(1))
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	j, err := m2.Get(running.ID)
	if err != nil {
		t.Fatal(err)
	}
	if j.State != jobs.StateInterrupted || j.Error == "" {
		t.Fatalf("recovered mid-run job: %s (%q), want interrupted with a message", j.State, j.Error)
	}
	for _, id := range queuedIDs {
		final, err := m2.Wait(context.Background(), id, time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if final.State != jobs.StateDone {
			t.Fatalf("recovered job %s ended %s (%s), want done", id, final.State, final.Error)
		}
	}
}

// TestManagerBatch: a batch shares one batch ID, lists together, and
// one bad entry rejects the whole batch with nothing enqueued.
func TestManagerBatch(t *testing.T) {
	traceReset()
	m, err := jobs.NewManager(newJobEngine(t), jobs.WithParallel(1))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	batchID, submitted, err := m.SubmitBatch([]jobs.Spec{
		traceSpec(1, jobs.Normal), traceSpec(2, jobs.Normal), traceSpec(3, jobs.Low),
	})
	if err != nil {
		t.Fatal(err)
	}
	if batchID == "" || len(submitted) != 3 {
		t.Fatalf("batch = (%q, %d jobs), want an ID and 3 jobs", batchID, len(submitted))
	}
	for _, j := range submitted {
		if j.BatchID != batchID {
			t.Errorf("job %s carries batch %q, want %q", j.ID, j.BatchID, batchID)
		}
		if _, err := m.Wait(context.Background(), j.ID, time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	list, err := m.List("", batchID)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 3 {
		t.Errorf("batch-filtered list has %d jobs, want 3", len(list))
	}

	_, _, err = m.SubmitBatch([]jobs.Spec{
		traceSpec(4, jobs.Normal),
		{Graph: "g", Algorithm: "nope"},
	})
	if err == nil || !strings.Contains(err.Error(), "batch entry 1") {
		t.Fatalf("bad batch error %v, want it to name entry 1", err)
	}
	if st := m.Stats(); st.Queued+st.Running+st.Done != 3 {
		t.Errorf("failed batch leaked jobs: stats %+v, want only the 3 accepted", st)
	}
}

// TestManagerValidation: submission-time rejections and lifecycle
// plumbing (unknown IDs, closed manager).
func TestManagerValidation(t *testing.T) {
	traceReset()
	m, err := jobs.NewManager(newJobEngine(t), jobs.WithParallel(1))
	if err != nil {
		t.Fatal(err)
	}

	bad := []jobs.Spec{
		{},
		{Graph: "nope", Algorithm: "pr"},
		{Graph: "g", Algorithm: "nope"},
		{Graph: "g", Algorithm: "pr", DeadlineMS: -1},
	}
	for i, s := range bad {
		if _, err := m.Submit(s); err == nil {
			t.Errorf("case %d: Submit(%+v) accepted an invalid spec", i, s)
		}
	}
	if _, _, err := m.SubmitBatch(nil); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := m.Get("j-nope"); !errors.Is(err, jobs.ErrNotFound) {
		t.Errorf("Get(unknown) = %v, want ErrNotFound", err)
	}
	if _, err := m.Result("j-nope"); !errors.Is(err, jobs.ErrNotFound) {
		t.Errorf("Result(unknown) = %v, want ErrNotFound", err)
	}
	if _, err := m.List("bogus", ""); err == nil {
		t.Error("List accepted a bogus state filter")
	}

	m.Close()
	m.Close() // idempotent
	if _, err := m.Submit(traceSpec(1, jobs.Normal)); err == nil {
		t.Error("Submit after Close accepted a job")
	}
}

// TestPriorityJSON: the wire names round-trip and typos are rejected
// rather than silently demoted.
func TestPriorityJSON(t *testing.T) {
	for _, c := range []struct {
		in   string
		want jobs.Priority
	}{
		{`"low"`, jobs.Low}, {`"normal"`, jobs.Normal}, {`"high"`, jobs.High}, {`""`, jobs.Normal},
	} {
		var p jobs.Priority
		if err := json.Unmarshal([]byte(c.in), &p); err != nil || p != c.want {
			t.Errorf("unmarshal %s = (%v, %v), want %v", c.in, p, err, c.want)
		}
		out, err := json.Marshal(c.want)
		if err != nil {
			t.Fatal(err)
		}
		if want := `"` + c.want.String() + `"`; string(out) != want {
			t.Errorf("marshal %v = %s, want %s", c.want, out, want)
		}
	}
	var p jobs.Priority
	if err := json.Unmarshal([]byte(`"urgent"`), &p); err == nil {
		t.Error(`priority "urgent" accepted; typos must be rejected`)
	}
}

// TestDiskJobStore: round-trip, tolerant delete, corruption surfaced,
// foreign files skipped.
func TestDiskJobStore(t *testing.T) {
	dir := t.TempDir()
	s, err := jobs.NewDiskJobStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	j := &jobs.Job{ID: "j-test", State: jobs.StateQueued, SubmittedMS: 42,
		Spec: jobs.Spec{Graph: "g", Algorithm: "pr"}}
	if err := s.Put(j); err != nil {
		t.Fatal(err)
	}
	j.State = jobs.StateDone
	if err := s.Put(j); err != nil {
		t.Fatal(err)
	}
	list, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != "j-test" || list[0].State != jobs.StateDone {
		t.Fatalf("list = %+v, want the one re-put job in its last state", list)
	}

	// Dotfiles (in-flight temp files) and directories are not records.
	if err := os.WriteFile(filepath.Join(dir, ".put-junk"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	if list, err = s.List(); err != nil || len(list) != 1 {
		t.Fatalf("list with foreign entries = (%d, %v), want 1 job", len(list), err)
	}

	if err := s.Delete("j-test"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("j-test"); err != nil {
		t.Fatal("deleting a deleted record must not error:", err)
	}

	if err := os.WriteFile(filepath.Join(dir, "j-bad.job"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.List(); err == nil {
		t.Error("corrupt record silently skipped; recovery must surface it")
	}
}
