// Package jobs turns synchronous engine runs into durable, schedulable
// jobs: the async half of the serving stack. A Manager wraps a
// *pushpull.Engine; Submit returns a job ID immediately and a scheduler
// drains a priority+deadline-aware queue into the engine's existing
// per-shard admission queues. Job state lives behind a JobStore, so a
// worker restart recovers the queue instead of forgetting it: still-
// queued jobs are re-queued, jobs that were mid-run are marked
// interrupted (their partial work is gone with the process).
//
// The scheduling order is strict: higher priority always dispatches
// first; within a priority, earlier deadline first (no deadline sorts
// last); within that, submission order. A job whose deadline passes
// before it reaches a worker slot fails fast with ErrDeadlineExceeded —
// it never occupies a slot, so an overloaded worker sheds exactly the
// work that could no longer be useful.
package jobs

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"

	"pushpull/api"
)

// ErrDeadlineExceeded: the job's deadline passed before it could start
// executing. The scheduler fails such jobs at dispatch time without
// consuming a worker slot; Result returns this error for them.
var ErrDeadlineExceeded = errors.New("jobs: deadline exceeded before the job could run")

// ErrNotFound: no job with the requested ID.
var ErrNotFound = errors.New("jobs: no such job")

// ErrNotDone: the job has no result yet (still queued or running).
var ErrNotDone = errors.New("jobs: job has not finished")

// Priority orders jobs in the scheduler's queue. The zero value is
// Normal, so specs that omit it behave like a plain run.
type Priority int

// Priorities, lowest to highest.
const (
	Low Priority = iota - 1
	Normal
	High
)

// String returns the wire name ("low", "normal", "high").
func (p Priority) String() string {
	switch p {
	case Low:
		return "low"
	case High:
		return "high"
	default:
		return "normal"
	}
}

// MarshalJSON encodes the wire name.
func (p Priority) MarshalJSON() ([]byte, error) {
	return json.Marshal(p.String())
}

// UnmarshalJSON accepts "low", "normal", "high" or the empty string
// (Normal); anything else is rejected so a typo cannot silently demote a
// job.
func (p *Priority) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	switch s {
	case "low":
		*p = Low
	case "", "normal":
		*p = Normal
	case "high":
		*p = High
	default:
		return fmt.Errorf(`jobs: bad priority %q (low, normal, high)`, s)
	}
	return nil
}

// State is a job's lifecycle position.
type State string

// The job lifecycle. queued → running → done/failed/canceled is the
// normal flow; canceled can also follow queued directly, and interrupted
// marks a job a restart found mid-run (the JobStore said running but the
// process that ran it is gone).
const (
	StateQueued      State = "queued"
	StateRunning     State = "running"
	StateDone        State = "done"
	StateFailed      State = "failed"
	StateCanceled    State = "canceled"
	StateInterrupted State = "interrupted"
)

// Terminal reports whether the state is final — no scheduler or worker
// will touch the job again.
func (s State) Terminal() bool {
	switch s {
	case StateDone, StateFailed, StateCanceled, StateInterrupted:
		return true
	}
	return false
}

// valid reports whether s is one of the lifecycle states (used when
// filtering by a client-supplied state string).
func (s State) valid() bool {
	switch s {
	case StateQueued, StateRunning, StateDone, StateFailed, StateCanceled, StateInterrupted:
		return true
	}
	return false
}

// Spec is what a client submits: one run, plus how urgently it matters.
type Spec struct {
	// Graph and Algorithm name a registered workload and a registry
	// algorithm, exactly as in a synchronous run request.
	Graph     string `json:"graph"`
	Algorithm string `json:"algorithm"`
	// Options is the same JSON options projection POST /run takes.
	Options api.RunOptions `json:"options"`
	// Priority orders the job among queued work (default normal).
	Priority Priority `json:"priority,omitempty"`
	// DeadlineMS, when > 0, bounds the job's useful lifetime in
	// milliseconds from submission: a job still queued when it elapses
	// fails with ErrDeadlineExceeded instead of running, and a job
	// running when it elapses is canceled.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// Job is the full record of one submitted run.
type Job struct {
	ID string `json:"id"`
	// BatchID groups jobs submitted together; empty for singles.
	BatchID string `json:"batch_id,omitempty"`
	Spec    Spec   `json:"spec"`
	State   State  `json:"state"`
	// Error is the failure message for failed/canceled/interrupted jobs.
	Error string `json:"error,omitempty"`
	// Result is the api.RunResponse of a done job, marshaled — byte-
	// identical to what the synchronous POST /run would have returned.
	// Status views omit it (GET /jobs/{id}/result serves it).
	Result json.RawMessage `json:"result,omitempty"`
	// Stats is the completed run's stats, duplicated out of Result so
	// status polls see timings without fetching the payload.
	Stats *api.RunStats `json:"stats,omitempty"`
	// Submitted/Started/Finished are unix-millisecond timestamps; zero
	// means the job never reached that point.
	SubmittedMS int64 `json:"submitted_ms"`
	StartedMS   int64 `json:"started_ms,omitempty"`
	FinishedMS  int64 `json:"finished_ms,omitempty"`
	// DeadlineUnixMS is the absolute deadline (unix ms) derived from
	// Spec.DeadlineMS at submission; zero means none. Kept absolute so a
	// restart's recovered queue enforces the original deadline, not a
	// refreshed one.
	DeadlineUnixMS int64 `json:"deadline_unix_ms,omitempty"`
}

// StatusView returns a shallow copy without the (potentially large)
// result payload: the shape status polls and job listings serve.
func (j *Job) StatusView() *Job {
	cp := *j
	cp.Result = nil
	return &cp
}

// newID returns a crypto-random identifier: prefix + 16 hex digits.
func newID(prefix string) string {
	var b [8]byte
	rand.Read(b[:])
	return prefix + hex.EncodeToString(b[:])
}
