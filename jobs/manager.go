package jobs

// The Manager: a priority+deadline-aware scheduler between job
// submission and the engine's per-shard admission queues. Submission is
// O(log n) and returns immediately; a single scheduler goroutine drains
// the queue into at most WithParallel concurrent engine runs, so the
// engine's own backpressure (bounded workers, shard queues) stays the
// real throttle and the job queue absorbs what the synchronous path
// would have shed with 429.
//
// Concurrency shape: the in-memory job map is the runtime truth, guarded
// by mu; every state transition writes through to the JobStore under the
// same critical section (the engine registry's write-through idiom) so
// the store can never disagree with the order of transitions. The
// scheduler wakes on a 1-buffered notify channel — submissions, job
// completions and deadline timers all nudge it; a missed nudge is
// harmless because the channel retains one.

import (
	"container/heap"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"pushpull"
	"pushpull/api"
)

// Manager schedules submitted jobs onto one Engine. Safe for concurrent
// use; build with NewManager.
type Manager struct {
	eng      *pushpull.Engine
	store    JobStore
	parallel int

	mu      sync.Mutex
	jobs    map[string]*Job
	queue   jobHeap
	cancels map[string]context.CancelFunc
	seq     uint64
	closed  bool

	notify chan struct{} // 1-buffered scheduler nudge
	sem    chan struct{} // dispatch slots (cap parallel)
	stop   chan struct{}
	done   chan struct{}
}

// Option configures NewManager.
type Option func(*Manager)

// WithStore makes job state durable: every transition writes through to
// s, and NewManager recovers s's contents — queued jobs re-queue,
// running jobs become interrupted. The default is an in-process
// MemJobStore (no durability).
func WithStore(s JobStore) Option {
	return func(m *Manager) {
		if s != nil {
			m.store = s
		}
	}
}

// WithParallel bounds how many jobs the scheduler dispatches into the
// engine concurrently (default GOMAXPROCS). Keep it at or below the
// engine's worker count when strict priority order matters: a dispatched
// job that merely parks in a shard admission queue is "running" as far
// as the job queue is concerned, so excess parallelism lets low-priority
// jobs leak past a later high-priority submission.
func WithParallel(n int) Option {
	return func(m *Manager) {
		if n > 0 {
			m.parallel = n
		}
	}
}

// NewManager builds a Manager over eng, recovers any jobs its store
// holds, and starts the scheduler.
func NewManager(eng *pushpull.Engine, opts ...Option) (*Manager, error) {
	if eng == nil {
		return nil, fmt.Errorf("jobs: NewManager(nil engine)")
	}
	m := &Manager{
		eng:      eng,
		store:    NewMemJobStore(),
		parallel: runtime.GOMAXPROCS(0),
		jobs:     map[string]*Job{},
		cancels:  map[string]context.CancelFunc{},
		notify:   make(chan struct{}, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, opt := range opts {
		opt(m)
	}
	m.sem = make(chan struct{}, m.parallel)
	if err := m.recover(); err != nil {
		return nil, err
	}
	go m.schedule()
	m.wake()
	return m, nil
}

// recover loads the store's jobs into the runtime map: queued jobs
// re-queue (in submission order, so recovered FIFO ties break as they
// did originally), running jobs are marked interrupted — the process
// that was executing them is gone, and their partial work with it.
func (m *Manager) recover() error {
	persisted, err := m.store.List()
	if err != nil {
		return fmt.Errorf("jobs: recovering store: %w", err)
	}
	sort.Slice(persisted, func(i, k int) bool {
		if persisted[i].SubmittedMS != persisted[k].SubmittedMS {
			return persisted[i].SubmittedMS < persisted[k].SubmittedMS
		}
		return persisted[i].ID < persisted[k].ID
	})
	now := time.Now().UnixMilli()
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, j := range persisted {
		m.jobs[j.ID] = j
		switch j.State {
		case StateQueued:
			m.enqueueLocked(j)
		case StateRunning:
			j.State = StateInterrupted
			j.Error = "worker restarted while the job was running"
			j.FinishedMS = now
			if err := m.persistLocked(j); err != nil {
				return err
			}
		}
	}
	return nil
}

// Submit validates spec, records the job as queued, and returns it
// immediately; the scheduler runs it when its turn comes.
func (m *Manager) Submit(spec Spec) (*Job, error) {
	jobs, err := m.submit([]Spec{spec}, "")
	if err != nil {
		return nil, err
	}
	return jobs[0], nil
}

// SubmitBatch validates every spec and submits them together under one
// batch ID. Validation is all-or-nothing: one bad tuple rejects the
// whole batch with nothing enqueued, so a client never has to hunt down
// the accepted half of a failed submission.
func (m *Manager) SubmitBatch(specs []Spec) (string, []*Job, error) {
	if len(specs) == 0 {
		return "", nil, fmt.Errorf("jobs: empty batch")
	}
	batchID := newID("b-")
	jobs, err := m.submit(specs, batchID)
	if err != nil {
		return "", nil, err
	}
	return batchID, jobs, nil
}

func (m *Manager) submit(specs []Spec, batchID string) ([]*Job, error) {
	for i, spec := range specs {
		if err := m.validate(spec); err != nil {
			if batchID != "" {
				return nil, fmt.Errorf("jobs: batch entry %d: %w", i, err)
			}
			return nil, err
		}
	}
	now := time.Now().UnixMilli()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, fmt.Errorf("jobs: manager closed")
	}
	out := make([]*Job, 0, len(specs))
	for _, spec := range specs {
		j := &Job{
			ID:          newID("j-"),
			BatchID:     batchID,
			Spec:        spec,
			State:       StateQueued,
			SubmittedMS: now,
		}
		if spec.DeadlineMS > 0 {
			j.DeadlineUnixMS = now + spec.DeadlineMS
		}
		m.jobs[j.ID] = j
		m.enqueueLocked(j)
		if err := m.persistLocked(j); err != nil {
			// Unwind this job: accepting it un-persisted would break the
			// restart contract (the job would silently vanish).
			delete(m.jobs, j.ID)
			j.State = StateFailed
			return nil, err
		}
		out = append(out, j.StatusView())
	}
	m.wakeLocked()
	return out, nil
}

// validate rejects a spec the engine could never run: unknown graph or
// algorithm, or options no With* function would accept. Submission-time
// rejection keeps failures synchronous where they are cheap to report.
func (m *Manager) validate(spec Spec) error {
	if spec.Graph == "" || spec.Algorithm == "" {
		return fmt.Errorf(`jobs: "graph" and "algorithm" are required`)
	}
	if _, ok := m.eng.Workload(spec.Graph); !ok {
		return fmt.Errorf("jobs: unknown graph %q", spec.Graph)
	}
	if _, err := pushpull.Lookup(spec.Algorithm); err != nil {
		return err
	}
	if _, err := spec.Options.ToOptions(); err != nil {
		return err
	}
	if spec.DeadlineMS < 0 {
		return fmt.Errorf("jobs: negative deadline_ms %d", spec.DeadlineMS)
	}
	return nil
}

// enqueueLocked pushes j onto the queue (mu held) and arms an expiry
// timer for its deadline so an expired job fails promptly even on an
// idle manager instead of waiting for the next submission to sweep it.
func (m *Manager) enqueueLocked(j *Job) {
	m.seq++
	heap.Push(&m.queue, &queued{job: j, seq: m.seq})
	if j.DeadlineUnixMS > 0 {
		until := time.Until(time.UnixMilli(j.DeadlineUnixMS)) + time.Millisecond
		time.AfterFunc(until, m.expire)
	}
}

// expire sweeps deadline-expired queued jobs on the timer's goroutine.
// It cannot just nudge the scheduler: with every dispatch slot busy the
// scheduler is parked waiting for one, and a job whose deadline passed
// must turn failed promptly — truthfully observable by status polls —
// not when a slot happens to free.
func (m *Manager) expire() {
	m.mu.Lock()
	m.sweepLocked()
	m.mu.Unlock()
	m.wake()
}

// Get returns a snapshot of the job (result payload included).
func (m *Manager) Get(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	cp := *j
	return &cp, nil
}

// Result returns the stored api.RunResponse bytes of a done job. A
// still-pending job returns ErrNotDone; a deadline-expired one returns
// ErrDeadlineExceeded; other non-done terminal states return an error
// carrying the job's failure message.
func (m *Manager) Result(id string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	switch {
	case j.State == StateDone:
		return j.Result, nil
	case !j.State.Terminal():
		return nil, fmt.Errorf("%w: %q is %s", ErrNotDone, id, j.State)
	case j.Error == ErrDeadlineExceeded.Error():
		return nil, fmt.Errorf("%w (job %q)", ErrDeadlineExceeded, id)
	default:
		return nil, fmt.Errorf("jobs: %q %s: %s", id, j.State, j.Error)
	}
}

// Cancel cancels a job: a queued job goes straight to canceled, a
// running one has its context canceled (the state transition lands when
// the run returns). Canceling a terminal job is a no-op. The returned
// snapshot reflects the state after the call.
func (m *Manager) Cancel(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	switch j.State {
	case StateQueued:
		// The heap entry stays; the scheduler skips non-queued entries.
		j.State = StateCanceled
		j.Error = "canceled while queued"
		j.FinishedMS = time.Now().UnixMilli()
		if err := m.persistLocked(j); err != nil {
			return nil, err
		}
	case StateRunning:
		if cancel, ok := m.cancels[id]; ok {
			cancel()
		}
	}
	cp := *j
	return &cp, nil
}

// List returns status snapshots (no result payloads), filtered by state
// and/or batch ID when non-empty, sorted by submission time then ID.
func (m *Manager) List(state State, batchID string) ([]*Job, error) {
	if state != "" && !state.valid() {
		return nil, fmt.Errorf("jobs: bad state filter %q", state)
	}
	m.mu.Lock()
	out := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		if state != "" && j.State != state {
			continue
		}
		if batchID != "" && j.BatchID != batchID {
			continue
		}
		out = append(out, j.StatusView())
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, k int) bool {
		if out[i].SubmittedMS != out[k].SubmittedMS {
			return out[i].SubmittedMS < out[k].SubmittedMS
		}
		return out[i].ID < out[k].ID
	})
	return out, nil
}

// Wait polls until the job reaches a terminal state, returning its final
// snapshot (poll ≤ 0 defaults to 25ms). On context expiry it returns the
// last snapshot seen alongside ctx.Err().
func (m *Manager) Wait(ctx context.Context, id string, poll time.Duration) (*Job, error) {
	if poll <= 0 {
		poll = 25 * time.Millisecond
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		j, err := m.Get(id)
		if err != nil {
			return nil, err
		}
		if j.State.Terminal() {
			return j, nil
		}
		select {
		case <-ctx.Done():
			return j, ctx.Err()
		case <-ticker.C:
		}
	}
}

// Stats is a point-in-time census of the Manager's jobs.
type Stats struct {
	Queued      int `json:"queued"`
	Running     int `json:"running"`
	Done        int `json:"done"`
	Failed      int `json:"failed"`
	Canceled    int `json:"canceled"`
	Interrupted int `json:"interrupted"`
}

// Stats counts jobs by state.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	var s Stats
	for _, j := range m.jobs {
		switch j.State {
		case StateQueued:
			s.Queued++
		case StateRunning:
			s.Running++
		case StateDone:
			s.Done++
		case StateFailed:
			s.Failed++
		case StateCanceled:
			s.Canceled++
		case StateInterrupted:
			s.Interrupted++
		}
	}
	return s
}

// Close stops the scheduler: no further jobs dispatch (queued ones keep
// their state for a successor to recover). Jobs already running are not
// canceled — they finish and persist on their own goroutines. Submit
// fails after Close.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	close(m.stop)
	<-m.done
}

// ---- the scheduler ----

// wake nudges the scheduler; safe from any goroutine, including after
// Close (the nudge is simply never consumed).
func (m *Manager) wake() {
	select {
	case m.notify <- struct{}{}:
	default:
	}
}

// wakeLocked exists to make call sites under mu self-documenting; the
// nudge itself is lock-free.
func (m *Manager) wakeLocked() { m.wake() }

// schedule is the Manager's single scheduler goroutine: wait for a
// nudge, then drain the queue into dispatch slots until either runs out.
func (m *Manager) schedule() {
	defer close(m.done)
	for {
		select {
		case <-m.stop:
			return
		case <-m.notify:
		}
		for {
			// A dispatch slot first, then a job: acquiring in this order
			// means a popped job always has a slot waiting, so nothing is
			// ever marked running and then re-queued.
			select {
			case m.sem <- struct{}{}:
			case <-m.stop:
				return
			}
			j, ctx, cancel := m.next()
			if j == nil {
				<-m.sem
				break
			}
			go m.execute(j, ctx, cancel)
		}
	}
}

// next pops the highest-priority runnable job, marking it running and
// registering its CancelFunc. Deadline-expired jobs met along the way
// fail with ErrDeadlineExceeded without consuming the caller's dispatch
// slot; entries canceled while queued are dropped silently (their state
// already moved on). Returns nil when nothing is runnable.
func (m *Manager) next() (*Job, context.Context, context.CancelFunc) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked()
	for m.queue.Len() > 0 {
		j := heap.Pop(&m.queue).(*queued).job
		if j.State != StateQueued {
			continue
		}
		now := time.Now()
		j.State = StateRunning
		j.StartedMS = now.UnixMilli()
		// The job context derives from Background, not any request: the
		// submitting client is long gone by design. Cancellation comes
		// from exactly two places — Cancel(id) and the job's deadline —
		// so context.Canceled on the run unambiguously means canceled.
		var ctx context.Context
		var cancel context.CancelFunc
		if j.DeadlineUnixMS > 0 {
			ctx, cancel = context.WithDeadline(context.Background(), time.UnixMilli(j.DeadlineUnixMS))
		} else {
			ctx, cancel = context.WithCancel(context.Background())
		}
		m.cancels[j.ID] = cancel
		if err := m.persistLocked(j); err != nil {
			// The store is the restart contract; run anyway — the run
			// path must not depend on disk health — but keep the error
			// visible on the job.
			j.Error = err.Error()
		}
		return j, ctx, cancel
	}
	return nil, nil, nil
}

// sweepLocked fails every queued job whose deadline has passed (mu
// held). Pop order alone cannot catch these: an expired low-priority job
// buried under live high-priority work would otherwise sit "queued"
// indefinitely.
func (m *Manager) sweepLocked() {
	now := time.Now().UnixMilli()
	for _, q := range m.queue {
		j := q.job
		if j.State == StateQueued && j.DeadlineUnixMS > 0 && now >= j.DeadlineUnixMS {
			j.State = StateFailed
			j.Error = ErrDeadlineExceeded.Error()
			j.FinishedMS = now
			if err := m.persistLocked(j); err != nil {
				j.Error = fmt.Sprintf("%s (persist: %s)", ErrDeadlineExceeded.Error(), err)
			}
		}
	}
}

// execute runs one dispatched job to completion on the engine and
// records the outcome. Runs on its own goroutine, holding one dispatch
// slot.
func (m *Manager) execute(j *Job, ctx context.Context, cancel context.CancelFunc) {
	defer func() {
		cancel()
		<-m.sem
		m.wake()
	}()
	rep, err := m.runSpec(ctx, j.Spec)
	now := time.Now().UnixMilli()
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.cancels, j.ID)
	j.FinishedMS = now
	switch {
	case err == nil:
		resp := api.BuildResponse(j.Spec.Graph, rep)
		raw, merr := marshalResult(resp)
		if merr != nil {
			j.State = StateFailed
			j.Error = merr.Error()
			break
		}
		j.State = StateDone
		j.Error = ""
		j.Result = raw
		stats := resp.Stats
		j.Stats = &stats
	case errors.Is(err, context.Canceled):
		j.State = StateCanceled
		j.Error = "canceled while running"
	default:
		// Deadline expiry mid-run lands here too: unlike pre-run expiry
		// it did consume a slot, and the distinction stays visible in the
		// timestamps (StartedMS set) and message.
		j.State = StateFailed
		j.Error = err.Error()
	}
	if err := m.persistLocked(j); err != nil && j.Error == "" {
		j.Error = err.Error()
	}
}

// runSpec resolves and runs one spec on the engine.
func (m *Manager) runSpec(ctx context.Context, spec Spec) (*pushpull.Report, error) {
	wl, ok := m.eng.Workload(spec.Graph)
	if !ok {
		// Validated at submission, but the graph may have been dropped
		// while the job queued.
		return nil, fmt.Errorf("jobs: graph %q is no longer registered", spec.Graph)
	}
	opts, err := spec.Options.ToOptions()
	if err != nil {
		return nil, err
	}
	if spec.Options.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(spec.Options.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	return m.eng.Run(ctx, wl, spec.Algorithm, opts...)
}

// persistLocked writes j through to the store (mu held, the engine
// registry's write-through idiom: map and store must agree on the order
// of transitions).
func (m *Manager) persistLocked(j *Job) error {
	//pushpull:allow lockheld write-through under mu by design: job map and store must observe state transitions in the same order
	if err := m.store.Put(j); err != nil {
		return fmt.Errorf("jobs: persisting %q: %w", j.ID, err)
	}
	return nil
}

// marshalResult encodes a run response for storage.
func marshalResult(resp api.RunResponse) ([]byte, error) {
	raw, err := json.Marshal(resp)
	if err != nil {
		return nil, fmt.Errorf("jobs: encoding result: %w", err)
	}
	return raw, nil
}

// ---- the priority queue ----

// queued is one heap entry. The job pointer is shared with m.jobs;
// entries whose job left the queued state (canceled) are lazily dropped
// at pop time.
type queued struct {
	job *Job
	seq uint64
}

// jobHeap orders by priority (high first), then deadline (earliest
// first, none last), then submission sequence (FIFO).
type jobHeap []*queued

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, k int) bool {
	a, b := h[i], h[k]
	if a.job.Spec.Priority != b.job.Spec.Priority {
		return a.job.Spec.Priority > b.job.Spec.Priority
	}
	ad, bd := a.job.DeadlineUnixMS, b.job.DeadlineUnixMS
	if ad != bd {
		if ad == 0 {
			return false
		}
		if bd == 0 {
			return true
		}
		return ad < bd
	}
	return a.seq < b.seq
}
func (h jobHeap) Swap(i, k int) { h[i], h[k] = h[k], h[i] }
func (h *jobHeap) Push(x any)   { *h = append(*h, x.(*queued)) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}
