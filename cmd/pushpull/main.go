// Command pushpull is the CLI over the unified push/pull engine: it runs
// any registered algorithm on any suite workload through the public
// pushpull.Run facade, and regenerates any table or figure of the
// HPDC'17 paper "To Push or To Pull: On Reducing Communication and
// Synchronization in Graph Computations" from this reproduction.
//
// Usage:
//
//	pushpull [flags] run <algorithm>   # one engine run via the facade
//	pushpull [flags] serve             # HTTP serving front over an Engine
//	pushpull [flags] route             # cluster router over serve workers
//	pushpull jobs <sub>                # async-job client: submit/status/
//	                                   # result/cancel/wait over /jobs
//	pushpull [flags] <experiment-id>|all|list
//
//	pushpull run pr -dir pull          # PageRank, pulling
//	pushpull run pr -directed          # directed PageRank (§4.8, both views)
//	pushpull -t 8 run sssp -graph rca -dir auto
//	pushpull run pr -probes            # instrumented run + counter bill
//	pushpull run dist-pr-mp -ranks 32  # §6.3 simulated cluster
//	pushpull serve -addr :8080 -graphs rmat,rca
//	pushpull serve -shards 4 -cache-ttl 5m -store /var/lib/pushpull
//	pushpull route -addr :8090 -workers http://h1:8080,http://h2:8080
//	pushpull table3                    # PR and TC push-vs-pull times
//	pushpull all                       # every experiment, paper order
//
// Global flags:
//
//	-t <n>      worker threads (default: GOMAXPROCS)
//	-scale <f>  workload scale multiplier (default 1.0)
//	-seed <n>   generator seed (default 42)
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pushpull"
	"pushpull/cluster"
	"pushpull/internal/harness"
	"pushpull/jobs"
	"pushpull/serve"
)

func main() {
	threads := flag.Int("t", 0, "worker threads (0 = GOMAXPROCS)")
	scale := flag.Float64("scale", 1.0, "workload scale multiplier")
	seed := flag.Uint64("seed", 42, "generator seed")
	flag.Usage = usage
	flag.Parse()

	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	arg := flag.Arg(0)
	switch arg {
	case "run":
		runAlgorithm(flag.Args()[1:], *threads, *scale, *seed)
		return
	case "serve":
		serveEngine(flag.Args()[1:], *scale, *seed)
		return
	case "route":
		routeCluster(flag.Args()[1:])
		return
	case "jobs":
		jobsCommand(flag.Args()[1:])
		return
	case "list":
		printCatalog(os.Stdout)
		return
	case "all":
		cfg := harness.Config{Threads: *threads, Scale: *scale, Seed: *seed, Out: os.Stdout}
		for _, e := range harness.All() {
			if err := e.Run(cfg); err != nil {
				fmt.Fprintf(os.Stderr, "pushpull: %s: %v\n", e.ID, err)
				os.Exit(1)
			}
			fmt.Println()
		}
		return
	default:
		cfg := harness.Config{Threads: *threads, Scale: *scale, Seed: *seed, Out: os.Stdout}
		e, ok := harness.ByID(arg)
		if !ok {
			fmt.Fprintf(os.Stderr, "pushpull: unknown experiment %q (valid: %v, or 'run'/'all'/'list')\n",
				arg, harness.IDs())
			os.Exit(2)
		}
		if err := e.Run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "pushpull: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
	}
}

// runAlgorithm is the facade path: build the workload, run one algorithm
// through pushpull.Run, print the uniform report.
func runAlgorithm(args []string, threads int, scale float64, seed uint64) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	graphID := fs.String("graph", "rmat", "suite workload id (see graphgen)")
	directed := fs.Bool("directed", false, "run on a directed workload (the suite graph deterministically oriented)")
	weightedF := fs.Bool("weighted", false, "attach edge weights to the workload (implied by sssp/mst)")
	dir := fs.String("dir", "auto", "update direction: push, pull, auto")
	iters := fs.Int("iters", 0, "iteration bound: pr iterations / gc max-iters (0 = algorithm default)")
	source := fs.Int("source", 0, "source vertex for traversals")
	sourcesCSV := fs.String("sources", "", "comma-separated source vertices for bc (default: 8 sampled)")
	delta := fs.Float64("delta", 0, "Δ-stepping bucket width (0 = heuristic)")
	probes := fs.Bool("probes", false, "instrumented run: print the event-counter bill")
	ranks := fs.Int("ranks", 0, "simulated cluster size for dist-* algorithms (0 = default)")
	timeout := fs.Duration("timeout", 0, "abort the run after this long (0 = none)")
	// Accept both "run pr -dir pull" and "run -dir pull pr".
	algo := ""
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		algo, args = args[0], args[1:]
	}
	fs.Parse(args)
	if algo == "" && fs.NArg() == 1 {
		algo = fs.Arg(0)
	} else if algo == "" || fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "usage: pushpull [flags] run <algorithm> [run-flags]\nAlgorithms: %s\n",
			strings.Join(pushpull.Algorithms(), ", "))
		os.Exit(2)
	}

	var d pushpull.Direction
	switch *dir {
	case "push":
		d = pushpull.Push
	case "pull":
		d = pushpull.Pull
	case "auto":
		d = pushpull.Auto
	default:
		fmt.Fprintf(os.Stderr, "pushpull: bad -dir %q (push, pull, auto)\n", *dir)
		os.Exit(2)
	}

	// Validate the algorithm before paying for workload construction.
	if _, err := pushpull.Lookup(algo); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// sssp and mst declare NeedsWeights, so they imply -weighted; every
	// suite graph supports a weighted build.
	wantWeights := *weightedF || algo == "sssp" || algo == "mst"
	var g *pushpull.Graph
	var err error
	if wantWeights {
		g, err = pushpull.NamedWeightedGraph(*graphID, scale, seed)
	} else {
		g, err = pushpull.NamedGraph(*graphID, scale, seed)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pushpull: %v\n", err)
		os.Exit(1)
	}

	// Map the flags onto a Workload handle declaring the graph kind; the
	// engine validates it against the algorithm's capabilities up front.
	var wopts []pushpull.WorkloadOption
	if wantWeights {
		wopts = append(wopts, pushpull.AsWeighted())
	}
	if *directed {
		if g, err = orientDirected(g); err != nil {
			fmt.Fprintf(os.Stderr, "pushpull: %v\n", err)
			os.Exit(1)
		}
		wopts = append(wopts, pushpull.AsDirected())
	}
	workload := pushpull.NewWorkload(g, wopts...)
	m, avgDeg := g.UndirectedM(), g.AvgDegree()
	if *directed {
		m = g.M() // arcs, not undirected pairs
		avgDeg = float64(g.M()) / float64(g.N())
	}
	fmt.Printf("workload %s (%s): n=%d m=%d d̄=%.1f\n",
		*graphID, workload.Kind(), g.N(), m, avgDeg)

	var sources []pushpull.V
	if *sourcesCSV != "" {
		for _, f := range strings.Split(*sourcesCSV, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				fmt.Fprintf(os.Stderr, "pushpull: bad -sources entry %q: %v\n", f, err)
				os.Exit(2)
			}
			sources = append(sources, pushpull.V(v))
		}
	} else if algo == "bc" {
		// Exact all-sources Brandes is O(n·m); sample like the paper's
		// BC experiments do unless sources are pinned explicitly.
		for v := 0; v < g.N() && v < 8; v++ {
			sources = append(sources, pushpull.V(v))
		}
		fmt.Printf("bc: sampling %d sources (pin with -sources v1,v2,...)\n", len(sources))
	}

	ctx := context.Background()
	if *timeout > 0 {
		if *probes || strings.HasPrefix(algo, "dist-") {
			// Instrumented and simulated-cluster runs are deterministic
			// passes that never poll ctx (see WithProbes / the dist docs).
			fmt.Fprintln(os.Stderr, "pushpull: warning: -timeout has no effect on probed or dist-* runs (they always run to completion)")
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	start := time.Now()
	opts := []pushpull.Option{
		pushpull.WithDirection(d),
		pushpull.WithThreads(threads),
		pushpull.WithIterations(*iters),
		pushpull.WithMaxIters(*iters),
		pushpull.WithSource(pushpull.V(*source)),
		pushpull.WithSources(sources),
		pushpull.WithDelta(*delta),
		pushpull.WithRanks(*ranks),
	}
	if *probes {
		opts = append(opts, pushpull.WithProbes())
	}
	rep, err := pushpull.Run(ctx, workload, algo, opts...)
	if err != nil && rep == nil {
		// Capability mismatches are typed: print the one-line verdict and
		// a usable hint, not a stack of internals.
		switch {
		case errors.Is(err, pushpull.ErrNeedsWeights):
			fmt.Fprintf(os.Stderr, "pushpull: %s needs edge weights; rerun with -weighted\n", algo)
		case errors.Is(err, pushpull.ErrDirectedUnsupported):
			fmt.Fprintf(os.Stderr, "pushpull: %s does not support directed workloads; drop -directed\n", algo)
		case errors.Is(err, pushpull.ErrProbesUnsupported):
			fmt.Fprintf(os.Stderr, "pushpull: %s has no instrumented variant; drop -probes\n", algo)
		case errors.Is(err, pushpull.ErrPartitionAwareUnsupported):
			fmt.Fprintf(os.Stderr, "pushpull: %s does not support partition awareness here: %v\n", algo, err)
		case errors.Is(err, pushpull.ErrBadOption):
			fmt.Fprintln(os.Stderr, err) // already carries the pushpull: prefix
		default:
			fmt.Fprintln(os.Stderr, err) // facade errors carry their own prefix
		}
		os.Exit(1)
	}
	if err != nil {
		fmt.Printf("aborted after %v: %v\n", time.Since(start).Round(time.Millisecond), err)
		fmt.Println(rep.Summary())
		os.Exit(1)
	}
	fmt.Println(rep.Summary())
	if strings.HasPrefix(algo, "dist-") {
		fmt.Println("(the reported time is the simulated cluster makespan)")
	}
	if rep.Counters != nil {
		fmt.Print(rep.Counters) // the event bill of probed and dist-* runs
	}
}

// serveEngine starts the HTTP serving front: one long-lived Engine with
// sharded bounded worker pools, single-flight dedup, a TTL-capable LRU
// result cache and an optional persistent graph store, exposed via
// pushpull/serve.
func serveEngine(args []string, scale float64, seed uint64) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	workers := fs.Int("workers", 0, "worker-pool size per shard (0 = GOMAXPROCS)")
	cache := fs.Int("cache", pushpull.DefaultCacheCapacity, "result-cache capacity in entries (0 disables)")
	cacheTTL := fs.Duration("cache-ttl", 0, "result-cache entry lifetime, e.g. 30s, 5m (0 = no expiry)")
	shards := fs.Int("shards", 1, "shard executors: graphs are partitioned across independent admission queues")
	store := fs.String("store", "", "persist uploaded graphs to this directory (restored on restart)")
	maxMemory := fs.Int64("max-memory", 0, "per-graph memory budget in bytes: stored graphs whose CSR would exceed it are persisted in the out-of-core block format and served block-sequentially off disk (0 = unlimited; requires -store)")
	graphs := fs.String("graphs", "", "comma-separated suite graph ids to preload (e.g. rmat,rca; weights attached)")
	maxQueue := fs.Int("max-queue", 1024, "per-shard admission-queue bound: excess runs are shed with 429 + Retry-After (0 = queue unboundedly)")
	maxUpload := fs.Int64("max-upload", serve.MaxGraphBytes, "PUT /graphs body limit in bytes; larger uploads get 413")
	jobsParallel := fs.Int("jobs-parallel", 0, "async job dispatch parallelism (0 = GOMAXPROCS; keep at or below -workers for strict priority order)")
	fs.Parse(args)
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "usage: pushpull [flags] serve [-addr host:port] [-workers n] [-cache n] [-cache-ttl d] [-shards n] [-max-queue n] [-max-upload bytes] [-jobs-parallel n] [-store dir] [-max-memory bytes] [-graphs ids]\n")
		os.Exit(2)
	}
	// Negative values would otherwise silently mean "unbounded" or
	// "disabled"; a sign error deserves a verdict, not a surprise.
	badFlag := func(name, hint string) {
		fmt.Fprintf(os.Stderr, "pushpull: serve: -%s must not be negative (%s)\n", name, hint)
		os.Exit(2)
	}
	if *workers < 0 {
		badFlag("workers", "0 means GOMAXPROCS workers per shard")
	}
	if *cache < 0 {
		badFlag("cache", "0 disables the result cache")
	}
	if *cacheTTL < 0 {
		badFlag("cache-ttl", "0 means cached results never expire")
	}
	if *shards < 0 {
		badFlag("shards", "1 means a single executor")
	}
	if *maxQueue < 0 {
		badFlag("max-queue", "0 means an unbounded queue")
	}
	if *maxUpload < 0 {
		badFlag("max-upload", "bytes; the default is 1 GiB")
	}
	if *jobsParallel < 0 {
		badFlag("jobs-parallel", "0 means GOMAXPROCS dispatch slots")
	}
	if *maxMemory < 0 {
		badFlag("max-memory", "0 means no per-graph budget")
	}
	if *maxMemory > 0 && *store == "" {
		fmt.Fprintf(os.Stderr, "pushpull: serve: -max-memory requires -store (the out-of-core block files live in the store directory)\n")
		os.Exit(2)
	}
	if *cacheTTL > 0 && *cache == 0 {
		fmt.Fprintf(os.Stderr, "pushpull: serve: -cache-ttl %v has no effect with -cache 0 (the result cache is disabled)\n", *cacheTTL)
		os.Exit(2)
	}

	engOpts := []pushpull.EngineOption{pushpull.WithResultCache(*cache)}
	if *workers > 0 {
		engOpts = append(engOpts, pushpull.WithWorkers(*workers))
	}
	if *cacheTTL > 0 {
		engOpts = append(engOpts, pushpull.WithCacheTTL(*cacheTTL))
	}
	if *shards > 1 {
		engOpts = append(engOpts, pushpull.WithShards(*shards))
	}
	if *maxQueue > 0 {
		engOpts = append(engOpts, pushpull.WithQueueLimit(*maxQueue))
	}
	eng := pushpull.NewEngine(engOpts...)

	if *store != "" {
		var dsOpts []pushpull.DiskOption
		if *maxMemory > 0 {
			dsOpts = append(dsOpts, pushpull.WithBlockThreshold(*maxMemory))
		}
		ds, err := pushpull.NewDiskStore(*store, dsOpts...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pushpull: serve: opening store: %v\n", err)
			os.Exit(1)
		}
		if err := eng.AttachStore(ds); err != nil {
			fmt.Fprintf(os.Stderr, "pushpull: serve: restoring store: %v\n", err)
			os.Exit(1)
		}
		if restored := eng.WorkloadNames(); len(restored) > 0 {
			fmt.Printf("restored %d graph(s) from %s: %s\n", len(restored), *store, strings.Join(restored, ", "))
		}
	}

	if *graphs != "" {
		for _, id := range strings.Split(*graphs, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			// Weighted builds serve every algorithm, sssp/mst included.
			g, err := pushpull.NamedWeightedGraph(id, scale, seed)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pushpull: preload %q: %v\n", id, err)
				os.Exit(1)
			}
			w := pushpull.NewWorkload(g, pushpull.AsWeighted())
			if err := eng.RegisterWorkload(id, w); err != nil {
				fmt.Fprintf(os.Stderr, "pushpull: preload %q: %v\n", id, err)
				os.Exit(1)
			}
			fmt.Printf("preloaded %s (%s): n=%d m=%d\n", id, w.Kind(), g.N(), g.UndirectedM())
		}
	}

	// The async job queue: durable next to the graph store when one is
	// configured (DiskStore ignores subdirectories, so <store>/jobs is
	// safe ground), in-memory otherwise.
	var jobStore jobs.JobStore
	if *store != "" {
		js, err := jobs.NewDiskJobStore(filepath.Join(*store, "jobs"))
		if err != nil {
			fmt.Fprintf(os.Stderr, "pushpull: serve: opening job store: %v\n", err)
			os.Exit(1)
		}
		jobStore = js
	}
	mgrOpts := []jobs.Option{jobs.WithStore(jobStore)}
	if *jobsParallel > 0 {
		mgrOpts = append(mgrOpts, jobs.WithParallel(*jobsParallel))
	}
	mgr, err := jobs.NewManager(eng, mgrOpts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pushpull: serve: recovering jobs: %v\n", err)
		os.Exit(1)
	}
	if js := mgr.Stats(); js.Queued > 0 || js.Interrupted > 0 {
		fmt.Printf("recovered jobs: %d re-queued, %d interrupted\n", js.Queued, js.Interrupted)
	}

	handler := serve.New(eng, serve.WithMaxUpload(*maxUpload), serve.WithJobManager(mgr))
	srv := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// A long-lived front must shed stalled clients: without these a
		// trickled header or never-finished upload pins its goroutine
		// and connection forever.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	effWorkers := *workers
	if effWorkers <= 0 {
		effWorkers = runtime.GOMAXPROCS(0) // the NewEngine default pool bound
	}
	effShards := *shards
	if effShards < 1 {
		effShards = 1
	}
	fmt.Printf("serving %d algorithms on http://%s (shards=%d workers/shard=%d cache=%d ttl=%v store=%q)\n",
		len(pushpull.Algorithms()), *addr, effShards, effWorkers, *cache, *cacheTTL, *store)
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "pushpull: serve: %v\n", err)
		os.Exit(1)
	case sig := <-sigc:
		fmt.Printf("caught %v, draining\n", sig)
		// Drain first: queued (not-yet-admitted) runs fail with 503
		// immediately, so Shutdown only waits on runs actually holding a
		// worker slot instead of racing an immobile queue. The job
		// manager stops last — queued jobs keep their durable state for
		// the next process to recover.
		handler.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "pushpull: shutdown: %v\n", err)
			os.Exit(1)
		}
		mgr.Close()
	}
}

// routeCluster starts the cluster tier: a router process speaking the
// serve API, fanning requests out over a fleet of `pushpull serve`
// worker base URLs with content-hash rendezvous placement, R-way upload
// replication, health-checked failover and epoch-fenced invalidation.
func routeCluster(args []string) {
	fs := flag.NewFlagSet("route", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8090", "listen address")
	workersCSV := fs.String("workers", "", "comma-separated worker base URLs (required, e.g. http://h1:8080,http://h2:8080)")
	replicas := fs.Int("replicas", 2, "replication factor R: each uploaded graph lives on R workers")
	retry := fs.Int("retry", 3, "extra run attempts after the first, rotating through the graph's replicas")
	retryBase := fs.Duration("retry-base", 50*time.Millisecond, "first retry backoff (doubles per attempt, capped at 1s)")
	healthInterval := fs.Duration("health-interval", 2*time.Second, "background health-probe period")
	healthTimeout := fs.Duration("health-timeout", time.Second, "per-probe timeout")
	advisor := fs.String("direction-advisor", "off", "§6.3 cost-model advice per uploaded graph: off, annotate (X-Cluster-Direction-Advice header), force (rewrite auto directions)")
	maxUpload := fs.Int64("max-upload", serve.MaxGraphBytes, "PUT /graphs body limit in bytes; larger uploads get 413")
	mutateTimeout := fs.Duration("mutate-timeout", 0, "per-worker deadline for upload/delete fan-outs (0 = the 30s default)")
	fs.Parse(args)
	if fs.NArg() > 0 || *workersCSV == "" {
		fmt.Fprintf(os.Stderr, "usage: pushpull route -workers url1,url2,... [-addr host:port] [-replicas r] [-retry n] [-retry-base d] [-health-interval d] [-health-timeout d] [-mutate-timeout d] [-direction-advisor off|annotate|force] [-max-upload bytes]\n")
		os.Exit(2)
	}
	var workers []string
	for _, w := range strings.Split(*workersCSV, ",") {
		if w = strings.TrimSpace(w); w != "" {
			workers = append(workers, w)
		}
	}
	// cluster.New would quietly paper over sign errors with its defaults;
	// a typo on the command line deserves a verdict instead.
	badFlag := func(name, hint string) {
		fmt.Fprintf(os.Stderr, "pushpull: route: -%s must not be negative (%s)\n", name, hint)
		os.Exit(2)
	}
	if *replicas <= 0 {
		fmt.Fprintf(os.Stderr, "pushpull: route: -replicas must be at least 1 (each graph needs a home)\n")
		os.Exit(2)
	}
	if *retry < 0 {
		badFlag("retry", "0 means a single attempt per run")
	}
	if *retryBase < 0 {
		badFlag("retry-base", "0 means the 50ms default")
	}
	if *healthInterval < 0 {
		badFlag("health-interval", "0 means the 2s default")
	}
	if *healthTimeout < 0 {
		badFlag("health-timeout", "0 means the 1s default")
	}
	if *mutateTimeout < 0 {
		badFlag("mutate-timeout", "0 means the 30s default")
	}
	if *maxUpload < 0 {
		badFlag("max-upload", "bytes; the default is 1 GiB")
	}
	if *replicas > len(workers) {
		// Not fatal: the router caps R at the fleet size per upload and
		// counts the event, so the operator can see it in /stats too.
		fmt.Fprintf(os.Stderr, "pushpull: route: warning: -replicas %d exceeds the %d configured worker(s); replication will be capped at the fleet size (counted as replicas_capped in /stats)\n",
			*replicas, len(workers))
	}
	rt, err := cluster.New(cluster.Config{
		Workers:        workers,
		Replicas:       *replicas,
		Retries:        *retry,
		RetryBase:      *retryBase,
		HealthInterval: *healthInterval,
		HealthTimeout:  *healthTimeout,
		MutateTimeout:  *mutateTimeout,
		Advisor:        *advisor,
		MaxUpload:      *maxUpload,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pushpull: route: %v\n", err)
		os.Exit(2)
	}
	rt.Start(context.Background())
	defer rt.Close()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           rt,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	fmt.Printf("routing over %d worker(s) on http://%s (replicas=%d retry=%d advisor=%s)\n",
		len(workers), *addr, *replicas, *retry, *advisor)
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "pushpull: route: %v\n", err)
		os.Exit(1)
	case sig := <-sigc:
		fmt.Printf("caught %v, draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "pushpull: shutdown: %v\n", err)
			os.Exit(1)
		}
	}
}

// ---- jobs: the async-client subcommands ----

// jobsCommand dispatches `pushpull jobs <sub>`: thin HTTP clients over
// the /jobs endpoints of a serve worker or cluster router.
func jobsCommand(args []string) {
	if len(args) == 0 {
		jobsUsage()
		os.Exit(2)
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "submit":
		jobsSubmit(rest)
	case "status", "result":
		jobsGet(sub, rest)
	case "cancel":
		jobsCancel(rest)
	case "wait":
		jobsWait(rest)
	default:
		fmt.Fprintf(os.Stderr, "pushpull: jobs: unknown subcommand %q\n", sub)
		jobsUsage()
		os.Exit(2)
	}
}

func jobsUsage() {
	fmt.Fprint(os.Stderr, `usage: pushpull jobs <subcommand> [flags]

  submit [-addr url] [-priority low|normal|high] [-deadline d]
         [-dir push|pull|auto] [-iters n] [-source v]
         <graph> <algorithm>           submit one job, print its ID
  submit [-addr url] [...] -batch g1:a1,g2:a2,...
                                       submit a batch (one job ID per line;
                                       the batch ID goes to stderr)
  status [-addr url] <job-id>          print the job's status JSON
  result [-addr url] <job-id>          print the stored run result
  cancel [-addr url] <job-id>          cancel a queued or running job
  wait   [-addr url] [-timeout d] [-poll d] <job-id> [job-id ...]
                                       poll until terminal; exit 0 only
                                       if every job ended done
`)
}

// jobsClient is the shared HTTP client of the jobs subcommands; generous
// enough for a slow router hop, bounded so a dead server fails fast.
var jobsClient = &http.Client{Timeout: 30 * time.Second}

// jobsFail prints an HTTP-level failure and exits.
func jobsFail(context string, err error) {
	fmt.Fprintf(os.Stderr, "pushpull: jobs: %s: %v\n", context, err)
	os.Exit(1)
}

// jobsDo issues one request and returns the body, exiting on transport
// errors; HTTP-level failures (≥ 400) print the server's error body and
// exit unless okAccepted admits 202.
func jobsDo(method, url string, body []byte) []byte {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		jobsFail(method+" "+url, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := jobsClient.Do(req)
	if err != nil {
		jobsFail(method+" "+url, err)
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(io.LimitReader(resp.Body, 1<<26))
	if err != nil {
		jobsFail("reading response", err)
	}
	if resp.StatusCode >= 400 {
		fmt.Fprintf(os.Stderr, "pushpull: jobs: %s %s: HTTP %d: %s", method, url, resp.StatusCode, buf)
		os.Exit(1)
	}
	return buf
}

func jobsSubmit(args []string) {
	fs := flag.NewFlagSet("jobs submit", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "serve worker or cluster router base URL")
	batch := fs.String("batch", "", "comma-separated graph:algorithm pairs submitted as one batch")
	priority := fs.String("priority", "normal", "job priority: low, normal, high")
	deadline := fs.Duration("deadline", 0, "job deadline from now (0 = none); expired jobs fail without running")
	dir := fs.String("dir", "auto", "update direction: push, pull, auto")
	iters := fs.Int("iters", 0, "iteration bound (0 = algorithm default)")
	source := fs.Int("source", 0, "source vertex for traversals")
	fs.Parse(args)
	switch *priority {
	case "low", "normal", "high":
	default:
		fmt.Fprintf(os.Stderr, "pushpull: jobs: bad -priority %q (low, normal, high)\n", *priority)
		os.Exit(2)
	}
	if *deadline < 0 {
		fmt.Fprintln(os.Stderr, "pushpull: jobs: -deadline must not be negative")
		os.Exit(2)
	}
	// The request body is assembled as a raw map so the CLI exercises
	// the same wire shapes a curl user would write.
	spec := func(graph, algo string) map[string]any {
		m := map[string]any{"graph": graph, "algorithm": algo, "priority": *priority}
		if *deadline > 0 {
			m["deadline_ms"] = deadline.Milliseconds()
		}
		opts := map[string]any{}
		if *dir != "" && *dir != "auto" {
			opts["direction"] = *dir
		}
		if *iters > 0 {
			opts["iterations"] = *iters
		}
		if *source > 0 {
			opts["source"] = *source
		}
		if len(opts) > 0 {
			m["options"] = opts
		}
		return m
	}
	var payload map[string]any
	if *batch != "" {
		if fs.NArg() > 0 {
			fmt.Fprintln(os.Stderr, "pushpull: jobs submit: -batch and positional graph/algorithm are mutually exclusive")
			os.Exit(2)
		}
		var specs []map[string]any
		for _, pair := range strings.Split(*batch, ",") {
			graph, algo, ok := strings.Cut(strings.TrimSpace(pair), ":")
			if !ok || graph == "" || algo == "" {
				fmt.Fprintf(os.Stderr, "pushpull: jobs submit: bad -batch entry %q (want graph:algorithm)\n", pair)
				os.Exit(2)
			}
			specs = append(specs, spec(graph, algo))
		}
		payload = map[string]any{"batch": specs}
	} else {
		if fs.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: pushpull jobs submit [flags] <graph> <algorithm>  (or -batch g1:a1,g2:a2,...)")
			os.Exit(2)
		}
		payload = spec(fs.Arg(0), fs.Arg(1))
	}
	body, err := json.Marshal(payload)
	if err != nil {
		jobsFail("encoding request", err)
	}
	resp := jobsDo(http.MethodPost, *addr+"/jobs", body)
	if *batch != "" {
		var br struct {
			BatchID string `json:"batch_id"`
			Jobs    []struct {
				ID string `json:"id"`
			} `json:"jobs"`
		}
		if err := json.Unmarshal(resp, &br); err != nil {
			jobsFail("decoding batch response", err)
		}
		fmt.Fprintf(os.Stderr, "batch %s (%d jobs)\n", br.BatchID, len(br.Jobs))
		for _, j := range br.Jobs {
			fmt.Println(j.ID)
		}
		return
	}
	var j struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(resp, &j); err != nil {
		jobsFail("decoding response", err)
	}
	fmt.Println(j.ID)
}

func jobsGet(sub string, args []string) {
	fs := flag.NewFlagSet("jobs "+sub, flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "serve worker or cluster router base URL")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintf(os.Stderr, "usage: pushpull jobs %s [-addr url] <job-id>\n", sub)
		os.Exit(2)
	}
	path := "/jobs/" + fs.Arg(0)
	if sub == "result" {
		path += "/result"
	}
	os.Stdout.Write(jobsDo(http.MethodGet, *addr+path, nil))
}

func jobsCancel(args []string) {
	fs := flag.NewFlagSet("jobs cancel", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "serve worker or cluster router base URL")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pushpull jobs cancel [-addr url] <job-id>")
		os.Exit(2)
	}
	os.Stdout.Write(jobsDo(http.MethodDelete, *addr+"/jobs/"+fs.Arg(0), nil))
}

func jobsWait(args []string) {
	fs := flag.NewFlagSet("jobs wait", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "serve worker or cluster router base URL")
	timeout := fs.Duration("timeout", time.Minute, "give up after this long")
	poll := fs.Duration("poll", 200*time.Millisecond, "status poll interval")
	fs.Parse(args)
	if fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: pushpull jobs wait [-addr url] [-timeout d] [-poll d] <job-id> [job-id ...]")
		os.Exit(2)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	ticker := time.NewTicker(*poll)
	defer ticker.Stop()
	allDone := true
	for _, id := range fs.Args() {
		for {
			buf := jobsDo(http.MethodGet, *addr+"/jobs/"+id, nil)
			var j struct {
				State string `json:"state"`
			}
			if err := json.Unmarshal(buf, &j); err != nil {
				jobsFail("decoding status", err)
			}
			if jobs.State(j.State).Terminal() {
				fmt.Printf("%s %s\n", id, j.State)
				if jobs.State(j.State) != jobs.StateDone {
					allDone = false
				}
				break
			}
			select {
			case <-ctx.Done():
				fmt.Fprintf(os.Stderr, "pushpull: jobs wait: timed out; %s is still %s\n", id, j.State)
				os.Exit(1)
			case <-ticker.C:
			}
		}
	}
	if !allDone {
		os.Exit(1)
	}
}

// orientDirected derives a directed graph from an undirected suite graph
// by keeping one arc per undirected edge. The orientation is picked by
// endpoint-sum parity — deterministic, but (unlike always low→high) not a
// DAG by construction, so rank can circulate.
func orientDirected(g *pushpull.Graph) (*pushpull.Graph, error) {
	b := pushpull.NewBuilder(g.N()).Directed()
	for v := pushpull.V(0); int(v) < g.N(); v++ {
		ws := g.NeighborWeights(v)
		for i, u := range g.Neighbors(v) {
			if u < v {
				continue // visit each undirected edge once
			}
			from, to := v, u
			if (int(v)+int(u))%2 == 1 {
				from, to = u, v
			}
			if ws != nil {
				b.AddEdgeW(from, to, ws[i])
			} else {
				b.AddEdge(from, to)
			}
		}
	}
	return b.Build()
}

// printCatalog lists every registered algorithm and experiment; shared
// by "pushpull list" and the usage text.
func printCatalog(w io.Writer) {
	fmt.Fprintln(w, "Algorithms (pushpull run <name>; caps in brackets):")
	for _, name := range pushpull.Algorithms() {
		a, _ := pushpull.Lookup(name)
		fmt.Fprintf(w, "  %-18s %s [%s]\n", name, a.Describe(), a.Caps())
	}
	fmt.Fprintln(w, "\nExperiments:")
	for _, e := range harness.All() {
		fmt.Fprintf(w, "  %-8s %-10s %s\n", e.ID, e.Paper, e.Title)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: pushpull [flags] run <algorithm> | serve | route | jobs <sub> | <experiment-id>|all|list

Runs any push/pull algorithm through the unified engine API, serves the
engine over HTTP (pushpull serve), routes a cluster of serve workers
(pushpull route), drives async jobs on either (pushpull jobs
submit|status|result|cancel|wait), or regenerates the tables and figures
of "To Push or To Pull" (HPDC'17).

`)
	printCatalog(os.Stderr)
	fmt.Fprintf(os.Stderr, "\nFlags:\n")
	flag.PrintDefaults()
}
