// Command pushpull regenerates any table or figure of the HPDC'17 paper
// "To Push or To Pull: On Reducing Communication and Synchronization in
// Graph Computations" from this reproduction.
//
// Usage:
//
//	pushpull [flags] <experiment-id>|all|list
//
//	pushpull table3            # PR and TC push-vs-pull times
//	pushpull -t 8 -scale 2 fig1
//	pushpull all               # every experiment, paper order
//
// Flags:
//
//	-t <n>      worker threads (default: GOMAXPROCS)
//	-scale <f>  workload scale multiplier (default 1.0)
//	-seed <n>   generator seed (default 42)
package main

import (
	"flag"
	"fmt"
	"os"

	"pushpull/internal/harness"
)

func main() {
	threads := flag.Int("t", 0, "worker threads (0 = GOMAXPROCS)")
	scale := flag.Float64("scale", 1.0, "workload scale multiplier")
	seed := flag.Uint64("seed", 42, "generator seed")
	flag.Usage = usage
	flag.Parse()

	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	cfg := harness.Config{Threads: *threads, Scale: *scale, Seed: *seed, Out: os.Stdout}
	arg := flag.Arg(0)
	switch arg {
	case "list":
		for _, e := range harness.All() {
			fmt.Printf("%-8s %-10s %s\n", e.ID, e.Paper, e.Title)
		}
		return
	case "all":
		for _, e := range harness.All() {
			if err := e.Run(cfg); err != nil {
				fmt.Fprintf(os.Stderr, "pushpull: %s: %v\n", e.ID, err)
				os.Exit(1)
			}
			fmt.Println()
		}
		return
	default:
		e, ok := harness.ByID(arg)
		if !ok {
			fmt.Fprintf(os.Stderr, "pushpull: unknown experiment %q (valid: %v, or 'all'/'list')\n",
				arg, harness.IDs())
			os.Exit(2)
		}
		if err := e.Run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "pushpull: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: pushpull [flags] <experiment-id>|all|list

Regenerates the tables and figures of "To Push or To Pull" (HPDC'17).

Experiments:
`)
	for _, e := range harness.All() {
		fmt.Fprintf(os.Stderr, "  %-8s %-10s %s\n", e.ID, e.Paper, e.Title)
	}
	fmt.Fprintf(os.Stderr, "\nFlags:\n")
	flag.PrintDefaults()
}
