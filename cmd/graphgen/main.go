// Command graphgen generates the synthetic workload graphs of the
// reproduction suite through the public pushpull API and writes them as
// portable edge lists, or prints their Table 2 statistics.
//
// Usage:
//
//	graphgen [flags] <suite-id>        # orc, pok, ljn, am, rca, rmat, er
//	graphgen -stats <suite-id>         # print n, m, d̄, d̂, D
//	graphgen -o orc.el -weights orc    # write a weighted edge list
package main

import (
	"flag"
	"fmt"
	"os"

	"pushpull"
)

func main() {
	out := flag.String("o", "", "output file (default: stdout)")
	scale := flag.Float64("scale", 1.0, "workload scale multiplier")
	seed := flag.Uint64("seed", 42, "generator seed")
	weights := flag.Bool("weights", false, "attach uniform edge weights in [1,100)")
	stats := flag.Bool("stats", false, "print Table 2 statistics instead of edges")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: graphgen [flags] <suite-id>\n\nSuite graphs:\n")
		for _, s := range pushpull.SuiteGraphs() {
			fmt.Fprintf(os.Stderr, "  %-6s %s\n", s.ID, s.Describe)
		}
		fmt.Fprintf(os.Stderr, "\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	name := flag.Arg(0)

	var g *pushpull.Graph
	var err error
	if *weights {
		g, err = pushpull.NamedWeightedGraph(name, *scale, *seed)
	} else {
		g, err = pushpull.NamedGraph(name, *scale, *seed)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
		os.Exit(1)
	}

	if *stats {
		fmt.Println(pushpull.ComputeStats(g))
		return
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	// Suite graphs are undirected by construction; writing through the
	// Workload handle states that and skips WriteEdgeList's per-arc
	// symmetry detection.
	if err := pushpull.WriteWorkload(w, pushpull.NewWorkload(g)); err != nil {
		fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
		os.Exit(1)
	}
}
