// Command benchdiff compares two tracked bench trajectory files and
// prints per-kernel ns/edge deltas. By default it is report-only: the
// exit status does not depend on the deltas, so CI can surface
// regressions in the job log without gating merges on noisy timing.
// With -gate <pct> it exits nonzero when any single-thread plain-variant
// row regresses by more than pct percent — the plain rows are the
// off-switch baseline the acceptance criteria protect, and at one
// thread they are the least noisy rows in the file, so they are the
// only ones worth failing a build over (multithread rows ride the
// scheduler and stay report-only). The
// variance bounds keep the gate honest: when both files carry medians,
// a row gates only if the min-of-reps AND the median regress past the
// threshold (a real regression moves the whole distribution; scheduler
// noise rarely moves both), and a row whose median sits more than 50%
// above its own minimum is reported but never gates.
//
//	go run ./cmd/benchdiff -old BENCH_pr6.json -new BENCH_pr9.json
//	go run ./cmd/benchdiff -old BENCH_pr10_smoke.json -new /tmp/smoke.json -gate 25
//
// Both schema generations are accepted: pre-PR9 files carry one
// top-level graph and bare (algorithm, direction) kernel rows; newer
// files are multi-graph, multi-thread and carry a layout variant per
// row. Old rows normalize to variant "plain" on the top-level graph at
// the top-level GOMAXPROCS, so the baseline-to-baseline comparison is
// always well-defined.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

type graphEntry struct {
	ID string  `json:"id"`
	N  int     `json:"n"`
	M  int64   `json:"m"`
	S  float64 `json:"scale"`
}

// kernelRow carries the union of both schema generations; absent fields
// decode to zero values and are filled in by normalize.
type kernelRow struct {
	Graph     string  `json:"graph"`
	Algorithm string  `json:"algorithm"`
	Direction string  `json:"direction"`
	Variant   string  `json:"variant"`
	Threads   int     `json:"threads"`
	ElapsedNS int64   `json:"elapsed_ns"`
	MedianNS  int64   `json:"median_ns"`
	NSPerEdge float64 `json:"ns_per_edge"`
}

// noisy reports whether a row's variance bound disqualifies it from
// gating: the median sits more than 50% above the recorded minimum.
// Rows from files without medians (pre-PR10) are never noisy.
func (k kernelRow) noisy() bool {
	return k.MedianNS > 0 && k.ElapsedNS > 0 &&
		float64(k.MedianNS) > 1.5*float64(k.ElapsedNS)
}

type benchFile struct {
	PR         string       `json:"pr"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Graph      *graphEntry  `json:"graph"`  // pre-PR9 schema
	Graphs     []graphEntry `json:"graphs"` // PR9+ schema
	Kernels    []kernelRow  `json:"kernels"`
}

// key identifies a comparable row across files.
type key struct {
	graph, algo, dir, variant string
	threads                   int
}

func load(path string) (*benchFile, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(buf, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	normalize(&f)
	return &f, nil
}

// normalize lifts pre-PR9 rows into the current shape.
func normalize(f *benchFile) {
	defaultGraph := ""
	if f.Graph != nil {
		defaultGraph = f.Graph.ID
	} else if len(f.Graphs) == 1 {
		defaultGraph = f.Graphs[0].ID
	}
	for i := range f.Kernels {
		k := &f.Kernels[i]
		if k.Graph == "" {
			k.Graph = defaultGraph
		}
		if k.Variant == "" {
			k.Variant = "plain"
		}
		if k.Threads == 0 {
			k.Threads = f.GOMAXPROCS
		}
	}
}

func index(f *benchFile) map[key]kernelRow {
	m := make(map[key]kernelRow, len(f.Kernels))
	for _, k := range f.Kernels {
		m[key{k.Graph, k.Algorithm, k.Direction, k.Variant, k.Threads}] = k
	}
	return m
}

func main() {
	oldPath := flag.String("old", "BENCH_pr6.json", "baseline trajectory file")
	newPath := flag.String("new", "BENCH_pr9.json", "candidate trajectory file")
	gate := flag.Float64("gate", 0, "fail (exit 1) when a plain-variant row regresses by more than this percent; 0 keeps the report-only behavior")
	flag.Parse()

	oldFile, err := load(*oldPath)
	if err != nil {
		fatal("%v", err)
	}
	newFile, err := load(*newPath)
	if err != nil {
		fatal("%v", err)
	}

	oldRows := index(oldFile)
	var keys []key
	for _, k := range newFile.Kernels {
		keys = append(keys, key{k.Graph, k.Algorithm, k.Direction, k.Variant, k.Threads})
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.graph != b.graph {
			return a.graph < b.graph
		}
		if a.algo != b.algo {
			return a.algo < b.algo
		}
		if a.dir != b.dir {
			return a.dir < b.dir
		}
		if a.threads != b.threads {
			return a.threads < b.threads
		}
		return a.variant < b.variant
	})

	newRows := index(newFile)
	fmt.Printf("ns/edge: %s (pr%s) -> %s (pr%s)\n", *oldPath, oldFile.PR, *newPath, newFile.PR)
	fmt.Printf("%-6s %-6s %-5s %-7s %3s %12s %12s %9s\n",
		"graph", "algo", "dir", "variant", "t", "old", "new", "delta")
	matched, unmatched := 0, 0
	var regressions []string
	for _, k := range keys {
		nk := newRows[k]
		ok, found := oldRows[k]
		if !found {
			unmatched++
			fmt.Printf("%-6s %-6s %-5s %-7s %3d %12s %12.2f %9s\n",
				k.graph, k.algo, k.dir, k.variant, k.threads, "-", nk.NSPerEdge, "new")
			continue
		}
		matched++
		delta := 100 * (nk.NSPerEdge - ok.NSPerEdge) / ok.NSPerEdge
		note := ""
		if *gate > 0 && k.variant == "plain" && k.threads == 1 && delta > *gate {
			switch {
			case ok.noisy() || nk.noisy():
				note = "  (noisy, not gated)"
			case ok.MedianNS > 0 && nk.MedianNS > 0 &&
				100*float64(nk.MedianNS-ok.MedianNS)/float64(ok.MedianNS) <= *gate:
				// The minimum regressed but the median did not: the
				// distribution has not moved, only its best sample.
				note = "  (median holds, not gated)"
			default:
				note = "  REGRESSION"
				regressions = append(regressions, fmt.Sprintf(
					"%s/%s/%s t=%d: %.2f -> %.2f ns/edge (%+.1f%% > %.0f%%)",
					k.graph, k.algo, k.dir, k.threads, ok.NSPerEdge, nk.NSPerEdge, delta, *gate))
			}
		}
		fmt.Printf("%-6s %-6s %-5s %-7s %3d %12.2f %12.2f %+8.1f%%%s\n",
			k.graph, k.algo, k.dir, k.variant, k.threads, ok.NSPerEdge, nk.NSPerEdge, delta, note)
	}
	fmt.Printf("%d row(s) compared, %d new row(s) without a baseline\n", matched, unmatched)
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d plain-variant regression(s) beyond %.0f%%:\n", len(regressions), *gate)
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "  %s\n", r)
		}
		os.Exit(1)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchdiff: "+format+"\n", args...)
	os.Exit(1)
}
