// Command pushpull-lint runs the repo's invariant analyzers (atomicmix,
// capshonesty, ctxloop, kernelalloc, lockheld — see internal/analysis)
// over Go packages. It works two ways:
//
//	pushpull-lint ./...                        # standalone, package patterns
//	go vet -vettool=$(which pushpull-lint) ./... # as cmd/go's vet tool
//
// The vettool mode speaks cmd/go's unit-checker protocol directly
// (x/tools' unitchecker isn't vendorable offline): cmd/go probes the
// tool with -V=full for a cache-busting version string and with -flags
// for its flag surface, then invokes it once per package with the path
// of a JSON config file describing the compilation unit.
//
// Exit status: 0 clean, 2 diagnostics reported, 1 operational error.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"pushpull/internal/analysis"
	"pushpull/internal/analysis/driver"
	"pushpull/internal/analysis/framework"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("pushpull-lint", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	vFlag := fs.String("V", "", "print version and exit (cmd/go probes with -V=full)")
	flagsFlag := fs.Bool("flags", false, "print the tool's analyzer flags as JSON (cmd/go probe)")
	listFlag := fs.Bool("analyzers", false, "list the registered analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pushpull-lint [packages]\n       go vet -vettool=$(which pushpull-lint) [packages]\n\nSuppress a finding with a `%s <analyzer> <why>` comment on the\nflagged line or the line above it.\n\n", framework.AllowDirective)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}

	switch {
	case *vFlag != "":
		// cmd/go hashes this line into the build cache key, so it must
		// change whenever the tool's behavior does — hash the binary.
		fmt.Printf("pushpull-lint version devel buildID=%s\n", selfID())
		return 0
	case *flagsFlag:
		// No per-analyzer flags; cmd/go wants a JSON list.
		fmt.Println("[]")
		return 0
	case *listFlag:
		for _, a := range analysis.All() {
			alias := ""
			if len(a.Aliases) > 0 {
				alias = " (alias: " + strings.Join(a.Aliases, ", ") + ")"
			}
			fmt.Printf("%s%s\n    %s\n", a.Name, alias, a.Doc)
		}
		return 0
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runVetUnit(rest[0])
	}
	return runStandalone(rest)
}

// selfID hashes the running executable for the -V=full identity line.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}

// runStandalone loads package patterns via the go command and analyzes
// them.
func runStandalone(patterns []string) int {
	pkgs, err := driver.Load("", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pushpull-lint: %v\n", err)
		return 1
	}
	exit := 0
	for _, pkg := range pkgs {
		diags, err := pkg.Analyze(analysis.All())
		if err != nil {
			fmt.Fprintf(os.Stderr, "pushpull-lint: %s: %v\n", pkg.Path, err)
			return 1
		}
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
			exit = 2
		}
	}
	return exit
}

// vetConfig is the JSON unit description cmd/go hands a -vettool (see
// cmd/go/internal/work's vet action); fields the tool doesn't need are
// accepted and ignored by the decoder.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoVersion    string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string
	ImportMap    map[string]string
	PackageFile  map[string]string
	Standard     map[string]bool
	PackageVetx  map[string]string
	VetxOnly     bool
	VetxOutput   string

	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes one compilation unit described by a vet config.
func runVetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pushpull-lint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "pushpull-lint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// cmd/go expects the facts file regardless of the verdict; this suite
	// exports none, so an empty file satisfies the protocol.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "pushpull-lint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	pkg, err := driver.LoadVetUnit(driver.VetUnit{
		ImportPath:  cfg.ImportPath,
		GoFiles:     cfg.GoFiles,
		ImportMap:   cfg.ImportMap,
		PackageFile: cfg.PackageFile,
	})
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "pushpull-lint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	diags, err := pkg.Analyze(analysis.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "pushpull-lint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	exit := 0
	for _, d := range diags {
		// file:line:col: message — the shape cmd/vet relays.
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", d.Pos, d.Message, d.Analyzer)
		exit = 2
	}
	return exit
}
