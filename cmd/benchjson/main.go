// Command benchjson seeds and extends the repo's tracked perf
// trajectory: it runs every shared-memory registry algorithm in both
// directions on a suite workload, measures the serving layers (cached,
// coalesced and uncached Engine runs), and writes one machine-readable
// JSON file — BENCH_pr<N>.json — so perf claims land as numbers in the
// tree instead of prose in PR messages.
//
//	go run ./cmd/benchjson -out BENCH_pr6.json
//	go run ./cmd/benchjson -scale 0.1 -reps 1 -out /tmp/bench.json  # CI smoke
//
// Per (algorithm, direction) the file records the kernel's Stats.Elapsed
// (best of -reps runs — workload construction, transposes and PA splits
// are excluded by construction, they are memoized on the Workload
// handle) and ns/edge, the normalization the paper's tables use.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"pushpull"
)

type kernelEntry struct {
	Algorithm  string  `json:"algorithm"`
	Direction  string  `json:"direction"`
	Iterations int     `json:"iterations"`
	ElapsedNS  int64   `json:"elapsed_ns"`
	NSPerEdge  float64 `json:"ns_per_edge"`
}

type engineEntry struct {
	UncachedNSPerOp  int64   `json:"uncached_ns_per_op"`
	CachedNSPerOp    int64   `json:"cached_ns_per_op"`
	CoalescedNSPerOp int64   `json:"coalesced_ns_per_op"`
	CoalescedRatio   float64 `json:"coalesced_ratio"`
}

type graphEntry struct {
	ID    string  `json:"id"`
	Scale float64 `json:"scale"`
	Seed  uint64  `json:"seed"`
	N     int     `json:"n"`
	M     int64   `json:"m"`
}

type benchFile struct {
	PR            string        `json:"pr"`
	GeneratedUnix int64         `json:"generated_unix"`
	Go            string        `json:"go"`
	GOMAXPROCS    int           `json:"gomaxprocs"`
	Graph         graphEntry    `json:"graph"`
	Kernels       []kernelEntry `json:"kernels"`
	Engine        engineEntry   `json:"engine"`
}

func main() {
	out := flag.String("out", "BENCH_pr6.json", "output file")
	pr := flag.String("pr", "6", "PR number this trajectory point belongs to")
	graphID := flag.String("graph", "rmat", "suite workload id")
	scale := flag.Float64("scale", 1.0, "workload scale multiplier")
	seed := flag.Uint64("seed", 42, "generator seed")
	reps := flag.Int("reps", 3, "runs per (algorithm, direction); the best is recorded")
	iters := flag.Int("iters", 20, "pr iteration count")
	flag.Parse()

	g, err := pushpull.NamedWeightedGraph(*graphID, *scale, *seed)
	if err != nil {
		fatal("workload: %v", err)
	}
	w := pushpull.NewWorkload(g, pushpull.AsWeighted())
	file := benchFile{
		PR:            *pr,
		GeneratedUnix: time.Now().Unix(),
		Go:            runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Graph:         graphEntry{ID: *graphID, Scale: *scale, Seed: *seed, N: w.N(), M: w.M()},
	}

	ctx := context.Background()
	algorithms := []string{"pr", "tc", "bfs", "sssp", "bc", "gc", "gc-fe", "gc-cr", "mst"}
	for _, algo := range algorithms {
		for _, dir := range []pushpull.Direction{pushpull.Push, pushpull.Pull} {
			opts := []pushpull.Option{pushpull.WithDirection(dir)}
			if algo == "pr" {
				opts = append(opts, pushpull.WithIterations(*iters))
			}
			if algo == "bc" {
				// Exact Brandes is O(n·m): sample sources like the
				// paper's BC runs (and the CLI default) do.
				var sources []pushpull.V
				for v := 0; v < w.N() && v < 8; v++ {
					sources = append(sources, pushpull.V(v))
				}
				opts = append(opts, pushpull.WithSources(sources))
			}
			best := int64(0)
			iterations := 0
			skipped := false
			for r := 0; r < *reps; r++ {
				rep, err := pushpull.Run(ctx, w, algo, opts...)
				if err != nil {
					fmt.Fprintf(os.Stderr, "benchjson: skipping %s/%v: %v\n", algo, dir, err)
					skipped = true
					break
				}
				if e := int64(rep.Stats.Elapsed); best == 0 || e < best {
					best = e
					iterations = rep.Stats.Iterations
				}
			}
			if skipped {
				continue
			}
			file.Kernels = append(file.Kernels, kernelEntry{
				Algorithm:  algo,
				Direction:  dirName(dir),
				Iterations: iterations,
				ElapsedNS:  best,
				NSPerEdge:  float64(best) / float64(w.M()),
			})
		}
	}

	file.Engine = engineNumbers(ctx, w, *iters, *reps)

	buf, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fatal("encoding: %v", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal("writing %s: %v", *out, err)
	}
	fmt.Printf("wrote %s: %d kernel points on %s (n=%d m=%d)\n",
		*out, len(file.Kernels), *graphID, file.Graph.N, file.Graph.M)
}

// engineNumbers measures what the serving layers buy: a real kernel per
// request (uncached), an LRU hit per request (cached), and a flood of
// identical concurrent requests deduplicated by single-flight
// (coalesced). Wall time per op, not Stats.Elapsed — the serving layers'
// overhead and savings are exactly what the kernel clock cannot see.
func engineNumbers(ctx context.Context, w *pushpull.Workload, iters, reps int) engineEntry {
	opts := []pushpull.Option{pushpull.WithDirection(pushpull.Pull), pushpull.WithIterations(iters)}
	var out engineEntry

	uncached := pushpull.NewEngine(pushpull.WithResultCache(0), pushpull.WithSingleFlight(false))
	best := time.Duration(0)
	for r := 0; r < reps; r++ {
		start := time.Now()
		if _, err := uncached.Run(ctx, w, "pr", opts...); err != nil {
			fatal("engine uncached: %v", err)
		}
		if e := time.Since(start); best == 0 || e < best {
			best = e
		}
	}
	out.UncachedNSPerOp = int64(best)

	cached := pushpull.NewEngine()
	if _, err := cached.Run(ctx, w, "pr", opts...); err != nil {
		fatal("engine cache warm: %v", err)
	}
	const hits = 1000
	start := time.Now()
	for i := 0; i < hits; i++ {
		if _, err := cached.Run(ctx, w, "pr", opts...); err != nil {
			fatal("engine cached: %v", err)
		}
	}
	out.CachedNSPerOp = int64(time.Since(start)) / hits

	coalescing := pushpull.NewEngine(pushpull.WithResultCache(0))
	const floodWorkers, floodOps = 8, 4
	var wg sync.WaitGroup
	start = time.Now()
	for i := 0; i < floodWorkers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < floodOps; j++ {
				if _, err := coalescing.Run(ctx, w, "pr", opts...); err != nil {
					fmt.Fprintf(os.Stderr, "benchjson: coalesced run: %v\n", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	total := floodWorkers * floodOps
	out.CoalescedNSPerOp = int64(time.Since(start)) / int64(total)
	out.CoalescedRatio = float64(coalescing.Stats().Coalesced) / float64(total)
	return out
}

func dirName(d pushpull.Direction) string {
	if d == pushpull.Pull {
		return "pull"
	}
	return "push"
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}
