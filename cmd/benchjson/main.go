// Command benchjson seeds and extends the repo's tracked perf
// trajectory: it runs every shared-memory registry algorithm in both
// directions on a suite of workloads, measures the serving layers
// (cached, coalesced and uncached Engine runs), and writes one
// machine-readable JSON file — BENCH_pr<N>.json — so perf claims land
// as numbers in the tree instead of prose in PR messages.
//
//	go run ./cmd/benchjson -out BENCH_pr9.json
//	go run ./cmd/benchjson -scale 0.1 -reps 1 -validate -out /tmp/bench.json  # CI smoke
//
// Every kernel row is self-describing: it records its graph, thread
// count (GOMAXPROCS is pinned per row), layout variant (plain,
// degree-sorted, hub-cached, out-of-core, or combinations — the
// off-switch baseline is the "plain" row), the kernel's Stats.Elapsed
// (minimum over -reps runs, with the median carried alongside as the
// variance bound; workload construction, transposes, permutations and
// hub splits are excluded by construction, they are memoized on the
// Workload handle), ns/edge — the normalization the paper's tables use
// — and the peak RSS observed while the row ran. With -validate each
// layout variant's payload is cross-checked against the plain kernel's
// before the row is recorded.
//
// The out_of_core section is the tentpole RSS evidence: per graph, the
// same pull PageRank runs once over the in-memory CSR and once over a
// buffered block-file handle with the in-memory graph released, and the
// file records both absolute peak RSS values next to the estimated CSR
// footprint. The payloads must agree to 1e-9 or the tool fails.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"pushpull"
)

type kernelEntry struct {
	Graph        string `json:"graph"`
	Algorithm    string `json:"algorithm"`
	Direction    string `json:"direction"`
	Variant      string `json:"variant"`
	DegreeSorted bool   `json:"degree_sorted"`
	HubCache     int    `json:"hub_cache"`
	OutOfCore    bool   `json:"out_of_core,omitempty"`
	Threads      int    `json:"threads"`
	GOMAXPROCS   int    `json:"gomaxprocs"`
	Iterations   int    `json:"iterations"`
	Reps         int    `json:"reps"`
	ElapsedNS    int64  `json:"elapsed_ns"`
	// MedianNS bounds the run-to-run variance next to the minimum: a
	// row whose median sits far above its minimum is noisy, and diff
	// tooling can weigh its deltas accordingly.
	MedianNS     int64   `json:"median_ns"`
	NSPerEdge    float64 `json:"ns_per_edge"`
	PeakRSSBytes int64   `json:"peak_rss_bytes"`
}

// oocEntry is one graph's out-of-core RSS evidence: identical pull
// PageRank payloads from the in-memory CSR and from a buffered block
// file, with the absolute peak RSS of each phase. The out-of-core peak
// excludes the O(m) adjacency by construction — only the O(n) vertex
// state and one block per worker are resident.
type oocEntry struct {
	Graph             string  `json:"graph"`
	Algorithm         string  `json:"algorithm"`
	N                 int     `json:"n"`
	M                 int64   `json:"m"`
	CSRBytes          int64   `json:"csr_bytes"`
	InMemoryPeakRSS   int64   `json:"in_memory_peak_rss_bytes"`
	OutOfCorePeakRSS  int64   `json:"out_of_core_peak_rss_bytes"`
	InMemoryElapsedNS int64   `json:"in_memory_elapsed_ns"`
	OutOfCoreElapsed  int64   `json:"out_of_core_elapsed_ns"`
	MaxRankDiff       float64 `json:"max_rank_diff"`
}

type engineEntry struct {
	UncachedNSPerOp  int64   `json:"uncached_ns_per_op"`
	CachedNSPerOp    int64   `json:"cached_ns_per_op"`
	CoalescedNSPerOp int64   `json:"coalesced_ns_per_op"`
	CoalescedRatio   float64 `json:"coalesced_ratio"`
}

type graphEntry struct {
	ID    string  `json:"id"`
	Scale float64 `json:"scale"`
	Seed  uint64  `json:"seed"`
	N     int     `json:"n"`
	M     int64   `json:"m"`
}

type benchFile struct {
	PR            string        `json:"pr"`
	GeneratedUnix int64         `json:"generated_unix"`
	Go            string        `json:"go"`
	GOMAXPROCS    int           `json:"gomaxprocs"`
	Graphs        []graphEntry  `json:"graphs"`
	Kernels       []kernelEntry `json:"kernels"`
	OutOfCore     []oocEntry    `json:"out_of_core"`
	Engine        engineEntry   `json:"engine"`
}

// variant is one layout configuration of a kernel row. HubCache uses the
// Config encoding: 0 off, pushpull.AutoHubCache for the degree-derived k.
type variant struct {
	name         string
	degreeSorted bool
	hubCache     int
	outOfCore    bool
}

// variantsFor returns the layout variants worth measuring for an
// (algorithm, direction) pair: the plain baseline always (the
// off-switch row the acceptance gate compares against), degree sorting
// where the algorithm's caps accept it, the hub cache only on the pull
// side where the kernels read it, and the block-sequential out-of-core
// kernels where they exist (pull-only by construction).
func variantsFor(algo string, dir pushpull.Direction) []variant {
	vs := []variant{{name: "plain"}}
	switch algo {
	case "pr", "bfs":
		vs = append(vs, variant{name: "ds", degreeSorted: true})
		if dir == pushpull.Pull {
			vs = append(vs,
				variant{name: "hub", hubCache: pushpull.AutoHubCache},
				variant{name: "ds+hub", degreeSorted: true, hubCache: pushpull.AutoHubCache},
				variant{name: "ooc", outOfCore: true})
		}
	case "gc", "gc-fe":
		vs = append(vs, variant{name: "ds", degreeSorted: true})
		if dir == pushpull.Pull {
			vs = append(vs,
				variant{name: "hub", hubCache: pushpull.AutoHubCache},
				variant{name: "ds+hub", degreeSorted: true, hubCache: pushpull.AutoHubCache})
		}
	}
	return vs
}

func main() {
	out := flag.String("out", "BENCH_pr9.json", "output file")
	pr := flag.String("pr", "9", "PR number this trajectory point belongs to")
	graphList := flag.String("graphs", "rmat,er", "comma-separated suite workload ids (high-skew rmat vs uniform er by default)")
	scale := flag.Float64("scale", 1.0, "workload scale multiplier")
	seed := flag.Uint64("seed", 42, "generator seed")
	reps := flag.Int("reps", 3, "runs per row; the minimum is recorded")
	iters := flag.Int("iters", 20, "pr iteration count")
	threadList := flag.String("threads", "1", "comma-separated thread counts; GOMAXPROCS is pinned to each in turn")
	validate := flag.Bool("validate", false, "cross-validate each layout variant's payload against the plain kernel")
	flag.Parse()

	threads, err := parseInts(*threadList)
	if err != nil {
		fatal("-threads: %v", err)
	}

	hostProcs := runtime.GOMAXPROCS(0)
	file := benchFile{
		PR:            *pr,
		GeneratedUnix: time.Now().Unix(),
		Go:            runtime.Version(),
		GOMAXPROCS:    hostProcs,
	}

	ctx := context.Background()

	// The RSS evidence runs first, against a fresh heap: nothing from the
	// kernel rows below is resident yet, so the in-memory and out-of-core
	// peaks differ by the CSR footprint, not by allocator history.
	for _, graphID := range strings.Split(*graphList, ",") {
		graphID = strings.TrimSpace(graphID)
		if graphID == "" {
			continue
		}
		file.OutOfCore = append(file.OutOfCore, oocEvidence(ctx, graphID, *scale, *seed, *iters))
	}

	algorithms := []string{"pr", "tc", "bfs", "sssp", "bc", "gc", "gc-fe", "gc-cr", "mst"}
	var firstWorkload *pushpull.Workload
	for _, graphID := range strings.Split(*graphList, ",") {
		graphID = strings.TrimSpace(graphID)
		if graphID == "" {
			continue
		}
		g, err := pushpull.NamedWeightedGraph(graphID, *scale, *seed)
		if err != nil {
			fatal("workload %s: %v", graphID, err)
		}
		w := pushpull.NewWorkload(g, pushpull.AsWeighted())
		if firstWorkload == nil {
			firstWorkload = w
		}
		file.Graphs = append(file.Graphs, graphEntry{
			ID: graphID, Scale: *scale, Seed: *seed, N: w.N(), M: w.M(),
		})
		for _, t := range threads {
			prev := runtime.GOMAXPROCS(t)
			rows := benchGraph(ctx, w, graphID, algorithms, t, *iters, *reps, *validate)
			runtime.GOMAXPROCS(prev)
			file.Kernels = append(file.Kernels, rows...)
		}
	}
	if firstWorkload == nil {
		fatal("-graphs: no workloads")
	}

	file.Engine = engineNumbers(ctx, firstWorkload, *iters, *reps)

	buf, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fatal("encoding: %v", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal("writing %s: %v", *out, err)
	}
	fmt.Printf("wrote %s: %d kernel rows + %d out-of-core entries over %d graph(s), threads %v\n",
		*out, len(file.Kernels), len(file.OutOfCore), len(file.Graphs), threads)
}

// benchGraph measures every (algorithm, direction, variant) row on one
// workload at one thread count. GOMAXPROCS is already pinned by the
// caller; the same value goes into the row so multi-thread files stay
// self-describing.
func benchGraph(ctx context.Context, w *pushpull.Workload, graphID string, algorithms []string, threads, iters, reps int, validate bool) []kernelEntry {
	var rows []kernelEntry
	for _, algo := range algorithms {
		for _, dir := range []pushpull.Direction{pushpull.Push, pushpull.Pull} {
			// The plain row runs first so layout variants can
			// cross-validate against its payload.
			var plain *pushpull.Report
			for _, v := range variantsFor(algo, dir) {
				opts := []pushpull.Option{
					pushpull.WithDirection(dir),
					pushpull.WithThreads(threads),
				}
				if v.degreeSorted {
					opts = append(opts, pushpull.WithDegreeSorted())
				}
				if v.hubCache != 0 {
					opts = append(opts, pushpull.WithHubCache(v.hubCache))
				}
				if v.outOfCore {
					opts = append(opts, pushpull.WithOutOfCore())
				}
				if algo == "pr" {
					opts = append(opts, pushpull.WithIterations(iters))
				}
				if algo == "bc" {
					// Exact Brandes is O(n·m): sample sources like the
					// paper's BC runs (and the CLI default) do.
					var sources []pushpull.V
					for s := 0; s < w.N() && s < 8; s++ {
						sources = append(sources, pushpull.V(s))
					}
					opts = append(opts, pushpull.WithSources(sources))
				}

				best := int64(0)
				iterations := 0
				skipped := false
				elapsed := make([]int64, 0, reps)
				rss := startRSSSampler()
				var last *pushpull.Report
				for r := 0; r < reps; r++ {
					rep, err := pushpull.Run(ctx, w, algo, opts...)
					if err != nil {
						fmt.Fprintf(os.Stderr, "benchjson: skipping %s/%s/%s/%s: %v\n",
							graphID, algo, dirName(dir), v.name, err)
						skipped = true
						break
					}
					last = rep
					e := int64(rep.Stats.Elapsed)
					elapsed = append(elapsed, e)
					if best == 0 || e < best {
						best = e
						iterations = rep.Stats.Iterations
					}
				}
				peak := rss.Stop()
				if skipped {
					continue
				}
				if v.name == "plain" {
					plain = last
				} else if validate && plain != nil {
					if err := crossValidate(w, algo, plain, last); err != nil {
						fatal("validate %s/%s/%s/%s: %v", graphID, algo, dirName(dir), v.name, err)
					}
				}
				rows = append(rows, kernelEntry{
					Graph:        graphID,
					Algorithm:    algo,
					Direction:    dirName(dir),
					Variant:      v.name,
					DegreeSorted: v.degreeSorted,
					HubCache:     v.hubCache,
					OutOfCore:    v.outOfCore,
					Threads:      threads,
					GOMAXPROCS:   runtime.GOMAXPROCS(0),
					Iterations:   iterations,
					Reps:         reps,
					ElapsedNS:    best,
					MedianNS:     medianNS(elapsed),
					NSPerEdge:    float64(best) / float64(w.M()),
					PeakRSSBytes: peak,
				})
			}
		}
	}
	return rows
}

// medianNS returns the median of the per-rep elapsed samples (0 when
// the row recorded none).
func medianNS(samples []int64) int64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]int64(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	mid := len(s) / 2
	if len(s)%2 == 0 {
		return (s[mid-1] + s[mid]) / 2
	}
	return s[mid]
}

// oocEvidence produces the out-of-core RSS proof for one graph: pull
// PageRank once over the in-memory CSR and once over a buffered block
// file with the in-memory graph released in between, sampling the
// absolute peak RSS of each phase. The buffered handle keeps the O(n)
// vertex state and one block per worker resident — never the O(m)
// adjacency — so the second peak must sit below the first by roughly
// the CSR footprint once the adjacency dominates. The two payloads must
// agree to 1e-9 or the tool fails.
func oocEvidence(ctx context.Context, graphID string, scale float64, seed uint64, iters int) oocEntry {
	g, err := pushpull.NamedWeightedGraph(graphID, scale, seed)
	if err != nil {
		fatal("ooc workload %s: %v", graphID, err)
	}
	w := pushpull.NewWorkload(g, pushpull.AsWeighted())
	entry := oocEntry{Graph: graphID, Algorithm: "pr", N: w.N(), M: w.M()}
	// Estimated in-memory CSR footprint: offsets + adjacency + weights.
	entry.CSRBytes = 8*int64(w.N()+1) + 4*w.M() + 4*w.M()

	dir, err := os.MkdirTemp("", "benchjson-ooc-")
	if err != nil {
		fatal("ooc tempdir: %v", err)
	}
	defer os.RemoveAll(dir)
	store, err := pushpull.NewDiskStore(dir,
		pushpull.WithBlockThreshold(1), pushpull.WithBufferedBlocks())
	if err != nil {
		fatal("ooc store: %v", err)
	}
	if err := store.Put(graphID, w); err != nil {
		fatal("ooc put %s: %v", graphID, err)
	}

	opts := []pushpull.Option{
		pushpull.WithDirection(pushpull.Pull),
		pushpull.WithIterations(iters),
	}
	settle := func() {
		runtime.GC()
		debug.FreeOSMemory()
	}

	settle()
	rss := startRSSSampler()
	rep, err := pushpull.Run(ctx, w, "pr", opts...)
	entry.InMemoryPeakRSS = rss.Stop()
	if err != nil {
		fatal("ooc in-memory pr %s: %v", graphID, err)
	}
	want := rep.Ranks()
	entry.InMemoryElapsedNS = int64(rep.Stats.Elapsed)

	// Release the in-memory CSR before the out-of-core phase; the block
	// file is now the only copy of the adjacency.
	g, w, rep = nil, nil, nil
	_ = g
	settle()

	ow, ok, err := store.OutOfCoreHandle(graphID)
	if err != nil || !ok {
		fatal("ooc handle %s: ok=%v err=%v", graphID, ok, err)
	}
	settle()
	rss = startRSSSampler()
	orep, err := pushpull.Run(ctx, ow, "pr", opts...)
	entry.OutOfCorePeakRSS = rss.Stop()
	if err != nil {
		fatal("ooc blocked pr %s: %v", graphID, err)
	}
	entry.OutOfCoreElapsed = int64(orep.Stats.Elapsed)
	entry.MaxRankDiff = pushpull.MaxDiff(want, orep.Ranks())
	if entry.MaxRankDiff > 1e-9 {
		fatal("ooc %s: blocked payload diverges from in-memory pull: max diff %g",
			graphID, entry.MaxRankDiff)
	}
	return entry
}

// crossValidate checks a layout variant's payload against the plain
// kernel's: rank vectors elementwise (loose where atomic scatter order
// is nondeterministic), BFS levels exactly (levels are unique even when
// parents are not), colorings for properness.
func crossValidate(w *pushpull.Workload, algo string, plain, got *pushpull.Report) error {
	switch {
	case plain.Ranks() != nil:
		tol := 1e-9
		if algo != "pr" {
			tol = 1e-6
		}
		if d := pushpull.MaxDiff(plain.Ranks(), got.Ranks()); d > tol {
			return fmt.Errorf("rank payload diverges from plain kernel: max diff %g", d)
		}
	case plain.Tree() != nil:
		pt, gt := plain.Tree(), got.Tree()
		if len(pt.Level) != len(gt.Level) {
			return fmt.Errorf("level vector length %d vs plain %d", len(gt.Level), len(pt.Level))
		}
		for v := range pt.Level {
			if pt.Level[v] != gt.Level[v] {
				return fmt.Errorf("vertex %d at level %d, plain kernel says %d", v, gt.Level[v], pt.Level[v])
			}
		}
	case plain.Colors() != nil:
		if err := pushpull.ValidateColoring(w.Graph(), got.Colors()); err != nil {
			return fmt.Errorf("improper coloring: %w", err)
		}
	}
	return nil
}

// rssSampler polls VmRSS from /proc/self/status while a row runs and
// keeps the maximum. Peak RSS — not the post-run value — is what the
// hub split and permutation buffers show up in.
type rssSampler struct {
	stop chan struct{}
	done chan struct{}
	peak int64
}

func startRSSSampler() *rssSampler {
	s := &rssSampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			if r := readVmRSS(); r > s.peak {
				s.peak = r
			}
			select {
			case <-s.stop:
				return
			case <-tick.C:
			}
		}
	}()
	return s
}

// Stop ends sampling and returns the peak observed RSS in bytes (0 when
// /proc is unavailable).
func (s *rssSampler) Stop() int64 {
	close(s.stop)
	<-s.done
	return s.peak
}

// readVmRSS parses the resident set size out of /proc/self/status,
// returning bytes, or 0 off Linux.
func readVmRSS() int64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmRSS:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}

// engineNumbers measures what the serving layers buy: a real kernel per
// request (uncached), an LRU hit per request (cached), and a flood of
// identical concurrent requests deduplicated by single-flight
// (coalesced). Wall time per op, not Stats.Elapsed — the serving layers'
// overhead and savings are exactly what the kernel clock cannot see.
func engineNumbers(ctx context.Context, w *pushpull.Workload, iters, reps int) engineEntry {
	opts := []pushpull.Option{pushpull.WithDirection(pushpull.Pull), pushpull.WithIterations(iters)}
	var out engineEntry

	uncached := pushpull.NewEngine(pushpull.WithResultCache(0), pushpull.WithSingleFlight(false))
	best := time.Duration(0)
	for r := 0; r < reps; r++ {
		start := time.Now()
		if _, err := uncached.Run(ctx, w, "pr", opts...); err != nil {
			fatal("engine uncached: %v", err)
		}
		if e := time.Since(start); best == 0 || e < best {
			best = e
		}
	}
	out.UncachedNSPerOp = int64(best)

	cached := pushpull.NewEngine()
	if _, err := cached.Run(ctx, w, "pr", opts...); err != nil {
		fatal("engine cache warm: %v", err)
	}
	const hits = 1000
	start := time.Now()
	for i := 0; i < hits; i++ {
		if _, err := cached.Run(ctx, w, "pr", opts...); err != nil {
			fatal("engine cached: %v", err)
		}
	}
	out.CachedNSPerOp = int64(time.Since(start)) / hits

	coalescing := pushpull.NewEngine(pushpull.WithResultCache(0))
	const floodWorkers, floodOps = 8, 4
	var wg sync.WaitGroup
	start = time.Now()
	for i := 0; i < floodWorkers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < floodOps; j++ {
				if _, err := coalescing.Run(ctx, w, "pr", opts...); err != nil {
					fmt.Fprintf(os.Stderr, "benchjson: coalesced run: %v\n", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	total := floodWorkers * floodOps
	out.CoalescedNSPerOp = int64(time.Since(start)) / int64(total)
	out.CoalescedRatio = float64(coalescing.Stats().Coalesced) / float64(total)
	return out
}

// parseInts parses a comma-separated list of positive ints.
func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad thread count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func dirName(d pushpull.Direction) string {
	if d == pushpull.Pull {
		return "pull"
	}
	return "push"
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}
