// Package pushpull is the public engine facade of the push/pull graph-
// computation library, the reproduction of "To Push or To Pull: On
// Reducing Communication and Synchronization in Graph Computations"
// (HPDC'17).
//
// The paper's central claim is that push vs. pull is one dichotomy
// cutting across all iterative graph algorithms (§3.8). This package
// makes that uniform at the API level: every algorithm — PageRank,
// BFS, Δ-stepping SSSP, Boman coloring, triangle counting, betweenness
// centrality, Borůvka MST — runs through one entrypoint with direction,
// switching policy, scheduling and instrumentation as run options:
//
//	g, _ := pushpull.RMAT(pushpull.DefaultRMAT(12, 8, 1))
//	rep, err := pushpull.Run(ctx, g, "pr",
//		pushpull.WithDirection(pushpull.Pull),
//		pushpull.WithIterations(20))
//	ranks := rep.Ranks()
//
// Graph kind is first-class: Run accepts a bare *Graph (undirected) or
// a *Workload handle (NewWorkload, Directed, Weighted, Partitioned)
// declaring directedness, weights and partitioning. The handle lazily
// builds and memoizes the derived views repeated runs share — the
// transpose behind directed pull (§4.8), the Partition-Awareness split
// (§5), the Table 2 statistics — and every algorithm declares Caps()
// the engine validates up front, returning typed precondition errors
// (ErrNeedsWeights, ErrDirectedUnsupported, ...) before a worker starts:
//
//	w := pushpull.Directed(g) // g's rows are out-edges
//	rep, err := pushpull.Run(ctx, w, "pr",
//		pushpull.WithDirection(pushpull.Pull)) // gathers along w.Transpose()
//
// Runs are abortable: cancel ctx and the engine stops between
// iterations, returning the partial Report with Stats.Canceled set and
// the context's error. Instrumented runs (WithProbes) are the
// exception: they are deterministic measurement passes and always run
// to completion. Every shared-memory algorithm has an instrumented
// variant, so WithProbes works registry-wide.
//
// The §6.3 distributed simulations are registry algorithms too
// (dist-pr-push-rma, dist-pr-pull-rma, dist-pr-mp, dist-tc-push-rma,
// dist-tc-pull-rma, dist-tc-mp): they run on a simulated cluster of
// WithRanks(P) ranks and report the simulated makespan as Stats.Elapsed
// with the remote-operation counters attached.
package pushpull

import (
	"context"
	"fmt"
	"strings"

	"pushpull/internal/core"
)

// Report is the uniform result of one engine run: the algorithm's
// payload, timing statistics, the per-iteration direction trace, and —
// for instrumented runs — the aggregated event counters.
type Report struct {
	// Algorithm is the registry name the run resolved to.
	Algorithm string
	// Result is the algorithm payload: []float64 for pr, []int64 for tc,
	// *BFSTree, *SSSPResult, *ColoringResult, *BCResult, or *MSTResult.
	Result any
	// Stats carries direction, iteration count, per-iteration timings,
	// and the Canceled flag for context-aborted runs.
	Stats RunStats
	// Directions records the direction of every iteration — uniform for
	// fixed-direction runs, per-round for the switching traversals.
	Directions []Direction
	// Counters holds the aggregated event counts of an instrumented run
	// (WithProbes); nil otherwise.
	Counters *CounterReport
}

// Ranks returns the payload as a float vector (pr ranks, bc scores,
// sssp distances, gathered dist-pr values), or nil when the payload has
// another shape.
func (r *Report) Ranks() []float64 {
	switch v := r.Result.(type) {
	case []float64:
		return v
	case *SSSPResult:
		return v.Dist
	case *BCResult:
		return v.BC
	case *DistResult:
		return v.Values
	default:
		return nil
	}
}

// Counts returns the payload as an integer count vector (tc, dist-tc),
// or nil.
func (r *Report) Counts() []int64 {
	switch v := r.Result.(type) {
	case []int64:
		return v
	case *DistResult:
		return v.Counts
	default:
		return nil
	}
}

// Colors returns the coloring payload (gc), or nil.
func (r *Report) Colors() []int32 {
	if v, ok := r.Result.(*ColoringResult); ok {
		return v.Colors
	}
	return nil
}

// Tree returns the traversal payload (bfs), or nil.
func (r *Report) Tree() *BFSTree {
	v, _ := r.Result.(*BFSTree)
	return v
}

// Summary renders a one-line human-readable digest of the run.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d iterations in %v (%s)", r.Algorithm,
		r.Stats.Iterations, r.Stats.Elapsed, r.directionDigest())
	if r.Stats.Canceled {
		b.WriteString(" [canceled: partial result]")
	}
	return b.String()
}

// directionDigest compresses the direction trace ("push", "pull", or
// e.g. "push×3, pull×9" for switching runs).
func (r *Report) directionDigest() string {
	var push, pull int
	for _, d := range r.Directions {
		if d == Pull {
			pull++
		} else {
			push++
		}
	}
	switch {
	case push > 0 && pull > 0:
		return fmt.Sprintf("push×%d, pull×%d", push, pull)
	case pull > 0:
		return "pull"
	case push > 0:
		return "push"
	default:
		return dirFromCore(r.Stats.Direction).String()
	}
}

// uniformTrace builds the direction trace of a fixed-direction run.
func uniformTrace(d core.Direction, iters int) []Direction {
	out := make([]Direction, iters)
	for i := range out {
		out[i] = dirFromCore(d)
	}
	return out
}

// Run executes the named algorithm on a Runnable — a bare *Graph
// (auto-wrapped into an undirected single-use Workload) or a *Workload
// handle declaring the graph kind — and returns its Report.
//
// Direction, thread count, schedule, switching policy, instrumentation
// and the per-algorithm knobs are all Options; see the With* functions.
// Before anything runs, the options are range-checked (ErrBadOption for
// negative WithThreads/WithPartitions/WithRanks) and the algorithm's Caps
// are validated against the workload and options, so unsupported
// combinations fail fast with one of the typed precondition errors
// (ErrNeedsWeights, ErrDirectedUnsupported, ErrProbesUnsupported,
// ErrPartitionAwareUnsupported) instead of deep in a kernel. When ctx is
// cancelled mid-run the engine stops between iterations and returns the
// partial Report together with ctx's error — callers that care about
// partial results must check the Report even on error.
//
// Run is a thin call on the lazily-initialized DefaultEngine, which is
// unbounded and uncached so every call executes its kernels for real. A
// serving layer that wants admission control and result caching builds
// its own Engine (NewEngine) and calls Engine.Run.
func Run(ctx context.Context, on Runnable, algorithm string, opts ...Option) (*Report, error) {
	return DefaultEngine().Run(ctx, on, algorithm, opts...)
}
