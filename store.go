package pushpull

// GraphStore: the persistence layer behind an Engine's named-workload
// registry. PR 4's serving front kept uploaded graphs in process memory,
// so a restart forgot every PUT /graphs; a store attached to the Engine
// (AttachStore) makes the registry durable — every RegisterWorkload is
// written through, every DropWorkload deleted, and a fresh Engine
// attaching the same store restores the full name→Workload map before it
// serves its first request.
//
// Two implementations ship: MemStore (a map — the write-through contract
// without durability, for tests and composition) and DiskStore (one
// portable edge-list file per graph, the WriteWorkload format, so the
// persisted state is human-readable and survives process and machine
// restarts).

import (
	"errors"
	"fmt"
	"io/fs"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrStore marks a graph-store failure (I/O, corrupt persisted graph).
// Engine methods wrap store errors with it so serving fronts can map them
// to server-side failures instead of client mistakes.
var ErrStore = errors.New("pushpull: graph store failure")

// GraphStore persists named workloads for an Engine. Implementations must
// be safe for concurrent use; names are arbitrary non-empty strings (the
// serving front passes URL path segments through verbatim).
type GraphStore interface {
	// Names lists every persisted workload name.
	Names() ([]string, error)
	// Get loads the workload persisted under name. A missing name is an
	// error (the Engine only asks for names the store listed).
	Get(name string) (*Workload, error)
	// Put persists w under name, replacing any previous content.
	Put(name string, w *Workload) error
	// Delete removes name. Deleting a name that was never persisted is
	// not an error — the Engine may drop graphs registered before the
	// store was attached.
	Delete(name string) error
}

// ---- in-memory store ----

// MemStore is a map-backed GraphStore: the write-through contract without
// durability. It is what tests compose against, and a building block for
// wrapping stores (e.g. a write-behind cache over a remote store).
type MemStore struct {
	mu     sync.Mutex
	graphs map[string]*Workload
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{graphs: map[string]*Workload{}}
}

// Names implements GraphStore.
func (s *MemStore) Names() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.graphs))
	for n := range s.graphs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// Get implements GraphStore.
func (s *MemStore) Get(name string) (*Workload, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	w, ok := s.graphs[name]
	if !ok {
		return nil, fmt.Errorf("memstore: %q: %w", name, fs.ErrNotExist)
	}
	return w, nil
}

// Put implements GraphStore.
func (s *MemStore) Put(name string, w *Workload) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.graphs[name] = w
	return nil
}

// Delete implements GraphStore.
func (s *MemStore) Delete(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.graphs, name)
	return nil
}

// ---- on-disk store ----

// DiskStore persists each workload as one edge-list file under a
// directory: <url.PathEscape(name)>.el in the WriteWorkload format, whose
// header records the serialized graph kind (directedness, weights), so a
// restored workload matches what the uploader registered — same content
// ID, same capability validation — and any cached result computed before
// the restart stays valid for it. The caveat is WriteWorkload's: the
// machine-local parts of a handle's kind (the AsPartitioned default, an
// AsWeighted claim on a weightless graph) are deliberately not
// serialized, so a handle registered programmatically with those set
// restores without them — and with the correspondingly different content
// ID. Workloads that arrived through ReadWorkload (every HTTP upload)
// round-trip exactly. Writes are atomic (temp file + rename): a crash
// mid-Put leaves the previous content intact.
//
// With WithBlockThreshold, graphs above the threshold are persisted as
// <name>.blk in the out-of-core block format instead and restore as pure
// out-of-core handles — see Put and Get.
type DiskStore struct {
	dir string
	// blockThreshold: a Put whose estimated in-memory CSR footprint
	// exceeds this many bytes is persisted in the block (out-of-core)
	// format instead of the edge list; ≤ 0 never converts.
	blockThreshold int64
	// blockBuffered opens restored block handles in buffered (ReadAt)
	// mode instead of mmap.
	blockBuffered bool
	// mu serializes writers per store; readers go straight to the
	// filesystem (rename makes each file's content atomic).
	mu sync.Mutex
}

// diskExt is the persisted-file suffix for edge-list graphs; blockExt is
// the suffix for graphs persisted in the out-of-core block format. Put
// writes exactly one of the two per name.
const (
	diskExt  = ".el"
	blockExt = ".blk"
)

// DiskOption configures NewDiskStore.
type DiskOption func(*DiskStore)

// WithBlockThreshold makes Put persist any workload whose estimated
// in-memory CSR footprint (offsets + adjacency + weights) exceeds bytes
// in the on-disk block format instead of the edge-list format. A graph
// persisted that way restores as a pure out-of-core handle
// (OpenOutOfCoreWorkload): OutOfCore-capable algorithms stream it
// block-sequentially off disk, and the process never materializes the
// full CSR. bytes ≤ 0 (the default) disables the conversion.
func WithBlockThreshold(bytes int64) DiskOption {
	return func(s *DiskStore) { s.blockThreshold = bytes }
}

// WithBufferedBlocks makes restored block handles read through a plain
// file descriptor (ReadAt) instead of an mmap, trading zero-copy segment
// access for a resident set that stays bounded by the cursor buffers.
func WithBufferedBlocks() DiskOption {
	return func(s *DiskStore) { s.blockBuffered = true }
}

// NewDiskStore opens (creating if needed) a graph store rooted at dir.
func NewDiskStore(dir string, opts ...DiskOption) (*DiskStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("diskstore: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	s := &DiskStore{dir: dir}
	for _, opt := range opts {
		opt(s)
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *DiskStore) Dir() string { return s.dir }

// path maps a graph name onto its file. PathEscape makes the mapping
// injective and filesystem-safe: separators and every other reserved byte
// arrive percent-encoded, so no name can escape the store directory. A
// leading dot is escaped by hand (PathEscape leaves it alone): dotfiles
// are reserved for the store's own temp files, and a graph named
// ".hidden" must not be mistaken for one and dropped by Names.
func (s *DiskStore) path(name string) string { return s.pathExt(name, diskExt) }

// blockPath is the name's file in the block (out-of-core) format.
func (s *DiskStore) blockPath(name string) string { return s.pathExt(name, blockExt) }

func (s *DiskStore) pathExt(name, ext string) string {
	esc := url.PathEscape(name)
	if strings.HasPrefix(esc, ".") {
		esc = "%2E" + esc[1:]
	}
	return filepath.Join(s.dir, esc+ext)
}

// Names implements GraphStore.
func (s *DiskStore) Names() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	var names []string
	seen := map[string]bool{}
	for _, e := range entries {
		base, ok := strings.CutSuffix(e.Name(), diskExt)
		if !ok {
			base, ok = strings.CutSuffix(e.Name(), blockExt)
		}
		if !ok || e.IsDir() || strings.HasPrefix(base, ".") {
			// Temp files and foreign droppings. Persisted names never
			// produce a dotfile: path() escapes a leading dot.
			continue
		}
		name, err := url.PathUnescape(base)
		if err != nil {
			return nil, fmt.Errorf("diskstore: undecodable file %q: %w", e.Name(), err)
		}
		if seen[name] {
			continue // both formats present (interrupted Put): list once
		}
		seen[name] = true
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Get implements GraphStore. A name persisted in the block format comes
// back as a pure out-of-core handle — the full CSR is never materialized,
// which is the point of WithBlockThreshold: a restart restores the big
// graphs at the cost of an open fd each, not their memory.
func (s *DiskStore) Get(name string) (*Workload, error) {
	if bp := s.blockPath(name); fileExists(bp) {
		w, err := OpenOutOfCoreWorkload(bp, s.blockOpts()...)
		if err != nil {
			return nil, fmt.Errorf("diskstore: %q: %w", name, err)
		}
		return w, nil
	}
	f, err := os.Open(s.path(name))
	if err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	defer f.Close()
	w, err := ReadWorkload(f)
	if err != nil {
		return nil, fmt.Errorf("diskstore: %q: %w", name, err)
	}
	return w, nil
}

// OutOfCoreHandle reopens name as a pure out-of-core handle if (and only
// if) Put persisted it in the block format. The Engine probes this after
// a write-through Put so it can swap the registry binding from the
// uploaded in-memory workload to the on-disk view and let the upload's
// CSR be collected.
func (s *DiskStore) OutOfCoreHandle(name string) (*Workload, bool, error) {
	bp := s.blockPath(name)
	if !fileExists(bp) {
		return nil, false, nil
	}
	w, err := OpenOutOfCoreWorkload(bp, s.blockOpts()...)
	if err != nil {
		return nil, false, fmt.Errorf("diskstore: %q: %w", name, err)
	}
	return w, true, nil
}

func (s *DiskStore) blockOpts() []WorkloadOption {
	if s.blockBuffered {
		return []WorkloadOption{AsBlockBuffered()}
	}
	return nil
}

func fileExists(path string) bool {
	st, err := os.Stat(path)
	return err == nil && !st.IsDir()
}

// Put implements GraphStore. The whole-graph serialization happens
// before the store lock is taken — WriteWorkload walks every edge, and
// holding the lock across it would stall every concurrent Get/Delete
// behind one large upload. Only the atomic rename that publishes the
// temp file runs under the lock, so concurrent Puts of one name still
// serialize into complete, last-write-wins files.
//
// With WithBlockThreshold set, a workload whose estimated CSR footprint
// exceeds the threshold is written in the block format instead; the
// rename also removes the other format's stale file, so a name is always
// stored exactly one way. Re-putting a pure out-of-core handle that this
// store itself restored is a no-op — its block file IS the persisted
// state; a pure handle from elsewhere cannot be serialized and errors.
func (s *DiskStore) Put(name string, w *Workload) error {
	if w != nil && w.Graph() == nil {
		if fileExists(s.blockPath(name)) {
			return nil
		}
		return fmt.Errorf("diskstore: %q: cannot persist a pure out-of-core workload with no block file in this store", name)
	}
	asBlock := s.blockThreshold > 0 && w != nil && estimatedCSRBytes(w) > s.blockThreshold
	tmp, err := os.CreateTemp(s.dir, ".put-*")
	if err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	if asBlock {
		err = w.writeBlockTo(tmp)
	} else {
		err = WriteWorkload(tmp, w)
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("diskstore: %q: %w", name, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("diskstore: %q: %w", name, err)
	}
	dst, stale := s.path(name), s.blockPath(name)
	if asBlock {
		dst, stale = stale, dst
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("diskstore: %q: %w", name, err)
	}
	if err := os.Remove(stale); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("diskstore: %q: dropping stale %s: %w", name, filepath.Ext(stale), err)
	}
	return nil
}

// estimatedCSRBytes approximates the in-memory CSR footprint Put's
// block-threshold decision compares against: offsets (8 bytes a vertex)
// plus adjacency (4 bytes an edge slot) plus weights when present.
func estimatedCSRBytes(w *Workload) int64 {
	n, m := int64(w.N()), w.M()
	b := 8*(n+1) + 4*m
	if w.HasWeights() {
		b += 4 * m
	}
	return b
}

// Delete implements GraphStore. Both formats are removed.
func (s *DiskStore) Delete(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range []string{s.path(name), s.blockPath(name)} {
		if err := os.Remove(p); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("diskstore: %q: %w", name, err)
		}
	}
	return nil
}
