package pushpull

// GraphStore: the persistence layer behind an Engine's named-workload
// registry. PR 4's serving front kept uploaded graphs in process memory,
// so a restart forgot every PUT /graphs; a store attached to the Engine
// (AttachStore) makes the registry durable — every RegisterWorkload is
// written through, every DropWorkload deleted, and a fresh Engine
// attaching the same store restores the full name→Workload map before it
// serves its first request.
//
// Two implementations ship: MemStore (a map — the write-through contract
// without durability, for tests and composition) and DiskStore (one
// portable edge-list file per graph, the WriteWorkload format, so the
// persisted state is human-readable and survives process and machine
// restarts).

import (
	"errors"
	"fmt"
	"io/fs"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrStore marks a graph-store failure (I/O, corrupt persisted graph).
// Engine methods wrap store errors with it so serving fronts can map them
// to server-side failures instead of client mistakes.
var ErrStore = errors.New("pushpull: graph store failure")

// GraphStore persists named workloads for an Engine. Implementations must
// be safe for concurrent use; names are arbitrary non-empty strings (the
// serving front passes URL path segments through verbatim).
type GraphStore interface {
	// Names lists every persisted workload name.
	Names() ([]string, error)
	// Get loads the workload persisted under name. A missing name is an
	// error (the Engine only asks for names the store listed).
	Get(name string) (*Workload, error)
	// Put persists w under name, replacing any previous content.
	Put(name string, w *Workload) error
	// Delete removes name. Deleting a name that was never persisted is
	// not an error — the Engine may drop graphs registered before the
	// store was attached.
	Delete(name string) error
}

// ---- in-memory store ----

// MemStore is a map-backed GraphStore: the write-through contract without
// durability. It is what tests compose against, and a building block for
// wrapping stores (e.g. a write-behind cache over a remote store).
type MemStore struct {
	mu     sync.Mutex
	graphs map[string]*Workload
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{graphs: map[string]*Workload{}}
}

// Names implements GraphStore.
func (s *MemStore) Names() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.graphs))
	for n := range s.graphs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// Get implements GraphStore.
func (s *MemStore) Get(name string) (*Workload, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	w, ok := s.graphs[name]
	if !ok {
		return nil, fmt.Errorf("memstore: %q: %w", name, fs.ErrNotExist)
	}
	return w, nil
}

// Put implements GraphStore.
func (s *MemStore) Put(name string, w *Workload) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.graphs[name] = w
	return nil
}

// Delete implements GraphStore.
func (s *MemStore) Delete(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.graphs, name)
	return nil
}

// ---- on-disk store ----

// DiskStore persists each workload as one edge-list file under a
// directory: <url.PathEscape(name)>.el in the WriteWorkload format, whose
// header records the serialized graph kind (directedness, weights), so a
// restored workload matches what the uploader registered — same content
// ID, same capability validation — and any cached result computed before
// the restart stays valid for it. The caveat is WriteWorkload's: the
// machine-local parts of a handle's kind (the AsPartitioned default, an
// AsWeighted claim on a weightless graph) are deliberately not
// serialized, so a handle registered programmatically with those set
// restores without them — and with the correspondingly different content
// ID. Workloads that arrived through ReadWorkload (every HTTP upload)
// round-trip exactly. Writes are atomic (temp file + rename): a crash
// mid-Put leaves the previous content intact.
type DiskStore struct {
	dir string
	// mu serializes writers per store; readers go straight to the
	// filesystem (rename makes each file's content atomic).
	mu sync.Mutex
}

// diskExt is the persisted-file suffix.
const diskExt = ".el"

// NewDiskStore opens (creating if needed) an edge-list store rooted at
// dir.
func NewDiskStore(dir string) (*DiskStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("diskstore: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	return &DiskStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *DiskStore) Dir() string { return s.dir }

// path maps a graph name onto its file. PathEscape makes the mapping
// injective and filesystem-safe: separators and every other reserved byte
// arrive percent-encoded, so no name can escape the store directory. A
// leading dot is escaped by hand (PathEscape leaves it alone): dotfiles
// are reserved for the store's own temp files, and a graph named
// ".hidden" must not be mistaken for one and dropped by Names.
func (s *DiskStore) path(name string) string {
	esc := url.PathEscape(name)
	if strings.HasPrefix(esc, ".") {
		esc = "%2E" + esc[1:]
	}
	return filepath.Join(s.dir, esc+diskExt)
}

// Names implements GraphStore.
func (s *DiskStore) Names() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	var names []string
	for _, e := range entries {
		base, ok := strings.CutSuffix(e.Name(), diskExt)
		if !ok || e.IsDir() || strings.HasPrefix(base, ".") {
			// Temp files and foreign droppings. Persisted names never
			// produce a dotfile: path() escapes a leading dot.
			continue
		}
		name, err := url.PathUnescape(base)
		if err != nil {
			return nil, fmt.Errorf("diskstore: undecodable file %q: %w", e.Name(), err)
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Get implements GraphStore.
func (s *DiskStore) Get(name string) (*Workload, error) {
	f, err := os.Open(s.path(name))
	if err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	defer f.Close()
	w, err := ReadWorkload(f)
	if err != nil {
		return nil, fmt.Errorf("diskstore: %q: %w", name, err)
	}
	return w, nil
}

// Put implements GraphStore. The whole-graph serialization happens
// before the store lock is taken — WriteWorkload walks every edge, and
// holding the lock across it would stall every concurrent Get/Delete
// behind one large upload. Only the atomic rename that publishes the
// temp file runs under the lock, so concurrent Puts of one name still
// serialize into complete, last-write-wins files.
func (s *DiskStore) Put(name string, w *Workload) error {
	tmp, err := os.CreateTemp(s.dir, ".put-*")
	if err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	if err := WriteWorkload(tmp, w); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("diskstore: %q: %w", name, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("diskstore: %q: %w", name, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.Rename(tmp.Name(), s.path(name)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("diskstore: %q: %w", name, err)
	}
	return nil
}

// Delete implements GraphStore.
func (s *DiskStore) Delete(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.Remove(s.path(name)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("diskstore: %q: %w", name, err)
	}
	return nil
}
