package pushpull

// Facade wiring of the kernel raw-speed layout options: the degree-sorted
// CSR permutation (WithDegreeSorted / AsDegreeSorted) and the hub-cached
// pull split (WithHubCache / AsHubCached). The algorithm adapters resolve
// both into a layout, hand the permuted views to the kernels, and
// un-permute the payload at the report boundary — so callers observe
// identical results and only the run's memory behavior changes.

import (
	"pushpull/internal/algo/bfs"
	"pushpull/internal/algo/gc"
	"pushpull/internal/graph"
)

// layout is the resolved per-run view selection: which CSR the kernels
// iterate and how large the hub segment is.
type layout struct {
	// ds is the degree-sorted view, nil for the identity layout.
	ds *DegreeSortedView
	// hubK is the resolved hub segment size; 0 disables the hub path.
	hubK int
}

// resolveLayout combines the run options with the workload declarations.
// hub gates the hub-cache resolution: adapters without a hub-cached
// kernel (gc) pass false so an ambient AsHubCached declaration is ignored
// rather than half-applied.
func resolveLayout(w *Workload, cfg *Config, hub bool) layout {
	l := layout{}
	if cfg.degreeSorted(w) {
		l.ds = w.DegreeSorted()
	}
	if hub {
		l.hubK = cfg.hubCacheK(w, w.N())
	}
	return l
}

// unpermuteFloats lifts a permuted-layout vector back to original vertex
// ids: out[Perm[new]] = in[new].
func unpermuteFloats(ds *DegreeSortedView, in []float64) []float64 {
	out := make([]float64, len(in))
	for nw, old := range ds.Perm {
		out[old] = in[nw]
	}
	return out
}

// unpermuteColors lifts a permuted-layout coloring back to original ids.
func unpermuteColors(ds *DegreeSortedView, in []int32) []int32 {
	out := make([]int32, len(in))
	for nw, old := range ds.Perm {
		out[old] = in[nw]
	}
	return out
}

// unpermuteTree lifts a BFS tree computed on the permuted graph back to
// original ids: levels move with the vertex, parent ids (which are
// permuted-space vertex ids) map through Perm; the -1 of an unreached
// vertex is preserved.
func unpermuteTree(ds *DegreeSortedView, t *bfs.Tree) *bfs.Tree {
	out := &bfs.Tree{Parent: make([]graph.V, len(t.Parent)), Level: make([]int32, len(t.Level))}
	for nw, old := range ds.Perm {
		out.Level[old] = t.Level[nw]
		if p := t.Parent[nw]; p >= 0 {
			out.Parent[old] = ds.Perm[p]
		} else {
			out.Parent[old] = p
		}
	}
	return out
}

// unpermuteColoring rebuilds a gc result with original vertex ids.
func unpermuteColoring(ds *DegreeSortedView, res *gc.Result) *gc.Result {
	out := *res
	out.Colors = unpermuteColors(ds, res.Colors)
	return &out
}
