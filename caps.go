package pushpull

// Capability declarations and the uniform precondition errors of the
// engine. Every Algorithm declares up front what it needs from a workload
// (weights, a source) and what kinds it supports (directed graphs,
// instrumented probes, Partition-Awareness); Run validates the declared
// capabilities against the resolved Workload and Config before any
// goroutine spawns, so an unsupported combination fails with one typed
// error instead of an ad-hoc failure deep inside a kernel.

import (
	"errors"
	"fmt"
)

// Caps declares what an algorithm needs and supports. The zero value is
// the most restrictive declaration: no weights consumed, no source, no
// directed graphs, no probes, no Partition-Awareness.
type Caps struct {
	// NeedsWeights marks algorithms that are meaningless without edge
	// weights (sssp, mst): Run fails with ErrNeedsWeights on an
	// unweighted workload.
	NeedsWeights bool
	// NeedsSource marks algorithms consuming WithSource/WithSources
	// (bfs, sssp, bc); the engine range-checks the configured sources
	// against the workload (ErrBadSource) before the algorithm runs.
	NeedsSource bool
	// Directed marks algorithms that run on directed workloads; others
	// fail with ErrDirectedUnsupported.
	Directed bool
	// Probes marks algorithms with a deterministic instrumented variant
	// (WithProbes); others fail with ErrProbesUnsupported.
	Probes bool
	// PartitionAware marks algorithms supporting the §5 Partition-
	// Awareness acceleration; others fail with ErrPartitionAwareUnsupported.
	PartitionAware bool
	// DegreeSort marks algorithms that can run over the degree-sorted CSR
	// permutation (WithDegreeSorted / AsDegreeSorted), un-permuting their
	// report at the boundary; an explicit WithDegreeSorted on others fails
	// with ErrDegreeSortUnsupported (the workload-level declaration is an
	// ambient default and is ignored where unsupported).
	DegreeSort bool
	// HubCache marks algorithms whose pull kernels support the hub-cached
	// split (WithHubCache / AsHubCached); an explicit WithHubCache on
	// others fails with ErrHubCacheUnsupported (the workload-level
	// declaration is ignored where unsupported).
	HubCache bool
	// OutOfCore marks algorithms with block-sequential kernels over the
	// out-of-core block layout (WithOutOfCore / AsOutOfCore). An explicit
	// WithOutOfCore on others fails with ErrOutOfCoreUnsupported, as does
	// ANY run of an unsupporting algorithm on a pure file handle — there
	// is no in-memory graph to fall back to (an in-memory AsOutOfCore
	// declaration, by contrast, is ambient and ignored where unsupported).
	OutOfCore bool
}

// String renders the capability set as a compact tag list.
func (c Caps) String() string {
	out := ""
	add := func(on bool, tag string) {
		if on {
			if out != "" {
				out += ","
			}
			out += tag
		}
	}
	add(c.NeedsWeights, "needs-weights")
	add(c.NeedsSource, "needs-source")
	add(c.Directed, "directed")
	add(c.Probes, "probes")
	add(c.PartitionAware, "pa")
	add(c.DegreeSort, "degree-sort")
	add(c.HubCache, "hub-cache")
	add(c.OutOfCore, "out-of-core")
	if out == "" {
		return "-"
	}
	return out
}

// The uniform precondition errors. Run wraps them with the algorithm and
// workload context, so match with errors.Is.
var (
	// ErrNeedsWeights: the algorithm requires edge weights the workload
	// does not carry (or a Weighted workload was built over an unweighted
	// graph).
	ErrNeedsWeights = errors.New("workload carries no edge weights")
	// ErrDirectedUnsupported: the algorithm does not run on directed
	// workloads.
	ErrDirectedUnsupported = errors.New("directed workloads unsupported")
	// ErrProbesUnsupported: the algorithm has no instrumented variant.
	ErrProbesUnsupported = errors.New("instrumented (WithProbes) runs unsupported")
	// ErrPartitionAwareUnsupported: the algorithm has no Partition-
	// Awareness acceleration.
	ErrPartitionAwareUnsupported = errors.New("partition awareness unsupported")
	// ErrDegreeSortUnsupported: the algorithm cannot run over the
	// degree-sorted layout.
	ErrDegreeSortUnsupported = errors.New("degree-sorted (WithDegreeSorted) runs unsupported")
	// ErrHubCacheUnsupported: the algorithm's pull kernel has no
	// hub-cached variant.
	ErrHubCacheUnsupported = errors.New("hub-cached (WithHubCache) runs unsupported")
	// ErrOutOfCoreUnsupported: the algorithm has no block-sequential
	// out-of-core kernel (or the workload is a pure file handle no
	// in-memory kernel can serve).
	ErrOutOfCoreUnsupported = errors.New("out-of-core (WithOutOfCore) runs unsupported")
	// ErrBadSource: a configured source vertex is outside the workload's
	// vertex range.
	ErrBadSource = errors.New("source vertex out of range")
	// ErrBadOption: an option carries a value outside its domain (negative
	// WithThreads/WithPartitions/WithRanks). Zero always means "use the
	// default"; negatives used to be clamped or to panic deep in a kernel
	// and now fail at Run entry instead.
	ErrBadOption = errors.New("option value out of range")
)

// validateOptions rejects out-of-domain option values before capability
// checks or any kernel work: zero keeps each option's documented default,
// a negative count is a caller bug surfaced as ErrBadOption.
func validateOptions(cfg *Config) error {
	switch {
	case cfg.Threads < 0:
		return fmt.Errorf("pushpull: WithThreads(%d): %w (0 means GOMAXPROCS)", cfg.Threads, ErrBadOption)
	case cfg.Partitions < 0:
		return fmt.Errorf("pushpull: WithPartitions(%d): %w (0 means the resolved thread count)", cfg.Partitions, ErrBadOption)
	case cfg.Ranks < 0:
		return fmt.Errorf("pushpull: WithRanks(%d): %w (0 means the default cluster size)", cfg.Ranks, ErrBadOption)
	case cfg.HubCache < AutoHubCache:
		return fmt.Errorf("pushpull: WithHubCache(%d): %w (0 defers to the workload, AutoHubCache picks the size)", cfg.HubCache, ErrBadOption)
	}
	return nil
}

// validateCaps checks the resolved workload and configuration against the
// algorithm's declared capabilities; it is the single precondition gate
// Run applies before handing control to the algorithm.
func validateCaps(a Algorithm, w *Workload, cfg *Config) error {
	caps := a.Caps()
	name := a.Name()
	if w.WeightsDeclared() && !w.HasWeights() {
		return fmt.Errorf("pushpull: %s on a Weighted workload whose graph has no weights: %w (attach weights, e.g. WithUniformWeights)", name, ErrNeedsWeights)
	}
	if caps.NeedsWeights && !w.HasWeights() {
		return fmt.Errorf("pushpull: %s requires a weighted workload: %w (attach weights, e.g. WithUniformWeights)", name, ErrNeedsWeights)
	}
	if w.IsDirected() && !caps.Directed {
		return fmt.Errorf("pushpull: %s on a directed workload: %w", name, ErrDirectedUnsupported)
	}
	if cfg.Probes && !caps.Probes {
		return fmt.Errorf("pushpull: %s with WithProbes: %w", name, ErrProbesUnsupported)
	}
	if (cfg.PartitionAware || cfg.PA != nil) && !caps.PartitionAware {
		return fmt.Errorf("pushpull: %s with WithPartitionAwareness: %w", name, ErrPartitionAwareUnsupported)
	}
	if cfg.DegreeSorted && !caps.DegreeSort {
		return fmt.Errorf("pushpull: %s with WithDegreeSorted: %w", name, ErrDegreeSortUnsupported)
	}
	if cfg.HubCache != 0 && !caps.HubCache {
		return fmt.Errorf("pushpull: %s with WithHubCache: %w", name, ErrHubCacheUnsupported)
	}
	if !caps.OutOfCore {
		if cfg.OutOfCore {
			return fmt.Errorf("pushpull: %s with WithOutOfCore: %w", name, ErrOutOfCoreUnsupported)
		}
		if w.Graph() == nil {
			return fmt.Errorf("pushpull: %s on a pure out-of-core workload: %w (no in-memory graph to run on)", name, ErrOutOfCoreUnsupported)
		}
	}
	if caps.OutOfCore && cfg.outOfCore(w) {
		// The block kernels are pull-by-construction and stream the plain
		// pull-view layout; directions and layouts that cannot be honored
		// fail loudly instead of being silently rewritten.
		if cfg.Direction == Push {
			return fmt.Errorf("pushpull: %s out-of-core with WithDirection(Push): %w (block kernels are pull-only)", name, ErrBadOption)
		}
		if cfg.DegreeSorted || cfg.HubCache != 0 || cfg.PartitionAware || cfg.PA != nil {
			return fmt.Errorf("pushpull: %s: degree-sort/hub-cache/partition-awareness with WithOutOfCore: %w (block kernels stream the plain pull layout)", name, ErrBadOption)
		}
	}
	// The PA split is laid out over the plain graph, so the explicit
	// layout options do not compose with Partition-Awareness (the
	// workload-level declarations are simply not applied there).
	if (cfg.DegreeSorted || cfg.HubCache != 0) && (cfg.PartitionAware || cfg.PA != nil) {
		return fmt.Errorf("pushpull: %s: degree-sort/hub-cache with WithPartitionAwareness: %w (the §5 split is defined over the plain layout)", name, ErrBadOption)
	}
	if caps.NeedsSource {
		if n := w.N(); n > 0 {
			if int(cfg.Source) < 0 || int(cfg.Source) >= n {
				return fmt.Errorf("pushpull: %s source %d out of range [0,%d): %w", name, cfg.Source, n, ErrBadSource)
			}
			for _, s := range cfg.Sources {
				if int(s) < 0 || int(s) >= n {
					return fmt.Errorf("pushpull: %s source %d out of range [0,%d): %w", name, s, n, ErrBadSource)
				}
			}
		}
	}
	return nil
}
