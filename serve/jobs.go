package serve

// The async half of the HTTP surface: /jobs endpoints over a
// jobs.Manager (wired with WithJobManager). Submission returns
// immediately with 202 and a job (or batch) ID; clients poll status and
// fetch the result when done — the result body is byte-identical to
// what the synchronous POST /run would have returned.
//
//	POST   /jobs              submit one spec, or {"batch": [...]} of
//	                          many sharing one batch ID
//	GET    /jobs              list jobs (?state=..., ?batch=... filters)
//	GET    /jobs/{id}         status (no result payload)
//	GET    /jobs/{id}/result  the stored RunResponse of a done job
//	DELETE /jobs/{id}         cancel (queued → canceled now; running →
//	                          the run's context is canceled)

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"pushpull"
	"pushpull/jobs"
)

// JobRequest is the POST /jobs body: either one inline spec or a batch.
type JobRequest struct {
	jobs.Spec
	// Batch, when non-empty, submits every entry under one batch ID;
	// the inline spec fields must then be empty. Validation is
	// all-or-nothing: one bad entry rejects the whole batch.
	Batch []jobs.Spec `json:"batch,omitempty"`
}

// BatchResponse is the POST /jobs body for a batch submission.
type BatchResponse struct {
	BatchID string      `json:"batch_id"`
	Jobs    []*jobs.Job `json:"jobs"`
}

func (s *Server) submitJobs(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var req JobRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parsing job request: %w", err))
		return
	}
	if len(req.Batch) > 0 {
		if req.Graph != "" || req.Algorithm != "" {
			writeError(w, http.StatusBadRequest,
				errors.New(`a job request is either one inline spec or a "batch", not both`))
			return
		}
		for i, spec := range req.Batch {
			if status, err := s.checkSpec(spec); err != nil {
				writeError(w, status, fmt.Errorf("batch entry %d: %w", i, err))
				return
			}
		}
		batchID, submitted, err := s.jobs.SubmitBatch(req.Batch)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusAccepted, BatchResponse{BatchID: batchID, Jobs: submitted})
		return
	}
	if status, err := s.checkSpec(req.Spec); err != nil {
		writeError(w, status, err)
		return
	}
	j, err := s.jobs.Submit(req.Spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, j)
}

// checkSpec pre-validates a spec so submission failures carry the same
// statuses the synchronous run path uses: unknown names are the
// client's lookup problem (404), bad options a bad request (400).
func (s *Server) checkSpec(spec jobs.Spec) (int, error) {
	if spec.Graph == "" || spec.Algorithm == "" {
		return http.StatusBadRequest, errors.New(`"graph" and "algorithm" are required`)
	}
	if _, ok := s.eng.Workload(spec.Graph); !ok {
		return http.StatusNotFound,
			fmt.Errorf("unknown graph %q (registered: %v)", spec.Graph, s.eng.WorkloadNames())
	}
	if _, err := pushpull.Lookup(spec.Algorithm); err != nil {
		return http.StatusNotFound, err
	}
	if _, err := spec.Options.ToOptions(); err != nil {
		return http.StatusBadRequest, err
	}
	if spec.DeadlineMS < 0 {
		return http.StatusBadRequest, fmt.Errorf("negative deadline_ms %d", spec.DeadlineMS)
	}
	return 0, nil
}

func (s *Server) listJobs(w http.ResponseWriter, r *http.Request) {
	state := jobs.State(r.URL.Query().Get("state"))
	batch := r.URL.Query().Get("batch")
	list, err := s.jobs.List(state, batch)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, list)
}

func (s *Server) jobStatus(w http.ResponseWriter, r *http.Request) {
	j, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, jobStatusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, j.StatusView())
}

func (s *Server) jobResult(w http.ResponseWriter, r *http.Request) {
	j, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, jobStatusFor(err), err)
		return
	}
	switch j.State {
	case jobs.StateDone:
		// The stored bytes are already a marshaled api.RunResponse.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(j.Result)
		w.Write([]byte("\n"))
	case jobs.StateQueued, jobs.StateRunning:
		// Not ready: 202 with the status view so pollers can hit this
		// endpoint alone and branch on the code.
		writeJSON(w, http.StatusAccepted, j.StatusView())
	case jobs.StateFailed:
		if j.Error == jobs.ErrDeadlineExceeded.Error() {
			writeError(w, http.StatusGatewayTimeout, fmt.Errorf("job %q: %s", j.ID, j.Error))
			return
		}
		writeError(w, http.StatusInternalServerError, fmt.Errorf("job %q failed: %s", j.ID, j.Error))
	default: // canceled, interrupted
		writeError(w, http.StatusGone, fmt.Errorf("job %q is %s: %s", j.ID, j.State, j.Error))
	}
}

func (s *Server) cancelJob(w http.ResponseWriter, r *http.Request) {
	j, err := s.jobs.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, jobStatusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, j.StatusView())
}

// jobStatusFor maps manager errors onto HTTP statuses.
func jobStatusFor(err error) int {
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, jobs.ErrNotDone):
		return http.StatusAccepted
	default:
		return http.StatusInternalServerError
	}
}
