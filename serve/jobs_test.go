package serve_test

// HTTP-level tests for the async job surface and the drain/Retry-After
// satellites, run under -race in CI: batch submission returns in
// milliseconds while the engine is saturated, status polls report
// truthful lifecycle transitions, Drain sheds queued work as 503 while
// in-flight runs finish, and the 429 Retry-After hint is derived from
// observed queue wait, not a constant.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"pushpull"
	"pushpull/jobs"
	"pushpull/serve"
)

// jobGateAlgo parks runs whose Iterations tag has a registered gate until
// released (context cancellation is passed through as the error, so
// draining and cancellation are observable).
var (
	jobGateMu    sync.Mutex
	jobGateCh    = map[int]chan struct{}{}
	jobGateOnce  sync.Once
	jobGateSeen  = make(chan int, 64)
	jobGateAlgoN = "test-jobgate"
)

func jobGateBlock(tag int) func() {
	ch := make(chan struct{})
	jobGateMu.Lock()
	jobGateCh[tag] = ch
	jobGateMu.Unlock()
	var once sync.Once
	return func() { once.Do(func() { close(ch) }) }
}

type jobGateAlgo struct{}

func (jobGateAlgo) Name() string        { return jobGateAlgoN }
func (jobGateAlgo) Describe() string    { return "test-only: parks gated tags until released" }
func (jobGateAlgo) Caps() pushpull.Caps { return pushpull.Caps{} }
func (jobGateAlgo) Run(ctx context.Context, w *pushpull.Workload, cfg *pushpull.Config) (*pushpull.Report, error) {
	jobGateMu.Lock()
	ch := jobGateCh[cfg.Iterations]
	jobGateMu.Unlock()
	jobGateSeen <- cfg.Iterations
	if ch != nil {
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return &pushpull.Report{Result: []float64{1}, Stats: pushpull.RunStats{Iterations: 1}}, nil
}

// newJobServer builds a saturable serving stack: 1 engine worker, a
// 1-deep admission queue, a 1-slot job manager, caches off.
func newJobServer(t *testing.T) (*httptest.Server, *serve.Server, *pushpull.Engine) {
	t.Helper()
	jobGateOnce.Do(func() { pushpull.MustRegister(jobGateAlgo{}) })
	// Drain start-tokens leaked by a previous test's ungated tail runs: a
	// stale token would let a later <-jobGateSeen return before its gated
	// run actually holds the slot.
	for {
		select {
		case <-jobGateSeen:
			continue
		default:
		}
		break
	}
	eng := pushpull.NewEngine(
		pushpull.WithWorkers(1), pushpull.WithShards(1), pushpull.WithQueueLimit(1),
		pushpull.WithResultCache(0), pushpull.WithSingleFlight(false),
	)
	if err := eng.RegisterWorkload("demo", pushpull.NewWorkload(smallGraph(t))); err != nil {
		t.Fatal(err)
	}
	mgr, err := jobs.NewManager(eng, jobs.WithParallel(1))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)
	handler := serve.New(eng, serve.WithJobManager(mgr))
	ts := httptest.NewServer(handler)
	t.Cleanup(ts.Close)
	return ts, handler, eng
}

func httpJob(t *testing.T, method, url, body string) (int, []byte, http.Header) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, raw, resp.Header
}

func jobState(t *testing.T, base, id string) jobs.Job {
	t.Helper()
	status, raw, _ := httpJob(t, http.MethodGet, base+"/jobs/"+id, "")
	if status != http.StatusOK {
		t.Fatalf("GET /jobs/%s: %d: %s", id, status, raw)
	}
	var j jobs.Job
	if err := json.Unmarshal(raw, &j); err != nil {
		t.Fatal(err)
	}
	return j
}

func waitJobState(t *testing.T, base, id string, want jobs.State) jobs.Job {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		j := jobState(t, base, id)
		if j.State == want {
			return j
		}
		if j.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("job %s is %s (%s), want %s", id, j.State, j.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestServeJobsBatchAndLifecycle is the tentpole's HTTP acceptance: a
// batch of 3 posted against a fully occupied engine is accepted with a
// batch ID in well under 50ms, every status poll reports a truthful
// lifecycle state, and the result endpoint goes 202 → 200 with the
// RunResponse shape the synchronous path serves.
func TestServeJobsBatchAndLifecycle(t *testing.T) {
	ts, _, _ := newJobServer(t)
	release := jobGateBlock(0)
	defer release()

	// Occupy the only dispatch slot.
	status, raw, _ := httpJob(t, http.MethodPost, ts.URL+"/jobs",
		fmt.Sprintf(`{"graph": "demo", "algorithm": %q, "options": {"iterations": 0}}`, jobGateAlgoN))
	if status != http.StatusAccepted {
		t.Fatalf("POST /jobs: %d: %s", status, raw)
	}
	var gate jobs.Job
	if err := json.Unmarshal(raw, &gate); err != nil {
		t.Fatal(err)
	}
	<-jobGateSeen
	waitJobState(t, ts.URL, gate.ID, jobs.StateRunning)

	start := time.Now()
	status, raw, _ = httpJob(t, http.MethodPost, ts.URL+"/jobs", fmt.Sprintf(`{"batch": [
		{"graph": "demo", "algorithm": %q, "options": {"iterations": 101}},
		{"graph": "demo", "algorithm": %q, "options": {"iterations": 102}, "priority": "high"},
		{"graph": "demo", "algorithm": %q, "options": {"iterations": 103}, "priority": "low"}
	]}`, jobGateAlgoN, jobGateAlgoN, jobGateAlgoN))
	elapsed := time.Since(start)
	if status != http.StatusAccepted {
		t.Fatalf("POST /jobs batch: %d: %s", status, raw)
	}
	if elapsed > 50*time.Millisecond {
		t.Errorf("batch submission took %v with a saturated engine; must return immediately (<50ms)", elapsed)
	}
	var br serve.BatchResponse
	if err := json.Unmarshal(raw, &br); err != nil {
		t.Fatal(err)
	}
	if br.BatchID == "" || len(br.Jobs) != 3 {
		t.Fatalf("batch reply %s: want a batch ID and 3 jobs", raw)
	}
	for _, j := range br.Jobs {
		if j.State != jobs.StateQueued {
			t.Errorf("freshly batched job %s reports %s, want queued", j.ID, j.State)
		}
		// Results are never ready while the slot is held: 202.
		rstatus, _, _ := httpJob(t, http.MethodGet, ts.URL+"/jobs/"+j.ID+"/result", "")
		if rstatus != http.StatusAccepted {
			t.Errorf("result of queued job %s: %d, want 202", j.ID, rstatus)
		}
	}

	// Listing by state while saturated: 1 running (the gate), 3 queued.
	status, raw, _ = httpJob(t, http.MethodGet, ts.URL+"/jobs?state=queued", "")
	if status != http.StatusOK {
		t.Fatalf("GET /jobs?state=queued: %d: %s", status, raw)
	}
	var queued []jobs.Job
	if err := json.Unmarshal(raw, &queued); err != nil {
		t.Fatal(err)
	}
	if len(queued) != 3 {
		t.Errorf("queued list has %d jobs, want 3: %s", len(queued), raw)
	}

	release()
	// High-priority batch entry dispatches before normal before low.
	order := []int{<-jobGateSeen, <-jobGateSeen, <-jobGateSeen}
	want := []int{102, 101, 103}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", order, want)
		}
	}
	for _, j := range br.Jobs {
		final := waitJobState(t, ts.URL, j.ID, jobs.StateDone)
		if final.StartedMS == 0 || final.FinishedMS == 0 || final.Stats == nil {
			t.Errorf("done job %s lacks timestamps/stats: %+v", j.ID, final)
		}
		rstatus, rraw, _ := httpJob(t, http.MethodGet, ts.URL+"/jobs/"+j.ID+"/result", "")
		if rstatus != http.StatusOK {
			t.Fatalf("result of done job %s: %d: %s", j.ID, rstatus, rraw)
		}
		var rr serve.RunResponse
		if err := json.Unmarshal(rraw, &rr); err != nil {
			t.Fatalf("done result is not a RunResponse: %v", err)
		}
		if rr.Algorithm != jobGateAlgoN || rr.Graph != "demo" {
			t.Errorf("result names (%s, %s), want (%s, demo)", rr.Algorithm, rr.Graph, jobGateAlgoN)
		}
	}

	// DELETE on a done job is a no-op cancel: 200 with the final state.
	status, raw, _ = httpJob(t, http.MethodDelete, ts.URL+"/jobs/"+br.Jobs[0].ID, "")
	if status != http.StatusOK {
		t.Errorf("DELETE done job: %d: %s", status, raw)
	}
	// Unknown job: 404 on every verb.
	for _, probe := range []struct{ method, path string }{
		{http.MethodGet, "/jobs/j-nope"},
		{http.MethodGet, "/jobs/j-nope/result"},
		{http.MethodDelete, "/jobs/j-nope"},
	} {
		if status, _, _ := httpJob(t, probe.method, ts.URL+probe.path, ""); status != http.StatusNotFound {
			t.Errorf("%s %s: %d, want 404", probe.method, probe.path, status)
		}
	}
}

// TestServeJobsValidation: submission errors carry the synchronous
// path's statuses — 404 for unknown names, 400 for malformed specs —
// and a deadline-expired job's result poll is a 504.
func TestServeJobsValidation(t *testing.T) {
	ts, _, _ := newJobServer(t)
	cases := []struct {
		body string
		want int
	}{
		{`{"graph": "nope", "algorithm": "pr"}`, http.StatusNotFound},
		{`{"graph": "demo", "algorithm": "nope"}`, http.StatusNotFound},
		{`{}`, http.StatusBadRequest},
		{`{"graph": "demo", "algorithm": "pr", "options": {"bogus": 1}}`, http.StatusBadRequest},
		{`{"graph": "demo", "algorithm": "pr", "deadline_ms": -5}`, http.StatusBadRequest},
		{`{"graph": "demo", "algorithm": "pr", "priority": "urgent"}`, http.StatusBadRequest},
		{`{"graph": "demo", "algorithm": "pr", "batch": [{"graph": "demo", "algorithm": "pr"}]}`, http.StatusBadRequest},
		{`{"batch": [{"graph": "demo", "algorithm": "pr"}, {"graph": "nope", "algorithm": "pr"}]}`, http.StatusNotFound},
	}
	for _, c := range cases {
		status, raw, _ := httpJob(t, http.MethodPost, ts.URL+"/jobs", c.body)
		if status != c.want {
			t.Errorf("POST /jobs %s: %d, want %d: %s", c.body, status, c.want, raw)
		}
	}

	// A job that expires while the slot is busy: 504 on the result poll.
	release := jobGateBlock(0)
	defer release()
	status, raw, _ := httpJob(t, http.MethodPost, ts.URL+"/jobs",
		fmt.Sprintf(`{"graph": "demo", "algorithm": %q, "options": {"iterations": 0}}`, jobGateAlgoN))
	if status != http.StatusAccepted {
		t.Fatalf("gate submission: %d: %s", status, raw)
	}
	var gate jobs.Job
	if err := json.Unmarshal(raw, &gate); err != nil {
		t.Fatal(err)
	}
	<-jobGateSeen
	status, raw, _ = httpJob(t, http.MethodPost, ts.URL+"/jobs",
		`{"graph": "demo", "algorithm": "pr", "deadline_ms": 40}`)
	if status != http.StatusAccepted {
		t.Fatalf("deadline submission: %d: %s", status, raw)
	}
	var doomed jobs.Job
	if err := json.Unmarshal(raw, &doomed); err != nil {
		t.Fatal(err)
	}
	waitJobState(t, ts.URL, doomed.ID, jobs.StateFailed)
	rstatus, rraw, _ := httpJob(t, http.MethodGet, ts.URL+"/jobs/"+doomed.ID+"/result", "")
	if rstatus != http.StatusGatewayTimeout {
		t.Errorf("result of deadline-expired job: %d, want 504: %s", rstatus, rraw)
	}
}

// TestServeDrain is the graceful-shutdown regression: with a run
// holding the engine's only slot and another parked in the admission
// queue, Drain fails the queued one with 503 immediately while the
// in-flight run finishes normally.
func TestServeDrain(t *testing.T) {
	ts, handler, eng := newJobServer(t)
	release := jobGateBlock(0)
	defer release()

	type result struct {
		status int
		body   string
	}
	results := make(chan result, 2)
	post := func(tag int) {
		body := fmt.Sprintf(`{"graph": "demo", "algorithm": %q, "options": {"iterations": %d}}`, jobGateAlgoN, tag)
		resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Error(err)
			results <- result{0, err.Error()}
			return
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		results <- result{resp.StatusCode, string(raw)}
	}

	go post(0)
	<-jobGateSeen // the in-flight run occupies the only worker slot
	go post(1)
	deadline := time.Now().Add(5 * time.Second)
	for eng.Stats().Waiting < 1 { // the second run is parked in the queue
		if time.Now().After(deadline) {
			t.Fatal("second run never reached the admission queue")
		}
		time.Sleep(time.Millisecond)
	}

	handler.Drain()
	shed := <-results // the queued run fails fast, without the slot freeing
	if shed.status != http.StatusServiceUnavailable {
		t.Fatalf("queued run under drain: %d, want 503: %s", shed.status, shed.body)
	}
	if !strings.Contains(shed.body, "draining") {
		t.Errorf("503 body %q does not say the server is draining", shed.body)
	}

	release()
	inflight := <-results
	if inflight.status != http.StatusOK {
		t.Fatalf("in-flight run under drain: %d, want 200: %s", inflight.status, inflight.body)
	}

	// New queued work after drain is also refused.
	resp, err := http.Post(ts.URL+"/run", "application/json",
		strings.NewReader(fmt.Sprintf(`{"graph": "demo", "algorithm": %q, "options": {"iterations": 2}}`, jobGateAlgoN)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	// The slot is free now, so this admission takes the fast path and
	// runs; only QUEUED work is shed. Both outcomes are legitimate here —
	// assert only that the server still answers.
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain run: %d, want 200 (fast path) or 503 (queued)", resp.StatusCode)
	}
}

// TestServeRetryAfterHonesty: the 429 Retry-After hint reflects
// observed queue waits — once the engine has real queue-wait history
// and a waiter, GET /stats exposes a nonzero queue_eta_ms and the 429
// hint is a whole-second ceiling of it (floored by the configured
// minimum).
func TestServeRetryAfterHonesty(t *testing.T) {
	ts, _, eng := newJobServer(t)

	// Round 1: build queue-wait history — one run holds the slot while a
	// second waits ~80ms in the admission queue, then both finish.
	r1 := jobGateBlock(11)
	defer r1() // release is once-guarded; the mid-test call stays the real one
	done := make(chan struct{}, 2)
	post := func(tag int) {
		body := fmt.Sprintf(`{"graph": "demo", "algorithm": %q, "options": {"iterations": %d}}`, jobGateAlgoN, tag)
		resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(body))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		done <- struct{}{}
	}
	go post(11)
	<-jobGateSeen
	go post(12)
	deadline := time.Now().Add(5 * time.Second)
	for eng.Stats().Waiting < 1 {
		if time.Now().After(deadline) {
			t.Fatal("second run never queued")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(80 * time.Millisecond) // accrue observable queue wait
	r1()
	<-jobGateSeen
	<-done
	<-done

	// Round 2: saturate again and read the telemetry.
	r2 := jobGateBlock(21)
	defer r2()
	go post(21)
	<-jobGateSeen
	go post(22)
	deadline = time.Now().Add(5 * time.Second)
	for eng.Stats().Waiting < 1 {
		if time.Now().After(deadline) {
			t.Fatal("queue never refilled")
		}
		time.Sleep(time.Millisecond)
	}

	status, raw, _ := httpJob(t, http.MethodGet, ts.URL+"/stats", "")
	if status != http.StatusOK {
		t.Fatalf("GET /stats: %d: %s", status, raw)
	}
	var es serve.EngineStats
	if err := json.Unmarshal(raw, &es); err != nil {
		t.Fatal(err)
	}
	if es.Waiting != 1 {
		t.Errorf("stats waiting = %d, want 1", es.Waiting)
	}
	if es.QueueETAMS <= 0 {
		t.Errorf("queue_eta_ms = %d with a waiter and %v mean queue wait; the ETA must be observed, not zero",
			es.QueueETAMS, raw)
	}
	if es.Jobs == nil {
		t.Error("stats carry no jobs census despite a wired manager")
	}

	// The queue (depth 1) is full: the next run is shed with a hint at
	// least the configured floor and consistent with the observed ETA.
	resp, err := http.Post(ts.URL+"/run", "application/json",
		strings.NewReader(fmt.Sprintf(`{"graph": "demo", "algorithm": %q, "options": {"iterations": 23}}`, jobGateAlgoN)))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third run: %d, want 429: %s", resp.StatusCode, raw)
	}
	hint := resp.Header.Get("Retry-After")
	secs, err := strconv.Atoi(hint)
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After %q: want a whole-second integer >= 1", hint)
	}
	if secs > 61 {
		t.Errorf("Retry-After %d blows past the 1-minute ETA cap", secs)
	}
	r2()
	<-jobGateSeen
	<-done
	<-done
}
