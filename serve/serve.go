// Package serve exposes a pushpull.Engine over HTTP: the serving front
// of the engine-centric architecture. One long-lived Engine owns the
// worker pool, the LRU result cache, and the registered Workload handles
// (with their memoized transposes, PA splits and statistics); this
// package is a thin JSON front over it — upload or register graphs once,
// then POST runs against them and let the engine amortize everything the
// paper shows is worth amortizing.
//
// Endpoints:
//
//	GET    /healthz        liveness probe
//	GET    /algorithms     the registry: name, description, caps
//	GET    /graphs         registered workloads: name, n, m, kind, id
//	PUT    /graphs/{name}  register a workload from an edge-list body
//	                       (the WriteWorkload format; the header's kind
//	                       flags — directed, weighted — are honored);
//	                       persisted when the engine has a store attached,
//	                       and overwriting a name with different content
//	                       invalidates the old graph's cached results
//	DELETE /graphs/{name}  drop a workload (registry, cache, and store)
//	POST   /run            {"graph": ..., "algorithm": ..., "options": {...}}
//	GET    /stats          engine cache/dedup telemetry + per-shard queues
//
// Run responses carry the uniform Report lowered to JSON: the payload
// (ranks/counts/colors/parents+levels where the algorithm has one), the
// direction trace, and the run stats including cache_hit and
// queue_wait_ns — the serving layer is benchmarkable end to end.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"pushpull"
	"pushpull/api"
	"pushpull/jobs"
)

// MaxGraphBytes is the default bound on a PUT /graphs upload body
// (override with WithMaxUpload).
const MaxGraphBytes = 1 << 30

// EpochHeader is the replication-epoch header a cluster router stamps on
// the PUT/DELETE mutations it fans out to worker replicas. A worker
// records the epoch per graph name and rejects any mutation carrying an
// epoch no newer than the recorded one with 409 Conflict — so a delayed
// or retried replication write can never overwrite (or resurrect) the
// content of a newer one, and every replica converges on the router's
// latest mutation. Requests without the header (direct clients) bypass
// the guard entirely.
const EpochHeader = "X-Cluster-Epoch"

// Server is an http.Handler serving one Engine.
type Server struct {
	eng *pushpull.Engine
	mux *http.ServeMux

	// jobs is the async job manager behind the /jobs endpoints; nil
	// when the server is synchronous-only (those routes then 404).
	jobs *jobs.Manager

	// draining is closed by Drain: queued (not-yet-admitted) runs fail
	// with 503 while in-flight ones finish.
	draining  chan struct{}
	drainOnce sync.Once

	// maxUpload bounds PUT /graphs bodies; exceeding it is a 413.
	maxUpload int64
	// retryAfter is the floor/fallback for the Retry-After hint on 429
	// responses; the live hint is derived from queue telemetry (see
	// queueETA).
	retryAfter time.Duration

	// epochMu guards epochs, the per-graph replication epochs of the
	// EpochHeader guard. It is held across the engine mutation of an
	// epoch-carrying request so two replication writes cannot interleave
	// check and apply.
	epochMu sync.Mutex
	epochs  map[string]uint64
}

// Option configures a Server.
type Option func(*Server)

// WithMaxUpload bounds PUT /graphs request bodies to n bytes (default
// MaxGraphBytes); a larger upload is refused with 413 before it can
// exhaust the worker's memory. n ≤ 0 keeps the default.
func WithMaxUpload(n int64) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxUpload = n
		}
	}
}

// WithRetryAfter sets the floor (and the idle-telemetry fallback) of the
// Retry-After hint on 429 responses, default one second. The live hint
// is derived from the shedding shard's queue depth × mean queue wait, so
// it grows with actual congestion; this option only bounds it below.
func WithRetryAfter(d time.Duration) Option {
	return func(s *Server) {
		if d > 0 {
			s.retryAfter = d
		}
	}
}

// WithJobManager wires an async job manager into the server, enabling
// the /jobs endpoints (submission, status, result, cancel, listing).
// Without it those routes 404: a synchronous-only worker advertises no
// async surface.
func WithJobManager(m *jobs.Manager) Option {
	return func(s *Server) { s.jobs = m }
}

// New builds a Server over eng.
func New(eng *pushpull.Engine, opts ...Option) *Server {
	s := &Server{
		eng:        eng,
		mux:        http.NewServeMux(),
		draining:   make(chan struct{}),
		maxUpload:  MaxGraphBytes,
		retryAfter: time.Second,
		epochs:     map[string]uint64{},
	}
	for _, opt := range opts {
		opt(s)
	}
	s.mux.HandleFunc("GET /healthz", s.healthz)
	s.mux.HandleFunc("GET /algorithms", s.algorithms)
	s.mux.HandleFunc("GET /graphs", s.graphs)
	s.mux.HandleFunc("PUT /graphs/{name}", s.putGraph)
	s.mux.HandleFunc("DELETE /graphs/{name}", s.deleteGraph)
	s.mux.HandleFunc("POST /run", s.run)
	s.mux.HandleFunc("GET /stats", s.stats)
	if s.jobs != nil {
		s.mux.HandleFunc("POST /jobs", s.submitJobs)
		s.mux.HandleFunc("GET /jobs", s.listJobs)
		s.mux.HandleFunc("GET /jobs/{id}", s.jobStatus)
		s.mux.HandleFunc("GET /jobs/{id}/result", s.jobResult)
		s.mux.HandleFunc("DELETE /jobs/{id}", s.cancelJob)
	}
	return s
}

// Drain puts the server into shutdown mode: runs already holding a
// worker slot finish normally, but runs parked in (or newly reaching)
// the admission queues fail immediately with 503 — a queue that will
// never move must not race the shutdown timeout. Call before
// http.Server.Shutdown; idempotent. Async jobs are unaffected (stop
// their Manager separately).
func (s *Server) Drain() {
	s.drainOnce.Do(func() { close(s.draining) })
}

// Jobs returns the job manager behind the /jobs endpoints, nil if none.
func (s *Server) Jobs() *jobs.Manager { return s.jobs }

// Engine returns the Engine the server fronts.
func (s *Server) Engine() *pushpull.Engine { return s.eng }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// ---- request/response shapes ----

// AlgorithmInfo is one GET /algorithms entry.
type AlgorithmInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Caps        string `json:"caps"`
}

// GraphInfo is one GET /graphs entry (also the PUT /graphs response).
type GraphInfo struct {
	Name string `json:"name"`
	N    int    `json:"n"`
	M    int64  `json:"m"`
	Kind string `json:"kind"`
	ID   string `json:"id"`
}

// The run wire types live in pushpull/api (shared with pushpull/jobs and
// pushpull/cluster); the original serve names are kept as aliases so
// pre-jobs clients compile unchanged.

// RunRequest is the POST /run body.
type RunRequest = api.RunRequest

// RunOptions is the JSON projection of the engine's functional options.
type RunOptions = api.RunOptions

// RunResponse is the POST /run body on success.
type RunResponse = api.RunResponse

// RunStats is the JSON projection of the report's RunStats.
type RunStats = api.RunStats

// Floats is api.Floats: a float vector marshaling non-finite entries as
// null.
type Floats = api.Floats

// ShardStats is one per-shard entry of the GET /stats body. Waiting is
// the instantaneous admission-queue depth (the cumulative counters only
// ever grow).
type ShardStats struct {
	Shard       int    `json:"shard"`
	Runs        uint64 `json:"runs"`
	QueuedRuns  uint64 `json:"queued_runs"`
	QueueWaitNS int64  `json:"queue_wait_ns"`
	Waiting     int64  `json:"waiting"`
	Rejected    uint64 `json:"rejected"`
}

// EngineStats is the GET /stats body. QueuedRuns/QueueWaitNS/Waiting
// aggregate the per-shard breakdown in Shards. QueueETAMS is the live
// estimate of how long a run arriving now would queue (deepest shard's
// depth × its mean historical queue wait) — the same number 429
// responses send as Retry-After, rounded up to seconds there.
type EngineStats struct {
	CacheHits    uint64       `json:"cache_hits"`
	CacheMisses  uint64       `json:"cache_misses"`
	Uncacheable  uint64       `json:"uncacheable"`
	Coalesced    uint64       `json:"coalesced"`
	CacheExpired uint64       `json:"cache_expired"`
	CacheEntries int          `json:"cache_entries"`
	QueuedRuns   uint64       `json:"queued_runs"`
	QueueWaitNS  int64        `json:"queue_wait_ns"`
	Waiting      int64        `json:"waiting"`
	QueueETAMS   int64        `json:"queue_eta_ms"`
	Rejected     uint64       `json:"rejected"`
	Graphs       int          `json:"graphs"`
	Shards       []ShardStats `json:"shards"`
	// Jobs is the async job census, present when a job manager is wired.
	Jobs *jobs.Stats `json:"jobs,omitempty"`
}

type errorBody struct {
	Error string `json:"error"`
}

// ---- handlers ----

func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) algorithms(w http.ResponseWriter, r *http.Request) {
	names := pushpull.Algorithms()
	out := make([]AlgorithmInfo, 0, len(names))
	for _, n := range names {
		a, err := pushpull.Lookup(n)
		if err != nil {
			continue
		}
		out = append(out, AlgorithmInfo{Name: n, Description: a.Describe(), Caps: a.Caps().String()})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) graphs(w http.ResponseWriter, r *http.Request) {
	names := s.eng.WorkloadNames()
	out := make([]GraphInfo, 0, len(names))
	for _, n := range names {
		if wl, ok := s.eng.Workload(n); ok {
			out = append(out, graphInfo(n, wl))
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) putGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	epoch, hasEpoch, err := epochFrom(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.maxUpload)
	wl, err := pushpull.ReadWorkload(body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("upload exceeds the server's %d-byte graph limit; split the graph or raise -max-upload", s.maxUpload))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("parsing edge list: %w", err))
		return
	}
	if hasEpoch {
		s.epochMu.Lock()
		defer s.epochMu.Unlock()
		if cur := s.epochs[name]; epoch <= cur {
			w.Header().Set(EpochHeader, strconv.FormatUint(cur, 10))
			writeError(w, http.StatusConflict,
				fmt.Errorf("stale cluster epoch %d for graph %q (current %d)", epoch, name, cur))
			return
		}
	}
	if err := s.eng.RegisterWorkload(name, wl); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, pushpull.ErrStore) {
			// The graph is registered but not persisted: a server-side
			// fault, not a client mistake.
			status = http.StatusInternalServerError
		}
		writeError(w, status, err)
		return
	}
	if hasEpoch {
		s.epochs[name] = epoch
		w.Header().Set(EpochHeader, strconv.FormatUint(epoch, 10))
	}
	// Report the binding the engine actually serves: a store past its
	// memory budget swaps the upload for a pure out-of-core handle, and
	// the client should see that handle's kind and identity.
	if cur, ok := s.eng.Workload(name); ok {
		wl = cur
	}
	writeJSON(w, http.StatusCreated, graphInfo(name, wl))
}

func (s *Server) deleteGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	epoch, hasEpoch, err := epochFrom(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if hasEpoch {
		s.epochMu.Lock()
		defer s.epochMu.Unlock()
		if cur := s.epochs[name]; epoch <= cur {
			w.Header().Set(EpochHeader, strconv.FormatUint(cur, 10))
			writeError(w, http.StatusConflict,
				fmt.Errorf("stale cluster epoch %d for graph %q (current %d)", epoch, name, cur))
			return
		}
		// Record the deletion epoch whether or not the name is bound, so
		// a delayed replication PUT from before this delete is fenced.
		s.epochs[name] = epoch
	}
	ok, err := s.eng.DropWorkload(name)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown graph %q", name))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// epochFrom parses the optional EpochHeader of a cluster-replicated
// mutation.
func epochFrom(r *http.Request) (epoch uint64, ok bool, err error) {
	h := r.Header.Get(EpochHeader)
	if h == "" {
		return 0, false, nil
	}
	epoch, err = strconv.ParseUint(h, 10, 64)
	if err != nil {
		return 0, false, fmt.Errorf("bad %s header %q: %w", EpochHeader, h, err)
	}
	return epoch, true, nil
}

func (s *Server) run(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var req RunRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parsing run request: %w", err))
		return
	}
	if req.Graph == "" || req.Algorithm == "" {
		writeError(w, http.StatusBadRequest, errors.New(`"graph" and "algorithm" are required`))
		return
	}
	wl, ok := s.eng.Workload(req.Graph)
	if !ok {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("unknown graph %q (registered: %v)", req.Graph, s.eng.WorkloadNames()))
		return
	}
	if _, err := pushpull.Lookup(req.Algorithm); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	opts, err := req.Options.ToOptions()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// The drain signal rides the context so a queued (not-yet-admitted)
	// run fails the moment Drain is called, while admitted runs finish.
	ctx := pushpull.WithDrainSignal(r.Context(), s.draining)
	if req.Options.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.Options.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	rep, err := s.eng.Run(ctx, wl, req.Algorithm, opts...)
	if err != nil {
		if errors.Is(err, pushpull.ErrOverloaded) {
			// The shard shed this run instead of queueing it: tell the
			// client (or the cluster router, which fails over on 429)
			// when to come back rather than letting it queue forever.
			// The hint is honest — current queue depth × recent mean
			// queue wait — so clients back off longer as congestion
			// actually grows.
			eta := s.queueETA()
			if eta < s.retryAfter {
				eta = s.retryAfter
			}
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(eta)))
			writeError(w, http.StatusTooManyRequests, err)
			return
		}
		if errors.Is(err, pushpull.ErrDraining) {
			// Shutting down: the queue this run was parked in will never
			// move again. 503 sends the client (or router) elsewhere.
			writeError(w, http.StatusServiceUnavailable, err)
			return
		}
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, api.BuildResponse(req.Graph, rep))
}

func (s *Server) stats(w http.ResponseWriter, r *http.Request) {
	es := s.eng.Stats()
	out := EngineStats{
		CacheHits:    es.CacheHits,
		CacheMisses:  es.CacheMisses,
		Uncacheable:  es.Uncacheable,
		Coalesced:    es.Coalesced,
		CacheExpired: es.Expired,
		CacheEntries: es.CacheEntries,
		QueuedRuns:   es.QueuedRuns,
		QueueWaitNS:  int64(es.QueueWait),
		Waiting:      es.Waiting,
		QueueETAMS:   queueETA(es).Milliseconds(),
		Rejected:     es.Rejected,
		Graphs:       len(s.eng.WorkloadNames()),
		Shards:       make([]ShardStats, len(es.Shards)),
	}
	for i, sh := range es.Shards {
		out.Shards[i] = ShardStats{
			Shard:       sh.Shard,
			Runs:        sh.Runs,
			QueuedRuns:  sh.QueuedRuns,
			QueueWaitNS: int64(sh.QueueWait),
			Waiting:     sh.Waiting,
			Rejected:    sh.Rejected,
		}
	}
	if s.jobs != nil {
		js := s.jobs.Stats()
		out.Jobs = &js
	}
	writeJSON(w, http.StatusOK, out)
}

// queueETA estimates how long a run arriving now would wait: the deepest
// shard's live queue depth × that shard's mean historical queue wait,
// capped at a minute (past that the number is a guess, not an estimate).
// Zero when no shard has live waiters or no wait history exists yet.
func queueETA(es pushpull.EngineStats) time.Duration {
	var eta time.Duration
	for _, sh := range es.Shards {
		if sh.Waiting <= 0 || sh.QueuedRuns == 0 {
			continue
		}
		mean := sh.QueueWait / time.Duration(sh.QueuedRuns)
		if d := time.Duration(sh.Waiting) * mean; d > eta {
			eta = d
		}
	}
	if eta > time.Minute {
		eta = time.Minute
	}
	return eta
}

// queueETA is the server-side wrapper over the live engine snapshot.
func (s *Server) queueETA() time.Duration { return queueETA(s.eng.Stats()) }

// retryAfterSeconds rounds an ETA up to whole seconds (the Retry-After
// unit), at least 1.
func retryAfterSeconds(eta time.Duration) int {
	secs := int((eta + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// ---- lowering helpers ----

func graphInfo(name string, wl *pushpull.Workload) GraphInfo {
	return GraphInfo{Name: name, N: wl.N(), M: wl.M(), Kind: wl.Kind(), ID: wl.ID()}
}

// statusFor maps engine errors onto HTTP statuses: precondition failures
// are the client's (400), timeouts are gateway timeouts, the rest is a
// server-side 500.
func statusFor(err error) int {
	switch {
	case errors.Is(err, pushpull.ErrNeedsWeights),
		errors.Is(err, pushpull.ErrDirectedUnsupported),
		errors.Is(err, pushpull.ErrProbesUnsupported),
		errors.Is(err, pushpull.ErrPartitionAwareUnsupported),
		errors.Is(err, pushpull.ErrOutOfCoreUnsupported),
		errors.Is(err, pushpull.ErrBadSource),
		errors.Is(err, pushpull.ErrBadOption):
		return http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	// Marshal before touching the response: an encoding failure after
	// WriteHeader would send a truncated 200.
	buf, err := json.Marshal(body)
	if err != nil {
		buf = []byte(fmt.Sprintf(`{"error": "encoding response: %s"}`, err))
		status = http.StatusInternalServerError
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(buf)
	w.Write([]byte("\n"))
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}
