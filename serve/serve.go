// Package serve exposes a pushpull.Engine over HTTP: the serving front
// of the engine-centric architecture. One long-lived Engine owns the
// worker pool, the LRU result cache, and the registered Workload handles
// (with their memoized transposes, PA splits and statistics); this
// package is a thin JSON front over it — upload or register graphs once,
// then POST runs against them and let the engine amortize everything the
// paper shows is worth amortizing.
//
// Endpoints:
//
//	GET    /healthz        liveness probe
//	GET    /algorithms     the registry: name, description, caps
//	GET    /graphs         registered workloads: name, n, m, kind, id
//	PUT    /graphs/{name}  register a workload from an edge-list body
//	                       (the WriteWorkload format; the header's kind
//	                       flags — directed, weighted — are honored);
//	                       persisted when the engine has a store attached,
//	                       and overwriting a name with different content
//	                       invalidates the old graph's cached results
//	DELETE /graphs/{name}  drop a workload (registry, cache, and store)
//	POST   /run            {"graph": ..., "algorithm": ..., "options": {...}}
//	GET    /stats          engine cache/dedup telemetry + per-shard queues
//
// Run responses carry the uniform Report lowered to JSON: the payload
// (ranks/counts/colors/parents+levels where the algorithm has one), the
// direction trace, and the run stats including cache_hit and
// queue_wait_ns — the serving layer is benchmarkable end to end.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"pushpull"
)

// MaxGraphBytes is the default bound on a PUT /graphs upload body
// (override with WithMaxUpload).
const MaxGraphBytes = 1 << 30

// EpochHeader is the replication-epoch header a cluster router stamps on
// the PUT/DELETE mutations it fans out to worker replicas. A worker
// records the epoch per graph name and rejects any mutation carrying an
// epoch no newer than the recorded one with 409 Conflict — so a delayed
// or retried replication write can never overwrite (or resurrect) the
// content of a newer one, and every replica converges on the router's
// latest mutation. Requests without the header (direct clients) bypass
// the guard entirely.
const EpochHeader = "X-Cluster-Epoch"

// Server is an http.Handler serving one Engine.
type Server struct {
	eng *pushpull.Engine
	mux *http.ServeMux

	// maxUpload bounds PUT /graphs bodies; exceeding it is a 413.
	maxUpload int64
	// retryAfter is the Retry-After hint attached to 429 responses when
	// the engine sheds a run with ErrOverloaded.
	retryAfter time.Duration

	// epochMu guards epochs, the per-graph replication epochs of the
	// EpochHeader guard. It is held across the engine mutation of an
	// epoch-carrying request so two replication writes cannot interleave
	// check and apply.
	epochMu sync.Mutex
	epochs  map[string]uint64
}

// Option configures a Server.
type Option func(*Server)

// WithMaxUpload bounds PUT /graphs request bodies to n bytes (default
// MaxGraphBytes); a larger upload is refused with 413 before it can
// exhaust the worker's memory. n ≤ 0 keeps the default.
func WithMaxUpload(n int64) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxUpload = n
		}
	}
}

// WithRetryAfter sets the Retry-After hint on 429 responses (default one
// second).
func WithRetryAfter(d time.Duration) Option {
	return func(s *Server) {
		if d > 0 {
			s.retryAfter = d
		}
	}
}

// New builds a Server over eng.
func New(eng *pushpull.Engine, opts ...Option) *Server {
	s := &Server{
		eng:        eng,
		mux:        http.NewServeMux(),
		maxUpload:  MaxGraphBytes,
		retryAfter: time.Second,
		epochs:     map[string]uint64{},
	}
	for _, opt := range opts {
		opt(s)
	}
	s.mux.HandleFunc("GET /healthz", s.healthz)
	s.mux.HandleFunc("GET /algorithms", s.algorithms)
	s.mux.HandleFunc("GET /graphs", s.graphs)
	s.mux.HandleFunc("PUT /graphs/{name}", s.putGraph)
	s.mux.HandleFunc("DELETE /graphs/{name}", s.deleteGraph)
	s.mux.HandleFunc("POST /run", s.run)
	s.mux.HandleFunc("GET /stats", s.stats)
	return s
}

// Engine returns the Engine the server fronts.
func (s *Server) Engine() *pushpull.Engine { return s.eng }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// ---- request/response shapes ----

// AlgorithmInfo is one GET /algorithms entry.
type AlgorithmInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Caps        string `json:"caps"`
}

// GraphInfo is one GET /graphs entry (also the PUT /graphs response).
type GraphInfo struct {
	Name string `json:"name"`
	N    int    `json:"n"`
	M    int64  `json:"m"`
	Kind string `json:"kind"`
	ID   string `json:"id"`
}

// RunRequest is the POST /run body.
type RunRequest struct {
	// Graph names a workload registered on the engine (PUT /graphs or
	// server-side preload).
	Graph string `json:"graph"`
	// Algorithm is the registry name ("pr", "bfs", "dist-pr-mp", ...).
	Algorithm string `json:"algorithm"`
	// Options carries the run options; zero values mean the engine
	// defaults, exactly like the With* functional options.
	Options RunOptions `json:"options"`
}

// RunOptions is the JSON projection of the engine's functional options.
// Unknown fields are rejected so a typo cannot silently run defaults.
type RunOptions struct {
	Direction      string   `json:"direction,omitempty"` // "push", "pull", "auto"
	Threads        int      `json:"threads,omitempty"`
	Iterations     int      `json:"iterations,omitempty"`
	MaxIters       int      `json:"max_iters,omitempty"`
	Source         int      `json:"source,omitempty"`
	Sources        []int    `json:"sources,omitempty"`
	Delta          float64  `json:"delta,omitempty"`
	Damping        *float64 `json:"damping,omitempty"`
	Partitions     int      `json:"partitions,omitempty"`
	PartitionAware bool     `json:"partition_aware,omitempty"`
	Ranks          int      `json:"ranks,omitempty"`
	// TimeoutMS bounds the run server-side; the request context already
	// cancels it when the client disconnects.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// RunResponse is the POST /run body on success.
type RunResponse struct {
	Algorithm  string   `json:"algorithm"`
	Graph      string   `json:"graph"`
	Summary    string   `json:"summary"`
	Stats      RunStats `json:"stats"`
	Directions []string `json:"directions,omitempty"`
	// Ranks holds float payloads (pr ranks, bc scores, sssp distances);
	// non-finite entries — the +Inf distance of an unreached vertex —
	// are encoded as null.
	Ranks   Floats  `json:"ranks,omitempty"`
	Counts  []int64 `json:"counts,omitempty"`
	Colors  []int32 `json:"colors,omitempty"`
	Parents []int64 `json:"parents,omitempty"`
	Levels  []int32 `json:"levels,omitempty"`
}

// RunStats is the JSON projection of the report's RunStats.
type RunStats struct {
	Direction   string `json:"direction"`
	Iterations  int    `json:"iterations"`
	ElapsedNS   int64  `json:"elapsed_ns"`
	QueueWaitNS int64  `json:"queue_wait_ns"`
	CacheHit    bool   `json:"cache_hit"`
	Coalesced   bool   `json:"coalesced"`
	Canceled    bool   `json:"canceled"`
}

// ShardStats is one per-shard entry of the GET /stats body.
type ShardStats struct {
	Shard       int    `json:"shard"`
	Runs        uint64 `json:"runs"`
	QueuedRuns  uint64 `json:"queued_runs"`
	QueueWaitNS int64  `json:"queue_wait_ns"`
	Rejected    uint64 `json:"rejected"`
}

// EngineStats is the GET /stats body. QueuedRuns/QueueWaitNS aggregate
// the per-shard breakdown in Shards.
type EngineStats struct {
	CacheHits    uint64       `json:"cache_hits"`
	CacheMisses  uint64       `json:"cache_misses"`
	Uncacheable  uint64       `json:"uncacheable"`
	Coalesced    uint64       `json:"coalesced"`
	CacheExpired uint64       `json:"cache_expired"`
	CacheEntries int          `json:"cache_entries"`
	QueuedRuns   uint64       `json:"queued_runs"`
	QueueWaitNS  int64        `json:"queue_wait_ns"`
	Rejected     uint64       `json:"rejected"`
	Graphs       int          `json:"graphs"`
	Shards       []ShardStats `json:"shards"`
}

type errorBody struct {
	Error string `json:"error"`
}

// ---- handlers ----

func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) algorithms(w http.ResponseWriter, r *http.Request) {
	names := pushpull.Algorithms()
	out := make([]AlgorithmInfo, 0, len(names))
	for _, n := range names {
		a, err := pushpull.Lookup(n)
		if err != nil {
			continue
		}
		out = append(out, AlgorithmInfo{Name: n, Description: a.Describe(), Caps: a.Caps().String()})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) graphs(w http.ResponseWriter, r *http.Request) {
	names := s.eng.WorkloadNames()
	out := make([]GraphInfo, 0, len(names))
	for _, n := range names {
		if wl, ok := s.eng.Workload(n); ok {
			out = append(out, graphInfo(n, wl))
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) putGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	epoch, hasEpoch, err := epochFrom(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.maxUpload)
	wl, err := pushpull.ReadWorkload(body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("upload exceeds the server's %d-byte graph limit; split the graph or raise -max-upload", s.maxUpload))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("parsing edge list: %w", err))
		return
	}
	if hasEpoch {
		s.epochMu.Lock()
		defer s.epochMu.Unlock()
		if cur := s.epochs[name]; epoch <= cur {
			w.Header().Set(EpochHeader, strconv.FormatUint(cur, 10))
			writeError(w, http.StatusConflict,
				fmt.Errorf("stale cluster epoch %d for graph %q (current %d)", epoch, name, cur))
			return
		}
	}
	if err := s.eng.RegisterWorkload(name, wl); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, pushpull.ErrStore) {
			// The graph is registered but not persisted: a server-side
			// fault, not a client mistake.
			status = http.StatusInternalServerError
		}
		writeError(w, status, err)
		return
	}
	if hasEpoch {
		s.epochs[name] = epoch
		w.Header().Set(EpochHeader, strconv.FormatUint(epoch, 10))
	}
	writeJSON(w, http.StatusCreated, graphInfo(name, wl))
}

func (s *Server) deleteGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	epoch, hasEpoch, err := epochFrom(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if hasEpoch {
		s.epochMu.Lock()
		defer s.epochMu.Unlock()
		if cur := s.epochs[name]; epoch <= cur {
			w.Header().Set(EpochHeader, strconv.FormatUint(cur, 10))
			writeError(w, http.StatusConflict,
				fmt.Errorf("stale cluster epoch %d for graph %q (current %d)", epoch, name, cur))
			return
		}
		// Record the deletion epoch whether or not the name is bound, so
		// a delayed replication PUT from before this delete is fenced.
		s.epochs[name] = epoch
	}
	ok, err := s.eng.DropWorkload(name)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown graph %q", name))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// epochFrom parses the optional EpochHeader of a cluster-replicated
// mutation.
func epochFrom(r *http.Request) (epoch uint64, ok bool, err error) {
	h := r.Header.Get(EpochHeader)
	if h == "" {
		return 0, false, nil
	}
	epoch, err = strconv.ParseUint(h, 10, 64)
	if err != nil {
		return 0, false, fmt.Errorf("bad %s header %q: %w", EpochHeader, h, err)
	}
	return epoch, true, nil
}

func (s *Server) run(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var req RunRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parsing run request: %w", err))
		return
	}
	if req.Graph == "" || req.Algorithm == "" {
		writeError(w, http.StatusBadRequest, errors.New(`"graph" and "algorithm" are required`))
		return
	}
	wl, ok := s.eng.Workload(req.Graph)
	if !ok {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("unknown graph %q (registered: %v)", req.Graph, s.eng.WorkloadNames()))
		return
	}
	if _, err := pushpull.Lookup(req.Algorithm); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	opts, err := req.Options.toOptions()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx := r.Context()
	if req.Options.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.Options.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	rep, err := s.eng.Run(ctx, wl, req.Algorithm, opts...)
	if err != nil {
		if errors.Is(err, pushpull.ErrOverloaded) {
			// The shard shed this run instead of queueing it: tell the
			// client (or the cluster router, which fails over on 429)
			// when to come back rather than letting it queue forever.
			w.Header().Set("Retry-After", strconv.Itoa(int(s.retryAfter.Round(time.Second)/time.Second)))
			writeError(w, http.StatusTooManyRequests, err)
			return
		}
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, buildResponse(req, rep))
}

func (s *Server) stats(w http.ResponseWriter, r *http.Request) {
	es := s.eng.Stats()
	out := EngineStats{
		CacheHits:    es.CacheHits,
		CacheMisses:  es.CacheMisses,
		Uncacheable:  es.Uncacheable,
		Coalesced:    es.Coalesced,
		CacheExpired: es.Expired,
		CacheEntries: es.CacheEntries,
		QueuedRuns:   es.QueuedRuns,
		QueueWaitNS:  int64(es.QueueWait),
		Rejected:     es.Rejected,
		Graphs:       len(s.eng.WorkloadNames()),
		Shards:       make([]ShardStats, len(es.Shards)),
	}
	for i, sh := range es.Shards {
		out.Shards[i] = ShardStats{
			Shard:       sh.Shard,
			Runs:        sh.Runs,
			QueuedRuns:  sh.QueuedRuns,
			QueueWaitNS: int64(sh.QueueWait),
			Rejected:    sh.Rejected,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// ---- lowering helpers ----

func graphInfo(name string, wl *pushpull.Workload) GraphInfo {
	return GraphInfo{Name: name, N: wl.N(), M: wl.M(), Kind: wl.Kind(), ID: wl.ID()}
}

func (o *RunOptions) toOptions() ([]pushpull.Option, error) {
	var opts []pushpull.Option
	switch o.Direction {
	case "", "auto":
	case "push":
		opts = append(opts, pushpull.WithDirection(pushpull.Push))
	case "pull":
		opts = append(opts, pushpull.WithDirection(pushpull.Pull))
	default:
		return nil, fmt.Errorf(`bad "direction" %q (push, pull, auto)`, o.Direction)
	}
	if o.Threads != 0 {
		opts = append(opts, pushpull.WithThreads(o.Threads))
	}
	if o.Iterations != 0 {
		opts = append(opts, pushpull.WithIterations(o.Iterations))
	}
	if o.MaxIters != 0 {
		opts = append(opts, pushpull.WithMaxIters(o.MaxIters))
	}
	if o.Source != 0 {
		opts = append(opts, pushpull.WithSource(pushpull.V(o.Source)))
	}
	if len(o.Sources) > 0 {
		vs := make([]pushpull.V, len(o.Sources))
		for i, v := range o.Sources {
			vs[i] = pushpull.V(v)
		}
		opts = append(opts, pushpull.WithSources(vs))
	}
	if o.Delta != 0 {
		opts = append(opts, pushpull.WithDelta(o.Delta))
	}
	if o.Damping != nil {
		opts = append(opts, pushpull.WithDamping(*o.Damping))
	}
	if o.Partitions != 0 {
		opts = append(opts, pushpull.WithPartitions(o.Partitions))
	}
	if o.PartitionAware {
		opts = append(opts, pushpull.WithPartitionAwareness())
	}
	if o.Ranks != 0 {
		opts = append(opts, pushpull.WithRanks(o.Ranks))
	}
	return opts, nil
}

func buildResponse(req RunRequest, rep *pushpull.Report) RunResponse {
	resp := RunResponse{
		Algorithm: rep.Algorithm,
		Graph:     req.Graph,
		Summary:   rep.Summary(),
		Stats: RunStats{
			Direction:   statsDirection(rep),
			Iterations:  rep.Stats.Iterations,
			ElapsedNS:   int64(rep.Stats.Elapsed),
			QueueWaitNS: int64(rep.Stats.QueueWait),
			CacheHit:    rep.Stats.CacheHit,
			Coalesced:   rep.Stats.Coalesced,
			Canceled:    rep.Stats.Canceled,
		},
	}
	for _, d := range rep.Directions {
		resp.Directions = append(resp.Directions, d.String())
	}
	resp.Ranks = Floats(rep.Ranks())
	resp.Counts = rep.Counts()
	resp.Colors = rep.Colors()
	if t := rep.Tree(); t != nil {
		resp.Parents = make([]int64, len(t.Parent))
		for i, p := range t.Parent {
			resp.Parents[i] = int64(p)
		}
		resp.Levels = t.Level
	}
	return resp
}

// statsDirection names the run's direction in the trace's lowercase
// vocabulary: "push"/"pull" for uniform runs, "mixed" when a switching
// run flipped mid-way.
func statsDirection(rep *pushpull.Report) string {
	if len(rep.Directions) == 0 {
		// No trace (e.g. dist-* simulations): fall back to the stats
		// block's paper-style name, lowered to the API vocabulary.
		switch rep.Stats.Direction.String() {
		case "Pushing":
			return "push"
		case "Pulling":
			return "pull"
		}
		return "auto"
	}
	first := rep.Directions[0]
	for _, d := range rep.Directions[1:] {
		if d != first {
			return "mixed"
		}
	}
	return first.String()
}

// statusFor maps engine errors onto HTTP statuses: precondition failures
// are the client's (400), timeouts are gateway timeouts, the rest is a
// server-side 500.
func statusFor(err error) int {
	switch {
	case errors.Is(err, pushpull.ErrNeedsWeights),
		errors.Is(err, pushpull.ErrDirectedUnsupported),
		errors.Is(err, pushpull.ErrProbesUnsupported),
		errors.Is(err, pushpull.ErrPartitionAwareUnsupported),
		errors.Is(err, pushpull.ErrBadSource),
		errors.Is(err, pushpull.ErrBadOption):
		return http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// Floats is a float vector that marshals non-finite entries (NaN, ±Inf —
// e.g. the +Inf distances sssp assigns unreached vertices) as null,
// which encoding/json rejects outright in a plain []float64.
type Floats []float64

// MarshalJSON implements json.Marshaler.
func (f Floats) MarshalJSON() ([]byte, error) {
	if f == nil {
		return []byte("null"), nil
	}
	out := make([]byte, 0, 8*len(f)+2)
	out = append(out, '[')
	for i, v := range f {
		if i > 0 {
			out = append(out, ',')
		}
		if math.IsInf(v, 0) || math.IsNaN(v) {
			out = append(out, "null"...)
		} else {
			out = strconv.AppendFloat(out, v, 'g', -1, 64)
		}
	}
	return append(out, ']'), nil
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	// Marshal before touching the response: an encoding failure after
	// WriteHeader would send a truncated 200.
	buf, err := json.Marshal(body)
	if err != nil {
		buf = []byte(fmt.Sprintf(`{"error": "encoding response: %s"}`, err))
		status = http.StatusInternalServerError
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(buf)
	w.Write([]byte("\n"))
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}
