package serve_test

// Admission-boundary tests for the serving front: oversized uploads are
// refused with 413 before parsing, a full shard admission queue sheds
// load as 429 + Retry-After instead of queueing forever, and the
// X-Cluster-Epoch guard fences stale replicated mutations.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pushpull"
	"pushpull/serve"
)

// TestServeMaxUpload: a body over the configured cap yields 413 with a
// message naming the limit; a small graph under the default cap is fine.
func TestServeMaxUpload(t *testing.T) {
	eng := pushpull.NewEngine()
	ts := httptest.NewServer(serve.New(eng, serve.WithMaxUpload(64)))
	t.Cleanup(ts.Close)

	var buf bytes.Buffer
	if err := pushpull.WriteWorkload(&buf, pushpull.NewWorkload(smallGraph(t))); err != nil {
		t.Fatal(err)
	}
	if buf.Len() <= 64 {
		t.Fatalf("test graph serializes to %d bytes, need > 64", buf.Len())
	}
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/graphs/big", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized PUT got %d, want 413: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "64") {
		t.Errorf("413 body %q does not name the configured limit", body)
	}
	if _, ok := eng.Workload("big"); ok {
		t.Error("rejected upload still registered a workload")
	}
}

// blockAlgo parks until the test releases it, so a worker slot can be
// held occupied deterministically.
var (
	blockStarted = make(chan struct{}, 16)
	blockRelease = make(chan struct{})
	blockOnce    sync.Once
)

type blockAlgo struct{}

func (blockAlgo) Name() string     { return "test-block" }
func (blockAlgo) Describe() string { return "test-only: parks until released" }
func (blockAlgo) Caps() pushpull.Caps {
	return pushpull.Caps{}
}
func (blockAlgo) Run(ctx context.Context, w *pushpull.Workload, cfg *pushpull.Config) (*pushpull.Report, error) {
	blockStarted <- struct{}{}
	select {
	case <-blockRelease:
	case <-ctx.Done():
	}
	return &pushpull.Report{Result: []float64{1}, Stats: pushpull.RunStats{Iterations: 1}}, nil
}

// TestServeOverload429: with one worker slot and a one-deep admission
// queue, the third concurrent run is shed as 429 + Retry-After while the
// first two complete normally once the slot frees.
func TestServeOverload429(t *testing.T) {
	blockOnce.Do(func() { pushpull.MustRegister(blockAlgo{}) })
	// Re-arm the package-level gate so -count=N reps park again (every
	// reader from a previous rep has finished by wg.Wait + ts.Close).
	blockRelease = make(chan struct{})
	for {
		select {
		case <-blockStarted:
			continue
		default:
		}
		break
	}
	eng := pushpull.NewEngine(
		pushpull.WithWorkers(1), pushpull.WithShards(1), pushpull.WithQueueLimit(1),
		pushpull.WithResultCache(0), pushpull.WithSingleFlight(false),
	)
	ts := httptest.NewServer(serve.New(eng))
	t.Cleanup(ts.Close)
	uploadGraph(t, ts, "demo", pushpull.NewWorkload(smallGraph(t)))

	post := func(iters int) *http.Response {
		body := strings.NewReader(fmt.Sprintf(
			`{"graph": "demo", "algorithm": "test-block", "options": {"iterations": %d}}`, iters))
		resp, err := http.Post(ts.URL+"/run", "application/json", body)
		if err != nil {
			t.Error(err)
			return nil
		}
		return resp
	}

	statuses := make(chan int, 2)
	var wg sync.WaitGroup
	launch := func(iters int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := post(iters)
			if resp == nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			statuses <- resp.StatusCode
		}()
	}

	launch(1)
	<-blockStarted // the leader occupies the only worker slot
	launch(2)
	deadline := time.Now().Add(5 * time.Second)
	for eng.Stats().QueuedRuns < 1 { // the second run is parked in the queue
		if time.Now().After(deadline) {
			t.Fatal("second run never reached the admission queue")
		}
		time.Sleep(time.Millisecond)
	}

	resp := post(3) // queue full: must be shed, not parked
	if resp == nil {
		t.FailNow()
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third run got %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response carries no Retry-After hint")
	}

	close(blockRelease)
	<-blockStarted // the queued run starts once the slot frees
	wg.Wait()
	close(statuses)
	for st := range statuses {
		if st != http.StatusOK {
			t.Errorf("a non-shed run finished with %d, want 200", st)
		}
	}
	if st := eng.Stats(); st.Rejected != 1 {
		t.Errorf("engine counted %d rejected runs, want 1", st.Rejected)
	}
}

// TestServeEpochGuard: the worker-side fence — mutations carrying an
// epoch at or below the last recorded one 409, DELETE records its epoch
// even for unbound names (a late stale PUT after a delete must not
// resurrect the graph), and epoch-less requests bypass the guard.
func TestServeEpochGuard(t *testing.T) {
	ts, eng := newTestServer(t)
	g := smallGraph(t)

	put := func(name string, epoch string) int {
		t.Helper()
		var buf bytes.Buffer
		if err := pushpull.WriteWorkload(&buf, pushpull.NewWorkload(g)); err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest(http.MethodPut, ts.URL+"/graphs/"+name, &buf)
		if err != nil {
			t.Fatal(err)
		}
		if epoch != "" {
			req.Header.Set(serve.EpochHeader, epoch)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	if st := put("g", "5"); st != http.StatusCreated {
		t.Fatalf("PUT epoch 5 got %d, want 201", st)
	}
	if st := put("g", "5"); st != http.StatusConflict {
		t.Errorf("replayed PUT epoch 5 got %d, want 409", st)
	}
	if st := put("g", "4"); st != http.StatusConflict {
		t.Errorf("stale PUT epoch 4 got %d, want 409", st)
	}
	if st := put("g", "6"); st != http.StatusCreated {
		t.Errorf("newer PUT epoch 6 got %d, want 201", st)
	}
	if st := put("g", "not-a-number"); st != http.StatusBadRequest {
		t.Errorf("malformed epoch got %d, want 400", st)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/graphs/g", nil)
	req.Header.Set(serve.EpochHeader, "8")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE epoch 8 got %d, want 204", resp.StatusCode)
	}
	// The delayed stale replication write arrives after the delete: fenced.
	if st := put("g", "7"); st != http.StatusConflict {
		t.Errorf("stale PUT epoch 7 after delete-at-8 got %d, want 409", st)
	}
	if _, ok := eng.Workload("g"); ok {
		t.Error("fenced stale PUT resurrected the deleted graph")
	}
	// Direct clients without epochs are untouched by the guard.
	if st := put("g", ""); st != http.StatusCreated {
		t.Errorf("epoch-less PUT got %d, want 201", st)
	}
}
