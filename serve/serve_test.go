package serve_test

// HTTP serving-front tests over httptest: graph upload round-trips the
// workload kind, runs return the uniform report as JSON, the second
// identical request is a cache hit, and errors map onto the right
// statuses (404 unknown graph/algorithm, 400 typed precondition
// failures and bad payloads).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pushpull"
	"pushpull/serve"
)

func newTestServer(t *testing.T) (*httptest.Server, *pushpull.Engine) {
	t.Helper()
	eng := pushpull.NewEngine()
	ts := httptest.NewServer(serve.New(eng))
	t.Cleanup(ts.Close)
	return ts, eng
}

func smallGraph(t *testing.T) *pushpull.Graph {
	t.Helper()
	g, err := pushpull.ErdosRenyi(400, 8, 17)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func uploadGraph(t *testing.T, ts *httptest.Server, name string, w *pushpull.Workload) serve.GraphInfo {
	t.Helper()
	var buf bytes.Buffer
	if err := pushpull.WriteWorkload(&buf, w); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/graphs/"+name, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var info serve.GraphInfo
	doJSON(t, req, http.StatusCreated, &info)
	return info
}

func postRun(t *testing.T, ts *httptest.Server, body string, wantStatus int) serve.RunResponse {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/run", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var resp serve.RunResponse
	doJSON(t, req, wantStatus, &resp)
	return resp
}

func doJSON(t *testing.T, req *http.Request, wantStatus int, into any) {
	t.Helper()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s %s: status %d, want %d: %s", req.Method, req.URL.Path, resp.StatusCode, wantStatus, body)
	}
	if into != nil && wantStatus < 400 {
		if err := json.Unmarshal(body, into); err != nil {
			t.Fatalf("parsing %q: %v", body, err)
		}
	}
}

// gateRuns counts real gateAlgo executions; gateAlgo dawdles ~100ms per
// run so concurrently issued identical requests must overlap it.
var gateRuns atomic.Int64

type gateAlgo struct{}

func (gateAlgo) Name() string { return "test-gate" }
func (gateAlgo) Describe() string {
	return "test-only: counts executions and dawdles to invite coalescing"
}
func (gateAlgo) Caps() pushpull.Caps { return pushpull.Caps{} }
func (gateAlgo) Run(ctx context.Context, w *pushpull.Workload, cfg *pushpull.Config) (*pushpull.Report, error) {
	gateRuns.Add(1)
	w.Stats()
	stats := pushpull.RunStats{Iterations: 1}
	select {
	case <-time.After(100 * time.Millisecond):
	case <-ctx.Done():
		stats.Canceled = true
	}
	return &pushpull.Report{Result: []float64{1}, Stats: stats}, nil
}

var registerGateOnce sync.Once

func registerGate(t *testing.T) {
	t.Helper()
	registerGateOnce.Do(func() { pushpull.MustRegister(gateAlgo{}) })
}

// TestServeRunCacheHit is the end-to-end acceptance path: upload, run,
// run again, observe the cache hit and the engine stats.
func TestServeRunCacheHit(t *testing.T) {
	ts, eng := newTestServer(t)
	g := smallGraph(t)
	info := uploadGraph(t, ts, "demo", pushpull.NewWorkload(g))
	if info.N != g.N() || info.Kind != "undirected" || info.ID == "" {
		t.Fatalf("upload response %+v does not describe the graph", info)
	}

	body := `{"graph": "demo", "algorithm": "pr", "options": {"direction": "pull", "iterations": 10}}`
	first := postRun(t, ts, body, http.StatusOK)
	if first.Stats.CacheHit {
		t.Fatal("first run served from cache")
	}
	if len(first.Ranks) != g.N() || first.Stats.Iterations != 10 || first.Stats.Direction != "pull" {
		t.Fatalf("run response malformed: %d ranks, stats %+v", len(first.Ranks), first.Stats)
	}
	if len(first.Directions) != 10 || first.Directions[0] != "pull" {
		t.Fatalf("direction trace malformed: %v", first.Directions)
	}

	second := postRun(t, ts, body, http.StatusOK)
	if !second.Stats.CacheHit {
		t.Fatal("second identical request missed the cache")
	}
	if fmt.Sprint(second.Ranks) != fmt.Sprint(first.Ranks) {
		t.Error("cached ranks differ from the original run")
	}
	if st := eng.Stats(); st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Errorf("engine stats = %+v, want 1 hit / 1 miss", st)
	}

	// A different option set runs for real.
	third := postRun(t, ts,
		`{"graph": "demo", "algorithm": "pr", "options": {"direction": "push", "iterations": 10}}`,
		http.StatusOK)
	if third.Stats.CacheHit {
		t.Error("push-direction request served the pull-direction cache entry")
	}
}

// TestServeUploadDirectedWeighted: the edge-list header's kind flags
// survive the HTTP round trip into the registered workload.
func TestServeUploadDirectedWeighted(t *testing.T) {
	ts, eng := newTestServer(t)
	b := pushpull.NewBuilder(4).Directed()
	b.AddEdgeW(0, 1, 2)
	b.AddEdgeW(1, 2, 3)
	b.AddEdgeW(2, 0, 4)
	b.AddEdgeW(2, 3, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	info := uploadGraph(t, ts, "dw", pushpull.Directed(g, pushpull.AsWeighted()))
	if info.Kind != "directed weighted" {
		t.Fatalf("kind %q survived upload, want \"directed weighted\"", info.Kind)
	}
	wl, ok := eng.Workload("dw")
	if !ok || !wl.IsDirected() || !wl.HasWeights() {
		t.Fatalf("registered workload lost its kind: %+v", wl)
	}

	var graphs []serve.GraphInfo
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/graphs", nil)
	doJSON(t, req, http.StatusOK, &graphs)
	if len(graphs) != 1 || graphs[0].Name != "dw" {
		t.Fatalf("GET /graphs = %+v, want the one uploaded graph", graphs)
	}
}

// TestServeAlgorithms: the registry endpoint lists every algorithm with
// caps.
func TestServeAlgorithms(t *testing.T) {
	ts, _ := newTestServer(t)
	var algos []serve.AlgorithmInfo
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/algorithms", nil)
	doJSON(t, req, http.StatusOK, &algos)
	if len(algos) != len(pushpull.Algorithms()) {
		t.Fatalf("%d algorithms served, registry has %d", len(algos), len(pushpull.Algorithms()))
	}
	for _, a := range algos {
		if a.Name == "sssp" && !strings.Contains(a.Caps, "needs-weights") {
			t.Errorf("sssp caps %q misses needs-weights", a.Caps)
		}
	}
}

// TestServeErrors: error statuses are faithful to the failure class.
func TestServeErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	uploadGraph(t, ts, "demo", pushpull.NewWorkload(smallGraph(t)))

	cases := []struct {
		name   string
		body   string
		status int
	}{
		{"unknown graph", `{"graph": "nope", "algorithm": "pr"}`, http.StatusNotFound},
		{"unknown algorithm", `{"graph": "demo", "algorithm": "nope"}`, http.StatusNotFound},
		{"missing fields", `{}`, http.StatusBadRequest},
		{"unknown option field", `{"graph": "demo", "algorithm": "pr", "options": {"iterationz": 3}}`, http.StatusBadRequest},
		{"bad direction", `{"graph": "demo", "algorithm": "pr", "options": {"direction": "sideways"}}`, http.StatusBadRequest},
		{"needs weights", `{"graph": "demo", "algorithm": "sssp"}`, http.StatusBadRequest},
		{"bad option value", `{"graph": "demo", "algorithm": "pr", "options": {"threads": -1}}`, http.StatusBadRequest},
		{"bad source", `{"graph": "demo", "algorithm": "bfs", "options": {"source": 100000}}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		postRun(t, ts, tc.body, tc.status)
	}
}

// TestServeSSSPUnreachable: sssp distances include +Inf for unreached
// vertices, which must encode as JSON null (regression: encoding/json
// rejects non-finite floats outright, which used to truncate the
// response body after a 200).
func TestServeSSSPUnreachable(t *testing.T) {
	ts, _ := newTestServer(t)
	b := pushpull.NewBuilder(4)
	b.AddEdgeW(0, 1, 2)
	b.AddEdgeW(1, 2, 3)
	// vertex 3 is isolated: dist = +Inf
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	uploadGraph(t, ts, "tiny", pushpull.Weighted(g))
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/run",
		strings.NewReader(`{"graph": "tiny", "algorithm": "sssp", "options": {"source": 0}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var parsed struct {
		Ranks []*float64 `json:"ranks"`
	}
	if err := json.Unmarshal(body, &parsed); err != nil {
		t.Fatalf("response is not valid JSON: %v\n%s", err, body)
	}
	if len(parsed.Ranks) != 4 || parsed.Ranks[3] != nil {
		t.Fatalf("ranks = %v, want 4 entries with null at the isolated vertex", parsed.Ranks)
	}
	if parsed.Ranks[2] == nil || *parsed.Ranks[2] != 5 {
		t.Errorf("dist[2] = %v, want 5", parsed.Ranks[2])
	}
}

// TestServeBFSPayload: traversal payloads are lowered to parents+levels.
func TestServeBFSPayload(t *testing.T) {
	ts, _ := newTestServer(t)
	g := smallGraph(t)
	uploadGraph(t, ts, "demo", pushpull.NewWorkload(g))
	resp := postRun(t, ts, `{"graph": "demo", "algorithm": "bfs", "options": {"source": 1}}`, http.StatusOK)
	if len(resp.Parents) != g.N() || len(resp.Levels) != g.N() {
		t.Fatalf("bfs payload: %d parents, %d levels, want %d each", len(resp.Parents), len(resp.Levels), g.N())
	}
	if resp.Levels[1] != 0 {
		t.Errorf("source level = %d, want 0", resp.Levels[1])
	}
}

// TestServeSingleFlight is the serving-layer dedup acceptance check: N
// concurrent identical POST /run requests produce exactly one underlying
// kernel execution — proven by the run counter and by the server-side
// workload's Builds() — with every follower's response flagged coalesced
// (or cache_hit, for one scheduled only after the leader finished).
func TestServeSingleFlight(t *testing.T) {
	registerGate(t)
	ts, eng := newTestServer(t)
	uploadGraph(t, ts, "demo", pushpull.NewWorkload(smallGraph(t)))

	const n = 8
	before := gateRuns.Load()
	body := `{"graph": "demo", "algorithm": "test-gate"}`
	responses := make([]serve.RunResponse, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req, err := http.NewRequest(http.MethodPost, ts.URL+"/run", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			var resp serve.RunResponse
			doJSON(t, req, http.StatusOK, &resp)
			responses[i] = resp
		}(i)
	}
	wg.Wait()

	if execs := gateRuns.Load() - before; execs != 1 {
		t.Errorf("%d concurrent identical POST /run executed the kernel %d times, want exactly 1", n, execs)
	}
	wl, ok := eng.Workload("demo")
	if !ok {
		t.Fatal("uploaded workload vanished")
	}
	if b := wl.Builds(); b.Stats != 1 {
		t.Errorf("server-side Builds().Stats = %d, want 1", b.Stats)
	}
	var real, followers int
	for _, resp := range responses {
		if resp.Stats.Coalesced || resp.Stats.CacheHit {
			followers++
		} else {
			real++
		}
	}
	if real != 1 || followers != n-1 {
		t.Errorf("%d real runs and %d deduplicated followers, want 1 and %d", real, followers, n-1)
	}

	var st serve.EngineStats
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/stats", nil)
	doJSON(t, req, http.StatusOK, &st)
	if st.Coalesced == 0 {
		t.Error("GET /stats reports no coalesced requests despite the 100ms execution window")
	}
}

// TestServeDeleteGraph: DELETE /graphs/{name} removes the binding (204),
// after which runs 404; deleting again 404s too.
func TestServeDeleteGraph(t *testing.T) {
	ts, eng := newTestServer(t)
	uploadGraph(t, ts, "doomed", pushpull.NewWorkload(smallGraph(t)))
	postRun(t, ts, `{"graph": "doomed", "algorithm": "pr", "options": {"iterations": 3}}`, http.StatusOK)
	if st := eng.Stats(); st.CacheEntries != 1 {
		t.Fatalf("cache entries = %d before delete, want 1", st.CacheEntries)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/graphs/doomed", nil)
	doJSON(t, req, http.StatusNoContent, nil)
	if st := eng.Stats(); st.CacheEntries != 0 {
		t.Errorf("delete left %d cached results for the dropped graph", st.CacheEntries)
	}
	postRun(t, ts, `{"graph": "doomed", "algorithm": "pr"}`, http.StatusNotFound)
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/graphs/doomed", nil)
	doJSON(t, req, http.StatusNotFound, nil)

	var graphs []serve.GraphInfo
	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/graphs", nil)
	doJSON(t, req, http.StatusOK, &graphs)
	if len(graphs) != 0 {
		t.Errorf("GET /graphs = %+v after delete, want empty", graphs)
	}
}

// TestServeRePutInvalidates is the HTTP face of the stale-result
// regression: re-uploading a name with different content drops the old
// graph's cached results and runs against the new graph for real.
func TestServeRePutInvalidates(t *testing.T) {
	ts, eng := newTestServer(t)
	small, err := pushpull.ErdosRenyi(200, 6, 23)
	if err != nil {
		t.Fatal(err)
	}
	uploadGraph(t, ts, "g", pushpull.NewWorkload(small))
	body := `{"graph": "g", "algorithm": "pr", "options": {"iterations": 5}}`
	first := postRun(t, ts, body, http.StatusOK)
	if first.Stats.CacheHit || len(first.Ranks) != small.N() {
		t.Fatalf("first run: %d ranks, stats %+v", len(first.Ranks), first.Stats)
	}

	bigger, err := pushpull.ErdosRenyi(300, 6, 29)
	if err != nil {
		t.Fatal(err)
	}
	uploadGraph(t, ts, "g", pushpull.NewWorkload(bigger))
	if st := eng.Stats(); st.CacheEntries != 0 {
		t.Errorf("re-PUT with different content left %d stale cache entries", st.CacheEntries)
	}
	second := postRun(t, ts, body, http.StatusOK)
	if second.Stats.CacheHit {
		t.Error("identical request after re-PUT served the old graph's cached result")
	}
	if len(second.Ranks) != bigger.N() {
		t.Errorf("run after re-PUT returned %d ranks, want the new graph's %d", len(second.Ranks), bigger.N())
	}
}

// TestServeStatsShards: the stats endpoint exposes the per-shard
// breakdown of a sharded engine, and cache hits never reach a shard.
func TestServeStatsShards(t *testing.T) {
	eng := pushpull.NewEngine(pushpull.WithShards(3))
	ts := httptest.NewServer(serve.New(eng))
	t.Cleanup(ts.Close)
	uploadGraph(t, ts, "demo", pushpull.NewWorkload(smallGraph(t)))
	body := `{"graph": "demo", "algorithm": "pr", "options": {"iterations": 3}}`
	postRun(t, ts, body, http.StatusOK)
	postRun(t, ts, body, http.StatusOK) // cache hit: no shard run

	var st serve.EngineStats
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/stats", nil)
	doJSON(t, req, http.StatusOK, &st)
	if len(st.Shards) != 3 {
		t.Fatalf("stats expose %d shards, want 3", len(st.Shards))
	}
	var total uint64
	for i, sh := range st.Shards {
		if sh.Shard != i {
			t.Errorf("shard %d labeled %d", i, sh.Shard)
		}
		total += sh.Runs
	}
	if total != 1 || st.CacheHits != 1 {
		t.Errorf("shard runs total %d with %d cache hits, want 1 run / 1 hit", total, st.CacheHits)
	}
}

// TestServePersistenceRestart: with a DiskStore attached, uploaded graphs
// survive a server restart — a new engine over the same directory serves
// the graph under the same name with the same content identity, and the
// post-restart cache behaves exactly as pre-restart (first run real,
// second a hit).
func TestServePersistenceRestart(t *testing.T) {
	dir := t.TempDir()
	open := func() *pushpull.Engine {
		t.Helper()
		s, err := pushpull.NewDiskStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		eng := pushpull.NewEngine()
		if err := eng.AttachStore(s); err != nil {
			t.Fatal(err)
		}
		return eng
	}

	ts1 := httptest.NewServer(serve.New(open()))
	info := uploadGraph(t, ts1, "persisted", pushpull.NewWorkload(smallGraph(t)))
	ts1.Close() // the restart

	ts2 := httptest.NewServer(serve.New(open()))
	t.Cleanup(ts2.Close)
	var graphs []serve.GraphInfo
	req, _ := http.NewRequest(http.MethodGet, ts2.URL+"/graphs", nil)
	doJSON(t, req, http.StatusOK, &graphs)
	if len(graphs) != 1 || graphs[0].Name != "persisted" || graphs[0].ID != info.ID {
		t.Fatalf("after restart GET /graphs = %+v, want %q with id %s", graphs, "persisted", info.ID)
	}
	body := `{"graph": "persisted", "algorithm": "pr", "options": {"iterations": 5}}`
	if first := postRun(t, ts2, body, http.StatusOK); first.Stats.CacheHit {
		t.Error("first post-restart run claims a cache hit on a fresh engine")
	}
	if second := postRun(t, ts2, body, http.StatusOK); !second.Stats.CacheHit {
		t.Error("second identical post-restart run missed the cache")
	}
}

// TestServeOutOfCoreUpload: a server whose store enforces a memory
// budget accepts an upload larger than the budget, reports the swapped
// block-backed binding in the PUT response, and serves runs whose
// payload matches an unbudgeted server's bit for bit.
func TestServeOutOfCoreUpload(t *testing.T) {
	store, err := pushpull.NewDiskStore(t.TempDir(), pushpull.WithBlockThreshold(1))
	if err != nil {
		t.Fatal(err)
	}
	engOOC := pushpull.NewEngine()
	if err := engOOC.AttachStore(store); err != nil {
		t.Fatal(err)
	}
	tsOOC := httptest.NewServer(serve.New(engOOC))
	t.Cleanup(tsOOC.Close)
	tsPlain, _ := newTestServer(t)

	g := smallGraph(t)
	info := uploadGraph(t, tsOOC, "demo", pushpull.NewWorkload(g))
	if !strings.Contains(info.Kind, "out-of-core") {
		t.Fatalf("PUT response kind %q does not report the out-of-core swap", info.Kind)
	}
	if info.N != g.N() || info.M != g.M() {
		t.Fatalf("PUT response shape %d/%d, want %d/%d", info.N, info.M, g.N(), g.M())
	}
	uploadGraph(t, tsPlain, "demo", pushpull.NewWorkload(g))

	body := `{"graph": "demo", "algorithm": "pr", "options": {"iterations": 10}}`
	got := postRun(t, tsOOC, body, http.StatusOK)
	want := postRun(t, tsPlain, body, http.StatusOK)
	if len(got.Ranks) != len(want.Ranks) || len(got.Ranks) == 0 {
		t.Fatalf("rank payloads: %d vs %d entries", len(got.Ranks), len(want.Ranks))
	}
	for i := range want.Ranks {
		d := got.Ranks[i] - want.Ranks[i]
		if d < -1e-9 || d > 1e-9 {
			t.Fatalf("rank %d: out-of-core %g vs in-memory %g", i, got.Ranks[i], want.Ranks[i])
		}
	}
	// Algorithms without block kernels reject the stored handle with a
	// client error, not a 500.
	resp := postRun(t, tsOOC, `{"graph": "demo", "algorithm": "tc"}`, http.StatusBadRequest)
	_ = resp
}
