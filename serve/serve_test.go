package serve_test

// HTTP serving-front tests over httptest: graph upload round-trips the
// workload kind, runs return the uniform report as JSON, the second
// identical request is a cache hit, and errors map onto the right
// statuses (404 unknown graph/algorithm, 400 typed precondition
// failures and bad payloads).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pushpull"
	"pushpull/serve"
)

func newTestServer(t *testing.T) (*httptest.Server, *pushpull.Engine) {
	t.Helper()
	eng := pushpull.NewEngine()
	ts := httptest.NewServer(serve.New(eng))
	t.Cleanup(ts.Close)
	return ts, eng
}

func smallGraph(t *testing.T) *pushpull.Graph {
	t.Helper()
	g, err := pushpull.ErdosRenyi(400, 8, 17)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func uploadGraph(t *testing.T, ts *httptest.Server, name string, w *pushpull.Workload) serve.GraphInfo {
	t.Helper()
	var buf bytes.Buffer
	if err := pushpull.WriteWorkload(&buf, w); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/graphs/"+name, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var info serve.GraphInfo
	doJSON(t, req, http.StatusCreated, &info)
	return info
}

func postRun(t *testing.T, ts *httptest.Server, body string, wantStatus int) serve.RunResponse {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/run", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var resp serve.RunResponse
	doJSON(t, req, wantStatus, &resp)
	return resp
}

func doJSON(t *testing.T, req *http.Request, wantStatus int, into any) {
	t.Helper()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s %s: status %d, want %d: %s", req.Method, req.URL.Path, resp.StatusCode, wantStatus, body)
	}
	if into != nil && wantStatus < 400 {
		if err := json.Unmarshal(body, into); err != nil {
			t.Fatalf("parsing %q: %v", body, err)
		}
	}
}

// TestServeRunCacheHit is the end-to-end acceptance path: upload, run,
// run again, observe the cache hit and the engine stats.
func TestServeRunCacheHit(t *testing.T) {
	ts, eng := newTestServer(t)
	g := smallGraph(t)
	info := uploadGraph(t, ts, "demo", pushpull.NewWorkload(g))
	if info.N != g.N() || info.Kind != "undirected" || info.ID == "" {
		t.Fatalf("upload response %+v does not describe the graph", info)
	}

	body := `{"graph": "demo", "algorithm": "pr", "options": {"direction": "pull", "iterations": 10}}`
	first := postRun(t, ts, body, http.StatusOK)
	if first.Stats.CacheHit {
		t.Fatal("first run served from cache")
	}
	if len(first.Ranks) != g.N() || first.Stats.Iterations != 10 || first.Stats.Direction != "pull" {
		t.Fatalf("run response malformed: %d ranks, stats %+v", len(first.Ranks), first.Stats)
	}
	if len(first.Directions) != 10 || first.Directions[0] != "pull" {
		t.Fatalf("direction trace malformed: %v", first.Directions)
	}

	second := postRun(t, ts, body, http.StatusOK)
	if !second.Stats.CacheHit {
		t.Fatal("second identical request missed the cache")
	}
	if fmt.Sprint(second.Ranks) != fmt.Sprint(first.Ranks) {
		t.Error("cached ranks differ from the original run")
	}
	if st := eng.Stats(); st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Errorf("engine stats = %+v, want 1 hit / 1 miss", st)
	}

	// A different option set runs for real.
	third := postRun(t, ts,
		`{"graph": "demo", "algorithm": "pr", "options": {"direction": "push", "iterations": 10}}`,
		http.StatusOK)
	if third.Stats.CacheHit {
		t.Error("push-direction request served the pull-direction cache entry")
	}
}

// TestServeUploadDirectedWeighted: the edge-list header's kind flags
// survive the HTTP round trip into the registered workload.
func TestServeUploadDirectedWeighted(t *testing.T) {
	ts, eng := newTestServer(t)
	b := pushpull.NewBuilder(4).Directed()
	b.AddEdgeW(0, 1, 2)
	b.AddEdgeW(1, 2, 3)
	b.AddEdgeW(2, 0, 4)
	b.AddEdgeW(2, 3, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	info := uploadGraph(t, ts, "dw", pushpull.Directed(g, pushpull.AsWeighted()))
	if info.Kind != "directed weighted" {
		t.Fatalf("kind %q survived upload, want \"directed weighted\"", info.Kind)
	}
	wl, ok := eng.Workload("dw")
	if !ok || !wl.IsDirected() || !wl.HasWeights() {
		t.Fatalf("registered workload lost its kind: %+v", wl)
	}

	var graphs []serve.GraphInfo
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/graphs", nil)
	doJSON(t, req, http.StatusOK, &graphs)
	if len(graphs) != 1 || graphs[0].Name != "dw" {
		t.Fatalf("GET /graphs = %+v, want the one uploaded graph", graphs)
	}
}

// TestServeAlgorithms: the registry endpoint lists every algorithm with
// caps.
func TestServeAlgorithms(t *testing.T) {
	ts, _ := newTestServer(t)
	var algos []serve.AlgorithmInfo
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/algorithms", nil)
	doJSON(t, req, http.StatusOK, &algos)
	if len(algos) != len(pushpull.Algorithms()) {
		t.Fatalf("%d algorithms served, registry has %d", len(algos), len(pushpull.Algorithms()))
	}
	for _, a := range algos {
		if a.Name == "sssp" && !strings.Contains(a.Caps, "needs-weights") {
			t.Errorf("sssp caps %q misses needs-weights", a.Caps)
		}
	}
}

// TestServeErrors: error statuses are faithful to the failure class.
func TestServeErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	uploadGraph(t, ts, "demo", pushpull.NewWorkload(smallGraph(t)))

	cases := []struct {
		name   string
		body   string
		status int
	}{
		{"unknown graph", `{"graph": "nope", "algorithm": "pr"}`, http.StatusNotFound},
		{"unknown algorithm", `{"graph": "demo", "algorithm": "nope"}`, http.StatusNotFound},
		{"missing fields", `{}`, http.StatusBadRequest},
		{"unknown option field", `{"graph": "demo", "algorithm": "pr", "options": {"iterationz": 3}}`, http.StatusBadRequest},
		{"bad direction", `{"graph": "demo", "algorithm": "pr", "options": {"direction": "sideways"}}`, http.StatusBadRequest},
		{"needs weights", `{"graph": "demo", "algorithm": "sssp"}`, http.StatusBadRequest},
		{"bad option value", `{"graph": "demo", "algorithm": "pr", "options": {"threads": -1}}`, http.StatusBadRequest},
		{"bad source", `{"graph": "demo", "algorithm": "bfs", "options": {"source": 100000}}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		postRun(t, ts, tc.body, tc.status)
	}
}

// TestServeSSSPUnreachable: sssp distances include +Inf for unreached
// vertices, which must encode as JSON null (regression: encoding/json
// rejects non-finite floats outright, which used to truncate the
// response body after a 200).
func TestServeSSSPUnreachable(t *testing.T) {
	ts, _ := newTestServer(t)
	b := pushpull.NewBuilder(4)
	b.AddEdgeW(0, 1, 2)
	b.AddEdgeW(1, 2, 3)
	// vertex 3 is isolated: dist = +Inf
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	uploadGraph(t, ts, "tiny", pushpull.Weighted(g))
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/run",
		strings.NewReader(`{"graph": "tiny", "algorithm": "sssp", "options": {"source": 0}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var parsed struct {
		Ranks []*float64 `json:"ranks"`
	}
	if err := json.Unmarshal(body, &parsed); err != nil {
		t.Fatalf("response is not valid JSON: %v\n%s", err, body)
	}
	if len(parsed.Ranks) != 4 || parsed.Ranks[3] != nil {
		t.Fatalf("ranks = %v, want 4 entries with null at the isolated vertex", parsed.Ranks)
	}
	if parsed.Ranks[2] == nil || *parsed.Ranks[2] != 5 {
		t.Errorf("dist[2] = %v, want 5", parsed.Ranks[2])
	}
}

// TestServeBFSPayload: traversal payloads are lowered to parents+levels.
func TestServeBFSPayload(t *testing.T) {
	ts, _ := newTestServer(t)
	g := smallGraph(t)
	uploadGraph(t, ts, "demo", pushpull.NewWorkload(g))
	resp := postRun(t, ts, `{"graph": "demo", "algorithm": "bfs", "options": {"source": 1}}`, http.StatusOK)
	if len(resp.Parents) != g.N() || len(resp.Levels) != g.N() {
		t.Fatalf("bfs payload: %d parents, %d levels, want %d each", len(resp.Parents), len(resp.Levels), g.N())
	}
	if resp.Levels[1] != 0 {
		t.Errorf("source level = %d, want 0", resp.Levels[1])
	}
}
