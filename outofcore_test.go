package pushpull_test

// Out-of-core facade tests: the block-sequential kernels must reproduce
// the in-memory results exactly (blocked pull is the same arithmetic in
// a different traversal order for bfs; PageRank accumulates per vertex
// in the same neighbor order, so ranks agree to float tolerance), the
// capability gate must reject combinations the block kernels cannot
// honor, and content identity must survive the in-memory → file swap.

import (
	"context"
	"errors"
	"testing"

	"pushpull"
	"pushpull/internal/algo/pr"
)

// oocVariants enumerates the facade spellings of an out-of-core run over
// an in-memory graph: the explicit option, the workload declaration, and
// the declaration pinned to the buffered (bounded-RSS) reader.
func oocVariants(g *pushpull.Graph, directed bool) map[string]struct {
	on   pushpull.Runnable
	opts []pushpull.Option
} {
	wrap := func(opts ...pushpull.WorkloadOption) *pushpull.Workload {
		if directed {
			return pushpull.Directed(g, opts...)
		}
		return pushpull.NewWorkload(g, opts...)
	}
	return map[string]struct {
		on   pushpull.Runnable
		opts []pushpull.Option
	}{
		"explicit":          {wrap(), []pushpull.Option{pushpull.WithOutOfCore()}},
		"declared":          {wrap(pushpull.AsOutOfCore()), nil},
		"declared-buffered": {wrap(pushpull.AsOutOfCore(), pushpull.AsBlockBuffered()), nil},
	}
}

func TestOutOfCorePRCrossValidate(t *testing.T) {
	for _, tc := range []struct {
		name     string
		g        *pushpull.Graph
		directed bool
	}{
		{"undirected", skewedGraph(t), false},
		{"directed", directedSkewedGraph(t, 600, 29), true},
	} {
		var base pushpull.Runnable = pushpull.NewWorkload(tc.g)
		if tc.directed {
			base = pushpull.Directed(tc.g)
		}
		want := run(t, base, "pr", pushpull.WithDirection(pushpull.Pull)).Result.([]float64)
		for name, v := range oocVariants(tc.g, tc.directed) {
			got := run(t, v.on, "pr", append(v.opts, pushpull.WithThreads(4))...).Result.([]float64)
			if d := pr.MaxDiff(got, want); d > 1e-9 {
				t.Errorf("%s/%s: blocked pr diverges from plain pull: max diff %g", tc.name, name, d)
			}
		}
	}
}

func TestOutOfCoreBFSCrossValidate(t *testing.T) {
	g := skewedGraph(t)
	want := run(t, pushpull.NewWorkload(g), "bfs",
		pushpull.WithSource(0), pushpull.WithDirection(pushpull.Pull)).Result.(*pushpull.BFSTree).Level
	for name, v := range oocVariants(g, false) {
		rep := run(t, v.on, "bfs", append(v.opts, pushpull.WithSource(0), pushpull.WithThreads(4))...)
		tree := rep.Result.(*pushpull.BFSTree)
		checkBFSTree(t, g, 0, tree, want)
		if name == "explicit" {
			continue
		}
		// Declared workloads must report the out-of-core kind.
		if w, ok := v.on.(*pushpull.Workload); ok && !w.IsOutOfCore() {
			t.Errorf("%s: workload does not report out-of-core", name)
		}
	}
}

func TestOutOfCoreCapsErrors(t *testing.T) {
	g := skewedGraph(t)
	ctx := context.Background()
	// No block kernel: the explicit option fails loudly.
	if _, err := pushpull.Run(ctx, g, "tc", pushpull.WithOutOfCore()); !errors.Is(err, pushpull.ErrOutOfCoreUnsupported) {
		t.Fatalf("tc WithOutOfCore: %v, want ErrOutOfCoreUnsupported", err)
	}
	// Block kernels are pull-only over the plain layout.
	for name, opts := range map[string][]pushpull.Option{
		"push":        {pushpull.WithOutOfCore(), pushpull.WithDirection(pushpull.Push)},
		"degree-sort": {pushpull.WithOutOfCore(), pushpull.WithDegreeSorted()},
		"hub-cache":   {pushpull.WithOutOfCore(), pushpull.WithHubCache(64)},
	} {
		if _, err := pushpull.Run(ctx, g, "pr", opts...); !errors.Is(err, pushpull.ErrBadOption) {
			t.Fatalf("pr out-of-core with %s: %v, want ErrBadOption", name, err)
		}
	}
	// An ambient in-memory declaration is ignored by algorithms without
	// block kernels — they run on the in-memory graph as before.
	w := pushpull.NewWorkload(g, pushpull.AsOutOfCore())
	if _, err := pushpull.Run(ctx, w, "tc"); err != nil {
		t.Fatalf("tc on declared ooc workload: %v", err)
	}
}

func TestOutOfCoreOptionInCacheKeyAndID(t *testing.T) {
	g := undirectedGraph(t, 400, 5)
	// The workload declaration is part of the content ID; the explicit
	// option is part of the engine cache key.
	if pushpull.NewWorkload(g).ID() == pushpull.NewWorkload(g, pushpull.AsOutOfCore()).ID() {
		t.Fatal("AsOutOfCore absent from the content ID")
	}
	e := pushpull.NewEngine()
	w := pushpull.NewWorkload(g)
	runE := func(opts ...pushpull.Option) *pushpull.Report {
		t.Helper()
		rep, err := e.Run(context.Background(), w, "pr", opts...)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	if rep := runE(pushpull.WithOutOfCore()); rep.Stats.CacheHit {
		t.Fatal("first out-of-core run cannot be a cache hit")
	}
	if rep := runE(pushpull.WithOutOfCore()); !rep.Stats.CacheHit {
		t.Fatal("identical out-of-core run must hit the cache")
	}
	if rep := runE(); rep.Stats.CacheHit {
		t.Fatal("plain run must not share the out-of-core key")
	}
}
