package pushpull

// Distributed-memory facade: the §6.3 simulated-cluster algorithms
// (push-RMA, pull-RMA, message passing) re-exported so callers need only
// this package. These run on a simulated cluster and return simulated
// makespans plus remote-operation counters; they are deliberately not in
// the Run registry, whose algorithms share the shared-memory Report
// shape.

import "pushpull/internal/dm/dalgo"

type (
	// DistPRConfig configures a distributed PageRank run.
	DistPRConfig = dalgo.PRConfig
	// DistTCConfig configures a distributed triangle-counting run.
	DistTCConfig = dalgo.TCConfig
	// DistResult carries gathered values, simulated makespan (ns) and
	// aggregated remote-operation counters.
	DistResult = dalgo.Result
)

// DistPRPushRMA runs push-based PageRank over RMA (remote accumulates).
func DistPRPushRMA(g *Graph, cfg DistPRConfig) (*DistResult, error) {
	return dalgo.PRPushRMA(g, cfg)
}

// DistPRPullRMA runs pull-based PageRank over RMA (remote reads).
func DistPRPullRMA(g *Graph, cfg DistPRConfig) (*DistResult, error) {
	return dalgo.PRPullRMA(g, cfg)
}

// DistPRMsgPassing runs PageRank with buffered message passing.
func DistPRMsgPassing(g *Graph, cfg DistPRConfig) (*DistResult, error) {
	return dalgo.PRMsgPassing(g, cfg)
}

// DistTCPushRMA runs push-based triangle counting over RMA.
func DistTCPushRMA(g *Graph, cfg DistTCConfig) (*DistResult, error) {
	return dalgo.TCPushRMA(g, cfg)
}

// DistTCPullRMA runs pull-based triangle counting over RMA.
func DistTCPullRMA(g *Graph, cfg DistTCConfig) (*DistResult, error) {
	return dalgo.TCPullRMA(g, cfg)
}

// DistTCMsgPassing runs triangle counting with buffered message passing.
func DistTCMsgPassing(g *Graph, cfg DistTCConfig) (*DistResult, error) {
	return dalgo.TCMsgPassing(g, cfg)
}
