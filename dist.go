package pushpull

// Distributed-memory registry algorithms: the §6.3 simulated-cluster
// variants (push-RMA, pull-RMA, message passing) exposed through the same
// Run facade as the shared-memory algorithms, under the naming scheme
// dist-<algo>-<mechanism>:
//
//	dist-pr-push-rma   dist-pr-pull-rma   dist-pr-mp
//	dist-tc-push-rma   dist-tc-pull-rma   dist-tc-mp
//
// A dist run executes on a simulated cluster of WithRanks(P) rank
// goroutines (default: WithThreads, else DefaultDistRanks) and returns a
// uniform Report: Result is the *DistResult (gathered values, simulated
// makespan, remote-op counters), Stats.Elapsed is the simulated makespan —
// not wall time — and Counters always carries the aggregated remote
// operations, with or without WithProbes. The runs are BSP supersteps with
// no per-iteration wall clock, so WithIterationHook is not invoked, and
// like instrumented shared-memory passes they always run to completion
// (ctx is not polled).

import (
	"context"
	"fmt"
	"math"
	"time"

	"pushpull/internal/core"
	"pushpull/internal/dm/dalgo"
)

type (
	// DistPRConfig configures a distributed PageRank run.
	DistPRConfig = dalgo.PRConfig
	// DistTCConfig configures a distributed triangle-counting run.
	DistTCConfig = dalgo.TCConfig
	// DistResult carries gathered values, simulated makespan (ns) and
	// aggregated remote-operation counters.
	DistResult = dalgo.Result
)

// DefaultDistRanks is the simulated cluster size used when neither
// WithRanks nor WithThreads is given — fixed rather than GOMAXPROCS so a
// simulated makespan is reproducible across machines.
const DefaultDistRanks = 8

func init() {
	// Every dist variant records its remote-operation counters whether or
	// not probes are requested, so Caps.Probes holds; the simulations run
	// the paper's undirected workloads only.
	distCaps := Caps{Probes: true}
	for _, b := range []*builtin{
		{"dist-pr-push-rma", "distributed PageRank, pushing over RMA (remote float accumulates, §6.3.1)",
			distCaps, distPR("dist-pr-push-rma", dalgo.PRPushRMA, Push)},
		{"dist-pr-pull-rma", "distributed PageRank, pulling over RMA (remote reads of rank and degree, §6.3.1)",
			distCaps, distPR("dist-pr-pull-rma", dalgo.PRPullRMA, Pull)},
		{"dist-pr-mp", "distributed PageRank, buffered message passing (Alltoallv hybrid, §6.3.1)",
			distCaps, distPR("dist-pr-mp", dalgo.PRMsgPassing, Auto)},
		{"dist-tc-push-rma", "distributed triangle counting, pushing over RMA (remote integer FAAs, §6.3.2)",
			distCaps, distTC("dist-tc-push-rma", dalgo.TCPushRMA, Push)},
		{"dist-tc-pull-rma", "distributed triangle counting, pulling over RMA (owner-local accumulation, §6.3.2)",
			distCaps, distTC("dist-tc-pull-rma", dalgo.TCPullRMA, Pull)},
		{"dist-tc-mp", "distributed triangle counting, buffered instruct messages (§6.3.2)",
			distCaps, distTC("dist-tc-mp", dalgo.TCMsgPassing, Auto)},
	} {
		MustRegister(b)
	}
}

// distRanks resolves the simulated cluster size of a dist run.
func (c *Config) distRanks() int {
	if c.Ranks > 0 {
		return c.Ranks
	}
	if c.Threads > 0 {
		return c.Threads
	}
	return DefaultDistRanks
}

// checkDistDirection rejects a pinned direction contradicting the variant:
// the mechanism (and with it the direction) is part of a dist algorithm's
// name, so there is nothing for WithDirection to choose. fixed == Auto
// marks the message-passing hybrid, which both pushes its update vectors
// and pulls the incoming ones and therefore accepts no pin at all.
func checkDistDirection(name string, fixed, requested Direction) error {
	if requested == Auto || requested == fixed {
		return nil
	}
	if fixed == Auto {
		return fmt.Errorf("pushpull: %s is a push+pull hybrid; drop WithDirection(%v)", name, requested)
	}
	return fmt.Errorf("pushpull: %s runs %v by construction; drop WithDirection(%v)", name, fixed, requested)
}

// distTraceDir maps the variant's fixed direction to the trace entry; the
// mp hybrid is recorded as pushing (its update vectors travel outward; the
// pull of incoming vectors is the collective's receive side).
func distTraceDir(fixed Direction) core.Direction {
	if fixed == Pull {
		return core.Pull
	}
	return core.Push
}

// distPR adapts one dalgo PageRank variant to the Algorithm interface.
func distPR(name string, run func(*Graph, dalgo.PRConfig) (*dalgo.Result, error), fixed Direction) func(context.Context, *Workload, *Config) (*Report, error) {
	return func(ctx context.Context, w *Workload, cfg *Config) (*Report, error) {
		g := w.Graph()
		if err := checkDistDirection(name, fixed, cfg.Direction); err != nil {
			return nil, err
		}
		dcfg := dalgo.PRConfig{Ranks: cfg.distRanks(), Iterations: cfg.Iterations}
		if cfg.DampingSet {
			if cfg.Damping == 0 {
				return nil, fmt.Errorf("pushpull: the distributed simulation cannot express zero damping (its config treats 0 as the default)")
			}
			dcfg.Damping = cfg.Damping
		}
		res, err := run(g, dcfg)
		if err != nil {
			return nil, err
		}
		iters := cfg.Iterations
		if iters <= 0 {
			iters = dalgo.DefaultPRIterations
		}
		dir := distTraceDir(fixed)
		rep := res.Report
		return &Report{Result: res,
			Stats:      RunStats{Direction: dir, Iterations: iters, Elapsed: simElapsed(res.SimTime)},
			Directions: uniformTrace(dir, iters), Counters: &rep}, nil
	}
}

// distTC adapts one dalgo triangle-counting variant.
func distTC(name string, run func(*Graph, dalgo.TCConfig) (*dalgo.Result, error), fixed Direction) func(context.Context, *Workload, *Config) (*Report, error) {
	return func(ctx context.Context, w *Workload, cfg *Config) (*Report, error) {
		g := w.Graph()
		if err := checkDistDirection(name, fixed, cfg.Direction); err != nil {
			return nil, err
		}
		res, err := run(g, dalgo.TCConfig{Ranks: cfg.distRanks()})
		if err != nil {
			return nil, err
		}
		dir := distTraceDir(fixed)
		rep := res.Report
		return &Report{Result: res,
			Stats:      RunStats{Direction: dir, Iterations: 1, Elapsed: simElapsed(res.SimTime)},
			Directions: uniformTrace(dir, 1), Counters: &rep}, nil
	}
}

// simElapsed lifts a simulated makespan (float ns) into Stats.Elapsed,
// rounding rather than truncating so fractional cost-model terms cannot
// make the Report drift from DistResult.SimTime by up to a nanosecond.
func simElapsed(ns float64) time.Duration { return time.Duration(math.Round(ns)) }

// ---- legacy wrappers ----
//
// The Dist* functions predate the registry entries above; they remain as
// thin aliases over the same dalgo implementations.

// DistPRPushRMA runs push-based PageRank over RMA (remote accumulates).
//
// Deprecated: use Run(ctx, g, "dist-pr-push-rma", WithRanks(p), ...).
func DistPRPushRMA(g *Graph, cfg DistPRConfig) (*DistResult, error) {
	return dalgo.PRPushRMA(g, cfg)
}

// DistPRPullRMA runs pull-based PageRank over RMA (remote reads).
//
// Deprecated: use Run(ctx, g, "dist-pr-pull-rma", WithRanks(p), ...).
func DistPRPullRMA(g *Graph, cfg DistPRConfig) (*DistResult, error) {
	return dalgo.PRPullRMA(g, cfg)
}

// DistPRMsgPassing runs PageRank with buffered message passing.
//
// Deprecated: use Run(ctx, g, "dist-pr-mp", WithRanks(p), ...).
func DistPRMsgPassing(g *Graph, cfg DistPRConfig) (*DistResult, error) {
	return dalgo.PRMsgPassing(g, cfg)
}

// DistTCPushRMA runs push-based triangle counting over RMA.
//
// Deprecated: use Run(ctx, g, "dist-tc-push-rma", WithRanks(p), ...).
func DistTCPushRMA(g *Graph, cfg DistTCConfig) (*DistResult, error) {
	return dalgo.TCPushRMA(g, cfg)
}

// DistTCPullRMA runs pull-based triangle counting over RMA.
//
// Deprecated: use Run(ctx, g, "dist-tc-pull-rma", WithRanks(p), ...).
func DistTCPullRMA(g *Graph, cfg DistTCConfig) (*DistResult, error) {
	return dalgo.TCPullRMA(g, cfg)
}

// DistTCMsgPassing runs triangle counting with buffered message passing.
//
// Deprecated: use Run(ctx, g, "dist-tc-mp", WithRanks(p), ...).
func DistTCMsgPassing(g *Graph, cfg DistTCConfig) (*DistResult, error) {
	return dalgo.TCMsgPassing(g, cfg)
}
