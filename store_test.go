package pushpull_test

// GraphStore tests: the persistence layer behind the serving registry.
// Both implementations round-trip name, content and kind; the disk store
// survives a simulated restart (a fresh Engine attaching the same
// directory restores every graph with the same content identity, so
// cached results computed before the restart stay valid), and deletions
// propagate.

import (
	"context"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"pushpull"
	"pushpull/internal/algo/pr"
)

// storeRoundTrip drives the GraphStore contract shared by every
// implementation.
func storeRoundTrip(t *testing.T, s pushpull.GraphStore) {
	t.Helper()
	if names, err := s.Names(); err != nil || len(names) != 0 {
		t.Fatalf("fresh store: Names() = %v, %v", names, err)
	}
	plain := pushpull.NewWorkload(undirectedGraph(t, 200, 41))
	dw := pushpull.Directed(directedGraph(t, 100, true), pushpull.AsWeighted())
	// Names are arbitrary URL path segments: separators, spaces, percent
	// signs and a leading dot (regression: DiskStore used to drop
	// dot-prefixed names on restore, mistaking them for temp files) must
	// all survive.
	if err := s.Put("plain", plain); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("team a/road net 10%", dw); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(".hidden", plain); err != nil {
		t.Fatal(err)
	}
	names, err := s.Names()
	if err != nil || len(names) != 3 || names[0] != ".hidden" || names[1] != "plain" || names[2] != "team a/road net 10%" {
		t.Fatalf("Names() = %v, %v", names, err)
	}
	if got, err := s.Get(".hidden"); err != nil || got.ID() != plain.ID() {
		t.Fatalf("dot-prefixed name did not round-trip: %v, %v", got, err)
	}
	if err := s.Delete(".hidden"); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("team a/road net 10%")
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsDirected() || !got.HasWeights() {
		t.Errorf("restored kind %q lost directedness or weights", got.Kind())
	}
	if got.ID() != dw.ID() {
		t.Errorf("restored content identity %s != stored %s", got.ID(), dw.ID())
	}
	// Overwrite replaces content.
	if err := s.Put("plain", dw); err != nil {
		t.Fatal(err)
	}
	if got, err := s.Get("plain"); err != nil || got.ID() != dw.ID() {
		t.Errorf("overwrite not visible: %v, %v", got, err)
	}
	// Delete removes; deleting a never-stored name is not an error.
	if err := s.Delete("plain"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("plain"); err == nil {
		t.Error("Get after Delete succeeded")
	}
	if err := s.Delete("never-stored"); err != nil {
		t.Errorf("Delete of unknown name: %v", err)
	}
	if names, _ := s.Names(); len(names) != 1 {
		t.Errorf("Names() after delete = %v, want one entry", names)
	}
}

func TestMemStore(t *testing.T) { storeRoundTrip(t, pushpull.NewMemStore()) }

func TestDiskStore(t *testing.T) {
	s, err := pushpull.NewDiskStore(filepath.Join(t.TempDir(), "graphs"))
	if err != nil {
		t.Fatal(err)
	}
	storeRoundTrip(t, s)
	// The persisted form is one sanitized edge-list file per graph: no
	// name can smuggle a path separator past the escaping.
	entries, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || strings.ContainsAny(e.Name(), "/ ") || !strings.HasSuffix(e.Name(), ".el") {
			t.Errorf("store file %q is not a flat sanitized .el file", e.Name())
		}
	}
}

// TestDiskStoreIgnoresForeignFiles: temp files and unrelated droppings in
// the store directory do not surface as graphs.
func TestDiskStoreIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := pushpull.NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("g", pushpull.NewWorkload(undirectedGraph(t, 50, 43))); err != nil {
		t.Fatal(err)
	}
	for _, junk := range []string{".put-orphan", "README.md", ".hidden.el"} {
		if err := os.WriteFile(filepath.Join(dir, junk), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	names, err := s.Names()
	if err != nil || len(names) != 1 || names[0] != "g" {
		t.Fatalf("Names() = %v, %v, want exactly [g]", names, err)
	}
}

// TestEngineAttachStoreRestart: the zero→restart path of the persistent
// registry. Engine 1 registers graphs through an attached DiskStore;
// engine 2 (the "restarted server") attaches the same directory and sees
// them all, with identical content IDs — so its result cache keys line up
// with pre-restart runs. Drops propagate to later restarts too.
func TestEngineAttachStoreRestart(t *testing.T) {
	dir := t.TempDir()
	open := func() *pushpull.DiskStore {
		s, err := pushpull.NewDiskStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	eng1 := pushpull.NewEngine()
	if err := eng1.AttachStore(open()); err != nil {
		t.Fatal(err)
	}
	g := pushpull.NewWorkload(undirectedGraph(t, 300, 47))
	h := pushpull.Directed(directedGraph(t, 150, false))
	if err := eng1.RegisterWorkload("g", g); err != nil {
		t.Fatal(err)
	}
	if err := eng1.RegisterWorkload("h", h); err != nil {
		t.Fatal(err)
	}

	eng2 := pushpull.NewEngine()
	if err := eng2.AttachStore(open()); err != nil {
		t.Fatal(err)
	}
	names := eng2.WorkloadNames()
	if len(names) != 2 || names[0] != "g" || names[1] != "h" {
		t.Fatalf("restarted engine sees %v, want [g h]", names)
	}
	rg, _ := eng2.Workload("g")
	rh, _ := eng2.Workload("h")
	if rg.ID() != g.ID() || rh.ID() != h.ID() {
		t.Errorf("restart changed content identity: g %s→%s, h %s→%s", g.ID(), rg.ID(), h.ID(), rh.ID())
	}
	if !rh.IsDirected() {
		t.Error("restart lost h's directedness")
	}

	if ok, err := eng2.DropWorkload("g"); !ok || err != nil {
		t.Fatalf("drop on restarted engine: %v, %v", ok, err)
	}
	eng3 := pushpull.NewEngine()
	if err := eng3.AttachStore(open()); err != nil {
		t.Fatal(err)
	}
	if names := eng3.WorkloadNames(); len(names) != 1 || names[0] != "h" {
		t.Errorf("second restart sees %v, want [h] after the drop", names)
	}
}

// TestEngineStoreWriteThrough: registrations before AttachStore are not
// persisted (the store is the durable truth from attach onward), ones
// after are.
func TestEngineStoreWriteThrough(t *testing.T) {
	dir := t.TempDir()
	s, err := pushpull.NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng := pushpull.NewEngine()
	if err := eng.RegisterWorkload("ephemeral", pushpull.NewWorkload(undirectedGraph(t, 50, 53))); err != nil {
		t.Fatal(err)
	}
	if err := eng.AttachStore(s); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterWorkload("durable", pushpull.NewWorkload(undirectedGraph(t, 50, 59))); err != nil {
		t.Fatal(err)
	}
	names, err := s.Names()
	if err != nil || len(names) != 1 || names[0] != "durable" {
		t.Fatalf("persisted names = %v, %v, want exactly [durable]", names, err)
	}
	// Both are registered in memory regardless.
	if got := eng.WorkloadNames(); len(got) != 2 {
		t.Errorf("registry = %v, want both graphs", got)
	}
}

// TestDiskStoreConcurrentPutDelete hammers one name with interleaved
// Put/Delete/Get from many goroutines: no operation may error (Delete is
// idempotent, Put is atomic tmp+rename), and a concurrent Get must see
// either absence or one COMPLETE stored workload — never a torn file.
func TestDiskStoreConcurrentPutDelete(t *testing.T) {
	dir := t.TempDir()
	s, err := pushpull.NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	w1 := pushpull.NewWorkload(undirectedGraph(t, 60, 61))
	w2 := pushpull.NewWorkload(undirectedGraph(t, 80, 67))
	valid := map[string]bool{w1.ID(): true, w2.ID(): true}

	const goroutines, opsEach = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				switch (g + i) % 4 {
				case 0:
					if err := s.Put("contended", w1); err != nil {
						t.Errorf("Put w1: %v", err)
					}
				case 1:
					if err := s.Put("contended", w2); err != nil {
						t.Errorf("Put w2: %v", err)
					}
				case 2:
					if err := s.Delete("contended"); err != nil {
						t.Errorf("Delete: %v", err)
					}
				default:
					got, err := s.Get("contended")
					switch {
					case err == nil:
						if !valid[got.ID()] {
							t.Errorf("Get returned a workload that was never stored: %s", got.ID())
						}
					case errors.Is(err, fs.ErrNotExist):
						// Deleted at read time — legal under this interleaving.
					default:
						t.Errorf("Get observed a torn or corrupt file: %v", err)
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// The store is still fully functional and the directory holds no
	// leaked temp files from the churn.
	if err := s.Put("contended", w1); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("contended")
	if err != nil || got.ID() != w1.ID() {
		t.Fatalf("final round-trip: %v, %v", got, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".put-") {
			t.Errorf("leaked temp file %s", e.Name())
		}
	}
	names, err := s.Names()
	if err != nil || len(names) != 1 || names[0] != "contended" {
		t.Fatalf("Names() after churn = %v, %v", names, err)
	}
}

// TestDiskStoreBlockThreshold: a store with a memory budget persists
// large graphs in the block format and serves them back as pure
// out-of-core handles; small graphs keep the edge-list format; an
// overwrite that crosses the threshold in either direction leaves
// exactly one file per name.
func TestDiskStoreBlockThreshold(t *testing.T) {
	dir := t.TempDir()
	s, err := pushpull.NewDiskStore(dir, pushpull.WithBlockThreshold(2048))
	if err != nil {
		t.Fatal(err)
	}
	bigG := undirectedGraph(t, 500, 61)
	big := pushpull.NewWorkload(bigG)
	small := pushpull.NewWorkload(undirectedGraph(t, 10, 63))
	if err := s.Put("big", big); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("small", small); err != nil {
		t.Fatal(err)
	}
	mustExist := func(name string, want bool) {
		t.Helper()
		_, err := os.Stat(filepath.Join(dir, name))
		if got := err == nil; got != want {
			t.Fatalf("%s exists=%v, want %v", name, got, want)
		}
	}
	mustExist("big.blk", true)
	mustExist("big.el", false)
	mustExist("small.el", true)
	mustExist("small.blk", false)

	names, err := s.Names()
	if err != nil || len(names) != 2 || names[0] != "big" || names[1] != "small" {
		t.Fatalf("Names() = %v, %v", names, err)
	}

	// The reopened handle is pure out-of-core, shares the content ID of
	// an in-memory AsOutOfCore declaration over the same graph (caches
	// and shard placement survive the swap), and computes the same ranks.
	got, err := s.Get("big")
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsOutOfCore() {
		t.Fatal("past-threshold graph did not come back out-of-core")
	}
	if want := pushpull.NewWorkload(bigG, pushpull.AsOutOfCore()); got.ID() != want.ID() {
		t.Fatalf("reopened handle ID %s != declared ooc ID %s", got.ID(), want.ID())
	}
	want := run(t, pushpull.NewWorkload(bigG), "pr", pushpull.WithDirection(pushpull.Pull)).Result.([]float64)
	ranks := run(t, got, "pr").Result.([]float64)
	if d := pr.MaxDiff(ranks, want); d > 1e-9 {
		t.Fatalf("reopened block graph pr diverges: %g", d)
	}

	// OutOfCoreHandle: present for block-backed names only.
	if _, ok, err := s.OutOfCoreHandle("big"); err != nil || !ok {
		t.Fatalf("OutOfCoreHandle(big) = %v, %v", ok, err)
	}
	if _, ok, err := s.OutOfCoreHandle("small"); err != nil || ok {
		t.Fatalf("OutOfCoreHandle(small) = %v, %v", ok, err)
	}

	if sg, err := s.Get("small"); err != nil || sg.IsOutOfCore() {
		t.Fatalf("below-threshold graph: %v, ooc=%v", err, err == nil && sg.IsOutOfCore())
	}

	// Overwrites cross the threshold both ways; the stale format is gone.
	if err := s.Put("big", small); err != nil {
		t.Fatal(err)
	}
	mustExist("big.el", true)
	mustExist("big.blk", false)
	if err := s.Put("small", big); err != nil {
		t.Fatal(err)
	}
	mustExist("small.blk", true)
	mustExist("small.el", false)
	if names, err = s.Names(); err != nil || len(names) != 2 {
		t.Fatalf("Names() after overwrites = %v, %v", names, err)
	}
	if err := s.Delete("small"); err != nil {
		t.Fatal(err)
	}
	mustExist("small.blk", false)
	if _, err := s.Get("small"); err == nil {
		t.Fatal("Get after Delete succeeded")
	}
}

// TestDiskStoreBufferedBlocks: WithBufferedBlocks pins reopened handles
// to the bounded-RSS ReadAt reader.
func TestDiskStoreBufferedBlocks(t *testing.T) {
	s, err := pushpull.NewDiskStore(t.TempDir(),
		pushpull.WithBlockThreshold(1), pushpull.WithBufferedBlocks())
	if err != nil {
		t.Fatal(err)
	}
	g := undirectedGraph(t, 300, 67)
	if err := s.Put("g", pushpull.NewWorkload(g)); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("g")
	if err != nil {
		t.Fatal(err)
	}
	bg, err := got.OutOfCore()
	if err != nil {
		t.Fatal(err)
	}
	if bg.Mmapped() {
		t.Fatal("buffered store served an mmapped handle")
	}
	want := run(t, pushpull.NewWorkload(g), "pr", pushpull.WithDirection(pushpull.Pull)).Result.([]float64)
	if d := pr.MaxDiff(run(t, got, "pr").Result.([]float64), want); d > 1e-9 {
		t.Fatalf("buffered block graph pr diverges: %g", d)
	}
}

// TestEngineOutOfCoreSwapAndRestore: registering a past-budget graph
// swaps the in-memory binding for the store's block-backed handle — the
// uploaded CSR becomes collectable — and a restart restores the same
// out-of-core identity.
func TestEngineOutOfCoreSwapAndRestore(t *testing.T) {
	dir := t.TempDir()
	open := func() *pushpull.DiskStore {
		t.Helper()
		s, err := pushpull.NewDiskStore(dir, pushpull.WithBlockThreshold(2048))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	g := undirectedGraph(t, 400, 71)
	want := run(t, pushpull.NewWorkload(g), "pr", pushpull.WithDirection(pushpull.Pull)).Result.([]float64)

	eng1 := pushpull.NewEngine()
	if err := eng1.AttachStore(open()); err != nil {
		t.Fatal(err)
	}
	if err := eng1.RegisterWorkload("big", pushpull.NewWorkload(g)); err != nil {
		t.Fatal(err)
	}
	served, ok := eng1.Workload("big")
	if !ok || !served.IsOutOfCore() {
		t.Fatalf("registered binding: ok=%v, ooc=%v — engine did not swap to the block handle", ok, ok && served.IsOutOfCore())
	}
	rep, err := eng1.Run(context.Background(), served, "pr")
	if err != nil {
		t.Fatal(err)
	}
	if d := pr.MaxDiff(rep.Result.([]float64), want); d > 1e-9 {
		t.Fatalf("swapped handle pr diverges: %g", d)
	}

	eng2 := pushpull.NewEngine()
	if err := eng2.AttachStore(open()); err != nil {
		t.Fatal(err)
	}
	restored, ok := eng2.Workload("big")
	if !ok || !restored.IsOutOfCore() {
		t.Fatal("restart lost the out-of-core binding")
	}
	if restored.ID() != served.ID() {
		t.Fatalf("restart changed content identity: %s → %s", served.ID(), restored.ID())
	}
	rep, err = eng2.Run(context.Background(), restored, "pr")
	if err != nil {
		t.Fatal(err)
	}
	if d := pr.MaxDiff(rep.Result.([]float64), want); d > 1e-9 {
		t.Fatalf("restored handle pr diverges: %g", d)
	}
	// Algorithms without block kernels reject the pure file handle loudly.
	if _, err := eng2.Run(context.Background(), restored, "tc"); !errors.Is(err, pushpull.ErrOutOfCoreUnsupported) {
		t.Fatalf("tc on pure ooc handle: %v, want ErrOutOfCoreUnsupported", err)
	}
	if ok, err := eng2.DropWorkload("big"); !ok || err != nil {
		t.Fatalf("drop: %v, %v", ok, err)
	}
}
