package pushpull

// Shard executors and single-flight deduplication: the two request-level
// scheduling layers the sharded Engine adds over PR 4's flat worker pool.
//
// The paper's §6 point is that the push/pull choice is ultimately about
// *where* communication happens — partitioning work so each executor owns
// its share. The Engine applies the same idea one level up: registered
// workloads are placed across shard executors by content identity (and
// partition-aware runs by the identity of the PA split they use), each
// shard owning its own admission queue. A burst of requests against one
// hot graph then queues on that graph's shard alone instead of
// head-of-line-blocking every other graph behind one global semaphore.
//
// Single-flight deduplication is the message-reduction lever (Yan et al.,
// PAPERS.md) for identical work: concurrent requests whose (workload
// content, algorithm, options fingerprint) keys match coalesce onto the
// one run already executing — followers park on the leader's completion
// and receive a shallow copy of its report flagged Stats.Coalesced,
// consuming no worker slot and running no kernel.

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"sync/atomic"
	"time"
)

// ErrOverloaded: a run was rejected because the owning shard's admission
// queue already holds WithQueueLimit waiters. It is the engine's truthful
// overload signal — serving fronts map it to 429 + Retry-After so a
// cluster router can back off or fail over instead of queueing forever.
var ErrOverloaded = errors.New("pushpull: shard admission queue full")

// ErrDraining: a queued (not-yet-admitted) run was failed because the
// process is shutting down. A draining engine finishes the runs already
// holding worker slots but refuses to start queued work — a serving front
// maps this to 503 so the client retries against a live replica instead
// of racing the shutdown timeout in a queue that will never move.
var ErrDraining = errors.New("pushpull: engine draining, queued run refused")

// drainKey is the context key of WithDrainSignal.
type drainKey struct{}

// WithDrainSignal returns a context whose runs abandon the admission
// queue with ErrDraining once signal is closed. Runs that already hold a
// worker slot are unaffected — this is the "drain in-flight, shed queued"
// half of a graceful shutdown. The signal rides the context (rather than
// engine state) so one engine can serve draining and non-draining fronts
// at once, and so admission keeps composing with per-request deadlines.
func WithDrainSignal(ctx context.Context, signal <-chan struct{}) context.Context {
	return context.WithValue(ctx, drainKey{}, signal)
}

// drainSignal unpacks WithDrainSignal; a nil channel never fires.
func drainSignal(ctx context.Context) <-chan struct{} {
	ch, _ := ctx.Value(drainKey{}).(<-chan struct{})
	return ch
}

// shard is one executor: an admission queue plus its telemetry. A nil sem
// admits unboundedly (the default Engine).
type shard struct {
	sem chan struct{}
	// queueLimit bounds the number of runs waiting on sem; ≤ 0 queues
	// unboundedly. waiting tracks the current queue depth.
	queueLimit int
	waiting    atomic.Int64

	runs        atomic.Uint64
	queuedRuns  atomic.Uint64
	queueWaitNS atomic.Int64
	rejected    atomic.Uint64
}

func newShards(n, workers, queueLimit int) []*shard {
	if n < 1 {
		n = 1
	}
	shards := make([]*shard, n)
	for i := range shards {
		sh := &shard{queueLimit: queueLimit}
		if workers > 0 {
			sh.sem = make(chan struct{}, workers)
		}
		shards[i] = sh
	}
	return shards
}

// admit blocks until a worker slot frees up on this shard (or ctx fires
// while queueing), returning how long the run waited. When the shard has
// a queue limit and that many runs are already waiting, admit fails fast
// with ErrOverloaded instead of joining the queue.
func (s *shard) admit(ctx context.Context) (time.Duration, error) {
	if s.sem == nil {
		return 0, nil
	}
	select {
	case s.sem <- struct{}{}:
		return 0, nil
	default:
	}
	// waiting is tracked unconditionally (not just under a queue limit):
	// it is the live queue depth behind the serving front's Retry-After
	// estimate and the queue_eta_ms stat.
	depth := s.waiting.Add(1)
	if s.queueLimit > 0 && depth > int64(s.queueLimit) {
		s.waiting.Add(-1)
		s.rejected.Add(1)
		return 0, fmt.Errorf("%w (%d queued)", ErrOverloaded, s.queueLimit)
	}
	defer s.waiting.Add(-1)
	s.queuedRuns.Add(1)
	start := time.Now()
	select {
	case s.sem <- struct{}{}:
		wait := time.Since(start)
		s.queueWaitNS.Add(int64(wait))
		return wait, nil
	case <-drainSignal(ctx):
		s.queueWaitNS.Add(int64(time.Since(start)))
		return 0, ErrDraining
	case <-ctx.Done():
		s.queueWaitNS.Add(int64(time.Since(start)))
		return 0, fmt.Errorf("pushpull: canceled in admission queue: %w", ctx.Err())
	}
}

func (s *shard) release() {
	if s.sem != nil {
		<-s.sem
	}
}

// shardFor places a run: the shard owning the workload's content — or,
// for a partition-aware run, the shard owning that workload's PA split
// for the resolved partition count, so repeated PA runs over one layout
// always land together and their memoized split is hot on one queue.
// Placement only exists to spread load deterministically; every shard can
// execute every run (the Workload's derived views are shared state).
func (e *Engine) shardFor(w *Workload, cfg *Config) *shard {
	if len(e.shards) == 1 {
		return e.shards[0]
	}
	key := w.ID()
	if cfg.PartitionAware {
		key = fmt.Sprintf("%s|pa=%d", key, cfg.partitions(w))
	}
	return e.shards[int(PlacementHash(key)%uint64(len(e.shards)))]
}

// PlacementHash is the deterministic digest (FNV-1a, 64-bit) behind every
// placement decision in the system: the Engine places workloads on shard
// executors by PlacementHash(content ID) mod shards, and the cluster
// tier's rendezvous placer (cluster.Placer) scores workers with
// PlacementHash(content ID + worker) — so in-process and cross-process
// placement agree on one hash and stay stable across restarts.
func PlacementHash(key string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, key)
	return h.Sum64()
}

// ---- single-flight ----

// flight is one in-progress run other requests may coalesce onto. done is
// closed after rep/err are set and the flight is removed from the map.
type flight struct {
	done chan struct{}
	// rep is a private snapshot of the leader's completed report, nil
	// when the run failed or was canceled (followers then retry instead
	// of propagating a partial result).
	rep *Report
	err error
}

// coalesce joins or creates the flight for key, returning either the
// finished report (follower: the leader's result, flagged Coalesced; or
// a cache hit from a leader that completed between the caller's cache
// probe and here) or a non-nil flight the caller now leads and must
// resolve.
func (e *Engine) coalesce(ctx context.Context, key string) (*Report, error, *flight) {
	for {
		e.sfMu.Lock()
		if f, ok := e.inflight[key]; ok {
			e.sfMu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, fmt.Errorf("pushpull: canceled awaiting coalesced run: %w", ctx.Err()), nil
			}
			if f.rep != nil {
				e.coalesced.Add(1)
				return coalescedCopy(f.rep), nil, nil
			}
			// The leader failed or was canceled: its outcome is not a
			// completed result, so race for leadership and run for real.
			continue
		}
		// No flight — but a leader may have finished since the caller's
		// cache probe. Leaders cache their result before deregistering
		// (both under this mutex's ordering), so re-probing here is
		// race-free: if the cache misses now, no identical run completed,
		// and taking leadership cannot duplicate one.
		if e.cache != nil {
			if rep, hit, _ := e.cacheGet(key); hit {
				e.sfMu.Unlock()
				e.hits.Add(1)
				return cachedCopy(rep), nil, nil
			}
		}
		f := &flight{done: make(chan struct{})}
		e.inflight[key] = f
		e.sfMu.Unlock()
		return nil, nil, f
	}
}

// resolve publishes the leader's outcome and wakes every follower. Only a
// complete result is shared; failures leave rep nil so followers rerun.
func (e *Engine) resolve(key string, f *flight, rep *Report, err error) {
	if err == nil && rep != nil && !rep.Stats.Canceled {
		snap := *rep
		f.rep = &snap
	}
	f.err = err
	e.sfMu.Lock()
	delete(e.inflight, key)
	e.sfMu.Unlock()
	close(f.done)
}

// coalescedCopy is the per-follower view of a leader's report: a shallow
// copy flagged Coalesced, sharing the (read-only) payload while keeping
// the leading run's timings visible.
func coalescedCopy(rep *Report) *Report {
	cp := *rep
	cp.Stats.Coalesced = true
	cp.Stats.QueueWait = 0
	return &cp
}
