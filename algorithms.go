package pushpull

// The built-in algorithm adapters: each lowers the uniform Config onto
// one internal algorithm package and lifts its result into a Report.
// They are the only glue between the public facade and internal/algo.

import (
	"context"
	"fmt"
	"time"

	"pushpull/internal/algo/bc"
	"pushpull/internal/algo/bfs"
	"pushpull/internal/algo/gc"
	"pushpull/internal/algo/mst"
	"pushpull/internal/algo/pr"
	"pushpull/internal/algo/sssp"
	"pushpull/internal/algo/tc"
	"pushpull/internal/core"
)

// builtin implements Algorithm around an adapter function and a static
// capability declaration.
type builtin struct {
	name string
	desc string
	caps Caps
	run  func(ctx context.Context, w *Workload, cfg *Config) (*Report, error)
}

func (b *builtin) Name() string     { return b.name }
func (b *builtin) Describe() string { return b.desc }
func (b *builtin) Caps() Caps       { return b.caps }
func (b *builtin) Run(ctx context.Context, w *Workload, cfg *Config) (*Report, error) {
	return b.run(ctx, w, cfg)
}

func init() {
	for _, b := range []*builtin{
		{"pr", "PageRank (§3.1, Algorithm 1; +Partition-Awareness §5; directed per §4.8; out-of-core block pull)",
			Caps{Directed: true, Probes: true, PartitionAware: true, DegreeSort: true, HubCache: true, OutOfCore: true}, runPR},
		{"tc", "triangle counting (§3.2, Algorithm 2; +Partition-Awareness §5)",
			Caps{Probes: true, PartitionAware: true}, runTC},
		{"bfs", "generalized breadth-first search (§3.3, Algorithm 3; Auto = direction-optimizing; out-of-core block pull)",
			Caps{NeedsSource: true, Probes: true, DegreeSort: true, HubCache: true, OutOfCore: true}, runBFS},
		{"sssp", "Δ-stepping shortest paths (§3.4, Algorithm 4; Auto = adaptive switching)",
			Caps{NeedsWeights: true, NeedsSource: true, Probes: true}, runSSSP},
		{"bc", "Brandes betweenness centrality (§3.5, Algorithm 5)",
			Caps{NeedsSource: true, Probes: true}, runBC},
		{"gc", "Boman graph coloring (§3.6, Algorithm 6; WithSwitchPolicy = Frontier-Exploit+GS/GrS §5; hub-cached pull)",
			Caps{Probes: true, DegreeSort: true, HubCache: true}, runGC},
		{"gc-fe", "Frontier-Exploit coloring (§5), optionally with a switch policy; hub-cached pull discovery",
			Caps{Probes: true, DegreeSort: true, HubCache: true}, runGCFE},
		{"gc-cr", "Conflict-Removal coloring (§5, Algorithm 9)",
			Caps{Probes: true}, runGCCR},
		{"mst", "Borůvka minimum spanning tree (§3.7, Algorithm 7)",
			Caps{NeedsWeights: true, Probes: true}, runMST},
	} {
		MustRegister(b)
	}
}

// partitionProfileThreads resolves the simulated thread count of a probed
// partition-based run (PA kernels, Boman coloring, Conflict-Removal): those
// kernels run one worker per partition, so an explicit WithThreads that
// disagrees with the partition count cannot be honored and errors instead
// of being silently ignored.
func partitionProfileThreads(algo string, cfg *Config, parts int) (int, error) {
	if cfg.Threads > 0 && cfg.Threads != parts {
		return 0, fmt.Errorf("pushpull: %s probes simulate one thread per partition (%d); WithThreads(%d) conflicts — drop it or set WithPartitions(%d)",
			algo, parts, cfg.Threads, cfg.Threads)
	}
	return parts, nil
}

// coreTrace lifts a recorded per-iteration direction sequence (bfs rounds,
// adaptive sssp, Frontier-Exploit — including mid-run Generic-Switch
// flips) into the public trace.
func coreTrace(dirs []core.Direction) []Direction {
	out := make([]Direction, len(dirs))
	for i, d := range dirs {
		out[i] = dirFromCore(d)
	}
	return out
}

// ---- PageRank ----

func runPR(ctx context.Context, w *Workload, cfg *Config) (*Report, error) {
	if cfg.outOfCore(w) {
		return runPRBlocked(ctx, w, cfg)
	}
	if w.IsDirected() {
		return runPRDirected(ctx, w, cfg)
	}
	g := w.Graph()
	opt := pr.Options{Options: cfg.coreOptions(ctx), Iterations: cfg.Iterations}
	if cfg.DampingSet {
		opt.SetDamping(cfg.Damping)
	}
	// Pulling needs no synchronization at all (§3.1): the Auto default.
	// Partition-Awareness accelerates the push kernel (§5), so asking for
	// it implies pushing; an explicit pull direction conflicts.
	dir := cfg.resolveDir(core.Pull)
	if cfg.PartitionAware {
		if cfg.Direction == Pull {
			return nil, fmt.Errorf("pushpull: pr partition awareness accelerates pushing (§5); drop WithDirection(Pull)")
		}
		dir = core.Push
	}

	// Layout options: degree sorting permutes the CSR every kernel runs
	// on, hub caching splits the pull gather. PA runs keep the plain
	// layout (its §5 split is laid out over the unpermuted graph;
	// validateCaps rejects the explicit combination).
	var lay layout
	if !cfg.PartitionAware {
		lay = resolveLayout(w, cfg, true)
	}
	if lay.ds != nil {
		g = lay.ds.G
	}
	var hs *HubSplit
	if dir == core.Pull && lay.hubK > 0 {
		hs = w.HubSplit(lay.hubK, lay.ds != nil, false)
	}

	if cfg.Probes {
		start := time.Now()
		var ranks []float64
		var err error
		var rep CounterReport
		if dir == core.Push && cfg.PartitionAware {
			// The PA kernel's worker decomposition is the partition.
			pa, paErr := cfg.paGraph(w)
			if paErr != nil {
				return nil, paErr
			}
			t, tErr := partitionProfileThreads("pr", cfg, pa.Part.P)
			if tErr != nil {
				return nil, tErr
			}
			prof, grp := core.CountingProfile(t)
			ranks, err = pr.PushPAProfiled(pa, opt, prof, nil)
			rep = grp.Report()
		} else {
			prof, grp := core.CountingProfile(cfg.effectiveThreads(g.N()))
			switch {
			case dir == core.Push:
				ranks, err = pr.PushProfiled(g, opt, prof, nil)
			case hs != nil:
				ranks, err = pr.PullHubProfiled(g, hs, opt, prof, nil)
			default:
				ranks, err = pr.PullProfiled(g, opt, prof, nil)
			}
			rep = grp.Report()
		}
		if err != nil {
			return nil, err
		}
		if lay.ds != nil {
			ranks = unpermuteFloats(lay.ds, ranks)
		}
		iters := cfg.Iterations
		if iters <= 0 {
			iters = pr.DefaultIterations
		}
		// Wall time covers the whole instrumented pass (it includes the
		// probe bookkeeping, so it is slower than a plain run).
		return &Report{Result: ranks,
			Stats:      RunStats{Direction: dir, Iterations: iters, Elapsed: time.Since(start)},
			Directions: uniformTrace(dir, iters), Counters: &rep}, nil
	}

	var ranks []float64
	var stats core.RunStats
	switch {
	case dir == core.Push && cfg.PartitionAware:
		pa, err := cfg.paGraph(w)
		if err != nil {
			return nil, err
		}
		ranks, stats = pr.PushPA(pa, opt)
	case dir == core.Push:
		ranks, stats = pr.Push(g, opt)
	case hs != nil:
		ranks, stats = pr.PullHub(g, hs, opt)
	default:
		ranks, stats = pr.Pull(g, opt)
	}
	if lay.ds != nil {
		ranks = unpermuteFloats(lay.ds, ranks)
	}
	return &Report{Result: ranks, Stats: stats, Directions: uniformTrace(dir, stats.Iterations)}, nil
}

// runPRBlocked runs PageRank out-of-core: the block-sequential pull
// kernel streams the pull-view adjacency (the transpose, for directed
// workloads — the file stores in-edges plus the out-degree sidecar) from
// the workload's memoized block file. validateCaps has already rejected
// push and the in-memory layout options; the payload matches in-memory
// pull runs up to floating-point reassociation.
func runPRBlocked(ctx context.Context, w *Workload, cfg *Config) (*Report, error) {
	bg, err := w.OutOfCore()
	if err != nil {
		return nil, err
	}
	opt := pr.Options{Options: cfg.coreOptions(ctx), Iterations: cfg.Iterations}
	if cfg.DampingSet {
		opt.SetDamping(cfg.Damping)
	}
	if cfg.Probes {
		start := time.Now()
		prof, grp := core.CountingProfile(cfg.effectiveThreads(w.N()))
		ranks, err := pr.PullBlockedProfiled(bg, opt, prof, nil)
		if err != nil {
			return nil, err
		}
		rep := grp.Report()
		iters := cfg.Iterations
		if iters <= 0 {
			iters = pr.DefaultIterations
		}
		return &Report{Result: ranks,
			Stats:      RunStats{Direction: core.Pull, Iterations: iters, Elapsed: time.Since(start)},
			Directions: uniformTrace(core.Pull, iters), Counters: &rep}, nil
	}
	ranks, stats, err := pr.PullBlocked(bg, opt)
	if err != nil {
		return nil, err
	}
	return &Report{Result: ranks, Stats: stats, Directions: uniformTrace(core.Pull, stats.Iterations)}, nil
}

// runPRDirected dispatches pr on a directed workload to the §4.8 kernels:
// pushing scatters along out-edges (cost bound d̂out), pulling gathers
// along the workload's memoized transpose (cost bound d̂in). Probes and
// the direction trace behave exactly as on the undirected path.
func runPRDirected(ctx context.Context, w *Workload, cfg *Config) (*Report, error) {
	if cfg.PartitionAware || cfg.PA != nil {
		return nil, fmt.Errorf("pushpull: pr on a directed workload: %w (the §5 split is defined over the undirected layout)", ErrPartitionAwareUnsupported)
	}
	opt := pr.Options{Options: cfg.coreOptions(ctx), Iterations: cfg.Iterations}
	if cfg.DampingSet {
		opt.SetDamping(cfg.Damping)
	}
	dir := cfg.resolveDir(core.Pull) // as undirected: pulling avoids all atomics
	// The two adjacency views of §4.8 — out-edges for pushing, in-edges
	// for pulling. Only pulling iterates in-edges, so the workload's
	// memoized transpose is materialized lazily, for pull runs alone.
	// Degree sorting swaps in the permuted pair of views; hub caching
	// splits the in-view.
	lay := resolveLayout(w, cfg, true)
	dg := &pr.DirectedGraph{Out: w.Graph()}
	if lay.ds != nil {
		dg.Out = lay.ds.G
	}
	var hs *HubSplit
	if dir == core.Pull {
		if lay.ds != nil {
			dg.In = w.SortedTranspose()
		} else {
			dg.In = w.Transpose()
		}
		if lay.hubK > 0 {
			hs = w.HubSplit(lay.hubK, lay.ds != nil, true)
		}
	}

	if cfg.Probes {
		start := time.Now()
		prof, grp := core.CountingProfile(cfg.effectiveThreads(w.N()))
		var ranks []float64
		var err error
		switch {
		case dir == core.Push:
			ranks, err = pr.PushDirectedProfiled(dg, opt, prof, nil)
		case hs != nil:
			ranks, err = pr.PullDirectedHubProfiled(dg, hs, opt, prof, nil)
		default:
			ranks, err = pr.PullDirectedProfiled(dg, opt, prof, nil)
		}
		if err != nil {
			return nil, err
		}
		if lay.ds != nil {
			ranks = unpermuteFloats(lay.ds, ranks)
		}
		rep := grp.Report()
		iters := cfg.Iterations
		if iters <= 0 {
			iters = pr.DefaultIterations
		}
		return &Report{Result: ranks,
			Stats:      RunStats{Direction: dir, Iterations: iters, Elapsed: time.Since(start)},
			Directions: uniformTrace(dir, iters), Counters: &rep}, nil
	}

	var ranks []float64
	var stats core.RunStats
	switch {
	case dir == core.Push:
		ranks, stats = pr.PushDirected(dg, opt)
	case hs != nil:
		ranks, stats = pr.PullDirectedHub(dg, hs, opt)
	default:
		ranks, stats = pr.PullDirected(dg, opt)
	}
	if lay.ds != nil {
		ranks = unpermuteFloats(lay.ds, ranks)
	}
	return &Report{Result: ranks, Stats: stats, Directions: uniformTrace(dir, stats.Iterations)}, nil
}

// ---- Triangle counting ----

func runTC(ctx context.Context, w *Workload, cfg *Config) (*Report, error) {
	g := w.Graph()
	opt := tc.Options{Options: cfg.coreOptions(ctx)}
	// Pulling accumulates privately with no atomics (§4.9): Auto default.
	// As with pr, Partition-Awareness implies the push kernel it exists
	// to accelerate.
	dir := cfg.resolveDir(core.Pull)
	if cfg.PartitionAware {
		if cfg.Direction == Pull {
			return nil, fmt.Errorf("pushpull: tc partition awareness accelerates pushing (§5); drop WithDirection(Pull)")
		}
		dir = core.Push
	}

	if cfg.Probes {
		start := time.Now()
		var counts []int64
		var err error
		var rep CounterReport
		if cfg.PartitionAware {
			pa, paErr := cfg.paGraph(w)
			if paErr != nil {
				return nil, paErr
			}
			t, tErr := partitionProfileThreads("tc", cfg, pa.Part.P)
			if tErr != nil {
				return nil, tErr
			}
			prof, grp := core.CountingProfile(t)
			counts, err = tc.PushPAProfiled(pa, prof, nil)
			rep = grp.Report()
		} else {
			prof, grp := core.CountingProfile(cfg.effectiveThreads(g.N()))
			if dir == core.Push {
				counts, err = tc.PushProfiled(g, prof, nil)
			} else {
				counts, err = tc.PullProfiled(g, prof, nil)
			}
			rep = grp.Report()
		}
		if err != nil {
			return nil, err
		}
		// The instrumented kernel is one deterministic pass; the wall
		// time includes the probe bookkeeping.
		return &Report{Result: counts,
			Stats:      RunStats{Direction: dir, Iterations: 1, Elapsed: time.Since(start)},
			Directions: uniformTrace(dir, 1), Counters: &rep}, nil
	}

	var counts []int64
	var stats core.RunStats
	switch {
	case dir == core.Push && cfg.PartitionAware:
		pa, err := cfg.paGraph(w)
		if err != nil {
			return nil, err
		}
		counts, stats = tc.PushPA(pa, opt)
	case dir == core.Push:
		counts, stats = tc.Push(g, opt)
	default:
		counts, stats = tc.Pull(g, opt)
	}
	return &Report{Result: counts, Stats: stats, Directions: uniformTrace(dir, stats.Iterations)}, nil
}

// ---- BFS ----

func runBFS(ctx context.Context, w *Workload, cfg *Config) (*Report, error) {
	if cfg.outOfCore(w) {
		return runBFSBlocked(ctx, w, cfg)
	}
	// Source range is validated by the NeedsSource capability gate.
	g := w.Graph()
	mode := bfs.Auto // the direction-optimizing switch of Beamer et al.
	switch cfg.Direction {
	case Push:
		mode = bfs.ForcePush
	case Pull:
		mode = bfs.ForcePull
	}
	// Layout options: the traversal runs on the permuted graph from the
	// permuted root and the tree is un-permuted at the boundary; the hub
	// split serves the pull rounds only, so a forced-push run skips
	// building it.
	lay := resolveLayout(w, cfg, true)
	root := cfg.Source
	if lay.ds != nil {
		g = lay.ds.G
		root = lay.ds.Inv[root]
	}
	var hs *HubSplit
	if lay.hubK > 0 && mode != bfs.ForcePush {
		hs = w.HubSplit(lay.hubK, lay.ds != nil, false)
	}
	if cfg.Probes {
		// Auto stays supported: the Beamer heuristic decides from frontier
		// sizes, which the instrumented pass reproduces deterministically.
		prof, grp := core.CountingProfile(cfg.effectiveThreads(g.N()))
		tree, dirs, stats, err := bfs.TraverseFromHubProfiled(g, hs, root, mode, cfg.coreOptions(ctx), prof, nil)
		if err != nil {
			return nil, err
		}
		if lay.ds != nil {
			tree = unpermuteTree(lay.ds, tree)
		}
		rep := grp.Report()
		return &Report{Result: tree, Stats: stats, Directions: coreTrace(dirs), Counters: &rep}, nil
	}
	tree, dirs, stats := bfs.TraverseFromHub(g, hs, root, mode, cfg.coreOptions(ctx))
	if lay.ds != nil {
		tree = unpermuteTree(lay.ds, tree)
	}
	return &Report{Result: tree, Stats: stats, Directions: coreTrace(dirs)}, nil
}

// runBFSBlocked runs BFS out-of-core: every round is a block-sequential
// bottom-up (pull) pass with a per-block frontier summary skipping cold
// blocks; validateCaps has already rejected ForcePush. Levels match the
// in-memory kernels exactly; parents are valid tree edges (the
// deterministic block-scan order claims them, not a push race).
func runBFSBlocked(ctx context.Context, w *Workload, cfg *Config) (*Report, error) {
	bg, err := w.OutOfCore()
	if err != nil {
		return nil, err
	}
	if cfg.Probes {
		prof, grp := core.CountingProfile(cfg.effectiveThreads(w.N()))
		tree, dirs, stats, err := bfs.TraverseBlockedProfiled(bg, cfg.Source, cfg.coreOptions(ctx), prof, nil)
		if err != nil {
			return nil, err
		}
		rep := grp.Report()
		return &Report{Result: tree, Stats: stats, Directions: coreTrace(dirs), Counters: &rep}, nil
	}
	tree, dirs, stats, err := bfs.TraverseBlocked(bg, cfg.Source, cfg.coreOptions(ctx))
	if err != nil {
		return nil, err
	}
	return &Report{Result: tree, Stats: stats, Directions: coreTrace(dirs)}, nil
}

// ---- SSSP ----

func runSSSP(ctx context.Context, w *Workload, cfg *Config) (*Report, error) {
	g := w.Graph()
	// Source range is validated by the NeedsSource capability gate.
	opt := sssp.Options{Options: cfg.coreOptions(ctx), Source: cfg.Source, Delta: cfg.Delta}
	if cfg.Probes {
		// A deterministic measurement pass needs a fixed direction; the
		// adaptive switcher's decisions come from runtime frontier costs
		// an instrumented replay should not depend on, so Auto takes the
		// push baseline (the trace reports what actually ran).
		prof, grp := core.CountingProfile(cfg.effectiveThreads(g.N()))
		var res *sssp.Result
		var err error
		if cfg.resolveDir(core.Push) == core.Push {
			res, err = sssp.PushProfiled(g, opt, prof, nil)
		} else {
			res, err = sssp.PullProfiled(g, opt, prof, nil)
		}
		if err != nil {
			return nil, err
		}
		rep := grp.Report()
		return &Report{Result: res, Stats: res.Stats, Counters: &rep,
			Directions: uniformTrace(res.Stats.Direction, res.Stats.Iterations)}, nil
	}

	// Auto runs the per-iteration switching variant (§7.2).
	if cfg.Direction == Auto {
		res := sssp.Adaptive(g, opt)
		return &Report{Result: res.Result, Stats: res.Stats, Directions: coreTrace(res.Dirs)}, nil
	}
	var res *sssp.Result
	if cfg.Direction == Push {
		res = sssp.Push(g, opt)
	} else {
		res = sssp.Pull(g, opt)
	}
	return &Report{Result: res, Stats: res.Stats,
		Directions: uniformTrace(res.Stats.Direction, res.Stats.Iterations)}, nil
}

// ---- Betweenness centrality ----

func runBC(ctx context.Context, w *Workload, cfg *Config) (*Report, error) {
	// Source ranges are validated by the NeedsSource capability gate.
	g := w.Graph()
	opt := bc.Options{Options: cfg.coreOptions(ctx), Sources: cfg.Sources}
	dir := cfg.resolveDir(core.Push) // bc defaults to push (§3.5 baseline)
	if dir == core.Push {
		opt.Mode = bfs.ForcePush
	} else {
		opt.Mode = bfs.ForcePull
	}
	if cfg.Probes {
		prof, grp := core.CountingProfile(cfg.effectiveThreads(g.N()))
		res, err := bc.RunProfiled(g, opt, prof, nil)
		if err != nil {
			return nil, err
		}
		res.Stats.Direction = dir
		rep := grp.Report()
		return &Report{Result: res, Stats: res.Stats,
			Directions: uniformTrace(dir, res.Stats.Iterations), Counters: &rep}, nil
	}
	res := bc.Run(g, opt)
	res.Stats.Direction = dir
	return &Report{Result: res, Stats: res.Stats, Directions: uniformTrace(dir, res.Stats.Iterations)}, nil
}

// ---- Graph coloring ----

func runGC(ctx context.Context, w *Workload, cfg *Config) (*Report, error) {
	g := w.Graph()
	// A switching policy turns the run into Frontier-Exploit steered by
	// that policy (Generic-Switch / Greedy-Switch, §5); probes carry over.
	if cfg.Switch != nil {
		return runGCFE(ctx, w, cfg)
	}
	opt := gc.Options{Options: cfg.coreOptions(ctx), MaxIters: cfg.MaxIters}
	dir := cfg.resolveDir(core.Push) // push maintains the exact dirty set
	// Degree sorting runs the coloring over the permuted graph; the colors
	// are un-permuted at the boundary. The permuted run may pick different
	// (still proper) colors than a plain one: iteration order is part of
	// Boman coloring's outcome. Hub caching serves the pull conflict
	// scan's hub-neighbor color reads from a k-entry cache — the coloring
	// itself is unchanged.
	lay := resolveLayout(w, cfg, true)
	if lay.ds != nil {
		g = lay.ds.G
	}
	var hs *HubSplit
	if dir == core.Pull && lay.hubK > 0 {
		hs = w.HubSplit(lay.hubK, lay.ds != nil, false)
	}
	part := NewPartition(g.N(), cfg.partitions(w))

	if cfg.Probes {
		t, tErr := partitionProfileThreads("gc", cfg, part.P)
		if tErr != nil {
			return nil, tErr
		}
		start := time.Now()
		prof, grp := core.CountingProfile(t)
		var res *gc.ProfiledResult
		var err error
		switch {
		case dir == core.Push:
			res, err = gc.PushProfiled(g, part, opt, prof, nil)
		case hs != nil:
			res, err = gc.PullHubProfiled(g, hs, part, opt, prof, nil)
		default:
			res, err = gc.PullProfiled(g, part, opt, prof, nil)
		}
		if err != nil {
			return nil, err
		}
		colors := res.Colors
		if lay.ds != nil {
			colors = unpermuteColors(lay.ds, colors)
		}
		rep := grp.Report()
		return &Report{
			Result:     &gc.Result{Colors: colors, Iterations: res.Iterations, NumColors: gc.CountColors(colors)},
			Stats:      RunStats{Direction: dir, Iterations: res.Iterations, Elapsed: time.Since(start)},
			Directions: uniformTrace(dir, res.Iterations),
			Counters:   &rep,
		}, nil
	}

	var res *gc.Result
	var err error
	switch {
	case dir == core.Push:
		res, err = gc.Push(g, part, opt)
	case hs != nil:
		res, err = gc.PullHub(g, hs, part, opt)
	default:
		res, err = gc.Pull(g, part, opt)
	}
	if err != nil {
		return nil, err
	}
	if lay.ds != nil {
		res = unpermuteColoring(lay.ds, res)
	}
	return &Report{Result: res, Stats: res.Stats, Directions: uniformTrace(dir, res.Stats.Iterations)}, nil
}

func runGCFE(ctx context.Context, w *Workload, cfg *Config) (*Report, error) {
	g := w.Graph()
	opt := gc.Options{Options: cfg.coreOptions(ctx), MaxIters: cfg.MaxIters}
	dir := cfg.resolveDir(core.Push)
	lay := resolveLayout(w, cfg, true)
	if lay.ds != nil {
		g = lay.ds.G
	}
	// The hub split is built whenever hub caching is on, regardless of the
	// starting direction: a Generic-Switch policy can flip the run into
	// pull mid-way, and only pull rounds consult the cache.
	var hs *HubSplit
	if lay.hubK > 0 {
		hs = w.HubSplit(lay.hubK, lay.ds != nil, false)
	}
	// The built-in policies are re-instantiated per run: GenericSwitch
	// latches one-shot state after flipping, so handing the caller's
	// pointer straight to the algorithm would silently disable switching
	// on every reuse (and race under concurrent Runs).
	policy := cfg.Switch
	switch p := policy.(type) {
	case *core.GenericSwitch:
		policy = &core.GenericSwitch{Threshold: p.Threshold}
	case *core.GreedySwitch:
		policy = &core.GreedySwitch{Fraction: p.Fraction, Total: p.Total}
	}
	if cfg.Probes {
		prof, grp := core.CountingProfile(cfg.effectiveThreads(g.N()))
		var res *gc.Result
		var err error
		if hs != nil {
			res, err = gc.FrontierExploitHubProfiled(g, hs, opt, dir, policy, prof, nil)
		} else {
			res, err = gc.FrontierExploitProfiled(g, opt, dir, policy, prof, nil)
		}
		if err != nil {
			return nil, err
		}
		if lay.ds != nil {
			res = unpermuteColoring(lay.ds, res)
		}
		rep := grp.Report()
		return &Report{Result: res, Stats: res.Stats, Directions: coreTrace(res.Dirs), Counters: &rep}, nil
	}
	var res *gc.Result
	if hs != nil {
		res = gc.FrontierExploitHub(g, hs, opt, dir, policy)
	} else {
		res = gc.FrontierExploit(g, opt, dir, policy)
	}
	if lay.ds != nil {
		res = unpermuteColoring(lay.ds, res)
	}
	// The trace records each iteration's actual direction, so a
	// GenericSwitch flip mid-run is visible in Directions.
	return &Report{Result: res, Stats: res.Stats, Directions: coreTrace(res.Dirs)}, nil
}

func runGCCR(ctx context.Context, w *Workload, cfg *Config) (*Report, error) {
	g := w.Graph()
	opt := gc.Options{Options: cfg.coreOptions(ctx), MaxIters: cfg.MaxIters}
	part := NewPartition(g.N(), cfg.partitions(w))
	if cfg.Probes {
		t, tErr := partitionProfileThreads("gc-cr", cfg, part.P)
		if tErr != nil {
			return nil, tErr
		}
		prof, grp := core.CountingProfile(t)
		res, err := gc.ConflictRemovalProfiled(g, part, opt, prof, nil)
		if err != nil {
			return nil, err
		}
		rep := grp.Report()
		return &Report{Result: res, Stats: res.Stats,
			Directions: uniformTrace(core.Push, res.Stats.Iterations), Counters: &rep}, nil
	}
	res, err := gc.ConflictRemoval(g, part, opt)
	if err != nil {
		return nil, err
	}
	return &Report{Result: res, Stats: res.Stats,
		Directions: uniformTrace(core.Push, res.Stats.Iterations)}, nil
}

// ---- MST ----

func runMST(ctx context.Context, w *Workload, cfg *Config) (*Report, error) {
	g := w.Graph()
	opt := mst.Options{Options: cfg.coreOptions(ctx)}
	// Pulling writes only owned slots, avoiding the O(n²) push-side lock
	// conflicts of §4.7: the Auto default.
	dir := cfg.resolveDir(core.Pull)
	if cfg.Probes {
		prof, grp := core.CountingProfile(cfg.effectiveThreads(g.N()))
		res, err := mst.BoruvkaProfiled(g, opt, dir, prof, nil)
		if err != nil {
			return nil, err
		}
		rep := grp.Report()
		return &Report{Result: res, Stats: res.Stats,
			Directions: uniformTrace(dir, res.Stats.Iterations), Counters: &rep}, nil
	}
	res := mst.Boruvka(g, opt, dir)
	return &Report{Result: res, Stats: res.Stats, Directions: uniformTrace(dir, res.Stats.Iterations)}, nil
}
