package pushpull_test

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"pushpull"
	"pushpull/internal/algo/bc"
	"pushpull/internal/algo/bfs"
	"pushpull/internal/algo/gc"
	"pushpull/internal/algo/mst"
	"pushpull/internal/algo/pr"
	"pushpull/internal/algo/sssp"
	"pushpull/internal/algo/tc"
	"pushpull/internal/core"
	"pushpull/internal/gen"
	"pushpull/internal/graph"
)

func testGraph(t testing.TB) *pushpull.Graph {
	t.Helper()
	g, err := gen.RMAT(gen.DefaultRMAT(10, 8, 7))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func weightedGraph(t testing.TB) *pushpull.Graph {
	t.Helper()
	g, err := gen.RoadGrid(40, 40, 0.9, 3)
	if err != nil {
		t.Fatal(err)
	}
	return gen.WithUniformWeights(g, 1, 10, 4)
}

func run(t testing.TB, on pushpull.Runnable, algo string, opts ...pushpull.Option) *pushpull.Report {
	t.Helper()
	rep, err := pushpull.Run(context.Background(), on, algo, opts...)
	if err != nil {
		t.Fatalf("Run(%s): %v", algo, err)
	}
	return rep
}

// ---- registry ----

func TestLookupUnknown(t *testing.T) {
	if _, err := pushpull.Lookup("no-such-algo"); err == nil {
		t.Fatal("Lookup of unknown algorithm succeeded")
	}
	if _, err := pushpull.Run(context.Background(), testGraph(t), "no-such-algo"); err == nil {
		t.Fatal("Run of unknown algorithm succeeded")
	}
}

func TestBuiltinsRegistered(t *testing.T) {
	names := map[string]bool{}
	for _, n := range pushpull.Algorithms() {
		names[n] = true
	}
	for _, want := range []string{"pr", "bfs", "sssp", "gc", "tc", "bc", "mst"} {
		if !names[want] {
			t.Errorf("builtin %q not registered (have %v)", want, pushpull.Algorithms())
		}
	}
}

type fakeAlgo struct{ name string }

func (f *fakeAlgo) Name() string        { return f.name }
func (f *fakeAlgo) Describe() string    { return "test stub" }
func (f *fakeAlgo) Caps() pushpull.Caps { return pushpull.Caps{} }
func (f *fakeAlgo) Run(context.Context, *pushpull.Workload, *pushpull.Config) (*pushpull.Report, error) {
	return &pushpull.Report{}, nil
}

func TestRegisterErrors(t *testing.T) {
	if err := pushpull.Register(nil); err == nil {
		t.Error("Register(nil) succeeded")
	}
	if err := pushpull.Register(&fakeAlgo{name: ""}); err == nil {
		t.Error("Register with empty name succeeded")
	}
	if err := pushpull.Register(&fakeAlgo{name: "pr"}); err == nil {
		t.Error("duplicate registration of pr succeeded")
	}
	// The registry is process-global with no unregister, so stay
	// idempotent across -count=N reruns in one process.
	if _, err := pushpull.Lookup("test-stub-algo"); err != nil {
		if err := pushpull.Register(&fakeAlgo{name: "test-stub-algo"}); err != nil {
			t.Fatalf("fresh registration failed: %v", err)
		}
	}
	if err := pushpull.Register(&fakeAlgo{name: "test-stub-algo"}); err == nil {
		t.Error("second registration of test-stub-algo succeeded")
	}
}

func TestRunNilGraph(t *testing.T) {
	if _, err := pushpull.Run(context.Background(), nil, "pr"); err == nil {
		t.Fatal("Run on nil graph succeeded")
	}
}

// ---- cross-validation against the direct internal calls ----

func TestFacadePRMatchesDirect(t *testing.T) {
	g := testGraph(t)
	opt := pr.Options{Iterations: 10}
	opt.Threads = 2
	for _, dir := range []pushpull.Direction{pushpull.Push, pushpull.Pull} {
		rep := run(t, g, "pr", pushpull.WithDirection(dir),
			pushpull.WithThreads(2), pushpull.WithIterations(10))
		var want []float64
		if dir == pushpull.Push {
			want, _ = pr.Push(g, opt)
		} else {
			want, _ = pr.Pull(g, opt)
		}
		if d := pr.MaxDiff(rep.Ranks(), want); d > 1e-12 {
			t.Errorf("pr %v: facade diverges from direct call by %g", dir, d)
		}
		if rep.Stats.Iterations != 10 {
			t.Errorf("pr %v: %d iterations, want 10", dir, rep.Stats.Iterations)
		}
		if len(rep.Directions) != 10 {
			t.Errorf("pr %v: direction trace has %d entries, want 10", dir, len(rep.Directions))
		}
	}
}

func TestFacadeTCMatchesDirect(t *testing.T) {
	g := testGraph(t)
	want := tc.Sequential(g)
	for _, dir := range []pushpull.Direction{pushpull.Push, pushpull.Pull, pushpull.Auto} {
		rep := run(t, g, "tc", pushpull.WithDirection(dir), pushpull.WithThreads(3))
		if !tc.Equal(rep.Counts(), want) {
			t.Errorf("tc %v: facade counts diverge from sequential reference", dir)
		}
	}
}

func TestFacadeBFSMatchesDirect(t *testing.T) {
	g := testGraph(t)
	wantTree, _, _ := bfs.TraverseFrom(g, 0, bfs.ForcePush, core.Options{Threads: 2})
	for _, dir := range []pushpull.Direction{pushpull.Push, pushpull.Pull, pushpull.Auto} {
		rep := run(t, g, "bfs", pushpull.WithDirection(dir),
			pushpull.WithThreads(2), pushpull.WithSource(0))
		tree := rep.Tree()
		if tree == nil {
			t.Fatalf("bfs %v: no tree payload", dir)
		}
		for v := range tree.Level {
			if tree.Level[v] != wantTree.Level[v] {
				t.Fatalf("bfs %v: level[%d] = %d, want %d", dir, v, tree.Level[v], wantTree.Level[v])
			}
		}
		if len(rep.Directions) != rep.Stats.Iterations {
			t.Errorf("bfs %v: %d trace entries for %d rounds", dir, len(rep.Directions), rep.Stats.Iterations)
		}
	}
	rep := run(t, g, "bfs", pushpull.WithDirection(pushpull.Pull), pushpull.WithSource(0))
	for i, d := range rep.Directions {
		if d != pushpull.Pull {
			t.Errorf("forced-pull bfs round %d ran %v", i, d)
		}
	}
}

func TestFacadeSSSPMatchesDirect(t *testing.T) {
	g := weightedGraph(t)
	want := sssp.Dijkstra(g, 0)
	for _, dir := range []pushpull.Direction{pushpull.Push, pushpull.Pull, pushpull.Auto} {
		rep := run(t, g, "sssp", pushpull.WithDirection(dir),
			pushpull.WithThreads(2), pushpull.WithSource(0))
		res, ok := rep.Result.(*pushpull.SSSPResult)
		if !ok {
			t.Fatalf("sssp %v: payload is %T", dir, rep.Result)
		}
		if d := sssp.MaxDiff(res.Dist, want); d > 1e-9 {
			t.Errorf("sssp %v: facade diverges from Dijkstra by %g", dir, d)
		}
	}
	// Auto must actually record a per-iteration trace.
	rep := run(t, g, "sssp", pushpull.WithSource(0))
	if len(rep.Directions) == 0 || len(rep.Directions) != rep.Stats.Iterations {
		t.Errorf("adaptive sssp trace: %d entries for %d iterations",
			len(rep.Directions), rep.Stats.Iterations)
	}
}

func TestFacadeGCMatchesDirect(t *testing.T) {
	g := testGraph(t)
	const threads = 3
	part := graph.NewPartition(g.N(), threads)
	for _, dir := range []pushpull.Direction{pushpull.Push, pushpull.Pull} {
		rep := run(t, g, "gc", pushpull.WithDirection(dir), pushpull.WithThreads(threads))
		if err := gc.Validate(g, rep.Colors()); err != nil {
			t.Fatalf("gc %v: invalid coloring: %v", dir, err)
		}
		var want *gc.Result
		var err error
		opt := gc.Options{}
		opt.Threads = threads
		if dir == pushpull.Push {
			want, err = gc.Push(g, part, opt)
		} else {
			want, err = gc.Pull(g, part, opt)
		}
		if err != nil {
			t.Fatal(err)
		}
		if got := rep.Stats.Iterations; got != want.Iterations {
			t.Errorf("gc %v: facade took %d iterations, direct %d", dir, got, want.Iterations)
		}
	}
	// Strategy variants produce valid colorings too.
	for _, tc := range []struct {
		algo string
		opts []pushpull.Option
	}{
		{"gc-fe", nil},
		{"gc-cr", nil},
		{"gc", []pushpull.Option{pushpull.WithSwitchPolicy(&pushpull.GreedySwitch{Fraction: 0.1, Total: g.N()}), pushpull.WithMaxIters(4096)}},
	} {
		rep := run(t, g, tc.algo, append(tc.opts, pushpull.WithThreads(threads))...)
		if err := gc.Validate(g, rep.Colors()); err != nil {
			t.Errorf("%s: invalid coloring: %v", tc.algo, err)
		}
	}
}

func TestFacadeBCMatchesDirect(t *testing.T) {
	g := testGraph(t)
	sources := []pushpull.V{0, 1, 2, 3}
	want := bc.Sequential(g, sources)
	for _, dir := range []pushpull.Direction{pushpull.Push, pushpull.Pull} {
		rep := run(t, g, "bc", pushpull.WithDirection(dir),
			pushpull.WithThreads(2), pushpull.WithSources(sources))
		if d := bc.MaxDiff(rep.Ranks(), want); d > 1e-6 {
			t.Errorf("bc %v: facade diverges from sequential Brandes by %g", dir, d)
		}
	}
}

func TestFacadeMSTMatchesDirect(t *testing.T) {
	g := weightedGraph(t)
	want := mst.Kruskal(g)
	for _, dir := range []pushpull.Direction{pushpull.Push, pushpull.Pull, pushpull.Auto} {
		rep := run(t, g, "mst", pushpull.WithDirection(dir), pushpull.WithThreads(2))
		res, ok := rep.Result.(*pushpull.MSTResult)
		if !ok {
			t.Fatalf("mst %v: payload is %T", dir, rep.Result)
		}
		if !mst.SameTree(res, want) {
			t.Errorf("mst %v: facade tree differs from Kruskal", dir)
		}
	}
}

// ---- options ----

func TestWithProbes(t *testing.T) {
	g := testGraph(t)
	push := run(t, g, "pr", pushpull.WithDirection(pushpull.Push),
		pushpull.WithThreads(2), pushpull.WithIterations(1), pushpull.WithProbes())
	pull := run(t, g, "pr", pushpull.WithDirection(pushpull.Pull),
		pushpull.WithThreads(2), pushpull.WithIterations(1), pushpull.WithProbes())
	if push.Counters == nil || pull.Counters == nil {
		t.Fatal("probed run has no counter report")
	}
	if got := push.Counters.Get(pushpull.Atomics); got == 0 {
		t.Error("push pr issued no atomics")
	}
	if got := pull.Counters.Get(pushpull.Atomics); got != 0 {
		t.Errorf("pull pr issued %d atomics, want 0", got)
	}
	// The probed ranks still match the plain run.
	plain := run(t, g, "pr", pushpull.WithDirection(pushpull.Push),
		pushpull.WithThreads(2), pushpull.WithIterations(1))
	if d := pr.MaxDiff(push.Ranks(), plain.Ranks()); d > 1e-12 {
		t.Errorf("probed ranks diverge from plain run by %g", d)
	}
	// Probed reports still carry the iteration count and trace.
	if push.Stats.Iterations != 1 || len(push.Directions) != 1 {
		t.Errorf("probed pr report: %d iterations, %d trace entries, want 1/1",
			push.Stats.Iterations, len(push.Directions))
	}
	// Every registry algorithm has an instrumented variant now — including
	// mst (which needs a weighted workload) and gc steered by a switch
	// policy (Frontier-Exploit).
	mstRep := run(t, weightedGraph(t), "mst", pushpull.WithProbes(), pushpull.WithThreads(2))
	if mstRep.Counters == nil || mstRep.Counters.Get(pushpull.Reads) == 0 {
		t.Error("probed mst returned no counters")
	}
	feRep := run(t, g, "gc", pushpull.WithProbes(), pushpull.WithMaxIters(4096),
		pushpull.WithSwitchPolicy(&pushpull.GenericSwitch{Threshold: 1}))
	if feRep.Counters == nil || feRep.Counters.Get(pushpull.Reads) == 0 {
		t.Error("probed gc+switch-policy returned no counters")
	}
}

func TestBadSources(t *testing.T) {
	g := testGraph(t)
	n := pushpull.V(g.N())
	// The NeedsSource capability gate range-checks sources uniformly and
	// returns the typed ErrBadSource.
	if _, err := pushpull.Run(context.Background(), g, "bc",
		pushpull.WithSources([]pushpull.V{n})); !errors.Is(err, pushpull.ErrBadSource) {
		t.Errorf("bc out-of-range source: err = %v, want ErrBadSource", err)
	}
	if _, err := pushpull.Run(context.Background(), g, "bfs",
		pushpull.WithSource(n)); !errors.Is(err, pushpull.ErrBadSource) {
		t.Errorf("bfs out-of-range source: err = %v, want ErrBadSource", err)
	}
	// Weighted graph: the weights gate fires before the source check, so
	// an unweighted one would pass vacuously here.
	wg := weightedGraph(t)
	if _, err := pushpull.Run(context.Background(), wg, "sssp",
		pushpull.WithSource(pushpull.V(wg.N()))); !errors.Is(err, pushpull.ErrBadSource) {
		t.Errorf("sssp out-of-range source: err = %v, want ErrBadSource", err)
	}
}

func TestWithDampingZero(t *testing.T) {
	g := testGraph(t)
	def := run(t, g, "pr", pushpull.WithIterations(5))
	zero := run(t, g, "pr", pushpull.WithIterations(5), pushpull.WithDamping(0))
	// Zero damping collapses every rank to 1/n: the uniform teleport
	// distribution — previously inexpressible through Options.Damping.
	n := float64(g.N())
	for v, r := range zero.Ranks() {
		if math.Abs(r-1/n) > 1e-15 {
			t.Fatalf("zero-damping rank[%d] = %g, want %g", v, r, 1/n)
		}
	}
	if d := pr.MaxDiff(def.Ranks(), zero.Ranks()); d == 0 {
		t.Error("WithDamping(0) behaved like the default damping")
	}
}

func TestSwitchPolicyReusable(t *testing.T) {
	g := testGraph(t)
	// GenericSwitch latches after its one flip; the facade must hand the
	// algorithm a fresh instance per run so callers can reuse the value.
	policy := &pushpull.GenericSwitch{Threshold: 1.0}
	a := run(t, g, "gc", pushpull.WithSwitchPolicy(policy), pushpull.WithMaxIters(4096))
	b := run(t, g, "gc", pushpull.WithSwitchPolicy(policy), pushpull.WithMaxIters(4096))
	if a.Stats.Iterations != b.Stats.Iterations {
		t.Errorf("reused GenericSwitch changed behavior: %d vs %d iterations",
			a.Stats.Iterations, b.Stats.Iterations)
	}
}

func TestPartitionAwareOptions(t *testing.T) {
	g := testGraph(t)
	pa := pushpull.BuildPA(g, pushpull.NewPartition(g.N(), 3))
	prebuilt := run(t, g, "pr", pushpull.WithPartitionAwareGraph(pa),
		pushpull.WithThreads(3), pushpull.WithIterations(5))
	built := run(t, g, "pr", pushpull.WithDirection(pushpull.Push),
		pushpull.WithPartitionAwareness(), pushpull.WithPartitions(3),
		pushpull.WithThreads(3), pushpull.WithIterations(5))
	if d := pr.MaxDiff(prebuilt.Ranks(), built.Ranks()); d > 1e-12 {
		t.Errorf("prebuilt-PA ranks diverge from facade-built PA by %g", d)
	}
	if dirFromTrace := prebuilt.Directions[0]; dirFromTrace != pushpull.Push {
		t.Errorf("PA run traced %v, want push (PA implies pushing)", dirFromTrace)
	}
	// PA contradicts an explicit pull direction.
	for _, algo := range []string{"pr", "tc"} {
		if _, err := pushpull.Run(context.Background(), g, algo,
			pushpull.WithPartitionAwareness(), pushpull.WithDirection(pushpull.Pull)); err == nil {
			t.Errorf("%s accepted WithPartitionAwareness + WithDirection(Pull)", algo)
		}
	}
}

func TestIterationHook(t *testing.T) {
	g := testGraph(t)
	var ticks int
	run(t, g, "pr", pushpull.WithIterations(7),
		pushpull.WithIterationHook(func(int, time.Duration) { ticks++ }))
	if ticks != 7 {
		t.Errorf("hook fired %d times, want 7", ticks)
	}
}

// ---- cancellation ----

func TestCancelMidRun(t *testing.T) {
	g := testGraph(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const total = 100000
	start := time.Now()
	rep, err := pushpull.Run(ctx, g, "pr",
		pushpull.WithIterations(total),
		pushpull.WithIterationHook(func(iter int, _ time.Duration) {
			if iter == 2 {
				cancel()
			}
		}))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if rep == nil {
		t.Fatal("cancelled run returned no partial report")
	}
	if !rep.Stats.Canceled {
		t.Error("partial report does not mark Canceled")
	}
	if rep.Stats.Iterations >= total {
		t.Errorf("run completed all %d iterations despite cancel", total)
	}
	if rep.Stats.Iterations < 3 {
		t.Errorf("run recorded %d iterations, want ≥ 3 before the cancel took", rep.Stats.Iterations)
	}
	if rep.Ranks() == nil {
		t.Error("partial report has no payload")
	}
	if elapsed > 30*time.Second {
		t.Errorf("cancelled run took %v — not prompt", elapsed)
	}
}

func TestCancelBeforeRun(t *testing.T) {
	g := testGraph(t)
	// sssp and mst declare NeedsWeights, so they get a weighted workload —
	// the capability gate fires before ctx is even consulted.
	wg := weightedGraph(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, algo := range []string{"pr", "tc", "bfs", "sssp", "gc", "gc-fe", "gc-cr", "bc", "mst"} {
		in := g
		if algo == "sssp" || algo == "mst" {
			in = wg
		}
		opts := []pushpull.Option{pushpull.WithSource(0)}
		rep, err := pushpull.Run(ctx, in, algo, opts...)
		if err == nil {
			t.Errorf("%s: pre-cancelled run returned nil error", algo)
		}
		if rep == nil {
			t.Errorf("%s: pre-cancelled run returned no report", algo)
			continue
		}
		if !rep.Stats.Canceled {
			t.Errorf("%s: pre-cancelled report does not mark Canceled", algo)
		}
		// Single-pass algorithms (tc, bc) still record one cancelled pass;
		// everything else must stop before its first iteration.
		if got := rep.Stats.Iterations; got > 1 {
			t.Errorf("%s: pre-cancelled run still did %d iterations", algo, got)
		}
	}
}
