package cluster

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Health tracks worker liveness: a background loop probes every worker's
// GET /healthz with a timeout and marks it up or down. The router
// consults it to order routing candidates (alive replicas first) and to
// pick replica sets for new uploads; the transition counter feeds
// /stats.
type Health struct {
	workers []string
	client  *http.Client
	timeout time.Duration

	mu sync.RWMutex
	up map[string]bool

	transitions atomic.Uint64

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewHealth builds a checker over the worker base URLs. Every worker
// starts optimistically up, so requests flow before the first probe
// completes; call Check for a synchronous first pass.
func NewHealth(workers []string, client *http.Client, timeout time.Duration) *Health {
	if timeout <= 0 {
		timeout = time.Second
	}
	up := make(map[string]bool, len(workers))
	for _, w := range workers {
		up[w] = true
	}
	return &Health{
		workers: workers,
		client:  client,
		timeout: timeout,
		up:      up,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// Check probes every worker once, concurrently, and updates the up/down
// map.
func (h *Health) Check(ctx context.Context) {
	var wg sync.WaitGroup
	results := make([]bool, len(h.workers))
	for i, w := range h.workers {
		wg.Add(1)
		go func(i int, w string) {
			defer wg.Done()
			results[i] = h.probe(ctx, w)
		}(i, w)
	}
	wg.Wait()
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, w := range h.workers {
		if h.up[w] != results[i] {
			h.transitions.Add(1)
			h.up[w] = results[i]
		}
	}
}

func (h *Health) probe(ctx context.Context, worker string) bool {
	ctx, cancel := context.WithTimeout(ctx, h.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, worker+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// Start launches the background probe loop at the given interval;
// interval ≤ 0 disables it (Check can still be called manually). Stop
// terminates the loop.
func (h *Health) Start(interval time.Duration) {
	if interval <= 0 {
		close(h.done)
		return
	}
	go func() {
		defer close(h.done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-h.stop:
				return
			case <-ticker.C:
				h.Check(context.Background())
			}
		}
	}()
}

// Stop terminates the background loop and waits for it to exit.
func (h *Health) Stop() {
	h.stopOnce.Do(func() { close(h.stop) })
	<-h.done
}

// IsUp reports the last probed state of one worker (unknown workers are
// down).
func (h *Health) IsUp(worker string) bool {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.up[worker]
}

// Up lists the workers currently marked up, in configuration order.
func (h *Health) Up() []string {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]string, 0, len(h.workers))
	for _, w := range h.workers {
		if h.up[w] {
			out = append(out, w)
		}
	}
	return out
}

// Transitions counts up↔down flips observed since start.
func (h *Health) Transitions() uint64 { return h.transitions.Load() }

// MarkDown forces a worker down immediately (the router calls it when a
// request-path connection error beats the next health probe to the
// verdict).
func (h *Health) MarkDown(worker string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.up[worker] {
		h.transitions.Add(1)
		h.up[worker] = false
	}
}
