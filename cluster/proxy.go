package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"

	"pushpull/serve"
)

// workerResponse is one proxied worker reply: the status, the full body,
// and the headers the router may relay.
type workerResponse struct {
	status int
	body   []byte
	header http.Header
}

// ok reports a 2xx status.
func (r *workerResponse) ok() bool { return r.status >= 200 && r.status < 300 }

// proxy is the router's client for one worker fleet: it shapes the
// worker-facing requests (replication epochs, content types) and reads
// replies whole, so the router's handlers deal in values, not streams.
type proxy struct {
	client *http.Client
}

// do issues one request and slurps the reply. A non-nil error means the
// worker was unreachable (connection refused/reset, timeout) — the
// failover signal — while HTTP-level failures come back as statuses.
func (p *proxy) do(ctx context.Context, method, url string, body []byte, epoch uint64) (*workerResponse, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return nil, fmt.Errorf("cluster: building %s %s: %w", method, url, err)
	}
	if epoch > 0 {
		req.Header.Set(serve.EpochHeader, strconv.FormatUint(epoch, 10))
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/octet-stream")
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("cluster: reading %s %s reply: %w", method, url, err)
	}
	return &workerResponse{status: resp.StatusCode, body: b, header: resp.Header}, nil
}

// putGraph replicates an upload to one worker.
func (p *proxy) putGraph(ctx context.Context, worker, name string, body []byte, epoch uint64) (*workerResponse, error) {
	return p.do(ctx, http.MethodPut, worker+"/graphs/"+pathEscape(name), body, epoch)
}

// deleteGraph propagates a delete (or a placement-change cleanup) to one
// worker.
func (p *proxy) deleteGraph(ctx context.Context, worker, name string, epoch uint64) (*workerResponse, error) {
	return p.do(ctx, http.MethodDelete, worker+"/graphs/"+pathEscape(name), nil, epoch)
}

// run forwards a POST /run body to one worker.
func (p *proxy) run(ctx context.Context, worker string, body []byte) (*workerResponse, error) {
	return p.do(ctx, http.MethodPost, worker+"/run", body, 0)
}

// submitJobs forwards a POST /jobs body (single spec or batch) to one
// worker.
func (p *proxy) submitJobs(ctx context.Context, worker string, body []byte) (*workerResponse, error) {
	return p.do(ctx, http.MethodPost, worker+"/jobs", body, 0)
}

// jobStatus fetches one job's status view from the worker holding it.
func (p *proxy) jobStatus(ctx context.Context, worker, id string) (*workerResponse, error) {
	return p.do(ctx, http.MethodGet, worker+"/jobs/"+pathEscape(id), nil, 0)
}

// jobResult fetches one job's stored run result.
func (p *proxy) jobResult(ctx context.Context, worker, id string) (*workerResponse, error) {
	return p.do(ctx, http.MethodGet, worker+"/jobs/"+pathEscape(id)+"/result", nil, 0)
}

// cancelJob propagates a DELETE /jobs/{id} to the worker holding it.
func (p *proxy) cancelJob(ctx context.Context, worker, id string) (*workerResponse, error) {
	return p.do(ctx, http.MethodDelete, worker+"/jobs/"+pathEscape(id), nil, 0)
}

// listJobs fetches one worker's job list; query carries the caller's
// filter string ("" or "?state=...&batch=...").
func (p *proxy) listJobs(ctx context.Context, worker, query string) (*workerResponse, error) {
	return p.do(ctx, http.MethodGet, worker+"/jobs"+query, nil, 0)
}

// stats fetches one worker's GET /stats body.
func (p *proxy) stats(ctx context.Context, worker string) (*workerResponse, error) {
	return p.do(ctx, http.MethodGet, worker+"/stats", nil, 0)
}

// pathEscape keeps hostile graph names (slashes, dots, percent escapes)
// one opaque path segment on the worker side, mirroring what the
// worker's own mux decodes via PathValue.
func pathEscape(name string) string { return url.PathEscape(name) }
