package cluster

// The async half of the router: /jobs endpoints over the worker fleet.
// Submission routes like a run — to the primary replica of the job's
// graph, with the same retry/backoff/failover loop — but the accepted
// job then LIVES on the worker that took it (job records are not
// replicated), so the router records a job→worker affinity in the
// catalog and pins every later status/result/cancel poll to it. A batch
// must land whole on one worker (one batch ID, one queue): only workers
// replicating every graph the batch touches are candidates, and a batch
// spanning disjoint replica sets is refused with 409 — split the batch.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"pushpull"
	"pushpull/jobs"
	"pushpull/serve"
)

func (rt *Router) submitJobs(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var req serve.JobRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parsing job request: %w", err))
		return
	}
	batch := len(req.Batch) > 0
	specs := req.Batch
	if batch {
		if req.Graph != "" || req.Algorithm != "" {
			writeError(w, http.StatusBadRequest,
				errors.New(`a job request is either one inline spec or a "batch", not both`))
			return
		}
	} else {
		specs = []jobs.Spec{req.Spec}
	}

	// Validate names router-side, like run(): the registry is shared, the
	// catalog is authoritative for graphs, and settling both here keeps a
	// worker-side 404 an unambiguous failover signal.
	graphs := make([]string, 0, len(specs))
	for i := range specs {
		spec := &specs[i]
		if spec.Graph == "" || spec.Algorithm == "" {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf(`job spec %d: "graph" and "algorithm" are required`, i))
			return
		}
		if _, err := pushpull.Lookup(spec.Algorithm); err != nil {
			writeError(w, http.StatusNotFound, fmt.Errorf("job spec %d: %w", i, err))
			return
		}
		pl, ok := rt.catalog.Get(spec.Graph)
		if !ok {
			writeError(w, http.StatusNotFound,
				fmt.Errorf("job spec %d: unknown graph %q (catalog: %v)", i, spec.Graph, rt.catalogNames()))
			return
		}
		graphs = append(graphs, spec.Graph)
		// Forced cost-model advice rewrites auto directions exactly as on
		// the synchronous path.
		if advice := pl.Advice[spec.Algorithm]; advice != "" && rt.cfg.Advisor == AdvisorForce &&
			(spec.Options.Direction == "" || spec.Options.Direction == "auto") {
			spec.Options.Direction = advice
		}
	}
	if !batch {
		req.Spec = specs[0]
	}

	candidates, status, err := rt.jobTargets(graphs)
	if err != nil {
		writeError(w, status, err)
		return
	}
	body, err := json.Marshal(req)
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("re-encoding job request: %w", err))
		return
	}

	resp, wkr, err := rt.tryReplicas(r.Context(), candidates[0], upFirst(candidates, rt.health),
		func(wkr string) (*workerResponse, error) {
			return rt.proxy.submitJobs(r.Context(), wkr, body)
		})
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			writeError(w, http.StatusGatewayTimeout, err)
			return
		}
		writeError(w, http.StatusBadGateway, fmt.Errorf("job submission: %w", err))
		return
	}
	if resp.status == http.StatusAccepted {
		rt.recordAffinity(resp.body, batch, wkr)
	}
	rt.relay(w, resp, wkr)
}

// jobTargets computes the submission candidates for a job touching the
// named graphs: the workers replicating every one of them, in the first
// graph's placement order (so candidates[0] is that graph's primary). A
// batch spanning graphs with no common replica cannot run under one
// batch ID — 409.
func (rt *Router) jobTargets(graphs []string) ([]string, int, error) {
	pl, ok := rt.catalog.Get(graphs[0])
	if !ok {
		return nil, http.StatusNotFound, fmt.Errorf("unknown graph %q", graphs[0])
	}
	common := append([]string(nil), pl.Replicas...)
	for _, g := range graphs[1:] {
		if g == graphs[0] {
			continue
		}
		pl, ok := rt.catalog.Get(g)
		if !ok {
			return nil, http.StatusNotFound, fmt.Errorf("unknown graph %q", g)
		}
		holds := make(map[string]bool, len(pl.Replicas))
		for _, w := range pl.Replicas {
			holds[w] = true
		}
		kept := common[:0]
		for _, w := range common {
			if holds[w] {
				kept = append(kept, w)
			}
		}
		common = kept
	}
	if len(common) == 0 {
		return nil, http.StatusConflict,
			fmt.Errorf("no worker replicates all %d graphs of the batch — split the batch along replica sets", len(graphs))
	}
	return common, 0, nil
}

// recordAffinity parses an accepted submission reply and pins every
// returned job ID (and the batch ID) to the worker that took it. Best
// effort: an unparsable body is the client's problem to surface, not a
// reason to fail a submission the worker already accepted.
func (rt *Router) recordAffinity(body []byte, batch bool, wkr string) {
	if batch {
		var br serve.BatchResponse
		if json.Unmarshal(body, &br) != nil {
			return
		}
		if br.BatchID != "" {
			rt.catalog.SetJob(br.BatchID, wkr)
		}
		for _, j := range br.Jobs {
			if j != nil && j.ID != "" {
				rt.catalog.SetJob(j.ID, wkr)
			}
		}
		return
	}
	var j jobs.Job
	if json.Unmarshal(body, &j) == nil && j.ID != "" {
		rt.catalog.SetJob(j.ID, wkr)
	}
}

// jobStatus, jobResult and cancelJob pin to the affinity worker: job
// records live on exactly one worker, so failover would turn a live job
// into a phantom 404. A dead affinity worker is a truthful 502.
func (rt *Router) jobStatus(w http.ResponseWriter, r *http.Request) {
	rt.jobProxy(w, r, rt.proxy.jobStatus)
}

func (rt *Router) jobResult(w http.ResponseWriter, r *http.Request) {
	rt.jobProxy(w, r, rt.proxy.jobResult)
}

func (rt *Router) cancelJob(w http.ResponseWriter, r *http.Request) {
	rt.jobProxy(w, r, rt.proxy.cancelJob)
}

func (rt *Router) jobProxy(w http.ResponseWriter, r *http.Request,
	call func(ctx context.Context, worker, id string) (*workerResponse, error)) {
	id := r.PathValue("id")
	wkr, ok := rt.catalog.JobWorker(id)
	if !ok {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("unknown job %q (not submitted through this router)", id))
		return
	}
	resp, err := call(r.Context(), wkr, id)
	if err != nil {
		rt.health.MarkDown(wkr)
		writeError(w, http.StatusBadGateway,
			fmt.Errorf("worker %s holding job %q is unreachable: %v", wkr, id, err))
		return
	}
	rt.relay(w, resp, wkr)
}

// listJobs fans GET /jobs out to every up worker and merges the lists
// (status views only — results never ride a listing), sorted by
// submission time. Filters (?state=, ?batch=) pass through verbatim;
// the state filter is validated here so a typo 400s instead of quietly
// merging nothing.
func (rt *Router) listJobs(w http.ResponseWriter, r *http.Request) {
	if s := r.URL.Query().Get("state"); s != "" {
		switch jobs.State(s) {
		case jobs.StateQueued, jobs.StateRunning, jobs.StateDone,
			jobs.StateFailed, jobs.StateCanceled, jobs.StateInterrupted:
		default:
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad state filter %q", s))
			return
		}
	}
	query := ""
	if r.URL.RawQuery != "" {
		query = "?" + r.URL.RawQuery
	}
	up := rt.health.Up()
	ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
	defer cancel()
	lists := make([][]*jobs.Job, len(up))
	var wg sync.WaitGroup
	for i, wkr := range up {
		wg.Add(1)
		go func(i int, wkr string) {
			defer wg.Done()
			// Best effort, like the stats fan-out: a worker that errors
			// (or predates the jobs API) contributes nothing.
			if resp, err := rt.proxy.listJobs(ctx, wkr, query); err == nil && resp.ok() {
				json.Unmarshal(resp.body, &lists[i])
			}
		}(i, wkr)
	}
	wg.Wait()
	merged := []*jobs.Job{}
	for _, l := range lists {
		merged = append(merged, l...)
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].SubmittedMS != merged[j].SubmittedMS {
			return merged[i].SubmittedMS < merged[j].SubmittedMS
		}
		return merged[i].ID < merged[j].ID
	})
	writeJSON(w, http.StatusOK, merged)
}
