package cluster

import (
	"sort"
	"sync"
)

// Placement is one catalog entry: where a named graph lives and what the
// router knows about it. Replicas holds the workers that acknowledged
// the upload, primary first (rendezvous order); Epoch is the router-wide
// monotone mutation counter stamped on every replicated PUT/DELETE, the
// fence the workers' EpochHeader guard checks.
type Placement struct {
	Name      string   `json:"name"`
	ContentID string   `json:"id"`
	N         int      `json:"n"`
	M         int64    `json:"m"`
	Kind      string   `json:"kind"`
	Replicas  []string `json:"replicas"`
	Epoch     uint64   `json:"epoch"`
	// Advice maps algorithm → "push"/"pull", the CostModel's verdict from
	// the §6.3 remote-op bills; empty when the advisor is off.
	Advice map[string]string `json:"advice,omitempty"`
}

// Catalog is the router-side placement table: graph name → Placement,
// plus the epoch counter. It is the router's authoritative view — a
// graph the catalog does not list 404s at the router without touching a
// worker, and routing order is the recorded replica list.
type Catalog struct {
	mu    sync.RWMutex
	m     map[string]Placement
	epoch uint64
	// jobs is the async-tier affinity table: job (or batch) ID → the
	// worker that accepted the submission. Job state lives on exactly one
	// worker — there is no replication of job records — so status/result
	// polls must pin to it; failover would invent a 404 for a live job.
	jobs map[string]string
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{m: map[string]Placement{}, jobs: map[string]string{}}
}

// NextEpoch allocates the next mutation epoch (starting at 1).
func (c *Catalog) NextEpoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.epoch++
	return c.epoch
}

// Get returns the placement recorded for name.
func (c *Catalog) Get(name string) (Placement, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	p, ok := c.m[name]
	return p, ok
}

// Set records (or replaces) a placement.
func (c *Catalog) Set(p Placement) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[p.Name] = p
}

// Delete removes name's placement, returning what was recorded.
func (c *Catalog) Delete(name string) (Placement, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.m[name]
	delete(c.m, name)
	return p, ok
}

// List snapshots every placement, sorted by name.
func (c *Catalog) List() []Placement {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]Placement, 0, len(c.m))
	for _, p := range c.m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SetJob records which worker accepted a job (or batch) submission, the
// affinity every later status/result/cancel poll for that ID pins to.
func (c *Catalog) SetJob(id, worker string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.jobs[id] = worker
}

// JobWorker looks up the worker holding a submitted job or batch.
func (c *Catalog) JobWorker(id string) (string, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	w, ok := c.jobs[id]
	return w, ok
}

// JobsLen counts tracked job/batch affinities.
func (c *Catalog) JobsLen() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.jobs)
}

// Len counts recorded placements.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}
