// Package cluster is the distributed serving tier over pushpull/serve:
// a router process that speaks the same HTTP API as a worker but fans
// requests out over a fleet of `pushpull serve` base URLs.
//
// The design lifts the engine's in-process sharding (PR 5) one level up,
// the same way the paper's §6 lifts the push/pull dichotomy from shared
// memory to a cluster: placement stays deterministic content-identity
// hashing (the shared pushpull.PlacementHash), but across processes it
// becomes rendezvous (highest-random-weight) placement so losing a
// worker only remaps the graphs that lived on it; uploads replicate to R
// workers; runs route to the primary replica with retry, exponential
// backoff and failover to secondaries; and mutations fan out with a
// monotone epoch so no replica can serve a stale graph. A CostModel hook
// consults the §6.3 dist-* simulations — the paper's remote-op bills —
// to advise push vs pull per placed graph.
package cluster

import (
	"sort"

	"pushpull"
)

// Placer decides which workers own a graph: rendezvous (HRW) hashing
// over pushpull.PlacementHash. Every (key, worker) pair gets a score and
// a key's replicas are the R highest-scoring workers. Unlike the modulo
// placement the Engine uses for its fixed in-process shard set,
// rendezvous placement is stable under membership change: removing a
// worker only remaps the keys that ranked it, and every other key's
// worker order is untouched — exactly the property a fleet with failures
// needs.
type Placer struct {
	replicas int
}

// NewPlacer returns a Placer targeting r replicas per graph (min 1).
func NewPlacer(r int) *Placer {
	if r < 1 {
		r = 1
	}
	return &Placer{replicas: r}
}

// Replicas returns the configured replication factor.
func (p *Placer) Replicas() int { return p.replicas }

// Rank orders workers by descending rendezvous score for key, breaking
// score ties by worker name so the order is total and deterministic.
func (p *Placer) Rank(key string, workers []string) []string {
	type scored struct {
		worker string
		score  uint64
	}
	ranked := make([]scored, len(workers))
	for i, w := range workers {
		ranked[i] = scored{w, pushpull.PlacementHash(key + "\x00" + w)}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		return ranked[i].worker < ranked[j].worker
	})
	out := make([]string, len(ranked))
	for i, s := range ranked {
		out[i] = s.worker
	}
	return out
}

// Place returns key's replica set: the top-R workers by rendezvous rank,
// primary first. Fewer than R workers place on all of them.
func (p *Placer) Place(key string, workers []string) []string {
	ranked := p.Rank(key, workers)
	if len(ranked) > p.replicas {
		ranked = ranked[:p.replicas]
	}
	return ranked
}
