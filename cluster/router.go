package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pushpull"
	"pushpull/serve"
)

// Advisor modes: what the router does with the CostModel's per-graph
// push/pull verdict.
const (
	// AdvisorOff disables the cost model entirely.
	AdvisorOff = "off"
	// AdvisorAnnotate computes advice at upload time and annotates routed
	// runs with X-Cluster-Direction-Advice, leaving the direction choice
	// to the client (and the worker's Auto heuristics).
	AdvisorAnnotate = "annotate"
	// AdvisorForce additionally rewrites the direction of routed runs
	// that left it on auto to the advised one.
	AdvisorForce = "force"
)

// AdviceHeader carries the CostModel's verdict on routed run responses.
const AdviceHeader = "X-Cluster-Direction-Advice"

// WorkerHeader names the worker that served a routed run.
const WorkerHeader = "X-Cluster-Worker"

// Config configures a Router.
type Config struct {
	// Workers are the fleet's base URLs (e.g. http://10.0.0.1:8080).
	Workers []string
	// Replicas is the replication factor R for uploads (default 2,
	// capped by the fleet size at placement time).
	Replicas int
	// Retries bounds the extra attempts after a routed run's first
	// (default 3); attempts rotate through the graph's replicas.
	Retries int
	// RetryBase is the first retry's backoff (default 50ms); it doubles
	// per attempt, capped at RetryMax (default 1s).
	RetryBase time.Duration
	RetryMax  time.Duration
	// HealthInterval is the background health-probe period (default 2s;
	// < 0 disables the loop). HealthTimeout bounds each probe (default
	// 1s).
	HealthInterval time.Duration
	HealthTimeout  time.Duration
	// MutateTimeout bounds one replicated mutation's whole fan-out
	// (default 30s). Mutations serialize on the router's mutation lock,
	// so without a bound a single hung worker would stall every later
	// PUT/DELETE behind it indefinitely.
	MutateTimeout time.Duration
	// Advisor is the CostModel mode: AdvisorOff (default), AdvisorAnnotate
	// or AdvisorForce. AdvisorRanks sets the simulated cluster size of
	// the §6.3 bills (0: the worker count).
	Advisor      string
	AdvisorRanks int
	// MaxUpload bounds PUT /graphs bodies (default serve.MaxGraphBytes).
	MaxUpload int64
	// Client issues every worker-facing request (default: a plain
	// http.Client; per-request deadlines come from the incoming request
	// context and the health timeout).
	Client *http.Client
}

// Router is the cluster front: an http.Handler speaking the same API as
// a pushpull/serve worker, backed by a fleet of them. Uploads replicate
// to R workers by rendezvous placement on the graph's content ID; runs
// route to the primary replica with retry, exponential backoff and
// failover to secondaries on connection errors, 5xx, worker-side 404
// (a worker that lost its state) and 429 (an overloaded shard shedding
// load); re-PUT and DELETE fan out with monotone epochs so no replica
// serves stale results.
type Router struct {
	cfg     Config
	placer  *Placer
	catalog *Catalog
	health  *Health
	proxy   *proxy
	cost    *CostModel
	mux     *http.ServeMux

	// mutMu serializes replicated mutations (PUT/DELETE fan-outs), so
	// two mutations of one name cannot interleave their worker writes;
	// the per-worker epoch guard would catch the inversion, but the
	// catalog must agree with what the fleet converged on.
	mutMu sync.Mutex

	routed, retried, failedOver atomic.Uint64
	failed, degraded            atomic.Uint64
	replicasCapped              atomic.Uint64
}

// New builds a Router over cfg.Workers. Call Start to begin health
// probing and Close to stop it.
func New(cfg Config) (*Router, error) {
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("cluster: no workers configured")
	}
	workers := make([]string, 0, len(cfg.Workers))
	seen := map[string]bool{}
	for _, w := range cfg.Workers {
		w = strings.TrimRight(strings.TrimSpace(w), "/")
		if w == "" {
			continue
		}
		if !strings.HasPrefix(w, "http://") && !strings.HasPrefix(w, "https://") {
			return nil, fmt.Errorf("cluster: worker %q is not an http(s) base URL", w)
		}
		if seen[w] {
			return nil, fmt.Errorf("cluster: duplicate worker %q", w)
		}
		seen[w] = true
		workers = append(workers, w)
	}
	if len(workers) == 0 {
		return nil, fmt.Errorf("cluster: no workers configured")
	}
	cfg.Workers = workers
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	} else if cfg.Retries == 0 {
		cfg.Retries = 3
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 50 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = time.Second
	}
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = 2 * time.Second
	}
	if cfg.HealthTimeout <= 0 {
		cfg.HealthTimeout = time.Second
	}
	if cfg.MutateTimeout <= 0 {
		cfg.MutateTimeout = 30 * time.Second
	}
	if cfg.MaxUpload <= 0 {
		cfg.MaxUpload = serve.MaxGraphBytes
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	switch cfg.Advisor {
	case "", AdvisorOff:
		cfg.Advisor = AdvisorOff
	case AdvisorAnnotate, AdvisorForce:
	default:
		return nil, fmt.Errorf("cluster: bad advisor mode %q (off, annotate, force)", cfg.Advisor)
	}

	rt := &Router{
		cfg:     cfg,
		placer:  NewPlacer(cfg.Replicas),
		catalog: NewCatalog(),
		health:  NewHealth(cfg.Workers, cfg.Client, cfg.HealthTimeout),
		proxy:   &proxy{client: cfg.Client},
		mux:     http.NewServeMux(),
	}
	if cfg.Advisor != AdvisorOff {
		ranks := cfg.AdvisorRanks
		if ranks <= 0 {
			ranks = len(cfg.Workers)
		}
		rt.cost = &CostModel{Ranks: ranks}
	}
	rt.mux.HandleFunc("GET /healthz", rt.healthz)
	rt.mux.HandleFunc("GET /algorithms", rt.algorithms)
	rt.mux.HandleFunc("GET /graphs", rt.graphs)
	rt.mux.HandleFunc("PUT /graphs/{name}", rt.putGraph)
	rt.mux.HandleFunc("DELETE /graphs/{name}", rt.deleteGraph)
	rt.mux.HandleFunc("POST /run", rt.run)
	rt.mux.HandleFunc("POST /jobs", rt.submitJobs)
	rt.mux.HandleFunc("GET /jobs", rt.listJobs)
	rt.mux.HandleFunc("GET /jobs/{id}", rt.jobStatus)
	rt.mux.HandleFunc("GET /jobs/{id}/result", rt.jobResult)
	rt.mux.HandleFunc("DELETE /jobs/{id}", rt.cancelJob)
	rt.mux.HandleFunc("GET /stats", rt.stats)
	return rt, nil
}

// Start probes the fleet once synchronously, then launches the
// background health loop.
func (rt *Router) Start(ctx context.Context) {
	rt.health.Check(ctx)
	rt.health.Start(rt.cfg.HealthInterval)
}

// Close stops the health loop.
func (rt *Router) Close() { rt.health.Stop() }

// Catalog exposes the router's placement table (read-mostly; used by
// tests and operational tooling).
func (rt *Router) Catalog() *Catalog { return rt.catalog }

// Health exposes the fleet liveness tracker.
func (rt *Router) Health() *Health { return rt.health }

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

// ---- handlers ----

func (rt *Router) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"role":       "router",
		"workers":    len(rt.cfg.Workers),
		"workers_up": len(rt.health.Up()),
	})
}

// algorithms serves the registry locally: router and workers are the
// same binary, so the catalog of runnable algorithms is identical and
// answering here keeps the endpoint alive when the whole fleet is down.
func (rt *Router) algorithms(w http.ResponseWriter, r *http.Request) {
	names := pushpull.Algorithms()
	out := make([]serve.AlgorithmInfo, 0, len(names))
	for _, n := range names {
		a, err := pushpull.Lookup(n)
		if err != nil {
			continue
		}
		out = append(out, serve.AlgorithmInfo{Name: n, Description: a.Describe(), Caps: a.Caps().String()})
	}
	writeJSON(w, http.StatusOK, out)
}

func (rt *Router) graphs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, rt.catalog.List())
}

func (rt *Router) putGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxUpload))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("upload exceeds the router's %d-byte graph limit", rt.cfg.MaxUpload))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading upload: %w", err))
		return
	}
	wl, err := pushpull.ReadWorkload(bytes.NewReader(body))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parsing edge list: %w", err))
		return
	}
	id := wl.ID()
	var advice map[string]string
	if rt.cost != nil {
		advice = rt.cost.Advise(r.Context(), wl)
	}

	// The fan-out below runs under the mutation lock by design (the
	// catalog must agree with what the fleet converged on), so bound its
	// duration: one hung worker must not stall every later mutation.
	ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.MutateTimeout)
	defer cancel()

	rt.mutMu.Lock()
	defer rt.mutMu.Unlock()
	up := rt.health.Up()
	if len(up) == 0 {
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("no workers up (fleet of %d)", len(rt.cfg.Workers)))
		return
	}
	// Placement hashes the content ID — the same identity the workers'
	// result caches and the engine's in-process shards key on — so a
	// graph's replica set survives router restarts and renames.
	replicas := rt.placer.Place(id, up)
	if len(replicas) < rt.cfg.Replicas {
		// Fewer live workers than the requested replication factor: the
		// upload still lands, but under-replicated. Surfaced in /stats
		// (replicas_capped) and warned about at boot by `pushpull route`.
		rt.replicasCapped.Add(1)
	}
	epoch := rt.catalog.NextEpoch()

	//pushpull:allow lockheld mutation fan-outs serialize on mutMu by design; bounded by MutateTimeout
	acks := rt.fanPut(ctx, replicas, name, body, epoch)
	acked := make([]string, 0, len(replicas))
	var firstErr error
	for i, wkr := range replicas {
		if acks[i] == nil {
			acked = append(acked, wkr)
		} else if firstErr == nil {
			firstErr = acks[i]
		}
	}
	if len(acked) == 0 {
		rt.failed.Add(1)
		writeError(w, http.StatusBadGateway, fmt.Errorf("upload reached no replica: %v", firstErr))
		return
	}
	if len(acked) < len(replicas) {
		rt.degraded.Add(1)
	}

	// Placement moved (different content hashes elsewhere, or workers
	// died): ex-replicas must not keep serving the old content. The
	// epoch fences a racing stale write; a down ex-replica is left to
	// the next mutation (no anti-entropy in this tier yet).
	if old, had := rt.catalog.Get(name); had {
		inNew := map[string]bool{}
		for _, wkr := range acked {
			inNew[wkr] = true
		}
		for _, wkr := range old.Replicas {
			if !inNew[wkr] {
				//pushpull:allow lockheld ex-replica cleanup rides the serialized mutation; bounded by MutateTimeout
				rt.proxy.deleteGraph(ctx, wkr, name, epoch)
			}
		}
	}

	pl := Placement{
		Name: name, ContentID: id,
		N: wl.N(), M: wl.M(), Kind: wl.Kind(),
		Replicas: acked, Epoch: epoch, Advice: advice,
	}
	rt.catalog.Set(pl)
	writeJSON(w, http.StatusCreated, pl)
}

// fanPut replicates one upload to every target concurrently; the result
// slice holds nil per acknowledged worker, the failure otherwise.
func (rt *Router) fanPut(ctx context.Context, targets []string, name string, body []byte, epoch uint64) []error {
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, wkr := range targets {
		wg.Add(1)
		go func(i int, wkr string) {
			defer wg.Done()
			resp, err := rt.proxy.putGraph(ctx, wkr, name, body, epoch)
			switch {
			case err != nil:
				rt.health.MarkDown(wkr)
				errs[i] = fmt.Errorf("%s: %w", wkr, err)
			case !resp.ok():
				errs[i] = fmt.Errorf("%s: %s", wkr, errorFrom(resp))
			}
		}(i, wkr)
	}
	wg.Wait()
	return errs
}

func (rt *Router) deleteGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.MutateTimeout)
	defer cancel()
	rt.mutMu.Lock()
	defer rt.mutMu.Unlock()
	pl, ok := rt.catalog.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown graph %q", name))
		return
	}
	epoch := rt.catalog.NextEpoch()
	for _, wkr := range pl.Replicas {
		// Best-effort: a down replica keeps its copy but the epoch fence
		// plus the catalog removal stop it from ever being routed to.
		//pushpull:allow lockheld delete fan-out serializes on mutMu by design; bounded by MutateTimeout
		if resp, err := rt.proxy.deleteGraph(ctx, wkr, name, epoch); err != nil {
			rt.health.MarkDown(wkr)
		} else if !resp.ok() && resp.status != http.StatusNotFound {
			rt.degraded.Add(1)
		}
	}
	rt.catalog.Delete(name)
	w.WriteHeader(http.StatusNoContent)
}

func (rt *Router) run(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var req serve.RunRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parsing run request: %w", err))
		return
	}
	if req.Graph == "" || req.Algorithm == "" {
		writeError(w, http.StatusBadRequest, errors.New(`"graph" and "algorithm" are required`))
		return
	}
	// Validate the algorithm here: router and worker share the registry,
	// and settling it locally keeps a worker-side 404 an unambiguous
	// "this worker lost the graph" failover signal.
	if _, err := pushpull.Lookup(req.Algorithm); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	pl, ok := rt.catalog.Get(req.Graph)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown graph %q (catalog: %v)", req.Graph, rt.catalogNames()))
		return
	}

	advice := pl.Advice[req.Algorithm]
	if advice != "" && rt.cfg.Advisor == AdvisorForce &&
		(req.Options.Direction == "" || req.Options.Direction == "auto") {
		req.Options.Direction = advice
	}
	body, err := json.Marshal(req)
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("re-encoding run request: %w", err))
		return
	}

	// Route to the primary replica, failing over through the rest.
	candidates := upFirst(pl.Replicas, rt.health)
	resp, wkr, err := rt.tryReplicas(r.Context(), pl.Replicas[0], candidates, func(wkr string) (*workerResponse, error) {
		return rt.proxy.run(r.Context(), wkr, body)
	})
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			writeError(w, http.StatusGatewayTimeout, err)
			return
		}
		writeError(w, http.StatusBadGateway, fmt.Errorf("graph %q: %w", req.Graph, err))
		return
	}
	if advice != "" {
		w.Header().Set(AdviceHeader, advice)
	}
	rt.relay(w, resp, wkr)
}

// tryReplicas drives the routing loop shared by synchronous runs and
// async job submissions: try candidates in order (healthy replicas
// first — upFirst keeps placement order within each liveness group, and
// a down candidate may have recovered since the last probe, costing
// only one connection error), with exponential backoff between
// attempts. Connection errors mark the worker down — the fastest
// truthful signal, so concurrent requests stop picking it before the
// next probe. 5xx (worker-side fault), 429 (an overloaded shard
// shedding load — the admission queue's truthful overload signal) and
// 404 (a worker that lost its state, e.g. a restart without a store)
// fail over to the next candidate. Any other status is the answer —
// returned with the worker that served it. primary names the
// placement's first replica so failovers are counted even when upFirst
// reordered the candidates; the returned error is the context's when
// the client gave up mid-backoff.
func (rt *Router) tryReplicas(ctx context.Context, primary string, candidates []string, send func(worker string) (*workerResponse, error)) (*workerResponse, string, error) {
	backoff := rt.cfg.RetryBase
	attempts := rt.cfg.Retries + 1
	var lastFailure string
	for attempt := 0; attempt < attempts; attempt++ {
		wkr := candidates[attempt%len(candidates)]
		if attempt > 0 {
			rt.retried.Add(1)
			select {
			case <-ctx.Done():
				return nil, "", ctx.Err()
			case <-time.After(backoff):
			}
			backoff *= 2
			if backoff > rt.cfg.RetryMax {
				backoff = rt.cfg.RetryMax
			}
		}
		resp, err := send(wkr)
		if err != nil {
			rt.health.MarkDown(wkr)
			lastFailure = fmt.Sprintf("%s: %v", wkr, err)
			continue
		}
		if resp.status >= 500 || resp.status == http.StatusTooManyRequests || resp.status == http.StatusNotFound {
			lastFailure = fmt.Sprintf("%s: %s", wkr, errorFrom(resp))
			continue
		}
		if wkr != primary {
			rt.failedOver.Add(1)
		}
		rt.routed.Add(1)
		return resp, wkr, nil
	}
	rt.failed.Add(1)
	return nil, "", fmt.Errorf("all %d replica(s) failed after %d attempts (last: %s)",
		len(candidates), attempts, lastFailure)
}

// relay copies a worker's answer to the client, naming the worker that
// served it.
func (rt *Router) relay(w http.ResponseWriter, resp *workerResponse, wkr string) {
	h := w.Header()
	if ct := resp.header.Get("Content-Type"); ct != "" {
		h.Set("Content-Type", ct)
	}
	h.Set(WorkerHeader, wkr)
	w.WriteHeader(resp.status)
	w.Write(resp.body)
}

// ---- stats ----

// WorkerStatus is one fleet entry of the router's GET /stats body.
type WorkerStatus struct {
	URL string `json:"url"`
	Up  bool   `json:"up"`
	// Stats is the worker's own GET /stats body, verbatim; null when the
	// worker is down or the fetch failed.
	Stats json.RawMessage `json:"stats,omitempty"`
}

// RouterStats is the router's GET /stats body: fleet-level counters plus
// every worker's own stats.
type RouterStats struct {
	// Routed counts runs answered by a worker (any status the router
	// relays); Retried counts extra attempts; FailedOver counts runs
	// ultimately served by a non-primary replica; Failed counts requests
	// no replica could serve; ReplicasDegraded counts mutations that
	// reached fewer replicas than placed.
	Routed           uint64 `json:"routed"`
	Retried          uint64 `json:"retried"`
	FailedOver       uint64 `json:"failed_over"`
	Failed           uint64 `json:"failed"`
	ReplicasDegraded uint64 `json:"replicas_degraded"`
	// ReplicasCapped counts uploads placed on fewer replicas than the
	// configured factor because not enough workers were up.
	ReplicasCapped    uint64 `json:"replicas_capped"`
	HealthTransitions uint64 `json:"health_transitions"`
	Graphs            int    `json:"graphs"`
	// Jobs counts the job and batch affinities the catalog tracks —
	// async submissions routed through this router.
	Jobs    int            `json:"jobs"`
	Workers []WorkerStatus `json:"workers"`
}

func (rt *Router) stats(w http.ResponseWriter, r *http.Request) {
	out := RouterStats{
		Routed:            rt.routed.Load(),
		Retried:           rt.retried.Load(),
		FailedOver:        rt.failedOver.Load(),
		Failed:            rt.failed.Load(),
		ReplicasDegraded:  rt.degraded.Load(),
		ReplicasCapped:    rt.replicasCapped.Load(),
		HealthTransitions: rt.health.Transitions(),
		Graphs:            rt.catalog.Len(),
		Jobs:              rt.catalog.JobsLen(),
		Workers:           make([]WorkerStatus, len(rt.cfg.Workers)),
	}
	ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for i, wkr := range rt.cfg.Workers {
		out.Workers[i] = WorkerStatus{URL: wkr, Up: rt.health.IsUp(wkr)}
		if !out.Workers[i].Up {
			continue
		}
		wg.Add(1)
		go func(i int, wkr string) {
			defer wg.Done()
			if resp, err := rt.proxy.stats(ctx, wkr); err == nil && resp.ok() && json.Valid(resp.body) {
				out.Workers[i].Stats = resp.body
			}
		}(i, wkr)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, out)
}

// ---- helpers ----

func (rt *Router) catalogNames() []string {
	pls := rt.catalog.List()
	names := make([]string, len(pls))
	for i, p := range pls {
		names[i] = p.Name
	}
	return names
}

// upFirst orders candidates with the healthy ones (per the last probe)
// ahead, preserving placement order within each group.
func upFirst(replicas []string, h *Health) []string {
	out := make([]string, 0, len(replicas))
	var down []string
	for _, w := range replicas {
		if h.IsUp(w) {
			out = append(out, w)
		} else {
			down = append(down, w)
		}
	}
	return append(out, down...)
}

// errorFrom digs the worker's error message out of a failed reply.
func errorFrom(resp *workerResponse) string {
	var body struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(resp.body, &body) == nil && body.Error != "" {
		return fmt.Sprintf("%d: %s", resp.status, body.Error)
	}
	return fmt.Sprintf("status %d", resp.status)
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	buf, err := json.Marshal(body)
	if err != nil {
		buf = []byte(fmt.Sprintf(`{"error": "encoding response: %s"}`, err))
		status = http.StatusInternalServerError
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(buf)
	w.Write([]byte("\n"))
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
