package cluster

import (
	"fmt"
	"testing"
)

func fleet(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://worker-%d:8080", i)
	}
	return out
}

// TestPlacerDeterminism: placement is a pure function of (key, fleet) —
// same inputs, same replica set, in the same order, with no duplicates.
func TestPlacerDeterminism(t *testing.T) {
	p := NewPlacer(3)
	workers := fleet(7)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("graph-%d", i)
		a := p.Place(key, workers)
		b := p.Place(key, workers)
		if len(a) != 3 {
			t.Fatalf("Place(%q) returned %d replicas, want 3", key, len(a))
		}
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("Place(%q) not deterministic: %v vs %v", key, a, b)
		}
		seen := map[string]bool{}
		for _, w := range a {
			if seen[w] {
				t.Fatalf("Place(%q) repeated worker %s: %v", key, w, a)
			}
			seen[w] = true
		}
	}
}

// TestPlacerCapsAtFleetSize: R larger than the fleet degrades to the
// whole fleet, never to duplicates or a panic.
func TestPlacerCapsAtFleetSize(t *testing.T) {
	p := NewPlacer(5)
	got := p.Place("g", fleet(2))
	if len(got) != 2 {
		t.Fatalf("R=5 over 2 workers placed %d replicas, want 2", len(got))
	}
	if p.Replicas() != 5 {
		t.Fatalf("Replicas() = %d, want the configured 5", p.Replicas())
	}
	if one := NewPlacer(0); one.Replicas() != 1 {
		t.Fatalf("NewPlacer(0).Replicas() = %d, want the floor of 1", one.Replicas())
	}
}

// TestPlacerMinimalDisruption is the property rendezvous hashing buys
// over mod-N: removing one worker remaps only the keys that worker held.
// For every key, placement over the shrunken fleet must equal the old
// full ranking with the lost worker deleted — keys that never touched it
// keep their exact replica set.
func TestPlacerMinimalDisruption(t *testing.T) {
	p := NewPlacer(2)
	workers := fleet(6)
	lost := workers[3]
	survivors := append(append([]string{}, workers[:3]...), workers[4:]...)

	moved := 0
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("graph-%d", i)
		oldRank := p.Rank(key, workers)
		want := make([]string, 0, 2)
		for _, w := range oldRank {
			if w != lost {
				want = append(want, w)
			}
			if len(want) == 2 {
				break
			}
		}
		got := p.Place(key, survivors)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("key %q: Place after losing %s = %v, want old rank minus it = %v",
				key, lost, got, want)
		}
		if fmt.Sprint(got) != fmt.Sprint(oldRank[:2]) {
			moved++
		}
	}
	// ~2/6 of keys had the lost worker in their top 2; all 200 moving
	// would mean mod-N-style total reshuffle.
	if moved == 0 || moved > 140 {
		t.Errorf("%d/200 keys changed placement after losing one of 6 workers; want a minority, not %d", moved, moved)
	}
}

// TestPlacerSpread: every worker in a modest fleet is primary for some
// key — the hash does not strand capacity.
func TestPlacerSpread(t *testing.T) {
	p := NewPlacer(1)
	workers := fleet(5)
	primaries := map[string]int{}
	for i := 0; i < 500; i++ {
		primaries[p.Place(fmt.Sprintf("graph-%d", i), workers)[0]]++
	}
	for _, w := range workers {
		if primaries[w] == 0 {
			t.Errorf("worker %s is primary for none of 500 keys: %v", w, primaries)
		}
	}
}
