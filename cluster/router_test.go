package cluster_test

// Cluster-tier tests over httptest fleets: real pushpull/serve workers
// behind a Router, with a kill switch per worker (the handler aborts the
// connection, the same failure shape as a dead process) to exercise
// replication, failover, epoch fencing and cross-process invalidation.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pushpull"
	"pushpull/cluster"
	"pushpull/jobs"
	"pushpull/serve"
)

// worker is one fleet member: a real serve.Server over its own Engine,
// with a switch that makes every subsequent request abort its connection
// — indistinguishable, from the router's side, from a killed process.
type worker struct {
	ts   *httptest.Server
	eng  *pushpull.Engine
	dead atomic.Bool
}

func (w *worker) URL() string { return w.ts.URL }
func (w *worker) kill()       { w.dead.Store(true) }

func newWorker(t *testing.T) *worker {
	t.Helper()
	w := &worker{eng: pushpull.NewEngine()}
	mgr, err := jobs.NewManager(w.eng)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)
	h := serve.New(w.eng, serve.WithJobManager(mgr))
	w.ts = httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if w.dead.Load() {
			panic(http.ErrAbortHandler)
		}
		h.ServeHTTP(rw, r)
	}))
	t.Cleanup(w.ts.Close)
	return w
}

func newFleet(t *testing.T, n int) []*worker {
	t.Helper()
	out := make([]*worker, n)
	for i := range out {
		out[i] = newWorker(t)
	}
	return out
}

func urls(ws []*worker) []string {
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.URL()
	}
	return out
}

// newRouter builds, starts and serves a Router over the fleet with fast
// retries and the background health loop disabled — tests drive probes
// explicitly so liveness transitions are deterministic.
func newRouter(t *testing.T, ws []*worker, mutate ...func(*cluster.Config)) (*httptest.Server, *cluster.Router) {
	t.Helper()
	cfg := cluster.Config{
		Workers:        urls(ws),
		Replicas:       2,
		RetryBase:      time.Millisecond,
		HealthInterval: -1,
	}
	for _, m := range mutate {
		m(&cfg)
	}
	rt, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start(context.Background())
	t.Cleanup(rt.Close)
	ts := httptest.NewServer(rt)
	t.Cleanup(ts.Close)
	return ts, rt
}

func testGraph(t *testing.T, n int, seed uint64) *pushpull.Graph {
	t.Helper()
	g, err := pushpull.ErdosRenyi(n, 8, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func putGraph(t *testing.T, base, name string, g *pushpull.Graph, wantStatus int) cluster.Placement {
	t.Helper()
	var buf bytes.Buffer
	if err := pushpull.WriteWorkload(&buf, pushpull.NewWorkload(g)); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut, base+"/graphs/"+name, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("PUT %s: status %d, want %d: %s", name, resp.StatusCode, wantStatus, body)
	}
	var pl cluster.Placement
	if wantStatus == http.StatusCreated {
		if err := json.Unmarshal(body, &pl); err != nil {
			t.Fatalf("parsing placement %q: %v", body, err)
		}
	}
	return pl
}

// postRun POSTs a run and returns (response, serving worker). A non-2xx
// other than wantStatus fails the test.
func postRun(t *testing.T, base, body string, wantStatus int) (serve.RunResponse, string) {
	t.Helper()
	resp, err := http.Post(base+"/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST /run %s: status %d, want %d: %s", body, resp.StatusCode, wantStatus, raw)
	}
	var rr serve.RunResponse
	if wantStatus == http.StatusOK {
		if err := json.Unmarshal(raw, &rr); err != nil {
			t.Fatalf("parsing run response %q: %v", raw, err)
		}
	}
	return rr, resp.Header.Get(cluster.WorkerHeader)
}

func workerGraphs(t *testing.T, w *worker) []serve.GraphInfo {
	t.Helper()
	resp, err := http.Get(w.URL() + "/graphs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out []serve.GraphInfo
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func routerStats(t *testing.T, base string) cluster.RouterStats {
	t.Helper()
	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st cluster.RouterStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestRouterReplicatesAndRoutes: a PUT through the router lands on
// exactly R workers (the placement's replica set, nowhere else), and a
// routed run is served by one of them with the worker named in the
// response header.
func TestRouterReplicatesAndRoutes(t *testing.T) {
	fleet := newFleet(t, 3)
	ts, rt := newRouter(t, fleet)
	pl := putGraph(t, ts.URL, "demo", testGraph(t, 400, 17), http.StatusCreated)
	if len(pl.Replicas) != 2 || pl.Epoch == 0 || pl.N != 400 {
		t.Fatalf("placement %+v, want 2 replicas with a nonzero epoch", pl)
	}
	isReplica := map[string]bool{}
	for _, r := range pl.Replicas {
		isReplica[r] = true
	}
	for _, w := range fleet {
		n := len(workerGraphs(t, w))
		if isReplica[w.URL()] && n != 1 {
			t.Errorf("replica %s holds %d graphs, want 1", w.URL(), n)
		}
		if !isReplica[w.URL()] && n != 0 {
			t.Errorf("non-replica %s holds %d graphs, want 0", w.URL(), n)
		}
	}

	resp, served := postRun(t, ts.URL, `{"graph": "demo", "algorithm": "pr", "options": {"iterations": 5}}`, http.StatusOK)
	if !isReplica[served] {
		t.Errorf("run served by %s, which is not in the replica set %v", served, pl.Replicas)
	}
	if len(resp.Ranks) != 400 {
		t.Errorf("run returned %d ranks, want 400", len(resp.Ranks))
	}
	if got, ok := rt.Catalog().Get("demo"); !ok || got.ContentID != pl.ContentID {
		t.Errorf("catalog lost the placement: %+v", got)
	}
}

// TestRouterFailoverOnDeadPrimary: killing the primary replica must not
// fail a client run — the router retries onto the secondary and counts
// the failover.
func TestRouterFailoverOnDeadPrimary(t *testing.T) {
	fleet := newFleet(t, 3)
	ts, rt := newRouter(t, fleet)
	pl := putGraph(t, ts.URL, "demo", testGraph(t, 400, 17), http.StatusCreated)

	byURL := map[string]*worker{}
	for _, w := range fleet {
		byURL[w.URL()] = w
	}
	byURL[pl.Replicas[0]].kill()

	body := `{"graph": "demo", "algorithm": "pr", "options": {"iterations": 5}}`
	_, served := postRun(t, ts.URL, body, http.StatusOK)
	if served != pl.Replicas[1] {
		t.Errorf("run served by %s, want the secondary %s", served, pl.Replicas[1])
	}
	if rt.Health().IsUp(pl.Replicas[0]) {
		t.Error("connection error did not mark the dead primary down")
	}
	st := routerStats(t, ts.URL)
	if st.FailedOver == 0 || st.Retried == 0 || st.Failed != 0 {
		t.Errorf("stats %+v: want failed_over > 0, retried > 0, failed == 0", st)
	}
}

// TestRouterFailoverMidBurst is the acceptance check: kill the primary
// in the middle of a stream of client runs and assert not one request
// fails. Each request uses a distinct option set so every one is a real
// routed run, not a router-invisible cache hit shortcut.
func TestRouterFailoverMidBurst(t *testing.T) {
	fleet := newFleet(t, 3)
	ts, _ := newRouter(t, fleet)
	pl := putGraph(t, ts.URL, "demo", testGraph(t, 400, 17), http.StatusCreated)
	byURL := map[string]*worker{}
	for _, w := range fleet {
		byURL[w.URL()] = w
	}

	const clients, perClient = 4, 8
	var failures atomic.Int64
	var killOnce sync.Once
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				if c == 0 && i == perClient/2 {
					killOnce.Do(func() { byURL[pl.Replicas[0]].kill() })
				}
				body := fmt.Sprintf(`{"graph": "demo", "algorithm": "pr", "options": {"iterations": %d}}`, 2+c*perClient+i)
				resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(body))
				if err != nil {
					failures.Add(1)
					t.Errorf("client %d run %d: %v", c, i, err)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
					t.Errorf("client %d run %d: status %d", c, i, resp.StatusCode)
				}
			}
		}(c)
	}
	wg.Wait()
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d of %d client requests failed across the primary's death; failover must absorb all of them",
			n, clients*perClient)
	}
}

// TestRouterRePutInvalidatesEveryReplica is the cross-process face of
// the stale-result regression: re-PUT different content under the same
// name through the router, then interrogate each replica DIRECTLY — every
// worker must serve the new graph fresh, no replica may answer from the
// old content's cache.
func TestRouterRePutInvalidatesEveryReplica(t *testing.T) {
	fleet := newFleet(t, 2)
	ts, _ := newRouter(t, fleet)
	putGraph(t, ts.URL, "g", testGraph(t, 200, 23), http.StatusCreated)

	body := `{"graph": "g", "algorithm": "pr", "options": {"iterations": 5}}`
	// Warm every replica's cache against the old content.
	for _, w := range fleet {
		resp, _ := postRun(t, w.URL(), body, http.StatusOK)
		if len(resp.Ranks) != 200 {
			t.Fatalf("warm run on %s returned %d ranks, want 200", w.URL(), len(resp.Ranks))
		}
	}

	pl2 := putGraph(t, ts.URL, "g", testGraph(t, 300, 29), http.StatusCreated)
	if len(pl2.Replicas) != 2 {
		t.Fatalf("re-PUT placed %d replicas, want both workers", len(pl2.Replicas))
	}
	for _, w := range fleet {
		resp, _ := postRun(t, w.URL(), body, http.StatusOK)
		if resp.Stats.CacheHit {
			t.Errorf("replica %s served the old content's cached result after re-PUT", w.URL())
		}
		if len(resp.Ranks) != 300 {
			t.Errorf("replica %s returned %d ranks after re-PUT, want the new graph's 300", w.URL(), len(resp.Ranks))
		}
	}
}

// TestRouterEpochFencesStaleWrite: a delayed replication write (an old
// epoch replayed at a worker after a newer mutation landed) is rejected
// with 409 instead of resurrecting stale content; epoch-less direct
// client PUTs still work.
func TestRouterEpochFencesStaleWrite(t *testing.T) {
	fleet := newFleet(t, 2)
	ts, _ := newRouter(t, fleet)
	g1 := testGraph(t, 200, 23)
	pl1 := putGraph(t, ts.URL, "g", g1, http.StatusCreated)
	pl2 := putGraph(t, ts.URL, "g", testGraph(t, 300, 29), http.StatusCreated)
	if pl2.Epoch <= pl1.Epoch {
		t.Fatalf("epochs not monotone: %d then %d", pl1.Epoch, pl2.Epoch)
	}

	// Replay the first upload at a replica with its original epoch — the
	// shape of a delayed fan-out write arriving after the re-PUT.
	var buf bytes.Buffer
	if err := pushpull.WriteWorkload(&buf, pushpull.NewWorkload(g1)); err != nil {
		t.Fatal(err)
	}
	stale, err := http.NewRequest(http.MethodPut, pl2.Replicas[0]+"/graphs/g", &buf)
	if err != nil {
		t.Fatal(err)
	}
	stale.Header.Set(serve.EpochHeader, fmt.Sprint(pl1.Epoch))
	resp, err := http.DefaultClient.Do(stale)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale-epoch replay got %d, want 409", resp.StatusCode)
	}
	// The replica still serves the NEW content.
	rr, _ := postRun(t, pl2.Replicas[0], `{"graph": "g", "algorithm": "pr", "options": {"iterations": 5}}`, http.StatusOK)
	if len(rr.Ranks) != 300 {
		t.Errorf("replica serves %d ranks after fenced replay, want 300", len(rr.Ranks))
	}

	// Without an epoch header the guard does not apply: direct clients of
	// a single worker are unaffected by the cluster tier.
	var buf2 bytes.Buffer
	if err := pushpull.WriteWorkload(&buf2, pushpull.NewWorkload(g1)); err != nil {
		t.Fatal(err)
	}
	plain, err := http.NewRequest(http.MethodPut, pl2.Replicas[0]+"/graphs/g", &buf2)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(plain)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Errorf("epoch-less direct PUT got %d, want 201", resp.StatusCode)
	}
}

// TestRouterDeleteFansOut: DELETE through the router removes the graph
// from every replica (direct 404s) and from the catalog (router 404s).
func TestRouterDeleteFansOut(t *testing.T) {
	fleet := newFleet(t, 3)
	ts, _ := newRouter(t, fleet)
	putGraph(t, ts.URL, "doomed", testGraph(t, 200, 23), http.StatusCreated)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/graphs/doomed", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE got %d, want 204", resp.StatusCode)
	}
	for _, w := range fleet {
		if n := len(workerGraphs(t, w)); n != 0 {
			t.Errorf("worker %s still holds %d graphs after the fan-out delete", w.URL(), n)
		}
	}
	postRun(t, ts.URL, `{"graph": "doomed", "algorithm": "pr"}`, http.StatusNotFound)
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/graphs/doomed", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("second DELETE got %d, want 404", resp.StatusCode)
	}
}

// TestRouterAdvisorForce: with the §6.3 cost-model advisor forcing, the
// upload records push/pull advice per advised algorithm and a routed run
// that left the direction on auto executes in the advised direction.
func TestRouterAdvisorForce(t *testing.T) {
	fleet := newFleet(t, 2)
	ts, _ := newRouter(t, fleet, func(c *cluster.Config) {
		c.Advisor = cluster.AdvisorForce
		c.AdvisorRanks = 4
	})
	pl := putGraph(t, ts.URL, "demo", testGraph(t, 400, 17), http.StatusCreated)
	advice := pl.Advice["pr"]
	if advice != "push" && advice != "pull" {
		t.Fatalf("advice for pr = %q, want push or pull (full advice: %v)", advice, pl.Advice)
	}

	resp, err := http.Post(ts.URL+"/run", "application/json",
		strings.NewReader(`{"graph": "demo", "algorithm": "pr", "options": {"iterations": 5}}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run got %d: %s", resp.StatusCode, raw)
	}
	if got := resp.Header.Get(cluster.AdviceHeader); got != advice {
		t.Errorf("%s = %q, want %q", cluster.AdviceHeader, got, advice)
	}
	var rr serve.RunResponse
	if err := json.Unmarshal(raw, &rr); err != nil {
		t.Fatal(err)
	}
	for i, d := range rr.Directions {
		if d != advice {
			t.Fatalf("iteration %d ran %q despite forced advice %q (trace %v)", i, d, advice, rr.Directions)
		}
	}
	// An explicit client direction is never overridden.
	rr, _ = postRun(t, ts.URL,
		`{"graph": "demo", "algorithm": "pr", "options": {"direction": "push", "iterations": 5}}`, http.StatusOK)
	if rr.Stats.Direction != "push" {
		t.Errorf("explicit push ran as %q; forcing must not override the client", rr.Stats.Direction)
	}
}

// TestRouterErrors: router-local validation — unknown graph and unknown
// algorithm 404 without touching a worker, malformed bodies 400, and a
// fleet with every worker down turns uploads into 503.
func TestRouterErrors(t *testing.T) {
	fleet := newFleet(t, 2)
	ts, rt := newRouter(t, fleet)
	putGraph(t, ts.URL, "demo", testGraph(t, 200, 23), http.StatusCreated)

	postRun(t, ts.URL, `{"graph": "nope", "algorithm": "pr"}`, http.StatusNotFound)
	postRun(t, ts.URL, `{"graph": "demo", "algorithm": "nope"}`, http.StatusNotFound)
	postRun(t, ts.URL, `{}`, http.StatusBadRequest)
	postRun(t, ts.URL, `{"graph": "demo", "algorithm": "pr", "options": {"bogus": 1}}`, http.StatusBadRequest)

	for _, w := range fleet {
		w.kill()
	}
	rt.Health().Check(context.Background())
	putGraph(t, ts.URL, "late", testGraph(t, 200, 31), http.StatusServiceUnavailable)
}

// TestRouterConfigValidation: New rejects fleets it cannot route over.
func TestRouterConfigValidation(t *testing.T) {
	cases := []cluster.Config{
		{},
		{Workers: []string{"not-a-url"}},
		{Workers: []string{"http://a:1", "http://a:1"}},
		{Workers: []string{"http://a:1"}, Advisor: "maybe"},
	}
	for i, cfg := range cases {
		if _, err := cluster.New(cfg); err == nil {
			t.Errorf("case %d: New(%+v) accepted an invalid config", i, cfg)
		}
	}
}

// TestRouterStatsAggregates: the router's stats body carries its own
// counters plus each up worker's verbatim stats document.
func TestRouterStatsAggregates(t *testing.T) {
	fleet := newFleet(t, 2)
	ts, _ := newRouter(t, fleet)
	putGraph(t, ts.URL, "demo", testGraph(t, 200, 23), http.StatusCreated)
	postRun(t, ts.URL, `{"graph": "demo", "algorithm": "pr", "options": {"iterations": 3}}`, http.StatusOK)

	st := routerStats(t, ts.URL)
	if st.Routed != 1 || st.Graphs != 1 || len(st.Workers) != 2 {
		t.Fatalf("stats %+v: want routed=1, graphs=1, 2 workers", st)
	}
	for _, ws := range st.Workers {
		if !ws.Up {
			t.Errorf("worker %s reported down in a healthy fleet", ws.URL)
		}
		var es serve.EngineStats
		if err := json.Unmarshal(ws.Stats, &es); err != nil {
			t.Errorf("worker %s stats not a serve stats doc: %v", ws.URL, err)
		}
	}
}
