package cluster

import (
	"context"

	"pushpull"
)

// CostModel picks push vs pull per placed graph from the paper's §6.3
// cost model: the dist-* registry algorithms simulate the same
// computation over RMA push (remote accumulates), RMA pull (remote
// reads) and message passing, billing every remote operation, and their
// simulated makespans are exactly the quantity §6.3 compares. The router
// runs the push/pull pair once per uploaded graph (placement time, not
// request time) and records the cheaper mechanism's direction as advice;
// depending on the -direction-advisor mode the router annotates routed
// runs with it (X-Cluster-Direction-Advice) or forces it onto runs that
// left the direction on auto.
//
// The advice is per (graph content, algorithm): the paper's point is
// that the winner flips with the workload — high-degree skew favors
// pull's contention-free remote reads, while sparse updates favor push —
// so a fleet serving many graphs wants a per-placement verdict, not a
// global default.
type CostModel struct {
	// Ranks is the simulated cluster size fed to the dist-* runs; 0 uses
	// the number of workers the router actually has (min 2 — a 1-rank
	// simulation has no remote operations to bill).
	Ranks int
}

// advisedAlgorithms maps each advisable registry algorithm to its §6.3
// simulation pair (push variant, pull variant). Only pr and tc have
// dist-* simulations in the paper; every other algorithm routes without
// advice.
var advisedAlgorithms = map[string][2]string{
	"pr": {"dist-pr-push-rma", "dist-pr-pull-rma"},
	"tc": {"dist-tc-push-rma", "dist-tc-pull-rma"},
}

// Advise bills both mechanisms for every advisable algorithm on w and
// returns algorithm → "push"/"pull" for the cheaper one. Algorithms
// whose simulation rejects the workload (e.g. directed graphs) are
// skipped; an empty map means no advice.
func (m *CostModel) Advise(ctx context.Context, w *pushpull.Workload) map[string]string {
	ranks := m.Ranks
	if ranks < 2 {
		ranks = 2
	}
	advice := make(map[string]string, len(advisedAlgorithms))
	for algo, pair := range advisedAlgorithms {
		push, err := pushpull.Run(ctx, w, pair[0], pushpull.WithRanks(ranks))
		if err != nil {
			continue
		}
		pull, err := pushpull.Run(ctx, w, pair[1], pushpull.WithRanks(ranks))
		if err != nil {
			continue
		}
		// Stats.Elapsed of a dist run is the simulated makespan — the
		// §6.3 bill, not wall time.
		if push.Stats.Elapsed <= pull.Stats.Elapsed {
			advice[algo] = "push"
		} else {
			advice[algo] = "pull"
		}
	}
	return advice
}
