package cluster_test

// Async-tier router tests: job submission routes like a run (replica
// placement, failover counters), but accepted jobs pin to the worker
// that took them — the affinity table is what these exercise, along
// with batch atomicity (one worker runs the whole batch or the router
// refuses it).

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"pushpull/cluster"
	"pushpull/jobs"
	"pushpull/serve"
)

// postJSON sends body to base+path and returns (status, body, worker
// header).
func postJSON(t *testing.T, base, path, body string) (int, []byte, string) {
	t.Helper()
	resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, raw, resp.Header.Get(cluster.WorkerHeader)
}

func getJSON(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, raw
}

// waitJobDone polls the router's status endpoint until the job reaches
// a terminal state, failing the test if that is not StateDone.
func waitJobDone(t *testing.T, base, id string) jobs.Job {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		status, raw := getJSON(t, base+"/jobs/"+id)
		if status != http.StatusOK {
			t.Fatalf("GET /jobs/%s: status %d: %s", id, status, raw)
		}
		var j jobs.Job
		if err := json.Unmarshal(raw, &j); err != nil {
			t.Fatalf("parsing job status %q: %v", raw, err)
		}
		if j.State.Terminal() {
			if j.State != jobs.StateDone {
				t.Fatalf("job %s ended %s (%s), want done", id, j.State, j.Error)
			}
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after 10s", id, j.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRouterJobSubmitPollResult: a job submitted through the router
// lands on a replica of its graph, gets an affinity entry, and its
// status and result polls are answered through the router — the result
// body being the same RunResponse a synchronous routed run returns.
func TestRouterJobSubmitPollResult(t *testing.T) {
	fleet := newFleet(t, 3)
	ts, rt := newRouter(t, fleet)
	pl := putGraph(t, ts.URL, "demo", testGraph(t, 400, 17), http.StatusCreated)
	isReplica := map[string]bool{}
	for _, r := range pl.Replicas {
		isReplica[r] = true
	}

	status, raw, served := postJSON(t, ts.URL, "/jobs",
		`{"graph": "demo", "algorithm": "pr", "options": {"iterations": 5}}`)
	if status != http.StatusAccepted {
		t.Fatalf("POST /jobs: status %d, want 202: %s", status, raw)
	}
	var j jobs.Job
	if err := json.Unmarshal(raw, &j); err != nil || j.ID == "" {
		t.Fatalf("submission reply %q: %v", raw, err)
	}
	if !isReplica[served] {
		t.Errorf("job accepted by %s, not a replica of %v", served, pl.Replicas)
	}
	if wkr, ok := rt.Catalog().JobWorker(j.ID); !ok || wkr != served {
		t.Errorf("affinity for %s = (%q, %v), want %q", j.ID, wkr, ok, served)
	}

	waitJobDone(t, ts.URL, j.ID)
	rstatus, rbody := getJSON(t, ts.URL+"/jobs/"+j.ID+"/result")
	if rstatus != http.StatusOK {
		t.Fatalf("GET result: status %d: %s", rstatus, rbody)
	}
	var rr serve.RunResponse
	if err := json.Unmarshal(rbody, &rr); err != nil {
		t.Fatal(err)
	}
	if len(rr.Ranks) != 400 {
		t.Errorf("job result has %d ranks, want 400", len(rr.Ranks))
	}

	// The router-level list merges worker lists and carries the job.
	lstatus, lraw := getJSON(t, ts.URL+"/jobs")
	if lstatus != http.StatusOK {
		t.Fatalf("GET /jobs: status %d: %s", lstatus, lraw)
	}
	var list []jobs.Job
	if err := json.Unmarshal(lraw, &list); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, lj := range list {
		found = found || lj.ID == j.ID
	}
	if !found {
		t.Errorf("router job list %s does not carry %s", lraw, j.ID)
	}

	st := routerStats(t, ts.URL)
	if st.Jobs == 0 {
		t.Errorf("router stats report %d tracked jobs, want > 0", st.Jobs)
	}
}

// TestRouterBatchOneWorker: a batch submitted through the router lands
// whole on one worker — every job of the batch shares that affinity —
// and a batch-filtered list through the router returns exactly its
// jobs.
func TestRouterBatchOneWorker(t *testing.T) {
	fleet := newFleet(t, 3)
	ts, rt := newRouter(t, fleet)
	putGraph(t, ts.URL, "demo", testGraph(t, 400, 17), http.StatusCreated)

	status, raw, served := postJSON(t, ts.URL, "/jobs", `{"batch": [
		{"graph": "demo", "algorithm": "pr", "options": {"iterations": 3}},
		{"graph": "demo", "algorithm": "bfs", "options": {"source": 0}},
		{"graph": "demo", "algorithm": "tc"}
	]}`)
	if status != http.StatusAccepted {
		t.Fatalf("POST /jobs batch: status %d: %s", status, raw)
	}
	var br serve.BatchResponse
	if err := json.Unmarshal(raw, &br); err != nil {
		t.Fatal(err)
	}
	if br.BatchID == "" || len(br.Jobs) != 3 {
		t.Fatalf("batch reply %+v: want a batch ID and 3 jobs", br)
	}
	if wkr, ok := rt.Catalog().JobWorker(br.BatchID); !ok || wkr != served {
		t.Errorf("batch affinity = (%q, %v), want %q", wkr, ok, served)
	}
	for _, j := range br.Jobs {
		if wkr, ok := rt.Catalog().JobWorker(j.ID); !ok || wkr != served {
			t.Errorf("job %s affinity = (%q, %v), want the batch's worker %q", j.ID, wkr, ok, served)
		}
		waitJobDone(t, ts.URL, j.ID)
	}

	lstatus, lraw := getJSON(t, ts.URL+"/jobs?batch="+br.BatchID)
	if lstatus != http.StatusOK {
		t.Fatalf("GET /jobs?batch=: status %d: %s", lstatus, lraw)
	}
	var list []jobs.Job
	if err := json.Unmarshal(lraw, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 3 {
		t.Errorf("batch-filtered list has %d jobs, want 3: %s", len(list), lraw)
	}
}

// TestRouterBatchDisjointReplicas: with R=1 every graph lives on
// exactly one worker; a batch spanning two graphs placed on different
// workers cannot run under one batch ID and must be refused with 409,
// not silently split.
func TestRouterBatchDisjointReplicas(t *testing.T) {
	fleet := newFleet(t, 2)
	ts, rt := newRouter(t, fleet, func(c *cluster.Config) { c.Replicas = 1 })

	// Rendezvous placement hashes content IDs, so distinct seeds spread
	// over the fleet; find two graphs on different workers.
	var names []string
	workers := map[string]string{}
	for seed := uint64(1); seed <= 16 && len(workers) < 2; seed++ {
		name := fmt.Sprintf("g%d", seed)
		pl := putGraph(t, ts.URL, name, testGraph(t, 100, seed), http.StatusCreated)
		if len(pl.Replicas) != 1 {
			t.Fatalf("graph %s placed on %d replicas, want 1", name, len(pl.Replicas))
		}
		if _, seen := workers[pl.Replicas[0]]; !seen {
			workers[pl.Replicas[0]] = name
			names = append(names, name)
		}
	}
	if len(names) < 2 {
		t.Skip("placement put every probe graph on one worker")
	}

	status, raw, _ := postJSON(t, ts.URL, "/jobs", fmt.Sprintf(`{"batch": [
		{"graph": %q, "algorithm": "pr", "options": {"iterations": 2}},
		{"graph": %q, "algorithm": "pr", "options": {"iterations": 2}}
	]}`, names[0], names[1]))
	if status != http.StatusConflict {
		t.Fatalf("cross-worker batch: status %d, want 409: %s", status, raw)
	}

	// The same two specs submitted separately both land fine.
	for _, n := range names[:2] {
		status, raw, _ := postJSON(t, ts.URL, "/jobs",
			fmt.Sprintf(`{"graph": %q, "algorithm": "pr", "options": {"iterations": 2}}`, n))
		if status != http.StatusAccepted {
			t.Fatalf("single job on %s: status %d: %s", n, status, raw)
		}
	}
	_ = rt
}

// TestRouterJobValidationAndAffinityPin: router-local validation 400s/
// 404s without touching a worker; polls for unknown jobs 404; and a
// poll whose affinity worker died is a truthful 502, never a phantom
// answer from another replica.
func TestRouterJobValidationAndAffinityPin(t *testing.T) {
	fleet := newFleet(t, 3)
	ts, _ := newRouter(t, fleet)
	putGraph(t, ts.URL, "demo", testGraph(t, 400, 17), http.StatusCreated)

	cases := []struct {
		body string
		want int
	}{
		{`{"graph": "nope", "algorithm": "pr"}`, http.StatusNotFound},
		{`{"graph": "demo", "algorithm": "nope"}`, http.StatusNotFound},
		{`{}`, http.StatusBadRequest},
		{`{"graph": "demo", "algorithm": "pr", "batch": [{"graph": "demo", "algorithm": "pr"}]}`, http.StatusBadRequest},
		{`{"batch": [{"graph": "demo", "algorithm": "pr"}, {"graph": "nope", "algorithm": "pr"}]}`, http.StatusNotFound},
	}
	for _, c := range cases {
		if status, raw, _ := postJSON(t, ts.URL, "/jobs", c.body); status != c.want {
			t.Errorf("POST /jobs %s: status %d, want %d: %s", c.body, status, c.want, raw)
		}
	}
	if status, raw := getJSON(t, ts.URL+"/jobs/j-nope"); status != http.StatusNotFound {
		t.Errorf("unknown job status poll: %d, want 404: %s", status, raw)
	}
	if status, raw := getJSON(t, ts.URL+"/jobs?state=bogus"); status != http.StatusBadRequest {
		t.Errorf("bad state filter: %d, want 400: %s", status, raw)
	}

	// Submit, finish, then kill the affinity worker: the poll must not
	// fail over (no other worker knows the job) — 502.
	status, raw, served := postJSON(t, ts.URL, "/jobs",
		`{"graph": "demo", "algorithm": "pr", "options": {"iterations": 4}}`)
	if status != http.StatusAccepted {
		t.Fatalf("POST /jobs: status %d: %s", status, raw)
	}
	var j jobs.Job
	if err := json.Unmarshal(raw, &j); err != nil {
		t.Fatal(err)
	}
	waitJobDone(t, ts.URL, j.ID)
	for _, w := range fleet {
		if w.URL() == served {
			w.kill()
		}
	}
	if status, raw := getJSON(t, ts.URL+"/jobs/"+j.ID); status != http.StatusBadGateway {
		t.Errorf("poll with dead affinity worker: status %d, want 502: %s", status, raw)
	}
}
