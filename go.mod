module pushpull

go 1.24
