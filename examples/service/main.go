// Example service: a client of the HTTP serving front (pushpull serve).
//
// It uploads a locally generated RMAT workload in the portable edge-list
// format, lists the algorithm registry, then issues the same PageRank
// run twice — the first executes the kernels, the second must be
// answered from the engine's result cache (stats.cache_hit). It then
// fires a burst of concurrent identical requests (fresh options, so
// nothing is cached yet) to show single-flight dedup: exactly one must
// execute for real, the rest arrive coalesced or as cache hits. Finally
// it uploads a scratch graph and DELETEs it again, asserting runs
// against it 404 afterwards. The program exits non-zero when any of
// these contracts is violated, so CI can use it as the end-to-end serve
// smoke — and, run against a `-store`-backed server, as the upload phase
// of the persistence smoke (the "demo" graph is left registered):
//
//	pushpull serve -addr 127.0.0.1:18080 &
//	go run ./examples/service -addr http://127.0.0.1:18080
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"
	"time"

	"pushpull"
)

type runStats struct {
	Direction   string `json:"direction"`
	Iterations  int    `json:"iterations"`
	ElapsedNS   int64  `json:"elapsed_ns"`
	QueueWaitNS int64  `json:"queue_wait_ns"`
	CacheHit    bool   `json:"cache_hit"`
	Coalesced   bool   `json:"coalesced"`
}

type runResponse struct {
	Summary string   `json:"summary"`
	Stats   runStats `json:"stats"`
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "serving-front base URL")
	flag.Parse()
	client := &http.Client{Timeout: 2 * time.Minute}

	// Generate a small workload locally and upload it: the edge-list
	// header carries the graph kind, so the server reconstructs the same
	// Workload handle this process would run on.
	g, err := pushpull.RMAT(pushpull.DefaultRMAT(12, 8, 7))
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	var buf bytes.Buffer
	if err := pushpull.WriteWorkload(&buf, pushpull.NewWorkload(g)); err != nil {
		log.Fatalf("serialize: %v", err)
	}
	req, err := http.NewRequest(http.MethodPut, *addr+"/graphs/demo", &buf)
	if err != nil {
		log.Fatalf("upload request: %v", err)
	}
	body := do(client, req, http.StatusCreated)
	fmt.Printf("uploaded: %s", body)

	var algos []struct {
		Name string `json:"name"`
	}
	mustJSON(do(client, get(*addr+"/algorithms"), http.StatusOK), &algos)
	fmt.Printf("registry: %d algorithms\n", len(algos))

	// The same request twice: first a real run, then a cache hit.
	runBody := `{"graph": "demo", "algorithm": "pr", "options": {"direction": "pull", "iterations": 20}}`
	var first, second runResponse
	mustJSON(do(client, post(*addr+"/run", runBody), http.StatusOK), &first)
	fmt.Printf("run 1: %s (cache_hit=%v, %v)\n",
		first.Summary, first.Stats.CacheHit, time.Duration(first.Stats.ElapsedNS))
	mustJSON(do(client, post(*addr+"/run", runBody), http.StatusOK), &second)
	fmt.Printf("run 2: %s (cache_hit=%v)\n", second.Summary, second.Stats.CacheHit)

	if first.Stats.CacheHit {
		log.Fatal("first run was served from cache; expected a real run")
	}
	if !second.Stats.CacheHit {
		log.Fatal("second identical run was not served from cache")
	}

	// Single-flight: a burst of concurrent identical requests with fresh
	// options (nothing cached for them yet) must execute exactly once —
	// every other response arrives coalesced onto that run, or as a cache
	// hit if it was scheduled only after the run completed.
	const burst = 6
	burstBody := `{"graph": "demo", "algorithm": "pr", "options": {"direction": "push", "iterations": 30}}`
	var wg sync.WaitGroup
	results := make([]runResponse, burst)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mustJSON(do(client, post(*addr+"/run", burstBody), http.StatusOK), &results[i])
		}(i)
	}
	wg.Wait()
	var real, coalesced, hits int
	for _, r := range results {
		switch {
		case r.Stats.Coalesced:
			coalesced++
		case r.Stats.CacheHit:
			hits++
		default:
			real++
		}
	}
	fmt.Printf("burst of %d identical runs: %d executed, %d coalesced, %d cache hits\n",
		burst, real, coalesced, hits)
	if real != 1 {
		log.Fatalf("single-flight violated: %d of %d concurrent identical runs executed", real, burst)
	}

	// Async jobs: a batch submitted to POST /jobs returns immediately with
	// one batch ID; each job is then polled to a terminal state and the
	// result fetched separately — the same RunResponse a synchronous /run
	// would have returned.
	var batch struct {
		BatchID string `json:"batch_id"`
		Jobs    []struct {
			ID    string `json:"id"`
			State string `json:"state"`
		} `json:"jobs"`
	}
	batchBody := `{"batch": [
		{"graph": "demo", "algorithm": "pr", "priority": "high", "options": {"iterations": 10}},
		{"graph": "demo", "algorithm": "bfs", "options": {"source": 0}},
		{"graph": "demo", "algorithm": "tc", "priority": "low"}
	]}`
	mustJSON(do(client, post(*addr+"/jobs", batchBody), http.StatusAccepted), &batch)
	if batch.BatchID == "" || len(batch.Jobs) != 3 {
		log.Fatalf("batch submission returned %+v; want a batch ID and 3 jobs", batch)
	}
	fmt.Printf("batch %s accepted: %d jobs\n", batch.BatchID, len(batch.Jobs))
	for _, bj := range batch.Jobs {
		var j struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		deadline := time.Now().Add(time.Minute)
		for {
			mustJSON(do(client, get(*addr+"/jobs/"+bj.ID), http.StatusOK), &j)
			if j.State == "done" {
				break
			}
			if j.State == "failed" || j.State == "canceled" || j.State == "interrupted" {
				log.Fatalf("job %s ended %s (%s); want done", bj.ID, j.State, j.Error)
			}
			if time.Now().After(deadline) {
				log.Fatalf("job %s still %s after a minute", bj.ID, j.State)
			}
			time.Sleep(20 * time.Millisecond)
		}
		var jr runResponse
		mustJSON(do(client, get(*addr+"/jobs/"+bj.ID+"/result"), http.StatusOK), &jr)
		fmt.Printf("job %s: done — %s\n", bj.ID, jr.Summary)
	}

	// Graph lifecycle: a scratch upload can be DELETEd again, after which
	// runs against it 404. The "demo" graph stays registered — a
	// store-backed server persists it across restarts.
	var scratch bytes.Buffer
	tiny, err := pushpull.ErdosRenyi(64, 4, 7)
	if err != nil {
		log.Fatalf("generate scratch: %v", err)
	}
	if err := pushpull.WriteWorkload(&scratch, pushpull.NewWorkload(tiny)); err != nil {
		log.Fatalf("serialize scratch: %v", err)
	}
	req, err = http.NewRequest(http.MethodPut, *addr+"/graphs/scratch", &scratch)
	if err != nil {
		log.Fatalf("upload request: %v", err)
	}
	do(client, req, http.StatusCreated)
	req, err = http.NewRequest(http.MethodDelete, *addr+"/graphs/scratch", nil)
	if err != nil {
		log.Fatalf("delete request: %v", err)
	}
	do(client, req, http.StatusNoContent)
	do(client, post(*addr+"/run", `{"graph": "scratch", "algorithm": "pr"}`), http.StatusNotFound)
	fmt.Println("scratch graph uploaded, deleted, and verified gone")

	fmt.Printf("engine stats: %s", do(client, get(*addr+"/stats"), http.StatusOK))
}

func get(url string) *http.Request {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		log.Fatalf("request %s: %v", url, err)
	}
	return req
}

func post(url, body string) *http.Request {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader([]byte(body)))
	if err != nil {
		log.Fatalf("request %s: %v", url, err)
	}
	req.Header.Set("Content-Type", "application/json")
	return req
}

func do(client *http.Client, req *http.Request, wantStatus int) []byte {
	resp, err := client.Do(req)
	if err != nil {
		log.Fatalf("%s %s: %v", req.Method, req.URL, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatalf("%s %s: reading body: %v", req.Method, req.URL, err)
	}
	if resp.StatusCode != wantStatus {
		log.Fatalf("%s %s: status %d (want %d): %s", req.Method, req.URL, resp.StatusCode, wantStatus, body)
	}
	return body
}

func mustJSON(body []byte, into any) {
	if err := json.Unmarshal(body, into); err != nil {
		log.Fatalf("parsing %q: %v", body, err)
	}
}
