// Distributed: the §6.3 experiments as a user would run them — PageRank
// and triangle counting on a simulated cluster, comparing push-RMA,
// pull-RMA and Msg-Passing across rank counts, with remote-operation
// counters explaining the gaps. Everything — the shared-memory cross-check
// included — runs through the one pushpull.Run entrypoint: the distributed
// variants are registry algorithms (dist-pr-*, dist-tc-*) returning the
// same uniform Report, with Stats.Elapsed carrying the simulated makespan.
package main

import (
	"context"
	"fmt"
	"log"

	"pushpull"
)

func main() {
	ctx := context.Background()
	g, err := pushpull.RMAT(pushpull.DefaultRMAT(12, 12, 5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: n=%d m=%d\n", g.N(), g.UndirectedM())

	// Verify the distributed results against shared memory once.
	sm, err := pushpull.Run(ctx, g, "pr", pushpull.WithIterations(5))
	if err != nil {
		log.Fatal(err)
	}
	check, err := pushpull.Run(ctx, g, "dist-pr-mp",
		pushpull.WithRanks(8), pushpull.WithIterations(5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DM vs SM PageRank: max|Δ| = %.2g\n\n", pushpull.MaxDiff(check.Ranks(), sm.Ranks()))

	simMS := func(rep *pushpull.Report) float64 { return float64(rep.Stats.Elapsed) / 1e6 }

	fmt.Println("PageRank, simulated makespan per iteration [ms]:")
	fmt.Printf("%-6s %14s %14s %14s\n", "P", "Pushing-RMA", "Pulling-RMA", "Msg-Passing")
	const iters = 2
	for _, p := range []int{2, 8, 32, 128} {
		row := map[string]*pushpull.Report{}
		for _, algo := range []string{"dist-pr-push-rma", "dist-pr-pull-rma", "dist-pr-mp"} {
			rep, err := pushpull.Run(ctx, g, algo,
				pushpull.WithRanks(p), pushpull.WithIterations(iters))
			if err != nil {
				log.Fatal(err)
			}
			row[algo] = rep
		}
		fmt.Printf("%-6d %14.3f %14.3f %14.3f\n", p,
			simMS(row["dist-pr-push-rma"])/iters,
			simMS(row["dist-pr-pull-rma"])/iters,
			simMS(row["dist-pr-mp"])/iters)
		if p == 8 {
			fmt.Printf("       (P=8 remote ops: push %s accumulates, pull %s gets, msg %s messages)\n",
				pushpull.Human(row["dist-pr-push-rma"].Counters.Get(pushpull.RemoteAtomics)),
				pushpull.Human(row["dist-pr-pull-rma"].Counters.Get(pushpull.RemoteReads)),
				pushpull.Human(row["dist-pr-mp"].Counters.Get(pushpull.Messages)))
		}
	}

	fmt.Println("\nTriangle counting, simulated makespan [ms]:")
	fmt.Printf("%-6s %14s %14s %14s\n", "P", "Pushing-RMA", "Pulling-RMA", "Msg-Passing")
	for _, p := range []int{2, 8, 32} {
		row := map[string]*pushpull.Report{}
		for _, algo := range []string{"dist-tc-push-rma", "dist-tc-pull-rma", "dist-tc-mp"} {
			rep, err := pushpull.Run(ctx, g, algo, pushpull.WithRanks(p))
			if err != nil {
				log.Fatal(err)
			}
			row[algo] = rep
		}
		push, pull, msg := row["dist-tc-push-rma"], row["dist-tc-pull-rma"], row["dist-tc-mp"]
		if !pushpull.EqualCounts(push.Counts(), pull.Counts()) ||
			!pushpull.EqualCounts(push.Counts(), msg.Counts()) {
			log.Fatal("distributed TC variants disagree")
		}
		fmt.Printf("%-6d %14.3f %14.3f %14.3f\n", p, simMS(push), simMS(pull), simMS(msg))
	}
	fmt.Println("\nshapes (cf. Fig. 3): PR wants Msg-Passing (float accumulates are",
		"expensive); TC wants RMA (integer FAA has a fast path).")
}
