// Distributed: the §6.3 experiments as a user would run them — PageRank
// and triangle counting on a simulated cluster, comparing push-RMA,
// pull-RMA and Msg-Passing across rank counts, with remote-operation
// counters explaining the gaps. The shared-memory cross-check runs
// through the unified engine API; the cluster variants through its
// distributed facade.
package main

import (
	"context"
	"fmt"
	"log"

	"pushpull"
)

func main() {
	g, err := pushpull.RMAT(pushpull.DefaultRMAT(12, 12, 5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: n=%d m=%d\n", g.N(), g.UndirectedM())

	// Verify the distributed results against shared memory once.
	sm, err := pushpull.Run(context.Background(), g, "pr", pushpull.WithIterations(5))
	if err != nil {
		log.Fatal(err)
	}
	check, err := pushpull.DistPRMsgPassing(g, pushpull.DistPRConfig{Ranks: 8, Iterations: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DM vs SM PageRank: max|Δ| = %.2g\n\n", pushpull.MaxDiff(check.Values, sm.Ranks()))

	fmt.Println("PageRank, simulated makespan per iteration [ms]:")
	fmt.Printf("%-6s %14s %14s %14s\n", "P", "Pushing-RMA", "Pulling-RMA", "Msg-Passing")
	const iters = 2
	for _, p := range []int{2, 8, 32, 128} {
		push, err := pushpull.DistPRPushRMA(g, pushpull.DistPRConfig{Ranks: p, Iterations: iters})
		if err != nil {
			log.Fatal(err)
		}
		pull, err := pushpull.DistPRPullRMA(g, pushpull.DistPRConfig{Ranks: p, Iterations: iters})
		if err != nil {
			log.Fatal(err)
		}
		msg, err := pushpull.DistPRMsgPassing(g, pushpull.DistPRConfig{Ranks: p, Iterations: iters})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6d %14.3f %14.3f %14.3f\n", p,
			push.SimTime/iters/1e6, pull.SimTime/iters/1e6, msg.SimTime/iters/1e6)
		if p == 8 {
			fmt.Printf("       (P=8 remote ops: push %s accumulates, pull %s gets, msg %s messages)\n",
				pushpull.Human(push.Report.Get(pushpull.RemoteAtomics)),
				pushpull.Human(pull.Report.Get(pushpull.RemoteReads)),
				pushpull.Human(msg.Report.Get(pushpull.Messages)))
		}
	}

	fmt.Println("\nTriangle counting, simulated makespan [ms]:")
	fmt.Printf("%-6s %14s %14s %14s\n", "P", "Pushing-RMA", "Pulling-RMA", "Msg-Passing")
	for _, p := range []int{2, 8, 32} {
		push, err := pushpull.DistTCPushRMA(g, pushpull.DistTCConfig{Ranks: p})
		if err != nil {
			log.Fatal(err)
		}
		pull, err := pushpull.DistTCPullRMA(g, pushpull.DistTCConfig{Ranks: p})
		if err != nil {
			log.Fatal(err)
		}
		msg, err := pushpull.DistTCMsgPassing(g, pushpull.DistTCConfig{Ranks: p})
		if err != nil {
			log.Fatal(err)
		}
		if !pushpull.EqualCounts(push.Counts, pull.Counts) || !pushpull.EqualCounts(push.Counts, msg.Counts) {
			log.Fatal("distributed TC variants disagree")
		}
		fmt.Printf("%-6d %14.3f %14.3f %14.3f\n", p,
			push.SimTime/1e6, pull.SimTime/1e6, msg.SimTime/1e6)
	}
	fmt.Println("\nshapes (cf. Fig. 3): PR wants Msg-Passing (float accumulates are",
		"expensive); TC wants RMA (integer FAA has a fast path).")
}
