// Distributed: the §6.3 experiments as a user would run them — PageRank
// and triangle counting on a simulated cluster, comparing push-RMA,
// pull-RMA and Msg-Passing across rank counts, with remote-operation
// counters explaining the gaps.
package main

import (
	"fmt"
	"log"

	"pushpull/internal/algo/pr"
	"pushpull/internal/counters"
	"pushpull/internal/dm/dalgo"
	"pushpull/internal/gen"
)

func main() {
	g, err := gen.RMAT(gen.DefaultRMAT(12, 12, 5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: n=%d m=%d\n", g.N(), g.UndirectedM())

	// Verify the distributed results against shared memory once.
	want := pr.Sequential(g, pr.Options{Iterations: 5, Damping: 0.85})
	check, err := dalgo.PRMsgPassing(g, dalgo.PRConfig{Ranks: 8, Iterations: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DM vs SM PageRank: max|Δ| = %.2g\n\n", dalgo.MaxDiff(check.Values, want))

	fmt.Println("PageRank, simulated makespan per iteration [ms]:")
	fmt.Printf("%-6s %14s %14s %14s\n", "P", "Pushing-RMA", "Pulling-RMA", "Msg-Passing")
	const iters = 2
	for _, p := range []int{2, 8, 32, 128} {
		push, err := dalgo.PRPushRMA(g, dalgo.PRConfig{Ranks: p, Iterations: iters})
		if err != nil {
			log.Fatal(err)
		}
		pull, err := dalgo.PRPullRMA(g, dalgo.PRConfig{Ranks: p, Iterations: iters})
		if err != nil {
			log.Fatal(err)
		}
		msg, err := dalgo.PRMsgPassing(g, dalgo.PRConfig{Ranks: p, Iterations: iters})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6d %14.3f %14.3f %14.3f\n", p,
			push.SimTime/iters/1e6, pull.SimTime/iters/1e6, msg.SimTime/iters/1e6)
		if p == 8 {
			fmt.Printf("       (P=8 remote ops: push %s accumulates, pull %s gets, msg %s messages)\n",
				counters.Human(push.Report.Get(counters.RemoteAtomics)),
				counters.Human(pull.Report.Get(counters.RemoteReads)),
				counters.Human(msg.Report.Get(counters.Messages)))
		}
	}

	fmt.Println("\nTriangle counting, simulated makespan [ms]:")
	fmt.Printf("%-6s %14s %14s %14s\n", "P", "Pushing-RMA", "Pulling-RMA", "Msg-Passing")
	for _, p := range []int{2, 8, 32} {
		push, err := dalgo.TCPushRMA(g, dalgo.TCConfig{Ranks: p})
		if err != nil {
			log.Fatal(err)
		}
		pull, err := dalgo.TCPullRMA(g, dalgo.TCConfig{Ranks: p})
		if err != nil {
			log.Fatal(err)
		}
		msg, err := dalgo.TCMsgPassing(g, dalgo.TCConfig{Ranks: p})
		if err != nil {
			log.Fatal(err)
		}
		if !dalgo.EqualCounts(push.Counts, pull.Counts) || !dalgo.EqualCounts(push.Counts, msg.Counts) {
			log.Fatal("distributed TC variants disagree")
		}
		fmt.Printf("%-6d %14.3f %14.3f %14.3f\n", p,
			push.SimTime/1e6, pull.SimTime/1e6, msg.SimTime/1e6)
	}
	fmt.Println("\nshapes (cf. Fig. 3): PR wants Msg-Passing (float accumulates are",
		"expensive); TC wants RMA (integer FAA has a fast path).")
}
