// Quickstart: build a small social graph, run PageRank in both update
// directions, and see that they agree while synchronizing differently —
// the paper's push-pull dichotomy in thirty lines.
package main

import (
	"fmt"
	"log"

	"pushpull/internal/algo/pr"
	"pushpull/internal/gen"
)

func main() {
	// A power-law social network: 4096 vertices, ≈8 edges per vertex.
	g, err := gen.RMAT(gen.DefaultRMAT(12, 8, 1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: n=%d m=%d d̂=%d\n", g.N(), g.UndirectedM(), g.MaxDegree())

	opt := pr.Options{Iterations: 20}

	// Push: every vertex scatters rank to its neighbors — atomics on the
	// shared next-rank vector.
	push, pushStats := pr.Push(g, opt)

	// Pull: every vertex gathers from its neighbors — no synchronization,
	// but two random reads per edge.
	pull, pullStats := pr.Pull(g, opt)

	fmt.Printf("push: %v/iter   pull: %v/iter   max|Δ| = %.2g\n",
		pushStats.AvgIteration(), pullStats.AvgIteration(), pr.MaxDiff(push, pull))

	best, bestRank := 0, 0.0
	for v, r := range push {
		if r > bestRank {
			best, bestRank = v, r
		}
	}
	fmt.Printf("highest-ranked vertex: %d (rank %.5f, degree %d)\n",
		best, bestRank, g.Degree(int32(best)))
}
