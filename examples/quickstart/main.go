// Quickstart: build a small social graph, run PageRank in both update
// directions through the unified engine API, and see that they agree
// while synchronizing differently — the paper's push-pull dichotomy in
// thirty lines.
package main

import (
	"context"
	"fmt"
	"log"

	"pushpull"
)

func main() {
	// A power-law social network: 4096 vertices, ≈8 edges per vertex.
	g, err := pushpull.RMAT(pushpull.DefaultRMAT(12, 8, 1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: n=%d m=%d d̂=%d\n", g.N(), g.UndirectedM(), g.MaxDegree())

	ctx := context.Background()

	// Push: every vertex scatters rank to its neighbors — atomics on the
	// shared next-rank vector.
	push, err := pushpull.Run(ctx, g, "pr",
		pushpull.WithDirection(pushpull.Push), pushpull.WithIterations(20))
	if err != nil {
		log.Fatal(err)
	}

	// Pull: every vertex gathers from its neighbors — no synchronization,
	// but two random reads per edge.
	pull, err := pushpull.Run(ctx, g, "pr",
		pushpull.WithDirection(pushpull.Pull), pushpull.WithIterations(20))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("push: %v/iter   pull: %v/iter   max|Δ| = %.2g\n",
		push.Stats.AvgIteration(), pull.Stats.AvgIteration(),
		pushpull.MaxDiff(push.Ranks(), pull.Ranks()))
	fmt.Printf("rank mass Σ = %.4f (≈1 when no vertex is isolated)\n",
		pushpull.SumFloats(push.Ranks()))

	best, bestRank := 0, 0.0
	for v, r := range push.Ranks() {
		if r > bestRank {
			best, bestRank = v, r
		}
	}
	fmt.Printf("highest-ranked vertex: %d (rank %.5f, degree %d)\n",
		best, bestRank, g.Degree(int32(best)))
}
