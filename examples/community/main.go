// Community: social-network analytics on a planted-community graph —
// triangle counting (push vs pull), Boman coloring with the paper's
// acceleration strategies (FE, GS, GrS, CR), and betweenness centrality
// with per-phase timings, mirroring §6.1–§6.2.
package main

import (
	"fmt"
	"log"

	"pushpull/internal/algo/bc"
	"pushpull/internal/algo/bfs"
	"pushpull/internal/algo/gc"
	"pushpull/internal/algo/tc"
	"pushpull/internal/core"
	"pushpull/internal/gen"
	"pushpull/internal/graph"
)

func main() {
	const threads = 4
	g, err := gen.Community(20000, 200, 7, 1.7, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("community graph: n=%d m=%d d̄=%.1f\n", g.N(), g.UndirectedM(), g.AvgDegree())

	// Triangle counting: pulling needs no atomics and wins (§6.1).
	tcOpt := tc.Options{}
	tcOpt.Threads = threads
	pushCounts, pushStats := tc.Push(g, tcOpt)
	pullCounts, pullStats := tc.Pull(g, tcOpt)
	fmt.Printf("triangles: %d  (push %v, pull %v, equal=%v)\n",
		tc.Total(pullCounts), pushStats.Elapsed, pullStats.Elapsed,
		tc.Equal(pushCounts, pullCounts))

	// Coloring with every strategy of §5.
	part := graph.NewPartition(g.N(), threads)
	gcOpt := gc.Options{}
	gcOpt.Threads = threads
	push, err := gc.Push(g, part, gcOpt)
	if err != nil {
		log.Fatal(err)
	}
	feOpt := gc.Options{MaxIters: 4096}
	feOpt.Threads = threads
	fe := gc.FrontierExploit(g, feOpt, core.Push, nil)
	gs := gc.GS(g, feOpt, core.Push, 1.0)
	grs := gc.GrS(g, feOpt, core.Push, 0.1)
	cr, err := gc.ConflictRemoval(g, part, gcOpt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coloring iterations: Boman-push=%d  +FE=%d  +GS=%d  +GrS=%d  CR=%d\n",
		push.Iterations, fe.Iterations, gs.Iterations, grs.Iterations, cr.Iterations)
	for name, res := range map[string]*gc.Result{"push": push, "FE": fe, "GrS": grs, "CR": cr} {
		if err := gc.Validate(g, res.Colors); err != nil {
			log.Fatalf("%s coloring invalid: %v", name, err)
		}
	}
	fmt.Printf("colors used: push=%d FE=%d GrS=%d CR=%d\n",
		push.NumColors, fe.NumColors, grs.NumColors, cr.NumColors)

	// Betweenness over sampled sources: both phases, push vs pull (§6.1).
	sources := []graph.V{0, 100, 5000, 12345}
	for _, mode := range []bfs.Mode{bfs.ForcePush, bfs.ForcePull} {
		opt := bc.Options{Sources: sources, Mode: mode}
		opt.Threads = threads
		res := bc.Run(g, opt)
		fmt.Printf("BC %-5v: phase1 %v, phase2 %v\n", mode, res.Phase1, res.Phase2)
	}
}
