// Community: social-network analytics on a planted-community graph
// through the unified engine API — triangle counting (push vs pull),
// Boman coloring with the paper's acceleration strategies (FE, GS, GrS,
// CR), and betweenness centrality with per-phase timings, mirroring
// §6.1–§6.2.
package main

import (
	"context"
	"fmt"
	"log"

	"pushpull"
)

func main() {
	const threads = 4
	g, err := pushpull.Community(20000, 200, 7, 1.7, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("community graph: n=%d m=%d d̄=%.1f\n", g.N(), g.UndirectedM(), g.AvgDegree())

	ctx := context.Background()
	run := func(algo string, opts ...pushpull.Option) *pushpull.Report {
		rep, err := pushpull.Run(ctx, g, algo, append(opts, pushpull.WithThreads(threads))...)
		if err != nil {
			log.Fatal(err)
		}
		return rep
	}

	// Triangle counting: pulling needs no atomics and wins (§6.1).
	tcPush := run("tc", pushpull.WithDirection(pushpull.Push))
	tcPull := run("tc", pushpull.WithDirection(pushpull.Pull))
	fmt.Printf("triangles: %d  (push %v, pull %v, equal=%v)\n",
		pushpull.TriangleTotal(tcPull.Counts()), tcPush.Stats.Elapsed, tcPull.Stats.Elapsed,
		pushpull.EqualCounts(tcPush.Counts(), tcPull.Counts()))

	// Coloring with every strategy of §5, each one engine run.
	push := run("gc", pushpull.WithDirection(pushpull.Push))
	fe := run("gc-fe", pushpull.WithDirection(pushpull.Push), pushpull.WithMaxIters(4096))
	gs := run("gc", pushpull.WithDirection(pushpull.Push), pushpull.WithMaxIters(4096),
		pushpull.WithSwitchPolicy(&pushpull.GenericSwitch{Threshold: 1.0}))
	grs := run("gc", pushpull.WithDirection(pushpull.Push), pushpull.WithMaxIters(4096),
		pushpull.WithSwitchPolicy(&pushpull.GreedySwitch{Fraction: 0.1, Total: g.N()}))
	cr := run("gc-cr")
	fmt.Printf("coloring iterations: Boman-push=%d  +FE=%d  +GS=%d  +GrS=%d  CR=%d\n",
		push.Stats.Iterations, fe.Stats.Iterations, gs.Stats.Iterations,
		grs.Stats.Iterations, cr.Stats.Iterations)
	for name, rep := range map[string]*pushpull.Report{"push": push, "FE": fe, "GrS": grs, "CR": cr} {
		if err := pushpull.ValidateColoring(g, rep.Colors()); err != nil {
			log.Fatalf("%s coloring invalid: %v", name, err)
		}
	}
	fmt.Printf("colors used: push=%d FE=%d GrS=%d CR=%d\n",
		pushpull.CountColors(push.Colors()), pushpull.CountColors(fe.Colors()),
		pushpull.CountColors(grs.Colors()), pushpull.CountColors(cr.Colors()))

	// Betweenness over sampled sources: both phases, push vs pull (§6.1).
	sources := []pushpull.V{0, 100, 5000, 12345}
	for _, dir := range []pushpull.Direction{pushpull.Push, pushpull.Pull} {
		rep := run("bc", pushpull.WithDirection(dir), pushpull.WithSources(sources))
		res := rep.Result.(*pushpull.BCResult)
		fmt.Printf("BC %-5v: phase1 %v, phase2 %v\n", dir, res.Phase1, res.Phase2)
	}
}
