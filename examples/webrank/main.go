// Webrank: ranking a web-scale-shaped graph with all three PageRank
// variants — push, pull, and push with Partition-Awareness (§5) — and
// reading the synchronization bill from the event counters, all through
// the unified engine API.
//
// This is the paper's Figure 6a / Table 1 workflow as a library user would
// run it: measure first, then choose the direction for your graph shape.
package main

import (
	"context"
	"fmt"
	"log"

	"pushpull"
)

func main() {
	const threads = 4
	g, err := pushpull.RMAT(pushpull.DefaultRMAT(13, 16, 7)) // dense, skewed: orc-like
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("web-like graph: n=%d m=%d d̄=%.1f\n", g.N(), g.UndirectedM(), g.AvgDegree())

	// The Workload handle owns the expensive derived state: the §5 PA
	// split is built once on first use and shared by every timed and
	// probed run below — no more hand-rolled BuildPA plumbing.
	wl := pushpull.Partitioned(g, threads)

	ctx := context.Background()
	run := func(opts ...pushpull.Option) *pushpull.Report {
		rep, err := pushpull.Run(ctx, wl, "pr", append(opts,
			pushpull.WithThreads(threads), pushpull.WithIterations(10))...)
		if err != nil {
			log.Fatal(err)
		}
		return rep
	}

	push := run(pushpull.WithDirection(pushpull.Push))
	pull := run(pushpull.WithDirection(pushpull.Pull))
	pa := run(pushpull.WithPartitionAwareness())
	paGraph := wl.PA(threads) // the memoized split the engine just used
	fmt.Printf("%-22s %v/iter\n", "Pushing:", push.Stats.AvgIteration())
	fmt.Printf("%-22s %v/iter\n", "Pulling:", pull.Stats.AvgIteration())
	fmt.Printf("%-22s %v/iter  (remote edges: %d of %d)\n",
		"Pushing+PA:", pa.Stats.AvgIteration(), paGraph.RemoteEdges(), g.M())

	// Count the synchronization each direction actually issues: the same
	// runs again, instrumented.
	profile := func(opts ...pushpull.Option) *pushpull.CounterReport {
		rep, err := pushpull.Run(ctx, wl, "pr", append(opts,
			pushpull.WithThreads(threads), pushpull.WithIterations(1),
			pushpull.WithProbes())...)
		if err != nil {
			log.Fatal(err)
		}
		return rep.Counters
	}
	pushRep := profile(pushpull.WithDirection(pushpull.Push))
	paRep := profile(pushpull.WithPartitionAwareness())
	pullRep := profile(pushpull.WithDirection(pushpull.Pull))
	fmt.Printf("atomics/iteration:   push=%s  push+PA=%s  pull=%s\n",
		pushpull.Human(pushRep.Get(pushpull.Atomics)),
		pushpull.Human(paRep.Get(pushpull.Atomics)),
		pushpull.Human(pullRep.Get(pushpull.Atomics)))
	fmt.Printf("reads/iteration:     push=%s  push+PA=%s  pull=%s\n",
		pushpull.Human(pushRep.Get(pushpull.Reads)),
		pushpull.Human(paRep.Get(pushpull.Reads)),
		pushpull.Human(pullRep.Get(pushpull.Reads)))

	ranks := push.Ranks()
	top := 0
	for v, r := range ranks {
		if r > ranks[top] {
			top = v
		}
	}
	fmt.Printf("top page: vertex %d with rank %.6f\n", top, ranks[top])
}
