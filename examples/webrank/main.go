// Webrank: ranking a web-scale-shaped graph with all three PageRank
// variants — push, pull, and push with Partition-Awareness (§5) — and
// reading the synchronization bill from the event counters.
//
// This is the paper's Figure 6a / Table 1 workflow as a library user would
// run it: measure first, then choose the direction for your graph shape.
package main

import (
	"fmt"
	"log"

	"pushpull/internal/algo/pr"
	"pushpull/internal/core"
	"pushpull/internal/counters"
	"pushpull/internal/gen"
	"pushpull/internal/graph"
)

func main() {
	const threads = 4
	g, err := gen.RMAT(gen.DefaultRMAT(13, 16, 7)) // dense, skewed: orc-like
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("web-like graph: n=%d m=%d d̄=%.1f\n", g.N(), g.UndirectedM(), g.AvgDegree())

	opt := pr.Options{Iterations: 10}
	opt.Threads = threads

	ranks, pushStats := pr.Push(g, opt)
	_, pullStats := pr.Pull(g, opt)

	pa := graph.BuildPA(g, graph.NewPartition(g.N(), threads))
	_, paStats := pr.PushPA(pa, opt)
	fmt.Printf("%-22s %v/iter\n", "Pushing:", pushStats.AvgIteration())
	fmt.Printf("%-22s %v/iter\n", "Pulling:", pullStats.AvgIteration())
	fmt.Printf("%-22s %v/iter  (remote edges: %d of %d)\n",
		"Pushing+PA:", paStats.AvgIteration(), pa.RemoteEdges(), g.M())

	// Count the synchronization each direction actually issues.
	profile := func(run func(prof core.Profile) error) counters.Report {
		prof, grp := core.CountingProfile(threads)
		if err := run(prof); err != nil {
			log.Fatal(err)
		}
		return grp.Report()
	}
	popt := pr.Options{Iterations: 1}
	pushRep := profile(func(prof core.Profile) error {
		_, err := pr.PushProfiled(g, popt, prof, nil)
		return err
	})
	paRep := profile(func(prof core.Profile) error {
		_, err := pr.PushPAProfiled(pa, popt, prof, nil)
		return err
	})
	pullRep := profile(func(prof core.Profile) error {
		_, err := pr.PullProfiled(g, popt, prof, nil)
		return err
	})
	fmt.Printf("atomics/iteration:   push=%s  push+PA=%s  pull=%s\n",
		counters.Human(pushRep.Get(counters.Atomics)),
		counters.Human(paRep.Get(counters.Atomics)),
		counters.Human(pullRep.Get(counters.Atomics)))
	fmt.Printf("reads/iteration:     push=%s  push+PA=%s  pull=%s\n",
		counters.Human(pushRep.Get(counters.Reads)),
		counters.Human(paRep.Get(counters.Reads)),
		counters.Human(pullRep.Get(counters.Reads)))

	top := 0
	for v, r := range ranks {
		if r > ranks[top] {
			top = v
		}
	}
	fmt.Printf("top page: vertex %d with rank %.6f\n", top, ranks[top])
}
