// Roadnav: navigation-style workloads on a road network through the
// unified engine API — Δ-stepping shortest paths in both directions, the
// Δ parameter sweep of Figure 2c, and direction-optimizing BFS, on the
// high-diameter low-degree graph class where pushing shines (§6.1).
package main

import (
	"context"
	"fmt"
	"log"

	"pushpull"
)

func main() {
	// A 180×180 road grid with some missing segments, euclidean-ish
	// weights in [1, 10).
	g, err := pushpull.RoadGrid(180, 180, 0.85, 3)
	if err != nil {
		log.Fatal(err)
	}
	g = pushpull.WithUniformWeights(g, 1, 10, 4)
	// The Weighted handle declares the kind (sssp requires weights — the
	// engine checks it up front) and memoizes the Table 2 stats.
	wl := pushpull.Weighted(g)
	stats := wl.Stats()
	fmt.Printf("road network (%s): n=%d m=%d d̄=%.2f D≈%d\n",
		wl.Kind(), stats.N, stats.M, stats.AvgDeg, stats.Diameter)

	ctx := context.Background()
	sssp := func(opts ...pushpull.Option) *pushpull.SSSPResult {
		rep, err := pushpull.Run(ctx, wl, "sssp", append(opts, pushpull.WithSource(0))...)
		if err != nil {
			log.Fatal(err)
		}
		return rep.Result.(*pushpull.SSSPResult)
	}

	push := sssp(pushpull.WithDirection(pushpull.Push))
	pull := sssp(pushpull.WithDirection(pushpull.Pull))
	fmt.Printf("Δ-stepping: push %v (%d epochs, %d inner iters), pull %v (%d epochs, %d inner iters)\n",
		push.Stats.Elapsed, push.Epochs, push.Inner,
		pull.Stats.Elapsed, pull.Epochs, pull.Inner)
	fmt.Printf("agreement: max|Δdist| = %.2g\n", pushpull.MaxDiff(push.Dist, pull.Dist))

	fmt.Println("Δ sweep (total time; larger Δ narrows the push/pull gap):")
	for _, delta := range []float64{2, 8, 32, 128, 512} {
		p1 := sssp(pushpull.WithDirection(pushpull.Push), pushpull.WithDelta(delta))
		p2 := sssp(pushpull.WithDirection(pushpull.Pull), pushpull.WithDelta(delta))
		fmt.Printf("  Δ=%-6.0f push %-14v pull %-14v\n", delta, p1.Stats.Elapsed, p2.Stats.Elapsed)
	}

	// BFS: on road networks top-down (push) wins; Auto follows it.
	for _, dir := range []pushpull.Direction{pushpull.Push, pushpull.Pull, pushpull.Auto} {
		rep, err := pushpull.Run(ctx, g, "bfs",
			pushpull.WithSource(0), pushpull.WithDirection(dir))
		if err != nil {
			log.Fatal(err)
		}
		tree := rep.Tree()
		far := int32(0)
		for _, l := range tree.Level {
			if l > far {
				far = l
			}
		}
		fmt.Printf("BFS %-5v: %-14v reached %d vertices, depth %d\n",
			dir, rep.Stats.Elapsed, tree.Reached(), far)
	}
}
