// Roadnav: navigation-style workloads on a road network — Δ-stepping
// shortest paths in both directions, the Δ parameter sweep of Figure 2c,
// and direction-optimizing BFS, on the high-diameter low-degree graph
// class where pushing shines (§6.1).
package main

import (
	"fmt"
	"log"

	"pushpull/internal/algo/bfs"
	"pushpull/internal/algo/sssp"
	"pushpull/internal/core"
	"pushpull/internal/gen"
	"pushpull/internal/graph"
)

func main() {
	// A 180×180 road grid with some missing segments, euclidean-ish
	// weights in [1, 10).
	g, err := gen.RoadGrid(180, 180, 0.85, 3)
	if err != nil {
		log.Fatal(err)
	}
	g = gen.WithUniformWeights(g, 1, 10, 4)
	stats := graph.ComputeStats(g)
	fmt.Printf("road network: n=%d m=%d d̄=%.2f D≈%d\n",
		stats.N, stats.M, stats.AvgDeg, stats.Diameter)

	opt := sssp.Options{Source: 0}
	push := sssp.Push(g, opt)
	pull := sssp.Pull(g, opt)
	fmt.Printf("Δ-stepping: push %v (%d epochs, %d inner iters), pull %v (%d epochs, %d inner iters)\n",
		push.Stats.Elapsed, push.Epochs, push.Inner,
		pull.Stats.Elapsed, pull.Epochs, pull.Inner)
	fmt.Printf("agreement: max|Δdist| = %.2g\n", sssp.MaxDiff(push.Dist, pull.Dist))

	fmt.Println("Δ sweep (total time; larger Δ narrows the push/pull gap):")
	for _, delta := range []float64{2, 8, 32, 128, 512} {
		o := sssp.Options{Source: 0, Delta: delta}
		p1 := sssp.Push(g, o)
		p2 := sssp.Pull(g, o)
		fmt.Printf("  Δ=%-6.0f push %-14v pull %-14v\n", delta, p1.Stats.Elapsed, p2.Stats.Elapsed)
	}

	// BFS: on road networks top-down (push) wins; Auto follows it.
	for _, mode := range []bfs.Mode{bfs.ForcePush, bfs.ForcePull, bfs.Auto} {
		tree, st := bfs.TraverseFrom(g, 0, mode, core.Options{})
		far := int32(0)
		for _, l := range tree.Level {
			if l > far {
				far = l
			}
		}
		fmt.Printf("BFS %-5v: %-14v reached %d vertices, depth %d\n",
			mode, st.Elapsed, tree.Reached(), far)
	}
}
