// Example cluster: a client of the cluster tier (pushpull route).
//
// It drives the router exactly like examples/service drives a single
// worker — same API, that is the point — and asserts the cluster
// contracts on top: the uploaded graph is replicated (the router's
// catalog lists its replica set), routed runs come back with the serving
// worker named in X-Cluster-Worker, a repeated identical run is answered
// from whichever replica's result cache owns it, re-uploading different
// content under the same name yields fresh results (cross-process
// invalidation), and a DELETE leaves the graph 404 on the router. The
// program exits non-zero when any contract is violated, so CI uses it as
// the upload-and-verify phase of the cluster smoke (the "demo" graph is
// left registered for the failover phase the CI script runs by killing
// the primary worker):
//
//	pushpull serve -addr 127.0.0.1:18091 &
//	pushpull serve -addr 127.0.0.1:18092 &
//	pushpull route -addr 127.0.0.1:18090 \
//	    -workers http://127.0.0.1:18091,http://127.0.0.1:18092 &
//	go run ./examples/cluster -addr http://127.0.0.1:18090
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"time"

	"pushpull"
)

type placement struct {
	Name     string   `json:"name"`
	ID       string   `json:"id"`
	N        int      `json:"n"`
	M        int64    `json:"m"`
	Replicas []string `json:"replicas"`
	Epoch    uint64   `json:"epoch"`
}

type runStats struct {
	Direction string `json:"direction"`
	CacheHit  bool   `json:"cache_hit"`
	Coalesced bool   `json:"coalesced"`
}

type runResponse struct {
	Summary string   `json:"summary"`
	Counts  []int64  `json:"counts"`
	Stats   runStats `json:"stats"`
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8090", "router base URL")
	flag.Parse()
	client := &http.Client{Timeout: 2 * time.Minute}

	// Upload a locally generated workload through the router; the
	// response is the placement record, not just the graph info.
	g, err := pushpull.RMAT(pushpull.DefaultRMAT(12, 8, 7))
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	pl := upload(client, *addr, "demo", g)
	fmt.Printf("uploaded demo: n=%d m=%d epoch=%d replicas=%v\n", pl.N, pl.M, pl.Epoch, pl.Replicas)
	if len(pl.Replicas) == 0 {
		log.Fatal("router reported an empty replica set")
	}

	// Route a run and note which worker served it.
	resp, worker := run(client, *addr, "demo", "pr", http.StatusOK)
	fmt.Printf("pr via %s: %s\n", worker, resp.Summary)

	// The identical run again: some replica (often the same one) owns
	// the cached result now. The cluster tier must keep answering —
	// cache hit or fresh run are both legal, failure is not.
	resp, worker = run(client, *addr, "demo", "pr", http.StatusOK)
	fmt.Printf("pr again via %s: cache_hit=%v\n", worker, resp.Stats.CacheHit)

	// Cross-process invalidation: re-PUT different content under the
	// same name, then verify a routed run reflects the new graph.
	g2, err := pushpull.RMAT(pushpull.DefaultRMAT(12, 8, 99))
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	before, _ := run(client, *addr, "demo", "tc", http.StatusOK)
	pl2 := upload(client, *addr, "demo", g2)
	if pl2.Epoch <= pl.Epoch {
		log.Fatalf("re-upload did not advance the epoch: %d -> %d", pl.Epoch, pl2.Epoch)
	}
	after, _ := run(client, *addr, "demo", "tc", http.StatusOK)
	if after.Stats.CacheHit {
		log.Fatal("run after re-upload was served a stale cached result")
	}
	fmt.Printf("re-upload invalidated: tc %s -> %s (epoch %d)\n",
		total(before.Counts), total(after.Counts), pl2.Epoch)

	// Restore the first graph so the CI failover phase runs against the
	// content this program reported, then verify the lifecycle on a
	// scratch name: upload, delete, 404.
	upload(client, *addr, "demo", g)
	upload(client, *addr, "scratch", g2)
	del, err := http.NewRequest(http.MethodDelete, *addr+"/graphs/scratch", nil)
	if err != nil {
		log.Fatalf("delete: %v", err)
	}
	dresp, err := client.Do(del)
	if err != nil {
		log.Fatalf("delete: %v", err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		log.Fatalf("DELETE scratch: got %d, want 204", dresp.StatusCode)
	}
	run(client, *addr, "scratch", "pr", http.StatusNotFound)
	fmt.Println("lifecycle ok: scratch deleted cluster-wide, runs 404")
}

func upload(client *http.Client, addr, name string, g *pushpull.Graph) placement {
	var buf bytes.Buffer
	if err := pushpull.WriteWorkload(&buf, pushpull.NewWorkload(g)); err != nil {
		log.Fatalf("encode: %v", err)
	}
	req, err := http.NewRequest(http.MethodPut, addr+"/graphs/"+name, &buf)
	if err != nil {
		log.Fatalf("upload %s: %v", name, err)
	}
	resp, err := client.Do(req)
	if err != nil {
		log.Fatalf("upload %s: %v", name, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		log.Fatalf("upload %s: got %d: %s", name, resp.StatusCode, body)
	}
	var pl placement
	if err := json.Unmarshal(body, &pl); err != nil {
		log.Fatalf("upload %s: parsing placement: %v", name, err)
	}
	return pl
}

func run(client *http.Client, addr, graph, algo string, want int) (runResponse, string) {
	body, _ := json.Marshal(map[string]any{"graph": graph, "algorithm": algo})
	resp, err := client.Post(addr+"/run", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatalf("run %s/%s: %v", graph, algo, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != want {
		log.Fatalf("run %s/%s: got %d, want %d: %s", graph, algo, resp.StatusCode, want, raw)
	}
	var rr runResponse
	if want == http.StatusOK {
		if err := json.Unmarshal(raw, &rr); err != nil {
			log.Fatalf("run %s/%s: parsing response: %v", graph, algo, err)
		}
	}
	return rr, resp.Header.Get("X-Cluster-Worker")
}

func total(counts []int64) string {
	var sum int64
	for _, c := range counts {
		sum += c
	}
	return fmt.Sprintf("%d triangles", sum/3)
}
