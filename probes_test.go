package pushpull_test

// Probe-parity tests: every shared-memory registry algorithm must support
// WithProbes, return non-trivial counters, and agree with its un-probed
// run; the switching traces must report what actually ran.

import (
	"context"
	"strings"
	"testing"
	"time"

	"pushpull"
	"pushpull/internal/algo/bc"
	"pushpull/internal/algo/gc"
	"pushpull/internal/algo/mst"
	"pushpull/internal/algo/pr"
	"pushpull/internal/algo/sssp"
	"pushpull/internal/algo/tc"
)

// TestProbesAllAlgorithms is the acceptance sweep: WithProbes alone (plus
// the minimal per-algorithm knobs) succeeds for all nine shared-memory
// algorithms with a non-nil counter report and non-zero reads, and the
// probed payload matches the un-probed run wherever the algorithm is
// deterministic.
func TestProbesAllAlgorithms(t *testing.T) {
	plain := testGraph(t)
	weighted := weightedGraph(t)
	cases := []struct {
		algo string
		g    *pushpull.Graph
		opts []pushpull.Option
		// check compares the probed report against the un-probed one.
		check func(t *testing.T, probed, ref *pushpull.Report)
	}{
		{"pr", plain, []pushpull.Option{pushpull.WithIterations(3)},
			func(t *testing.T, probed, ref *pushpull.Report) {
				if d := pr.MaxDiff(probed.Ranks(), ref.Ranks()); d > 1e-12 {
					t.Errorf("probed pr diverges by %g", d)
				}
			}},
		{"tc", plain, nil,
			func(t *testing.T, probed, ref *pushpull.Report) {
				if !tc.Equal(probed.Counts(), ref.Counts()) {
					t.Error("probed tc counts diverge")
				}
			}},
		{"bfs", plain, []pushpull.Option{pushpull.WithSource(0)},
			func(t *testing.T, probed, ref *pushpull.Report) {
				pt, rt := probed.Tree(), ref.Tree()
				for v := range pt.Level {
					if pt.Level[v] != rt.Level[v] {
						t.Fatalf("probed bfs level[%d] = %d, want %d", v, pt.Level[v], rt.Level[v])
					}
				}
			}},
		{"sssp", weighted, []pushpull.Option{pushpull.WithSource(0)},
			func(t *testing.T, probed, ref *pushpull.Report) {
				// Auto probes run the push baseline; both compute exact
				// Δ-stepping distances.
				want := sssp.Dijkstra(weighted, 0)
				if d := pushpull.MaxDiff(probed.Ranks(), want); d > 1e-9 {
					t.Errorf("probed sssp diverges from Dijkstra by %g", d)
				}
			}},
		{"bc", plain, []pushpull.Option{pushpull.WithSources([]pushpull.V{0, 1, 2, 3})},
			func(t *testing.T, probed, ref *pushpull.Report) {
				if d := bc.MaxDiff(probed.Ranks(), ref.Ranks()); d > 1e-6 {
					t.Errorf("probed bc diverges by %g", d)
				}
			}},
		{"gc", plain, nil,
			func(t *testing.T, probed, ref *pushpull.Report) {
				if err := gc.Validate(plain, probed.Colors()); err != nil {
					t.Errorf("probed gc coloring invalid: %v", err)
				}
			}},
		{"gc-fe", plain, []pushpull.Option{pushpull.WithMaxIters(4096)},
			func(t *testing.T, probed, ref *pushpull.Report) {
				if err := gc.Validate(plain, probed.Colors()); err != nil {
					t.Errorf("probed gc-fe coloring invalid: %v", err)
				}
				// FE resolves candidates in canonical order, so probed and
				// plain colorings match exactly.
				pc, rc := probed.Colors(), ref.Colors()
				for v := range pc {
					if pc[v] != rc[v] {
						t.Fatalf("probed gc-fe color[%d] = %d, want %d", v, pc[v], rc[v])
					}
				}
			}},
		{"gc-cr", plain, nil,
			func(t *testing.T, probed, ref *pushpull.Report) {
				if err := gc.Validate(plain, probed.Colors()); err != nil {
					t.Errorf("probed gc-cr coloring invalid: %v", err)
				}
				// CR is deterministic: probed equals plain exactly.
				pc, rc := probed.Colors(), ref.Colors()
				for v := range pc {
					if pc[v] != rc[v] {
						t.Fatalf("probed gc-cr color[%d] = %d, want %d", v, pc[v], rc[v])
					}
				}
			}},
		{"mst", weighted, nil,
			func(t *testing.T, probed, ref *pushpull.Report) {
				pres := probed.Result.(*pushpull.MSTResult)
				rres := ref.Result.(*pushpull.MSTResult)
				if !mst.SameTree(pres, rres) {
					t.Error("probed mst tree differs from plain run")
				}
			}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.algo, func(t *testing.T) {
			opts := append([]pushpull.Option{pushpull.WithThreads(2)}, c.opts...)
			probed := run(t, c.g, c.algo, append(opts, pushpull.WithProbes())...)
			if probed.Counters == nil {
				t.Fatal("probed run has nil Counters")
			}
			if probed.Counters.Get(pushpull.Reads) == 0 {
				t.Error("probed run recorded zero reads")
			}
			if probed.Stats.Iterations <= 0 {
				t.Error("probed run recorded no iterations")
			}
			if len(probed.Directions) != probed.Stats.Iterations {
				t.Errorf("probed trace has %d entries for %d iterations",
					len(probed.Directions), probed.Stats.Iterations)
			}
			ref := run(t, c.g, c.algo, opts...)
			c.check(t, probed, ref)
		})
	}
}

// TestProbesDirectionAsymmetry spot-checks the §4 accounting on the new
// kernels: push charges synchronization (atomics/locks) that pull avoids.
func TestProbesDirectionAsymmetry(t *testing.T) {
	g := testGraph(t)
	w := weightedGraph(t)
	for _, c := range []struct {
		algo  string
		g     *pushpull.Graph
		event pushpull.CounterEvent
		opts  []pushpull.Option
	}{
		{"bfs", g, pushpull.Atomics, []pushpull.Option{pushpull.WithSource(0)}},
		{"bc", g, pushpull.Atomics, []pushpull.Option{pushpull.WithSources([]pushpull.V{0, 1})}},
		{"mst", w, pushpull.Locks, nil},
	} {
		base := append([]pushpull.Option{pushpull.WithThreads(2), pushpull.WithProbes()}, c.opts...)
		push := run(t, c.g, c.algo, append(base, pushpull.WithDirection(pushpull.Push))...)
		pull := run(t, c.g, c.algo, append(base, pushpull.WithDirection(pushpull.Pull))...)
		if got := push.Counters.Get(c.event); got == 0 {
			t.Errorf("%s push issued no %v", c.algo, c.event)
		}
		if got := pull.Counters.Get(c.event); got != 0 {
			t.Errorf("%s pull issued %d %v, want 0", c.algo, got, c.event)
		}
	}
}

// TestProbedPartitionAwareTC exercises the instrumented PA kernel that
// previously errored: counts match the plain PA run and phase 2's atomics
// equal the remote hit structure (non-zero on a multi-partition run).
func TestProbedPartitionAwareTC(t *testing.T) {
	g := testGraph(t)
	probed := run(t, g, "tc", pushpull.WithProbes(),
		pushpull.WithPartitionAwareness(), pushpull.WithPartitions(3))
	plain := run(t, g, "tc", pushpull.WithPartitionAwareness(), pushpull.WithPartitions(3))
	if !tc.Equal(probed.Counts(), plain.Counts()) {
		t.Error("probed PA tc counts diverge from plain PA run")
	}
	if probed.Counters.Get(pushpull.Atomics) == 0 {
		t.Error("probed PA tc issued no remote atomics")
	}
	// PA strictly reduces atomics versus plain push (only remote hits pay).
	full := run(t, g, "tc", pushpull.WithProbes(), pushpull.WithDirection(pushpull.Push),
		pushpull.WithThreads(3))
	if pa, all := probed.Counters.Get(pushpull.Atomics), full.Counters.Get(pushpull.Atomics); pa >= all {
		t.Errorf("PA atomics (%d) not below plain push atomics (%d)", pa, all)
	}
}

// TestProbedPAThreadsReconciled pins the WithThreads/WithPartitions
// reconciliation: a probed partition-aware run simulates one thread per
// partition, so a conflicting explicit thread count errors instead of
// being silently ignored, and an agreeing one succeeds.
func TestProbedPAThreadsReconciled(t *testing.T) {
	g := testGraph(t)
	for _, algo := range []string{"pr", "tc"} {
		_, err := pushpull.Run(context.Background(), g, algo, pushpull.WithProbes(),
			pushpull.WithPartitionAwareness(), pushpull.WithPartitions(3), pushpull.WithThreads(2))
		if err == nil {
			t.Errorf("%s: probed PA run accepted WithThreads(2) over 3 partitions", algo)
		} else if !strings.Contains(err.Error(), "partition") {
			t.Errorf("%s: unhelpful conflict error: %v", algo, err)
		}
		rep := run(t, g, algo, pushpull.WithProbes(),
			pushpull.WithPartitionAwareness(), pushpull.WithPartitions(3), pushpull.WithThreads(3))
		if rep.Counters == nil {
			t.Errorf("%s: agreeing threads/partitions returned no counters", algo)
		}
	}
	// The partition-based coloring runs apply the same reconciliation.
	for _, algo := range []string{"gc", "gc-cr"} {
		_, err := pushpull.Run(context.Background(), g, algo, pushpull.WithProbes(),
			pushpull.WithPartitions(3), pushpull.WithThreads(2))
		if err == nil {
			t.Errorf("%s: probed run accepted WithThreads(2) over 3 partitions", algo)
		}
	}
}

// TestFrontierExploitMaxItersStillValid guards the one-color-per-round FE
// against MaxIters truncation: a clique needs n rounds, far beyond the
// default bound, so the run must greedy-finish the remainder instead of
// returning uncolored vertices without error.
func TestFrontierExploitMaxItersStillValid(t *testing.T) {
	const n = 100
	b := pushpull.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(pushpull.V(i), pushpull.V(j))
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	plain := run(t, g, "gc-fe") // default MaxIters
	if err := gc.Validate(g, plain.Colors()); err != nil {
		t.Fatalf("MaxIters-bounded FE returned an invalid coloring: %v", err)
	}
	probed := run(t, g, "gc-fe", pushpull.WithProbes())
	if err := gc.Validate(g, probed.Colors()); err != nil {
		t.Fatalf("probed MaxIters-bounded FE returned an invalid coloring: %v", err)
	}
	if len(plain.Directions) != plain.Stats.Iterations {
		t.Errorf("greedy-finish iteration missing from trace: %d entries, %d iterations",
			len(plain.Directions), plain.Stats.Iterations)
	}
}

// TestGenericSwitchFlipInTrace asserts the satellite bugfix: a mid-run
// Generic-Switch direction flip shows up in Report.Directions instead of
// the trace claiming the starting direction throughout.
func TestGenericSwitchFlipInTrace(t *testing.T) {
	g := testGraph(t)
	// An enormous threshold makes the policy flip at the first iteration
	// whose predecessor saw any conflict.
	rep := run(t, g, "gc-fe", pushpull.WithDirection(pushpull.Push),
		pushpull.WithMaxIters(4096), pushpull.WithThreads(2),
		pushpull.WithSwitchPolicy(&pushpull.GenericSwitch{Threshold: 1e18}))
	if len(rep.Directions) != rep.Stats.Iterations {
		t.Fatalf("trace has %d entries for %d iterations", len(rep.Directions), rep.Stats.Iterations)
	}
	var push, pull int
	for _, d := range rep.Directions {
		if d == pushpull.Pull {
			pull++
		} else {
			push++
		}
	}
	if push == 0 || pull == 0 {
		t.Fatalf("GenericSwitch flip not visible in trace: push×%d, pull×%d (iterations: %d)",
			push, pull, rep.Stats.Iterations)
	}
	if rep.Directions[0] != pushpull.Push {
		t.Errorf("trace starts with %v, want the requested push", rep.Directions[0])
	}
}

// TestProfiledIterationHook asserts the satellite bugfix: probed runs
// invoke WithIterationHook between instrumented iterations with the same
// contract as plain runs.
func TestProfiledIterationHook(t *testing.T) {
	g := testGraph(t)
	w := weightedGraph(t)
	for _, c := range []struct {
		algo  string
		g     *pushpull.Graph
		opts  []pushpull.Option
		exact int // -1: just require > 0 ticks matching Stats.Iterations
	}{
		{"pr", g, []pushpull.Option{pushpull.WithIterations(4)}, 4},
		{"gc", g, nil, -1},
		{"gc-fe", g, []pushpull.Option{pushpull.WithMaxIters(4096)}, -1},
		{"bfs", g, []pushpull.Option{pushpull.WithSource(0)}, -1},
		{"sssp", w, []pushpull.Option{pushpull.WithSource(0), pushpull.WithDirection(pushpull.Push)}, -1},
		{"mst", w, nil, -1},
	} {
		ticks := 0
		rep := run(t, c.g, c.algo, append(c.opts, pushpull.WithProbes(), pushpull.WithThreads(2),
			pushpull.WithIterationHook(func(int, time.Duration) { ticks++ }))...)
		want := c.exact
		if want < 0 {
			want = rep.Stats.Iterations
		}
		if ticks != want {
			t.Errorf("%s: probed hook fired %d times, want %d", c.algo, ticks, want)
		}
		if ticks == 0 {
			t.Errorf("%s: probed run never invoked the iteration hook", c.algo)
		}
	}
}
