// Package sched provides the thread-scheduling substrate for the push/pull
// algorithm implementations: parallel loops over vertex ranges with static
// or dynamic (chunk-stealing) schedules — the OpenMP schedules compared in
// the paper's §6 — a reusable barrier (used by the Partition-Awareness
// strategy's two-phase iteration, Algorithm 8), and a deterministic
// sequential executor used by profiled runs so cache-simulation results are
// reproducible.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Schedule selects how ParallelFor distributes iterations over workers.
type Schedule int

const (
	// Static divides the index range into T contiguous blocks, one per
	// worker — the layout that makes vertex ownership t[v] contiguous.
	Static Schedule = iota
	// Dynamic hands out fixed-size chunks from a shared atomic cursor,
	// balancing skewed per-vertex work (power-law degree distributions).
	Dynamic
)

// String names the schedule.
func (s Schedule) String() string {
	switch s {
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	default:
		return "unknown"
	}
}

// DefaultThreads returns the runtime's available parallelism.
func DefaultThreads() int { return runtime.GOMAXPROCS(0) }

// Clamp bounds t to [1, n] with a GOMAXPROCS default for t <= 0.
func Clamp(t, n int) int {
	if t <= 0 {
		t = DefaultThreads()
	}
	if n < 1 {
		n = 1
	}
	if t > n {
		t = n
	}
	return t
}

// BlockRange returns the half-open range [lo, hi) of block w out of t
// blocks over n items: the 1D ownership decomposition of §2.2. Blocks
// differ in size by at most one item.
func BlockRange(n, t, w int) (lo, hi int) {
	base := n / t
	rem := n % t
	if w < rem {
		lo = w * (base + 1)
		hi = lo + base + 1
		return
	}
	lo = rem*(base+1) + (w-rem)*base
	hi = lo + base
	return
}

// OwnerOf returns which of t blocks owns index i under BlockRange; this is
// the paper's t[v] owner function, computable in O(1).
func OwnerOf(n, t, i int) int {
	base := n / t
	rem := n % t
	pivot := rem * (base + 1)
	if i < pivot {
		return i / (base + 1)
	}
	if base == 0 {
		return rem // degenerate: more threads than items
	}
	return rem + (i-pivot)/base
}

// ParallelFor runs body over [0, n) with t workers under the given
// schedule. body receives the worker id and a half-open sub-range. With
// Static, each worker gets exactly one contiguous block (its "partition");
// with Dynamic, workers pull chunks of the given grain (0 ⇒ a heuristic
// grain) until the range is exhausted.
func ParallelFor(n, t int, s Schedule, grain int, body func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	t = Clamp(t, n)
	if t == 1 {
		// Inline fast path. The goroutine-spawning path lives in its own
		// function because its closures capture t and grain, which would
		// otherwise be moved to the heap at entry — two allocations per
		// call even when this path never spawns anything, putting the
		// allocator inside every single-threaded kernel iteration.
		body(0, 0, n)
		return
	}
	parallelFor(n, t, s, grain, body)
}

// parallelFor is the multi-worker slow path of ParallelFor.
func parallelFor(n, t int, s Schedule, grain int, body func(worker, lo, hi int)) {
	var wg sync.WaitGroup
	wg.Add(t)
	switch s {
	case Static:
		for w := 0; w < t; w++ {
			go func(w int) {
				defer wg.Done()
				lo, hi := BlockRange(n, t, w)
				if lo < hi {
					body(w, lo, hi)
				}
			}(w)
		}
	default: // Dynamic
		if grain <= 0 {
			grain = n / (t * 8)
			if grain < 1 {
				grain = 1
			}
		}
		var cursor atomic.Int64
		for w := 0; w < t; w++ {
			go func(w int) {
				defer wg.Done()
				for {
					lo := int(cursor.Add(int64(grain))) - grain
					if lo >= n {
						return
					}
					hi := lo + grain
					if hi > n {
						hi = n
					}
					body(w, lo, hi)
				}
			}(w)
		}
	}
	wg.Wait()
}

// SequentialFor partitions [0, n) into t blocks exactly as ParallelFor with
// Static would, but executes them in worker order on the calling goroutine.
// Profiled (cache-simulated) runs use it so that the interleaving — and
// therefore every cache and TLB miss — is deterministic.
func SequentialFor(n, t int, body func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	t = Clamp(t, n)
	for w := 0; w < t; w++ {
		lo, hi := BlockRange(n, t, w)
		if lo < hi {
			body(w, lo, hi)
		}
	}
}

// Barrier is a reusable synchronization barrier for a fixed number of
// parties, in the style of the "lightweight barrier" of Algorithm 8.
type Barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	waiting int
	phase   uint64
}

// NewBarrier creates a barrier for n parties (n ≥ 1).
func NewBarrier(n int) *Barrier {
	if n < 1 {
		n = 1
	}
	b := &Barrier{parties: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until all parties have called Wait, then releases them all.
// The barrier resets automatically for reuse.
func (b *Barrier) Wait() {
	b.mu.Lock()
	phase := b.phase
	b.waiting++
	if b.waiting == b.parties {
		b.waiting = 0
		b.phase++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for phase == b.phase {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// Parties returns the number of participants.
func (b *Barrier) Parties() int { return b.parties }

// Pool is a reusable team of worker goroutines with stable ids. Using one
// pool across iterations avoids re-spawning goroutines in tight
// per-iteration loops (PageRank, coloring rounds).
type Pool struct {
	t    int
	jobs []chan func(worker int)
	done chan struct{}
	wg   sync.WaitGroup
}

// NewPool starts a pool with t workers.
func NewPool(t int) *Pool {
	if t < 1 {
		t = 1
	}
	p := &Pool{t: t, jobs: make([]chan func(worker int), t), done: make(chan struct{})}
	for w := 0; w < t; w++ {
		p.jobs[w] = make(chan func(worker int))
		go func(w int) {
			for job := range p.jobs[w] {
				job(w)
				p.wg.Done()
			}
		}(w)
	}
	return p
}

// Threads returns the worker count.
func (p *Pool) Threads() int { return p.t }

// Run executes body once on every worker and waits for all to finish.
func (p *Pool) Run(body func(worker int)) {
	p.wg.Add(p.t)
	for w := 0; w < p.t; w++ {
		p.jobs[w] <- body
	}
	p.wg.Wait()
}

// For runs body over [0, n) statically partitioned across the pool.
func (p *Pool) For(n int, body func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	p.Run(func(w int) {
		lo, hi := BlockRange(n, p.t, w)
		if lo < hi {
			body(w, lo, hi)
		}
	})
}

// Close shuts the pool down. The pool must be idle.
func (p *Pool) Close() {
	for _, c := range p.jobs {
		close(c)
	}
}
