package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestBlockRangeCoversExactly(t *testing.T) {
	f := func(nRaw, tRaw uint16) bool {
		n := int(nRaw%1000) + 1
		tt := int(tRaw%16) + 1
		covered := make([]int, n)
		prevHi := 0
		for w := 0; w < tt; w++ {
			lo, hi := BlockRange(n, tt, w)
			if lo != prevHi {
				return false // blocks must be contiguous and ordered
			}
			prevHi = hi
			for i := lo; i < hi; i++ {
				covered[i]++
			}
		}
		if prevHi != n {
			return false
		}
		for _, c := range covered {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBlockRangeBalance(t *testing.T) {
	// Block sizes differ by at most one.
	for _, n := range []int{1, 7, 100, 101, 1024} {
		for _, tt := range []int{1, 2, 3, 7, 16} {
			min, max := n, 0
			for w := 0; w < tt; w++ {
				lo, hi := BlockRange(n, tt, w)
				sz := hi - lo
				if sz < min {
					min = sz
				}
				if sz > max {
					max = sz
				}
			}
			if max-min > 1 {
				t.Fatalf("n=%d t=%d: block sizes differ by %d", n, tt, max-min)
			}
		}
	}
}

func TestOwnerOfMatchesBlockRange(t *testing.T) {
	f := func(nRaw, tRaw uint16) bool {
		n := int(nRaw%500) + 1
		tt := int(tRaw%12) + 1
		for w := 0; w < tt; w++ {
			lo, hi := BlockRange(n, tt, w)
			for i := lo; i < hi; i++ {
				if OwnerOf(n, tt, i) != w {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParallelForStaticCoversAll(t *testing.T) {
	const n = 10000
	marks := make([]atomic.Int32, n)
	ParallelFor(n, 4, Static, 0, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			marks[i].Add(1)
		}
	})
	for i := range marks {
		if got := marks[i].Load(); got != 1 {
			t.Fatalf("index %d visited %d times", i, got)
		}
	}
}

func TestParallelForDynamicCoversAll(t *testing.T) {
	const n = 9973 // prime, exercises ragged chunking
	marks := make([]atomic.Int32, n)
	ParallelFor(n, 4, Dynamic, 64, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			marks[i].Add(1)
		}
	})
	for i := range marks {
		if got := marks[i].Load(); got != 1 {
			t.Fatalf("index %d visited %d times", i, got)
		}
	}
}

func TestParallelForEdgeCases(t *testing.T) {
	called := false
	ParallelFor(0, 4, Static, 0, func(w, lo, hi int) { called = true })
	if called {
		t.Fatal("body called for n=0")
	}
	// n=1 with many threads: exactly one call.
	var calls atomic.Int32
	ParallelFor(1, 8, Static, 0, func(w, lo, hi int) { calls.Add(1) })
	if calls.Load() != 1 {
		t.Fatalf("calls = %d", calls.Load())
	}
	// t<=0 falls back to GOMAXPROCS without panicking.
	ParallelFor(10, 0, Dynamic, 0, func(w, lo, hi int) {})
}

func TestSequentialForDeterministicOrder(t *testing.T) {
	var order []int
	SequentialFor(100, 4, func(w, lo, hi int) {
		order = append(order, w)
		// Ranges must match the static parallel decomposition.
		elo, ehi := BlockRange(100, 4, w)
		if lo != elo || hi != ehi {
			t.Fatalf("worker %d got [%d,%d), want [%d,%d)", w, lo, hi, elo, ehi)
		}
	})
	for i, w := range order {
		if w != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestBarrier(t *testing.T) {
	const parties = 4
	const rounds = 50
	b := NewBarrier(parties)
	if b.Parties() != parties {
		t.Fatalf("Parties = %d", b.Parties())
	}
	var phase atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan string, parties)
	for p := 0; p < parties; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// All parties must observe the same phase before the barrier.
				if got := phase.Load(); got != int64(r) {
					errs <- "phase skew"
					return
				}
				b.Wait()
				// Exactly one party advances the phase per round.
				phase.CompareAndSwap(int64(r), int64(r+1))
				b.Wait()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if got := phase.Load(); got != rounds {
		t.Fatalf("phase = %d, want %d", got, rounds)
	}
}

func TestPoolRunAndFor(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	if p.Threads() != 3 {
		t.Fatalf("Threads = %d", p.Threads())
	}
	var ran atomic.Int32
	p.Run(func(w int) { ran.Add(1) })
	if ran.Load() != 3 {
		t.Fatalf("Run executed on %d workers", ran.Load())
	}

	const n = 1000
	marks := make([]atomic.Int32, n)
	for iter := 0; iter < 10; iter++ { // reuse across iterations
		p.For(n, func(w, lo, hi int) {
			for i := lo; i < hi; i++ {
				marks[i].Add(1)
			}
		})
	}
	for i := range marks {
		if marks[i].Load() != 10 {
			t.Fatalf("index %d visited %d times", i, marks[i].Load())
		}
	}
}

func TestPoolForEmpty(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	p.For(0, func(w, lo, hi int) { t.Error("body called for n=0") })
}

func TestScheduleString(t *testing.T) {
	if Static.String() != "static" || Dynamic.String() != "dynamic" {
		t.Fatal("schedule names wrong")
	}
	if Schedule(99).String() != "unknown" {
		t.Fatal("unknown schedule name")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(0, 100) < 1 {
		t.Fatal("Clamp(0) < 1")
	}
	if got := Clamp(8, 4); got != 4 {
		t.Fatalf("Clamp(8,4) = %d", got)
	}
	if got := Clamp(2, 0); got != 1 {
		t.Fatalf("Clamp(2,0) = %d", got)
	}
}

func BenchmarkParallelForStatic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ParallelFor(1<<14, 4, Static, 0, func(w, lo, hi int) {
			s := 0
			for j := lo; j < hi; j++ {
				s += j
			}
			_ = s
		})
	}
}

func BenchmarkPoolFor(b *testing.B) {
	p := NewPool(4)
	defer p.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.For(1<<14, func(w, lo, hi int) {
			s := 0
			for j := lo; j < hi; j++ {
				s += j
			}
			_ = s
		})
	}
}
