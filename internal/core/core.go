// Package core defines the shared vocabulary of the push-pull library: the
// update Direction (the paper's central dichotomy, §3.8), run options
// shared by every algorithm, per-run statistics, and the switching policies
// behind the Generic-Switch and Greedy-Switch acceleration strategies (§5).
//
// The formal characterization reproduced from §3.8: an algorithm *pushes*
// iff some thread t modifies a vertex it does not own (∃ t, v: t ⤳ v ∧
// t ≠ t[v]); it *pulls* iff every thread modifies only its own vertices
// (∀ t, v: t ⤳ v ⇒ t = t[v]). Pulling therefore needs no atomics or locks
// on vertex state, while pushing may touch any vertex and must synchronize.
package core

import (
	"context"
	"fmt"
	"time"

	"pushpull/internal/counters"
	"pushpull/internal/sched"
)

// Direction selects whether updates are pushed to shared state or pulled
// into owned state.
type Direction int

const (
	// Push writes updates outward into vertices owned by other threads.
	Push Direction = iota
	// Pull reads neighbor state and updates only owned vertices.
	Pull
)

// String names the direction as the paper's figures do.
func (d Direction) String() string {
	switch d {
	case Push:
		return "Pushing"
	case Pull:
		return "Pulling"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Options configures one algorithm run. The zero value is usable: all
// threads, static schedule, no instrumentation.
type Options struct {
	// Threads is the worker count T (≤ 0 means GOMAXPROCS).
	Threads int
	// Schedule picks the loop schedule for parallel vertex loops.
	Schedule sched.Schedule
	// OnIteration, when set, receives the wall time of each completed
	// iteration — the hook behind the per-iteration series of Figures 1,
	// 2 and 4.
	OnIteration func(iter int, elapsed time.Duration)
	// Ctx, when non-nil, is polled between iterations (and between work
	// chunks of single-pass algorithms): once it is cancelled the run
	// stops early and returns its partial result with RunStats.Canceled
	// set. A nil Ctx never cancels.
	Ctx context.Context
}

// Canceled reports whether the run's context has been cancelled.
func (o Options) Canceled() bool {
	return o.Ctx != nil && o.Ctx.Err() != nil
}

// EffectiveThreads resolves Threads against the runtime.
func (o Options) EffectiveThreads() int { return sched.Clamp(o.Threads, 1<<30) }

// Tick invokes OnIteration if set.
func (o Options) Tick(iter int, elapsed time.Duration) {
	if o.OnIteration != nil {
		o.OnIteration(iter, elapsed)
	}
}

// Profile configures a profiled (instrumented) run: one probe per simulated
// thread. Profiled variants execute deterministically (threads in order, see
// sched.SequentialFor), so event counts and cache misses are reproducible.
type Profile struct {
	Threads int
	Probes  []counters.Probe
}

// Validate checks that the probe set matches the thread count.
func (p Profile) Validate() error {
	if p.Threads < 1 {
		return fmt.Errorf("core: profile threads = %d, want >= 1", p.Threads)
	}
	if len(p.Probes) != p.Threads {
		return fmt.Errorf("core: %d probes for %d threads", len(p.Probes), p.Threads)
	}
	for i, pr := range p.Probes {
		if pr == nil {
			return fmt.Errorf("core: probe %d is nil", i)
		}
	}
	return nil
}

// CountingProfile builds a Profile of t plain counting probes plus the
// recorders to aggregate afterwards.
func CountingProfile(t int) (Profile, *counters.Group) {
	g := counters.NewGroup(t)
	probes := make([]counters.Probe, t)
	for i := 0; i < t; i++ {
		probes[i] = &counters.CountProbe{Rec: g.Recorder(i)}
	}
	return Profile{Threads: t, Probes: probes}, g
}

// RunStats captures what one algorithm run did.
type RunStats struct {
	Direction    Direction
	Iterations   int
	Elapsed      time.Duration
	PerIteration []time.Duration
	// Canceled marks a run stopped early by Options.Ctx; the result the
	// run returned is partial.
	Canceled bool
	// CacheHit marks a report served from an engine's result cache: no
	// kernel ran, and Elapsed/PerIteration describe the original run.
	CacheHit bool
	// Coalesced marks a report served by single-flight deduplication: the
	// request arrived while an identical run was already executing and was
	// answered from that run's result without executing anything itself.
	// Elapsed/PerIteration describe the run it coalesced onto.
	Coalesced bool
	// QueueWait is how long the run waited in the engine's admission
	// queue before a worker slot freed up (0 when admitted immediately
	// or served from cache).
	QueueWait time.Duration
}

// AvgIteration returns the mean per-iteration time.
func (s RunStats) AvgIteration() time.Duration {
	if s.Iterations == 0 {
		return 0
	}
	return s.Elapsed / time.Duration(s.Iterations)
}

// Reserve pre-sizes the per-iteration log so steady-state Record calls
// append into existing capacity — part of the zero-allocation contract of
// the kernels' iteration loops.
func (s *RunStats) Reserve(n int) {
	if cap(s.PerIteration)-len(s.PerIteration) < n {
		grown := make([]time.Duration, len(s.PerIteration), len(s.PerIteration)+n)
		copy(grown, s.PerIteration)
		s.PerIteration = grown
	}
}

// Record appends an iteration timing.
func (s *RunStats) Record(d time.Duration) {
	s.Iterations++
	s.Elapsed += d
	s.PerIteration = append(s.PerIteration, d)
}

// SwitchPolicy decides when an adaptive algorithm should change direction
// or fall back to a sequential scheme. Progress is algorithm-specific (for
// graph coloring: vertices successfully colored this iteration) as is
// conflicts (vertices that must be recolored).
type SwitchPolicy interface {
	// Decide returns the action to take before iteration iter, given the
	// previous iteration's progress and conflict counts and the remaining
	// work estimate.
	Decide(iter int, progress, conflicts, remaining int) Action
}

// Action is a switch decision.
type Action int

const (
	// Stay keeps the current direction.
	Stay Action = iota
	// SwitchDirection flips push↔pull (Generic-Switch, §5).
	SwitchDirection
	// GoSequential abandons parallelism for an optimized sequential scheme
	// (Greedy-Switch, §5).
	GoSequential
)

// String names the action.
func (a Action) String() string {
	switch a {
	case Stay:
		return "stay"
	case SwitchDirection:
		return "switch-direction"
	case GoSequential:
		return "go-sequential"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// GenericSwitch implements the paper's Generic-Switch strategy: flip
// direction when the ratio of progress to conflicts drops below Threshold
// (conflicts dominate ⇒ the current direction is thrashing). It switches at
// most once.
type GenericSwitch struct {
	Threshold float64
	switched  bool
}

// Decide implements SwitchPolicy.
func (g *GenericSwitch) Decide(iter int, progress, conflicts, remaining int) Action {
	if g.switched || iter == 0 || conflicts == 0 {
		return Stay
	}
	if float64(progress)/float64(conflicts) < g.Threshold {
		g.switched = true
		return SwitchDirection
	}
	return Stay
}

// GreedySwitch implements the paper's Greedy-Switch strategy: once the
// remaining work drops below Fraction of the total (the paper observes
// < 0.1·n remaining vertices makes parallel coloring thrash), abandon the
// parallel scheme entirely for an optimized sequential one.
type GreedySwitch struct {
	Fraction float64
	Total    int
}

// Decide implements SwitchPolicy.
func (g *GreedySwitch) Decide(iter int, progress, conflicts, remaining int) Action {
	if g.Total <= 0 {
		return Stay
	}
	if float64(remaining) < g.Fraction*float64(g.Total) {
		return GoSequential
	}
	return Stay
}

// NeverSwitch is the identity policy (plain push or pull).
type NeverSwitch struct{}

// Decide implements SwitchPolicy.
func (NeverSwitch) Decide(int, int, int, int) Action { return Stay }
