package core

import (
	"strings"
	"testing"
	"time"

	"pushpull/internal/counters"
)

func TestDirectionString(t *testing.T) {
	if Push.String() != "Pushing" || Pull.String() != "Pulling" {
		t.Fatal("direction names wrong")
	}
	if !strings.Contains(Direction(9).String(), "Direction(") {
		t.Fatal("unknown direction name")
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.EffectiveThreads() < 1 {
		t.Fatal("EffectiveThreads < 1")
	}
	o.Tick(0, time.Second) // no hook: must not panic
	var calls int
	o.OnIteration = func(iter int, e time.Duration) { calls++ }
	o.Tick(1, time.Millisecond)
	if calls != 1 {
		t.Fatal("OnIteration not invoked")
	}
}

func TestProfileValidate(t *testing.T) {
	p, g := CountingProfile(3)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Len() != 3 {
		t.Fatalf("group len = %d", g.Len())
	}
	bad := Profile{Threads: 0}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero threads validated")
	}
	bad = Profile{Threads: 2, Probes: []counters.Probe{counters.NopProbe{}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("probe count mismatch validated")
	}
	bad = Profile{Threads: 1, Probes: []counters.Probe{nil}}
	if err := bad.Validate(); err == nil {
		t.Fatal("nil probe validated")
	}
}

func TestCountingProfileRecords(t *testing.T) {
	p, g := CountingProfile(2)
	p.Probes[0].Read(0, 8)
	p.Probes[1].Atomic(0, 8)
	rep := g.Report()
	if rep.Get(counters.Reads) != 1 || rep.Get(counters.Atomics) != 1 {
		t.Fatalf("report: %v", rep)
	}
}

func TestRunStats(t *testing.T) {
	var s RunStats
	if s.AvgIteration() != 0 {
		t.Fatal("empty stats avg != 0")
	}
	s.Record(10 * time.Millisecond)
	s.Record(20 * time.Millisecond)
	if s.Iterations != 2 {
		t.Fatalf("Iterations = %d", s.Iterations)
	}
	if s.Elapsed != 30*time.Millisecond {
		t.Fatalf("Elapsed = %v", s.Elapsed)
	}
	if s.AvgIteration() != 15*time.Millisecond {
		t.Fatalf("Avg = %v", s.AvgIteration())
	}
	if len(s.PerIteration) != 2 {
		t.Fatalf("PerIteration = %v", s.PerIteration)
	}
}

func TestGenericSwitch(t *testing.T) {
	gs := &GenericSwitch{Threshold: 2}
	// Iteration 0 never switches (no history).
	if a := gs.Decide(0, 0, 100, 1000); a != Stay {
		t.Fatalf("iter 0: %v", a)
	}
	// Healthy ratio: stay.
	if a := gs.Decide(1, 500, 100, 1000); a != Stay {
		t.Fatalf("healthy: %v", a)
	}
	// Conflicts dominate: switch once.
	if a := gs.Decide(2, 50, 100, 1000); a != SwitchDirection {
		t.Fatalf("thrash: %v", a)
	}
	// Never switches twice.
	if a := gs.Decide(3, 0, 100, 1000); a != Stay {
		t.Fatalf("second switch: %v", a)
	}
	// Zero conflicts: no division, stay.
	gs2 := &GenericSwitch{Threshold: 2}
	if a := gs2.Decide(1, 10, 0, 100); a != Stay {
		t.Fatalf("zero conflicts: %v", a)
	}
}

func TestGreedySwitch(t *testing.T) {
	gr := &GreedySwitch{Fraction: 0.1, Total: 1000}
	if a := gr.Decide(1, 0, 0, 500); a != Stay {
		t.Fatalf("much remaining: %v", a)
	}
	if a := gr.Decide(2, 0, 0, 99); a != GoSequential {
		t.Fatalf("little remaining: %v", a)
	}
	// Unconfigured policy is inert.
	inert := &GreedySwitch{}
	if a := inert.Decide(1, 0, 0, 0); a != Stay {
		t.Fatalf("inert: %v", a)
	}
}

func TestNeverSwitch(t *testing.T) {
	var n NeverSwitch
	if n.Decide(5, 0, 100, 0) != Stay {
		t.Fatal("NeverSwitch switched")
	}
}

func TestActionString(t *testing.T) {
	if Stay.String() != "stay" || SwitchDirection.String() != "switch-direction" ||
		GoSequential.String() != "go-sequential" {
		t.Fatal("action names wrong")
	}
	if !strings.Contains(Action(42).String(), "Action(") {
		t.Fatal("unknown action name")
	}
}
