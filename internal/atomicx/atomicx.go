// Package atomicx provides atomic primitives that the Go standard library
// lacks but lock-free graph computations need: atomic float64 accumulation,
// atomic integer/float minimum, test-and-set spinlocks, and cache-line
// padded counters.
//
// The paper ("To Push or To Pull", HPDC'17, §2.3 and §4.9) distinguishes
// integer atomics (FAA, CAS — directly supported by CPUs) from float
// updates, which CPUs do not support atomically and which therefore cost a
// lock or a CAS retry loop. AddFloat64 implements exactly that CAS loop and
// reports the number of retries so callers can account for the extra
// synchronization that push-based PageRank and betweenness centrality pay.
package atomicx

import (
	"math"
	"sync/atomic"
)

// Float64 is an atomically updatable float64. The zero value is 0.0.
type Float64 struct {
	bits atomic.Uint64
}

// Load returns the current value.
func (f *Float64) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// Store sets the value.
func (f *Float64) Store(v float64) { f.bits.Store(math.Float64bits(v)) }

// Add atomically adds delta and returns the new value.
func (f *Float64) Add(delta float64) float64 {
	for {
		old := f.bits.Load()
		next := math.Float64frombits(old) + delta
		if f.bits.CompareAndSwap(old, math.Float64bits(next)) {
			return next
		}
	}
}

// AddFloat64 atomically adds delta to *addr, interpreting the uint64 as the
// IEEE-754 bits of a float64. It returns the number of CAS attempts, which
// is ≥ 1; attempts−1 is the contention (retry) count.
//
// Storing ranks as raw uint64 bit patterns lets a single []uint64 slice be
// shared by all threads with no per-element lock, mirroring the fine-grained
// update style of the paper's push variants.
func AddFloat64(addr *uint64, delta float64) (attempts int) {
	for {
		attempts++
		old := atomic.LoadUint64(addr)
		next := math.Float64frombits(old) + delta
		if atomic.CompareAndSwapUint64(addr, old, math.Float64bits(next)) {
			return attempts
		}
	}
}

// LoadFloat64 atomically reads the float64 stored as bits in *addr.
func LoadFloat64(addr *uint64) float64 {
	return math.Float64frombits(atomic.LoadUint64(addr))
}

// StoreFloat64 atomically writes v as bits into *addr.
func StoreFloat64(addr *uint64, v float64) {
	atomic.StoreUint64(addr, math.Float64bits(v))
}

// MinFloat64 atomically lowers *addr (float64 bits) to v if v is smaller.
// It returns true if the stored value was lowered, along with the number of
// CAS attempts performed (0 when the value was already ≤ v).
//
// This is the relaxation primitive of push-based Δ-stepping: d[w] =
// min(d[w], weight) executed concurrently by many threads.
func MinFloat64(addr *uint64, v float64) (lowered bool, attempts int) {
	for {
		old := atomic.LoadUint64(addr)
		cur := math.Float64frombits(old)
		if cur <= v {
			return lowered, attempts
		}
		attempts++
		if atomic.CompareAndSwapUint64(addr, old, math.Float64bits(v)) {
			return true, attempts
		}
	}
}

// MinInt64 atomically lowers *addr to v if v is smaller, returning whether
// the value changed.
func MinInt64(addr *atomic.Int64, v int64) bool {
	for {
		cur := addr.Load()
		if cur <= v {
			return false
		}
		if addr.CompareAndSwap(cur, v) {
			return true
		}
	}
}

// MaxInt64 atomically raises *addr to v if v is larger, returning whether
// the value changed.
func MaxInt64(addr *atomic.Int64, v int64) bool {
	for {
		cur := addr.Load()
		if cur >= v {
			return false
		}
		if addr.CompareAndSwap(cur, v) {
			return true
		}
	}
}

// SpinLock is a test-and-test-and-set spinlock. The zero value is unlocked.
//
// The paper counts "locks" as a synchronization event distinct from atomics
// (§2.4); push-based PageRank without float atomics would acquire one lock
// per neighbor update (§4.1). SpinLock is the cheapest lock we can build so
// that lock-based variants measure the protocol cost, not Go's mutex
// machinery.
type SpinLock struct {
	state atomic.Uint32
}

// Lock acquires the lock, spinning until it is available. It returns the
// number of failed acquisition attempts (0 on an uncontended acquire).
func (l *SpinLock) Lock() (spins int) {
	for {
		if l.state.Load() == 0 && l.state.CompareAndSwap(0, 1) {
			return spins
		}
		spins++
	}
}

// TryLock attempts to acquire the lock without spinning.
func (l *SpinLock) TryLock() bool {
	return l.state.Load() == 0 && l.state.CompareAndSwap(0, 1)
}

// Unlock releases the lock. It must only be called by the holder.
func (l *SpinLock) Unlock() { l.state.Store(0) }

// CacheLineSize is the assumed size of one cache line in bytes. 64 bytes
// matches every x86 and most ARM server parts, including the Xeons used in
// the paper's testbeds.
const CacheLineSize = 64

// PaddedInt64 is an int64 counter padded to occupy a full cache line, so
// per-thread counters placed in a slice do not false-share.
type PaddedInt64 struct {
	atomic.Int64
	_ [CacheLineSize - 8]byte
}

// PaddedCounters is a set of per-thread padded counters.
type PaddedCounters []PaddedInt64

// NewPaddedCounters returns n independent padded counters.
func NewPaddedCounters(n int) PaddedCounters { return make(PaddedCounters, n) }

// Sum returns the total across all per-thread counters.
func (p PaddedCounters) Sum() int64 {
	var s int64
	for i := range p {
		s += p[i].Load()
	}
	return s
}

// Reset zeroes all counters.
func (p PaddedCounters) Reset() {
	for i := range p {
		p[i].Store(0)
	}
}
