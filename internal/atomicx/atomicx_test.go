package atomicx

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestFloat64LoadStore(t *testing.T) {
	var f Float64
	if got := f.Load(); got != 0 {
		t.Fatalf("zero value = %v, want 0", got)
	}
	f.Store(3.25)
	if got := f.Load(); got != 3.25 {
		t.Fatalf("Load = %v, want 3.25", got)
	}
	f.Store(math.Inf(1))
	if got := f.Load(); !math.IsInf(got, 1) {
		t.Fatalf("Load = %v, want +Inf", got)
	}
}

func TestFloat64AddSequential(t *testing.T) {
	var f Float64
	for i := 0; i < 100; i++ {
		f.Add(0.5)
	}
	if got := f.Load(); got != 50 {
		t.Fatalf("sum = %v, want 50", got)
	}
}

func TestFloat64AddConcurrent(t *testing.T) {
	var f Float64
	const workers = 8
	const perWorker = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				f.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := f.Load(); got != workers*perWorker {
		t.Fatalf("sum = %v, want %v", got, workers*perWorker)
	}
}

func TestAddFloat64Concurrent(t *testing.T) {
	var bits uint64
	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if n := AddFloat64(&bits, 2); n < 1 {
					t.Errorf("attempts = %d, want >= 1", n)
				}
			}
		}()
	}
	wg.Wait()
	if got := LoadFloat64(&bits); got != 2*workers*perWorker {
		t.Fatalf("sum = %v, want %v", got, 2*workers*perWorker)
	}
}

func TestStoreLoadFloat64(t *testing.T) {
	var bits uint64
	StoreFloat64(&bits, -1.5)
	if got := LoadFloat64(&bits); got != -1.5 {
		t.Fatalf("got %v, want -1.5", got)
	}
}

func TestMinFloat64(t *testing.T) {
	var bits uint64
	StoreFloat64(&bits, 10)
	if low, _ := MinFloat64(&bits, 12); low {
		t.Fatal("MinFloat64 lowered 10 to 12")
	}
	if low, att := MinFloat64(&bits, 5); !low || att < 1 {
		t.Fatalf("MinFloat64(5): lowered=%v attempts=%d", low, att)
	}
	if got := LoadFloat64(&bits); got != 5 {
		t.Fatalf("value = %v, want 5", got)
	}
	// Equal value must not count as lowering.
	if low, _ := MinFloat64(&bits, 5); low {
		t.Fatal("MinFloat64 lowered 5 to 5")
	}
}

func TestMinFloat64Concurrent(t *testing.T) {
	var bits uint64
	StoreFloat64(&bits, math.Inf(1))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1000; i > 0; i-- {
				MinFloat64(&bits, float64(w*1000+i))
			}
		}()
	}
	wg.Wait()
	if got := LoadFloat64(&bits); got != 1 {
		t.Fatalf("min = %v, want 1", got)
	}
}

func TestMinMaxInt64(t *testing.T) {
	var a atomic.Int64
	a.Store(7)
	if !MinInt64(&a, 3) || a.Load() != 3 {
		t.Fatalf("MinInt64 failed: %d", a.Load())
	}
	if MinInt64(&a, 9) {
		t.Fatal("MinInt64 raised the value")
	}
	if !MaxInt64(&a, 11) || a.Load() != 11 {
		t.Fatalf("MaxInt64 failed: %d", a.Load())
	}
	if MaxInt64(&a, 2) {
		t.Fatal("MaxInt64 lowered the value")
	}
}

func TestSpinLockMutualExclusion(t *testing.T) {
	var l SpinLock
	counter := 0
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				l.Lock()
				counter++
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != 16000 {
		t.Fatalf("counter = %d, want 16000 (lock is not exclusive)", counter)
	}
}

func TestSpinLockTryLock(t *testing.T) {
	var l SpinLock
	if !l.TryLock() {
		t.Fatal("TryLock on free lock failed")
	}
	if l.TryLock() {
		t.Fatal("TryLock on held lock succeeded")
	}
	l.Unlock()
	if !l.TryLock() {
		t.Fatal("TryLock after Unlock failed")
	}
}

func TestPaddedCounters(t *testing.T) {
	p := NewPaddedCounters(4)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				p[w].Add(1)
			}
		}()
	}
	wg.Wait()
	if got := p.Sum(); got != 4000 {
		t.Fatalf("Sum = %d, want 4000", got)
	}
	p.Reset()
	if got := p.Sum(); got != 0 {
		t.Fatalf("Sum after Reset = %d, want 0", got)
	}
}

// Property: a sequence of atomic float adds equals the plain sum.
func TestAddFloat64MatchesPlainSum(t *testing.T) {
	f := func(vals []float64) bool {
		var bits uint64
		var plain float64
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			AddFloat64(&bits, v)
			plain += v
		}
		got := LoadFloat64(&bits)
		return got == plain
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: MinFloat64 over any sequence yields the minimum of the inputs
// and the initial value.
func TestMinFloat64IsMin(t *testing.T) {
	f := func(init float64, vals []float64) bool {
		if math.IsNaN(init) {
			return true
		}
		var bits uint64
		StoreFloat64(&bits, init)
		want := init
		for _, v := range vals {
			if math.IsNaN(v) {
				continue
			}
			MinFloat64(&bits, v)
			if v < want {
				want = v
			}
		}
		return LoadFloat64(&bits) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAddFloat64Uncontended(b *testing.B) {
	var bits uint64
	for i := 0; i < b.N; i++ {
		AddFloat64(&bits, 1)
	}
}

func BenchmarkAddFloat64Contended(b *testing.B) {
	var bits uint64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			AddFloat64(&bits, 1)
		}
	})
}

func BenchmarkSpinLock(b *testing.B) {
	var l SpinLock
	x := 0
	for i := 0; i < b.N; i++ {
		l.Lock()
		x++
		l.Unlock()
	}
	_ = x
}
