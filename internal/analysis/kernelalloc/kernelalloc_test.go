package kernelalloc_test

import (
	"testing"

	"pushpull/internal/analysis/analysistest"
	"pushpull/internal/analysis/kernelalloc"
)

func TestKernelAlloc(t *testing.T) {
	analysistest.Run(t, kernelalloc.Analyzer, "testdata/allocfix", "pushpull/internal/algo/allocfix")
}
