// Package kernelalloc turns the ROADMAP's zero-allocation-steady-state
// goal into an enforced boundary: inside a hot kernel loop (one that
// records per-iteration progress via RunStats.Record or Options.Tick in
// internal/algo), heap allocations are flagged — make/new calls,
// &composite literals, closures (a func literal allocates its capture
// record every time it's evaluated), and map writes (bucket growth).
//
// Paper grounding: §4.2/§4.5 price push-vs-pull as a synchronization
// and memory-traffic trade; a kernel that mallocs per iteration drags
// the allocator and GC into that budget and makes the BENCH_*.json
// trajectory noise-bound. Deliberate per-round allocation (e.g. a
// frontier rebuilt per level because sizing is data-dependent) is
// annotated `//pushpull:allow alloc <why>` — the alias keeps the escape
// hatch short.
package kernelalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"pushpull/internal/analysis/framework"
)

// Analyzer is the kernelalloc checker.
var Analyzer = &framework.Analyzer{
	Name:    "kernelalloc",
	Aliases: []string{"alloc"},
	Doc: "flags per-iteration heap allocations (make, new, &composite, closures, " +
		"map writes) inside hot kernel loops in internal/algo",
	Run: run,
}

func run(pass *framework.Pass) error {
	if !strings.Contains(pass.Pkg.Path(), "internal/algo") {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			findHotLoops(pass, fd.Body)
		}
	}
	return nil
}

// findHotLoops descends to the outermost loops that record per-iteration
// progress and scans each one's body for allocations.
func findHotLoops(pass *framework.Pass, body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch loop := n.(type) {
		case *ast.ForStmt:
			if recordsProgress(loop) {
				scanAllocs(pass, loop.Body)
				if loop.Cond != nil {
					scanAllocs(pass, loop.Cond)
				}
				if loop.Post != nil {
					scanAllocs(pass, loop.Post)
				}
				return false
			}
		case *ast.RangeStmt:
			if recordsProgress(loop) {
				scanAllocs(pass, loop.Body)
				return false
			}
		}
		return true
	})
}

// recordsProgress reports whether the loop's subtree calls a method
// named Record or Tick — the per-iteration telemetry every kernel round
// loop carries.
func recordsProgress(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if sel.Sel.Name == "Record" || sel.Sel.Name == "Tick" {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// scanAllocs reports each allocation site in the hot region. A func
// literal is flagged once at its position and its body is not descended:
// the closure allocation is the per-iteration cost, and what runs inside
// it belongs to the closure's own loops.
func scanAllocs(pass *framework.Pass, n ast.Node) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch e := m.(type) {
		case *ast.FuncLit:
			pass.Reportf(e.Pos(),
				"closure allocated per iteration in a hot kernel loop (the capture record escapes); hoist the func literal above the loop or annotate //pushpull:allow alloc <why>")
			return false
		case *ast.CallExpr:
			if name := builtinName(pass.Info, e.Fun); name == "make" || name == "new" {
				pass.Reportf(e.Pos(),
					"%s allocates per iteration in a hot kernel loop; hoist the buffer out of the loop (reuse run-scoped storage) or annotate //pushpull:allow alloc <why>", name)
			}
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
					pass.Reportf(e.Pos(),
						"&composite literal escapes to the heap per iteration in a hot kernel loop; hoist it or annotate //pushpull:allow alloc <why>")
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range e.Lhs {
				ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
				if !ok {
					continue
				}
				if _, isMap := pass.Info.TypeOf(ix.X).Underlying().(*types.Map); isMap {
					pass.Reportf(lhs.Pos(),
						"map write in a hot kernel loop can grow buckets (allocation + rehash); use a preallocated slice keyed by vertex id or annotate //pushpull:allow alloc <why>")
				}
			}
		}
		return true
	})
}

// builtinName returns the name of the builtin function e denotes, or "".
func builtinName(info *types.Info, e ast.Expr) string {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return ""
	}
	if _, ok := info.Uses[id].(*types.Builtin); ok {
		return id.Name
	}
	return ""
}
