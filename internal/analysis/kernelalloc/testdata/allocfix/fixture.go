// Package allocfix exercises kernelalloc: heap allocations inside hot
// kernel loops (ones recording per-iteration progress) are flagged;
// hoisted buffers, cold loops, and //pushpull:allow alloc sites are not.
package allocfix

import "time"

type stats struct{}

func (s *stats) Record(d time.Duration) {}

type node struct{ v int }

func badMake(st *stats, rounds, n int) {
	for i := 0; i < rounds; i++ {
		buf := make([]int, n) // want `make allocates per iteration`
		_ = buf
		st.Record(0)
	}
}

func badClosure(st *stats, rounds int) {
	sum := 0
	for i := 0; i < rounds; i++ {
		f := func(x int) int { return x + i } // want `closure allocated per iteration`
		sum = f(sum)
		st.Record(0)
	}
	_ = sum
}

func badComposite(st *stats, rounds int) *node {
	var last *node
	for i := 0; i < rounds; i++ {
		last = &node{v: i} // want `&composite literal escapes`
		st.Record(0)
	}
	return last
}

func badMap(st *stats, rounds int) map[int]int {
	m := map[int]int{}
	for i := 0; i < rounds; i++ {
		m[i] = i // want `map write in a hot kernel loop`
		st.Record(0)
	}
	return m
}

// goodHoisted reuses a run-scoped buffer: nothing allocates inside the
// hot loop.
func goodHoisted(st *stats, rounds, n int) {
	buf := make([]int, n)
	for i := 0; i < rounds; i++ {
		for j := range buf {
			buf[j] = j
		}
		st.Record(0)
	}
}

// coldLoop never records progress, so it is not a hot kernel loop.
func coldLoop(rounds, n int) {
	for i := 0; i < rounds; i++ {
		_ = make([]int, n)
	}
}

func allowedFrontier(st *stats, rounds int) {
	for i := 0; i < rounds; i++ {
		frontier := make([]int, 0, i) //pushpull:allow alloc frontier size is data-dependent per level
		_ = frontier
		st.Record(0)
	}
}

// goodHubRefresh mirrors the hub-cached pull kernel: the dense hub
// contribution buffer is hoisted once and refreshed in place each
// iteration, so the hot loop never touches the allocator.
func goodHubRefresh(st *stats, rounds, hubs int) {
	contrib := make([]float64, hubs)
	for i := 0; i < rounds; i++ {
		for h := range contrib {
			contrib[h] = float64(h + i)
		}
		st.Record(0)
	}
}

// badHubRefresh rebuilds the hub buffer per iteration — the mistake the
// hoisted refresh exists to avoid.
func badHubRefresh(st *stats, rounds, hubs int) {
	for i := 0; i < rounds; i++ {
		contrib := make([]float64, hubs) // want `make allocates per iteration`
		for h := range contrib {
			contrib[h] = float64(h + i)
		}
		st.Record(0)
	}
}

// goodBitmapSwap double-buffers two hoisted packed frontiers: the round
// loop clears and swaps, never reallocates.
func goodBitmapSwap(st *stats, rounds, words int) {
	curr := make([]uint64, words)
	next := make([]uint64, words)
	for i := 0; i < rounds; i++ {
		for w := range next {
			next[w] = 0
		}
		curr, next = next, curr
		st.Record(0)
	}
	_ = curr
}

// badBitmapPerRound allocates a fresh packed frontier every round.
func badBitmapPerRound(st *stats, rounds, words int) {
	var frontier []uint64
	for i := 0; i < rounds; i++ {
		frontier = make([]uint64, words) // want `make allocates per iteration`
		frontier[0] = 1
		st.Record(0)
	}
	_ = frontier
}

// blockCursor stands in for the out-of-core reader's per-worker scratch:
// Load grows its buffer at most once, so the cursor must be hoisted
// outside the round loop, never rebuilt inside it.
type blockCursor struct{ buf []byte }

func (c *blockCursor) load(block, size int) {
	if cap(c.buf) < size {
		c.buf = make([]byte, size) //pushpull:allow alloc grow-once block scratch, reused across loads
	}
	c.buf = c.buf[:size]
}

// goodBlockIteration mirrors the block-sequential pull kernels: one
// cursor per worker, hoisted before the round loop, its grow-once buffer
// amortized across every block of every round.
func goodBlockIteration(st *stats, rounds, blocks, size int) {
	var cur blockCursor
	for i := 0; i < rounds; i++ {
		for b := 0; b < blocks; b++ {
			cur.load(b, size)
			_ = cur.buf
		}
		st.Record(0)
	}
}

// badBlockIteration rebuilds the cursor's buffer per round, defeating
// the grow-once amortization the cursor exists for.
func badBlockIteration(st *stats, rounds, blocks, size int) {
	for i := 0; i < rounds; i++ {
		cur := blockCursor{buf: make([]byte, size)} // want `make allocates per iteration`
		for b := 0; b < blocks; b++ {
			cur.load(b, size)
			_ = cur.buf
		}
		st.Record(0)
	}
}
