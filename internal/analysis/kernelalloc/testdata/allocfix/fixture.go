// Package allocfix exercises kernelalloc: heap allocations inside hot
// kernel loops (ones recording per-iteration progress) are flagged;
// hoisted buffers, cold loops, and //pushpull:allow alloc sites are not.
package allocfix

import "time"

type stats struct{}

func (s *stats) Record(d time.Duration) {}

type node struct{ v int }

func badMake(st *stats, rounds, n int) {
	for i := 0; i < rounds; i++ {
		buf := make([]int, n) // want `make allocates per iteration`
		_ = buf
		st.Record(0)
	}
}

func badClosure(st *stats, rounds int) {
	sum := 0
	for i := 0; i < rounds; i++ {
		f := func(x int) int { return x + i } // want `closure allocated per iteration`
		sum = f(sum)
		st.Record(0)
	}
	_ = sum
}

func badComposite(st *stats, rounds int) *node {
	var last *node
	for i := 0; i < rounds; i++ {
		last = &node{v: i} // want `&composite literal escapes`
		st.Record(0)
	}
	return last
}

func badMap(st *stats, rounds int) map[int]int {
	m := map[int]int{}
	for i := 0; i < rounds; i++ {
		m[i] = i // want `map write in a hot kernel loop`
		st.Record(0)
	}
	return m
}

// goodHoisted reuses a run-scoped buffer: nothing allocates inside the
// hot loop.
func goodHoisted(st *stats, rounds, n int) {
	buf := make([]int, n)
	for i := 0; i < rounds; i++ {
		for j := range buf {
			buf[j] = j
		}
		st.Record(0)
	}
}

// coldLoop never records progress, so it is not a hot kernel loop.
func coldLoop(rounds, n int) {
	for i := 0; i < rounds; i++ {
		_ = make([]int, n)
	}
}

func allowedFrontier(st *stats, rounds int) {
	for i := 0; i < rounds; i++ {
		frontier := make([]int, 0, i) //pushpull:allow alloc frontier size is data-dependent per level
		_ = frontier
		st.Record(0)
	}
}
