package ctxloop_test

import (
	"testing"

	"pushpull/internal/analysis/analysistest"
	"pushpull/internal/analysis/ctxloop"
)

func TestKernelLoops(t *testing.T) {
	analysistest.Run(t, ctxloop.Analyzer, "testdata/ctxfix", "pushpull/internal/algo/ctxfix")
}

func TestRetryLoops(t *testing.T) {
	analysistest.Run(t, ctxloop.Analyzer, "testdata/retryfix", "pushpull/cluster/retryfix")
}

func TestSchedulerLoops(t *testing.T) {
	analysistest.Run(t, ctxloop.Analyzer, "testdata/schedfix", "pushpull/jobs/schedfix")
}
