// Package ctxloop enforces the RunStats.Canceled contract from PR 1:
// every per-iteration loop in internal/algo kernels and every
// sleep/backoff retry loop in the engine/cluster layers must reach a
// cancellation check, so a canceled context always stops the run with a
// truthful partial result instead of spinning to completion.
//
// What counts as a per-iteration loop: one whose body records progress —
// a call to a method named Record (RunStats.Record) or Tick
// (Options.Tick) inside internal/algo, or a call to time.Sleep /
// time.After / time.Tick anywhere in the engine, serve, cluster, or
// jobs layers (the retry/backoff shape), or — same layers — a select
// with at least one receive case (the scheduler/poller shape: a pump
// that waits on channels forever must have a way to be told to stop).
// What counts as a cancellation check: a call to a method named
// Canceled (core.Options.Canceled), an Err()/Done() call on a
// context.Context, or a receive from a stop/done/quit channel.
//
// Profiled kernels are exempt: any function with a core.Profile
// parameter runs uncancelled by design (probe runs are short and their
// counters must cover the whole kernel), mirroring how the unprofiled
// twins carry the cancellation duty.
package ctxloop

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"pushpull/internal/analysis/framework"
)

// Analyzer is the ctxloop checker.
var Analyzer = &framework.Analyzer{
	Name: "ctxloop",
	Doc: "per-iteration kernel loops and retry/backoff loops must reach a " +
		"cancellation check (opt.Canceled / ctx.Err / ctx.Done / stop channel)",
	Run: run,
}

// inAlgo reports whether the package holds kernels (Record/Tick loops).
func inAlgo(path string) bool {
	return strings.Contains(path, "internal/algo")
}

// inServing reports whether the package is part of the serving stack
// (retry/backoff and scheduler/poller loops).
func inServing(path string) bool {
	base := framework.PkgPathBase(path)
	return base == "pushpull" ||
		strings.HasPrefix(base, "pushpull/cluster") ||
		strings.HasPrefix(base, "pushpull/serve") ||
		strings.HasPrefix(base, "pushpull/jobs")
}

func run(pass *framework.Pass) error {
	path := pass.Pkg.Path()
	kernels := inAlgo(path)
	serving := inServing(path)
	if !kernels && !serving {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if kernels && hasProfileParam(pass.Info, fd) {
				continue
			}
			checkBody(pass, fd.Body, kernels, serving)
		}
	}
	return nil
}

// checkBody descends looking for the outermost loops whose subtree makes
// per-iteration progress; each such loop must also contain a
// cancellation check. Inner loops are covered by the outer check — the
// kernels' canonical shape is `for round { if opt.Canceled() {...}; inner
// loops; stats.Record(el) }`.
func checkBody(pass *framework.Pass, body ast.Node, kernels, serving bool) {
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			trigger := triggerIn(pass, n, kernels, serving)
			if trigger == "" {
				return true // descend: an inner loop may still trigger
			}
			if !evidenceIn(pass, n) {
				pass.Reportf(n.Pos(),
					"per-iteration loop (%s) never reaches a cancellation check (opt.Canceled / ctx.Err / ctx.Done / stop channel); the RunStats.Canceled contract requires every iteration loop to stop on a canceled context",
					trigger)
			}
			return false // inner loops ride on this loop's verdict
		}
		return true
	}
	ast.Inspect(body, visit)
}

// triggerIn returns a description of the first per-iteration progress
// marker in n's subtree — a progress/backoff call, or (serving scope) a
// receive-bearing select, the scheduler/poller shape — or "".
func triggerIn(pass *framework.Pass, n ast.Node, kernels, serving bool) string {
	found := ""
	ast.Inspect(n, func(m ast.Node) bool {
		if found != "" {
			return false
		}
		if sel, ok := m.(*ast.SelectStmt); ok && serving && selectReceives(sel) {
			found = "select-driven channel pump"
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		if kernels && (name == "Record" || name == "Tick") {
			found = "calls stats." + name
			return false
		}
		if serving && (name == "Sleep" || name == "After" || name == "Tick") {
			if obj, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok && obj.Pkg() != nil && obj.Pkg().Path() == "time" {
				found = "calls time." + name
				return false
			}
		}
		return true
	})
	return found
}

// selectReceives reports whether the select has at least one receive
// case — a send-only select (slot acquisition) is not a pump.
func selectReceives(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		cc, ok := clause.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue
		}
		switch c := cc.Comm.(type) {
		case *ast.ExprStmt:
			if u, ok := ast.Unparen(c.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				return true
			}
		case *ast.AssignStmt:
			for _, rhs := range c.Rhs {
				if u, ok := ast.Unparen(rhs).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					return true
				}
			}
		}
	}
	return false
}

// evidenceIn reports whether n's subtree contains a cancellation check.
func evidenceIn(pass *framework.Pass, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		switch e := m.(type) {
		case *ast.CallExpr:
			sel, ok := e.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "Canceled":
				found = true
			case "Err", "Done":
				if isContext(pass.Info.TypeOf(sel.X)) {
					found = true
				}
			}
		case *ast.UnaryExpr:
			// <-stop / <-done / <-quit: hand-rolled shutdown channels
			// count as cancellation plumbing.
			if e.Op == token.ARROW {
				if name := finalName(e.X); name != "" {
					l := strings.ToLower(name)
					if strings.Contains(l, "stop") || strings.Contains(l, "done") || strings.Contains(l, "quit") {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// finalName returns the rightmost identifier of an expression chain.
func finalName(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	case *ast.CallExpr:
		return finalName(x.Fun)
	}
	return ""
}

// hasProfileParam reports whether fd takes a core.Profile (by value or
// pointer) — the profiled-kernel exemption.
func hasProfileParam(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		t := info.TypeOf(field.Type)
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Name() == "Profile" && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/core") {
			return true
		}
	}
	return false
}
