// Package ctxfix exercises ctxloop's kernel rules: loops that record
// per-iteration progress must reach a cancellation check; profiled
// kernels (core.Profile parameter) are exempt by design.
package ctxfix

import (
	"context"
	"time"

	"pushpull/internal/core"
)

type stats struct{}

func (s *stats) Record(d time.Duration) {}

type opts struct{ ctx context.Context }

func (o *opts) Canceled() bool { return o.ctx.Err() != nil }

func bad(st *stats, iters int) {
	for i := 0; i < iters; i++ { // want `never reaches a cancellation check`
		st.Record(0)
	}
}

func goodCanceled(o *opts, st *stats, iters int) {
	for i := 0; i < iters; i++ {
		if o.Canceled() {
			return
		}
		st.Record(0)
	}
}

func goodCtxErr(ctx context.Context, st *stats, iters int) {
	for i := 0; i < iters; i++ {
		if ctx.Err() != nil {
			return
		}
		st.Record(0)
	}
}

// goodNested: the check lives in the round loop; the inner edge loop
// rides on it.
func goodNested(o *opts, st *stats, iters, n int) {
	sum := 0
	for i := 0; i < iters; i++ {
		if o.Canceled() {
			return
		}
		for j := 0; j < n; j++ {
			sum += j
		}
		st.Record(0)
	}
	_ = sum
}

// profiledKernel is exempt: probe runs are short and uncancelled so
// their counters cover the whole kernel.
func profiledKernel(prof *core.Profile, st *stats, iters int) {
	for i := 0; i < iters; i++ {
		st.Record(0)
	}
}

func allowedLoop(st *stats, iters int) {
	//pushpull:allow ctxloop bounded two-iteration fixup pass
	for i := 0; i < iters; i++ {
		st.Record(0)
	}
}
