// Package schedfix exercises ctxloop's scheduler/poller rule: a for
// loop driven by a receive-bearing select (the channel-pump shape) must
// also carry a way to be told to stop — a stop/done/quit channel
// receive or a ctx.Done case.
package schedfix

import "context"

type sched struct {
	notify chan struct{}
	work   chan int
	sem    chan struct{}
	stop   chan struct{}
}

// badPump waits on work channels forever with no shutdown path.
func (s *sched) badPump() {
	for { // want `never reaches a cancellation check`
		select {
		case <-s.notify:
		case n := <-s.work:
			_ = n
		}
	}
}

// goodPump carries a stop-channel case.
func (s *sched) goodPump() {
	for {
		select {
		case <-s.stop:
			return
		case <-s.notify:
		}
	}
}

// goodCtxPump stops through the context.
func (s *sched) goodCtxPump(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case n := <-s.work:
			_ = n
		}
	}
}

// sendOnly: a select made only of sends (slot acquisition) is not a
// pump and must not trigger.
func (s *sched) sendOnly(n int) {
	for i := 0; i < n; i++ {
		select {
		case s.sem <- struct{}{}:
		default:
		}
	}
}
