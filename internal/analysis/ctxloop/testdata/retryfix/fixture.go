// Package retryfix exercises ctxloop's serving-layer rule: retry and
// backoff loops (time.Sleep / time.After) must reach a cancellation
// check or a stop-channel receive.
package retryfix

import (
	"context"
	"time"
)

func badRetry(attempts int) error {
	var err error
	for i := 0; i < attempts; i++ { // want `never reaches a cancellation check`
		time.Sleep(time.Millisecond << i)
		err = nil
	}
	return err
}

func goodRetry(ctx context.Context, attempts int) error {
	for i := 0; i < attempts; i++ {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Millisecond << i):
		}
	}
	return nil
}

type checker struct{ stop chan struct{} }

// goodStopChannel: a hand-rolled shutdown channel counts as
// cancellation plumbing.
func (c *checker) loop(interval time.Duration) {
	for {
		select {
		case <-c.stop:
			return
		case <-time.After(interval):
		}
	}
}
