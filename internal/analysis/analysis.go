// Package analysis registers the pushpull-lint analyzer suite: the five
// invariant checkers that keep the engine's concurrency and kernel
// contracts honest (see each subpackage's doc comment for the invariant
// and its paper grounding).
package analysis

import (
	"pushpull/internal/analysis/atomicmix"
	"pushpull/internal/analysis/capshonesty"
	"pushpull/internal/analysis/ctxloop"
	"pushpull/internal/analysis/framework"
	"pushpull/internal/analysis/kernelalloc"
	"pushpull/internal/analysis/lockheld"
)

// All returns the full analyzer suite in stable order.
func All() []*framework.Analyzer {
	return []*framework.Analyzer{
		atomicmix.Analyzer,
		capshonesty.Analyzer,
		ctxloop.Analyzer,
		kernelalloc.Analyzer,
		lockheld.Analyzer,
	}
}
