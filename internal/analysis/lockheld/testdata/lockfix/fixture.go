// Package lockfix exercises lockheld: mutexes held across blocking
// operations (HTTP, file I/O, channel ops, transitively blocking
// same-package calls) are flagged; unlock-first code and annotated
// design-level serialization are not.
package lockfix

import (
	"net/http"
	"os"
	"sync"
)

type box struct {
	mu     sync.Mutex
	client *http.Client
	val    int
}

func (b *box) badHTTP(url string) error {
	b.mu.Lock()
	resp, err := b.client.Get(url) // want `held across blocking call http.Client.Get`
	if err == nil {
		resp.Body.Close()
	}
	b.mu.Unlock()
	return err
}

func (b *box) badDefer(path string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	f, err := os.Open(path) // want `held across blocking call os.Open`
	if err != nil {
		return err
	}
	return f.Close()
}

func (b *box) goodLockAfterIO(url string) error {
	resp, err := b.client.Get(url)
	if err != nil {
		return err
	}
	resp.Body.Close()
	b.mu.Lock()
	b.val++
	b.mu.Unlock()
	return nil
}

func (b *box) fanOut(urls []string) {
	for _, u := range urls {
		resp, err := b.client.Get(u)
		if err == nil {
			resp.Body.Close()
		}
	}
}

func (b *box) badTransitive(urls []string) {
	b.mu.Lock()
	b.fanOut(urls) // want `held across blocking call fanOut \(blocks transitively\)`
	b.mu.Unlock()
}

type queue struct {
	mu sync.Mutex
	ch chan int
}

func (q *queue) badSend(v int) {
	q.mu.Lock()
	q.ch <- v // want `held across a channel send`
	q.mu.Unlock()
}

func (q *queue) goodUnlockFirst(v int) {
	q.mu.Lock()
	q.mu.Unlock()
	q.ch <- v
}

type registry struct {
	mu sync.RWMutex
}

func (r *registry) badReadLock(path string) ([]byte, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return os.ReadFile(path) // want `held across blocking call os.ReadFile`
}

func (b *box) allowedWriteThrough(path string, data []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	//pushpull:allow lockheld mutations serialize through the store by design
	return os.WriteFile(path, data, 0o644)
}
