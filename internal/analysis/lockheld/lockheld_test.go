package lockheld_test

import (
	"testing"

	"pushpull/internal/analysis/analysistest"
	"pushpull/internal/analysis/lockheld"
)

func TestLockHeld(t *testing.T) {
	analysistest.Run(t, lockheld.Analyzer, "testdata/lockfix", "pushpull/cluster/lockfix")
}
