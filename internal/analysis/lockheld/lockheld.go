// Package lockheld flags sync.Mutex/sync.RWMutex critical sections that
// reach a blocking operation — network or file I/O, channel operations,
// http.Client calls, WaitGroup waits — in the engine, store, shard,
// serve and cluster layers. A lock held across a slow worker call stalls
// every contender behind one straggler, which is exactly the
// head-of-line blocking the shard architecture exists to avoid.
//
// The analysis is intra-procedural per critical section with a
// same-package transitive summary: a package function whose body reaches
// a blocking primitive is itself blocking, so router.putGraph holding
// mutMu across fanPut (which fans HTTP PUTs over the fleet) is caught
// even though the I/O is two calls down. Cross-package, a small
// name-based set covers the repo's known slow calls (WriteWorkload /
// ReadWorkload serialization, Engine mutations, GraphStore interface
// dispatch).
//
// Deliberate serialization — the engine's mutation mutex intentionally
// spans store write-through so restores can't interleave — is annotated
// `//pushpull:allow lockheld <why>` at the flagged call.
package lockheld

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"pushpull/internal/analysis/framework"
)

// Analyzer is the lockheld checker.
var Analyzer = &framework.Analyzer{
	Name: "lockheld",
	Doc: "flags sync.Mutex/RWMutex held across blocking operations (I/O, channel " +
		"ops, HTTP calls) in the engine, store, serve and cluster layers",
	Run: run,
}

func inScope(path string) bool {
	base := framework.PkgPathBase(path)
	return base == "pushpull" ||
		strings.HasPrefix(base, "pushpull/cluster") ||
		strings.HasPrefix(base, "pushpull/serve")
}

// blockingFuncs maps (package path, function name) of package-level
// functions that block.
var blockingFuncs = map[[2]string]bool{
	{"os", "Create"}:       true,
	{"os", "CreateTemp"}:   true,
	{"os", "Open"}:         true,
	{"os", "OpenFile"}:     true,
	{"os", "ReadFile"}:     true,
	{"os", "WriteFile"}:    true,
	{"os", "MkdirAll"}:     true,
	{"os", "ReadDir"}:      true,
	{"io", "ReadAll"}:      true,
	{"io", "Copy"}:         true,
	{"io", "CopyN"}:        true,
	{"net", "Dial"}:        true,
	{"net", "DialTimeout"}: true,
	{"net", "Listen"}:      true,
	{"net/http", "Get"}:    true,
	{"net/http", "Post"}:   true,
	{"net/http", "Head"}:   true,
	{"time", "Sleep"}:      true,
}

// blockingMethods maps (receiver type, method name) of methods that
// block. Receiver type is "pkgpath.TypeName".
var blockingMethods = map[[2]string]bool{
	{"net/http.Client", "Do"}:       true,
	{"net/http.Client", "Get"}:      true,
	{"net/http.Client", "Post"}:     true,
	{"net/http.Client", "PostForm"}: true,
	{"net/http.Client", "Head"}:     true,
	{"sync.WaitGroup", "Wait"}:      true,
	{"sync.Cond", "Wait"}:           true,
	{"os.File", "Sync"}:             true,
}

// blockingByName lists repo-specific calls that are slow regardless of
// receiver package: graph (de)serialization and the Engine mutations
// that write through to the GraphStore. These cross package boundaries,
// where the transitive summary can't see.
var blockingByName = map[string]bool{
	"WriteWorkload":    true,
	"ReadWorkload":     true,
	"RegisterWorkload": true,
	"DropWorkload":     true,
	"AttachStore":      true,
}

func run(pass *framework.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	summary := buildSummary(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if block, ok := n.(*ast.BlockStmt); ok {
				checkBlock(pass, summary, block)
			}
			return true
		})
	}
	return nil
}

// checkBlock scans one statement list for Lock() calls and walks each
// critical section until its matching Unlock.
func checkBlock(pass *framework.Pass, summary map[*types.Func]bool, block *ast.BlockStmt) {
	for i, stmt := range block.List {
		recv, rlock, ok := lockCall(pass.Info, stmt)
		if !ok {
			continue
		}
		lockPos := stmt.Pos()
		rest := block.List[i+1:]
		// `mu.Lock(); defer mu.Unlock()` → the section runs to the end of
		// the block. Otherwise it runs until the first statement whose
		// subtree contains the matching Unlock (that statement itself is
		// not scanned — conservatively, code after an inline Unlock on
		// the same statement list line is out of the section).
		deferred := false
		if len(rest) > 0 {
			if ds, ok := rest[0].(*ast.DeferStmt); ok && isUnlockExpr(pass.Info, ds.Call, recv, rlock) {
				deferred = true
				rest = rest[1:]
			}
		}
		for _, s := range rest {
			if !deferred && containsUnlock(pass.Info, s, recv, rlock) {
				break
			}
			reportBlocking(pass, summary, s, recv, lockPos)
		}
	}
}

// lockCall matches `x.Lock()` / `x.RLock()` on a sync mutex, returning
// the canonical receiver string and whether it was a read lock.
func lockCall(info *types.Info, stmt ast.Stmt) (recv string, rlock, ok bool) {
	es, isExpr := stmt.(*ast.ExprStmt)
	if !isExpr {
		return "", false, false
	}
	call, isCall := es.X.(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	name := sel.Sel.Name
	if name != "Lock" && name != "RLock" {
		return "", false, false
	}
	if !isSyncMutex(info.TypeOf(sel.X)) {
		return "", false, false
	}
	return types.ExprString(sel.X), name == "RLock", true
}

// isUnlockExpr matches `recv.Unlock()` / `recv.RUnlock()` for the same
// receiver expression.
func isUnlockExpr(info *types.Info, call *ast.CallExpr, recv string, rlock bool) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	want := "Unlock"
	if rlock {
		want = "RUnlock"
	}
	return sel.Sel.Name == want && isSyncMutex(info.TypeOf(sel.X)) && types.ExprString(sel.X) == recv
}

// containsUnlock reports whether stmt's subtree calls the matching
// unlock.
func containsUnlock(info *types.Info, stmt ast.Stmt, recv string, rlock bool) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isUnlockExpr(info, call, recv, rlock) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isSyncMutex reports whether t (possibly a pointer) is sync.Mutex or
// sync.RWMutex.
func isSyncMutex(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// reportBlocking flags every blocking operation in stmt's subtree.
// Bodies of nested func literals, go statements and defers are skipped:
// they don't execute while the lock is held (or, for defer-after-unlock,
// execute outside the section).
func reportBlocking(pass *framework.Pass, summary map[*types.Func]bool, stmt ast.Stmt, recv string, lockPos token.Pos) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.SendStmt:
			pass.Reportf(e.Pos(), "%s held across a channel send (lock acquired at %s); a full channel stalls every contender — move the send outside the critical section or annotate //pushpull:allow lockheld <why>",
				recv, pass.Fset.Position(lockPos))
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				pass.Reportf(e.Pos(), "%s held across a channel receive (lock acquired at %s); move the receive outside the critical section or annotate //pushpull:allow lockheld <why>",
					recv, pass.Fset.Position(lockPos))
			}
		case *ast.SelectStmt:
			if !selectHasDefault(e) {
				pass.Reportf(e.Pos(), "%s held across a blocking select (lock acquired at %s); move the select outside the critical section or annotate //pushpull:allow lockheld <why>",
					recv, pass.Fset.Position(lockPos))
			}
			return false
		case *ast.CallExpr:
			if desc := blockingCall(pass.Info, summary, e); desc != "" {
				pass.Reportf(e.Pos(), "%s held across blocking call %s (lock acquired at %s); do the slow work outside the critical section or annotate //pushpull:allow lockheld <why>",
					recv, desc, pass.Fset.Position(lockPos))
			}
		}
		return true
	})
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// blockingCall classifies one call; returns a description or "".
func blockingCall(info *types.Info, summary map[*types.Func]bool, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil {
		return ""
	}
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recvType := sig.Recv().Type()
		if p, ok := recvType.(*types.Pointer); ok {
			recvType = p.Elem()
		}
		if named, ok := recvType.(*types.Named); ok {
			obj := named.Obj()
			tn := obj.Name()
			if obj.Pkg() != nil {
				if blockingMethods[[2]string{obj.Pkg().Path() + "." + tn, name}] {
					return fmtCall(obj.Pkg().Name()+"."+tn, name)
				}
			}
			// Interface dispatch through the GraphStore contract is disk
			// or worse on the other side.
			if _, isIface := named.Underlying().(*types.Interface); isIface && tn == "GraphStore" {
				return fmtCall(tn, name)
			}
		}
		if blockingByName[name] {
			return name
		}
		if summary[fn] {
			return name + " (blocks transitively)"
		}
		return ""
	}
	if fn.Pkg() != nil && blockingFuncs[[2]string{fn.Pkg().Path(), name}] {
		return fn.Pkg().Name() + "." + name
	}
	if blockingByName[name] {
		return name
	}
	if summary[fn] {
		return name + " (blocks transitively)"
	}
	return ""
}

func fmtCall(recv, name string) string { return recv + "." + name }

// calleeFunc resolves the called function object, if static.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
		}
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// buildSummary computes the same-package transitive blocking set: a
// fixpoint over "this function's body (outside go statements and func
// literals) reaches a blocking primitive or calls a blocking
// same-package function".
func buildSummary(pass *framework.Pass) map[*types.Func]bool {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	blocking := map[*types.Func]bool{}
	for changed := true; changed; {
		changed = false
		for fn, fd := range decls {
			if blocking[fn] {
				continue
			}
			if bodyBlocks(pass.Info, blocking, fd.Body) {
				blocking[fn] = true
				changed = true
			}
		}
	}
	return blocking
}

// bodyBlocks reports whether body reaches a blocking primitive or a
// known-blocking function, skipping go statements and func literal
// bodies (they run on other goroutines / later).
func bodyBlocks(info *types.Info, blocking map[*types.Func]bool, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch e := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				found = true
			}
		case *ast.SelectStmt:
			if !selectHasDefault(e) {
				found = true
			}
			return false
		case *ast.CallExpr:
			if blockingCall(info, blocking, e) != "" {
				found = true
			}
		}
		return !found
	})
	return found
}
