// Package atomicmix flags struct fields and package-level variables
// that are accessed both through sync/atomic (or pushpull's
// internal/atomicx) and by plain load/store in the same package.
//
// This is the push-side race class §4.2 of the paper invites: push
// kernels publish through CAS/fetch-add while some other code path reads
// the same slot with a plain load, and `go test -race` only catches the
// interleavings the tests happen to schedule. Mixing is occasionally
// correct — bfs's direction-optimizing kernel alternates atomic push
// rounds with plain pull rounds separated by a barrier — and those
// sites must carry a `//pushpull:allow atomicmix <why>` comment naming
// the phase-separation argument.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"pushpull/internal/analysis/framework"
)

// Analyzer is the atomicmix checker.
var Analyzer = &framework.Analyzer{
	Name: "atomicmix",
	Doc: "flags struct fields and package-level vars accessed both atomically " +
		"(sync/atomic, internal/atomicx) and by plain load/store in the same package",
	Run: run,
}

// isAtomicPkg reports whether path is one of the atomic-operation
// packages whose calls mark an access as atomic.
func isAtomicPkg(path string) bool {
	return path == "sync/atomic" || strings.HasSuffix(path, "internal/atomicx")
}

// use is one access to a tracked variable.
type use struct {
	pos    token.Pos
	atomic bool
}

func run(pass *framework.Pass) error {
	// Pass A: claim the base variables of &x addresses handed to
	// sync/atomic / atomicx calls. The claim is on the identity of the
	// base node (the SelectorExpr/Ident itself), so pass B can tell an
	// atomic access from a plain one without re-deriving call context.
	claimed := map[ast.Node]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || obj.Pkg() == nil || !isAtomicPkg(obj.Pkg().Path()) {
				return true
			}
			for _, arg := range call.Args {
				if un, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && un.Op == token.AND {
					if base, _ := baseVar(pass.Info, un.X); base != nil {
						claimed[base] = true
					}
				}
			}
			return true
		})
	}

	// Pass B: categorize every access to a tracked variable.
	uses := map[*types.Var][]use{}
	for _, f := range pass.Files {
		framework.WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
			v, base := trackedVar(pass, n)
			if v == nil {
				return true
			}
			switch under := v.Type().Underlying().(type) {
			case *types.Slice, *types.Array, *types.Map:
				// Only element accesses touch shared cells; reading the
				// header (len, range, passing the slice along) is not a
				// race with atomic element ops.
				_ = under
				if !underIndex(n, stack) {
					return true
				}
			}
			uses[v] = append(uses[v], use{pos: base.Pos(), atomic: claimed[base]})
			return true
		})
	}

	type finding struct {
		pos       token.Pos
		v         *types.Var
		atomicPos token.Pos
	}
	var findings []finding
	for v, us := range uses {
		var atomics, plains []use
		for _, u := range us {
			if u.atomic {
				atomics = append(atomics, u)
			} else {
				plains = append(plains, u)
			}
		}
		if len(atomics) == 0 || len(plains) == 0 {
			continue
		}
		for _, p := range plains {
			findings = append(findings, finding{pos: p.pos, v: v, atomicPos: atomics[0].pos})
		}
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].pos < findings[j].pos })
	for _, f := range findings {
		pass.Reportf(f.pos,
			"plain access to %s, which is also accessed atomically (e.g. %s); use atomic ops everywhere or document the phase separation with //pushpull:allow atomicmix",
			f.v.Name(), pass.Fset.Position(f.atomicPos))
	}
	return nil
}

// trackedVar reports whether n is an access to a variable atomicmix
// tracks: a struct field (via selector) or a package-level var of the
// package under analysis. It returns the variable and the base node the
// claim map is keyed on. Fields whose type is itself an atomic box
// (atomic.Int64, atomicx.Float64, ...) are exempt — the type makes plain
// access impossible.
func trackedVar(pass *framework.Pass, n ast.Node) (*types.Var, ast.Node) {
	switch e := n.(type) {
	case *ast.SelectorExpr:
		v, ok := pass.Info.Uses[e.Sel].(*types.Var)
		if !ok || !v.IsField() || atomicBoxed(v.Type()) {
			return nil, nil
		}
		return v, e
	case *ast.Ident:
		v, ok := pass.Info.Uses[e].(*types.Var)
		if !ok || v.IsField() || atomicBoxed(v.Type()) {
			return nil, nil
		}
		if v.Pkg() != pass.Pkg || v.Parent() != pass.Pkg.Scope() {
			return nil, nil
		}
		return v, e
	}
	return nil, nil
}

// baseVar peels parens, indexing and derefs off an lvalue and returns
// the tracked variable at its base along with the base node.
func baseVar(info *types.Info, e ast.Expr) (ast.Node, *types.Var) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			if v, ok := info.Uses[x.Sel].(*types.Var); ok && v.IsField() {
				return x, v
			}
			e = x.X
		case *ast.Ident:
			if v, ok := info.Uses[x].(*types.Var); ok && !v.IsField() {
				return x, v
			}
			return nil, nil
		default:
			return nil, nil
		}
	}
}

// underIndex reports whether node n is (through parens) the operand of
// an index expression — i.e. an element of the slice/map field is being
// touched, not just its header.
func underIndex(n ast.Node, stack []ast.Node) bool {
	child := n
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			child = p
			continue
		case *ast.IndexExpr:
			return p.X == child || sameUnparen(p.X, child)
		}
		return false
	}
	return false
}

func sameUnparen(a ast.Expr, b ast.Node) bool {
	be, ok := b.(ast.Expr)
	if !ok {
		return false
	}
	return ast.Unparen(a) == ast.Unparen(be)
}

// atomicBoxed reports whether t is a named type defined by sync/atomic
// or internal/atomicx (those types can't be accessed non-atomically).
func atomicBoxed(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && isAtomicPkg(pkg.Path())
}
