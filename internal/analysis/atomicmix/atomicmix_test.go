package atomicmix_test

import (
	"testing"

	"pushpull/internal/analysis/analysistest"
	"pushpull/internal/analysis/atomicmix"
)

func TestAtomicMix(t *testing.T) {
	analysistest.Run(t, atomicmix.Analyzer, "testdata/atomicmixfix", "atomicmixfix")
}
