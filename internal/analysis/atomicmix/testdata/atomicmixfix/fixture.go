// Package atomicmixfix exercises the atomicmix analyzer: mixed
// atomic/plain access to fields and package vars must be flagged,
// single-discipline access and atomic box types must not.
package atomicmixfix

import (
	"math/bits"
	"sync/atomic"

	"pushpull/internal/atomicx"
)

type counters struct {
	hits   int64
	misses int64
	rank   uint64
	boxed  atomic.Int64
	ready  []int32
}

func (c *counters) bump() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counters) report() int64 {
	return c.hits // want `plain access to hits`
}

func (c *counters) storePlain(v int64) {
	c.hits = v // want `plain access to hits`
}

func (c *counters) missOnly() {
	c.misses++ // plain-only field: no finding
}

func (c *counters) boxedOnly() int64 {
	c.boxed.Add(1) // atomic box type: plain access is impossible
	return c.boxed.Load()
}

func (c *counters) addRank(d float64) {
	atomicx.AddFloat64(&c.rank, d)
}

func (c *counters) rankPlain() uint64 {
	return c.rank // want `plain access to rank`
}

func (c *counters) pushRound(u int) {
	atomic.AddInt32(&c.ready[u], 1)
}

func (c *counters) pullRound(u int) bool {
	return c.ready[u] == 1 // want `plain access to ready`
}

func (c *counters) headerOnly() int {
	return len(c.ready) // slice header read, not an element: no finding
}

func (c *counters) allowedPull(u int) bool {
	//pushpull:allow atomicmix pull phase runs after the round barrier
	return c.ready[u] == 1
}

var total uint64

func addTotal() {
	atomic.AddUint64(&total, 1)
}

func readTotal() uint64 {
	return total // want `plain access to total`
}

// bitmap mirrors the packed []uint64 frontier of internal/frontier:
// insertion is a load-first CAS on the 64-vertex word, while the pull
// round scans words plainly after the round barrier. The plain scans
// are the same cells the CAS targets, so each one must either be
// flagged or carry the phase-separation allow.
type bitmap struct {
	words []uint64
}

func (b *bitmap) set(v int) bool {
	mask := uint64(1) << (uint(v) & 63)
	for {
		old := atomic.LoadUint64(&b.words[v>>6])
		if old&mask != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(&b.words[v>>6], old, old|mask) {
			return true
		}
	}
}

func (b *bitmap) get(v int) bool {
	return b.words[v>>6]&(uint64(1)<<(uint(v)&63)) != 0 // want `plain access to words`
}

func (b *bitmap) clearWords() {
	for i := range b.words {
		b.words[i] = 0 // want `plain access to words`
	}
}

// headerScan ranges over the slice header only; per-word element reads
// after the barrier carry the allow naming the phase argument.
func (b *bitmap) allowedCount() int {
	c := 0
	for i := range b.words {
		//pushpull:allow atomicmix dense scan runs after the round barrier
		c += bits.OnesCount64(b.words[i])
	}
	return c
}
