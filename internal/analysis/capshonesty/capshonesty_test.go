package capshonesty_test

import (
	"testing"

	"pushpull/internal/analysis/analysistest"
	"pushpull/internal/analysis/capshonesty"
)

func TestCapsHonesty(t *testing.T) {
	analysistest.Run(t, capshonesty.Analyzer, "testdata/capsfix", "capsfix")
}
