// Package capsfix exercises capshonesty: Caps{Probes: true} registry
// entries must dispatch to a profiled kernel, and Err* sentinels must be
// wrapped with %w. The Caps/builtin shapes are local mirrors of the root
// package's registry types — the analyzer matches them structurally.
package capsfix

import (
	"errors"
	"fmt"
)

type Caps struct {
	Probes       bool
	NeedsWeights bool
}

type builtin struct {
	name string
	caps Caps
	run  func() int
}

func runProfiled() int { return 1 }
func runPlain() int    { return 0 }

var registry = []builtin{
	{name: "good", caps: Caps{Probes: true}, run: func() int { return runProfiled() }},
	{name: "bad", caps: Caps{Probes: true}, run: runPlain}, // want `never dispatches to a profiled kernel`
	{name: "noprobes", caps: Caps{}, run: runPlain},
}

// makeRun mirrors the dist-* builder shape: the registry element is a
// call that returns the run closure.
func makeRun() func() int {
	return func() int { return runProfiled() }
}

func plainBuilder() func() int {
	return func() int { return runPlain() }
}

var distCaps = Caps{Probes: true}

var distRegistry = []builtin{
	{"dist-good", Caps{Probes: true}, makeRun()},
	{"dist-bad", distCaps, plainBuilder()}, // want `never dispatches to a profiled kernel`
}

var ErrNeedsWeights = errors.New("needs weights")

func wrapGood(name string) error {
	return fmt.Errorf("algo %s: %w", name, ErrNeedsWeights)
}

func wrapBad(name string) error {
	return fmt.Errorf("algo %s: %v", name, ErrNeedsWeights) // want `sentinel error ErrNeedsWeights passed to fmt.Errorf with %v`
}

func wrapAllowed(name string) error {
	//pushpull:allow capshonesty legacy text-only path, callers match on message
	return fmt.Errorf("algo %s: %v", name, ErrNeedsWeights)
}

// notSentinel: local error values are not sentinels.
func notSentinel(name string) error {
	errLocal := errors.New("local")
	return fmt.Errorf("algo %s: %v", name, errLocal)
}
