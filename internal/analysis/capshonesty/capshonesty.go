// Package capshonesty cross-checks the registry's declared capabilities
// against what the code actually does:
//
//  1. A registry entry whose Caps literal declares Probes: true must
//     dispatch to a profiled kernel — its run function (or the function
//     the run element calls to build one) must reference a *Profiled
//     kernel or the dist-* Counter machinery. A probes claim without a
//     probe path silently returns un-instrumented results, which PR 2
//     spent a whole release stamping out.
//  2. Typed sentinel errors (ErrNeedsWeights, ErrOverloaded, …) passed
//     to fmt.Errorf must use the %w verb. With %v/%s the sentinel's
//     identity is flattened into text and errors.Is stops working across
//     the serve/cluster boundary, where HTTP status mapping depends on
//     it.
package capshonesty

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"pushpull/internal/analysis/framework"
)

// Analyzer is the capshonesty checker.
var Analyzer = &framework.Analyzer{
	Name: "capshonesty",
	Doc: "Caps{Probes: true} registry entries must dispatch to a profiled kernel; " +
		"sentinel errors must be wrapped with %w",
	Run: run,
}

func run(pass *framework.Pass) error {
	varInit := collectVarInits(pass)
	funcDecls := collectFuncDecls(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CompositeLit:
				checkRegistryEntry(pass, varInit, funcDecls, e)
			case *ast.CallExpr:
				checkErrorfWrap(pass, e)
			}
			return true
		})
	}
	return nil
}

// --- check 1: Caps{Probes: true} ⇒ profiled dispatch ---

// checkRegistryEntry matches composite literals of a struct type that
// carries both a Caps-typed field and a func-typed field (the registry's
// builtin shape, keyed or positional).
func checkRegistryEntry(pass *framework.Pass, varInit map[*types.Var]ast.Expr, funcDecls map[*types.Func]*ast.FuncDecl, lit *ast.CompositeLit) {
	t := pass.Info.TypeOf(lit)
	if t == nil {
		return
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	capsIdx, runIdx := -1, -1
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if isCapsType(ft) && capsIdx < 0 {
			capsIdx = i
		}
		if _, isFunc := ft.Underlying().(*types.Signature); isFunc && runIdx < 0 {
			runIdx = i
		}
	}
	if capsIdx < 0 || runIdx < 0 {
		return
	}
	capsExpr := fieldValue(st, lit, capsIdx)
	runExpr := fieldValue(st, lit, runIdx)
	if capsExpr == nil || runExpr == nil {
		return
	}
	if !probesTrue(pass, varInit, capsExpr) {
		return
	}
	if body := resolveFuncBody(pass, varInit, funcDecls, runExpr); body != nil && !mentionsProfiled(body) {
		pass.Reportf(capsExpr.Pos(),
			"registry entry declares Caps{Probes: true} but its run function never dispatches to a profiled kernel (no *Profiled / Counter reference); wire the probe path or drop the claim")
	}
}

// isCapsType reports whether t is a named struct type called Caps with a
// bool field Probes (matched structurally so fixtures don't need to
// import the root package).
func isCapsType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Caps" {
		return false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == "Probes" {
			_, isBool := st.Field(i).Type().Underlying().(*types.Basic)
			return isBool
		}
	}
	return false
}

// fieldValue extracts the value for struct field index idx from a keyed
// or positional composite literal.
func fieldValue(st *types.Struct, lit *ast.CompositeLit, idx int) ast.Expr {
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok && id.Name == st.Field(idx).Name() {
				return kv.Value
			}
			continue
		}
		if i == idx {
			return elt
		}
	}
	return nil
}

// probesTrue resolves capsExpr (possibly through a local/package var
// initializer) to a Caps literal and reports whether Probes is true.
func probesTrue(pass *framework.Pass, varInit map[*types.Var]ast.Expr, capsExpr ast.Expr) bool {
	lit, ok := resolveLit(pass, varInit, capsExpr)
	if !ok {
		return false
	}
	st, ok := pass.Info.TypeOf(lit).Underlying().(*types.Struct)
	if !ok {
		return false
	}
	probesIdx := -1
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == "Probes" {
			probesIdx = i
			break
		}
	}
	if probesIdx < 0 {
		return false
	}
	v := fieldValue(st, lit, probesIdx)
	if v == nil {
		return false
	}
	tv, ok := pass.Info.Types[v]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Bool {
		return false
	}
	return constant.BoolVal(tv.Value)
}

// resolveLit follows at most one level of identifier indirection to a
// composite literal.
func resolveLit(pass *framework.Pass, varInit map[*types.Var]ast.Expr, e ast.Expr) (*ast.CompositeLit, bool) {
	e = ast.Unparen(e)
	if lit, ok := e.(*ast.CompositeLit); ok {
		return lit, true
	}
	if id, ok := e.(*ast.Ident); ok {
		if v, ok := pass.Info.Uses[id].(*types.Var); ok {
			if init, ok := varInit[v]; ok {
				if lit, ok := ast.Unparen(init).(*ast.CompositeLit); ok {
					return lit, true
				}
			}
		}
	}
	return nil, false
}

// resolveFuncBody finds the code the run element executes: a func
// literal's body, a named function's declaration, the declaration of the
// function a call expression invokes (the dist-* builder shape), or a
// variable's initializer. Returns nil when it can't tell — no blind
// reports.
func resolveFuncBody(pass *framework.Pass, varInit map[*types.Var]ast.Expr, funcDecls map[*types.Func]*ast.FuncDecl, e ast.Expr) ast.Node {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.FuncLit:
		return x.Body
	case *ast.Ident:
		switch obj := pass.Info.Uses[x].(type) {
		case *types.Func:
			if fd := funcDecls[obj]; fd != nil {
				return fd.Body
			}
		case *types.Var:
			if init, ok := varInit[obj]; ok {
				return resolveFuncBody(pass, varInit, funcDecls, init)
			}
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
			if fn, ok := pass.Info.Uses[id].(*types.Func); ok {
				if fd := funcDecls[fn]; fd != nil {
					return fd.Body
				}
			}
		}
	}
	return nil
}

// mentionsProfiled reports whether the body references a profiled kernel
// or the dist-* Counter machinery.
func mentionsProfiled(body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if strings.Contains(id.Name, "Profiled") || strings.Contains(id.Name, "Counter") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// --- check 2: sentinel errors wrapped with %w ---

// checkErrorfWrap verifies that every Err* package-level sentinel passed
// to fmt.Errorf rides a %w verb.
func checkErrorfWrap(pass *framework.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	tv, ok := pass.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	verbs, ok := formatVerbs(constant.StringVal(tv.Value))
	if !ok {
		return
	}
	for i, arg := range call.Args[1:] {
		if i >= len(verbs) {
			break
		}
		name, isSentinel := sentinelError(pass, arg)
		if isSentinel && verbs[i] != 'w' {
			pass.Reportf(arg.Pos(),
				"sentinel error %s passed to fmt.Errorf with %%%c; wrap it with %%w so errors.Is keeps working across the serve/cluster boundary",
				name, verbs[i])
		}
	}
}

// formatVerbs returns the verb letters of a format string in argument
// order. ok is false for forms the scanner doesn't model (explicit
// argument indexes, *-width consuming args).
func formatVerbs(format string) ([]rune, bool) {
	var verbs []rune
	rs := []rune(format)
	for i := 0; i < len(rs); i++ {
		if rs[i] != '%' {
			continue
		}
		i++
		if i >= len(rs) {
			break
		}
		if rs[i] == '%' {
			continue
		}
		for i < len(rs) && strings.ContainsRune("#+-0 .0123456789", rs[i]) {
			i++
		}
		if i >= len(rs) {
			break
		}
		if rs[i] == '[' || rs[i] == '*' {
			return nil, false
		}
		verbs = append(verbs, rs[i])
	}
	return verbs, true
}

// sentinelError reports whether e denotes a package-level error variable
// named Err*.
func sentinelError(pass *framework.Pass, e ast.Expr) (string, bool) {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return "", false
	}
	v, ok := pass.Info.Uses[id].(*types.Var)
	if !ok || !strings.HasPrefix(v.Name(), "Err") {
		return "", false
	}
	if v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return "", false
	}
	errType, ok := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if !ok {
		return "", false
	}
	if !types.Implements(v.Type(), errType) {
		return "", false
	}
	return v.Name(), true
}

// collectVarInits maps variables to their single-assignment initializer
// expressions (ValueSpecs and := statements) so Caps and run values
// bound through locals resolve.
func collectVarInits(pass *framework.Pass) map[*types.Var]ast.Expr {
	out := map[*types.Var]ast.Expr{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.ValueSpec:
				for i, name := range d.Names {
					if i < len(d.Values) {
						if v, ok := pass.Info.Defs[name].(*types.Var); ok {
							out[v] = d.Values[i]
						}
					}
				}
			case *ast.AssignStmt:
				if len(d.Lhs) != len(d.Rhs) {
					return true
				}
				for i, lhs := range d.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if v, ok := pass.Info.Defs[id].(*types.Var); ok {
							out[v] = d.Rhs[i]
						}
					}
				}
			}
			return true
		})
	}
	return out
}

// collectFuncDecls maps package function objects to their declarations.
func collectFuncDecls(pass *framework.Pass) map[*types.Func]*ast.FuncDecl {
	out := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
					out[fn] = fd
				}
			}
		}
	}
	return out
}
