package framework

import "go/ast"

// WalkStack traverses root in depth-first order, calling fn with each
// node and the stack of its ancestors (outermost first, not including n
// itself). If fn returns false, n's children are skipped.
//
// It is the small slice of golang.org/x/tools/go/ast/inspector that the
// analyzers need (atomicmix must see whether a field selector sits under
// an index expression or an atomic call's &argument).
func WalkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}
