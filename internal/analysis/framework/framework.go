// Package framework is the stdlib-only core of pushpull-lint: an
// analyzer API shaped after golang.org/x/tools/go/analysis (Analyzer,
// Pass, Diagnostic) so each checker is a drop-in candidate for the real
// framework the day x/tools is vendorable, plus the suppression-comment
// machinery shared by every checker.
//
// The x/tools dependency is deliberately absent: this module builds
// offline, so the driver (see internal/analysis/driver) loads and
// type-checks packages with go/parser + go/types + `go list -export`
// instead of go/packages, and cmd/pushpull-lint speaks cmd/go's
// -vettool config protocol directly instead of via unitchecker.
//
// Suppressions: a diagnostic is suppressed by a comment
//
//	//pushpull:allow <name> [justification]
//
// on the flagged line or on the line directly above it, where <name> is
// the analyzer's name or one of its aliases (e.g. `alloc` for
// kernelalloc). Justifications are strongly encouraged — the comment is
// the documented proof obligation that the flagged invariant holds for
// another reason (phase separation, design-level serialization, ...).
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //pushpull:allow comments.
	Name string
	// Aliases are extra names accepted in //pushpull:allow comments.
	Aliases []string
	// Doc is the one-paragraph description printed by `pushpull-lint help`.
	Doc string
	// Run reports the analyzer's diagnostics for one package.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the canonical file:line:col form vet
// relays.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos lies in a _test.go file. Analyzers whose
// invariants only bind production code (ctxloop, kernelalloc) skip these.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// AllowDirective is the suppression-comment prefix.
const AllowDirective = "//pushpull:allow"

// PkgPathBase strips cmd/go's test-variant suffix from a package path:
// "pushpull [pushpull.test]" → "pushpull". Under `go vet -vettool` the
// same package is analyzed again as its test variant, and scope
// predicates must keep matching it.
func PkgPathBase(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}

// allowSet maps file -> line -> analyzer names allowed on that line.
type allowSet map[string]map[int]map[string]bool

// collectAllows scans the comment groups of files for AllowDirective
// comments.
func collectAllows(fset *token.FileSet, files []*ast.File) allowSet {
	set := allowSet{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, AllowDirective) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, AllowDirective))
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				name := fields[0]
				pos := fset.Position(c.Pos())
				byLine := set[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]bool{}
					set[pos.Filename] = byLine
				}
				names := byLine[pos.Line]
				if names == nil {
					names = map[string]bool{}
					byLine[pos.Line] = names
				}
				names[name] = true
			}
		}
	}
	return set
}

// allowed reports whether d is suppressed for analyzer a: an allow
// comment naming a (or an alias) sits on d's line or the line above.
func (s allowSet) allowed(a *Analyzer, d Diagnostic) bool {
	byLine := s[d.Pos.Filename]
	if byLine == nil {
		return false
	}
	names := []string{a.Name}
	names = append(names, a.Aliases...)
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		onLine := byLine[line]
		if onLine == nil {
			continue
		}
		for _, n := range names {
			if onLine[n] {
				return true
			}
		}
	}
	return false
}

// RunAnalyzers runs every analyzer over one loaded package and returns
// the surviving (non-suppressed) diagnostics in file/line order.
func RunAnalyzers(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	allows := collectAllows(fset, files)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, Info: info}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		for _, d := range pass.diags {
			// The invariants bind production code; _test.go files get a
			// blanket pass (fixture files are plain .go files, so the
			// analyzer test suite is unaffected).
			if strings.HasSuffix(d.Pos.Filename, "_test.go") {
				continue
			}
			if !allows.allowed(a, d) {
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		return out[i].Message < out[j].Message
	})
	return out, nil
}
