// The self-check: pushpull-lint's own invariants hold over the tree
// that defines them. Every finding in the repo proper is either fixed
// or carries a //pushpull:allow justification, so a clean run is the
// steady state and any regression shows up here (and in CI) as a
// concrete diagnostic, file:line included.
package analysis_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"pushpull/internal/analysis"
	"pushpull/internal/analysis/driver"
)

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test directory")
		}
		dir = parent
	}
}

// TestRepoIsLintClean runs the full analyzer suite over every package in
// the module and requires zero diagnostics.
func TestRepoIsLintClean(t *testing.T) {
	root := moduleRoot(t)
	pkgs, err := driver.Load(root, "./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("driver.Load returned no packages")
	}
	suite := analysis.All()
	clean := 0
	for _, p := range pkgs {
		diags, err := p.Analyze(suite)
		if err != nil {
			t.Fatalf("%s: %v", p.Path, err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
		if len(diags) == 0 {
			clean++
		}
	}
	t.Logf("%d/%d packages clean", clean, len(pkgs))
}

// TestVettoolRunsClean builds the pushpull-lint binary and drives it
// through `go vet -vettool`, the exact invocation CI uses. This also
// covers _test.go files, which the standalone loader skips.
func TestVettoolRunsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and re-vets the module")
	}
	root := moduleRoot(t)
	tool := filepath.Join(t.TempDir(), "pushpull-lint")
	build := exec.Command("go", "build", "-o", tool, "./cmd/pushpull-lint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building pushpull-lint: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+tool, "./...")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Errorf("go vet -vettool reported findings: %v\n%s", err, out)
	} else if s := strings.TrimSpace(string(out)); s != "" {
		t.Logf("vet output: %s", s)
	}
}
