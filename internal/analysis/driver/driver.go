// Package driver loads and type-checks Go packages for pushpull-lint
// without golang.org/x/tools: package discovery and export data come
// from `go list -export -deps -json`, type checking from go/types with
// the stdlib gc importer reading that export data.
//
// Two loading modes exist:
//
//   - Load: resolve package patterns (./...) against the enclosing
//     module — the standalone `pushpull-lint ./...` path. Test files are
//     not loaded here; `go vet -vettool` covers them (it presents test
//     variants as separate compilation units).
//   - LoadDir: load one directory as a single synthetic package — the
//     analysistest fixture path, where testdata packages are invisible
//     to go list by design.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"pushpull/internal/analysis/framework"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Analyze runs the analyzers over the package, returning surviving
// diagnostics.
func (p *Package) Analyze(analyzers []*framework.Analyzer) ([]framework.Diagnostic, error) {
	return framework.RunAnalyzers(analyzers, p.Fset, p.Files, p.Pkg, p.Info)
}

// listedPackage is the subset of `go list -json` output the driver needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` in dir over args and decodes
// the package stream.
func goList(dir string, args []string) ([]*listedPackage, error) {
	cmdArgs := append([]string{"list", "-export", "-deps", "-json=ImportPath,Dir,GoFiles,Export,DepOnly,Standard,Error", "--"}, args...)
	cmd := exec.Command("go", cmdArgs...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var pkgs []*listedPackage
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}

// Load resolves patterns (relative to dir; "" means the working
// directory) into type-checked packages.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}
	lookup := exportLookup(exports)
	var out []*Package
	for _, lp := range listed {
		if lp.DepOnly || len(lp.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(lp.GoFiles))
		for i, f := range lp.GoFiles {
			files[i] = filepath.Join(lp.Dir, f)
		}
		pkg, err := typecheck(lp.ImportPath, files, lookup, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// LoadDir type-checks every .go file in one directory as a single
// package registered under importPath — the fixture loader. Imports are
// resolved with `go list -export` (run in moduleDir so the fixture may
// import module packages as well as the standard library).
func LoadDir(moduleDir, dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("driver: no .go files in %s", dir)
	}
	// Parse once just to harvest the import set, then list those packages
	// for export data.
	fset := token.NewFileSet()
	importSet := map[string]bool{}
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, imp := range af.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err == nil && p != "unsafe" {
				importSet[p] = true
			}
		}
	}
	exports := map[string]string{}
	if len(importSet) > 0 {
		var imports []string
		for p := range importSet {
			imports = append(imports, p)
		}
		sort.Strings(imports)
		listed, err := goList(moduleDir, imports)
		if err != nil {
			return nil, err
		}
		for _, lp := range listed {
			if lp.Export != "" {
				exports[lp.ImportPath] = lp.Export
			}
		}
	}
	return typecheck(importPath, files, exportLookup(exports), nil)
}

// VetUnit is the part of cmd/go's -vettool JSON config the driver needs
// to rebuild one compilation unit: the unit's own files plus the export
// data of every dependency, with ImportMap translating import paths as
// written to the canonical package paths keying PackageFile (test
// variants like "pushpull [pushpull.test]" live there).
type VetUnit struct {
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
}

// LoadVetUnit type-checks the unit described by a vet config.
func LoadVetUnit(u VetUnit) (*Package, error) {
	return typecheck(u.ImportPath, u.GoFiles, exportLookup(u.PackageFile), u.ImportMap)
}

// exportLookup adapts a path->export-file map to the gc importer's
// lookup signature.
func exportLookup(exports map[string]string) func(path string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
}

// importerFunc lifts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// typecheck parses files and type-checks them as package path. importMap
// translates source import paths to canonical package paths (nil: the
// identity, which holds everywhere Go modules don't vendor).
func typecheck(path string, filenames []string, lookup func(string) (io.ReadCloser, error), importMap map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	compilerImporter := importer.ForCompiler(fset, "gc", lookup)
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if importPath == "unsafe" {
			return types.Unsafe, nil
		}
		if mapped, ok := importMap[importPath]; ok {
			importPath = mapped
		}
		return compilerImporter.Import(importPath)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}
