// Package analysistest runs an analyzer over a fixture directory and
// checks its diagnostics against `// want "regexp"` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest far enough for this
// module's fixtures (which must build offline, so the x/tools original
// is out of reach).
//
// A fixture line that should be flagged carries a trailing comment
//
//	cfg.ready[u] = 1 // want `plain access to ready`
//
// with one or more quoted (or backquoted) regexps; each must match
// exactly one diagnostic reported on that line. Diagnostics without a
// matching want, and wants without a matching diagnostic, fail the
// test. Suppression fixtures carry a //pushpull:allow comment and no
// want — the assertion is silence.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"pushpull/internal/analysis/driver"
	"pushpull/internal/analysis/framework"
)

// wantRe extracts the quoted regexps of a want comment.
var wantRe = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// Run loads dir (relative to the test's working directory) as a package
// named importPath, runs the analyzer, and asserts the diagnostics match
// the fixture's want comments. The import path matters: scope predicates
// key on it (e.g. kernelalloc only fires under .../internal/algo/...).
func Run(t *testing.T, a *framework.Analyzer, dir, importPath string) {
	t.Helper()
	root, err := ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := driver.LoadDir(root, dir, importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := pkg.Analyze([]*framework.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(text[len("want "):], -1) {
					pat := m[1]
					if m[2] != "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					k := key{pos.Filename, pos.Line}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		matched := -1
		for i, re := range wants[k] {
			if re != nil && re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected diagnostic at %s: %s", d.Pos, d.Message)
			continue
		}
		wants[k][matched] = nil // consumed
	}
	for k, res := range wants {
		for _, re := range res {
			if re != nil {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
			}
		}
	}
}

// ModuleRoot walks up from the working directory to the enclosing
// go.mod.
func ModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysistest: no go.mod above working directory")
		}
		dir = parent
	}
}
