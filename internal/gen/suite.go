package gen

import (
	"fmt"
	"sort"

	"pushpull/internal/graph"
)

// SuiteGraph names one workload of the reproduction suite: a synthetic
// stand-in for a Table 2 dataset, at a size scaled to this environment.
type SuiteGraph struct {
	ID       string // paper's dataset id with a -sim suffix semantics
	PaperID  string // the Table 2 id it stands in for
	Kind     string // generator family
	Describe string
}

// Suite lists the workloads in Table 2 order.
func Suite() []SuiteGraph {
	return []SuiteGraph{
		{ID: "rmat", PaperID: "rmat", Kind: "kronecker", Describe: "R-MAT power-law (Graph500 parameters)"},
		{ID: "orc", PaperID: "orc", Kind: "kronecker", Describe: "Orkut-class social network: high d̄, low D"},
		{ID: "pok", PaperID: "pok", Kind: "kronecker", Describe: "Pokec-class social network: medium d̄, low D"},
		{ID: "ljn", PaperID: "ljn", Kind: "community", Describe: "LiveJournal-class community graph: moderate d̄, low D"},
		{ID: "am", PaperID: "am", Kind: "prefattach", Describe: "Amazon-class purchase network: low d̄, moderate D"},
		{ID: "rca", PaperID: "rca", Kind: "roadgrid", Describe: "California-road-class network: d̄≈1.4, large D"},
		{ID: "er", PaperID: "erdos-renyi", Kind: "erdos-renyi", Describe: "Erdős–Rényi uniform random graph"},
	}
}

// Named builds the named suite graph at the given scale. scale is a
// size multiplier: 1.0 is the default laptop-scale workload; experiments
// shrink it for per-test speed. Unknown names return an error listing the
// valid ids.
func Named(name string, scale float64, seed uint64) (*graph.CSR, error) {
	if scale <= 0 {
		scale = 1
	}
	// sz scales a default dimension, with a floor to keep tiny scales valid.
	sz := func(def int, min int) int {
		v := int(float64(def) * scale)
		if v < min {
			v = min
		}
		return v
	}
	logsz := func(def int) int {
		// Scale a power-of-two exponent: scale 0.5 drops one level at 0.25 two, etc.
		d := def
		for s := scale; s <= 0.5 && d > 4; s *= 2 {
			d--
		}
		for s := scale; s >= 2 && d < 24; s /= 2 {
			d++
		}
		return d
	}
	switch name {
	case "rmat":
		return RMAT(DefaultRMAT(logsz(16), 8, seed))
	case "orc": // high average degree, low diameter
		return RMAT(DefaultRMAT(logsz(14), 20, seed))
	case "pok":
		return RMAT(DefaultRMAT(logsz(14), 10, seed))
	case "ljn":
		return Community(sz(1<<15, 64), sz(256, 4), 7.0, 1.7, seed)
	case "am":
		return PrefAttach(sz(1<<15, 8), 2, seed)
	case "rca":
		side := sz(360, 8)
		return RoadGrid(side, side, 0.72, seed)
	case "er":
		return ErdosRenyi(sz(1<<15, 16), 8, seed)
	default:
		ids := make([]string, 0, len(Suite()))
		for _, s := range Suite() {
			ids = append(ids, s.ID)
		}
		sort.Strings(ids)
		return nil, fmt.Errorf("gen: unknown suite graph %q (valid: %v)", name, ids)
	}
}

// NamedWeighted builds a named suite graph and attaches symmetric uniform
// weights in [1, 100) for the weighted-graph algorithms (SSSP, MST).
func NamedWeighted(name string, scale float64, seed uint64) (*graph.CSR, error) {
	g, err := Named(name, scale, seed)
	if err != nil {
		return nil, err
	}
	return WithUniformWeights(g, 1, 100, seed+1), nil
}
