package gen

import (
	"testing"
	"testing/quick"

	"pushpull/internal/graph"
)

func TestRMATDeterministicAndValid(t *testing.T) {
	p := DefaultRMAT(10, 8, 42)
	g1, err := RMAT(p)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := RMAT(p)
	if err != nil {
		t.Fatal(err)
	}
	if g1.M() != g2.M() || g1.N() != g2.N() {
		t.Fatal("same seed produced different graphs")
	}
	if err := g1.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g1.IsSymmetric() {
		t.Fatal("rmat not symmetric")
	}
	if g1.N() != 1024 {
		t.Fatalf("n = %d", g1.N())
	}
	// Dedup shrinks m below EdgeFactor*n but not absurdly.
	if g1.UndirectedM() < int64(2*g1.N()) {
		t.Fatalf("m = %d suspiciously low", g1.UndirectedM())
	}
}

func TestRMATPowerLaw(t *testing.T) {
	g, err := RMAT(DefaultRMAT(12, 16, 7))
	if err != nil {
		t.Fatal(err)
	}
	// Power-law: max degree far above average.
	if g.MaxDegree() < int64(6*g.AvgDegree()) {
		t.Fatalf("maxdeg %d vs avg %.1f: no skew", g.MaxDegree(), g.AvgDegree())
	}
}

func TestRMATParamValidation(t *testing.T) {
	bad := []RMATParams{
		{Scale: -1, EdgeFactor: 8, A: 0.25, B: 0.25, C: 0.25, D: 0.25},
		{Scale: 40, EdgeFactor: 8, A: 0.25, B: 0.25, C: 0.25, D: 0.25},
		{Scale: 5, EdgeFactor: 0, A: 0.25, B: 0.25, C: 0.25, D: 0.25},
		{Scale: 5, EdgeFactor: 8, A: 0.9, B: 0.3, C: 0.2, D: 0.1},
	}
	for i, p := range bad {
		if _, err := RMAT(p); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestErdosRenyi(t *testing.T) {
	g, err := ErdosRenyi(2000, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Average degree near 8 (dedup makes it slightly lower).
	if g.AvgDegree() < 6 || g.AvgDegree() > 8.5 {
		t.Fatalf("avg degree = %.2f", g.AvgDegree())
	}
	// ER degrees are concentrated: max degree within a small factor.
	if g.MaxDegree() > 40 {
		t.Fatalf("max degree = %d too skewed for ER", g.MaxDegree())
	}
	if _, err := ErdosRenyi(0, 1, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := ErdosRenyi(10, 100, 1); err == nil {
		t.Fatal("overfull degree accepted")
	}
}

func TestRoadGrid(t *testing.T) {
	g, err := RoadGrid(50, 50, 0.72, 9)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 2500 {
		t.Fatalf("n = %d", g.N())
	}
	// d̄ ≈ 2*0.72 ≈ 1.44 — the rca class.
	if g.AvgDegree() < 1.2 || g.AvgDegree() > 1.7 {
		t.Fatalf("avg degree = %.2f, want ≈1.44", g.AvgDegree())
	}
	if g.MaxDegree() > 4 {
		t.Fatalf("grid degree %d > 4", g.MaxDegree())
	}
	s := graph.ComputeStats(g)
	if s.Diameter < 50 {
		t.Fatalf("road diameter = %d, want large", s.Diameter)
	}
	if _, err := RoadGrid(0, 5, 0.5, 1); err == nil {
		t.Fatal("bad dims accepted")
	}
	if _, err := RoadGrid(5, 5, 1.5, 1); err == nil {
		t.Fatal("bad keep accepted")
	}
}

func TestPrefAttach(t *testing.T) {
	g, err := PrefAttach(5000, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// m ≈ k(n-k): low average degree like a purchase network.
	if g.AvgDegree() < 1.5 || g.AvgDegree() > 2.5 {
		t.Fatalf("avg degree = %.2f", g.AvgDegree())
	}
	// Preferential attachment produces hubs.
	if g.MaxDegree() < 20 {
		t.Fatalf("max degree = %d: no hubs", g.MaxDegree())
	}
	// One connected component by construction.
	if s := graph.ComputeStats(g); s.Components != 1 {
		t.Fatalf("components = %d", s.Components)
	}
	if _, err := PrefAttach(5, 5, 1); err == nil {
		t.Fatal("k>=n accepted")
	}
}

func TestCommunity(t *testing.T) {
	g, err := Community(4000, 40, 7, 1.7, 13)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.AvgDegree() < 5 || g.AvgDegree() > 10 {
		t.Fatalf("avg degree = %.2f", g.AvgDegree())
	}
	// Internal edges dominate: count edges within blocks of size 100.
	intra, inter := 0, 0
	for v := graph.V(0); v < g.NumV; v++ {
		for _, u := range g.Neighbors(v) {
			if int(v)/100 == int(u)/100 {
				intra++
			} else {
				inter++
			}
		}
	}
	if intra < 2*inter {
		t.Fatalf("intra=%d inter=%d: no community structure", intra, inter)
	}
	if _, err := Community(10, 20, 1, 1, 1); err == nil {
		t.Fatal("c>n accepted")
	}
}

func TestFixtures(t *testing.T) {
	if g := Path(5); g.UndirectedM() != 4 || g.MaxDegree() != 2 {
		t.Fatal("Path wrong")
	}
	if g := Ring(6); g.UndirectedM() != 6 || g.MaxDegree() != 2 {
		t.Fatal("Ring wrong")
	}
	if g := Star(7); g.UndirectedM() != 6 || g.Degree(0) != 6 {
		t.Fatal("Star wrong")
	}
	if g := Complete(5); g.UndirectedM() != 10 || g.MaxDegree() != 4 {
		t.Fatal("Complete wrong")
	}
	g := BipartiteFull(3, 4)
	if g.UndirectedM() != 12 {
		t.Fatal("BipartiteFull wrong")
	}
	// No edge within a side.
	for i := graph.V(0); i < 3; i++ {
		for j := graph.V(0); j < 3; j++ {
			if i != j && g.HasEdge(i, j) {
				t.Fatal("edge within side A")
			}
		}
	}
}

func TestWithUniformWeightsSymmetric(t *testing.T) {
	g, err := RMAT(DefaultRMAT(8, 8, 5))
	if err != nil {
		t.Fatal(err)
	}
	wg := WithUniformWeights(g, 1, 100, 77)
	if !wg.Weighted() {
		t.Fatal("no weights")
	}
	// Symmetry: w(u,v) == w(v,u) for every edge.
	weightOf := func(u, v graph.V) float32 {
		ns, ws := wg.Neighbors(u), wg.NeighborWeights(u)
		for i, x := range ns {
			if x == v {
				return ws[i]
			}
		}
		t.Fatalf("edge (%d,%d) missing", u, v)
		return 0
	}
	for v := graph.V(0); v < wg.NumV; v++ {
		for _, u := range wg.Neighbors(v) {
			wa, wb := weightOf(v, u), weightOf(u, v)
			if wa != wb {
				t.Fatalf("asymmetric weight (%d,%d): %v vs %v", v, u, wa, wb)
			}
			if wa < 1 || wa >= 100 {
				t.Fatalf("weight %v out of range", wa)
			}
		}
	}
}

func TestNamedSuite(t *testing.T) {
	for _, s := range Suite() {
		g, err := Named(s.ID, 0.1, 1)
		if err != nil {
			t.Fatalf("%s: %v", s.ID, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", s.ID, err)
		}
		if g.N() < 8 {
			t.Fatalf("%s: n = %d", s.ID, g.N())
		}
	}
	if _, err := Named("nope", 1, 1); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestNamedSparsityClasses(t *testing.T) {
	// The suite must preserve Table 2's sparsity ordering:
	// d̄(orc) > d̄(pok) > d̄(am) > d̄(rca) and D(rca) ≫ D(orc).
	load := func(id string) (*graph.CSR, graph.Stats) {
		g, err := Named(id, 0.25, 3)
		if err != nil {
			t.Fatal(err)
		}
		return g, graph.ComputeStats(g)
	}
	orc, sOrc := load("orc")
	pok, sPok := load("pok")
	am, sAm := load("am")
	rca, sRca := load("rca")
	_ = orc
	_ = pok
	_ = am
	_ = rca
	if !(sOrc.AvgDeg > sPok.AvgDeg && sPok.AvgDeg > sAm.AvgDeg && sAm.AvgDeg > sRca.AvgDeg) {
		t.Fatalf("degree ordering violated: orc=%.1f pok=%.1f am=%.1f rca=%.1f",
			sOrc.AvgDeg, sPok.AvgDeg, sAm.AvgDeg, sRca.AvgDeg)
	}
	if sRca.Diameter < 4*sOrc.Diameter {
		t.Fatalf("diameter classes violated: rca=%d orc=%d", sRca.Diameter, sOrc.Diameter)
	}
}

func TestNamedWeighted(t *testing.T) {
	g, err := NamedWeighted("rca", 0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Weighted() {
		t.Fatal("weights missing")
	}
}

func TestNamedScaleMonotone(t *testing.T) {
	small, err := Named("orc", 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Named("orc", 1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if small.N() >= big.N() {
		t.Fatalf("scale not monotone: %d vs %d", small.N(), big.N())
	}
}

// Property: every generator output passes validation for random seeds.
func TestGeneratorsAlwaysValid(t *testing.T) {
	f := func(seed uint64) bool {
		g1, err := RMAT(DefaultRMAT(7, 4, seed))
		if err != nil || g1.Validate() != nil {
			return false
		}
		g2, err := ErdosRenyi(200, 4, seed)
		if err != nil || g2.Validate() != nil {
			return false
		}
		g3, err := RoadGrid(12, 12, 0.7, seed)
		if err != nil || g3.Validate() != nil {
			return false
		}
		g4, err := PrefAttach(100, 2, seed)
		if err != nil || g4.Validate() != nil {
			return false
		}
		g5, err := Community(200, 8, 4, 1, seed)
		if err != nil || g5.Validate() != nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRMAT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RMAT(DefaultRMAT(12, 8, uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
