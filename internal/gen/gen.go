// Package gen provides deterministic graph generators for the families
// evaluated in the paper (§6, Table 2): power-law Kronecker (R-MAT) graphs,
// Erdős–Rényi graphs, and synthetic stand-ins for the real-world datasets
// (social networks with high d̄ and low diameter, purchase networks with low
// d̄ and low diameter, road networks with very low d̄ and large diameter).
//
// The real SNAP datasets (orkut, pokec, livejournal, amazon, roadNet-CA)
// are not redistributable and exceed this environment's memory, so each is
// replaced by a generator producing the same sparsity class at configurable
// scale; DESIGN.md documents the substitution. All generators are seeded
// and deterministic.
package gen

import (
	"fmt"

	"pushpull/internal/graph"
	"pushpull/internal/rng"
)

// RMATParams configures the recursive Kronecker edge sampler of Leskovec
// et al. [36]; (A, B, C, D) are the quadrant probabilities.
type RMATParams struct {
	Scale      int     // n = 2^Scale vertices
	EdgeFactor int     // edges sampled = EdgeFactor * n
	A, B, C, D float64 // must sum to 1
	Seed       uint64
}

// DefaultRMAT returns the Graph500 parameter set (0.57, 0.19, 0.19, 0.05).
func DefaultRMAT(scale, edgeFactor int, seed uint64) RMATParams {
	return RMATParams{Scale: scale, EdgeFactor: edgeFactor, A: 0.57, B: 0.19, C: 0.19, D: 0.05, Seed: seed}
}

// RMAT generates an undirected power-law graph. Duplicate edges and
// self-loops are removed by the builder, so the final m is slightly below
// EdgeFactor·n, just as with the Graph500 generator.
func RMAT(p RMATParams) (*graph.CSR, error) {
	if p.Scale < 0 || p.Scale > 30 {
		return nil, fmt.Errorf("gen: rmat scale %d out of range [0,30]", p.Scale)
	}
	if p.EdgeFactor < 1 {
		return nil, fmt.Errorf("gen: rmat edge factor %d < 1", p.EdgeFactor)
	}
	if s := p.A + p.B + p.C + p.D; s < 0.999 || s > 1.001 {
		return nil, fmt.Errorf("gen: rmat probabilities sum to %v, want 1", s)
	}
	n := 1 << p.Scale
	r := rng.New(p.Seed)
	b := graph.NewBuilder(n)
	edges := p.EdgeFactor * n
	for i := 0; i < edges; i++ {
		u, v := 0, 0
		for bit := 0; bit < p.Scale; bit++ {
			x := r.Float64()
			switch {
			case x < p.A:
				// top-left: no bits set
			case x < p.A+p.B:
				v |= 1 << bit
			case x < p.A+p.B+p.C:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		b.AddEdge(graph.V(u), graph.V(v))
	}
	return b.Build()
}

// ErdosRenyi generates a G(n, m) graph with m ≈ avgDeg·n sampled edges.
// avgDeg follows the paper's Table 2 convention d̄ = m/n.
func ErdosRenyi(n int, avgDeg float64, seed uint64) (*graph.CSR, error) {
	if n < 1 {
		return nil, fmt.Errorf("gen: erdos-renyi n = %d < 1", n)
	}
	if avgDeg < 0 || avgDeg > float64(n-1)/2 {
		return nil, fmt.Errorf("gen: erdos-renyi average degree %v out of range", avgDeg)
	}
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	m := int(avgDeg * float64(n))
	for i := 0; i < m; i++ {
		b.AddEdge(graph.V(r.Intn(n)), graph.V(r.Intn(n)))
	}
	return b.Build()
}

// RoadGrid generates a road-network-like graph: a rows×cols 2D lattice with
// each lattice edge kept with probability keep, mimicking the very low
// average degree (rca: d̄ = 1.4) and large diameter (D = 849) of road
// networks in Table 2.
func RoadGrid(rows, cols int, keep float64, seed uint64) (*graph.CSR, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("gen: roadgrid %dx%d invalid", rows, cols)
	}
	if keep < 0 || keep > 1 {
		return nil, fmt.Errorf("gen: roadgrid keep probability %v out of [0,1]", keep)
	}
	r := rng.New(seed)
	n := rows * cols
	b := graph.NewBuilder(n)
	id := func(i, j int) graph.V { return graph.V(i*cols + j) }
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if j+1 < cols && r.Bool(keep) {
				b.AddEdge(id(i, j), id(i, j+1))
			}
			if i+1 < rows && r.Bool(keep) {
				b.AddEdge(id(i, j), id(i+1, j))
			}
		}
	}
	return b.Build()
}

// PrefAttach generates a Barabási–Albert preferential-attachment graph:
// each new vertex attaches to k earlier vertices chosen proportionally to
// degree — the purchase-network stand-in (low d̄, low diameter, skewed
// degrees).
func PrefAttach(n, k int, seed uint64) (*graph.CSR, error) {
	if n < 2 || k < 1 || k >= n {
		return nil, fmt.Errorf("gen: prefattach n=%d k=%d invalid", n, k)
	}
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	// targets holds one entry per edge endpoint; sampling uniformly from it
	// implements degree-proportional attachment.
	targets := make([]graph.V, 0, 2*k*n)
	targets = append(targets, 0)
	for v := 1; v < n; v++ {
		attach := k
		if v < k {
			attach = v
		}
		chosen := map[graph.V]bool{}
		for len(chosen) < attach {
			t := targets[r.Intn(len(targets))]
			if t != graph.V(v) {
				chosen[t] = true
			}
		}
		for t := range chosen {
			b.AddEdge(graph.V(v), t)
			targets = append(targets, t)
		}
		targets = append(targets, graph.V(v))
	}
	return b.Build()
}

// Community generates a planted-partition graph with c communities:
// within-community edges with average internal degree dIn and cross edges
// with average external degree dOut (both in the paper's d̄ = m/n
// convention) — the ground-truth-community stand-in for livejournal-like
// inputs.
func Community(n, c int, dIn, dOut float64, seed uint64) (*graph.CSR, error) {
	if n < 1 || c < 1 || c > n {
		return nil, fmt.Errorf("gen: community n=%d c=%d invalid", n, c)
	}
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	size := n / c
	if size < 1 {
		size = 1
	}
	comm := func(v int) int { return v / size }
	mIn := int(dIn * float64(n))
	for i := 0; i < mIn; i++ {
		u := r.Intn(n)
		base := comm(u) * size
		span := size
		if base+span > n {
			span = n - base
		}
		v := base + r.Intn(span)
		b.AddEdge(graph.V(u), graph.V(v))
	}
	mOut := int(dOut * float64(n))
	for i := 0; i < mOut; i++ {
		b.AddEdge(graph.V(r.Intn(n)), graph.V(r.Intn(n)))
	}
	return b.Build()
}

// Path returns the path 0—1—…—(n−1).
func Path(n int) *graph.CSR {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(graph.V(i), graph.V(i+1))
	}
	return b.MustBuild()
}

// Ring returns the cycle on n vertices.
func Ring(n int) *graph.CSR {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(graph.V(i), graph.V((i+1)%n))
	}
	return b.MustBuild()
}

// Star returns the star with center 0 and n−1 leaves.
func Star(n int) *graph.CSR {
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, graph.V(i))
	}
	return b.MustBuild()
}

// Complete returns K_n.
func Complete(n int) *graph.CSR {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(graph.V(i), graph.V(j))
		}
	}
	return b.MustBuild()
}

// BipartiteFull returns K_{a,b}: the extreme case of §5 where a bipartite
// ownership split makes PA pushing issue zero non-atomic local updates.
func BipartiteFull(a, b int) *graph.CSR {
	bl := graph.NewBuilder(a + b)
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			bl.AddEdge(graph.V(i), graph.V(a+j))
		}
	}
	return bl.MustBuild()
}

// WithUniformWeights returns a copy of g carrying symmetric uniform weights
// in [lo, hi). The weight of {u, v} is derived by hashing (min, max, seed),
// so both directions of an undirected edge always agree.
func WithUniformWeights(g *graph.CSR, lo, hi float32, seed uint64) *graph.CSR {
	out := &graph.CSR{
		NumV:    g.NumV,
		Offsets: g.Offsets,
		Adj:     g.Adj,
		Weights: make([]float32, len(g.Adj)),
	}
	span := hi - lo
	for v := graph.V(0); v < g.NumV; v++ {
		offs := g.Offsets[v]
		for i, u := range g.Neighbors(v) {
			a, b := v, u
			if a > b {
				a, b = b, a
			}
			h := rng.Mix64(seed ^ (uint64(uint32(a))<<32 | uint64(uint32(b))))
			frac := float32(h>>11) / float32(1<<53)
			out.Weights[offs+int64(i)] = lo + span*frac
		}
	}
	return out
}
