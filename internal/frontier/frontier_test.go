package frontier

import (
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"pushpull/internal/gen"
	"pushpull/internal/graph"
)

func TestSparseBasics(t *testing.T) {
	s := NewSparse(4)
	if s.Len() != 0 {
		t.Fatal("new frontier not empty")
	}
	s.Add(3)
	s.Add(1)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if vs := s.Vertices(); vs[0] != 3 || vs[1] != 1 {
		t.Fatalf("Vertices = %v", vs)
	}
	s.Reset()
	if s.Len() != 0 {
		t.Fatal("Reset failed")
	}
	fs := FromSlice([]graph.V{5, 6})
	if fs.Len() != 2 {
		t.Fatal("FromSlice wrong")
	}
}

func TestSparseEdgeWork(t *testing.T) {
	g := gen.Star(5) // center 0 has degree 4, leaves degree 1
	s := NewSparse(0)
	s.Add(0)
	s.Add(1)
	if w := s.EdgeWork(g); w != 5 {
		t.Fatalf("EdgeWork = %d, want 5", w)
	}
}

func TestPerThreadMergeOrderAndClear(t *testing.T) {
	pt := NewPerThread(3)
	if pt.Threads() != 3 {
		t.Fatalf("Threads = %d", pt.Threads())
	}
	pt.Add(2, 20)
	pt.Add(0, 1)
	pt.Add(1, 10)
	pt.Add(0, 2)
	if pt.TotalLen() != 4 || pt.LocalLen(0) != 2 {
		t.Fatal("lengths wrong")
	}
	var dst Sparse
	pt.Merge(&dst)
	// Deterministic order: thread 0's items, then 1's, then 2's.
	want := []graph.V{1, 2, 10, 20}
	got := dst.Vertices()
	if len(got) != len(want) {
		t.Fatalf("merged = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged = %v, want %v", got, want)
		}
	}
	if pt.TotalLen() != 0 {
		t.Fatal("buffers not cleared by Merge")
	}
}

// Property: merge equals the multiset union of the per-thread buffers.
func TestPerThreadMergeIsUnion(t *testing.T) {
	f := func(items []uint16, pRaw uint8) bool {
		p := int(pRaw%8) + 1
		pt := NewPerThread(p)
		var want []graph.V
		for i, it := range items {
			v := graph.V(it)
			pt.Add(i%p, v)
			want = append(want, v)
		}
		var dst Sparse
		pt.Merge(&dst)
		got := append([]graph.V(nil), dst.Vertices()...)
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitmapBasics(t *testing.T) {
	b := NewBitmap(130)
	if b.N() != 130 {
		t.Fatalf("N = %d", b.N())
	}
	if b.Get(0) || b.Get(129) {
		t.Fatal("new bitmap has bits set")
	}
	if !b.Set(0) || !b.Set(129) || !b.Set(64) {
		t.Fatal("Set on clear bit returned false")
	}
	if b.Set(64) {
		t.Fatal("Set on set bit returned true")
	}
	if !b.Get(0) || !b.Get(64) || !b.Get(129) {
		t.Fatal("Get after Set failed")
	}
	if b.Count() != 3 {
		t.Fatalf("Count = %d", b.Count())
	}
	b.Clear()
	if b.Count() != 0 {
		t.Fatal("Clear failed")
	}
}

func TestBitmapSetConcurrentExactlyOneWinner(t *testing.T) {
	b := NewBitmap(1)
	const workers = 16
	wins := make(chan bool, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wins <- b.Set(0)
		}()
	}
	wg.Wait()
	close(wins)
	winners := 0
	for w := range wins {
		if w {
			winners++
		}
	}
	if winners != 1 {
		t.Fatalf("winners = %d, want exactly 1", winners)
	}
}

func TestBitmapForEachOrder(t *testing.T) {
	b := NewBitmap(200)
	set := []graph.V{3, 64, 65, 199, 0}
	for _, v := range set {
		b.SetSeq(v)
	}
	var got []graph.V
	b.ForEach(func(v graph.V) { got = append(got, v) })
	want := []graph.V{0, 3, 64, 65, 199}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestBitmapSparseRoundTrip(t *testing.T) {
	b := NewBitmap(100)
	src := NewSparse(0)
	for _, v := range []graph.V{5, 10, 99} {
		src.Add(v)
	}
	b.FromSparse(src)
	var dst Sparse
	b.ToSparse(&dst)
	if dst.Len() != 3 {
		t.Fatalf("round trip len = %d", dst.Len())
	}
	for i, v := range []graph.V{5, 10, 99} {
		if dst.Vertices()[i] != v {
			t.Fatalf("round trip = %v", dst.Vertices())
		}
	}
}

// Property: bitmap Count equals the number of distinct inserted vertices.
func TestBitmapCountDistinct(t *testing.T) {
	f := func(items []uint8) bool {
		b := NewBitmap(256)
		distinct := map[uint8]bool{}
		for _, it := range items {
			b.Set(graph.V(it))
			distinct[it] = true
		}
		return b.Count() == len(distinct)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// The bitmap must be packed: 64 vertices per word, so the words slice —
// the cache footprint the pull probes and heuristic scans touch — is n/64
// rounded up, not a byte or word per vertex.
func TestBitmapIsPacked(t *testing.T) {
	for _, c := range []struct{ n, words int }{{0, 0}, {1, 1}, {64, 1}, {65, 2}, {130, 3}} {
		b := NewBitmap(c.n)
		if got := len(b.Words()); got != c.words {
			t.Fatalf("NewBitmap(%d): %d words, want %d", c.n, got, c.words)
		}
	}
	b := NewBitmap(128)
	b.SetSeq(0)
	b.SetSeq(63)
	b.SetSeq(64)
	if w := b.Words(); w[0] != 1|1<<63 || w[1] != 1 {
		t.Fatalf("packing wrong: words = %x", w)
	}
}

// ToSparse must agree with ForEach on a dense bitmap whose length is not a
// word multiple (the word-strided scan must not emit padding bits).
func TestBitmapToSparseDenseOddLength(t *testing.T) {
	const n = 70
	b := NewBitmap(n)
	for v := graph.V(0); v < n; v++ {
		b.SetSeq(v)
	}
	var dst Sparse
	b.ToSparse(&dst)
	if dst.Len() != n {
		t.Fatalf("dense ToSparse len = %d, want %d", dst.Len(), n)
	}
	for i, v := range dst.Vertices() {
		if v != graph.V(i) {
			t.Fatalf("dense ToSparse[%d] = %d", i, v)
		}
	}
}

func TestSwitchHeuristic(t *testing.T) {
	h := DefaultSwitch()
	// Tiny frontier over a huge graph: stay top-down (push).
	if h.UsePull(10, 1_000_000, 5, 100_000) {
		t.Fatal("switched to pull with a tiny frontier")
	}
	// Huge frontier: go bottom-up (pull).
	if !h.UsePull(500_000, 1_000_000, 50_000, 100_000) {
		t.Fatal("stayed top-down with a huge frontier")
	}
	// Disabled heuristic never pulls.
	off := SwitchHeuristic{}
	if off.UsePull(500_000, 1_000_000, 50_000, 100_000) {
		t.Fatal("disabled heuristic pulled")
	}
}

func BenchmarkBitmapSet(b *testing.B) {
	bm := NewBitmap(1 << 20)
	for i := 0; i < b.N; i++ {
		bm.Set(graph.V(i & ((1 << 20) - 1)))
	}
}

func BenchmarkPerThreadMerge(b *testing.B) {
	pt := NewPerThread(8)
	var dst Sparse
	for i := 0; i < b.N; i++ {
		for w := 0; w < 8; w++ {
			for j := 0; j < 128; j++ {
				pt.Add(w, graph.V(j))
			}
		}
		pt.Merge(&dst)
	}
}
