// Package frontier implements the frontier data structures of the paper's
// traversal algorithms (§4.3): per-thread sparse frontiers merged into a
// global next frontier (the my_F[1] ∪ … ∪ my_F[P] step of Algorithm 3,
// costed as a k-filter in the PRAM analysis), an atomic bitmap frontier
// for pull-based traversal, and the sparse↔dense conversion heuristic that
// drives direction-optimizing switching [4].
//
// The bitmap is packed: one bit per vertex in a []uint64, so a frontier
// over n vertices costs n/8 bytes of cache instead of the byte-per-vertex
// layout naive dense frontiers use — an 8× smaller footprint for the
// pull-side "is any neighbor in F?" probes and for the direction-switch
// heuristic's scans. Concurrent insertion is an atomic OR on the 64-vertex
// word (load-first, so re-inserts stay read-only); iteration and
// dense↔sparse conversion stride words, not vertices, via math/bits.
package frontier

import (
	"math/bits"
	"sync/atomic"

	"pushpull/internal/graph"
)

// Sparse is a frontier as an explicit vertex list.
type Sparse struct {
	verts []graph.V
}

// NewSparse creates a sparse frontier with the given capacity hint.
func NewSparse(capacity int) *Sparse {
	return &Sparse{verts: make([]graph.V, 0, capacity)}
}

// FromSlice wraps vs (not copied) as a frontier.
func FromSlice(vs []graph.V) *Sparse { return &Sparse{verts: vs} }

// Add appends v.
func (s *Sparse) Add(v graph.V) { s.verts = append(s.verts, v) }

// Len returns the number of vertices in the frontier.
func (s *Sparse) Len() int { return len(s.verts) }

// Vertices returns the underlying slice.
func (s *Sparse) Vertices() []graph.V { return s.verts }

// Reset empties the frontier, keeping capacity.
func (s *Sparse) Reset() { s.verts = s.verts[:0] }

// EdgeWork returns the total degree of the frontier — the quantity the
// direction-optimizing heuristic compares against the remaining edges.
func (s *Sparse) EdgeWork(g *graph.CSR) int64 {
	var w int64
	for _, v := range s.verts {
		w += g.Degree(v)
	}
	return w
}

// PerThread is the my_F array of Algorithm 3: one private frontier per
// thread, merged after each iteration.
type PerThread struct {
	bufs [][]graph.V
}

// NewPerThread creates p private frontiers.
func NewPerThread(p int) *PerThread {
	return &PerThread{bufs: make([][]graph.V, p)}
}

// Threads returns the number of private frontiers.
func (pt *PerThread) Threads() int { return len(pt.bufs) }

// Add appends v to thread w's private frontier.
func (pt *PerThread) Add(w int, v graph.V) { pt.bufs[w] = append(pt.bufs[w], v) }

// LocalLen returns the size of thread w's private frontier.
func (pt *PerThread) LocalLen(w int) int { return len(pt.bufs[w]) }

// Merge concatenates all private frontiers into dst (reset first) in
// thread order — the deterministic realization of the k-filter — and
// clears the private buffers for the next iteration.
func (pt *PerThread) Merge(dst *Sparse) {
	dst.Reset()
	for w := range pt.bufs {
		dst.verts = append(dst.verts, pt.bufs[w]...)
		pt.bufs[w] = pt.bufs[w][:0]
	}
}

// TotalLen returns the summed size of all private frontiers.
func (pt *PerThread) TotalLen() int {
	n := 0
	for _, b := range pt.bufs {
		n += len(b)
	}
	return n
}

// Bitmap is a packed dense frontier with atomic insertion, used by
// pull-based traversals where every unvisited vertex probes "is any
// neighbor in F?". One bit per vertex, 64 vertices per word.
type Bitmap struct {
	words []uint64
	n     int
}

// NewBitmap creates an empty bitmap over n vertices.
func NewBitmap(n int) *Bitmap {
	return &Bitmap{words: make([]uint64, (n+63)/64), n: n}
}

// N returns the bitmap's vertex capacity.
func (b *Bitmap) N() int { return b.n }

// Set marks v; it is safe for concurrent use and returns true if this call
// changed the bit (i.e. the caller won the insertion race). The common
// re-insert case (bit already set — every later frontier edge to the same
// vertex) exits on the plain load without issuing a write at all; only a
// genuinely new bit pays the atomic OR on its 64-vertex word, expressed as
// a CAS because the sync/atomic OrUint64 intrinsic miscompiles under
// go1.24.0 when inlined into deep loops.
func (b *Bitmap) Set(v graph.V) bool {
	word := &b.words[v>>6]
	mask := uint64(1) << (uint(v) & 63)
	for {
		old := atomic.LoadUint64(word)
		if old&mask != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(word, old, old|mask) {
			return true
		}
	}
}

// SetSeq marks v without atomics (single-writer phases).
func (b *Bitmap) SetSeq(v graph.V) {
	b.words[v>>6] |= uint64(1) << (uint(v) & 63)
}

// Get reports whether v is marked.
func (b *Bitmap) Get(v graph.V) bool {
	return b.words[v>>6]&(uint64(1)<<(uint(v)&63)) != 0
}

// ClearSeq unmarks v without atomics (single-writer phases).
func (b *Bitmap) ClearSeq(v graph.V) {
	b.words[v>>6] &^= uint64(1) << (uint(v) & 63)
}

// Clear resets all bits.
func (b *Bitmap) Clear() {
	clear(b.words)
}

// Fill marks every vertex [0, n): whole words first, then the tail bits,
// so the capacity slack past n stays zero and Count stays honest.
func (b *Bitmap) Fill() {
	full := b.n >> 6
	for i := 0; i < full; i++ {
		b.words[i] = ^uint64(0)
	}
	if rem := uint(b.n) & 63; rem != 0 {
		b.words[full] = (uint64(1) << rem) - 1
	}
}

// BlockSummary ORs each run of blockVerts/64 words into one summary bit
// per vertex block: dst's bit i is set iff any vertex of block i is
// marked. blockVerts must be a positive multiple of 64, so block
// boundaries never split a word — this is the per-block frontier summary
// the out-of-core pull kernels consult to skip cold blocks without
// touching their segments. dst must hold at least
// ceil(ceil(n/blockVerts)/64) words; the used prefix is rewritten.
func (b *Bitmap) BlockSummary(dst []uint64, blockVerts int) {
	wordsPerBlock := blockVerts >> 6
	numBlocks := (b.n + blockVerts - 1) / blockVerts
	for i := 0; i < (numBlocks+63)/64; i++ {
		dst[i] = 0
	}
	for bi := 0; bi < numBlocks; bi++ {
		lo := bi * wordsPerBlock
		hi := lo + wordsPerBlock
		if hi > len(b.words) {
			hi = len(b.words)
		}
		var any uint64
		for _, w := range b.words[lo:hi] {
			any |= w
		}
		if any != 0 {
			dst[bi>>6] |= uint64(1) << (uint(bi) & 63)
		}
	}
}

// Count returns the number of set bits, scanning words not vertices.
func (b *Bitmap) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// ForEach calls fn for every set vertex in increasing order, striding
// words and peeling bits with TrailingZeros64.
func (b *Bitmap) ForEach(fn func(v graph.V)) {
	for wi, w := range b.words {
		for w != 0 {
			idx := wi<<6 + bits.TrailingZeros64(w)
			if idx < b.n {
				fn(graph.V(idx))
			}
			w &= w - 1
		}
	}
}

// ToSparse converts the bitmap into a sparse frontier. The scan is
// word-strided: zero words (the common case on sparse frontiers) cost one
// load and one compare for 64 vertices.
func (b *Bitmap) ToSparse(dst *Sparse) {
	dst.Reset()
	for wi, w := range b.words {
		base := wi << 6
		for w != 0 {
			idx := base + bits.TrailingZeros64(w)
			if idx < b.n {
				dst.verts = append(dst.verts, graph.V(idx))
			}
			w &= w - 1
		}
	}
}

// FromSparse sets every vertex of src (sequentially).
func (b *Bitmap) FromSparse(src *Sparse) {
	for _, v := range src.Vertices() {
		b.SetSeq(v)
	}
}

// Words exposes the packed representation (read-only by convention): the
// memory the profiled kernels model and the footprint the direction-switch
// heuristic's scans traverse.
func (b *Bitmap) Words() []uint64 { return b.words }

// SwitchHeuristic is the direction-optimizing policy of Beamer et al. [4]:
// go bottom-up (pull) when the frontier's edge work exceeds remainingEdges/α
// and back top-down (push) when the frontier shrinks below n/β.
type SwitchHeuristic struct {
	Alpha, Beta int64
}

// DefaultSwitch returns the published α=14, β=24 parameters.
func DefaultSwitch() SwitchHeuristic { return SwitchHeuristic{Alpha: 14, Beta: 24} }

// UsePull decides the direction for the next iteration given the frontier
// edge work, the unexplored edge count, the frontier size and n.
func (h SwitchHeuristic) UsePull(frontierEdges, unexploredEdges int64, frontierLen, n int) bool {
	if h.Alpha <= 0 || h.Beta <= 0 {
		return false
	}
	if frontierEdges > unexploredEdges/h.Alpha {
		return true
	}
	return int64(frontierLen) > int64(n)/h.Beta && frontierEdges > unexploredEdges/(h.Alpha*2)
}
