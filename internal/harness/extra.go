package harness

import (
	"context"
	"fmt"

	"pushpull"
	"pushpull/internal/dm"
	"pushpull/internal/dm/dalgo"
	"pushpull/internal/gen"
	"pushpull/internal/graph"
	"pushpull/internal/sched"
)

// WeakScaling runs the §6 weak-scaling companion to Figure 3: the per-rank
// workload is held constant while ranks are added (n ∝ P), so a perfectly
// weak-scaling variant draws a flat line. Msg-Passing stays near-flat
// (per-rank compute constant, collective setup grows mildly); the RMA
// variants inherit the per-edge remote-operation costs.
func WeakScaling(cfg Config) error {
	cfg.defaults()
	header(cfg.Out, "§6 (weak)", "DM PageRank weak scaling: simulated ms/iter, n ∝ P")
	perRank := int(2048 * cfg.Scale)
	if perRank < 64 {
		perRank = 64
	}
	cost := dm.AriesCostModel()
	const iters = 2
	fmt.Fprintf(cfg.Out, "per-rank vertices: %d\n", perRank)
	fmt.Fprintf(cfg.Out, "%-6s %-10s %14s %14s %14s\n", "P", "n", "Pushing-RMA", "Pulling-RMA", "Msg-Passing")
	for _, p := range []int{2, 4, 8, 16, 32} {
		n := perRank * p
		scaleExp := 0
		for 1<<scaleExp < n {
			scaleExp++
		}
		g, err := gen.RMAT(gen.DefaultRMAT(scaleExp, 8, cfg.Seed))
		if err != nil {
			return err
		}
		push, err := dalgo.PRPushRMA(g, dalgo.PRConfig{Ranks: p, Iterations: iters, Cost: cost})
		if err != nil {
			return err
		}
		pull, err := dalgo.PRPullRMA(g, dalgo.PRConfig{Ranks: p, Iterations: iters, Cost: cost})
		if err != nil {
			return err
		}
		msg, err := dalgo.PRMsgPassing(g, dalgo.PRConfig{Ranks: p, Iterations: iters, Cost: cost})
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "%-6d %-10d %14.3f %14.3f %14.3f\n", p, g.N(),
			push.SimTime/iters/1e6, pull.SimTime/iters/1e6, msg.SimTime/iters/1e6)
	}
	return nil
}

// Ablation isolates two design choices the paper evaluates alongside the
// main results: the OpenMP-style static vs dynamic loop schedule (§6,
// "Selected Benchmarks & Parameters") and the Partition-Awareness layout's
// dependence on the partition count (§5 bounds the atomics by the
// remote-edge count, from 0 for component-aligned partitions to 2m for a
// bipartite split).
func Ablation(cfg Config) error {
	cfg.defaults()
	header(cfg.Out, "§5/§6 (ablation)", "loop schedule and PA partition sweep")
	g, err := loadGraph("orc", cfg, false)
	if err != nil {
		return err
	}

	ctx := context.Background()
	fmt.Fprintf(cfg.Out, "schedule ablation on orc (skewed degrees):\n")
	fmt.Fprintf(cfg.Out, "%-24s %10s %10s\n", "", "static", "dynamic")
	prTimes := make(map[sched.Schedule]string)
	for _, s := range []sched.Schedule{sched.Static, sched.Dynamic} {
		rep, err := pushpull.Run(ctx, g, "pr",
			pushpull.WithDirection(pushpull.Push), pushpull.WithThreads(cfg.Threads),
			pushpull.WithSchedule(s), pushpull.WithIterations(5))
		if err != nil {
			return err
		}
		prTimes[s] = ms(rep.Stats.AvgIteration())
	}
	fmt.Fprintf(cfg.Out, "%-24s %10s %10s\n", "PR push [ms/iter]",
		prTimes[sched.Static], prTimes[sched.Dynamic])
	// TC uses dynamic internally; compare against a static run of the
	// same kernel by timing the pull kernel under both decompositions.
	tcPull := func(threads int) (pushpull.RunStats, error) {
		rep, err := pushpull.Run(ctx, g, "tc",
			pushpull.WithDirection(pushpull.Pull), pushpull.WithThreads(threads))
		if err != nil {
			return pushpull.RunStats{}, err
		}
		return rep.Stats, nil
	}
	tcDyn, err := tcPull(cfg.Threads)
	if err != nil {
		return err
	}
	seqStats, err := tcPull(1)
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "%-24s %10s %10s   (T=1 vs dynamic T=%d)\n",
		"TC pull total [s]", secs(seqStats.Elapsed), secs(tcDyn.Elapsed), cfg.Threads)

	fmt.Fprintf(cfg.Out, "\nPA partition sweep on orc (2m = %d adjacency slots):\n", g.M())
	fmt.Fprintf(cfg.Out, "%-6s %14s %10s %16s\n", "P", "remote slots", "fraction", "PR+PA [ms/iter]")
	// One Workload handle across the sweep: the engine builds and
	// memoizes each partition count's PA split, replacing the hand-rolled
	// BuildPA plumbing this driver used to carry.
	wl := pushpull.NewWorkload(g)
	for _, p := range []int{2, 4, 8, 16, 32} {
		rep, err := pushpull.Run(ctx, wl, "pr",
			pushpull.WithThreads(cfg.Threads),
			pushpull.WithPartitionAwareness(),
			pushpull.WithPartitions(p),
			pushpull.WithIterations(5))
		if err != nil {
			return err
		}
		pa := wl.PA(p) // the memoized split the run used
		fmt.Fprintf(cfg.Out, "%-6d %14d %9.1f%% %16s\n", p, pa.RemoteEdges(),
			100*float64(pa.RemoteEdges())/float64(g.M()), ms(rep.Stats.AvgIteration()))
	}
	// The §5 extremes: a bipartite graph split across two owners pushes
	// every update remotely; a component-aligned partition pushes none.
	bip := gen.BipartiteFull(64, 64)
	paBip := graph.BuildPA(bip, graph.NewPartition(bip.N(), 2))
	fmt.Fprintf(cfg.Out, "bipartite K64,64 split across 2 threads: remote fraction %.0f%% (upper bound)\n",
		100*float64(paBip.RemoteEdges())/float64(bip.M()))
	return nil
}
