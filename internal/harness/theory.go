package harness

import (
	"context"
	"fmt"
	"time"

	"pushpull"
	prdirect "pushpull/internal/algo/pr"
	"pushpull/internal/algo/sssp"
	"pushpull/internal/core"
	"pushpull/internal/la"
	"pushpull/internal/pram"
)

// PRAMTable prints the §4 complexity table — time and work for every
// algorithm under pulling, pushing/CRCW-CB and pushing/CREW — followed by
// the §4.9 conflict/synchronization summary, and validates the executable
// PRAM machine against the primitive bounds.
func PRAMTable(cfg Config) error {
	cfg.defaults()
	header(cfg.Out, "§4", "PRAM bounds (time | work), n=2^20 m=2^24 d̂=2^10 P=64")
	p := pram.AlgorithmParams{
		N: 1 << 20, M: 1 << 24, Dhat: 1 << 10, P: 64,
		L: 20, D: 12, Delta: 10, LDelta: 3,
	}
	type fn struct {
		name string
		f    func(pram.AlgorithmParams, pram.Model, core.Direction) pram.Cost
	}
	fns := []fn{
		{"PR", pram.PageRank}, {"TC", pram.TriangleCount}, {"BFS", pram.BFS},
		{"SSSP-Δ", pram.SSSPDelta}, {"BC", pram.BC}, {"BGC", pram.BGC}, {"MST", pram.MST},
	}
	fmt.Fprintf(cfg.Out, "%-8s %24s %24s %24s\n",
		"algo", "pull", "push (CRCW-CB)", "push (CREW)")
	for _, a := range fns {
		pull := a.f(p, pram.CRCWCB, core.Pull)
		pushCB := a.f(p, pram.CRCWCB, core.Push)
		pushCREW := a.f(p, pram.CREW, core.Push)
		fmt.Fprintf(cfg.Out, "%-8s %11.3g | %8.3g %11.3g | %8.3g %11.3g | %8.3g\n",
			a.name, pull.Time, pull.Work, pushCB.Time, pushCB.Work, pushCREW.Time, pushCREW.Work)
	}

	fmt.Fprintln(cfg.Out, "\n§4.9 conflicts and synchronization:")
	for _, s := range pram.Summaries() {
		fmt.Fprintf(cfg.Out, "  %-14s write: %-16s read: %-16s push-sync: %-40s pull-sync: %s\n",
			s.Algorithm, s.WriteConflicts, s.ReadConflicts, s.PushSync, s.PullSync)
	}

	// Executable validation: CRCW-CB combines in ⌈k/P⌉ cycles; CREW pays
	// for conflicting writes.
	add := func(a, b int64) int64 { return a + b }
	maCB, err := pram.NewMachine(pram.CRCWCB, 8, 64, add)
	if err != nil {
		return err
	}
	for i := 0; i < 16; i++ {
		maCB.Mem()[i] = 1
	}
	srcs := make([]int, 16)
	dsts := make([]int, 16)
	for i := range srcs {
		srcs[i] = i
		dsts[i] = 32 // all conflict on one target
	}
	sCB, wCB, err := pram.RunKRelaxation(maCB, srcs, dsts)
	if err != nil {
		return err
	}
	maCREW, err := pram.NewMachine(pram.CREW, 8, 64, add)
	if err != nil {
		return err
	}
	for i := 0; i < 16; i++ {
		maCREW.Mem()[i] = 1
	}
	sCREW, wCREW, err := pram.RunKRelaxation(maCREW, srcs, dsts)
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "\nexecutable 16-relaxation, full conflict, P=8: CRCW-CB %d steps/%d work; CREW %d steps/%d work\n",
		sCB, wCB, sCREW, wCREW)
	if sCREW <= sCB {
		return fmt.Errorf("harness: CREW simulation did not pay for conflicts (%d <= %d)", sCREW, sCB)
	}
	return nil
}

// LATable cross-checks the §7.1 linear-algebra formulation against the
// direct implementations and reports SpMV timings for both layouts.
func LATable(cfg Config) error {
	cfg.defaults()
	header(cfg.Out, "§7.1", "LA formulation: CSR (pull) vs CSC (push)")
	g, err := loadGraph("pok", cfg, false)
	if err != nil {
		return err
	}
	const iters = 5
	wantPR := prdirect.Sequential(g, prdirect.Options{Iterations: iters, Damping: 0.85})
	for _, dir := range []core.Direction{core.Pull, core.Push} {
		start := time.Now()
		got := la.PageRank(g, iters, 0.85, dir, cfg.Threads)
		el := time.Since(start)
		d := la.MaxDiff(got, wantPR)
		fmt.Fprintf(cfg.Out, "PageRank  %-18s %10s ms  max|Δ| vs direct = %.2g\n",
			dirLayout(dir), ms(el), d)
		if d > 1e-9 {
			return fmt.Errorf("harness: LA PageRank (%v) diverges from direct: %g", dir, d)
		}
	}
	bfsRep, err := pushpull.Run(context.Background(), g, "bfs",
		pushpull.WithDirection(pushpull.Push), pushpull.WithThreads(cfg.Threads),
		pushpull.WithSource(0))
	if err != nil {
		return err
	}
	tree := bfsRep.Tree()
	for _, dir := range []core.Direction{core.Pull, core.Push} {
		start := time.Now()
		levels := la.BFSLevels(g, 0, dir, cfg.Threads)
		el := time.Since(start)
		for v := range levels {
			if levels[v] != tree.Level[v] {
				return fmt.Errorf("harness: LA BFS (%v) level mismatch at %d", dir, v)
			}
		}
		fmt.Fprintf(cfg.Out, "BFS       %-18s %10s ms  levels match direct BFS\n", dirLayout(dir), ms(el))
	}
	wg, err := loadGraph("am", cfg, true)
	if err != nil {
		return err
	}
	wantD := sssp.Dijkstra(wg, 0)
	for _, dir := range []core.Direction{core.Pull, core.Push} {
		start := time.Now()
		got := la.SSSPBellmanFord(wg, 0, dir, cfg.Threads)
		el := time.Since(start)
		d := la.MaxDiff(got, wantD)
		fmt.Fprintf(cfg.Out, "SSSP      %-18s %10s ms  max|Δ| vs Dijkstra = %.2g\n",
			dirLayout(dir), ms(el), d)
		if d > 1e-9 {
			return fmt.Errorf("harness: LA SSSP (%v) diverges from Dijkstra: %g", dir, d)
		}
	}
	return nil
}

func dirLayout(d core.Direction) string {
	if d == core.Pull {
		return "CSR/SpMV (pull)"
	}
	return "CSC/SpMV (push)"
}
