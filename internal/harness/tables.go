package harness

import (
	"context"
	"fmt"

	"pushpull"
	"pushpull/internal/algo/pr"
	"pushpull/internal/algo/tc"
	"pushpull/internal/core"
	"pushpull/internal/counters"
	"pushpull/internal/graph"
	"pushpull/internal/memsim"
)

// Table2 regenerates the graph-suite table: id, n, m, d̄, D (estimated) for
// every synthetic stand-in, in the paper's Table 2 order.
func Table2(cfg Config) error {
	cfg.defaults()
	header(cfg.Out, "Table 2", "analyzed graphs (synthetic stand-ins, seeded)")
	fmt.Fprintf(cfg.Out, "%-6s %-10s %-12s %8s %8s %6s %4s\n",
		"ID", "n", "m", "d̄", "d̂", "D≈", "cc")
	for _, s := range append([]string{"rmat"}, workloadNames...) {
		g, err := loadGraph(s, cfg, false)
		if err != nil {
			return err
		}
		st := graph.ComputeStats(g)
		fmt.Fprintf(cfg.Out, "%-6s %-10d %-12d %8.2f %8d %6d %4d\n",
			s, st.N, st.M, st.AvgDeg, st.MaxDeg, st.Diameter, st.Components)
	}
	return nil
}

// table1Run executes one profiled variant on a fresh simulated machine and
// returns the event report (per-iteration scaled when iters > 1).
func table1Run(run func(prof core.Profile, space *memsim.AddressSpace) error, threads int, scaleBy int64) (counters.Report, error) {
	machine := memsim.NewMachine(memsim.XeonE5SandyBridge(), threads)
	prof := core.Profile{Threads: threads, Probes: machine.Probes()}
	if err := run(prof, machine.Space()); err != nil {
		return counters.Report{}, err
	}
	rep := machine.Report()
	if scaleBy > 1 {
		rep = rep.Scale(scaleBy)
	}
	return rep, nil
}

// Table1 regenerates the PAPI-event table: cache/TLB misses, atomics,
// locks, reads, writes and branches for PR (per iteration; Push, Push+PA,
// Pull), TC (total), BGC (per iteration) and SSSP-Δ (total) on a dense and
// a sparse workload each, on a simulated Sandy Bridge memory hierarchy.
func Table1(cfg Config) error {
	cfg.defaults()
	header(cfg.Out, "Table 1", "simulated hardware-counter events (XC30-class hierarchy)")
	t := cfg.Threads
	type column struct {
		label string
		rep   counters.Report
	}
	var cols []column
	add := func(label string, rep counters.Report, err error) error {
		if err != nil {
			return err
		}
		cols = append(cols, column{label, rep})
		return nil
	}

	// PageRank on orc (dense) and rca (road): per-iteration events.
	const prIters = 3
	for _, name := range []string{"orc", "rca"} {
		g, err := loadGraph(name, cfg, false)
		if err != nil {
			return err
		}
		opt := pr.Options{Iterations: prIters}
		rep, err := table1Run(func(prof core.Profile, sp *memsim.AddressSpace) error {
			_, err := pr.PushProfiled(g, opt, prof, sp)
			return err
		}, t, prIters)
		if err := add(name+" (PR) Push", rep, err); err != nil {
			return err
		}
		pa := graph.BuildPA(g, graph.NewPartition(g.N(), t))
		rep, err = table1Run(func(prof core.Profile, sp *memsim.AddressSpace) error {
			_, err := pr.PushPAProfiled(pa, opt, prof, sp)
			return err
		}, t, prIters)
		if err := add(name+" (PR) Push+PA", rep, err); err != nil {
			return err
		}
		rep, err = table1Run(func(prof core.Profile, sp *memsim.AddressSpace) error {
			_, err := pr.PullProfiled(g, opt, prof, sp)
			return err
		}, t, prIters)
		if err := add(name+" (PR) Pull", rep, err); err != nil {
			return err
		}
	}

	// Triangle counting on ljn and rca: total events. TC's pair loops are
	// quadratic in degree, so it runs at reduced scale.
	tcCfg := cfg
	tcCfg.Scale = cfg.Scale * 0.25
	for _, name := range []string{"ljn", "rca"} {
		g, err := loadGraph(name, tcCfg, false)
		if err != nil {
			return err
		}
		rep, err := table1Run(func(prof core.Profile, sp *memsim.AddressSpace) error {
			_, err := tc.PushProfiled(g, prof, sp)
			return err
		}, t, 1)
		if err := add(name+" (TC) Push", rep, err); err != nil {
			return err
		}
		rep, err = table1Run(func(prof core.Profile, sp *memsim.AddressSpace) error {
			_, err := tc.PullProfiled(g, prof, sp)
			return err
		}, t, 1)
		if err := add(name+" (TC) Pull", rep, err); err != nil {
			return err
		}
	}

	if err := table1GC(cfg, t, add); err != nil {
		return err
	}
	if err := table1SSSP(cfg, t, add); err != nil {
		return err
	}

	// Print the event × column matrix, paper-style.
	fmt.Fprintf(cfg.Out, "%-18s", "Event")
	for _, c := range cols {
		fmt.Fprintf(cfg.Out, " | %-18s", c.label)
	}
	fmt.Fprintln(cfg.Out)
	for _, ev := range counters.Table1Events() {
		fmt.Fprintf(cfg.Out, "%-18s", ev.String())
		for _, c := range cols {
			fmt.Fprintf(cfg.Out, " | %-18s", counters.Human(c.rep.Get(ev)))
		}
		fmt.Fprintln(cfg.Out)
	}
	return nil
}

// Table3 regenerates the PR time-per-iteration (ms) and TC total-time (s)
// rows for all five workloads.
func Table3(cfg Config) error {
	cfg.defaults()
	header(cfg.Out, "Table 3", "PR time/iteration [ms] and TC total time [s]")
	fmt.Fprintf(cfg.Out, "%-10s", "PR [ms]")
	for _, n := range workloadNames {
		fmt.Fprintf(cfg.Out, " %10s", n)
	}
	fmt.Fprintln(cfg.Out)
	const iters = 10
	prRow := func(label string, dir pushpull.Direction) error {
		fmt.Fprintf(cfg.Out, "%-10s", label)
		for _, name := range workloadNames {
			g, err := loadGraph(name, cfg, false)
			if err != nil {
				return err
			}
			rep, err := pushpull.Run(context.Background(), g, "pr",
				pushpull.WithDirection(dir), pushpull.WithThreads(cfg.Threads),
				pushpull.WithIterations(iters))
			if err != nil {
				return err
			}
			fmt.Fprintf(cfg.Out, " %10s", ms(rep.Stats.AvgIteration()))
		}
		fmt.Fprintln(cfg.Out)
		return nil
	}
	if err := prRow("Pushing", pushpull.Push); err != nil {
		return err
	}
	if err := prRow("Pulling", pushpull.Pull); err != nil {
		return err
	}

	fmt.Fprintf(cfg.Out, "%-10s", "TC [s]")
	for _, n := range workloadNames {
		fmt.Fprintf(cfg.Out, " %10s", n)
	}
	fmt.Fprintln(cfg.Out)
	tcCfg := cfg
	tcCfg.Scale = cfg.Scale * 0.5
	tcRow := func(label string, dir pushpull.Direction) error {
		fmt.Fprintf(cfg.Out, "%-10s", label)
		for _, name := range workloadNames {
			g, err := loadGraph(name, tcCfg, false)
			if err != nil {
				return err
			}
			rep, err := pushpull.Run(context.Background(), g, "tc",
				pushpull.WithDirection(dir), pushpull.WithThreads(cfg.Threads))
			if err != nil {
				return err
			}
			fmt.Fprintf(cfg.Out, " %10s", secs(rep.Stats.Elapsed))
		}
		fmt.Fprintln(cfg.Out)
		return nil
	}
	if err := tcRow("Pushing", pushpull.Push); err != nil {
		return err
	}
	return tcRow("Pulling", pushpull.Pull)
}

// machineProfile maps counted events and cache misses to a modeled
// per-iteration time for one machine (Table 4's cross-machine comparison;
// the per-event weights encode each machine's memory system and the
// atomic-contention growth with its thread count).
type machineProfile struct {
	name     string
	config   memsim.MachineConfig
	threads  int
	nsAtomic float64 // grows with thread count: contention
	nsMissL1 float64
	nsMissL2 float64
	nsMissL3 float64
	nsRead   float64
	nsWrite  float64
	nsBranch float64
}

func machineProfiles() []machineProfile {
	return []machineProfile{
		{
			name: "Trivium (i7-4770, T=8)", config: memsim.HaswellTrivium(), threads: 8,
			nsAtomic: 8, nsMissL1: 4, nsMissL2: 10, nsMissL3: 60,
			nsRead: 0.5, nsWrite: 0.5, nsBranch: 0.25,
		},
		{
			name: "Daint (XC40, T=24)", config: memsim.XeonE5SandyBridge(), threads: 24,
			nsAtomic: 26, nsMissL1: 3, nsMissL2: 8, nsMissL3: 45,
			nsRead: 0.35, nsWrite: 0.35, nsBranch: 0.2,
		},
	}
}

// modelTime converts an event report into modeled nanoseconds per the
// machine profile, divided by the machine's thread count (parallel work).
func (m machineProfile) modelTime(rep counters.Report) float64 {
	total := m.nsAtomic*float64(rep.Get(counters.Atomics)) +
		m.nsMissL1*float64(rep.Get(counters.L1Miss)) +
		m.nsMissL2*float64(rep.Get(counters.L2Miss)) +
		m.nsMissL3*float64(rep.Get(counters.L3Miss)) +
		m.nsRead*float64(rep.Get(counters.Reads)) +
		m.nsWrite*float64(rep.Get(counters.Writes)) +
		m.nsBranch*float64(rep.Get(counters.BranchesCond)+rep.Get(counters.BranchesUncond))
	return total / float64(m.threads)
}

// Table4 regenerates the cross-machine PR comparison: per-iteration modeled
// times for Push, Pull and Push+PA on the Trivium and XC40 profiles. The
// shape to reproduce (§6.4): on the commodity box pushing wins on dense
// graphs, on the HPC node with more threads the atomics dominate and
// pulling (and PA) win.
func Table4(cfg Config) error {
	cfg.defaults()
	header(cfg.Out, "Table 4", "PR time/iteration, modeled from counted events per machine")
	const prIters = 2
	for _, m := range machineProfiles() {
		fmt.Fprintf(cfg.Out, "%s\n", m.name)
		fmt.Fprintf(cfg.Out, "  %-10s", "")
		for _, n := range workloadNames {
			fmt.Fprintf(cfg.Out, " %10s", n)
		}
		fmt.Fprintln(cfg.Out)
		variants := []struct {
			label string
			run   func(g *graph.CSR, prof core.Profile, sp *memsim.AddressSpace) error
		}{
			{"Push", func(g *graph.CSR, prof core.Profile, sp *memsim.AddressSpace) error {
				_, err := pr.PushProfiled(g, pr.Options{Iterations: prIters}, prof, sp)
				return err
			}},
			{"Pull", func(g *graph.CSR, prof core.Profile, sp *memsim.AddressSpace) error {
				_, err := pr.PullProfiled(g, pr.Options{Iterations: prIters}, prof, sp)
				return err
			}},
			{"Push+PA", func(g *graph.CSR, prof core.Profile, sp *memsim.AddressSpace) error {
				pa := graph.BuildPA(g, graph.NewPartition(g.N(), prof.Threads))
				_, err := pr.PushPAProfiled(pa, pr.Options{Iterations: prIters}, prof, sp)
				return err
			}},
		}
		for _, v := range variants {
			fmt.Fprintf(cfg.Out, "  %-10s", v.label)
			for _, name := range workloadNames {
				g, err := loadGraph(name, cfg, false)
				if err != nil {
					return err
				}
				machine := memsim.NewMachine(m.config, m.threads)
				prof := core.Profile{Threads: m.threads, Probes: machine.Probes()}
				if err := v.run(g, prof, machine.Space()); err != nil {
					return err
				}
				nsPerIter := m.modelTime(machine.Report().Scale(prIters))
				fmt.Fprintf(cfg.Out, " %10.3f", nsPerIter/1e6)
			}
			fmt.Fprintln(cfg.Out)
		}
	}
	return nil
}
