// Package harness is the experiment registry of the reproduction: one
// entry per table and figure of the paper's evaluation (§6), each
// regenerating the same rows or series the paper reports — workload
// construction, parameter sweeps, baselines and formatting included.
//
// Experiments run at a configurable scale (Config.Scale); 1.0 is the
// laptop-scale default documented in EXPERIMENTS.md. The *shape* of every
// output (who wins, by what factor, where crossovers fall) is what the
// reproduction asserts; absolute numbers differ from the paper's Cray
// testbeds by design.
package harness

import (
	"fmt"
	"io"
	"sort"
	"time"

	"pushpull/internal/gen"
	"pushpull/internal/graph"
	"pushpull/internal/sched"
)

// Config parameterizes one experiment run.
type Config struct {
	Threads int     // worker threads T (≤0: GOMAXPROCS)
	Scale   float64 // workload scale multiplier (≤0: 1.0)
	Seed    uint64  // generator seed
	Out     io.Writer
}

func (c *Config) defaults() {
	if c.Threads <= 0 {
		c.Threads = sched.DefaultThreads()
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
}

// Experiment is one regenerable table or figure.
type Experiment struct {
	ID    string
	Paper string // the paper artifact it regenerates
	Title string
	Run   func(cfg Config) error
}

// registry is populated by the experiment files' init order below.
func registry() []Experiment {
	return []Experiment{
		{ID: "table2", Paper: "Table 2", Title: "Graph suite: n, m, d̄, D for every workload", Run: Table2},
		{ID: "table1", Paper: "Table 1", Title: "Hardware-counter events for PR, TC, BGC, SSSP-Δ (push vs pull vs +PA)", Run: Table1},
		{ID: "table3", Paper: "Table 3", Title: "PR time/iteration and TC total time, push vs pull", Run: Table3},
		{ID: "table4", Paper: "Table 4", Title: "PR per-iteration time across machine profiles (Trivium vs XC40)", Run: Table4},
		{ID: "fig1", Paper: "Figure 1", Title: "Boman coloring: time per iteration for Pull/Push/GrS", Run: Fig1},
		{ID: "fig2", Paper: "Figure 2", Title: "SSSP-Δ: per-iteration times and the Δ sweep", Run: Fig2},
		{ID: "fig3", Paper: "Figure 3", Title: "Distributed strong scaling: PR and TC with RMA vs Msg-Passing", Run: Fig3},
		{ID: "fig4", Paper: "Figure 4", Title: "Borůvka MST phases: Find-Minimum, Build-Merge-Tree, Merge", Run: Fig4},
		{ID: "fig5", Paper: "Figure 5", Title: "Betweenness centrality thread scaling: both BFS phases", Run: Fig5},
		{ID: "fig6", Paper: "Figure 6", Title: "Acceleration strategies: PR+PA times and BGC iteration counts", Run: Fig6},
		{ID: "weak", Paper: "§6", Title: "DM PageRank weak scaling (n ∝ P)", Run: WeakScaling},
		{ID: "ablation", Paper: "§5/§6", Title: "Loop-schedule and PA partition-count ablations", Run: Ablation},
		{ID: "pram", Paper: "§4", Title: "PRAM time/work bounds and the §4.9 conflict summary", Run: PRAMTable},
		{ID: "la", Paper: "§7.1", Title: "Linear-algebra formulation: CSR(pull)/CSC(push) SpMV cross-check", Run: LATable},
	}
}

// All returns every experiment in paper order.
func All() []Experiment { return registry() }

// ByID finds one experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment ids, sorted.
func IDs() []string {
	var out []string
	for _, e := range registry() {
		out = append(out, e.ID)
	}
	sort.Strings(out)
	return out
}

// ---- shared workload construction ----

// workloadNames lists the Table 2 stand-in graphs used across experiments.
var workloadNames = []string{"orc", "pok", "ljn", "am", "rca"}

type graphKey struct {
	name     string
	scale    float64
	seed     uint64
	weighted bool
}

var graphCache = map[graphKey]*graph.CSR{}

// loadGraph builds (or returns the cached) named suite graph.
func loadGraph(name string, cfg Config, weighted bool) (*graph.CSR, error) {
	key := graphKey{name, cfg.Scale, cfg.Seed, weighted}
	if g, ok := graphCache[key]; ok {
		return g, nil
	}
	var g *graph.CSR
	var err error
	if weighted {
		g, err = gen.NamedWeighted(name, cfg.Scale, cfg.Seed)
	} else {
		g, err = gen.Named(name, cfg.Scale, cfg.Seed)
	}
	if err != nil {
		return nil, err
	}
	graphCache[key] = g
	return g, nil
}

// ms formats a duration in the paper's milliseconds-with-decimals style.
func ms(d time.Duration) string { return fmt.Sprintf("%.3f", float64(d)/1e6) }

// secs formats a duration in seconds.
func secs(d time.Duration) string { return fmt.Sprintf("%.4f", d.Seconds()) }

// header prints an experiment banner.
func header(w io.Writer, paper, title string) {
	fmt.Fprintf(w, "== %s — %s ==\n", paper, title)
}
