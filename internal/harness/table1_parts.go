package harness

import (
	"pushpull/internal/algo/gc"
	"pushpull/internal/algo/sssp"
	"pushpull/internal/core"
	"pushpull/internal/counters"
	"pushpull/internal/graph"
	"pushpull/internal/memsim"
)

// table1GC adds the BGC columns (per-iteration events on orc and rca).
func table1GC(cfg Config, t int, add func(string, counters.Report, error) error) error {
	for _, name := range []string{"orc", "rca"} {
		g, err := loadGraph(name, cfg, false)
		if err != nil {
			return err
		}
		part := graph.NewPartition(g.N(), t)
		opt := gc.Options{}
		var iters int64 = 1
		rep, err := table1Run(func(prof core.Profile, sp *memsim.AddressSpace) error {
			res, err := gc.PushProfiled(g, part, opt, prof, sp)
			if res != nil && res.Iterations > 0 {
				iters = int64(res.Iterations)
			}
			return err
		}, t, 1)
		if err := add(name+" (BGC) Push", rep.Scale(iters), err); err != nil {
			return err
		}
		iters = 1
		rep, err = table1Run(func(prof core.Profile, sp *memsim.AddressSpace) error {
			res, err := gc.PullProfiled(g, part, opt, prof, sp)
			if res != nil && res.Iterations > 0 {
				iters = int64(res.Iterations)
			}
			return err
		}, t, 1)
		if err := add(name+" (BGC) Pull", rep.Scale(iters), err); err != nil {
			return err
		}
	}
	return nil
}

// table1SSSP adds the SSSP-Δ columns (total events on pok and rca).
func table1SSSP(cfg Config, t int, add func(string, counters.Report, error) error) error {
	for _, name := range []string{"pok", "rca"} {
		g, err := loadGraph(name, cfg, true)
		if err != nil {
			return err
		}
		opt := sssp.Options{Source: 0}
		rep, err := table1Run(func(prof core.Profile, sp *memsim.AddressSpace) error {
			_, err := sssp.PushProfiled(g, opt, prof, sp)
			return err
		}, t, 1)
		if err := add(name+" (SSSP) Push", rep, err); err != nil {
			return err
		}
		rep, err = table1Run(func(prof core.Profile, sp *memsim.AddressSpace) error {
			_, err := sssp.PullProfiled(g, opt, prof, sp)
			return err
		}, t, 1)
		if err := add(name+" (SSSP) Pull", rep, err); err != nil {
			return err
		}
	}
	return nil
}
