package harness

import (
	"bytes"
	"strings"
	"testing"
)

// tinyConfig runs experiments fast enough for the test suite.
func tinyConfig(buf *bytes.Buffer) Config {
	return Config{Threads: 2, Scale: 0.05, Seed: 7, Out: buf}
}

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 14 {
		t.Fatalf("registry has %d experiments, want 14", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Fatalf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
	}
	if _, ok := ByID("table1"); !ok {
		t.Fatal("ByID(table1) failed")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID(nope) succeeded")
	}
	ids := IDs()
	if len(ids) != len(all) {
		t.Fatalf("IDs() has %d entries", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatal("IDs not sorted")
		}
	}
}

// Every experiment must run to completion at tiny scale and produce its
// banner plus substantive output.
func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(tinyConfig(&buf)); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out := buf.String()
			if !strings.Contains(out, "== ") {
				t.Fatalf("%s: missing banner:\n%s", e.ID, out)
			}
			if len(out) < 100 {
				t.Fatalf("%s: suspiciously short output:\n%s", e.ID, out)
			}
		})
	}
}

func TestTable2ListsAllWorkloads(t *testing.T) {
	var buf bytes.Buffer
	if err := Table2(tinyConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	for _, name := range append([]string{"rmat"}, workloadNames...) {
		if !strings.Contains(buf.String(), name) {
			t.Fatalf("table2 missing %s:\n%s", name, buf.String())
		}
	}
}

func TestTable1HasAllEventRows(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(tinyConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, row := range []string{"L1 misses", "L3 misses", "TLB misses (data)",
		"atomics", "locks", "reads", "writes", "branches (cond)"} {
		if !strings.Contains(out, row) {
			t.Fatalf("table1 missing row %q", row)
		}
	}
	for _, col := range []string{"orc (PR) Push", "orc (PR) Push+PA", "rca (PR) Pull",
		"ljn (TC) Push", "orc (BGC) Pull", "pok (SSSP) Push"} {
		if !strings.Contains(out, col) {
			t.Fatalf("table1 missing column %q", col)
		}
	}
}

func TestFig3CoversBothKernels(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig3(tinyConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"PR, orc", "PR, ljn", "PR, rmat", "TC, orc", "TC, ljn",
		"Pushing-RMA", "Pulling-RMA", "Msg-Passing"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig3 missing %q", want)
		}
	}
}

func TestFig6ReportsStrategies(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig6(tinyConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Push+PA", "+FE", "+GS", "+GrS"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig6 missing %q", want)
		}
	}
}

func TestGraphCacheReuses(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	g1, err := loadGraph("orc", cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := loadGraph("orc", cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Fatal("cache miss for identical key")
	}
	g3, err := loadGraph("orc", cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	if g3 == g1 {
		t.Fatal("weighted and unweighted shared a cache slot")
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.defaults()
	if c.Threads < 1 || c.Scale != 1 || c.Seed == 0 || c.Out == nil {
		t.Fatalf("defaults = %+v", c)
	}
}
