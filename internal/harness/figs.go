package harness

import (
	"context"
	"fmt"
	"time"

	"pushpull"
	"pushpull/internal/dm/dalgo"
	"pushpull/internal/graph"
)

// Fig1 regenerates the coloring figure: per-iteration times of Pulling,
// Pushing (Boman) and GrS (FE + Greedy-Switch) on the orc, ljn and rca
// stand-ins, up to 50 iterations.
func Fig1(cfg Config) error {
	cfg.defaults()
	header(cfg.Out, "Figure 1", "BGC time per iteration [ms]: Pulling vs Pushing vs GrS")
	const maxShown = 50
	for _, name := range []string{"orc", "ljn", "rca"} {
		g, err := loadGraph(name, cfg, false)
		if err != nil {
			return err
		}
		collect := func(opts ...pushpull.Option) ([]time.Duration, int, error) {
			var per []time.Duration
			opts = append(opts,
				pushpull.WithThreads(cfg.Threads),
				pushpull.WithIterationHook(func(i int, d time.Duration) {
					if i < maxShown {
						per = append(per, d)
					}
				}))
			rep, err := pushpull.Run(context.Background(), g, "gc", opts...)
			if err != nil {
				return nil, 0, err
			}
			return per, rep.Stats.Iterations, nil
		}
		pull, pullIters, err := collect(pushpull.WithDirection(pushpull.Pull))
		if err != nil {
			return err
		}
		push, pushIters, err := collect(pushpull.WithDirection(pushpull.Push))
		if err != nil {
			return err
		}
		grs, grsIters, err := collect(pushpull.WithDirection(pushpull.Push),
			pushpull.WithMaxIters(4096),
			pushpull.WithSwitchPolicy(&pushpull.GreedySwitch{Fraction: 0.1, Total: g.N()}))
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "%s (iterations to finish: pull=%d push=%d GrS=%d)\n",
			name, pullIters, pushIters, grsIters)
		fmt.Fprintf(cfg.Out, "%-5s %10s %10s %10s\n", "iter", "Pulling", "Pushing", "GrS")
		rows := len(pull)
		if len(push) > rows {
			rows = len(push)
		}
		if len(grs) > rows {
			rows = len(grs)
		}
		at := func(s []time.Duration, i int) string {
			if i < len(s) {
				return ms(s[i])
			}
			return "-"
		}
		for i := 0; i < rows; i++ {
			fmt.Fprintf(cfg.Out, "%-5d %10s %10s %10s\n", i, at(pull, i), at(push, i), at(grs, i))
		}
	}
	return nil
}

// Fig2 regenerates the Δ-stepping figure: per-iteration times for push and
// pull on orc and am, plus the Δ sweep on orc showing the gap closing as Δ
// grows.
func Fig2(cfg Config) error {
	cfg.defaults()
	header(cfg.Out, "Figure 2", "SSSP-Δ per-iteration time [ms] and the Δ sweep")
	const maxShown = 12
	for _, name := range []string{"orc", "am"} {
		g, err := loadGraph(name, cfg, true)
		if err != nil {
			return err
		}
		collect := func(dir pushpull.Direction) ([]time.Duration, error) {
			var per []time.Duration
			_, err := pushpull.Run(context.Background(), g, "sssp",
				pushpull.WithDirection(dir), pushpull.WithThreads(cfg.Threads),
				pushpull.WithSource(0),
				pushpull.WithIterationHook(func(i int, d time.Duration) {
					if i < maxShown {
						per = append(per, d)
					}
				}))
			return per, err
		}
		push, err := collect(pushpull.Push)
		if err != nil {
			return err
		}
		pull, err := collect(pushpull.Pull)
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "%s\n%-5s %10s %10s\n", name, "iter", "Pushing", "Pulling")
		rows := len(push)
		if len(pull) > rows {
			rows = len(pull)
		}
		at := func(s []time.Duration, i int) string {
			if i < len(s) {
				return ms(s[i])
			}
			return "-"
		}
		for i := 0; i < rows; i++ {
			fmt.Fprintf(cfg.Out, "%-5d %10s %10s\n", i, at(push, i), at(pull, i))
		}
	}
	// Δ sweep (orc): total time per variant as Δ grows.
	g, err := loadGraph("orc", cfg, true)
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "Δ sweep (orc)\n%-10s %12s %12s\n", "Delta", "Pushing [ms]", "Pulling [ms]")
	for _, delta := range []float64{5, 20, 80, 320, 1280, 5120} {
		sweep := func(dir pushpull.Direction) (*pushpull.Report, error) {
			return pushpull.Run(context.Background(), g, "sssp",
				pushpull.WithDirection(dir), pushpull.WithThreads(cfg.Threads),
				pushpull.WithSource(0), pushpull.WithDelta(delta))
		}
		push, err := sweep(pushpull.Push)
		if err != nil {
			return err
		}
		pull, err := sweep(pushpull.Pull)
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "%-10.0f %12s %12s\n", delta,
			ms(push.Stats.Elapsed), ms(pull.Stats.Elapsed))
	}
	return nil
}

// Fig3 regenerates the distributed strong-scaling figure: simulated
// makespan vs rank count for PR (orc, ljn, rmat) and TC (orc, ljn) with
// Pushing-RMA, Pulling-RMA and Msg-Passing, all through the facade's
// dist-* registry entries (Stats.Elapsed is the simulated makespan).
func Fig3(cfg Config) error {
	cfg.defaults()
	header(cfg.Out, "Figure 3", "DM strong scaling (simulated makespan [ms] vs P)")
	ranks := []int{2, 4, 8, 16, 32, 64, 128, 256}
	simMS := func(rep *pushpull.Report) float64 { return float64(rep.Stats.Elapsed) / 1e6 }

	prGraphs := []string{"orc", "ljn", "rmat"}
	for _, name := range prGraphs {
		g, err := loadGraph(name, cfg, false)
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "PR, %s (per iteration)\n%-6s %14s %14s %14s\n",
			name, "P", "Pushing-RMA", "Pulling-RMA", "Msg-Passing")
		const iters = 2
		for _, p := range ranks {
			if p > g.N() {
				break
			}
			row := make([]float64, 0, 3)
			for _, algo := range []string{"dist-pr-push-rma", "dist-pr-pull-rma", "dist-pr-mp"} {
				rep, err := pushpull.Run(context.Background(), g, algo,
					pushpull.WithRanks(p), pushpull.WithIterations(iters))
				if err != nil {
					return err
				}
				row = append(row, simMS(rep)/iters)
			}
			fmt.Fprintf(cfg.Out, "%-6d %14.3f %14.3f %14.3f\n", p, row[0], row[1], row[2])
		}
	}

	tcCfgBase := cfg
	tcCfgBase.Scale = cfg.Scale * 0.5
	for _, name := range []string{"orc", "ljn"} {
		g, err := loadGraph(name, tcCfgBase, false)
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "TC, %s (total)\n%-6s %14s %14s %14s\n",
			name, "P", "Pushing-RMA", "Pulling-RMA", "Msg-Passing")
		for _, p := range ranks {
			if p > g.N() {
				break
			}
			row := make([]float64, 0, 3)
			for _, algo := range []string{"dist-tc-push-rma", "dist-tc-pull-rma", "dist-tc-mp"} {
				rep, err := pushpull.Run(context.Background(), g, algo, pushpull.WithRanks(p))
				if err != nil {
					return err
				}
				row = append(row, simMS(rep))
			}
			fmt.Fprintf(cfg.Out, "%-6d %14.3f %14.3f %14.3f\n", p, row[0], row[1], row[2])
		}
	}

	// The §6.3 memory-consumption analysis at a representative P.
	const memP = 32
	g, err := loadGraph("orc", cfg, false)
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "per-process auxiliary memory at P=%d (§6.3):\n", memP)
	for _, e := range dalgo.PRMemory(g, memP) {
		fmt.Fprintf(cfg.Out, "  PR %s\n", e)
	}
	for _, e := range dalgo.TCMemory(g, memP, 0) {
		fmt.Fprintf(cfg.Out, "  TC %s\n", e)
	}
	return nil
}

// Fig4 regenerates the MST phase figure: per-iteration times of the
// Find-Minimum, Build-Merge-Tree and Merge phases, push vs pull.
func Fig4(cfg Config) error {
	cfg.defaults()
	header(cfg.Out, "Figure 4", "Borůvka phases per iteration [ms], push vs pull")
	g, err := loadGraph("orc", cfg, true)
	if err != nil {
		return err
	}
	boruvka := func(dir pushpull.Direction) (*pushpull.MSTResult, error) {
		rep, err := pushpull.Run(context.Background(), g, "mst",
			pushpull.WithDirection(dir), pushpull.WithThreads(cfg.Threads))
		if err != nil {
			return nil, err
		}
		return rep.Result.(*pushpull.MSTResult), nil
	}
	push, err := boruvka(pushpull.Push)
	if err != nil {
		return err
	}
	pull, err := boruvka(pushpull.Pull)
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "%-5s %12s %12s %12s %12s %12s %12s\n", "iter",
		"FM push", "FM pull", "BMT push", "BMT pull", "M push", "M pull")
	rows := push.Iterations
	if pull.Iterations > rows {
		rows = pull.Iterations
	}
	at := func(s []time.Duration, i int) string {
		if i < len(s) {
			return ms(s[i])
		}
		return "-"
	}
	for i := 0; i < rows; i++ {
		fmt.Fprintf(cfg.Out, "%-5d %12s %12s %12s %12s %12s %12s\n", i,
			at(push.PhaseFM, i), at(pull.PhaseFM, i),
			at(push.PhaseBMT, i), at(pull.PhaseBMT, i),
			at(push.PhaseM, i), at(pull.PhaseM, i))
	}
	fmt.Fprintf(cfg.Out, "total: push=%s ms pull=%s ms (weight %.1f, %d edges each)\n",
		ms(push.Stats.Elapsed), ms(pull.Stats.Elapsed), push.TotalWeight, len(push.Edges))
	return nil
}

// Fig5 regenerates the BC thread-scaling figure: first-BFS, second-BFS and
// total runtimes for push and pull as threads grow.
func Fig5(cfg Config) error {
	cfg.defaults()
	header(cfg.Out, "Figure 5", "BC runtimes [ms] vs threads (sampled sources)")
	g, err := loadGraph("orc", cfg, false)
	if err != nil {
		return err
	}
	sources := []graph.V{0, 1, 2, 3, 4, 5, 6, 7}
	fmt.Fprintf(cfg.Out, "%-8s %12s %12s %12s %12s %12s %12s\n", "threads",
		"BFS1 push", "BFS1 pull", "BFS2 push", "BFS2 pull", "total push", "total pull")
	for t := 1; t <= cfg.Threads; t *= 2 {
		row := map[pushpull.Direction]*pushpull.BCResult{}
		for _, dir := range []pushpull.Direction{pushpull.Push, pushpull.Pull} {
			rep, err := pushpull.Run(context.Background(), g, "bc",
				pushpull.WithDirection(dir), pushpull.WithThreads(t),
				pushpull.WithSources(sources))
			if err != nil {
				return err
			}
			row[dir] = rep.Result.(*pushpull.BCResult)
		}
		push, pull := row[pushpull.Push], row[pushpull.Pull]
		fmt.Fprintf(cfg.Out, "%-8d %12s %12s %12s %12s %12s %12s\n", t,
			ms(push.Phase1), ms(pull.Phase1),
			ms(push.Phase2), ms(pull.Phase2),
			ms(push.Phase1+push.Phase2), ms(pull.Phase1+pull.Phase2))
	}
	return nil
}

// Fig6 regenerates the acceleration-strategy panel: (a) PR per-iteration
// times for Push vs Push+PA vs Pull; (b) BGC iterations-to-finish for
// Push, +FE, +GS, +GrS.
func Fig6(cfg Config) error {
	cfg.defaults()
	header(cfg.Out, "Figure 6a", "PR time per iteration [ms]: Push vs Push+PA vs Pull")
	fmt.Fprintf(cfg.Out, "%-8s %10s %10s %10s\n", "graph", "Push", "Push+PA", "Pull")
	const iters = 10
	for _, name := range workloadNames {
		g, err := loadGraph(name, cfg, false)
		if err != nil {
			return err
		}
		ranks := func(opts ...pushpull.Option) (pushpull.RunStats, error) {
			rep, err := pushpull.Run(context.Background(), g, "pr", append(opts,
				pushpull.WithThreads(cfg.Threads), pushpull.WithIterations(iters))...)
			if err != nil {
				return pushpull.RunStats{}, err
			}
			return rep.Stats, nil
		}
		sPush, err := ranks(pushpull.WithDirection(pushpull.Push))
		if err != nil {
			return err
		}
		sPA, err := ranks(pushpull.WithDirection(pushpull.Push),
			pushpull.WithPartitionAwareness(), pushpull.WithPartitions(cfg.Threads))
		if err != nil {
			return err
		}
		sPull, err := ranks(pushpull.WithDirection(pushpull.Pull))
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "%-8s %10s %10s %10s\n", name,
			ms(sPush.AvgIteration()), ms(sPA.AvgIteration()), ms(sPull.AvgIteration()))
	}

	header(cfg.Out, "Figure 6b", "BGC iterations to finish: Push vs +FE vs +GS vs +GrS")
	fmt.Fprintf(cfg.Out, "%-8s %8s %8s %8s %8s\n", "graph", "Push", "+FE", "+GS", "+GrS")
	for _, name := range workloadNames {
		g, err := loadGraph(name, cfg, false)
		if err != nil {
			return err
		}
		iters := func(algo string, opts ...pushpull.Option) (int, error) {
			rep, err := pushpull.Run(context.Background(), g, algo, append(opts,
				pushpull.WithDirection(pushpull.Push), pushpull.WithThreads(cfg.Threads))...)
			if err != nil {
				return 0, err
			}
			return rep.Stats.Iterations, nil
		}
		push, err := iters("gc")
		if err != nil {
			return err
		}
		fe, err := iters("gc-fe", pushpull.WithMaxIters(4096))
		if err != nil {
			return err
		}
		gs, err := iters("gc", pushpull.WithMaxIters(4096),
			pushpull.WithSwitchPolicy(&pushpull.GenericSwitch{Threshold: 1.0}))
		if err != nil {
			return err
		}
		grs, err := iters("gc", pushpull.WithMaxIters(4096),
			pushpull.WithSwitchPolicy(&pushpull.GreedySwitch{Fraction: 0.1, Total: g.N()}))
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "%-8s %8d %8d %8d %8d\n", name,
			push, fe, gs, grs)
	}
	return nil
}
