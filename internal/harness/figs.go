package harness

import (
	"fmt"
	"time"

	"pushpull/internal/algo/bc"
	"pushpull/internal/algo/bfs"
	"pushpull/internal/algo/gc"
	"pushpull/internal/algo/mst"
	"pushpull/internal/algo/pr"
	"pushpull/internal/algo/sssp"
	"pushpull/internal/core"
	"pushpull/internal/dm"
	"pushpull/internal/dm/dalgo"
	"pushpull/internal/graph"
)

// Fig1 regenerates the coloring figure: per-iteration times of Pulling,
// Pushing (Boman) and GrS (FE + Greedy-Switch) on the orc, ljn and rca
// stand-ins, up to 50 iterations.
func Fig1(cfg Config) error {
	cfg.defaults()
	header(cfg.Out, "Figure 1", "BGC time per iteration [ms]: Pulling vs Pushing vs GrS")
	const maxShown = 50
	for _, name := range []string{"orc", "ljn", "rca"} {
		g, err := loadGraph(name, cfg, false)
		if err != nil {
			return err
		}
		part := graph.NewPartition(g.N(), cfg.Threads)
		collect := func(run func(opt gc.Options) (*gc.Result, error)) ([]time.Duration, int, error) {
			var per []time.Duration
			opt := gc.Options{}
			opt.Threads = cfg.Threads
			opt.OnIteration = func(i int, d time.Duration) {
				if i < maxShown {
					per = append(per, d)
				}
			}
			res, err := run(opt)
			if err != nil {
				return nil, 0, err
			}
			return per, res.Iterations, nil
		}
		pull, pullIters, err := collect(func(opt gc.Options) (*gc.Result, error) { return gc.Pull(g, part, opt) })
		if err != nil {
			return err
		}
		push, pushIters, err := collect(func(opt gc.Options) (*gc.Result, error) { return gc.Push(g, part, opt) })
		if err != nil {
			return err
		}
		grs, grsIters, err := collect(func(opt gc.Options) (*gc.Result, error) {
			opt.MaxIters = 4096
			return gc.GrS(g, opt, core.Push, 0.1), nil
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "%s (iterations to finish: pull=%d push=%d GrS=%d)\n",
			name, pullIters, pushIters, grsIters)
		fmt.Fprintf(cfg.Out, "%-5s %10s %10s %10s\n", "iter", "Pulling", "Pushing", "GrS")
		rows := len(pull)
		if len(push) > rows {
			rows = len(push)
		}
		if len(grs) > rows {
			rows = len(grs)
		}
		at := func(s []time.Duration, i int) string {
			if i < len(s) {
				return ms(s[i])
			}
			return "-"
		}
		for i := 0; i < rows; i++ {
			fmt.Fprintf(cfg.Out, "%-5d %10s %10s %10s\n", i, at(pull, i), at(push, i), at(grs, i))
		}
	}
	return nil
}

// Fig2 regenerates the Δ-stepping figure: per-iteration times for push and
// pull on orc and am, plus the Δ sweep on orc showing the gap closing as Δ
// grows.
func Fig2(cfg Config) error {
	cfg.defaults()
	header(cfg.Out, "Figure 2", "SSSP-Δ per-iteration time [ms] and the Δ sweep")
	const maxShown = 12
	for _, name := range []string{"orc", "am"} {
		g, err := loadGraph(name, cfg, true)
		if err != nil {
			return err
		}
		collect := func(run func(opt sssp.Options) *sssp.Result) []time.Duration {
			var per []time.Duration
			opt := sssp.Options{Source: 0}
			opt.Threads = cfg.Threads
			opt.OnIteration = func(i int, d time.Duration) {
				if i < maxShown {
					per = append(per, d)
				}
			}
			run(opt)
			return per
		}
		push := collect(func(opt sssp.Options) *sssp.Result { return sssp.Push(g, opt) })
		pull := collect(func(opt sssp.Options) *sssp.Result { return sssp.Pull(g, opt) })
		fmt.Fprintf(cfg.Out, "%s\n%-5s %10s %10s\n", name, "iter", "Pushing", "Pulling")
		rows := len(push)
		if len(pull) > rows {
			rows = len(pull)
		}
		at := func(s []time.Duration, i int) string {
			if i < len(s) {
				return ms(s[i])
			}
			return "-"
		}
		for i := 0; i < rows; i++ {
			fmt.Fprintf(cfg.Out, "%-5d %10s %10s\n", i, at(push, i), at(pull, i))
		}
	}
	// Δ sweep (orc): total time per variant as Δ grows.
	g, err := loadGraph("orc", cfg, true)
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "Δ sweep (orc)\n%-10s %12s %12s\n", "Delta", "Pushing [ms]", "Pulling [ms]")
	for _, delta := range []float64{5, 20, 80, 320, 1280, 5120} {
		opt := sssp.Options{Source: 0, Delta: delta}
		opt.Threads = cfg.Threads
		push := sssp.Push(g, opt)
		pull := sssp.Pull(g, opt)
		fmt.Fprintf(cfg.Out, "%-10.0f %12s %12s\n", delta,
			ms(push.Stats.Elapsed), ms(pull.Stats.Elapsed))
	}
	return nil
}

// Fig3 regenerates the distributed strong-scaling figure: simulated
// makespan vs rank count for PR (orc, ljn, rmat) and TC (orc, ljn) with
// Pushing-RMA, Pulling-RMA and Msg-Passing.
func Fig3(cfg Config) error {
	cfg.defaults()
	header(cfg.Out, "Figure 3", "DM strong scaling (simulated makespan [ms] vs P)")
	ranks := []int{2, 4, 8, 16, 32, 64, 128, 256}
	cost := dm.AriesCostModel()

	prGraphs := []string{"orc", "ljn", "rmat"}
	for _, name := range prGraphs {
		g, err := loadGraph(name, cfg, false)
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "PR, %s (per iteration)\n%-6s %14s %14s %14s\n",
			name, "P", "Pushing-RMA", "Pulling-RMA", "Msg-Passing")
		const iters = 2
		for _, p := range ranks {
			if p > g.N() {
				break
			}
			push, err := dalgo.PRPushRMA(g, dalgo.PRConfig{Ranks: p, Iterations: iters, Cost: cost})
			if err != nil {
				return err
			}
			pull, err := dalgo.PRPullRMA(g, dalgo.PRConfig{Ranks: p, Iterations: iters, Cost: cost})
			if err != nil {
				return err
			}
			msg, err := dalgo.PRMsgPassing(g, dalgo.PRConfig{Ranks: p, Iterations: iters, Cost: cost})
			if err != nil {
				return err
			}
			fmt.Fprintf(cfg.Out, "%-6d %14.3f %14.3f %14.3f\n", p,
				push.SimTime/iters/1e6, pull.SimTime/iters/1e6, msg.SimTime/iters/1e6)
		}
	}

	tcCfgBase := cfg
	tcCfgBase.Scale = cfg.Scale * 0.5
	for _, name := range []string{"orc", "ljn"} {
		g, err := loadGraph(name, tcCfgBase, false)
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "TC, %s (total)\n%-6s %14s %14s %14s\n",
			name, "P", "Pushing-RMA", "Pulling-RMA", "Msg-Passing")
		for _, p := range ranks {
			if p > g.N() {
				break
			}
			push, err := dalgo.TCPushRMA(g, dalgo.TCConfig{Ranks: p, Cost: cost})
			if err != nil {
				return err
			}
			pull, err := dalgo.TCPullRMA(g, dalgo.TCConfig{Ranks: p, Cost: cost})
			if err != nil {
				return err
			}
			msg, err := dalgo.TCMsgPassing(g, dalgo.TCConfig{Ranks: p, Cost: cost})
			if err != nil {
				return err
			}
			fmt.Fprintf(cfg.Out, "%-6d %14.3f %14.3f %14.3f\n", p,
				push.SimTime/1e6, pull.SimTime/1e6, msg.SimTime/1e6)
		}
	}

	// The §6.3 memory-consumption analysis at a representative P.
	const memP = 32
	g, err := loadGraph("orc", cfg, false)
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "per-process auxiliary memory at P=%d (§6.3):\n", memP)
	for _, e := range dalgo.PRMemory(g, memP) {
		fmt.Fprintf(cfg.Out, "  PR %s\n", e)
	}
	for _, e := range dalgo.TCMemory(g, memP, 0) {
		fmt.Fprintf(cfg.Out, "  TC %s\n", e)
	}
	return nil
}

// Fig4 regenerates the MST phase figure: per-iteration times of the
// Find-Minimum, Build-Merge-Tree and Merge phases, push vs pull.
func Fig4(cfg Config) error {
	cfg.defaults()
	header(cfg.Out, "Figure 4", "Borůvka phases per iteration [ms], push vs pull")
	g, err := loadGraph("orc", cfg, true)
	if err != nil {
		return err
	}
	opt := mst.Options{}
	opt.Threads = cfg.Threads
	push := mst.Boruvka(g, opt, core.Push)
	pull := mst.Boruvka(g, opt, core.Pull)
	fmt.Fprintf(cfg.Out, "%-5s %12s %12s %12s %12s %12s %12s\n", "iter",
		"FM push", "FM pull", "BMT push", "BMT pull", "M push", "M pull")
	rows := push.Iterations
	if pull.Iterations > rows {
		rows = pull.Iterations
	}
	at := func(s []time.Duration, i int) string {
		if i < len(s) {
			return ms(s[i])
		}
		return "-"
	}
	for i := 0; i < rows; i++ {
		fmt.Fprintf(cfg.Out, "%-5d %12s %12s %12s %12s %12s %12s\n", i,
			at(push.PhaseFM, i), at(pull.PhaseFM, i),
			at(push.PhaseBMT, i), at(pull.PhaseBMT, i),
			at(push.PhaseM, i), at(pull.PhaseM, i))
	}
	fmt.Fprintf(cfg.Out, "total: push=%s ms pull=%s ms (weight %.1f, %d edges each)\n",
		ms(push.Stats.Elapsed), ms(pull.Stats.Elapsed), push.TotalWeight, len(push.Edges))
	return nil
}

// Fig5 regenerates the BC thread-scaling figure: first-BFS, second-BFS and
// total runtimes for push and pull as threads grow.
func Fig5(cfg Config) error {
	cfg.defaults()
	header(cfg.Out, "Figure 5", "BC runtimes [ms] vs threads (sampled sources)")
	g, err := loadGraph("orc", cfg, false)
	if err != nil {
		return err
	}
	sources := []graph.V{0, 1, 2, 3, 4, 5, 6, 7}
	fmt.Fprintf(cfg.Out, "%-8s %12s %12s %12s %12s %12s %12s\n", "threads",
		"BFS1 push", "BFS1 pull", "BFS2 push", "BFS2 pull", "total push", "total pull")
	for t := 1; t <= cfg.Threads; t *= 2 {
		row := map[bfs.Mode]*bc.Result{}
		for _, mode := range []bfs.Mode{bfs.ForcePush, bfs.ForcePull} {
			opt := bc.Options{Sources: sources, Mode: mode}
			opt.Threads = t
			row[mode] = bc.Run(g, opt)
		}
		push, pull := row[bfs.ForcePush], row[bfs.ForcePull]
		fmt.Fprintf(cfg.Out, "%-8d %12s %12s %12s %12s %12s %12s\n", t,
			ms(push.Phase1), ms(pull.Phase1),
			ms(push.Phase2), ms(pull.Phase2),
			ms(push.Phase1+push.Phase2), ms(pull.Phase1+pull.Phase2))
	}
	return nil
}

// Fig6 regenerates the acceleration-strategy panel: (a) PR per-iteration
// times for Push vs Push+PA vs Pull; (b) BGC iterations-to-finish for
// Push, +FE, +GS, +GrS.
func Fig6(cfg Config) error {
	cfg.defaults()
	header(cfg.Out, "Figure 6a", "PR time per iteration [ms]: Push vs Push+PA vs Pull")
	fmt.Fprintf(cfg.Out, "%-8s %10s %10s %10s\n", "graph", "Push", "Push+PA", "Pull")
	const iters = 10
	for _, name := range workloadNames {
		g, err := loadGraph(name, cfg, false)
		if err != nil {
			return err
		}
		opt := pr.Options{Iterations: iters}
		opt.Threads = cfg.Threads
		_, sPush := pr.Push(g, opt)
		pa := graph.BuildPA(g, graph.NewPartition(g.N(), cfg.Threads))
		_, sPA := pr.PushPA(pa, opt)
		_, sPull := pr.Pull(g, opt)
		fmt.Fprintf(cfg.Out, "%-8s %10s %10s %10s\n", name,
			ms(sPush.AvgIteration()), ms(sPA.AvgIteration()), ms(sPull.AvgIteration()))
	}

	header(cfg.Out, "Figure 6b", "BGC iterations to finish: Push vs +FE vs +GS vs +GrS")
	fmt.Fprintf(cfg.Out, "%-8s %8s %8s %8s %8s\n", "graph", "Push", "+FE", "+GS", "+GrS")
	for _, name := range workloadNames {
		g, err := loadGraph(name, cfg, false)
		if err != nil {
			return err
		}
		part := graph.NewPartition(g.N(), cfg.Threads)
		opt := gc.Options{}
		opt.Threads = cfg.Threads
		push, err := gc.Push(g, part, opt)
		if err != nil {
			return err
		}
		feOpt := gc.Options{MaxIters: 4096}
		feOpt.Threads = cfg.Threads
		fe := gc.FrontierExploit(g, feOpt, core.Push, nil)
		gs := gc.GS(g, feOpt, core.Push, 1.0)
		grs := gc.GrS(g, feOpt, core.Push, 0.1)
		fmt.Fprintf(cfg.Out, "%-8s %8d %8d %8d %8d\n", name,
			push.Iterations, fe.Iterations, gs.Iterations, grs.Iterations)
	}
	return nil
}
