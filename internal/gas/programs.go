package gas

import (
	"math"

	"pushpull/internal/graph"
)

// SSSPProgram is the §7.4 shortest-path GAS program: gather proposes
// d(u) + w(u,v), merge keeps the minimum, apply adopts improvements.
type SSSPProgram struct {
	Source graph.V
}

var _ Program[float64, float64] = SSSPProgram{}

// Init implements Program: everyone starts at +∞; only the source is
// scheduled, and its first Apply announces distance 0 (the change that
// seeds the scatter wave).
func (p SSSPProgram) Init(v graph.V) (float64, bool) {
	return math.Inf(1), v == p.Source
}

// Gather implements Program.
func (p SSSPProgram) Gather(u graph.V, uVal float64, w float32) float64 {
	return uVal + float64(w)
}

// Merge implements Program.
func (p SSSPProgram) Merge(a, b float64) float64 { return math.Min(a, b) }

// Apply implements Program.
func (p SSSPProgram) Apply(v graph.V, cur, acc float64, has bool) (float64, bool) {
	if v == p.Source {
		return 0, math.IsInf(cur, 1) // changed exactly once
	}
	if has && acc < cur {
		return acc, true
	}
	return cur, false
}

// ColorSet is a growable bitset of colors used as the coloring program's
// accumulator.
type ColorSet []uint64

// Has reports whether color c is in the set.
func (s ColorSet) Has(c int32) bool {
	w := int(c) >> 6
	return w < len(s) && s[w]&(1<<(uint(c)&63)) != 0
}

// With returns the set extended by color c (copy-on-write).
func (s ColorSet) With(c int32) ColorSet {
	w := int(c) >> 6
	out := make(ColorSet, maxInt(len(s), w+1))
	copy(out, s)
	out[w] |= 1 << (uint(c) & 63)
	return out
}

// Union returns the union of two sets.
func (s ColorSet) Union(o ColorSet) ColorSet {
	out := make(ColorSet, maxInt(len(s), len(o)))
	copy(out, s)
	for i, w := range o {
		out[i] |= w
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// GCProgram is the §7.4 coloring GAS program: every vertex collects the
// colors of its neighbors and recomputes the smallest free color; the new
// color is scattered to the neighbors, conflicts reschedule (§7.4 notes
// this is BGC with one vertex per partition).
type GCProgram struct{}

// Uncolored is the initial color value.
const Uncolored int32 = -1

var _ Program[int32, ColorSet] = GCProgram{}

// Init implements Program: all vertices start uncolored and scheduled.
func (GCProgram) Init(v graph.V) (int32, bool) { return Uncolored, true }

// Gather implements Program: a neighbor contributes its color (nothing if
// uncolored).
func (GCProgram) Gather(u graph.V, uVal int32, w float32) ColorSet {
	if uVal == Uncolored {
		return nil
	}
	return ColorSet(nil).With(uVal)
}

// Merge implements Program.
func (GCProgram) Merge(a, b ColorSet) ColorSet { return a.Union(b) }

// Apply implements Program: adopt the smallest color outside the gathered
// set; report change so neighbors revalidate.
func (GCProgram) Apply(v graph.V, cur int32, acc ColorSet, has bool) (int32, bool) {
	for c := int32(0); ; c++ {
		if !acc.Has(c) {
			return c, c != cur
		}
	}
}
