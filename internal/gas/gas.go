// Package gas implements the Gather-Apply-Scatter abstraction of the
// paper's §7.4 (after PowerGraph [27]) and shows how GAS programs fit the
// push-pull dichotomy: in pull mode an active vertex *gathers* from all of
// its neighbors and applies privately; in push mode a changed vertex
// *scatters* its contribution directly into its neighbors' pending
// accumulators — cross-thread writes guarded by per-vertex locks, exactly
// the synchronization pushing always buys.
//
// The engine executes rounds over the scheduled set. Within a round only
// an independent subset (no two adjacent scheduled vertices; smaller id
// wins) applies — the serializability guarantee GraphLab-style engines
// provide — which makes both directions deterministic, livelock-free and
// race-free. The §7.4 example programs, SSSP and greedy coloring, are
// provided and cross-validated against the direct implementations.
package gas

import (
	"pushpull/internal/atomicx"
	"pushpull/internal/core"
	"pushpull/internal/frontier"
	"pushpull/internal/graph"
	"pushpull/internal/sched"
)

// Program is one GAS vertex program. Val is the per-vertex state; Acc the
// gather accumulator.
type Program[Val, Acc any] interface {
	// Init returns v's initial value and whether v starts scheduled.
	Init(v graph.V) (Val, bool)
	// Gather returns neighbor u's contribution along an edge of weight w.
	Gather(u graph.V, uVal Val, w float32) Acc
	// Merge combines two contributions (associative, commutative).
	Merge(a, b Acc) Acc
	// Apply computes v's new value from the accumulated contributions.
	// has is false when nothing was gathered. changed=true reschedules
	// v's neighbors (the scatter decision).
	Apply(v graph.V, cur Val, acc Acc, has bool) (next Val, changed bool)
}

// Result carries the final vertex values and round count.
type Result[Val any] struct {
	Values []Val
	Rounds int
}

// Run executes the program to quiescence (or maxRounds, 0 = unbounded).
func Run[Val, Acc any](g *graph.CSR, prog Program[Val, Acc], dir core.Direction, opt core.Options, maxRounds int) *Result[Val] {
	n := g.N()
	res := &Result[Val]{Values: make([]Val, n)}
	if n == 0 {
		return res
	}
	t := sched.Clamp(opt.Threads, n)
	vals := res.Values
	scheduled := frontier.NewBitmap(n)
	schedNext := frontier.NewBitmap(n)
	pending := make([]Acc, n)
	hasPending := make([]bool, n)
	locks := make([]atomicx.SpinLock, n)

	for v := graph.V(0); v < g.NumV; v++ {
		val, sch := prog.Init(v)
		vals[v] = val
		if sch {
			scheduled.SetSeq(v)
		}
	}

	for scheduled.Count() > 0 {
		if maxRounds > 0 && res.Rounds >= maxRounds {
			break
		}
		res.Rounds++
		// Eligibility: a scheduled vertex applies only if it has no
		// smaller scheduled neighbor — an independent set, so adjacent
		// vertices never apply in the same round (serializability).
		eligible := func(v graph.V) bool {
			if !scheduled.Get(v) {
				return false
			}
			for _, u := range g.Neighbors(v) {
				if u < v && scheduled.Get(u) {
					return false
				}
			}
			return true
		}
		sched.ParallelFor(n, t, sched.Static, 0, func(w, lo, hi int) {
			for vi := lo; vi < hi; vi++ {
				v := graph.V(vi)
				if !eligible(v) {
					// Deferred vertices stay scheduled for the next round.
					if scheduled.Get(v) {
						schedNext.Set(v)
					}
					continue
				}
				var acc Acc
				has := false
				if dir == core.Pull {
					// Gather from ALL neighbors' current values.
					ws := g.NeighborWeights(v)
					for i, u := range g.Neighbors(v) {
						wt := float32(1)
						if ws != nil {
							wt = ws[i]
						}
						c := prog.Gather(u, vals[u], wt)
						if !has {
							acc, has = c, true
						} else {
							acc = prog.Merge(acc, c)
						}
					}
				} else {
					// Consume what neighbors pushed; the accumulator
					// persists (contributions are conservative).
					locks[v].Lock()
					acc, has = pending[v], hasPending[v]
					locks[v].Unlock()
				}
				next, changed := prog.Apply(v, vals[v], acc, has)
				vals[v] = next
				if !changed {
					continue
				}
				// Scatter: reschedule neighbors; in push mode also deposit
				// v's new contribution into their pending accumulators —
				// the cross-thread writes of §3.8.
				ws := g.NeighborWeights(v)
				for i, u := range g.Neighbors(v) {
					if dir == core.Push {
						wt := float32(1)
						if ws != nil {
							wt = ws[i]
						}
						c := prog.Gather(v, next, wt)
						locks[u].Lock()
						if hasPending[u] {
							pending[u] = prog.Merge(pending[u], c)
						} else {
							pending[u] = c
							hasPending[u] = true
						}
						locks[u].Unlock()
					}
					schedNext.Set(u)
				}
			}
		})
		scheduled, schedNext = schedNext, scheduled
		schedNext.Clear()
	}
	return res
}
