package gas

import (
	"math"
	"testing"
	"testing/quick"

	"pushpull/internal/algo/gc"
	"pushpull/internal/algo/sssp"
	"pushpull/internal/core"
	"pushpull/internal/gen"
	"pushpull/internal/graph"
)

const tol = 1e-9

func weighted(t testing.TB, seed uint64) *graph.CSR {
	t.Helper()
	g, err := gen.RMAT(gen.DefaultRMAT(8, 6, seed))
	if err != nil {
		t.Fatal(err)
	}
	return gen.WithUniformWeights(g, 1, 20, seed+1)
}

func TestSSSPProgramMatchesDijkstra(t *testing.T) {
	g := weighted(t, 3)
	want := sssp.Dijkstra(g, 0)
	for _, dir := range []core.Direction{core.Push, core.Pull} {
		opt := core.Options{Threads: 4}
		res := Run[float64, float64](g, SSSPProgram{Source: 0}, dir, opt, 0)
		if len(res.Values) != g.N() {
			t.Fatalf("%v: values length", dir)
		}
		for v, d := range res.Values {
			if math.IsInf(want[v], 1) {
				if !math.IsInf(d, 1) {
					t.Fatalf("%v: dist[%d] = %v, want +Inf", dir, v, d)
				}
				continue
			}
			if math.Abs(d-want[v]) > tol {
				t.Fatalf("%v: dist[%d] = %v, want %v", dir, v, d, want[v])
			}
		}
		if res.Rounds == 0 {
			t.Fatalf("%v: no rounds", dir)
		}
	}
}

func TestSSSPProgramPath(t *testing.T) {
	g := gen.Path(30)
	for _, dir := range []core.Direction{core.Push, core.Pull} {
		res := Run[float64, float64](g, SSSPProgram{Source: 0}, dir, core.Options{}, 0)
		for v := 0; v < 30; v++ {
			if res.Values[v] != float64(v) {
				t.Fatalf("%v: dist[%d] = %v", dir, v, res.Values[v])
			}
		}
	}
}

func TestGCProgramValid(t *testing.T) {
	for _, seed := range []uint64{1, 5, 9} {
		g, err := gen.ErdosRenyi(150, 4, seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, dir := range []core.Direction{core.Push, core.Pull} {
			opt := core.Options{Threads: 4}
			res := Run[int32, ColorSet](g, GCProgram{}, dir, opt, 10000)
			colors := res.Values
			if err := gc.Validate(g, colors); err != nil {
				t.Fatalf("seed %d dir %v: %v (rounds=%d)", seed, dir, err, res.Rounds)
			}
		}
	}
}

func TestGCProgramStar(t *testing.T) {
	g := gen.Star(9)
	res := Run[int32, ColorSet](g, GCProgram{}, core.Pull, core.Options{}, 1000)
	if err := gc.Validate(g, res.Values); err != nil {
		t.Fatal(err)
	}
	if gc.CountColors(res.Values) != 2 {
		t.Fatalf("star colored with %d colors", gc.CountColors(res.Values))
	}
}

func TestColorSet(t *testing.T) {
	var s ColorSet
	if s.Has(0) || s.Has(100) {
		t.Fatal("empty set has members")
	}
	s = s.With(3).With(64)
	if !s.Has(3) || !s.Has(64) || s.Has(4) {
		t.Fatalf("set = %v", s)
	}
	u := s.Union(ColorSet(nil).With(1))
	if !u.Has(1) || !u.Has(3) || !u.Has(64) {
		t.Fatal("union wrong")
	}
	// Copy-on-write: original unchanged.
	if s.Has(1) {
		t.Fatal("With/Union mutated the receiver")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(0).MustBuild()
	res := Run[float64, float64](g, SSSPProgram{}, core.Push, core.Options{}, 0)
	if len(res.Values) != 0 || res.Rounds != 0 {
		t.Fatal("empty graph did work")
	}
}

func TestMaxRoundsCapsExecution(t *testing.T) {
	g := gen.Ring(64)
	res := Run[float64, float64](g, SSSPProgram{Source: 0}, core.Pull, core.Options{}, 2)
	if res.Rounds != 2 {
		t.Fatalf("rounds = %d, want 2 (capped)", res.Rounds)
	}
}

// Property: GAS SSSP matches Dijkstra in both directions on random
// weighted graphs.
func TestSSSPAgreementProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g, err := gen.ErdosRenyi(70, 3, seed)
		if err != nil {
			return false
		}
		g = gen.WithUniformWeights(g, 1, 9, seed+2)
		want := sssp.Dijkstra(g, 0)
		for _, dir := range []core.Direction{core.Push, core.Pull} {
			res := Run[float64, float64](g, SSSPProgram{Source: 0}, dir, core.Options{Threads: 2}, 0)
			for v := range want {
				a, b := res.Values[v], want[v]
				if math.IsInf(a, 1) && math.IsInf(b, 1) {
					continue
				}
				if math.Abs(a-b) > tol {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGASSSSPPull(b *testing.B) {
	g := weighted(b, 1)
	for i := 0; i < b.N; i++ {
		Run[float64, float64](g, SSSPProgram{Source: 0}, core.Pull, core.Options{}, 0)
	}
}
