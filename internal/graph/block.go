// Out-of-core block CSR: the on-disk graph layout behind the facade's
// AsOutOfCore/WithOutOfCore path, after HybridGraph's VE-BLOCK storage.
// Vertices are grouped into fixed-size blocks (a multiple of 64, so one
// block never shares a frontier-bitmap word with another) and each
// block's adjacency rows are laid contiguously in one file segment. A
// pull kernel that walks destination blocks in storage order therefore
// touches the edge array as a sequence of forward page reads — the
// random vertex-state traffic stays confined to the O(n) arrays that do
// fit in memory (offsets, degrees, rank/frontier vectors), while the
// O(m) adjacency never needs to be resident at once.
//
// The file is little-endian throughout:
//
//	header    magic, version, flags, blockVerts (u32 each);
//	          n, adjCount, numBlocks (u64 each)
//	offsets   (n+1)×u64  — the pull-view CSR offsets (loaded at open)
//	outdeg    n×u64      — directed files only: out-degrees (loaded)
//	blockIdx  (numBlocks+1)×u64 — absolute byte offset of each block's
//	          segment; the last entry is the file size
//	segments  per block: adjacency (i32 per arc), then weights (f32 per
//	          arc) when the weighted flag is set, padded to 8 bytes
//
// For a directed graph the stored adjacency is the PULL view (in-edges)
// and the out-degree array scales contributions (PageRank divides by
// out-degree); undirected files store the symmetric adjacency and need
// no degree sidecar. The blockIdx array is redundant with the offsets —
// deliberately: it is revalidated entry by entry at open, so a
// truncated or bit-flipped file fails loudly instead of serving a
// silently wrong graph.
package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"unsafe"
)

const (
	blockMagic   = 0x4b425050 // "PPBK" little-endian
	blockVersion = 1

	blockFlagWeighted = 1 << 0
	blockFlagDirected = 1 << 1

	blockHeaderBytes = 4*4 + 3*8
)

// DefaultBlockVerts is the default vertices-per-block: 4096 vertices
// keep a block's edge segment around a few hundred KiB on the suite
// graphs — large enough for sequential readahead to win, small enough
// that a frontier summary bit per block still skips real work.
const DefaultBlockVerts = 4096

// BlockCSR is an open block-format graph: the O(n) vertex state
// (offsets, out-degrees, block index) lives in memory, the O(m) edge
// segments stay on disk behind either a read-only mmap or a buffered
// ReadAt cursor.
type BlockCSR struct {
	NumV int32
	// BlockVerts is the vertices-per-block of the file, a multiple of 64.
	BlockVerts int32
	// Offsets is the pull-view CSR offset array (len NumV+1).
	Offsets []int64
	// OutDeg is the out-degree sidecar of a directed file, nil otherwise.
	OutDeg []int64

	adjCount int64
	blockOff []int64 // len numBlocks+1, absolute byte offsets
	weighted bool
	directed bool

	f    *os.File
	data []byte // mmap view; nil in buffered mode
}

// N returns the vertex count.
func (g *BlockCSR) N() int { return int(g.NumV) }

// M returns the stored arc count (2m for undirected files).
func (g *BlockCSR) M() int64 { return g.adjCount }

// Weighted reports whether the file carries edge weights.
func (g *BlockCSR) Weighted() bool { return g.weighted }

// Directed reports whether the file stores a directed graph (the
// adjacency is then the pull/in-edge view and OutDeg is present).
func (g *BlockCSR) Directed() bool { return g.directed }

// Mmapped reports whether the edge segments are served by mmap (false:
// the buffered ReadAt fallback).
func (g *BlockCSR) Mmapped() bool { return g.data != nil }

// NumBlocks returns the number of vertex blocks.
func (g *BlockCSR) NumBlocks() int { return len(g.blockOff) - 1 }

// BlockRange returns the vertex range [lo, hi) of block bi.
func (g *BlockCSR) BlockRange(bi int) (lo, hi V) {
	lo = V(bi) * g.BlockVerts
	hi = lo + g.BlockVerts
	if hi > g.NumV {
		hi = g.NumV
	}
	return lo, hi
}

// Degree returns the pull-view degree of v (in-degree for directed
// files) from the in-memory offsets — no disk access.
func (g *BlockCSR) Degree(v V) int64 { return g.Offsets[v+1] - g.Offsets[v] }

// ContribDegree returns the degree a neighbor's contribution scales by:
// the out-degree for directed files, the plain degree otherwise. This
// is the §4.8 split — pulling iterates in-edges but normalizes by the
// source's out-degree.
func (g *BlockCSR) ContribDegree(v V) int64 {
	if g.OutDeg != nil {
		return g.OutDeg[v]
	}
	return g.Offsets[v+1] - g.Offsets[v]
}

// Close unmaps and closes the file. The BlockCSR (and any cursor over
// it) must not be used afterwards.
func (g *BlockCSR) Close() error {
	var err error
	if g.data != nil {
		err = munmap(g.data)
		g.data = nil
	}
	if g.f != nil {
		if cerr := g.f.Close(); err == nil {
			err = cerr
		}
		g.f = nil
	}
	return err
}

// BlockCursor is the per-worker scratch of block iteration: Load points
// it at one block's segment (a zero-copy sub-slice under mmap, a reused
// read buffer otherwise), and Row serves adjacency slices out of it.
// A cursor is single-goroutine; kernels keep one per worker, hoisted
// outside their round loops so steady-state iteration allocates nothing
// (the fallback buffer grows to the largest block once and is reused).
type BlockCursor struct {
	g     *BlockCSR
	block int
	seg   []byte
	base  int64 // Offsets[lo] of the loaded block
	buf   []byte
	vbuf  []V       // big-endian-host decode scratch
	wbuf  []float32 // big-endian-host decode scratch
}

// Load points cur at block bi, reading the segment from disk in
// buffered mode (a no-op when the block is already loaded).
func (g *BlockCSR) Load(bi int, cur *BlockCursor) error {
	if cur.g == g && cur.block == bi && cur.seg != nil {
		return nil
	}
	start, end := g.blockOff[bi], g.blockOff[bi+1]
	if g.data != nil {
		cur.seg = g.data[start:end]
	} else {
		need := int(end - start)
		if cap(cur.buf) < need {
			cur.buf = make([]byte, need)
		}
		b := cur.buf[:need]
		if _, err := g.f.ReadAt(b, start); err != nil {
			cur.seg = nil
			return fmt.Errorf("graph: block %d: reading segment: %w", bi, err)
		}
		cur.seg = b
	}
	cur.g = g
	cur.block = bi
	lo, _ := g.BlockRange(bi)
	cur.base = g.Offsets[lo]
	return nil
}

// Row returns the adjacency of v, which must lie in the loaded block.
// Under mmap (or the reused read buffer) on a little-endian host this
// is a zero-copy view of the segment bytes.
func (cur *BlockCursor) Row(v V) []V {
	s := (cur.g.Offsets[v] - cur.base) * 4
	e := (cur.g.Offsets[v+1] - cur.base) * 4
	return castVs(cur.seg[s:e], &cur.vbuf)
}

// RowWeights returns the edge weights parallel to Row(v), nil for
// unweighted files.
func (cur *BlockCursor) RowWeights(v V) []float32 {
	g := cur.g
	if !g.weighted {
		return nil
	}
	lo, hi := g.BlockRange(cur.block)
	wbase := (g.Offsets[hi] - g.Offsets[lo]) * 4 // adjacency bytes precede weights
	s := wbase + (g.Offsets[v]-cur.base)*4
	e := wbase + (g.Offsets[v+1]-cur.base)*4
	return castF32s(cur.seg[s:e], &cur.wbuf)
}

// hostLittleEndian is checked once: the zero-copy segment casts are
// only valid when the host byte order matches the file's.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// castVs reinterprets little-endian segment bytes as vertex ids,
// decoding through scratch on a big-endian host.
func castVs(b []byte, scratch *[]V) []V {
	if len(b) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*V)(unsafe.Pointer(&b[0])), len(b)/4)
	}
	n := len(b) / 4
	if cap(*scratch) < n {
		*scratch = make([]V, n)
	}
	out := (*scratch)[:n]
	for i := range out {
		out[i] = V(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

// castF32s is castVs for the weight halves of weighted segments.
func castF32s(b []byte, scratch *[]float32) []float32 {
	if len(b) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*float32)(unsafe.Pointer(&b[0])), len(b)/4)
	}
	n := len(b) / 4
	if cap(*scratch) < n {
		*scratch = make([]float32, n)
	}
	out := (*scratch)[:n]
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

// VisitBlocks streams every block's adjacency (and weights, when
// present) in storage order through one buffered cursor — the content-
// identity digest walks the graph this way without materializing it.
func (g *BlockCSR) VisitBlocks(fn func(adj []V, weights []float32) error) error {
	var cur BlockCursor
	for bi := 0; bi < g.NumBlocks(); bi++ {
		if err := g.Load(bi, &cur); err != nil {
			return err
		}
		lo, hi := g.BlockRange(bi)
		cnt := (g.Offsets[hi] - g.Offsets[lo]) * 4
		adj := castVs(cur.seg[:cnt], &cur.vbuf)
		var ws []float32
		if g.weighted {
			ws = castF32s(cur.seg[cnt:cnt*2], &cur.wbuf)
		}
		if err := fn(adj, ws); err != nil {
			return err
		}
	}
	return nil
}

// ---- writing ----

// WriteBlock serializes pull (the pull-view CSR: the graph itself for
// undirected inputs, the transpose for directed ones) in the block
// format. outDeg must be the out-degree array for directed graphs and
// nil for undirected ones; blockVerts ≤ 0 selects DefaultBlockVerts,
// other values are rounded up to a multiple of 64 (the frontier-bitmap
// word size, so block boundaries never split a bitmap word).
func WriteBlock(w io.Writer, pull *CSR, outDeg []int64, blockVerts int) error {
	if outDeg != nil && len(outDeg) != pull.N() {
		return fmt.Errorf("graph: WriteBlock: outDeg length %d, want %d", len(outDeg), pull.N())
	}
	bv := roundBlockVerts(blockVerts)
	n := pull.N()
	numBlocks := (n + bv - 1) / bv
	if n == 0 {
		numBlocks = 0
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	var flags uint32
	if pull.Weighted() {
		flags |= blockFlagWeighted
	}
	if outDeg != nil {
		flags |= blockFlagDirected
	}
	var u32 [4]byte
	var u64 [8]byte
	put32 := func(x uint32) error {
		binary.LittleEndian.PutUint32(u32[:], x)
		_, err := bw.Write(u32[:])
		return err
	}
	put64 := func(x uint64) error {
		binary.LittleEndian.PutUint64(u64[:], x)
		_, err := bw.Write(u64[:])
		return err
	}
	for _, x := range []uint32{blockMagic, blockVersion, flags, uint32(bv)} {
		if err := put32(x); err != nil {
			return err
		}
	}
	for _, x := range []uint64{uint64(n), uint64(pull.M()), uint64(numBlocks)} {
		if err := put64(x); err != nil {
			return err
		}
	}
	for _, o := range pull.Offsets {
		if err := put64(uint64(o)); err != nil {
			return err
		}
	}
	for _, d := range outDeg {
		if err := put64(uint64(d)); err != nil {
			return err
		}
	}
	// The block index, then the segments it points at.
	blockOff := blockOffsets(pull.Offsets, n, bv, numBlocks, outDeg != nil, pull.Weighted())
	for _, o := range blockOff {
		if err := put64(uint64(o)); err != nil {
			return err
		}
	}
	var pad [8]byte
	for bi := 0; bi < numBlocks; bi++ {
		lo := bi * bv
		hi := lo + bv
		if hi > n {
			hi = n
		}
		rows := pull.Adj[pull.Offsets[lo]:pull.Offsets[hi]]
		for _, v := range rows {
			if err := put32(uint32(v)); err != nil {
				return err
			}
		}
		segBytes := int64(len(rows)) * 4
		if pull.Weighted() {
			for _, f := range pull.Weights[pull.Offsets[lo]:pull.Offsets[hi]] {
				if err := put32(math.Float32bits(f)); err != nil {
					return err
				}
			}
			segBytes *= 2
		}
		if rem := segBytes & 7; rem != 0 {
			if _, err := bw.Write(pad[:8-rem]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteBlockFile writes the block format to path atomically (temp file
// in the same directory + rename), the DiskStore idiom: a crash mid-
// write leaves no torn file behind.
func WriteBlockFile(path string, pull *CSR, outDeg []int64, blockVerts int) error {
	dir, base := splitPath(path)
	tmp, err := os.CreateTemp(dir, "."+base+"-*")
	if err != nil {
		return fmt.Errorf("graph: WriteBlockFile: %w", err)
	}
	if err := WriteBlock(tmp, pull, outDeg, blockVerts); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("graph: WriteBlockFile: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("graph: WriteBlockFile: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("graph: WriteBlockFile: %w", err)
	}
	return nil
}

func splitPath(path string) (dir, base string) {
	for i := len(path) - 1; i >= 0; i-- {
		if os.IsPathSeparator(path[i]) {
			return path[:i+1], path[i+1:]
		}
	}
	return ".", path
}

func roundBlockVerts(bv int) int {
	if bv <= 0 {
		return DefaultBlockVerts
	}
	return (bv + 63) &^ 63
}

// blockOffsets computes the absolute byte offset of every block segment
// (plus the end-of-file sentinel) from the row offsets — the ground
// truth the stored index is validated against at open.
func blockOffsets(offsets []int64, n, bv, numBlocks int, directed, weighted bool) []int64 {
	headBytes := int64(blockHeaderBytes) + int64(n+1)*8 + int64(numBlocks+1)*8
	if directed {
		headBytes += int64(n) * 8
	}
	out := make([]int64, numBlocks+1)
	pos := headBytes
	for bi := 0; bi < numBlocks; bi++ {
		out[bi] = pos
		lo := bi * bv
		hi := lo + bv
		if hi > n {
			hi = n
		}
		segBytes := (offsets[hi] - offsets[lo]) * 4
		if weighted {
			segBytes *= 2
		}
		pos += (segBytes + 7) &^ 7
	}
	out[numBlocks] = pos
	return out
}

// ---- opening ----

// BlockOpt configures OpenBlockCSR.
type BlockOpt func(*blockOpenCfg)

type blockOpenCfg struct {
	buffered bool
}

// Buffered forces the portable ReadAt reader even where mmap is
// available: edge segments are then read into fixed per-cursor buffers,
// so the process's resident set holds at most one block per worker —
// the mode the out-of-core RSS evidence runs in.
func Buffered() BlockOpt { return func(c *blockOpenCfg) { c.buffered = true } }

// OpenBlockCSR opens a block-format file, loading the O(n) vertex state
// into memory and validating the header, the offsets, and the stored
// block index against each other — corruption and truncation fail here,
// loudly, not inside a kernel.
func OpenBlockCSR(path string, opts ...BlockOpt) (*BlockCSR, error) {
	var cfg blockOpenCfg
	for _, o := range opts {
		o(&cfg)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("graph: open block file: %w", err)
	}
	g, err := readBlockHeader(f, path)
	if err != nil {
		f.Close()
		return nil, err
	}
	g.f = f
	if !cfg.buffered {
		fileSize := g.blockOff[g.NumBlocks()]
		if data, merr := mmapFile(f, fileSize); merr == nil {
			g.data = data
		}
		// mmap failure (or an unsupported platform) silently degrades to
		// the buffered reader: same results, bounded buffers.
	}
	return g, nil
}

func readBlockHeader(f *os.File, path string) (*BlockCSR, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("graph: block file %s: %w", path, err)
	}
	fileSize := st.Size()
	br := bufio.NewReaderSize(f, 1<<20)
	var hdr [blockHeaderBytes]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: block file %s: truncated header: %w", path, err)
	}
	magic := binary.LittleEndian.Uint32(hdr[0:])
	version := binary.LittleEndian.Uint32(hdr[4:])
	flags := binary.LittleEndian.Uint32(hdr[8:])
	bv := binary.LittleEndian.Uint32(hdr[12:])
	n := binary.LittleEndian.Uint64(hdr[16:])
	adjCount := binary.LittleEndian.Uint64(hdr[24:])
	numBlocks := binary.LittleEndian.Uint64(hdr[32:])
	if magic != blockMagic {
		return nil, fmt.Errorf("graph: block file %s: bad magic %#x (not a pushpull block file)", path, magic)
	}
	if version != blockVersion {
		return nil, fmt.Errorf("graph: block file %s: version %d, this build reads %d", path, version, blockVersion)
	}
	if flags&^uint32(blockFlagWeighted|blockFlagDirected) != 0 {
		return nil, fmt.Errorf("graph: block file %s: unknown flag bits %#x", path, flags)
	}
	if bv == 0 || bv%64 != 0 {
		return nil, fmt.Errorf("graph: block file %s: block size %d is not a positive multiple of 64", path, bv)
	}
	if n > uint64(math.MaxInt32) {
		return nil, fmt.Errorf("graph: block file %s: vertex count %d exceeds int32", path, n)
	}
	wantBlocks := (n + uint64(bv) - 1) / uint64(bv)
	if numBlocks != wantBlocks {
		return nil, fmt.Errorf("graph: block file %s: %d blocks recorded, %d vertices / %d need %d", path, numBlocks, n, bv, wantBlocks)
	}
	g := &BlockCSR{
		NumV:       int32(n),
		BlockVerts: int32(bv),
		adjCount:   int64(adjCount),
		weighted:   flags&blockFlagWeighted != 0,
		directed:   flags&blockFlagDirected != 0,
	}
	read64s := func(dst []int64, what string) error {
		var b [8]byte
		for i := range dst {
			if _, err := io.ReadFull(br, b[:]); err != nil {
				return fmt.Errorf("graph: block file %s: truncated %s: %w", path, what, err)
			}
			dst[i] = int64(binary.LittleEndian.Uint64(b[:]))
		}
		return nil
	}
	g.Offsets = make([]int64, n+1)
	if err := read64s(g.Offsets, "offsets"); err != nil {
		return nil, err
	}
	if g.Offsets[0] != 0 || g.Offsets[n] != g.adjCount {
		return nil, fmt.Errorf("graph: block file %s: offset endpoints [%d, %d] disagree with arc count %d", path, g.Offsets[0], g.Offsets[n], g.adjCount)
	}
	for i := uint64(0); i < n; i++ {
		if g.Offsets[i] > g.Offsets[i+1] {
			return nil, fmt.Errorf("graph: block file %s: offsets not monotone at vertex %d", path, i)
		}
	}
	if g.directed {
		g.OutDeg = make([]int64, n)
		if err := read64s(g.OutDeg, "out-degrees"); err != nil {
			return nil, err
		}
	}
	g.blockOff = make([]int64, numBlocks+1)
	if err := read64s(g.blockOff, "block index"); err != nil {
		return nil, err
	}
	want := blockOffsets(g.Offsets, int(n), int(bv), int(numBlocks), g.directed, g.weighted)
	for i, o := range g.blockOff {
		if o != want[i] {
			return nil, fmt.Errorf("graph: block file %s: block index entry %d is %d, offsets imply %d (corrupt or truncated file)", path, i, o, want[i])
		}
	}
	if fileSize < g.blockOff[numBlocks] {
		return nil, fmt.Errorf("graph: block file %s: %d bytes on disk, block index needs %d (truncated file)", path, fileSize, g.blockOff[numBlocks])
	}
	return g, nil
}
