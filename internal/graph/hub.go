package graph

import "sort"

// HubSplit implements the hub-cache layout of "A New Frontier for
// Pull-Based Graph Processing": the k vertices read most often by a pull
// sweep (the ones appearing most frequently in the adjacency array) are
// assigned compact slot ids [0, k), and every adjacency row is reordered
// into a hub prefix followed by a residual suffix.
//
// The hub prefix of row v — Adj[Offsets[v] : HubEnd[v]] — stores *slot*
// ids, so a pull kernel reads hub state out of a k-entry contiguous cache
// (one cache-resident array refreshed once per iteration) instead of
// chasing pr[u]/degree[u] through the full n-sized arrays. The residual
// suffix — Adj[HubEnd[v] : Offsets[v+1]] — stores ordinary vertex ids with
// their relative (ascending) order preserved. Offsets is shared with the
// source CSR; HubSplit owns its reordered Adj copy so plain kernels on the
// same CSR are unaffected.
type HubSplit struct {
	K       int
	Hubs    []V       // Hubs[slot] = vertex id; the top-k most-read vertices
	Slot    []int32   // Slot[v] = slot of v, or -1 for non-hubs; len n
	Offsets []int64   // shared with the source CSR (read-only)
	HubEnd  []int64   // per-row split: [Offsets[v], HubEnd[v]) are slot ids
	Adj     []V       // reordered adjacency: slot-id prefix, vertex-id suffix
	Weights []float32 // parallel to Adj; nil for unweighted graphs
}

// BuildHubSplit selects the top-k vertices by occurrence count in g.Adj
// (ties break by ascending id) and builds the split. k is clamped to
// [0, n]; k = 0 yields a split whose rows are entirely residual.
func BuildHubSplit(g *CSR, k int) *HubSplit {
	n := g.N()
	if k > n {
		k = n
	}
	if k < 0 {
		k = 0
	}
	count := make([]int64, n)
	for _, u := range g.Adj {
		count[u]++
	}
	ids := make([]V, n)
	for i := range ids {
		ids[i] = V(i)
	}
	sort.Slice(ids, func(i, j int) bool {
		ci, cj := count[ids[i]], count[ids[j]]
		if ci != cj {
			return ci > cj
		}
		return ids[i] < ids[j]
	})
	hs := &HubSplit{
		K:       k,
		Hubs:    append([]V(nil), ids[:k]...),
		Slot:    make([]int32, n),
		Offsets: g.Offsets,
		HubEnd:  make([]int64, n),
		Adj:     make([]V, len(g.Adj)),
	}
	for i := range hs.Slot {
		hs.Slot[i] = -1
	}
	for s, h := range hs.Hubs {
		hs.Slot[h] = int32(s)
	}
	if g.Weights != nil {
		hs.Weights = make([]float32, len(g.Adj))
	}
	for v := V(0); v < V(n); v++ {
		lo, hi := g.Offsets[v], g.Offsets[v+1]
		p := lo
		for i := lo; i < hi; i++ {
			if s := hs.Slot[g.Adj[i]]; s >= 0 {
				hs.Adj[p] = V(s)
				if hs.Weights != nil {
					hs.Weights[p] = g.Weights[i]
				}
				p++
			}
		}
		hs.HubEnd[v] = p
		for i := lo; i < hi; i++ {
			if hs.Slot[g.Adj[i]] < 0 {
				hs.Adj[p] = g.Adj[i]
				if hs.Weights != nil {
					hs.Weights[p] = g.Weights[i]
				}
				p++
			}
		}
	}
	return hs
}

// HubRow returns v's hub prefix: slot ids into the k-entry cache.
func (h *HubSplit) HubRow(v V) []V { return h.Adj[h.Offsets[v]:h.HubEnd[v]] }

// ResidualRow returns v's residual suffix: ordinary vertex ids, ascending.
func (h *HubSplit) ResidualRow(v V) []V { return h.Adj[h.HubEnd[v]:h.Offsets[v+1]] }

// HubEdges returns the number of adjacency entries served by the cache —
// the fraction of edge traversals the split short-circuits.
func (h *HubSplit) HubEdges() int64 {
	var c int64
	for v := range h.HubEnd {
		c += h.HubEnd[v] - h.Offsets[v]
	}
	return c
}
