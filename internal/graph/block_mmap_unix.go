//go:build unix

package graph

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only. Kernels walk blocks in
// storage order, so the page faults the mapping takes are sequential —
// exactly the access pattern readahead is built for.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size == 0 {
		return []byte{}, nil
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmap(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	return syscall.Munmap(data)
}
