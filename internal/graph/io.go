package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList serializes g as a text edge list: a header line
// "# pushpull n m weighted" followed by one "u v [w]" line per stored
// undirected edge (u ≤ v). The format round-trips through ReadEdgeList.
func WriteEdgeList(w io.Writer, g *CSR) error {
	bw := bufio.NewWriter(w)
	weighted := 0
	if g.Weighted() {
		weighted = 1
	}
	if _, err := fmt.Fprintf(bw, "# pushpull %d %d %d\n", g.N(), g.UndirectedM(), weighted); err != nil {
		return err
	}
	for v := V(0); v < g.NumV; v++ {
		ws := g.NeighborWeights(v)
		for i, u := range g.Neighbors(v) {
			if u < v {
				continue // emit each undirected edge once
			}
			var err error
			if ws != nil {
				_, err = fmt.Fprintf(bw, "%d %d %g\n", v, u, ws[i])
			} else {
				_, err = fmt.Fprintf(bw, "%d %d\n", v, u)
			}
			if err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the format written by WriteEdgeList. Lines starting
// with '#' other than the header are ignored, so plain SNAP-style edge
// lists load too as long as the first line declares the vertex count.
func ReadEdgeList(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("graph: empty input")
	}
	header := strings.Fields(sc.Text())
	if len(header) < 4 || header[0] != "#" || header[1] != "pushpull" {
		return nil, fmt.Errorf("graph: bad header %q", sc.Text())
	}
	n, err := strconv.Atoi(header[2])
	if err != nil {
		return nil, fmt.Errorf("graph: bad vertex count: %v", err)
	}
	b := NewBuilder(n)
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want 'u v [w]', got %q", line, text)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
		if len(fields) >= 3 {
			w, err := strconv.ParseFloat(fields[2], 32)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", line, err)
			}
			b.AddEdgeW(V(u), V(v), float32(w))
		} else {
			b.AddEdge(V(u), V(v))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.Build()
}
