package graph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteEdgeList serializes g as a text edge list: a header line
// "# pushpull n m weighted directed" followed by edge lines "u v [w]".
// For undirected graphs each edge is emitted once (u ≤ v) and m is the
// undirected edge count; for directed graphs every arc is emitted and m
// is the arc count. Directedness is detected from the adjacency itself
// (weight-aware symmetry check), so a directed or asymmetrically-weighted
// graph survives the round trip through ReadEdgeList; callers that know
// the kind can use WriteEdgeListKind and skip the detection.
func WriteEdgeList(w io.Writer, g *CSR) error {
	return WriteEdgeListKind(w, g, !symmetricWithWeights(g))
}

// WriteEdgeListKind is WriteEdgeList with the directedness stated by the
// caller instead of detected. Writing a non-symmetric graph as undirected
// loses the asymmetric arcs; the flag is recorded in the header either
// way so ReadEdgeListKind restores the kind.
func WriteEdgeListKind(w io.Writer, g *CSR, directed bool) error {
	bw := bufio.NewWriter(w)
	weighted := 0
	if g.Weighted() {
		weighted = 1
	}
	dirFlag := 0
	m := g.UndirectedM()
	if directed {
		dirFlag = 1
		m = g.M()
	}
	if _, err := fmt.Fprintf(bw, "# pushpull %d %d %d %d\n", g.N(), m, weighted, dirFlag); err != nil {
		return err
	}
	for v := V(0); v < g.NumV; v++ {
		ws := g.NeighborWeights(v)
		for i, u := range g.Neighbors(v) {
			if !directed && u < v {
				continue // emit each undirected edge once
			}
			var err error
			if ws != nil {
				_, err = fmt.Fprintf(bw, "%d %d %g\n", v, u, ws[i])
			} else {
				_, err = fmt.Fprintf(bw, "%d %d\n", v, u)
			}
			if err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the format written by WriteEdgeList, restoring the
// recorded directedness and weights. Lines starting with '#' other than
// the header are ignored, so plain SNAP-style edge lists load too as long
// as the first line declares the vertex count; headers without the
// directed flag (the pre-kind format) read as undirected.
func ReadEdgeList(r io.Reader) (*CSR, error) {
	g, _, err := ReadEdgeListKind(r)
	return g, err
}

// ReadEdgeListKind is ReadEdgeList, additionally reporting whether the
// header declared the graph directed.
func ReadEdgeListKind(r io.Reader) (*CSR, bool, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, false, fmt.Errorf("graph: empty input")
	}
	header := strings.Fields(sc.Text())
	if len(header) < 4 || header[0] != "#" || header[1] != "pushpull" {
		return nil, false, fmt.Errorf("graph: bad header %q", sc.Text())
	}
	n, err := strconv.Atoi(header[2])
	if err != nil {
		return nil, false, fmt.Errorf("graph: bad vertex count: %v", err)
	}
	directed := len(header) >= 6 && header[5] == "1"
	b := NewBuilder(n)
	if directed {
		b.Directed()
	}
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, false, fmt.Errorf("graph: line %d: want 'u v [w]', got %q", line, text)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, false, fmt.Errorf("graph: line %d: %v", line, err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, false, fmt.Errorf("graph: line %d: %v", line, err)
		}
		if len(fields) >= 3 {
			w, err := strconv.ParseFloat(fields[2], 32)
			if err != nil {
				return nil, false, fmt.Errorf("graph: line %d: %v", line, err)
			}
			b.AddEdgeW(V(u), V(v), float32(w))
		} else {
			b.AddEdge(V(u), V(v))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, false, err
	}
	g, err := b.Build()
	if err != nil {
		return nil, false, err
	}
	return g, directed, nil
}

// symmetricWithWeights reports whether every stored arc has its reverse
// with an equal weight — i.e. whether the CSR is losslessly representable
// as an undirected (weighted) edge list. It strengthens IsSymmetric by
// also comparing weights, because a symmetric adjacency with asymmetric
// weights must still be serialized arc by arc.
func symmetricWithWeights(g *CSR) bool {
	for v := V(0); v < g.NumV; v++ {
		ws := g.NeighborWeights(v)
		for i, u := range g.Neighbors(v) {
			j := arcIndex(g, u, v)
			if j < 0 {
				return false
			}
			if ws != nil && ws[i] != g.Weights[j] {
				return false
			}
		}
	}
	return true
}

// arcIndex returns the position of arc (u, v) in g.Adj, or -1 when the
// arc is absent, via binary search over u's sorted adjacency.
func arcIndex(g *CSR, u, v V) int64 {
	adj := g.Neighbors(u)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	if i < len(adj) && adj[i] == v {
		return g.Offsets[u] + int64(i)
	}
	return -1
}
