package graph

// Round-trip fidelity regressions for the kind-aware edge-list format:
// directedness and weights must survive WriteEdgeList → ReadEdgeList,
// and the pre-kind header (no directed flag) must keep loading as
// undirected.

import (
	"bytes"
	"strings"
	"testing"
)

// sameCSR compares structure and weights exactly.
func sameCSR(t *testing.T, got, want *CSR) {
	t.Helper()
	if got.N() != want.N() || got.M() != want.M() {
		t.Fatalf("shape changed: n %d→%d, m %d→%d", want.N(), got.N(), want.M(), got.M())
	}
	for v := V(0); v < want.NumV; v++ {
		a, b := want.Neighbors(v), got.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("vertex %d: degree %d→%d", v, len(a), len(b))
		}
		wa, wb := want.NeighborWeights(v), got.NeighborWeights(v)
		if (wa == nil) != (wb == nil) {
			t.Fatalf("vertex %d: weights presence changed", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d arc %d: %d→%d", v, i, a[i], b[i])
			}
			if wa != nil && wa[i] != wb[i] {
				t.Fatalf("vertex %d arc %d: weight %g→%g", v, i, wa[i], wb[i])
			}
		}
	}
}

func TestEdgeListDirectedRoundTrip(t *testing.T) {
	b := NewBuilder(5).Directed()
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(3, 1)
	b.AddEdge(1, 4) // 1↔... asymmetric arcs throughout
	g := b.MustBuild()
	if g.IsSymmetric() {
		t.Fatal("fixture unexpectedly symmetric")
	}

	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "# pushpull 5 5 0 1\n") {
		t.Fatalf("header does not record directedness: %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}
	g2, directed, err := ReadEdgeListKind(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !directed {
		t.Fatal("round trip lost directedness")
	}
	sameCSR(t, g2, g)
}

func TestEdgeListDirectedWeightedRoundTrip(t *testing.T) {
	b := NewBuilder(4).Directed()
	b.AddEdgeW(0, 1, 2.5)
	b.AddEdgeW(1, 0, 7) // both arcs present but with different weights
	b.AddEdgeW(2, 3, 1.25)
	g := b.MustBuild()

	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, directed, err := ReadEdgeListKind(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !directed {
		t.Fatal("round trip lost directedness")
	}
	sameCSR(t, g2, g)
}

// TestEdgeListAsymmetricWeightsDetected: a symmetric adjacency whose two
// arc weights differ is NOT representable undirected; detection must fall
// back to arc-by-arc serialization even though IsSymmetric() holds.
func TestEdgeListAsymmetricWeightsDetected(t *testing.T) {
	b := NewBuilder(2).Directed()
	b.AddEdgeW(0, 1, 1)
	b.AddEdgeW(1, 0, 9)
	g := b.MustBuild()
	if !g.IsSymmetric() {
		t.Fatal("fixture adjacency should be symmetric")
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, directed, err := ReadEdgeListKind(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !directed {
		t.Fatal("asymmetric weights serialized as undirected — weight lost")
	}
	sameCSR(t, g2, g)
}

// TestEdgeListUndirectedStaysCompact: a genuinely undirected graph keeps
// the one-line-per-edge format and reads back with directed = false.
func TestEdgeListUndirectedStaysCompact(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdgeW(0, 1, 4)
	b.AddEdgeW(1, 2, 5)
	g := b.MustBuild()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(strings.TrimSpace(buf.String()), "\n") + 1
	if lines != 3 { // header + one line per undirected edge
		t.Fatalf("undirected graph serialized in %d lines, want 3:\n%s", lines, buf.String())
	}
	g2, directed, err := ReadEdgeListKind(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if directed {
		t.Fatal("undirected graph read back directed")
	}
	sameCSR(t, g2, g)
}

// TestEdgeListLegacyHeader: the pre-kind four-field header still loads,
// as an undirected graph.
func TestEdgeListLegacyHeader(t *testing.T) {
	g, directed, err := ReadEdgeListKind(strings.NewReader("# pushpull 3 2 0\n0 1\n1 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if directed {
		t.Fatal("legacy header read as directed")
	}
	if g.UndirectedM() != 2 || !g.IsSymmetric() {
		t.Fatalf("legacy graph misparsed: m=%d", g.UndirectedM())
	}
}

func TestWriteEdgeListKindExplicit(t *testing.T) {
	// An undirected (symmetric) graph may still be pinned directed by the
	// caller: every arc is emitted and the flag recorded.
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	g := b.MustBuild()
	var buf bytes.Buffer
	if err := WriteEdgeListKind(&buf, g, true); err != nil {
		t.Fatal(err)
	}
	g2, directed, err := ReadEdgeListKind(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !directed {
		t.Fatal("explicit directed flag not recorded")
	}
	sameCSR(t, g2, g) // both arcs were written, so the CSR matches
}
