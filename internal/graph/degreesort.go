package graph

import "sort"

// DegreeSorted is a CSR relabeled so that vertex ids are assigned in
// descending degree order: the heaviest row becomes vertex 0. High-degree
// (hub) vertices end up contiguous at the front of every state array, which
// is what lets a hub cache be a dense prefix instead of a scattered set —
// the layout "A New Frontier for Pull-Based Graph Processing" relies on.
//
// Perm maps new ids to old (Perm[new] = old) and Inv maps old to new
// (Inv[old] = new); they are inverse bijections. Kernels run on G and the
// caller un-permutes results at the boundary, so payloads match unsorted
// runs.
type DegreeSorted struct {
	G    *CSR
	Perm []V // Perm[new] = old
	Inv  []V // Inv[old] = new
}

// DegreePerm computes the degree-descending relabeling of g. Ties break by
// ascending original id so the permutation is deterministic.
func DegreePerm(g *CSR) (perm, inv []V) {
	n := g.N()
	perm = make([]V, n)
	for i := range perm {
		perm[i] = V(i)
	}
	sort.Slice(perm, func(i, j int) bool {
		di, dj := g.Degree(perm[i]), g.Degree(perm[j])
		if di != dj {
			return di > dj
		}
		return perm[i] < perm[j]
	})
	inv = make([]V, n)
	for newID, old := range perm {
		inv[old] = V(newID)
	}
	return perm, inv
}

// PermuteCSR relabels g under the given bijection: vertex old becomes
// inv[old], and row new reproduces old = perm[new]'s adjacency with every
// endpoint remapped. Rows are re-sorted ascending (weights carried along)
// so the result satisfies the CSR invariants, including HasEdge's binary
// search.
func PermuteCSR(g *CSR, perm, inv []V) *CSR {
	n := g.NumV
	out := &CSR{NumV: n, Offsets: make([]int64, n+1), Adj: make([]V, g.M())}
	if g.Weights != nil {
		out.Weights = make([]float32, g.M())
	}
	for newV := V(0); newV < n; newV++ {
		out.Offsets[newV+1] = out.Offsets[newV] + g.Degree(perm[newV])
	}
	for newV := V(0); newV < n; newV++ {
		old := perm[newV]
		row := out.Adj[out.Offsets[newV]:out.Offsets[newV+1]]
		for i, w := range g.Neighbors(old) {
			row[i] = inv[w]
		}
		if g.Weights == nil {
			sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
			continue
		}
		wrow := out.Weights[out.Offsets[newV]:out.Offsets[newV+1]]
		copy(wrow, g.NeighborWeights(old))
		sort.Sort(&arcRow{adj: row, wts: wrow})
	}
	return out
}

// SortByDegree builds the degree-sorted view of g.
func SortByDegree(g *CSR) *DegreeSorted {
	perm, inv := DegreePerm(g)
	return &DegreeSorted{G: PermuteCSR(g, perm, inv), Perm: perm, Inv: inv}
}

// arcRow co-sorts one adjacency row with its parallel weights.
type arcRow struct {
	adj []V
	wts []float32
}

func (r *arcRow) Len() int           { return len(r.adj) }
func (r *arcRow) Less(i, j int) bool { return r.adj[i] < r.adj[j] }
func (r *arcRow) Swap(i, j int) {
	r.adj[i], r.adj[j] = r.adj[j], r.adj[i]
	r.wts[i], r.wts[j] = r.wts[j], r.wts[i]
}
