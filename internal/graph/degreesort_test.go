package graph

import (
	"testing"

	"pushpull/internal/rng"
)

// randomCSR builds a deterministic pseudo-random graph via the Builder so
// permutation tests exercise non-trivial degree distributions without
// importing the generator package (which would cycle).
func randomCSR(t *testing.T, n, edges int, weighted, directed bool, seed uint64) *CSR {
	t.Helper()
	b := NewBuilder(n)
	if directed {
		b.Directed()
	}
	r := rng.New(seed)
	for i := 0; i < edges; i++ {
		u := V(r.Intn(n))
		v := V(r.Intn(n))
		if weighted {
			b.AddEdgeW(u, v, float32(r.Intn(9)+1))
		} else {
			b.AddEdge(u, v)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDegreePermIsBijection(t *testing.T) {
	g := randomCSR(t, 200, 900, false, false, 1)
	perm, inv := DegreePerm(g)
	if len(perm) != g.N() || len(inv) != g.N() {
		t.Fatalf("perm/inv lengths %d/%d, want %d", len(perm), len(inv), g.N())
	}
	for newID, old := range perm {
		if inv[old] != V(newID) {
			t.Fatalf("inv[perm[%d]] = %d, not an inverse", newID, inv[old])
		}
	}
	// Degrees are non-increasing in the new id order.
	for i := 1; i < len(perm); i++ {
		if g.Degree(perm[i-1]) < g.Degree(perm[i]) {
			t.Fatalf("degree order broken at %d: %d < %d", i, g.Degree(perm[i-1]), g.Degree(perm[i]))
		}
	}
	// Ties break by ascending original id, so the permutation is deterministic.
	for i := 1; i < len(perm); i++ {
		if g.Degree(perm[i-1]) == g.Degree(perm[i]) && perm[i-1] >= perm[i] {
			t.Fatalf("tie order broken at %d: %d before %d", i, perm[i-1], perm[i])
		}
	}
}

func TestSortByDegreePreservesEdges(t *testing.T) {
	for _, tc := range []struct {
		name               string
		weighted, directed bool
	}{
		{"undirected", false, false},
		{"weighted", true, false},
		{"directed", false, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := randomCSR(t, 120, 700, tc.weighted, tc.directed, 7)
			ds := SortByDegree(g)
			if err := ds.G.Validate(); err != nil {
				t.Fatalf("permuted CSR invalid: %v", err)
			}
			if ds.G.M() != g.M() {
				t.Fatalf("edge count changed: %d -> %d", g.M(), ds.G.M())
			}
			// Every original arc appears, relabeled, with its weight.
			for u := V(0); u < g.NumV; u++ {
				ws := g.NeighborWeights(u)
				for i, v := range g.Neighbors(u) {
					nu, nv := ds.Inv[u], ds.Inv[v]
					if !ds.G.HasEdge(nu, nv) {
						t.Fatalf("arc (%d,%d) missing as (%d,%d)", u, v, nu, nv)
					}
					if ws != nil {
						if got := weightOf(t, ds.G, nu, nv); got != ws[i] {
							t.Fatalf("weight of (%d,%d) = %v, want %v", nu, nv, got, ws[i])
						}
					}
				}
			}
		})
	}
}

func weightOf(t *testing.T, g *CSR, u, v V) float32 {
	t.Helper()
	ws := g.NeighborWeights(u)
	for i, w := range g.Neighbors(u) {
		if w == v {
			return ws[i]
		}
	}
	t.Fatalf("edge (%d,%d) not found", u, v)
	return 0
}

func TestSortByDegreeHeaviestFirst(t *testing.T) {
	// Star: the center has degree n-1, so it must become vertex 0.
	b := NewBuilder(6)
	for v := V(1); v < 6; v++ {
		b.AddEdge(0, v)
	}
	g := b.MustBuild()
	ds := SortByDegree(g)
	if ds.Perm[0] != 0 || ds.Inv[0] != 0 {
		t.Fatalf("star center not relabeled to 0: perm[0]=%d inv[0]=%d", ds.Perm[0], ds.Inv[0])
	}
	if ds.G.Degree(0) != 5 {
		t.Fatalf("vertex 0 degree = %d, want 5", ds.G.Degree(0))
	}
}
