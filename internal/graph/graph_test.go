package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"pushpull/internal/rng"
)

// triangleGraph builds the 5-vertex fixture:
//
//	0—1, 0—2, 1—2 (triangle), 2—3, 3—4 (tail)
func triangleGraph(t *testing.T) *CSR {
	t.Helper()
	b := NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuilderBasics(t *testing.T) {
	g := triangleGraph(t)
	if g.N() != 5 {
		t.Fatalf("N = %d", g.N())
	}
	if g.M() != 10 { // 5 undirected edges → 10 slots
		t.Fatalf("M = %d", g.M())
	}
	if g.UndirectedM() != 5 {
		t.Fatalf("UndirectedM = %d", g.UndirectedM())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.IsSymmetric() {
		t.Fatal("undirected graph not symmetric")
	}
	if d := g.Degree(2); d != 3 {
		t.Fatalf("deg(2) = %d", d)
	}
	if got := g.Neighbors(2); len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 3 {
		t.Fatalf("N(2) = %v", got)
	}
	if !g.HasEdge(0, 1) || g.HasEdge(0, 4) || !g.HasEdge(4, 3) {
		t.Fatal("HasEdge wrong")
	}
	if g.MaxDegree() != 3 {
		t.Fatalf("MaxDegree = %d", g.MaxDegree())
	}
	if g.AvgDegree() != 1.0 { // 10 slots / 5 vertices / 2
		t.Fatalf("AvgDegree = %v", g.AvgDegree())
	}
}

func TestBuilderDedupAndLoops(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate in reverse
	b.AddEdge(0, 1) // duplicate
	b.AddEdge(2, 2) // self-loop, dropped
	g := b.MustBuild()
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2 (dedup + loop removal)", g.M())
	}

	b2 := NewBuilder(3).KeepDuplicates().KeepSelfLoops()
	b2.AddEdge(0, 1)
	b2.AddEdge(0, 1)
	b2.AddEdge(2, 2)
	g2 := b2.MustBuild()
	// 2×(0,1) both directions = 4 slots, self loop stored twice = 2 slots.
	if g2.M() != 6 {
		t.Fatalf("M = %d, want 6", g2.M())
	}
}

func TestBuilderDirected(t *testing.T) {
	b := NewBuilder(3).Directed()
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.MustBuild()
	if g.M() != 2 {
		t.Fatalf("M = %d", g.M())
	}
	if g.IsSymmetric() {
		t.Fatal("directed chain reported symmetric")
	}
}

func TestBuilderWeights(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdgeW(0, 1, 2.5)
	b.AddEdgeW(1, 2, 0) // zero weight normalizes to 1
	g := b.MustBuild()
	if !g.Weighted() {
		t.Fatal("not weighted")
	}
	ws := g.NeighborWeights(1)
	ns := g.Neighbors(1)
	for i, u := range ns {
		switch u {
		case 0:
			if ws[i] != 2.5 {
				t.Fatalf("w(1,0) = %v", ws[i])
			}
		case 2:
			if ws[i] != 1 {
				t.Fatalf("w(1,2) = %v", ws[i])
			}
		}
	}
	if g2 := triangleGraph(t); g2.NeighborWeights(0) != nil {
		t.Fatal("unweighted graph returned weights")
	}
}

func TestBuilderRangeError(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 5)
	if _, err := b.Build(); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if b.NumEdgesAdded() != 1 {
		t.Fatalf("NumEdgesAdded = %d", b.NumEdgesAdded())
	}
}

func TestTranspose(t *testing.T) {
	b := NewBuilder(4).Directed()
	b.AddEdgeW(0, 1, 5)
	b.AddEdgeW(0, 2, 6)
	b.AddEdgeW(3, 1, 7)
	g := b.MustBuild()
	tr := g.Transpose()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if !tr.HasEdge(1, 0) || !tr.HasEdge(2, 0) || !tr.HasEdge(1, 3) {
		t.Fatal("transpose edges wrong")
	}
	if tr.M() != g.M() {
		t.Fatalf("transpose M = %d", tr.M())
	}
	// Weight carried over: arc (0,1,5) becomes (1,0,5).
	ns, ws := tr.Neighbors(1), tr.NeighborWeights(1)
	for i, u := range ns {
		if u == 0 && ws[i] != 5 {
			t.Fatalf("transposed weight = %v", ws[i])
		}
	}
	// Transposing twice returns the original arc set.
	trtr := tr.Transpose()
	for v := V(0); v < g.NumV; v++ {
		got, want := trtr.Neighbors(v), g.Neighbors(v)
		if len(got) != len(want) {
			t.Fatalf("double transpose degree mismatch at %d", v)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("double transpose adjacency mismatch at %d", v)
			}
		}
	}
}

func TestPartitionOwnerRange(t *testing.T) {
	p := NewPartition(10, 3)
	seen := map[int]int{}
	for v := V(0); v < 10; v++ {
		seen[p.Owner(v)]++
	}
	if len(seen) != 3 {
		t.Fatalf("owners = %v", seen)
	}
	total := 0
	for w := 0; w < 3; w++ {
		lo, hi := p.Range(w)
		for v := lo; v < hi; v++ {
			if p.Owner(v) != w {
				t.Fatalf("Owner(%d) = %d, want %d", v, p.Owner(v), w)
			}
		}
		total += int(hi - lo)
	}
	if total != 10 {
		t.Fatalf("ranges cover %d vertices", total)
	}
}

func TestBorder(t *testing.T) {
	g := triangleGraph(t)
	// Partition into {0,1,2} and {3,4}: border vertices are 2 and 3.
	p := NewPartition(5, 2)
	lo, hi := p.Range(0)
	if lo != 0 || hi != 3 {
		t.Fatalf("partition range = [%d,%d)", lo, hi)
	}
	border := p.Border(g)
	if len(border) != 2 || border[0] != 2 || border[1] != 3 {
		t.Fatalf("border = %v", border)
	}
	// Single partition: no border.
	if b := NewPartition(5, 1).Border(g); len(b) != 0 {
		t.Fatalf("border with P=1 = %v", b)
	}
}

func TestBuildPASplitsCorrectly(t *testing.T) {
	g := triangleGraph(t)
	part := NewPartition(5, 2) // {0,1,2} | {3,4}
	pa := BuildPA(g, part)
	// Vertex 2 (owner 0): local {0,1}, remote {3}.
	if got := pa.Local(2); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("Local(2) = %v", got)
	}
	if got := pa.Remote(2); len(got) != 1 || got[0] != 3 {
		t.Fatalf("Remote(2) = %v", got)
	}
	// Vertex 4 (owner 1): local {3}, remote {}.
	if got := pa.Local(4); len(got) != 1 || got[0] != 3 {
		t.Fatalf("Local(4) = %v", got)
	}
	if got := pa.Remote(4); len(got) != 0 {
		t.Fatalf("Remote(4) = %v", got)
	}
	if pa.LocalDegree(2) != 2 || pa.RemoteDegree(2) != 1 {
		t.Fatal("PA degrees wrong")
	}
	// Remote edges counted from both sides: (2,3) and (3,2) → 2 slots.
	if pa.RemoteEdges() != 2 {
		t.Fatalf("RemoteEdges = %d", pa.RemoteEdges())
	}
	// 2n + 2m cells.
	if pa.Cells() != 2*5+10 {
		t.Fatalf("Cells = %d", pa.Cells())
	}
}

// Property: the PA split is a partition of each adjacency list — local and
// remote together hold exactly the CSR neighbors, and ownership is honored.
func TestPAIsPartitionOfAdjacency(t *testing.T) {
	f := func(seed uint64, nRaw, pRaw uint8) bool {
		n := int(nRaw%40) + 2
		p := int(pRaw%6) + 1
		r := rng.New(seed)
		b := NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(V(r.Intn(n)), V(r.Intn(n)))
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		part := NewPartition(n, p)
		pa := BuildPA(g, part)
		for v := V(0); v < g.NumV; v++ {
			ov := part.Owner(v)
			merged := map[V]int{}
			for _, u := range pa.Local(v) {
				if part.Owner(u) != ov {
					return false
				}
				merged[u]++
			}
			for _, u := range pa.Remote(v) {
				if part.Owner(u) == ov {
					return false
				}
				merged[u]++
			}
			orig := map[V]int{}
			for _, u := range g.Neighbors(v) {
				orig[u]++
			}
			if len(merged) != len(orig) {
				return false
			}
			for k, c := range orig {
				if merged[k] != c {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestComputeStats(t *testing.T) {
	g := triangleGraph(t)
	s := ComputeStats(g)
	if s.N != 5 || s.M != 5 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Components != 1 {
		t.Fatalf("components = %d", s.Components)
	}
	// Diameter of the fixture: 0..4 is 0-2-3-4 → 3.
	if s.Diameter != 3 {
		t.Fatalf("diameter = %d", s.Diameter)
	}
	if s.MaxDeg != 3 {
		t.Fatalf("maxdeg = %d", s.MaxDeg)
	}
	if !strings.Contains(s.String(), "n=5") {
		t.Fatalf("String = %q", s.String())
	}
}

func TestComputeStatsDisconnected(t *testing.T) {
	b := NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	// vertex 5 isolated
	g := b.MustBuild()
	s := ComputeStats(g)
	if s.Components != 3 {
		t.Fatalf("components = %d, want 3", s.Components)
	}
	// Largest component is {2,3,4} with diameter 2.
	if s.Diameter != 2 {
		t.Fatalf("diameter = %d, want 2", s.Diameter)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	g := NewBuilder(0).MustBuild()
	s := ComputeStats(g)
	if s.N != 0 || s.Components != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdgeW(0, 1, 2)
	b.AddEdgeW(1, 2, 3.5)
	b.AddEdgeW(0, 3, 1)
	g := b.MustBuild()

	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("round trip: n=%d m=%d", g2.N(), g2.M())
	}
	for v := V(0); v < g.NumV; v++ {
		a, b := g.Neighbors(v), g2.Neighbors(v)
		wa, wb := g.NeighborWeights(v), g2.NeighborWeights(v)
		if len(a) != len(b) {
			t.Fatalf("degree mismatch at %d", v)
		}
		for i := range a {
			if a[i] != b[i] || wa[i] != wb[i] {
				t.Fatalf("adjacency mismatch at %d", v)
			}
		}
	}
}

func TestEdgeListUnweightedRoundTrip(t *testing.T) {
	g := triangleGraph(t)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Weighted() {
		t.Fatal("unweighted graph gained weights")
	}
	if g2.M() != g.M() {
		t.Fatalf("M = %d, want %d", g2.M(), g.M())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"",
		"bogus header\n",
		"# pushpull x 1 0\n",
		"# pushpull 3 1 0\n0\n",
		"# pushpull 3 1 0\na b\n",
		"# pushpull 3 1 0\n0 1 zz\n",
		"# pushpull 2 1 0\n0 9\n", // out of range
	}
	for i, c := range cases {
		if _, err := ReadEdgeList(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: error expected", i)
		}
	}
	// Comments and blank lines are tolerated.
	ok := "# pushpull 3 2 0\n# comment\n\n0 1\n1 2\n"
	g, err := ReadEdgeList(strings.NewReader(ok))
	if err != nil {
		t.Fatal(err)
	}
	if g.UndirectedM() != 2 {
		t.Fatalf("m = %d", g.UndirectedM())
	}
}

// Property: Build always yields a structurally valid, symmetric CSR for
// random undirected input.
func TestBuildAlwaysValid(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		r := rng.New(seed)
		b := NewBuilder(n)
		for i := 0; i < 4*n; i++ {
			b.AddEdge(V(r.Intn(n)), V(r.Intn(n)))
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		return g.Validate() == nil && g.IsSymmetric()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuild(b *testing.B) {
	r := rng.New(1)
	const n = 1 << 12
	edges := make([]Edge, 8*n)
	for i := range edges {
		edges[i] = Edge{U: V(r.Intn(n)), V: V(r.Intn(n))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bl := NewBuilder(n)
		for _, e := range edges {
			bl.AddEdge(e.U, e.V)
		}
		if _, err := bl.Build(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHasEdge(b *testing.B) {
	r := rng.New(2)
	const n = 1 << 12
	bl := NewBuilder(n)
	for i := 0; i < 8*n; i++ {
		bl.AddEdge(V(r.Intn(n)), V(r.Intn(n)))
	}
	g := bl.MustBuild()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.HasEdge(V(i&(n-1)), V((i*7)&(n-1)))
	}
}
