package graph

import (
	"sort"
	"testing"
)

func TestBuildHubSplitSelectsTopK(t *testing.T) {
	// Star over 8 vertices: the center appears in every leaf's row, so it is
	// the unique most-read vertex.
	b := NewBuilder(8)
	for v := V(1); v < 8; v++ {
		b.AddEdge(0, v)
	}
	g := b.MustBuild()
	hs := BuildHubSplit(g, 1)
	if hs.K != 1 || len(hs.Hubs) != 1 || hs.Hubs[0] != 0 {
		t.Fatalf("hubs = %v, want [0]", hs.Hubs)
	}
	if hs.Slot[0] != 0 {
		t.Fatalf("Slot[0] = %d", hs.Slot[0])
	}
	for v := V(1); v < 8; v++ {
		if hs.Slot[v] != -1 {
			t.Fatalf("Slot[%d] = %d, want -1", v, hs.Slot[v])
		}
	}
	// Every leaf row is a one-entry hub prefix (slot 0), empty residual.
	for v := V(1); v < 8; v++ {
		hub, res := hs.HubRow(v), hs.ResidualRow(v)
		if len(hub) != 1 || hub[0] != 0 || len(res) != 0 {
			t.Fatalf("leaf %d: hub=%v res=%v", v, hub, res)
		}
	}
	// The center's row is all residual: leaves are not hubs.
	if len(hs.HubRow(0)) != 0 || len(hs.ResidualRow(0)) != 7 {
		t.Fatalf("center row: hub=%v res=%v", hs.HubRow(0), hs.ResidualRow(0))
	}
	if hs.HubEdges() != 7 {
		t.Fatalf("HubEdges = %d, want 7", hs.HubEdges())
	}
}

// Property: per row, mapping hub slots back through Hubs and appending the
// residual yields exactly the original neighbor multiset, with residuals
// still ascending.
func TestHubSplitRowsPartitionAdjacency(t *testing.T) {
	g := randomCSR(t, 150, 900, false, false, 11)
	for _, k := range []int{0, 1, 8, 150, 1000, -3} {
		hs := BuildHubSplit(g, k)
		wantK := k
		if wantK > g.N() {
			wantK = g.N()
		}
		if wantK < 0 {
			wantK = 0
		}
		if hs.K != wantK {
			t.Fatalf("k=%d: K = %d, want %d", k, hs.K, wantK)
		}
		for v := V(0); v < g.NumV; v++ {
			var got []V
			for _, s := range hs.HubRow(v) {
				if int(s) >= hs.K {
					t.Fatalf("k=%d v=%d: slot %d out of range", k, v, s)
				}
				got = append(got, hs.Hubs[s])
			}
			res := hs.ResidualRow(v)
			for i, u := range res {
				if hs.Slot[u] != -1 {
					t.Fatalf("k=%d v=%d: hub %d in residual", k, v, u)
				}
				if i > 0 && res[i-1] > u {
					t.Fatalf("k=%d v=%d: residual not sorted", k, v)
				}
				got = append(got, u)
			}
			want := append([]V(nil), g.Neighbors(v)...)
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			if len(got) != len(want) {
				t.Fatalf("k=%d v=%d: row size %d, want %d", k, v, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("k=%d v=%d: row %v, want %v", k, v, got, want)
				}
			}
		}
	}
}

func TestHubSplitCarriesWeights(t *testing.T) {
	g := randomCSR(t, 60, 300, true, false, 5)
	hs := BuildHubSplit(g, 4)
	if hs.Weights == nil {
		t.Fatal("weights dropped")
	}
	for v := V(0); v < g.NumV; v++ {
		lo := g.Offsets[v]
		hub := hs.HubRow(v)
		for i, s := range hub {
			u := hs.Hubs[s]
			if want := weightOf(t, g, v, u); hs.Weights[lo+int64(i)] != want {
				t.Fatalf("hub weight (%d->%d) = %v, want %v", v, u, hs.Weights[lo+int64(i)], want)
			}
		}
		base := hs.HubEnd[v]
		for i, u := range hs.ResidualRow(v) {
			if want := weightOf(t, g, v, u); hs.Weights[base+int64(i)] != want {
				t.Fatalf("residual weight (%d->%d) = %v, want %v", v, u, hs.Weights[base+int64(i)], want)
			}
		}
	}
}

// Degree-sorting first makes the hub set exactly the id prefix [0, k) on
// graphs whose read frequency equals degree (undirected CSRs) — when the
// two options compose, slots and vertex ids coincide.
func TestHubSplitOnDegreeSortedPrefix(t *testing.T) {
	g := randomCSR(t, 100, 600, false, false, 3)
	ds := SortByDegree(g)
	const k = 10
	hs := BuildHubSplit(ds.G, k)
	for s, h := range hs.Hubs {
		if h != V(s) {
			t.Fatalf("hub slot %d is vertex %d; degree-sorted hubs should be the prefix", s, h)
		}
	}
}
