package graph

// PAGraph is the Partition-Aware representation of §5: each vertex's
// adjacency array is split into a *local* part (neighbors owned by the same
// thread as v) and a *remote* part (neighbors owned by other threads). The
// two parts live in separate contiguous arrays with their own offsets, so
// the representation grows from n + 2m to 2n + 2m cells — the price for
// being able to update local neighbors with plain stores and only remote
// neighbors with atomics (Algorithm 8).
type PAGraph struct {
	G    *CSR // the original graph (weights, degrees)
	Part Partition

	LocOff []int64 // len n+1
	LocAdj []V
	RemOff []int64 // len n+1
	RemAdj []V
}

// BuildPA splits g's adjacency arrays under the given partition.
func BuildPA(g *CSR, part Partition) *PAGraph {
	n := g.NumV
	pa := &PAGraph{
		G:      g,
		Part:   part,
		LocOff: make([]int64, n+1),
		RemOff: make([]int64, n+1),
	}
	// First pass: count local/remote per vertex.
	for v := V(0); v < n; v++ {
		ov := part.Owner(v)
		var loc, rem int64
		for _, u := range g.Neighbors(v) {
			if part.Owner(u) == ov {
				loc++
			} else {
				rem++
			}
		}
		pa.LocOff[v+1] = pa.LocOff[v] + loc
		pa.RemOff[v+1] = pa.RemOff[v] + rem
	}
	pa.LocAdj = make([]V, pa.LocOff[n])
	pa.RemAdj = make([]V, pa.RemOff[n])
	lc := make([]int64, n)
	rc := make([]int64, n)
	copy(lc, pa.LocOff[:n])
	copy(rc, pa.RemOff[:n])
	for v := V(0); v < n; v++ {
		ov := part.Owner(v)
		for _, u := range g.Neighbors(v) {
			if part.Owner(u) == ov {
				pa.LocAdj[lc[v]] = u
				lc[v]++
			} else {
				pa.RemAdj[rc[v]] = u
				rc[v]++
			}
		}
	}
	return pa
}

// Local returns the same-owner neighbors of v.
func (pa *PAGraph) Local(v V) []V { return pa.LocAdj[pa.LocOff[v]:pa.LocOff[v+1]] }

// Remote returns the other-owner neighbors of v.
func (pa *PAGraph) Remote(v V) []V { return pa.RemAdj[pa.RemOff[v]:pa.RemOff[v+1]] }

// LocalDegree returns the number of same-owner neighbors of v.
func (pa *PAGraph) LocalDegree(v V) int64 { return pa.LocOff[v+1] - pa.LocOff[v] }

// RemoteDegree returns the number of other-owner neighbors of v.
func (pa *PAGraph) RemoteDegree(v V) int64 { return pa.RemOff[v+1] - pa.RemOff[v] }

// RemoteEdges returns the total number of remote adjacency slots — the
// exact number of atomics a PA push iteration issues (§5 bounds it by 0 for
// a bipartite split and 2m when every edge is thread-internal).
func (pa *PAGraph) RemoteEdges() int64 { return pa.RemOff[pa.G.NumV] }

// Cells returns the number of representation cells (2n + 2m as in §5).
func (pa *PAGraph) Cells() int64 {
	return 2*int64(pa.G.NumV) + int64(len(pa.LocAdj)) + int64(len(pa.RemAdj))
}
