package graph

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pushpull/internal/rng"
)

// writeBlockFile serializes pull to a temp file and returns its path.
func writeBlockFile(t testing.TB, pull *CSR, outDeg []int64, blockVerts int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.blk")
	if err := WriteBlockFile(path, pull, outDeg, blockVerts); err != nil {
		t.Fatal(err)
	}
	return path
}

// checkBlockMatchesCSR compares every row (and weight row) of bg against
// the pull-view CSR it was written from, via per-block cursors.
func checkBlockMatchesCSR(t *testing.T, bg *BlockCSR, pull *CSR) {
	t.Helper()
	if bg.N() != pull.N() || bg.M() != pull.M() {
		t.Fatalf("shape: block %d/%d, csr %d/%d", bg.N(), bg.M(), pull.N(), pull.M())
	}
	var cur BlockCursor
	for bi := 0; bi < bg.NumBlocks(); bi++ {
		if err := bg.Load(bi, &cur); err != nil {
			t.Fatal(err)
		}
		lo, hi := bg.BlockRange(bi)
		for v := lo; v < hi; v++ {
			want := pull.Neighbors(v)
			got := cur.Row(v)
			if len(got) != len(want) {
				t.Fatalf("vertex %d: row length %d, want %d", v, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("vertex %d edge %d: %d, want %d", v, i, got[i], want[i])
				}
			}
			if pull.Weighted() {
				ww := pull.Weights[pull.Offsets[v]:pull.Offsets[v+1]]
				gw := cur.RowWeights(v)
				if len(gw) != len(ww) {
					t.Fatalf("vertex %d: weight length %d, want %d", v, len(gw), len(ww))
				}
				for i := range ww {
					if gw[i] != ww[i] {
						t.Fatalf("vertex %d weight %d: %g, want %g", v, i, gw[i], ww[i])
					}
				}
			} else if cur.RowWeights(v) != nil {
				t.Fatalf("vertex %d: weights on an unweighted file", v)
			}
		}
	}
}

func TestBlockRoundTripUndirected(t *testing.T) {
	g := randomCSR(t, 700, 4200, false, false, 3)
	path := writeBlockFile(t, g, nil, 64)
	for _, tc := range []struct {
		name string
		opts []BlockOpt
	}{
		{"default", nil},
		{"buffered", []BlockOpt{Buffered()}},
	} {
		bg, err := OpenBlockCSR(path, tc.opts...)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(tc.opts) > 0 && bg.Mmapped() {
			t.Fatalf("%s: Buffered() still mmapped", tc.name)
		}
		if bg.Directed() || bg.Weighted() {
			t.Fatalf("%s: flags directed=%v weighted=%v", tc.name, bg.Directed(), bg.Weighted())
		}
		if bg.BlockVerts != 64 || bg.NumBlocks() != (g.N()+63)/64 {
			t.Fatalf("%s: blockVerts=%d numBlocks=%d", tc.name, bg.BlockVerts, bg.NumBlocks())
		}
		checkBlockMatchesCSR(t, bg, g)
		// Undirected: contribution degree is the plain degree.
		for v := V(0); v < bg.NumV; v++ {
			if bg.ContribDegree(v) != bg.Degree(v) {
				t.Fatalf("%s: vertex %d contrib %d != degree %d", tc.name, v, bg.ContribDegree(v), bg.Degree(v))
			}
		}
		if err := bg.Close(); err != nil {
			t.Fatalf("%s: close: %v", tc.name, err)
		}
	}
}

func TestBlockRoundTripDirectedWeighted(t *testing.T) {
	// A directed file stores the pull view (the transpose) plus the
	// out-degree sidecar of the forward graph.
	r := rng.New(9)
	const n = 300
	fwd := NewBuilder(n).Directed().KeepDuplicates()
	rev := NewBuilder(n).Directed().KeepDuplicates()
	for i := 0; i < 2000; i++ {
		u := V(r.Uint64() % n)
		v := V(r.Uint64() % n)
		w := float32(i%17) + 0.5
		fwd.AddEdgeW(u, v, w)
		rev.AddEdgeW(v, u, w)
	}
	g, err := fwd.Build()
	if err != nil {
		t.Fatal(err)
	}
	pull, err := rev.Build()
	if err != nil {
		t.Fatal(err)
	}
	outDeg := make([]int64, n)
	for v := V(0); v < n; v++ {
		outDeg[v] = int64(len(g.Neighbors(v)))
	}
	path := writeBlockFile(t, pull, outDeg, 64)
	bg, err := OpenBlockCSR(path)
	if err != nil {
		t.Fatal(err)
	}
	defer bg.Close()
	if !bg.Directed() || !bg.Weighted() {
		t.Fatalf("flags directed=%v weighted=%v", bg.Directed(), bg.Weighted())
	}
	checkBlockMatchesCSR(t, bg, pull)
	for v := V(0); v < n; v++ {
		if bg.ContribDegree(v) != outDeg[v] {
			t.Fatalf("vertex %d: contrib %d, out-degree %d", v, bg.ContribDegree(v), outDeg[v])
		}
	}
}

func TestBlockOutDegLengthMismatch(t *testing.T) {
	g := randomCSR(t, 64, 200, false, false, 5)
	if err := WriteBlock(&bytes.Buffer{}, g, make([]int64, 10), 64); err == nil {
		t.Fatal("short outDeg accepted")
	}
}

func TestBlockVertsRounding(t *testing.T) {
	g := randomCSR(t, 500, 2500, false, false, 7)
	// 100 rounds up to the next multiple of 64; <=0 selects the default.
	bg, err := OpenBlockCSR(writeBlockFile(t, g, nil, 100))
	if err != nil {
		t.Fatal(err)
	}
	if bg.BlockVerts != 128 {
		t.Fatalf("blockVerts = %d, want 128", bg.BlockVerts)
	}
	bg.Close()
	bg, err = OpenBlockCSR(writeBlockFile(t, g, nil, 0))
	if err != nil {
		t.Fatal(err)
	}
	if bg.BlockVerts != DefaultBlockVerts {
		t.Fatalf("blockVerts = %d, want default %d", bg.BlockVerts, DefaultBlockVerts)
	}
	bg.Close()
}

func TestBlockVisitBlocksStreamsAllArcs(t *testing.T) {
	g := randomCSR(t, 400, 3000, true, false, 11)
	bg, err := OpenBlockCSR(writeBlockFile(t, g, nil, 64), Buffered())
	if err != nil {
		t.Fatal(err)
	}
	defer bg.Close()
	var adj []V
	var ws []float32
	if err := bg.VisitBlocks(func(a []V, w []float32) error {
		adj = append(adj, a...)
		ws = append(ws, w...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if int64(len(adj)) != g.M() || int64(len(ws)) != g.M() {
		t.Fatalf("streamed %d arcs / %d weights, want %d", len(adj), len(ws), g.M())
	}
	for i, v := range g.Adj {
		if adj[i] != v || ws[i] != g.Weights[i] {
			t.Fatalf("arc %d: (%d, %g), want (%d, %g)", i, adj[i], ws[i], v, g.Weights[i])
		}
	}
}

func TestBlockEmptyGraph(t *testing.T) {
	g, err := NewBuilder(0).Build()
	if err != nil {
		t.Fatal(err)
	}
	bg, err := OpenBlockCSR(writeBlockFile(t, g, nil, 64))
	if err != nil {
		t.Fatal(err)
	}
	defer bg.Close()
	if bg.N() != 0 || bg.M() != 0 || bg.NumBlocks() != 0 {
		t.Fatalf("empty graph opened as n=%d m=%d blocks=%d", bg.N(), bg.M(), bg.NumBlocks())
	}
}

// Corruption must fail at open, loudly, never serve a wrong graph.
func TestBlockCorruptionRejected(t *testing.T) {
	g := randomCSR(t, 500, 3000, false, false, 13)
	path := writeBlockFile(t, g, nil, 64)
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	openMutated := func(t *testing.T, mutate func(b []byte) []byte) error {
		t.Helper()
		b := mutate(append([]byte(nil), good...))
		p := filepath.Join(dir, "bad.blk")
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		bg, err := OpenBlockCSR(p)
		if err == nil {
			bg.Close()
		}
		return err
	}
	cases := []struct {
		name    string
		wantSub string
		mutate  func(b []byte) []byte
	}{
		{"bad-magic", "bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
		{"future-version", "version", func(b []byte) []byte { b[4] = 99; return b }},
		{"unknown-flags", "unknown flag", func(b []byte) []byte { b[8] |= 0x80; return b }},
		{"bad-block-size", "multiple of 64", func(b []byte) []byte { b[12] = 65; b[13] = 0; return b }},
		{"truncated-header", "truncated header", func(b []byte) []byte { return b[:16] }},
		{"truncated-offsets", "truncated offsets", func(b []byte) []byte { return b[:blockHeaderBytes+40] }},
		{"truncated-segments", "truncated file", func(b []byte) []byte { return b[:len(b)-64] }},
		{"flipped-block-index", "block index entry", func(b []byte) []byte {
			// First block-index entry sits right after header + offsets.
			idx := blockHeaderBytes + (g.N()+1)*8
			b[idx] ^= 0x01
			return b
		}},
		{"flipped-offset", "", func(b []byte) []byte {
			// Corrupting an interior offset breaks monotonicity or the
			// index revalidation — either way, open must fail.
			b[blockHeaderBytes+8*10] ^= 0xf0
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := openMutated(t, tc.mutate)
			if err == nil {
				t.Fatal("corrupt file opened cleanly")
			}
			if tc.wantSub != "" && !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}
