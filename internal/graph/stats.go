package graph

import "fmt"

// Stats summarizes a graph as in the paper's Table 2: vertex/edge counts,
// average and maximum degree, an (estimated) diameter, and the number of
// connected components.
type Stats struct {
	N          int
	M          int64 // undirected edge count
	AvgDeg     float64
	MaxDeg     int64
	Diameter   int // lower-bound estimate via double-sweep BFS
	Components int
}

// String formats the stats as a Table 2 row.
func (s Stats) String() string {
	return fmt.Sprintf("n=%d m=%d d̄=%.2f d̂=%d D≈%d cc=%d",
		s.N, s.M, s.AvgDeg, s.MaxDeg, s.Diameter, s.Components)
}

// ComputeStats derives Stats for g. Diameter is estimated with the
// double-sweep heuristic (a BFS from an arbitrary vertex, then a BFS from
// the farthest vertex found; the second eccentricity lower-bounds D) run on
// the largest component.
func ComputeStats(g *CSR) Stats {
	s := Stats{
		N:      g.N(),
		M:      g.UndirectedM(),
		AvgDeg: g.AvgDegree(),
		MaxDeg: g.MaxDegree(),
	}
	if g.N() == 0 {
		return s
	}
	comp := make([]int32, g.N())
	for i := range comp {
		comp[i] = -1
	}
	var queue []V
	nComp := 0
	largestRoot, largestSize := V(0), 0
	for v := V(0); v < g.NumV; v++ {
		if comp[v] >= 0 {
			continue
		}
		size := bfsComponent(g, v, int32(nComp), comp, &queue)
		if size > largestSize {
			largestSize, largestRoot = size, v
		}
		nComp++
	}
	s.Components = nComp
	far, _ := bfsEccentricity(g, largestRoot)
	_, ecc := bfsEccentricity(g, far)
	s.Diameter = ecc
	return s
}

// bfsComponent labels the component of root and returns its size.
func bfsComponent(g *CSR, root V, id int32, comp []int32, scratch *[]V) int {
	q := (*scratch)[:0]
	q = append(q, root)
	comp[root] = id
	size := 1
	for len(q) > 0 {
		v := q[len(q)-1]
		q = q[:len(q)-1]
		for _, u := range g.Neighbors(v) {
			if comp[u] < 0 {
				comp[u] = id
				size++
				q = append(q, u)
			}
		}
	}
	*scratch = q
	return size
}

// bfsEccentricity runs a level-synchronous BFS from root, returning the
// last-visited vertex and its distance (root's eccentricity within its
// component).
func bfsEccentricity(g *CSR, root V) (far V, ecc int) {
	dist := make([]int32, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[root] = 0
	frontier := []V{root}
	far = root
	for len(frontier) > 0 {
		var next []V
		for _, v := range frontier {
			for _, u := range g.Neighbors(v) {
				if dist[u] < 0 {
					dist[u] = dist[v] + 1
					next = append(next, u)
					if int(dist[u]) > ecc {
						ecc = int(dist[u])
						far = u
					}
				}
			}
		}
		frontier = next
	}
	return far, ecc
}
