// Package graph implements the graph representation of the paper (§2.2): a
// contiguous adjacency array ("CSR") occupying n + 2m cells, 1D vertex
// partitioning with an O(1) owner function t[v], and the partition-aware
// (PA) layout of §5 that splits each adjacency list into locally-owned and
// remotely-owned halves (2n + 2m cells) so that push-based algorithms can
// update local neighbors without atomics.
package graph

import (
	"errors"
	"fmt"
	"sort"

	"pushpull/internal/sched"
)

// V is a vertex identifier. int32 halves the memory traffic of the
// adjacency array relative to int64, which matters because the paper's
// push/pull gaps are largely memory-bound (§6).
type V = int32

// CSR is a graph in compressed sparse row form. For an undirected graph
// every edge {u, v} occupies two slots (one per direction), so Adj has 2m
// entries; with the n+1 offsets this is the paper's n + 2m cell layout.
type CSR struct {
	NumV    int32
	Offsets []int64   // len NumV+1; Offsets[v]..Offsets[v+1] indexes Adj
	Adj     []V       // neighbor array, sorted within each vertex
	Weights []float32 // nil for unweighted graphs; parallel to Adj
}

// N returns the number of vertices.
func (g *CSR) N() int { return int(g.NumV) }

// M returns the number of directed edge slots (2m for undirected graphs).
func (g *CSR) M() int64 { return int64(len(g.Adj)) }

// UndirectedM returns m assuming the graph stores both directions.
func (g *CSR) UndirectedM() int64 { return g.M() / 2 }

// Degree returns the degree of v.
func (g *CSR) Degree(v V) int64 { return g.Offsets[v+1] - g.Offsets[v] }

// Neighbors returns the adjacency slice of v (not a copy).
func (g *CSR) Neighbors(v V) []V { return g.Adj[g.Offsets[v]:g.Offsets[v+1]] }

// NeighborWeights returns the edge weights parallel to Neighbors(v); it
// returns nil for unweighted graphs.
func (g *CSR) NeighborWeights(v V) []float32 {
	if g.Weights == nil {
		return nil
	}
	return g.Weights[g.Offsets[v]:g.Offsets[v+1]]
}

// Weighted reports whether edge weights are present.
func (g *CSR) Weighted() bool { return g.Weights != nil }

// HasEdge reports whether (u, v) is present, via binary search over u's
// sorted adjacency. This is the adj(w1, w2) oracle of the paper's triangle
// counting (Algorithm 2).
func (g *CSR) HasEdge(u, v V) bool {
	adj := g.Neighbors(u)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	return i < len(adj) && adj[i] == v
}

// MaxDegree returns d̂, the maximum degree.
func (g *CSR) MaxDegree() int64 {
	var max int64
	for v := V(0); v < g.NumV; v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// AvgDegree returns d̄ = (directed slots)/n, the paper's average degree of
// the stored representation divided by two for undirected graphs.
func (g *CSR) AvgDegree() float64 {
	if g.NumV == 0 {
		return 0
	}
	return float64(g.M()) / float64(g.NumV) / 2
}

// Validate checks structural invariants: monotone offsets, in-range
// neighbor ids, sorted adjacency, and weight-array consistency.
func (g *CSR) Validate() error {
	if len(g.Offsets) != g.N()+1 {
		return fmt.Errorf("graph: offsets length %d, want %d", len(g.Offsets), g.N()+1)
	}
	if g.Offsets[0] != 0 || g.Offsets[g.NumV] != g.M() {
		return errors.New("graph: offset endpoints wrong")
	}
	if g.Weights != nil && len(g.Weights) != len(g.Adj) {
		return errors.New("graph: weights length mismatch")
	}
	for v := V(0); v < g.NumV; v++ {
		if g.Offsets[v] > g.Offsets[v+1] {
			return fmt.Errorf("graph: offsets not monotone at %d", v)
		}
		adj := g.Neighbors(v)
		for i, w := range adj {
			if w < 0 || w >= g.NumV {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", v, w)
			}
			if i > 0 && adj[i-1] > w {
				return fmt.Errorf("graph: adjacency of %d not sorted", v)
			}
		}
	}
	return nil
}

// IsSymmetric reports whether every stored arc has its reverse (i.e. the
// CSR represents an undirected graph).
func (g *CSR) IsSymmetric() bool {
	for v := V(0); v < g.NumV; v++ {
		for _, w := range g.Neighbors(v) {
			if !g.HasEdge(w, v) {
				return false
			}
		}
	}
	return true
}

// Transpose returns the reverse graph (CSC view of the adjacency matrix;
// §7.1 uses it to realize the CSC/push formulation for directed inputs).
func (g *CSR) Transpose() *CSR {
	n := g.NumV
	deg := make([]int64, n+1)
	for v := V(0); v < n; v++ {
		for _, w := range g.Neighbors(v) {
			deg[w+1]++
		}
	}
	for i := V(1); i <= n; i++ {
		deg[i] += deg[i-1]
	}
	t := &CSR{NumV: n, Offsets: deg, Adj: make([]V, g.M())}
	if g.Weights != nil {
		t.Weights = make([]float32, g.M())
	}
	cursor := make([]int64, n)
	copy(cursor, deg[:n])
	for v := V(0); v < n; v++ {
		ws := g.NeighborWeights(v)
		for i, w := range g.Neighbors(v) {
			c := cursor[w]
			t.Adj[c] = v
			if ws != nil {
				t.Weights[c] = ws[i]
			}
			cursor[w]++
		}
	}
	// Adjacency within each row of the transpose is already sorted because
	// source vertices were visited in increasing order.
	return t
}

// Edge is one (possibly weighted) edge used by builders and serialization.
type Edge struct {
	U, V   V
	Weight float32
}

// Builder accumulates edges and produces a CSR.
type Builder struct {
	n          int32
	edges      []Edge
	undirected bool
	weighted   bool
	keepDupes  bool
	keepLoops  bool
}

// NewBuilder creates a builder for a graph with n vertices. By default the
// graph is undirected (each added edge stores both directions), duplicate
// edges are merged, and self-loops are dropped — matching the paper's graph
// model (§2.2: undirected, simple).
func NewBuilder(n int) *Builder {
	return &Builder{n: int32(n), undirected: true}
}

// Directed makes the builder store only the given direction per edge.
func (b *Builder) Directed() *Builder { b.undirected = false; return b }

// KeepDuplicates disables duplicate-edge merging.
func (b *Builder) KeepDuplicates() *Builder { b.keepDupes = true; return b }

// KeepSelfLoops retains self-loops.
func (b *Builder) KeepSelfLoops() *Builder { b.keepLoops = true; return b }

// AddEdge adds an unweighted edge.
func (b *Builder) AddEdge(u, v V) { b.edges = append(b.edges, Edge{U: u, V: v}) }

// AddEdgeW adds a weighted edge; any weighted edge makes the result carry
// weights (unweighted edges default to weight 1).
func (b *Builder) AddEdgeW(u, v V, w float32) {
	b.weighted = true
	b.edges = append(b.edges, Edge{U: u, V: v, Weight: w})
}

// NumEdgesAdded returns the count of AddEdge/AddEdgeW calls so far.
func (b *Builder) NumEdgesAdded() int { return len(b.edges) }

// Build produces the CSR. It returns an error for out-of-range endpoints.
func (b *Builder) Build() (*CSR, error) {
	n := b.n
	for _, e := range b.edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.U, e.V, n)
		}
	}
	type arc struct {
		v V
		w float32
	}
	// Count, fill, sort per-vertex, dedup.
	deg := make([]int64, n+1)
	add := func(u V) { deg[u+1]++ }
	for _, e := range b.edges {
		if !b.keepLoops && e.U == e.V {
			continue
		}
		add(e.U)
		if b.undirected {
			add(e.V)
		}
	}
	for i := V(1); i <= n; i++ {
		deg[i] += deg[i-1]
	}
	arcs := make([]arc, deg[n])
	cursor := make([]int64, n)
	copy(cursor, deg[:n])
	put := func(u, v V, w float32) {
		arcs[cursor[u]] = arc{v: v, w: w}
		cursor[u]++
	}
	for _, e := range b.edges {
		if !b.keepLoops && e.U == e.V {
			continue
		}
		w := e.Weight
		if b.weighted && w == 0 {
			w = 1
		}
		put(e.U, e.V, w)
		if b.undirected {
			put(e.V, e.U, w)
		}
	}
	g := &CSR{NumV: n, Offsets: make([]int64, n+1)}
	adj := make([]V, 0, len(arcs))
	var wts []float32
	if b.weighted {
		wts = make([]float32, 0, len(arcs))
	}
	for v := V(0); v < n; v++ {
		lo, hi := deg[v], deg[v+1]
		row := arcs[lo:hi]
		sort.Slice(row, func(i, j int) bool { return row[i].v < row[j].v })
		for i, a := range row {
			if !b.keepDupes && i > 0 && row[i-1].v == a.v {
				continue
			}
			adj = append(adj, a.v)
			if b.weighted {
				wts = append(wts, a.w)
			}
		}
		g.Offsets[v+1] = int64(len(adj))
	}
	g.Adj = adj
	g.Weights = wts
	return g, nil
}

// MustBuild is Build panicking on error, for tests and fixtures.
func (b *Builder) MustBuild() *CSR {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// Partition is the 1D vertex decomposition of §2.2: P contiguous blocks of
// near-equal size. Owner is the paper's t[v].
type Partition struct {
	NumV int32
	P    int
}

// NewPartition decomposes n vertices over p threads.
func NewPartition(n, p int) Partition {
	if p < 1 {
		p = 1
	}
	return Partition{NumV: int32(n), P: p}
}

// Owner returns t[v], the thread owning vertex v.
func (p Partition) Owner(v V) int { return sched.OwnerOf(int(p.NumV), p.P, int(v)) }

// Range returns the vertex range [lo, hi) owned by thread w.
func (p Partition) Range(w int) (lo, hi V) {
	l, h := sched.BlockRange(int(p.NumV), p.P, w)
	return V(l), V(h)
}

// Border returns the border set B (§3.6): vertices with at least one
// neighbor owned by a different thread.
func (p Partition) Border(g *CSR) []V {
	var out []V
	for v := V(0); v < g.NumV; v++ {
		ov := p.Owner(v)
		for _, u := range g.Neighbors(v) {
			if p.Owner(u) != ov {
				out = append(out, v)
				break
			}
		}
	}
	return out
}
