//go:build !unix

package graph

import (
	"errors"
	"os"
)

// mmapFile on non-unix platforms reports unsupported; OpenBlockCSR
// degrades to the buffered ReadAt cursor path.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	return nil, errors.New("graph: mmap unsupported on this platform")
}

func munmap(data []byte) error { return nil }
