package bfs

import (
	"time"

	"pushpull/internal/core"
	"pushpull/internal/frontier"
	"pushpull/internal/graph"
	"pushpull/internal/memsim"
	"pushpull/internal/sched"
)

// Block-sequential bottom-up BFS over an out-of-core BlockCSR, after
// HybridGraph's BPull: every round walks destination blocks in storage
// order, so the adjacency streams sequentially off disk while the
// resident state is three packed bitmaps plus the tree. A per-block
// frontier summary — one bit per block, ORed out of the pending bitmap's
// words — lets a round skip cold blocks (no unvisited vertices) without
// touching their segments at all, which is what makes the late rounds of
// a traversal cheap: once most blocks are settled, a round's I/O shrinks
// to the blocks still holding work.
//
// The kernel is pull-only (every round reports core.Pull): pushing would
// scatter random writes across the file, exactly the traffic the block
// layout exists to avoid. It is also atomics-free by construction —
// BlockVerts is a multiple of 64, so a block's vertices never share a
// bitmap word with another block's, and each block belongs to exactly
// one worker per round: every word of nextF and pending has a single
// writer, and level[u] of a frontier member was settled in an earlier
// round.

// TraverseBlocked runs a plain BFS from root over a block-format graph.
// For a directed file the stored adjacency is the pull view (in-edges),
// so the traversal follows out-edges — same orientation as the in-memory
// kernels. Levels match TraverseFrom exactly; parents are valid tree
// edges but may differ from a push run's race winners.
func TraverseBlocked(bg *graph.BlockCSR, root graph.V, opt core.Options) (*Tree, []core.Direction, core.RunStats, error) {
	n := bg.N()
	stats := core.RunStats{}
	tree := &Tree{Parent: make([]graph.V, n), Level: make([]int32, n)}
	for i := range tree.Parent {
		tree.Parent[i] = -1
		tree.Level[i] = -1
	}
	if n == 0 {
		return tree, nil, stats, nil
	}
	numBlocks := bg.NumBlocks()
	t := sched.Clamp(opt.Threads, numBlocks)
	blockVerts := int(bg.BlockVerts)

	// pending marks not-yet-claimed vertices; its per-block summary is
	// the skip index. inF/nextF are the frontier double buffer.
	pending := frontier.NewBitmap(n)
	pending.Fill()
	pending.ClearSeq(root)
	inF := frontier.NewBitmap(n)
	inF.SetSeq(root)
	nextF := frontier.NewBitmap(n)
	summary := make([]uint64, (numBlocks+63)/64)
	tree.Parent[root] = root
	tree.Level[root] = 0

	dirs := make([]core.Direction, 0, 64)
	stats.Reserve(64)
	curs := make([]graph.BlockCursor, t)
	errs := make([]error, t)
	parent, level := tree.Parent, tree.Level
	// Hoisted round body: lo/hi are block indices. Claims are plain
	// stores — see the package comment for why no word is contended.
	body := func(w, lo, hi int) {
		cur := &curs[w]
		for bi := lo; bi < hi; bi++ {
			if summary[bi>>6]&(1<<(uint(bi)&63)) == 0 {
				continue // cold block: nothing pending, segment untouched
			}
			if errs[w] != nil {
				return
			}
			if err := bg.Load(bi, cur); err != nil {
				errs[w] = err
				return
			}
			blo, bhi := bg.BlockRange(bi)
			for v := blo; v < bhi; v++ {
				if !pending.Get(v) {
					continue
				}
				for _, u := range cur.Row(v) {
					if !inF.Get(u) {
						continue
					}
					parent[v] = u
					level[v] = level[u] + 1
					nextF.SetSeq(v)     // single writer per word: block-aligned
					pending.ClearSeq(v) // likewise
					break               // early-out: the parent claim landed
				}
			}
		}
	}
	for {
		if opt.Canceled() {
			stats.Canceled = true
			break
		}
		start := time.Now()
		pending.BlockSummary(summary, blockVerts)
		sched.ParallelFor(numBlocks, t, sched.Static, 0, body)
		for _, err := range errs {
			if err != nil {
				return nil, dirs, stats, err
			}
		}
		dirs = append(dirs, core.Pull)
		el := time.Since(start)
		stats.Record(el)
		opt.Tick(stats.Iterations-1, el)
		if nextF.Count() == 0 {
			break
		}
		inF, nextF = nextF, inF
		nextF.Clear()
	}
	return tree, dirs, stats, nil
}

// TraverseBlockedProfiled executes blocked bottom-up BFS
// deterministically under the probes. Per block it charges one summary-
// word read and (when warm) one block-index read; per pending vertex one
// packed pending-word probe and one offset read; per scanned edge a
// sequential adjacency read plus a packed frontier-word probe — no
// atomics anywhere, the signature the block layout claims.
func TraverseBlockedProfiled(bg *graph.BlockCSR, root graph.V, opt core.Options, prof core.Profile, space *memsim.AddressSpace) (*Tree, []core.Direction, core.RunStats, error) {
	var stats core.RunStats
	if err := prof.Validate(); err != nil {
		return nil, nil, stats, err
	}
	n := bg.N()
	tree := &Tree{Parent: make([]graph.V, n), Level: make([]int32, n)}
	for i := range tree.Parent {
		tree.Parent[i] = -1
		tree.Level[i] = -1
	}
	if n == 0 {
		return tree, nil, stats, nil
	}
	if space == nil {
		space = &memsim.AddressSpace{}
	}
	numBlocks := bg.NumBlocks()
	blockVerts := int(bg.BlockVerts)
	offA := space.NewArray(n+1, 8)
	adjA := space.NewArray(int(bg.M()), 4)
	blockOffA := space.NewArray(numBlocks+1, 8)
	parentA := space.NewArray(n, 4)
	levelA := space.NewArray(n, 4)
	pendingA := space.NewArray((n+63)/64, 8)
	inFA := space.NewArray((n+63)/64, 8)
	nextFA := space.NewArray((n+63)/64, 8)
	summaryA := space.NewArray((numBlocks+63)/64, 8)

	pending := frontier.NewBitmap(n)
	pending.Fill()
	pending.ClearSeq(root)
	inF := frontier.NewBitmap(n)
	inF.SetSeq(root)
	nextF := frontier.NewBitmap(n)
	summary := make([]uint64, (numBlocks+63)/64)
	tree.Parent[root] = root
	tree.Level[root] = 0
	parent, level := tree.Parent, tree.Level

	curs := make([]graph.BlockCursor, prof.Threads)
	var dirs []core.Direction
	for {
		start := time.Now()
		pending.BlockSummary(summary, blockVerts)
		var loadErr error
		for w := 0; w < prof.Threads; w++ {
			p := prof.Probes[w]
			p.Exec(regionBlockPull)
			cur := &curs[w]
			lo, hi := sched.BlockRange(numBlocks, prof.Threads, w)
			for bi := lo; bi < hi; bi++ {
				p.Read(summaryA.Addr(int64(bi>>6)), 8)
				cold := summary[bi>>6]&(1<<(uint(bi)&63)) == 0
				p.Branch(cold)
				if cold {
					continue
				}
				p.Read(blockOffA.Addr(int64(bi)), 8)
				if err := bg.Load(bi, cur); err != nil {
					loadErr = err
					break
				}
				blo, bhi := bg.BlockRange(bi)
				for v := blo; v < bhi; v++ {
					p.Read(pendingA.Addr(int64(v>>6)), 8) // packed pending probe
					if !pending.Get(v) {
						continue
					}
					p.Read(offA.Addr(int64(v)), 8)
					offs := bg.Offsets[v]
					for j, u := range cur.Row(v) {
						p.Branch(true)
						p.Read(adjA.Addr(offs+int64(j)), 4) // sequential within the segment
						p.Read(inFA.Addr(int64(u>>6)), 8)   // packed membership probe
						if !inF.Get(u) {
							continue
						}
						parent[v] = u
						level[v] = level[u] + 1
						p.Write(parentA.Addr(int64(v)), 4)
						p.Write(levelA.Addr(int64(v)), 4)
						p.Write(nextFA.Addr(int64(v>>6)), 8)
						p.Write(pendingA.Addr(int64(v>>6)), 8)
						nextF.SetSeq(v)
						pending.ClearSeq(v)
						break // early-out
					}
				}
			}
			if loadErr != nil {
				break
			}
		}
		if loadErr != nil {
			return nil, dirs, stats, loadErr
		}
		dirs = append(dirs, core.Pull)
		el := time.Since(start)
		stats.Record(el)
		opt.Tick(stats.Iterations-1, el)
		if nextF.Count() == 0 {
			break
		}
		inF, nextF = nextF, inF
		nextF.Clear()
	}
	return tree, dirs, stats, nil
}
