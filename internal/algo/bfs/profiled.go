package bfs

import (
	"time"

	"pushpull/internal/core"
	"pushpull/internal/frontier"
	"pushpull/internal/graph"
	"pushpull/internal/memsim"
	"pushpull/internal/sched"
)

// Code regions for instruction-TLB modeling.
const (
	regionPushTopDown = iota
	regionPushFilter
	regionPullBottomUp
	regionBlockPull
)

// TraverseFromProfiled runs a deterministic, instrumented BFS from root,
// reporting every access at the R/W-marked points of Algorithm 3 to the
// per-thread probes. Pushing charges one atomic per frontier edge touching
// an unready vertex (the parent-claim CAS) plus one per ready-counter
// decrement (the k-filter of §4.3); pulling charges only reads plus plain
// owner-side writes. Auto mode applies the direction-optimizing heuristic
// of Beamer et al. deterministically, so the per-round trace matches the
// plain Auto run's.
//
// The returned tree's levels equal the fast variants' output; parents may
// differ from a parallel push run (there the first CAS wins a race, here
// the deterministic scan order wins).
func TraverseFromProfiled(g *graph.CSR, root graph.V, mode Mode, opt core.Options, prof core.Profile, space *memsim.AddressSpace) (*Tree, []core.Direction, core.RunStats, error) {
	return TraverseFromHubProfiled(g, nil, root, mode, opt, prof, space)
}

// TraverseFromHubProfiled is TraverseFromProfiled over a hub split (nil =
// plain). It mirrors TraverseFromHub exactly: pull rounds test each row's
// hub prefix against a packed k-bit frontier bitmap (one word read covers
// 64 slots) and early-out once the parent claim lands, so the modeled
// traffic shows the same savings the fast kernel gets.
func TraverseFromHubProfiled(g *graph.CSR, hs *graph.HubSplit, root graph.V, mode Mode, opt core.Options, prof core.Profile, space *memsim.AddressSpace) (*Tree, []core.Direction, core.RunStats, error) {
	var stats core.RunStats
	if err := prof.Validate(); err != nil {
		return nil, nil, stats, err
	}
	n := g.N()
	tree := &Tree{Parent: make([]graph.V, n), Level: make([]int32, n)}
	if n == 0 {
		return tree, nil, stats, nil
	}
	if space == nil {
		space = &memsim.AddressSpace{}
	}
	offA := space.NewArray(n+1, 8)
	adjA := space.NewArray(int(g.M()), 4)
	parentA := space.NewArray(n, 4)
	levelA := space.NewArray(n, 4)
	readyA := space.NewArray(n, 4)
	// The frontier bitmap of the bottom-up scan is packed: 64 vertices per
	// uint64 word, so a membership probe is an 8-byte read at word v>>6 —
	// an 8× smaller footprint than a byte-per-vertex dense frontier.
	inFA := space.NewArray((n+63)/64, 8)
	var hubFA, hubsA, hubEndA memsim.Array
	var hubF *frontier.Bitmap
	if hs != nil {
		hubFA = space.NewArray((hs.K+63)/64, 8) // packed k-slot frontier
		hubsA = space.NewArray(hs.K, 4)         // slot → vertex id table
		hubEndA = space.NewArray(n, 8)          // per-row split points
		hubF = frontier.NewBitmap(hs.K)
	}

	parent := make([]int32, n)
	level := make([]int32, n)
	ready := make([]int32, n)
	for i := range parent {
		parent[i] = -1
		level[i] = -1
		ready[i] = 1
	}
	parent[root] = int32(root)
	level[root] = 0
	ready[root] = 0

	h := frontier.DefaultSwitch()
	cur := []graph.V{root}
	inF := frontier.NewBitmap(n)
	unexplored := g.M()
	edgeWork := func(f []graph.V) int64 {
		var w int64
		for _, v := range f {
			w += g.Degree(v)
		}
		return w
	}

	var dirs []core.Direction
	for len(cur) > 0 {
		start := time.Now()
		work := edgeWork(cur)
		usePull := false
		switch mode {
		case ForcePull:
			usePull = true
		case ForcePush:
			usePull = false
		default:
			usePull = h.UsePull(work, unexplored, len(cur), n)
		}
		unexplored -= work

		var next []graph.V
		if usePull {
			dirs = append(dirs, core.Pull)
			inF.Clear()
			for _, v := range cur {
				inF.SetSeq(v)
			}
			if hs != nil {
				hubF.Clear()
				for _, v := range cur {
					if s := hs.Slot[v]; s >= 0 {
						hubF.SetSeq(graph.V(s))
					}
				}
			}
			for w := 0; w < prof.Threads; w++ {
				p := prof.Probes[w]
				p.Exec(regionPullBottomUp)
				lo, hi := sched.BlockRange(n, prof.Threads, w)
				for vi := lo; vi < hi; vi++ {
					v := graph.V(vi)
					p.Read(readyA.Addr(int64(vi)), 4)
					p.Branch(ready[v] <= 0)
					if ready[v] <= 0 {
						continue
					}
					p.Read(offA.Addr(int64(vi)), 8)
					if hs != nil {
						p.Read(hubEndA.Addr(int64(vi)), 8)
						offs := g.Offsets[v]
						done := false
						for j, s := range hs.HubRow(v) {
							p.Branch(true)
							p.Read(adjA.Addr(offs+int64(j)), 4)
							p.Read(hubFA.Addr(int64(s>>6)), 8) // packed slot probe
							if !hubF.Get(s) {
								continue
							}
							p.Read(hubsA.Addr(int64(s)), 4) // slot → vertex
							u := hs.Hubs[s]
							if parent[v] == -1 {
								parent[v] = int32(u)
								level[v] = level[u] + 1
								p.Write(parentA.Addr(int64(vi)), 4)
								p.Write(levelA.Addr(int64(vi)), 4)
							}
							p.Write(readyA.Addr(int64(vi)), 4)
							ready[v]--
							if ready[v] == 0 {
								next = append(next, v)
								done = true
								break // early-out: the parent claim landed
							}
						}
						if done {
							continue
						}
						resBase := hs.HubEnd[v]
						for j, u := range hs.ResidualRow(v) {
							p.Branch(true)
							p.Read(adjA.Addr(resBase+int64(j)), 4)
							p.Read(inFA.Addr(int64(u>>6)), 8) // packed membership probe
							if !inF.Get(u) {
								continue
							}
							if parent[v] == -1 {
								parent[v] = int32(u)
								level[v] = level[u] + 1
								p.Write(parentA.Addr(int64(vi)), 4)
								p.Write(levelA.Addr(int64(vi)), 4)
							}
							p.Write(readyA.Addr(int64(vi)), 4)
							ready[v]--
							if ready[v] == 0 {
								next = append(next, v)
								break // early-out
							}
						}
						continue
					}
					offs := g.Offsets[v]
					for j, u := range g.Neighbors(v) {
						p.Branch(true)
						p.Read(adjA.Addr(offs+int64(j)), 4)
						p.Read(inFA.Addr(int64(u>>6)), 8) // packed membership probe
						if !inF.Get(u) {
							continue
						}
						// ⇐ combine into owned state: plain writes only.
						if parent[v] == -1 {
							parent[v] = int32(u)
							level[v] = level[u] + 1
							p.Write(parentA.Addr(int64(vi)), 4)
							p.Write(levelA.Addr(int64(vi)), 4)
						}
						p.Write(readyA.Addr(int64(vi)), 4)
						ready[v]--
						if ready[v] == 0 {
							next = append(next, v)
							break // early-out, matching TraverseFrom's pull
						}
					}
				}
			}
		} else {
			dirs = append(dirs, core.Push)
			// Sub-step 1: ⇐ combine along frontier edges with ready > 0.
			for w := 0; w < prof.Threads; w++ {
				p := prof.Probes[w]
				p.Exec(regionPushTopDown)
				lo, hi := sched.BlockRange(len(cur), prof.Threads, w)
				for i := lo; i < hi; i++ {
					v := cur[i]
					p.Read(offA.Addr(int64(v)), 8)
					offs := g.Offsets[v]
					for j, u := range g.Neighbors(v) {
						p.Branch(true)
						p.Read(adjA.Addr(offs+int64(j)), 4)
						p.Read(readyA.Addr(int64(u)), 4) // R: ready[w] > 0?
						if ready[u] <= 0 {
							continue
						}
						p.Atomic(parentA.Addr(int64(u)), 4) // CAS parent claim
						p.Jump()
						if parent[u] == -1 {
							parent[u] = int32(v)
							level[u] = level[v] + 1
							p.Write(levelA.Addr(int64(u)), 4)
						}
					}
				}
			}
			// Sub-step 2: decrement ready counters; the decrement reaching
			// zero enqueues the vertex (the k-filter).
			for w := 0; w < prof.Threads; w++ {
				p := prof.Probes[w]
				p.Exec(regionPushFilter)
				lo, hi := sched.BlockRange(len(cur), prof.Threads, w)
				for i := lo; i < hi; i++ {
					v := cur[i]
					offs := g.Offsets[v]
					for j, u := range g.Neighbors(v) {
						p.Branch(true)
						p.Read(adjA.Addr(offs+int64(j)), 4)
						p.Atomic(readyA.Addr(int64(u)), 4) // FAA decrement
						ready[u]--
						if ready[u] == 0 {
							next = append(next, u)
						}
					}
				}
			}
		}
		cur = next
		el := time.Since(start)
		stats.Record(el)
		opt.Tick(stats.Iterations-1, el)
	}

	for i := 0; i < n; i++ {
		tree.Parent[i] = graph.V(parent[i])
		tree.Level[i] = level[i]
	}
	return tree, dirs, stats, nil
}
