package bfs

import (
	"testing"

	"pushpull/internal/core"
	"pushpull/internal/counters"
	"pushpull/internal/gen"
	"pushpull/internal/graph"
)

func TestTraverseHubAllModes(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(10, 8, 17))
	if err != nil {
		t.Fatal(err)
	}
	want := refLevels(g, 0)
	for _, k := range []int{0, 1, 64, 512} {
		hs := graph.BuildHubSplit(g, k)
		for _, m := range modes() {
			tree, _, stats := TraverseFromHub(g, hs, 0, m, core.Options{Threads: 4})
			checkTree(t, g, 0, tree, want)
			if stats.Iterations == 0 {
				t.Fatalf("k=%d mode %v: no rounds recorded", k, m)
			}
		}
	}
}

func TestTraverseHubOnDegreeSorted(t *testing.T) {
	// The engine's composition: permute, hub-split the permuted view,
	// traverse from the permuted root, un-permute levels at the boundary.
	g, err := gen.RMAT(gen.DefaultRMAT(10, 8, 23))
	if err != nil {
		t.Fatal(err)
	}
	want := refLevels(g, 0)
	ds := graph.SortByDegree(g)
	hs := graph.BuildHubSplit(ds.G, 64)
	tree, _, _ := TraverseFromHub(ds.G, hs, ds.Inv[0], ForcePull, core.Options{Threads: 4})
	for old := 0; old < g.N(); old++ {
		if got := tree.Level[ds.Inv[old]]; got != want[old] {
			t.Fatalf("level[%d] = %d, want %d", old, got, want[old])
		}
	}
}

func TestTraverseHubProfiledParity(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(9, 8, 31))
	if err != nil {
		t.Fatal(err)
	}
	hs := graph.BuildHubSplit(g, 32)
	want, _, _ := TraverseFromHub(g, hs, 0, ForcePull, core.Options{Threads: 3})
	prof, grp := core.CountingProfile(3)
	tree, dirs, _, err := TraverseFromHubProfiled(g, hs, 0, ForcePull, core.Options{}, prof, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want.Level {
		if tree.Level[v] != want.Level[v] {
			t.Fatalf("level[%d] = %d, want %d", v, tree.Level[v], want.Level[v])
		}
	}
	for _, d := range dirs {
		if d != core.Pull {
			t.Fatalf("forced pull traced %v", d)
		}
	}
	if grp.Report().Get(counters.Atomics) != 0 {
		t.Fatal("pull rounds charged atomics")
	}
}

// Early-out must not change levels in any mode, and on a hub-heavy graph
// the hub prefix must be where most parents are found: the residual scan of
// a pure star graph never runs.
func TestTraverseHubStarResolvesInPrefix(t *testing.T) {
	g := gen.Star(64)
	hs := graph.BuildHubSplit(g, 1)
	want := refLevels(g, 0)
	tree, _, _ := TraverseFromHub(g, hs, 0, ForcePull, core.Options{})
	checkTree(t, g, 0, tree, want)
	for v := 1; v < 64; v++ {
		if tree.Parent[v] != 0 {
			t.Fatalf("parent[%d] = %d, want hub 0", v, tree.Parent[v])
		}
	}
}
