package bfs

import (
	"sync"
	"testing"
	"testing/quick"

	"pushpull/internal/core"
	"pushpull/internal/gen"
	"pushpull/internal/graph"
)

// refLevels computes BFS levels with a simple sequential queue.
func refLevels(g *graph.CSR, root graph.V) []int32 {
	n := g.N()
	lv := make([]int32, n)
	for i := range lv {
		lv[i] = -1
	}
	if n == 0 {
		return lv
	}
	lv[root] = 0
	q := []graph.V{root}
	for len(q) > 0 {
		v := q[0]
		q = q[1:]
		for _, u := range g.Neighbors(v) {
			if lv[u] < 0 {
				lv[u] = lv[v] + 1
				q = append(q, u)
			}
		}
	}
	return lv
}

func checkTree(t *testing.T, g *graph.CSR, root graph.V, tree *Tree, want []int32) {
	t.Helper()
	for v := 0; v < g.N(); v++ {
		if tree.Level[v] != want[v] {
			t.Fatalf("level[%d] = %d, want %d", v, tree.Level[v], want[v])
		}
		if want[v] <= 0 {
			continue
		}
		// Parent must be a neighbor one level up.
		p := tree.Parent[v]
		if p < 0 || tree.Level[p] != want[v]-1 {
			t.Fatalf("parent[%d] = %d at level %d", v, p, tree.Level[p])
		}
		if !g.HasEdge(p, graph.V(v)) {
			t.Fatalf("parent[%d] = %d is not adjacent", v, p)
		}
	}
	if tree.Parent[root] != root || tree.Level[root] != 0 {
		t.Fatal("root not its own parent at level 0")
	}
}

func modes() []Mode { return []Mode{ForcePush, ForcePull, Auto} }

func TestTraverseAllModes(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(10, 8, 17))
	if err != nil {
		t.Fatal(err)
	}
	want := refLevels(g, 0)
	for _, m := range modes() {
		opt := core.Options{Threads: 4}
		tree, _, stats := TraverseFrom(g, 0, m, opt)
		checkTree(t, g, 0, tree, want)
		if stats.Iterations == 0 {
			t.Fatalf("mode %v: no rounds recorded", m)
		}
	}
}

func TestTraversePath(t *testing.T) {
	g := gen.Path(100)
	want := refLevels(g, 0)
	for _, m := range modes() {
		tree, _, _ := TraverseFrom(g, 0, m, core.Options{Threads: 2})
		checkTree(t, g, 0, tree, want)
		if tree.Level[99] != 99 {
			t.Fatalf("mode %v: end level %d", m, tree.Level[99])
		}
	}
}

func TestTraverseDisconnected(t *testing.T) {
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(4, 5) // separate component
	g := b.MustBuild()
	for _, m := range modes() {
		tree, _, _ := TraverseFrom(g, 0, m, core.Options{})
		if tree.Reached() != 3 {
			t.Fatalf("mode %v: reached %d, want 3", m, tree.Reached())
		}
		if tree.Level[4] != -1 || tree.Level[3] != -1 {
			t.Fatalf("mode %v: unreachable vertex visited", m)
		}
	}
}

func TestAutoSwitchesOnSocialGraph(t *testing.T) {
	// On a low-diameter power-law graph the frontier explodes; Auto must
	// use pull for at least one middle round and push for the first.
	g, err := gen.RMAT(gen.DefaultRMAT(12, 16, 5))
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	ready := make([]int32, n)
	for i := range ready {
		ready[i] = 1
	}
	ready[0] = 0
	ops := &treeOps{parent: make([]int32, n), level: make([]int32, n)}
	for i := range ops.parent {
		ops.parent[i] = -1
	}
	ops.parent[0] = 0
	cfg := &Config{Ready: ready, Mode: Auto}
	cfg.Threads = 2
	_, dirs, _ := Run(g, cfg, ops)
	if len(dirs) < 2 {
		t.Fatalf("only %d rounds", len(dirs))
	}
	if dirs[0] != core.Push {
		t.Fatal("first round should push (tiny frontier)")
	}
	sawPull := false
	for _, d := range dirs {
		if d == core.Pull {
			sawPull = true
		}
	}
	if !sawPull {
		t.Fatal("direction optimization never engaged on a dense social graph")
	}
}

func TestGeneralizedReadyCounters(t *testing.T) {
	// Diamond: 0—1, 0—2, 1—3, 2—3. With ready[3] = 2, vertex 3 must only
	// enter the frontier after BOTH 1 and 2 notified it (round 3), not in
	// round 2 like plain BFS.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 3)
	b.AddEdge(2, 3)
	g := b.MustBuild()

	for _, m := range []Mode{ForcePush, ForcePull} {
		var entered []int
		ready := []int32{0, 1, 1, 2}
		ops := &recordingOps{entered: map[graph.V]int{}}
		cfg := &Config{Ready: ready, Mode: m}
		rounds, _, _ := Run(g, cfg, ops)
		_ = entered
		// Rounds: {0}, {1,2}, {3} — vertex 3 enters the frontier only in
		// the third round because it waits for two notifications.
		if rounds != 3 {
			t.Fatalf("mode %v: rounds = %d, want 3", m, rounds)
		}
		// Vertex 3 received exactly two combines (from 1 and from 2).
		if ops.entered[3] != 2 {
			t.Fatalf("mode %v: vertex 3 combined %d times, want 2", m, ops.entered[3])
		}
	}
}

// recordingOps counts combine applications per target vertex.
type recordingOps struct {
	mu      sync.Mutex
	entered map[graph.V]int
}

func (r *recordingOps) PushCombine(w, v graph.V) {
	r.mu.Lock()
	r.entered[w]++
	r.mu.Unlock()
}
func (r *recordingOps) PullCombine(v, w graph.V) {
	r.mu.Lock()
	r.entered[v]++
	r.mu.Unlock()
}

func TestEdgeFilter(t *testing.T) {
	// Filter out the direct edge 0→2 in a triangle: levels become 0,1,2.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	g := b.MustBuild()
	for _, m := range []Mode{ForcePush, ForcePull} {
		n := g.N()
		ops := &treeOps{parent: make([]int32, n), level: make([]int32, n)}
		for i := range ops.parent {
			ops.parent[i] = -1
			ops.level[i] = -1
		}
		ops.parent[0] = 0
		ops.level[0] = 0
		ready := []int32{0, 1, 1}
		cfg := &Config{Ready: ready, Mode: m,
			Filter: func(from, to graph.V) bool {
				return !(from == 0 && to == 2) && !(from == 2 && to == 0)
			}}
		Run(g, cfg, ops)
		if ops.level[2] != 2 {
			t.Fatalf("mode %v: level[2] = %d, want 2 (filtered)", m, ops.level[2])
		}
	}
}

func TestEmptyAndMismatchedConfig(t *testing.T) {
	g := gen.Ring(8)
	cfg := &Config{Ready: make([]int32, 3)} // wrong length
	rounds, _, _ := Run(g, cfg, &treeOps{})
	if rounds != 0 {
		t.Fatal("mismatched ready accepted")
	}
	empty := graph.NewBuilder(0).MustBuild()
	tree, _, _ := TraverseFrom(empty, 0, Auto, core.Options{})
	if tree.Reached() != 0 {
		t.Fatal("empty graph reached vertices")
	}
}

// Property: push and pull produce identical level assignments on random
// graphs (the BFS tree may differ; levels may not).
func TestPushPullLevelsAgree(t *testing.T) {
	f := func(seed uint64) bool {
		g, err := gen.ErdosRenyi(150, 3, seed)
		if err != nil {
			return false
		}
		want := refLevels(g, 0)
		for _, m := range modes() {
			tree, _, _ := TraverseFrom(g, 0, m, core.Options{Threads: 3})
			for v := range want {
				if tree.Level[v] != want[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestModeString(t *testing.T) {
	if Auto.String() != "auto" || ForcePush.String() != "push" || ForcePull.String() != "pull" {
		t.Fatal("mode names")
	}
	if Mode(9).String() != "unknown" {
		t.Fatal("unknown mode name")
	}
}

func BenchmarkBFSPush(b *testing.B) {
	g, _ := gen.RMAT(gen.DefaultRMAT(12, 8, 1))
	for i := 0; i < b.N; i++ {
		TraverseFrom(g, 0, ForcePush, core.Options{})
	}
}

func BenchmarkBFSPull(b *testing.B) {
	g, _ := gen.RMAT(gen.DefaultRMAT(12, 8, 1))
	for i := 0; i < b.N; i++ {
		TraverseFrom(g, 0, ForcePull, core.Options{})
	}
}

func BenchmarkBFSAuto(b *testing.B) {
	g, _ := gen.RMAT(gen.DefaultRMAT(12, 8, 1))
	for i := 0; i < b.N; i++ {
		TraverseFrom(g, 0, Auto, core.Options{})
	}
}
