package bfs

import (
	"testing"

	"pushpull/internal/core"
	"pushpull/internal/graph"
)

// pathGraph builds a path 0–1–…–(length-1) padded with isolated vertices
// up to n, so two graphs of different path length have identical vertex
// counts — and therefore identical setup allocations — while differing in
// round count.
func pathGraph(t testing.TB, n, length int) *graph.CSR {
	t.Helper()
	b := graph.NewBuilder(n)
	for i := 0; i < length-1; i++ {
		b.AddEdge(graph.V(i), graph.V(i+1))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// Steady-state zero-allocation proof for the push traversal: each round
// of a path traversal does identical work (a one-vertex frontier), so
// doubling the round count must not change the allocation count. Run at
// Threads 1 so the round loop executes inline.
func TestPushSteadyStateAllocs(t *testing.T) {
	const n = 1024
	short := pathGraph(t, n, 20)
	long := pathGraph(t, n, 40)
	opt := core.Options{Threads: 1}
	a20 := testing.AllocsPerRun(5, func() { TraverseFrom(short, 0, ForcePush, opt) })
	a40 := testing.AllocsPerRun(5, func() { TraverseFrom(long, 0, ForcePush, opt) })
	if a20 != a40 {
		t.Errorf("push rounds allocate: %.0f allocs over 20 rounds vs %.0f over 40", a20, a40)
	}
}

// The pull rounds share the hoisted bodies, so the same invariant holds
// bottom-up (with and without a hub split).
func TestPullSteadyStateAllocs(t *testing.T) {
	const n = 1024
	short := pathGraph(t, n, 20)
	long := pathGraph(t, n, 40)
	opt := core.Options{Threads: 1}
	a20 := testing.AllocsPerRun(5, func() { TraverseFrom(short, 0, ForcePull, opt) })
	a40 := testing.AllocsPerRun(5, func() { TraverseFrom(long, 0, ForcePull, opt) })
	if a20 != a40 {
		t.Errorf("pull rounds allocate: %.0f allocs over 20 rounds vs %.0f over 40", a20, a40)
	}
	hsShort := graph.BuildHubSplit(short, 8)
	hsLong := graph.BuildHubSplit(long, 8)
	a20 = testing.AllocsPerRun(5, func() { TraverseFromHub(short, hsShort, 0, ForcePull, opt) })
	a40 = testing.AllocsPerRun(5, func() { TraverseFromHub(long, hsLong, 0, ForcePull, opt) })
	if a20 != a40 {
		t.Errorf("hub pull rounds allocate: %.0f allocs over 20 rounds vs %.0f over 40", a20, a40)
	}
}
