// Package bfs implements the paper's generalized breadth-first search
// (Algorithm 3): vertices carry *ready counters* and enter the frontier
// once the counter reaches zero, and a caller-supplied accumulation
// operator ⇐ merges values along traversed edges. Standard BFS is the
// special case ready ≡ 1 with a "claim parent" operator; both phases of
// Brandes betweenness centrality reuse the same engine with the ⇐pred and
// ⇐part operators (Algorithm 5).
//
// The push variant (top-down) lets frontier vertices update their
// neighbors — requiring O(m) atomics to resolve the write conflicts — and
// pays a k-filter (frontier merge) per round. The pull variant (bottom-up
// [4, 55]) lets every not-yet-ready vertex scan for frontier neighbors —
// no write conflicts, but O(D·m) reads in the worst case (§4.3). Auto mode
// is the direction-optimizing switch of Beamer et al. [4].
package bfs

import (
	"sync/atomic"
	"time"

	"pushpull/internal/core"
	"pushpull/internal/frontier"
	"pushpull/internal/graph"
	"pushpull/internal/sched"
)

// Ops is the accumulation operator ⇐ of Algorithm 3.
type Ops interface {
	// PushCombine applies R[w] ⇐ R[v] where v is in the frontier. It may
	// be called concurrently for the same w by different threads, so
	// implementations must synchronize — this is exactly the conflict the
	// paper charges to pushing.
	PushCombine(w, v graph.V)
	// PullCombine applies R[v] ⇐ R[w] where w is in the frontier and the
	// executing thread owns v; no synchronization is needed.
	PullCombine(v, w graph.V)
}

// EdgeFilter restricts traversal to a sub-DAG: an edge from → to is
// traversed only if the filter returns true. A nil filter admits all edges
// (plain BFS). Betweenness centrality uses filters to walk the
// shortest-path DAG G′ (Algorithm 5, line 11).
type EdgeFilter func(from, to graph.V) bool

// Mode selects the traversal direction policy.
type Mode int

const (
	// Auto switches per round with the direction-optimizing heuristic.
	Auto Mode = iota
	// ForcePush always explores top-down.
	ForcePush
	// ForcePull always explores bottom-up.
	ForcePull
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Auto:
		return "auto"
	case ForcePush:
		return "push"
	case ForcePull:
		return "pull"
	default:
		return "unknown"
	}
}

// Config configures one generalized-BFS run.
type Config struct {
	core.Options
	// Ready holds the per-vertex ready counters (consumed destructively).
	// Vertices whose counter is initially 0 form the first frontier.
	Ready []int32
	// Mode picks push, pull, or direction-optimizing traversal.
	Mode Mode
	// Filter optionally restricts edges (nil = all edges).
	Filter EdgeFilter
	// Heuristic overrides the switch parameters in Auto mode.
	Heuristic frontier.SwitchHeuristic
	// Hub optionally supplies graph.BuildHubSplit(g, k) for the same g.
	// Pull rounds then test each row's hub prefix against a k-slot frontier
	// bitmap (cache-resident on skewed graphs) and only chase the residual
	// suffix through the full n-bit bitmap.
	Hub *graph.HubSplit
	// EarlyOut lets a pull round stop scanning a vertex's neighbors once
	// its ready counter reaches zero. Safe only when later combines cannot
	// change the result (plain BFS claims one parent); generalized runs
	// like betweenness centrality need every combine and must leave this
	// off.
	EarlyOut bool
}

// Run executes the generalized BFS, returning the number of rounds and
// timing stats. Per-round times are recorded in the stats; the direction
// chosen for each round is appended to the returned directions slice.
func Run(g *graph.CSR, cfg *Config, ops Ops) (rounds int, dirs []core.Direction, stats core.RunStats) {
	n := g.N()
	if n == 0 || len(cfg.Ready) != n {
		return 0, nil, stats
	}
	t := sched.Clamp(cfg.Threads, n)
	h := cfg.Heuristic
	if h.Alpha == 0 && h.Beta == 0 {
		h = frontier.DefaultSwitch()
	}

	cur := frontier.NewSparse(64)
	for v := graph.V(0); v < g.NumV; v++ {
		if cfg.Ready[v] == 0 { //pushpull:allow atomicmix single-threaded seed scan before any round runs
			cur.Add(v)
		}
	}
	perThread := frontier.NewPerThread(t)
	inF := frontier.NewBitmap(n)
	hs := cfg.Hub
	var hubF *frontier.Bitmap
	if hs != nil {
		hubF = frontier.NewBitmap(hs.K)
	}
	dirs = make([]core.Direction, 0, 64)
	stats.Reserve(64)
	unexplored := g.M()

	// Round bodies are hoisted out of the loop (capturing curVerts through
	// a variable reassigned each round): a func literal inside the loop
	// would allocate its capture record every round, and steady-state
	// rounds must not allocate.
	var curVerts []graph.V
	// Push sub-step 1: R[w] ⇐ R[v] for all frontier edges with ready[w] >
	// 0. Combines and ready-notifications run in two sub-steps (the
	// lockstep separation the PRAM formulation implies), so a
	// late-combining thread can never observe an already-notified neighbor.
	combineBody := func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			v := curVerts[i]
			for _, u := range g.Neighbors(v) {
				if cfg.Filter != nil && !cfg.Filter(v, u) {
					continue
				}
				if atomic.LoadInt32(&cfg.Ready[u]) > 0 {
					ops.PushCombine(u, v)
				}
			}
		}
	}
	// Push sub-step 2: decrement ready counters; exactly the decrement
	// that reaches zero enqueues the vertex (the k-filter of §4.3).
	notifyBody := func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			v := curVerts[i]
			for _, u := range g.Neighbors(v) {
				if cfg.Filter != nil && !cfg.Filter(v, u) {
					continue
				}
				if atomic.AddInt32(&cfg.Ready[u], -1) == 0 {
					perThread.Add(w, u)
				}
			}
		}
	}
	// Pull round: every vertex with a positive ready counter scans its
	// neighbors for frontier members; all state it modifies is its own
	// (t = t[v]), so no atomics are used anywhere. With a hub split the
	// row's hub prefix tests slot ids against the k-bit hubF instead of
	// the n-bit inF, and EarlyOut stops the scan once the counter hits 0.
	pullBody := func(w, lo, hi int) {
		for vi := lo; vi < hi; vi++ {
			v := graph.V(vi)
			if cfg.Ready[v] <= 0 { //pushpull:allow atomicmix pull rounds: only v's owner touches v's counter; push rounds' atomics never run concurrently with this
				continue
			}
			if hs != nil {
				done := false
				for _, s := range hs.HubRow(v) {
					if !hubF.Get(s) {
						continue
					}
					u := hs.Hubs[s]
					// The G′ edge direction is u → v: u pushes in the
					// push formulation, so pulling asks filter(u, v).
					if cfg.Filter != nil && !cfg.Filter(u, v) {
						continue
					}
					ops.PullCombine(v, u)
					cfg.Ready[v]--         //pushpull:allow atomicmix pull rounds: only v's owner touches v's counter
					if cfg.Ready[v] == 0 { //pushpull:allow atomicmix pull rounds: only v's owner touches v's counter
						perThread.Add(w, v)
						if cfg.EarlyOut {
							done = true
							break
						}
					}
				}
				if done {
					continue
				}
				for _, u := range hs.ResidualRow(v) {
					if cfg.Filter != nil && !cfg.Filter(u, v) {
						continue
					}
					if !inF.Get(u) {
						continue
					}
					ops.PullCombine(v, u)
					cfg.Ready[v]--         //pushpull:allow atomicmix pull rounds: only v's owner touches v's counter
					if cfg.Ready[v] == 0 { //pushpull:allow atomicmix pull rounds: only v's owner touches v's counter
						perThread.Add(w, v)
						if cfg.EarlyOut {
							break
						}
					}
				}
				continue
			}
			for _, u := range g.Neighbors(v) {
				if cfg.Filter != nil && !cfg.Filter(u, v) {
					continue
				}
				if !inF.Get(u) {
					continue
				}
				ops.PullCombine(v, u)
				cfg.Ready[v]--         //pushpull:allow atomicmix pull rounds: only v's owner touches v's counter
				if cfg.Ready[v] == 0 { //pushpull:allow atomicmix pull rounds: only v's owner touches v's counter
					perThread.Add(w, v)
					if cfg.EarlyOut {
						break
					}
				}
			}
		}
	}

	for cur.Len() > 0 {
		if cfg.Canceled() {
			stats.Canceled = true
			break
		}
		start := time.Now()
		usePull := false
		switch cfg.Mode {
		case ForcePull:
			usePull = true
		case ForcePush:
			usePull = false
		default:
			// EdgeWork scans the frontier, so compute it once and only
			// when the heuristic actually needs it.
			ew := cur.EdgeWork(g)
			usePull = h.UsePull(ew, unexplored, cur.Len(), n)
			unexplored -= ew
		}
		curVerts = cur.Vertices()

		if usePull {
			inF.Clear()
			inF.FromSparse(cur)
			if hs != nil {
				hubF.Clear()
				for _, v := range curVerts {
					if s := hs.Slot[v]; s >= 0 {
						hubF.SetSeq(graph.V(s))
					}
				}
			}
			sched.ParallelFor(n, t, sched.Static, 0, pullBody)
			dirs = append(dirs, core.Pull)
		} else {
			sched.ParallelFor(len(curVerts), t, sched.Static, 0, combineBody)
			sched.ParallelFor(len(curVerts), t, sched.Static, 0, notifyBody)
			dirs = append(dirs, core.Push)
		}
		perThread.Merge(cur)
		rounds++
		el := time.Since(start)
		stats.Record(el)
		cfg.Tick(rounds-1, el)
	}
	return rounds, dirs, stats
}

// Tree is the result of a plain BFS traversal: a parent pointer and level
// per vertex (−1 when unreached).
type Tree struct {
	Parent []graph.V
	Level  []int32
}

// treeOps implements the standard-BFS accumulation: claim a parent once.
type treeOps struct {
	parent []int32 // atomic access; -1 = unclaimed
	level  []int32
}

func (o *treeOps) PushCombine(w, v graph.V) {
	if atomic.CompareAndSwapInt32(&o.parent[w], -1, int32(v)) {
		atomic.StoreInt32(&o.level[w], atomic.LoadInt32(&o.level[v])+1)
	}
}

func (o *treeOps) PullCombine(v, w graph.V) {
	if o.parent[v] == -1 { //pushpull:allow atomicmix pull rounds write v from its owner only; atomics are the push rounds' (§3.8 invariant)
		o.parent[v] = int32(w)      //pushpull:allow atomicmix pull rounds write v from its owner only
		o.level[v] = o.level[w] + 1 //pushpull:allow atomicmix pull rounds write v from its owner only
	}
}

// TraverseFrom runs a plain BFS from root in the given mode, returning the
// tree, the per-round direction trace, and timing stats.
func TraverseFrom(g *graph.CSR, root graph.V, mode Mode, opt core.Options) (*Tree, []core.Direction, core.RunStats) {
	return TraverseFromHub(g, nil, root, mode, opt)
}

// TraverseFromHub is TraverseFrom over a hub split (nil = plain). Plain
// BFS claims exactly one parent per vertex, so pull rounds early-out the
// moment the claim lands — on skewed graphs most vertices find their
// parent inside the hub prefix and never touch the residual scan.
func TraverseFromHub(g *graph.CSR, hs *graph.HubSplit, root graph.V, mode Mode, opt core.Options) (*Tree, []core.Direction, core.RunStats) {
	n := g.N()
	ops := &treeOps{parent: make([]int32, n), level: make([]int32, n)}
	for i := range ops.parent {
		ops.parent[i] = -1 //pushpull:allow atomicmix single-threaded init before the traversal starts
		ops.level[i] = -1  //pushpull:allow atomicmix single-threaded init before the traversal starts
	}
	ready := make([]int32, n)
	for i := range ready {
		ready[i] = 1
	}
	if n > 0 {
		ready[root] = 0
		ops.parent[root] = int32(root) //pushpull:allow atomicmix single-threaded init before the traversal starts
		ops.level[root] = 0            //pushpull:allow atomicmix single-threaded init before the traversal starts
	}
	cfg := &Config{Options: opt, Ready: ready, Mode: mode, Hub: hs, EarlyOut: true}
	_, dirs, stats := Run(g, cfg, ops)

	tree := &Tree{Parent: make([]graph.V, n), Level: make([]int32, n)}
	for i := 0; i < n; i++ {
		tree.Parent[i] = graph.V(ops.parent[i]) //pushpull:allow atomicmix single-threaded copy-out after every worker has joined
		tree.Level[i] = ops.level[i]            //pushpull:allow atomicmix single-threaded copy-out after every worker has joined
	}
	return tree, dirs, stats
}

// Reached returns the number of visited vertices in the tree.
func (t *Tree) Reached() int {
	c := 0
	for _, l := range t.Level {
		if l >= 0 {
			c++
		}
	}
	return c
}
