package sssp

import (
	"math"
	"time"

	"pushpull/internal/core"
	"pushpull/internal/graph"
	"pushpull/internal/memsim"
)

// Code regions for instruction-TLB modeling.
const (
	regionExpand = iota
	regionScan
)

// PushProfiled runs a deterministic, instrumented push Δ-stepping. Event
// accounting follows the paper's Table 1 conventions for SSSP-Δ: distance
// relaxations are guarded by locks rather than atomics (float min-update,
// §6.1 "Both push and pull variants use locks"); a lock is charged only
// when the relaxed vertex belongs to another thread's partition — on road
// networks with contiguous 1D partitions this makes push lock counts tiny,
// exactly the rca column's shape.
func PushProfiled(g *graph.CSR, opt Options, prof core.Profile, space *memsim.AddressSpace) (*Result, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	n := g.N()
	res := &Result{Dist: make([]float64, n)}
	res.Stats.Direction = core.Push
	dist := res.Dist
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	if n == 0 {
		return res, nil
	}
	if space == nil {
		space = &memsim.AddressSpace{}
	}
	offA := space.NewArray(n+1, 8)
	adjA := space.NewArray(int(g.M()), 4)
	wA := space.NewArray(int(g.M()), 4)
	distA := space.NewArray(n, 8)
	bktA := space.NewArray(n, 8)

	part := graph.NewPartition(n, prof.Threads)
	delta := resolveDelta(g, opt.Delta)
	dist[opt.Source] = 0
	bucketOf := func(d float64) int { return int(d / delta) }
	buckets := [][]graph.V{{opt.Source}}
	ensure := func(b int) {
		for len(buckets) <= b {
			buckets = append(buckets, nil)
		}
	}
	for b := 0; b < len(buckets); b++ {
		cur := buckets[b]
		buckets[b] = nil
		for len(cur) > 0 {
			iterStart := time.Now()
			res.Inner++
			var next []graph.V
			for _, v := range cur {
				owner := part.Owner(v)
				p := prof.Probes[owner]
				p.Exec(regionExpand)
				p.Read(distA.Addr(int64(v)), 8)
				dv := dist[v]
				p.Branch(bucketOf(dv) != b)
				if bucketOf(dv) != b {
					continue
				}
				offs := g.Offsets[v]
				p.Read(offA.Addr(int64(v)), 8)
				ws := g.NeighborWeights(v)
				for j, u := range g.Neighbors(v) {
					p.Branch(true)
					p.Read(adjA.Addr(offs+int64(j)), 4)
					p.Read(wA.Addr(offs+int64(j)), 4)
					we := 1.0
					if ws != nil {
						we = float64(ws[j])
					}
					nd := dv + we
					p.Read(distA.Addr(int64(u)), 8) // R in Algorithm 4 line 17
					p.Branch(nd < dist[u])
					if nd >= dist[u] {
						continue
					}
					if part.Owner(u) != owner {
						p.Lock(distA.Addr(int64(u))) // cross-partition relax
					}
					p.Write(distA.Addr(int64(u)), 8) // W: d[w] = weight
					p.Write(bktA.Addr(int64(u)), 8)
					dist[u] = nd
					nb := bucketOf(nd)
					if nb == b {
						next = append(next, u)
					} else {
						ensure(nb)
						buckets[nb] = append(buckets[nb], u)
					}
				}
			}
			cur = next
			// Record and tick per inner iteration, the same granularity the
			// plain Push variant reports.
			el := time.Since(iterStart)
			res.Stats.Record(el)
			opt.Tick(res.Inner-1, el)
		}
	}
	return res, nil
}

// PullProfiled runs a deterministic, instrumented pull Δ-stepping: every
// inner iteration rescans all unsettled vertices (the O((L/Δ)·m·l_Δ) reads
// of §4.4) and each adopted relaxation is charged one lock for the shared
// bucket-set insertion, reproducing the pull column's lock ≫ push shape.
func PullProfiled(g *graph.CSR, opt Options, prof core.Profile, space *memsim.AddressSpace) (*Result, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	n := g.N()
	res := &Result{Dist: make([]float64, n)}
	res.Stats.Direction = core.Pull
	dist := res.Dist
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	if n == 0 {
		return res, nil
	}
	if space == nil {
		space = &memsim.AddressSpace{}
	}
	offA := space.NewArray(n+1, 8)
	adjA := space.NewArray(int(g.M()), 4)
	wA := space.NewArray(int(g.M()), 4)
	distA := space.NewArray(n, 8)
	actA := space.NewArray(n, 1)

	part := graph.NewPartition(n, prof.Threads)
	delta := resolveDelta(g, opt.Delta)
	dist[opt.Source] = 0
	bucketOf := func(d float64) int {
		if math.IsInf(d, 1) {
			return math.MaxInt32
		}
		return int(d / delta)
	}
	activeCur := make([]bool, n)
	activeNext := make([]bool, n)
	b := 0
	for {
		res.Epochs++
		for itr := 0; ; itr++ {
			iterStart := time.Now()
			res.Inner++
			changed := false
			for vi := 0; vi < n; vi++ {
				v := graph.V(vi)
				p := prof.Probes[part.Owner(v)]
				p.Exec(regionScan)
				p.Read(distA.Addr(int64(vi)), 8)
				dv := dist[v]
				p.Branch(dv <= float64(b)*delta)
				if dv <= float64(b)*delta {
					continue
				}
				offs := g.Offsets[v]
				p.Read(offA.Addr(int64(vi)), 8)
				ws := g.NeighborWeights(v)
				best := dv
				for j, u := range g.Neighbors(v) {
					p.Branch(true)
					p.Read(adjA.Addr(offs+int64(j)), 4)
					p.Read(distA.Addr(int64(u)), 8) // R line 24/25
					if bucketOf(dist[u]) != b {
						continue
					}
					if itr > 0 {
						p.Read(actA.Addr(int64(u)), 1) // R: active[w]
						if !activeCur[u] {
							continue
						}
					}
					p.Read(wA.Addr(offs+int64(j)), 4)
					we := 1.0
					if ws != nil {
						we = float64(ws[j])
					}
					if nd := dist[u] + we; nd < best {
						best = nd
					}
				}
				p.Branch(best < dv)
				if best < dv {
					p.Lock(distA.Addr(int64(vi))) // shared bucket-set insert
					p.Write(distA.Addr(int64(vi)), 8)
					dist[v] = best
					if bucketOf(best) == b {
						p.Write(actA.Addr(int64(vi)), 1)
						activeNext[v] = true
						changed = true
					}
				}
			}
			activeCur, activeNext = activeNext, activeCur
			for i := range activeNext {
				activeNext[i] = false
			}
			el := time.Since(iterStart)
			res.Stats.Record(el)
			opt.Tick(res.Inner-1, el)
			if !changed {
				break
			}
		}
		next := math.MaxInt32
		for v := 0; v < n; v++ {
			if nb := bucketOf(dist[v]); nb > b && nb < next {
				next = nb
			}
		}
		if next == math.MaxInt32 {
			break
		}
		for i := range activeCur {
			activeCur[i] = false
		}
		b = next
	}
	return res, nil
}
