// Package sssp implements push- and pull-based Δ-Stepping single-source
// shortest paths (paper §3.4 and Algorithm 4, after Meyer & Sanders [42]).
//
// Vertices are grouped into buckets of width Δ by tentative distance and
// buckets are processed in order; within an epoch the current bucket is
// relaxed repeatedly until it stops changing. In the push variant a bucket
// vertex relaxes its out-edges — concurrent distance lowering on shared
// vertices, an atomic min (CAS loop) per improvement. In the pull variant
// every unsettled vertex scans for neighbors in the current bucket and
// relaxes itself privately — no write conflicts, but each inner iteration
// rescans all unsettled vertices, the O((L/Δ)·m·l_Δ) reads of §4.4.
package sssp

import (
	"container/heap"
	"math"
	"time"

	"pushpull/internal/atomicx"
	"pushpull/internal/core"
	"pushpull/internal/frontier"
	"pushpull/internal/graph"
	"pushpull/internal/sched"
)

// Options configures a Δ-stepping run.
type Options struct {
	core.Options
	// Source is the source vertex.
	Source graph.V
	// Delta is the bucket width Δ; 0 picks max-weight/d̄, the standard
	// heuristic.
	Delta float64
}

// Result carries the distances and run metadata.
type Result struct {
	Dist   []float64
	Epochs int // buckets processed
	Inner  int // total inner (relaxation) iterations across epochs
	Stats  core.RunStats
}

// resolveDelta applies the Δ heuristic.
func resolveDelta(g *graph.CSR, delta float64) float64 {
	if delta > 0 {
		return delta
	}
	var maxW float32 = 1
	for _, w := range g.Weights {
		if w > maxW {
			maxW = w
		}
	}
	d := g.AvgDegree()
	if d < 1 {
		d = 1
	}
	return float64(maxW) / d
}

// Dijkstra computes reference distances with a binary heap.
func Dijkstra(g *graph.CSR, source graph.V) []float64 {
	n := g.N()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	if n == 0 {
		return dist
	}
	dist[source] = 0
	pq := &vheap{items: []vdist{{source, 0}}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(vdist)
		if it.d > dist[it.v] {
			continue
		}
		ws := g.NeighborWeights(it.v)
		for i, u := range g.Neighbors(it.v) {
			w := 1.0
			if ws != nil {
				w = float64(ws[i])
			}
			if nd := it.d + w; nd < dist[u] {
				dist[u] = nd
				heap.Push(pq, vdist{u, nd})
			}
		}
	}
	return dist
}

type vdist struct {
	v graph.V
	d float64
}

type vheap struct{ items []vdist }

func (h *vheap) Len() int           { return len(h.items) }
func (h *vheap) Less(i, j int) bool { return h.items[i].d < h.items[j].d }
func (h *vheap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *vheap) Push(x interface{}) { h.items = append(h.items, x.(vdist)) }
func (h *vheap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

// Push runs push-based Δ-stepping: bucket vertices relax their edges
// outward with atomic distance minimization.
func Push(g *graph.CSR, opt Options) *Result {
	n := g.N()
	res := &Result{Dist: make([]float64, n)}
	res.Stats.Direction = core.Push
	for i := range res.Dist {
		res.Dist[i] = math.Inf(1)
	}
	if n == 0 {
		return res
	}
	delta := resolveDelta(g, opt.Delta)
	t := sched.Clamp(opt.Threads, n)

	distBits := make([]uint64, n)
	inf := math.Float64bits(math.Inf(1))
	for i := range distBits {
		distBits[i] = inf
	}
	atomicx.StoreFloat64(&distBits[opt.Source], 0)

	bucketOf := func(d float64) int { return int(d / delta) }
	buckets := [][]graph.V{{opt.Source}}
	inRound := frontier.NewBitmap(n) // dedup within one merged round
	type insert struct {
		b int
		v graph.V
	}
	perThread := make([][]insert, t)

	ensure := func(b int) {
		for len(buckets) <= b {
			buckets = append(buckets, nil)
		}
	}

	// The relax body is hoisted out of the epoch loops so the steady state
	// does not allocate a closure per round; b and cur are captured by
	// reference, so each round's reassignment stays visible.
	var b int
	var cur []graph.V
	relax := func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			v := cur[i]
			dv := atomicx.LoadFloat64(&distBits[v])
			if bucketOf(dv) != b {
				continue // stale entry: v moved to an earlier bucket
			}
			ws := g.NeighborWeights(v)
			for j, u := range g.Neighbors(v) {
				we := 1.0
				if ws != nil {
					we = float64(ws[j])
				}
				nd := dv + we
				if lowered, _ := atomicx.MinFloat64(&distBits[u], nd); lowered {
					perThread[w] = append(perThread[w], insert{bucketOf(nd), u})
				}
			}
		}
	}

	for b = 0; b < len(buckets); b++ {
		cur = buckets[b]
		buckets[b] = nil
		if len(cur) == 0 {
			continue
		}
		res.Epochs++
		for itr := 0; len(cur) > 0; itr++ {
			if opt.Canceled() {
				res.Stats.Canceled = true
				break
			}
			start := time.Now()
			res.Inner++
			sched.ParallelFor(len(cur), t, sched.Static, 0, relax)
			// Deterministic merge of the per-thread insertion buffers — the
			// k-filter step. Re-inserts into bucket b continue the epoch.
			inRound.Clear()
			cur = cur[:0:0]
			for w := 0; w < t; w++ {
				for _, in := range perThread[w] {
					// Re-derive the bucket from the final distance: a later
					// relaxation may have lowered it further.
					nb := bucketOf(atomicx.LoadFloat64(&distBits[in.v]))
					if nb < b {
						continue // already settled into an earlier bucket
					}
					if nb == b {
						if inRound.Set(in.v) {
							cur = append(cur, in.v)
						}
						continue
					}
					ensure(nb)
					buckets[nb] = append(buckets[nb], in.v)
				}
				perThread[w] = perThread[w][:0]
			}
			el := time.Since(start)
			res.Stats.Record(el)
			opt.Tick(res.Inner-1, el)
		}
		if res.Stats.Canceled {
			break
		}
	}
	for i := range res.Dist {
		res.Dist[i] = atomicx.LoadFloat64(&distBits[i])
	}
	return res
}

// Pull runs pull-based Δ-stepping: each unsettled vertex scans for current-
// bucket neighbors and relaxes itself. Distances live in a bit array
// accessed with plain atomic loads/stores — memory fences only, not the
// read-modify-write atomics pushing needs — so cross-partition reads of a
// neighbor's in-flight distance are well-defined while the owner remains
// the sole writer of its vertex, the pull invariant of §3.8.
func Pull(g *graph.CSR, opt Options) *Result {
	n := g.N()
	res := &Result{Dist: make([]float64, n)}
	res.Stats.Direction = core.Pull
	if n == 0 {
		return res
	}
	delta := resolveDelta(g, opt.Delta)
	t := sched.Clamp(opt.Threads, n)
	distBits := make([]uint64, n)
	inf := math.Float64bits(math.Inf(1))
	for i := range distBits {
		distBits[i] = inf
	}
	atomicx.StoreFloat64(&distBits[opt.Source], 0)

	bucketOf := func(d float64) int {
		if math.IsInf(d, 1) {
			return math.MaxInt32
		}
		return int(d / delta)
	}
	activeCur := make([]bool, n)
	activeNext := make([]bool, n)
	changed := make([]bool, t)

	// The relax body is hoisted out of the epoch loops so the steady state
	// does not allocate a closure per round; b, itr and the active arrays
	// are captured by reference, so each round's updates stay visible.
	b := 0
	var itr int
	relax := func(w, lo, hi int) {
		for vi := lo; vi < hi; vi++ {
			v := graph.V(vi)
			dv := atomicx.LoadFloat64(&distBits[v])
			if dv <= float64(b)*delta {
				continue // settled for this epoch
			}
			ws := g.NeighborWeights(v)
			best := dv
			for j, u := range g.Neighbors(v) {
				du := atomicx.LoadFloat64(&distBits[u])
				if bucketOf(du) != b {
					continue
				}
				if itr > 0 && !activeCur[u] {
					continue
				}
				we := 1.0
				if ws != nil {
					we = float64(ws[j])
				}
				if nd := du + we; nd < best {
					best = nd
				}
			}
			if best < dv {
				// Owner-only write: a store, not a CAS.
				atomicx.StoreFloat64(&distBits[v], best)
				if bucketOf(best) == b {
					activeNext[v] = true
					changed[w] = true
				}
			}
		}
	}

	for !res.Stats.Canceled {
		res.Epochs++
		for itr = 0; ; itr++ {
			if opt.Canceled() {
				res.Stats.Canceled = true
				break
			}
			start := time.Now()
			res.Inner++
			for i := range changed {
				changed[i] = false
			}
			sched.ParallelFor(n, t, sched.Static, 0, relax)
			activeCur, activeNext = activeNext, activeCur
			for i := range activeNext {
				activeNext[i] = false
			}
			el := time.Since(start)
			res.Stats.Record(el)
			opt.Tick(res.Inner-1, el)
			any := false
			for _, c := range changed {
				any = any || c
			}
			if !any {
				break
			}
		}
		// Advance to the next non-empty bucket.
		next := math.MaxInt32
		for v := 0; v < n; v++ {
			if nb := bucketOf(atomicx.LoadFloat64(&distBits[v])); nb > b && nb < next {
				next = nb
			}
		}
		if next == math.MaxInt32 {
			break
		}
		// Vertices already in bucket `next` are the epoch's initial
		// members; itr==0 treats them all as active.
		for i := range activeCur {
			activeCur[i] = false
		}
		b = next
	}
	for i := range res.Dist {
		res.Dist[i] = atomicx.LoadFloat64(&distBits[i])
	}
	return res
}

// MaxDiff returns the largest absolute distance difference, treating a pair
// of infinities as equal.
func MaxDiff(a, b []float64) float64 {
	max := 0.0
	for i := range a {
		if math.IsInf(a[i], 1) && math.IsInf(b[i], 1) {
			continue
		}
		if d := math.Abs(a[i] - b[i]); d > max {
			max = d
		}
	}
	return max
}
