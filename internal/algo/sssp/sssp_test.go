package sssp

import (
	"math"
	"testing"
	"testing/quick"

	"pushpull/internal/core"
	"pushpull/internal/counters"
	"pushpull/internal/gen"
	"pushpull/internal/graph"
)

const tol = 1e-9

func weighted(t *testing.T, seed uint64) *graph.CSR {
	t.Helper()
	g, err := gen.RMAT(gen.DefaultRMAT(10, 8, seed))
	if err != nil {
		t.Fatal(err)
	}
	return gen.WithUniformWeights(g, 1, 100, seed+1)
}

func TestPushMatchesDijkstra(t *testing.T) {
	g := weighted(t, 21)
	want := Dijkstra(g, 0)
	for _, delta := range []float64{0, 10, 50, 1000} {
		opt := Options{Source: 0, Delta: delta}
		opt.Threads = 4
		res := Push(g, opt)
		if d := MaxDiff(res.Dist, want); d > tol {
			t.Fatalf("Δ=%v: push vs dijkstra max diff %g", delta, d)
		}
		if res.Epochs == 0 || res.Inner == 0 {
			t.Fatalf("Δ=%v: no work recorded: %+v", delta, res)
		}
	}
}

func TestPullMatchesDijkstra(t *testing.T) {
	g := weighted(t, 22)
	want := Dijkstra(g, 0)
	for _, delta := range []float64{0, 10, 50, 1000} {
		opt := Options{Source: 0, Delta: delta}
		opt.Threads = 4
		res := Pull(g, opt)
		if d := MaxDiff(res.Dist, want); d > tol {
			t.Fatalf("Δ=%v: pull vs dijkstra max diff %g", delta, d)
		}
	}
}

func TestUnweightedEqualsBFSDepth(t *testing.T) {
	// On an unweighted path, distance = hop count.
	g := gen.Path(50)
	res := Push(g, Options{Source: 0, Delta: 1})
	for v := 0; v < 50; v++ {
		if res.Dist[v] != float64(v) {
			t.Fatalf("dist[%d] = %v", v, res.Dist[v])
		}
	}
	res2 := Pull(g, Options{Source: 0, Delta: 1})
	if d := MaxDiff(res.Dist, res2.Dist); d != 0 {
		t.Fatalf("push/pull diff on path: %g", d)
	}
}

func TestDisconnected(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdgeW(0, 1, 5)
	// 2—3 unreachable from 0
	b.AddEdgeW(2, 3, 1)
	g := b.MustBuild()
	for _, run := range []func(*graph.CSR, Options) *Result{Push, Pull} {
		res := run(g, Options{Source: 0})
		if !math.IsInf(res.Dist[2], 1) || !math.IsInf(res.Dist[3], 1) {
			t.Fatal("unreachable vertex got finite distance")
		}
		if res.Dist[1] != 5 {
			t.Fatalf("dist[1] = %v", res.Dist[1])
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(0).MustBuild()
	if res := Push(g, Options{}); len(res.Dist) != 0 {
		t.Fatal("empty push")
	}
	if res := Pull(g, Options{}); len(res.Dist) != 0 {
		t.Fatal("empty pull")
	}
}

func TestDeltaAffectsEpochCount(t *testing.T) {
	g := weighted(t, 23)
	small := Push(g, Options{Source: 0, Delta: 5})
	large := Push(g, Options{Source: 0, Delta: 1e6})
	if small.Epochs <= large.Epochs {
		t.Fatalf("epochs: Δ=5 → %d, Δ=1e6 → %d; small Δ must need more epochs",
			small.Epochs, large.Epochs)
	}
	// With Δ → ∞, a single bucket holds everything (Bellman-Ford-like).
	if large.Epochs != 1 {
		t.Fatalf("Δ=1e6 epochs = %d, want 1", large.Epochs)
	}
}

func TestRoadGraph(t *testing.T) {
	g, err := gen.RoadGrid(30, 30, 0.9, 7)
	if err != nil {
		t.Fatal(err)
	}
	g = gen.WithUniformWeights(g, 1, 10, 8)
	want := Dijkstra(g, 0)
	push := Push(g, Options{Source: 0})
	pull := Pull(g, Options{Source: 0})
	if d := MaxDiff(push.Dist, want); d > tol {
		t.Fatalf("push diff %g", d)
	}
	if d := MaxDiff(pull.Dist, want); d > tol {
		t.Fatalf("pull diff %g", d)
	}
}

// Property: push == pull == Dijkstra on random weighted graphs.
func TestVariantsAgreeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g, err := gen.ErdosRenyi(120, 4, seed)
		if err != nil {
			return false
		}
		g = gen.WithUniformWeights(g, 1, 20, seed+9)
		want := Dijkstra(g, 0)
		opt := Options{Source: 0}
		opt.Threads = 3
		if MaxDiff(Push(g, opt).Dist, want) > tol {
			return false
		}
		return MaxDiff(Pull(g, opt).Dist, want) <= tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestProfiledMatchDijkstra(t *testing.T) {
	g := weighted(t, 31)
	want := Dijkstra(g, 0)
	opt := Options{Source: 0}

	prof, _ := core.CountingProfile(4)
	res, err := PushProfiled(g, opt, prof, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxDiff(res.Dist, want); d > tol {
		t.Fatalf("profiled push diff %g", d)
	}

	prof2, _ := core.CountingProfile(4)
	res2, err := PullProfiled(g, opt, prof2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxDiff(res2.Dist, want); d > tol {
		t.Fatalf("profiled pull diff %g", d)
	}
}

// Table 1 SSSP-Δ shapes: pull reads ≫ push reads (every inner iteration
// rescans all unsettled vertices) and pull locks ≫ push locks (push only
// locks cross-partition relaxations).
func TestCounterShapes(t *testing.T) {
	g, err := gen.RoadGrid(24, 24, 0.95, 3)
	if err != nil {
		t.Fatal(err)
	}
	g = gen.WithUniformWeights(g, 1, 10, 4)
	opt := Options{Source: 0}

	profPush, gPush := core.CountingProfile(4)
	if _, err := PushProfiled(g, opt, profPush, nil); err != nil {
		t.Fatal(err)
	}
	push := gPush.Report()

	profPull, gPull := core.CountingProfile(4)
	if _, err := PullProfiled(g, opt, profPull, nil); err != nil {
		t.Fatal(err)
	}
	pull := gPull.Report()

	if pull.Get(counters.Reads) < 4*push.Get(counters.Reads) {
		t.Fatalf("pull reads %d not ≫ push reads %d",
			pull.Get(counters.Reads), push.Get(counters.Reads))
	}
	if pull.Get(counters.Locks) <= push.Get(counters.Locks) {
		t.Fatalf("pull locks %d not > push locks %d",
			pull.Get(counters.Locks), push.Get(counters.Locks))
	}
	if push.Get(counters.Atomics) != 0 || pull.Get(counters.Atomics) != 0 {
		t.Fatal("SSSP-Δ is lock-based in Table 1; atomics must be 0")
	}
}

func TestProfiledValidation(t *testing.T) {
	g := gen.Ring(10)
	bad := core.Profile{Threads: 2, Probes: []counters.Probe{counters.NopProbe{}}}
	if _, err := PushProfiled(g, Options{}, bad, nil); err == nil {
		t.Fatal("bad profile accepted")
	}
	if _, err := PullProfiled(g, Options{}, bad, nil); err == nil {
		t.Fatal("bad profile accepted")
	}
}

func BenchmarkPush(b *testing.B) {
	g, _ := gen.RMAT(gen.DefaultRMAT(12, 8, 1))
	g = gen.WithUniformWeights(g, 1, 100, 2)
	for i := 0; i < b.N; i++ {
		Push(g, Options{Source: 0})
	}
}

func BenchmarkPull(b *testing.B) {
	g, _ := gen.RMAT(gen.DefaultRMAT(12, 8, 1))
	g = gen.WithUniformWeights(g, 1, 100, 2)
	for i := 0; i < b.N; i++ {
		Pull(g, Options{Source: 0})
	}
}
