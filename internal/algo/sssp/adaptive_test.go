package sssp

import (
	"testing"
	"testing/quick"

	"pushpull/internal/core"
	"pushpull/internal/gen"
	"pushpull/internal/graph"
)

func TestAdaptiveMatchesDijkstra(t *testing.T) {
	g := weighted(t, 41)
	want := Dijkstra(g, 0)
	for _, delta := range []float64{0, 10, 200} {
		opt := Options{Source: 0, Delta: delta}
		opt.Threads = 4
		res := Adaptive(g, opt)
		if d := MaxDiff(res.Dist, want); d > tol {
			t.Fatalf("Δ=%v: adaptive diff %g", delta, d)
		}
		if len(res.Dirs) != res.Inner {
			t.Fatalf("Δ=%v: %d directions for %d inner iterations", delta, len(res.Dirs), res.Inner)
		}
	}
}

func TestAdaptiveOnRoadGraph(t *testing.T) {
	g, err := gen.RoadGrid(25, 25, 0.9, 5)
	if err != nil {
		t.Fatal(err)
	}
	g = gen.WithUniformWeights(g, 1, 10, 6)
	want := Dijkstra(g, 0)
	res := Adaptive(g, Options{Source: 0})
	if d := MaxDiff(res.Dist, want); d > tol {
		t.Fatalf("road adaptive diff %g", d)
	}
	// Road buckets are tiny: the switch should essentially always push.
	for _, dir := range res.Dirs {
		if dir != core.Push {
			return // at least one pull is fine too; just ensure no panic
		}
	}
}

func TestAdaptiveSwitchEngagesOnDenseGraph(t *testing.T) {
	// With a huge Δ the single bucket holds nearly the whole dense graph;
	// the heuristic must choose pull for at least one inner iteration.
	g := weighted(t, 43)
	opt := Options{Source: 0, Delta: 1e9}
	res := Adaptive(g, opt)
	sawPull := false
	for _, d := range res.Dirs {
		if d == core.Pull {
			sawPull = true
		}
	}
	if !sawPull {
		t.Fatalf("heuristic never pulled on a one-bucket dense run (dirs=%v)", res.Dirs)
	}
	want := Dijkstra(g, 0)
	if d := MaxDiff(res.Dist, want); d > tol {
		t.Fatalf("adaptive diff %g", d)
	}
}

func TestAdaptiveEmptyAndDisconnected(t *testing.T) {
	empty := graph.NewBuilder(0).MustBuild()
	if res := Adaptive(empty, Options{}); len(res.Dist) != 0 {
		t.Fatal("empty graph produced distances")
	}
	b := graph.NewBuilder(4)
	b.AddEdgeW(0, 1, 2)
	b.AddEdgeW(2, 3, 2)
	g := b.MustBuild()
	res := Adaptive(g, Options{Source: 0})
	want := Dijkstra(g, 0)
	if d := MaxDiff(res.Dist, want); d != 0 {
		t.Fatalf("disconnected diff %g", d)
	}
}

// Property: adaptive == Dijkstra on random weighted graphs across Δ.
func TestAdaptiveAgreementProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g, err := gen.ErdosRenyi(100, 4, seed)
		if err != nil {
			return false
		}
		g = gen.WithUniformWeights(g, 1, 20, seed+1)
		want := Dijkstra(g, 0)
		for _, delta := range []float64{0, 15, 1e6} {
			opt := Options{Source: 0, Delta: delta}
			opt.Threads = 3
			if MaxDiff(Adaptive(g, opt).Dist, want) > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAdaptive(b *testing.B) {
	g, _ := gen.RMAT(gen.DefaultRMAT(12, 8, 1))
	g = gen.WithUniformWeights(g, 1, 100, 2)
	for i := 0; i < b.N; i++ {
		Adaptive(g, Options{Source: 0})
	}
}
