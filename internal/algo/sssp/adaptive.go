package sssp

import (
	"math"
	"time"

	"pushpull/internal/atomicx"
	"pushpull/internal/core"
	"pushpull/internal/frontier"
	"pushpull/internal/graph"
	"pushpull/internal/sched"
)

// Adaptive runs Δ-stepping with per-inner-iteration direction switching —
// the traversal push↔pull switching the paper credits with the highest
// performance (§7.2, after Beamer [4] and Chakaravarthy [17]): relax the
// current bucket by pushing while it is small, and switch to pulling when
// the bucket's edge work approaches the scan cost of the unsettled
// vertices, exactly the direction-optimizing trade-off of §4.4.
//
// The result matches Push, Pull and Dijkstra; Result.Dirs records the
// direction chosen for every inner iteration.
type AdaptiveResult struct {
	*Result
	Dirs []core.Direction
}

// Adaptive runs the switching Δ-stepping variant.
func Adaptive(g *graph.CSR, opt Options) *AdaptiveResult {
	n := g.N()
	res := &AdaptiveResult{Result: &Result{Dist: make([]float64, n)}}
	for i := range res.Dist {
		res.Dist[i] = math.Inf(1)
	}
	if n == 0 {
		return res
	}
	delta := resolveDelta(g, opt.Delta)
	t := sched.Clamp(opt.Threads, n)
	h := frontier.DefaultSwitch()

	distBits := make([]uint64, n)
	inf := math.Float64bits(math.Inf(1))
	for i := range distBits {
		distBits[i] = inf
	}
	atomicx.StoreFloat64(&distBits[opt.Source], 0)

	buckets := [][]graph.V{{opt.Source}}
	inRound := frontier.NewBitmap(n)
	perThread := make([][]bucketInsert, t)
	ensure := func(b int) {
		for len(buckets) <= b {
			buckets = append(buckets, nil)
		}
	}
	// unsettled estimates the pull-side scan cost: vertices not yet below
	// the current bucket boundary.
	countUnsettled := func(b int) int64 {
		var c int64
		bound := float64(b) * delta
		for v := 0; v < n; v++ {
			if atomicx.LoadFloat64(&distBits[v]) > bound {
				c++
			}
		}
		return c
	}

	for b := 0; b < len(buckets); b++ {
		cur := buckets[b]
		buckets[b] = nil
		if len(cur) == 0 {
			continue
		}
		res.Epochs++
		for itr := 0; len(cur) > 0; itr++ {
			if opt.Canceled() {
				res.Stats.Canceled = true
				break
			}
			start := time.Now()
			res.Inner++
			// Direction decision: push relaxes only the bucket's edges;
			// pull rescans every unsettled vertex's edges. Pull pays off
			// only when the bucket already covers a large share of the
			// remaining work.
			bucketEdges := int64(0)
			for _, v := range cur {
				bucketEdges += g.Degree(v)
			}
			unsettled := countUnsettled(b)
			usePull := h.UsePull(bucketEdges, unsettled*int64(g.AvgDegree()*2+1), len(cur), n)
			if usePull {
				res.Dirs = append(res.Dirs, core.Pull)
				improved := adaptivePullRound(g, distBits, delta, b, cur, t)
				// Route improvements exactly like the push merge: bucket-b
				// reentrants continue the epoch, later buckets are queued.
				inRound.Clear()
				cur = cur[:0:0]
				for _, v := range improved {
					nb := int(atomicx.LoadFloat64(&distBits[v]) / delta)
					if nb < b {
						continue
					}
					if nb == b {
						if inRound.Set(v) {
							cur = append(cur, v)
						}
						continue
					}
					ensure(nb)
					buckets[nb] = append(buckets[nb], v)
				}
			} else {
				res.Dirs = append(res.Dirs, core.Push)
				cur = adaptivePushRound(g, distBits, delta, b, cur, t, perThread, inRound, &buckets, ensure)
			}
			el := time.Since(start)
			res.Stats.Record(el)
			opt.Tick(res.Inner-1, el)
		}
		if res.Stats.Canceled {
			break
		}
	}
	for i := range res.Dist {
		res.Dist[i] = atomicx.LoadFloat64(&distBits[i])
	}
	return res
}

// bucketInsert records a relaxed vertex and its destination bucket.
type bucketInsert struct {
	b int
	v graph.V
}

// adaptivePushRound relaxes the bucket's out-edges with atomic minima and
// returns the refreshed current-bucket list.
func adaptivePushRound(g *graph.CSR, distBits []uint64, delta float64, b int,
	cur []graph.V, t int, perThread [][]bucketInsert, inRound *frontier.Bitmap,
	buckets *[][]graph.V, ensure func(int)) []graph.V {

	bucketOf := func(d float64) int { return int(d / delta) }
	sched.ParallelFor(len(cur), t, sched.Static, 0, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			v := cur[i]
			dv := atomicx.LoadFloat64(&distBits[v])
			if bucketOf(dv) != b {
				continue
			}
			ws := g.NeighborWeights(v)
			for j, u := range g.Neighbors(v) {
				we := 1.0
				if ws != nil {
					we = float64(ws[j])
				}
				nd := dv + we
				if lowered, _ := atomicx.MinFloat64(&distBits[u], nd); lowered {
					perThread[w] = append(perThread[w], bucketInsert{bucketOf(nd), u})
				}
			}
		}
	})
	inRound.Clear()
	next := cur[:0:0]
	for w := 0; w < t; w++ {
		for _, in := range perThread[w] {
			nb := bucketOf(atomicx.LoadFloat64(&distBits[in.v]))
			if nb < b {
				continue
			}
			if nb == b {
				if inRound.Set(in.v) {
					next = append(next, in.v)
				}
				continue
			}
			ensure(nb)
			(*buckets)[nb] = append((*buckets)[nb], in.v)
		}
		perThread[w] = perThread[w][:0]
	}
	return next
}

// adaptivePullRound relaxes by scanning unsettled vertices for bucket
// members (no write conflicts) and returns every vertex whose distance
// improved, regardless of which bucket it landed in.
func adaptivePullRound(g *graph.CSR, distBits []uint64, delta float64, b int,
	cur []graph.V, t int) []graph.V {

	n := g.N()
	bucketOf := func(d float64) int {
		if math.IsInf(d, 1) {
			return math.MaxInt32
		}
		return int(d / delta)
	}
	member := frontier.NewBitmap(n)
	for _, v := range cur {
		member.SetSeq(v)
	}
	out := frontier.NewPerThread(t)
	sched.ParallelFor(n, t, sched.Static, 0, func(w, lo, hi int) {
		for vi := lo; vi < hi; vi++ {
			v := graph.V(vi)
			dv := atomicx.LoadFloat64(&distBits[v])
			if dv <= float64(b)*delta {
				continue
			}
			ws := g.NeighborWeights(v)
			best := dv
			for j, u := range g.Neighbors(v) {
				if !member.Get(u) {
					continue
				}
				du := atomicx.LoadFloat64(&distBits[u])
				if bucketOf(du) != b {
					continue
				}
				we := 1.0
				if ws != nil {
					we = float64(ws[j])
				}
				if nd := du + we; nd < best {
					best = nd
				}
			}
			if best < dv {
				atomicx.StoreFloat64(&distBits[v], best)
				out.Add(w, v)
			}
		}
	})
	var merged frontier.Sparse
	out.Merge(&merged)
	return append([]graph.V(nil), merged.Vertices()...)
}
