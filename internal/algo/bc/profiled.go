package bc

import (
	"time"

	"pushpull/internal/algo/bfs"
	"pushpull/internal/core"
	"pushpull/internal/graph"
	"pushpull/internal/memsim"
)

// Code regions for instruction-TLB modeling.
const (
	regionForward = iota
	regionSuccCount
	regionBackward
)

// RunProfiled executes Brandes betweenness centrality deterministically
// under the probes, reporting events at the R/W-marked points of
// Algorithm 5. Events are charged to the probe of the vertex's owner under
// a 1D block partition over prof.Threads, mirroring the ownership map of
// §2.2.
//
// The direction asymmetry follows §4.5: phase 1 pushing charges an integer
// fetch-and-add per multiplicity combine, phase 2 pushing conflicts on
// *floats* — atomics do not apply, so each dependency combine costs a lock.
// Pulling charges only reads plus plain owner-side writes in both phases.
// The returned scores match the plain Run within float tolerance (the
// accumulation order differs from a parallel run).
func RunProfiled(g *graph.CSR, opt Options, prof core.Profile, space *memsim.AddressSpace) (*Result, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	n := g.N()
	res := &Result{BC: make([]float64, n)}
	if n == 0 {
		return res, nil
	}
	if space == nil {
		space = &memsim.AddressSpace{}
	}
	offA := space.NewArray(n+1, 8)
	adjA := space.NewArray(int(g.M()), 4)
	sigmaA := space.NewArray(n, 8)
	levelA := space.NewArray(n, 4)
	deltaA := space.NewArray(n, 8)
	readyA := space.NewArray(n, 4)

	sources := opt.Sources
	if sources == nil {
		sources = make([]graph.V, n)
		for i := range sources {
			sources[i] = graph.V(i)
		}
	}
	push := opt.Mode != bfs.ForcePull // Auto defaults to push, as in Run

	part := graph.NewPartition(n, prof.Threads)
	probeOf := func(v graph.V) int { return part.Owner(v) }

	sigma := make([]int64, n)
	level := make([]int32, n)
	delta := make([]float64, n)
	byLevel := make([][]graph.V, 0, 32)

	for _, s := range sources {
		// ----- Phase 1: forward traversal with ⇐pred -----
		t0 := time.Now()
		for i := 0; i < n; i++ {
			sigma[i] = 0
			level[i] = -1
		}
		sigma[s] = 1
		level[s] = 0
		byLevel = append(byLevel[:0], []graph.V{s})
		for depth := 0; ; depth++ {
			cur := byLevel[depth]
			if len(cur) == 0 {
				byLevel = byLevel[:depth]
				break
			}
			var next []graph.V
			if push {
				// Frontier vertices push σ into their unsettled neighbors.
				for _, v := range cur {
					p := prof.Probes[probeOf(v)]
					p.Exec(regionForward)
					p.Read(offA.Addr(int64(v)), 8)
					p.Read(sigmaA.Addr(int64(v)), 8)
					offs := g.Offsets[v]
					for j, u := range g.Neighbors(v) {
						p.Branch(true)
						p.Read(adjA.Addr(offs+int64(j)), 4)
						p.Read(levelA.Addr(int64(u)), 4)
						if level[u] != -1 && level[u] != int32(depth+1) {
							continue
						}
						p.Atomic(sigmaA.Addr(int64(u)), 8) // FAA on ints (§4.5)
						p.Jump()
						sigma[u] += sigma[v]
						if level[u] == -1 {
							level[u] = int32(depth + 1)
							p.Write(levelA.Addr(int64(u)), 4)
							next = append(next, u)
						}
					}
				}
			} else {
				// Every unsettled vertex scans for frontier neighbors and
				// accumulates σ privately — no synchronization (§3.8).
				for w := 0; w < prof.Threads; w++ {
					p := prof.Probes[w]
					p.Exec(regionForward)
					lo, hi := part.Range(w)
					for v := lo; v < hi; v++ {
						p.Read(levelA.Addr(int64(v)), 4)
						p.Branch(level[v] != -1)
						if level[v] != -1 {
							continue
						}
						p.Read(offA.Addr(int64(v)), 8)
						offs := g.Offsets[v]
						found := false
						for j, u := range g.Neighbors(v) {
							p.Branch(true)
							p.Read(adjA.Addr(offs+int64(j)), 4)
							p.Read(levelA.Addr(int64(u)), 4)
							if level[u] != int32(depth) {
								continue
							}
							p.Read(sigmaA.Addr(int64(u)), 8)
							p.Write(sigmaA.Addr(int64(v)), 8) // private
							sigma[v] += sigma[u]
							found = true
						}
						if found {
							level[v] = int32(depth + 1)
							p.Write(levelA.Addr(int64(v)), 4)
							next = append(next, v)
						}
					}
				}
			}
			byLevel = append(byLevel, next)
		}
		res.Phase1 += time.Since(t0)

		// ----- Phase 2: backward accumulation with ⇐part over G′ -----
		t1 := time.Now()
		for i := 0; i < n; i++ {
			delta[i] = 0
		}
		// Successor counts seed the ready counters of Algorithm 5 (charged
		// as the reads the plain runs pay to build them).
		for w := 0; w < prof.Threads; w++ {
			p := prof.Probes[w]
			p.Exec(regionSuccCount)
			lo, hi := part.Range(w)
			for v := lo; v < hi; v++ {
				p.Read(levelA.Addr(int64(v)), 4)
				if level[v] < 0 {
					continue
				}
				p.Read(offA.Addr(int64(v)), 8)
				offs := g.Offsets[v]
				for j, u := range g.Neighbors(v) {
					p.Branch(true)
					p.Read(adjA.Addr(offs+int64(j)), 4)
					p.Read(levelA.Addr(int64(u)), 4)
				}
				p.Write(readyA.Addr(int64(v)), 4)
				p.Write(deltaA.Addr(int64(v)), 8)
			}
		}
		// Walk the shortest-path DAG backwards, deepest level first.
		for depth := len(byLevel) - 1; depth > 0; depth-- {
			for _, w := range byLevel[depth] {
				// w contributes σ(v)/σ(w)·(1+δ(w)) to every predecessor v.
				pw := prof.Probes[probeOf(w)]
				pw.Exec(regionBackward)
				pw.Read(offA.Addr(int64(w)), 8)
				pw.Read(sigmaA.Addr(int64(w)), 8)
				pw.Read(deltaA.Addr(int64(w)), 8)
				offs := g.Offsets[w]
				for j, v := range g.Neighbors(w) {
					pw.Branch(true)
					pw.Read(adjA.Addr(offs+int64(j)), 4)
					pw.Read(levelA.Addr(int64(v)), 4)
					if level[v] < 0 || level[v] != int32(depth-1) {
						continue
					}
					c := float64(sigma[v]) / float64(sigma[w]) * (1 + delta[w])
					if push {
						// w (frontier) pushes into predecessor v: conflicting
						// float adds, the lock-requiring case of §4.5.
						pw.Read(sigmaA.Addr(int64(v)), 8)
						pw.Lock(deltaA.Addr(int64(v)))
						pw.Write(deltaA.Addr(int64(v)), 8)
					} else {
						// v pulls from its successor w: v is owned, plain
						// write; charged to v's owner.
						pv := prof.Probes[probeOf(v)]
						pv.Read(sigmaA.Addr(int64(v)), 8)
						pv.Read(deltaA.Addr(int64(v)), 8)
						pv.Write(deltaA.Addr(int64(v)), 8)
					}
					delta[v] += c
				}
			}
		}
		res.Phase2 += time.Since(t1)

		for v := 0; v < n; v++ {
			if graph.V(v) != s && level[v] >= 0 {
				res.BC[v] += delta[v]
			}
		}
	}
	res.Stats.Record(res.Phase1 + res.Phase2)
	return res, nil
}
