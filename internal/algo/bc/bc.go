// Package bc implements push- and pull-based Brandes betweenness
// centrality (paper §3.5 and Algorithm 5), reusing the generalized BFS
// engine of internal/algo/bfs for both phases exactly as the paper
// constructs them:
//
//   - Phase 1 traverses from each source with the ⇐pred operator, counting
//     shortest-path multiplicities σ. Pushing needs an integer
//     fetch-and-add per conflicting update; pulling accumulates privately.
//   - Phase 2 walks the shortest-path DAG G′ backwards from its leaves
//     with the ⇐part operator, accumulating dependencies δ. Ready counters
//     hold each vertex's successor count so it activates only after all
//     successors contributed. Pushing now conflicts on *floats* — the case
//     the paper singles out (§4.5): atomics do not apply, so each update
//     costs a lock (we use the equivalent CAS retry loop).
//
// The per-phase wall times reported by Run are the series of Figure 5
// (first BFS, second BFS, total).
package bc

import (
	"math"
	"sync/atomic"
	"time"

	"pushpull/internal/algo/bfs"
	"pushpull/internal/atomicx"
	"pushpull/internal/core"
	"pushpull/internal/graph"
)

// Options configures a BC run.
type Options struct {
	core.Options
	// Sources lists the source vertices; nil means all vertices (exact BC).
	Sources []graph.V
	// Mode forces push or pull for both phases.
	Mode bfs.Mode
}

// Result carries centrality scores and per-phase timings.
type Result struct {
	BC     []float64
	Phase1 time.Duration // forward traversals (multiplicity counting)
	Phase2 time.Duration // backward accumulation
	Stats  core.RunStats
}

// phase1Ops implements ⇐pred: σ(w) ⇐ σ(w) + σ(v), plus level recording.
type phase1Ops struct {
	sigma []int64
	level []int32
}

func (o *phase1Ops) PushCombine(w, v graph.V) {
	atomic.AddInt64(&o.sigma[w], atomic.LoadInt64(&o.sigma[v])) // FAA on ints (§4.5)
	// All combining parents share one level; the first CAS wins.
	atomic.CompareAndSwapInt32(&o.level[w], -1, atomic.LoadInt32(&o.level[v])+1)
}

func (o *phase1Ops) PullCombine(v, w graph.V) {
	o.sigma[v] += o.sigma[w] //pushpull:allow atomicmix pull rounds write v from its owner only; atomics are the push rounds' (§4.5 phase separation)
	if o.level[v] == -1 {    //pushpull:allow atomicmix pull rounds write v from its owner only; atomics are the push rounds' (§4.5 phase separation)
		o.level[v] = o.level[w] + 1 //pushpull:allow atomicmix pull rounds write v from its owner only; atomics are the push rounds' (§4.5 phase separation)
	}
}

// phase2Ops implements ⇐part: δ(v) ⇐ δ(v) + σ(v)/σ(w)·(1+δ(w)).
type phase2Ops struct {
	sigma []int64
	delta []uint64 // float64 bits
}

func (o *phase2Ops) contribution(v, w graph.V) float64 {
	return float64(o.sigma[v]) / float64(o.sigma[w]) * (1 + atomicx.LoadFloat64(&o.delta[w]))
}

func (o *phase2Ops) PushCombine(v, w graph.V) {
	// w (frontier) pushes into its predecessor v: conflicting float adds,
	// the lock-requiring case of §4.5.
	atomicx.AddFloat64(&o.delta[v], o.contribution(v, w))
}

func (o *phase2Ops) PullCombine(v, w graph.V) {
	// v pulls from its successor w: v is owned by the caller, plain write.
	atomicx.StoreFloat64(&o.delta[v], atomicx.LoadFloat64(&o.delta[v])+o.contribution(v, w))
}

// Run computes betweenness centrality over the given sources.
func Run(g *graph.CSR, opt Options) *Result {
	n := g.N()
	res := &Result{BC: make([]float64, n)}
	if n == 0 {
		return res
	}
	sources := opt.Sources
	if sources == nil {
		sources = make([]graph.V, n)
		for i := range sources {
			sources[i] = graph.V(i)
		}
	}
	if opt.Mode == bfs.Auto {
		// BC phases are direction-forced experiments in the paper; Auto
		// defaults to push for a defined baseline.
		opt.Mode = bfs.ForcePush
	}

	sigma := make([]int64, n)
	level := make([]int32, n)
	delta := make([]uint64, n)
	ready := make([]int32, n)

	for _, s := range sources {
		if opt.Canceled() {
			res.Stats.Canceled = true
			break
		}
		// ----- Phase 1: forward BFS with ⇐pred -----
		t0 := time.Now()
		for i := 0; i < n; i++ {
			sigma[i] = 0
			level[i] = -1
			ready[i] = 1
		}
		sigma[s] = 1
		level[s] = 0
		ready[s] = 0
		ops1 := &phase1Ops{sigma: sigma, level: level}
		cfg1 := &bfs.Config{Options: opt.Options, Ready: ready, Mode: opt.Mode}
		bfs.Run(g, cfg1, ops1)
		res.Phase1 += time.Since(t0)

		// ----- Phase 2: backward accumulation with ⇐part over G′ -----
		t1 := time.Now()
		isSucc := func(w, v graph.V) bool {
			// Edge w→v in G′: v is a predecessor of w in the BFS DAG.
			return level[v] >= 0 && level[w] == level[v]+1
		}
		for i := 0; i < n; i++ {
			delta[i] = 0
			if level[i] < 0 {
				ready[i] = math.MaxInt32 / 2 // unreached: never activates
				continue
			}
			succs := int32(0)
			for _, u := range g.Neighbors(graph.V(i)) {
				if isSucc(u, graph.V(i)) {
					succs++
				}
			}
			ready[i] = succs // leaves (0 successors) seed the frontier
		}
		ops2 := &phase2Ops{sigma: sigma, delta: delta}
		cfg2 := &bfs.Config{Options: opt.Options, Ready: ready, Mode: opt.Mode,
			Filter: func(from, to graph.V) bool { return isSucc(from, to) }}
		bfs.Run(g, cfg2, ops2)
		res.Phase2 += time.Since(t1)

		for v := 0; v < n; v++ {
			if graph.V(v) != s && level[v] >= 0 {
				res.BC[v] += atomicx.LoadFloat64(&delta[v])
			}
		}
	}
	res.Stats.Record(res.Phase1 + res.Phase2)
	return res
}

// Sequential computes reference BC scores with the textbook Brandes
// algorithm (stack + predecessor lists).
func Sequential(g *graph.CSR, sources []graph.V) []float64 {
	n := g.N()
	bcv := make([]float64, n)
	if n == 0 {
		return bcv
	}
	if sources == nil {
		sources = make([]graph.V, n)
		for i := range sources {
			sources[i] = graph.V(i)
		}
	}
	sigma := make([]float64, n)
	dist := make([]int32, n)
	delta := make([]float64, n)
	preds := make([][]graph.V, n)
	stack := make([]graph.V, 0, n)
	queue := make([]graph.V, 0, n)

	for _, s := range sources {
		for i := 0; i < n; i++ {
			sigma[i] = 0
			dist[i] = -1
			delta[i] = 0
			preds[i] = preds[i][:0]
		}
		sigma[s] = 1
		dist[s] = 0
		stack = stack[:0]
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			stack = append(stack, v)
			for _, w := range g.Neighbors(v) {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
				if dist[w] == dist[v]+1 {
					sigma[w] += sigma[v]
					preds[w] = append(preds[w], v)
				}
			}
		}
		for i := len(stack) - 1; i >= 0; i-- {
			w := stack[i]
			for _, v := range preds[w] {
				delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
			}
			if w != s {
				bcv[w] += delta[w]
			}
		}
	}
	return bcv
}

// MaxDiff returns the largest absolute difference between score vectors.
func MaxDiff(a, b []float64) float64 {
	max := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > max {
			max = d
		}
	}
	return max
}
