package bc

import (
	"testing"
	"testing/quick"

	"pushpull/internal/algo/bfs"
	"pushpull/internal/gen"
	"pushpull/internal/graph"
)

const tol = 1e-7

func TestPathCentrality(t *testing.T) {
	// On a path 0—1—2—3—4, centrality of interior vertices is known:
	// bc(v) counts shortest paths through v, both directions:
	// bc(1) = bc(3) = 2·3 = 6, bc(2) = 2·4 = 8, endpoints 0.
	g := gen.Path(5)
	want := []float64{0, 6, 8, 6, 0}
	for _, mode := range []bfs.Mode{bfs.ForcePush, bfs.ForcePull} {
		res := Run(g, Options{Mode: mode})
		if d := MaxDiff(res.BC, want); d > tol {
			t.Fatalf("mode %v: bc = %v, want %v", mode, res.BC, want)
		}
	}
}

func TestStarCentrality(t *testing.T) {
	// Star with center 0 and k=6 leaves: every leaf pair's shortest path
	// passes the center: bc(0) = k(k-1) = 30 (ordered pairs), leaves 0.
	g := gen.Star(7)
	for _, mode := range []bfs.Mode{bfs.ForcePush, bfs.ForcePull} {
		res := Run(g, Options{Mode: mode})
		if res.BC[0] != 30 {
			t.Fatalf("mode %v: center bc = %v, want 30", mode, res.BC[0])
		}
		for v := 1; v < 7; v++ {
			if res.BC[v] != 0 {
				t.Fatalf("mode %v: leaf bc = %v", mode, res.BC[v])
			}
		}
	}
}

func TestCycleCentralityUniform(t *testing.T) {
	// Symmetry: all vertices of a cycle share the same centrality.
	g := gen.Ring(9)
	res := Run(g, Options{Mode: bfs.ForcePush})
	for v := 1; v < 9; v++ {
		if diff := res.BC[v] - res.BC[0]; diff > tol || diff < -tol {
			t.Fatalf("bc[%d] = %v != bc[0] = %v", v, res.BC[v], res.BC[0])
		}
	}
}

func TestMatchesSequentialOnRMAT(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(8, 6, 33))
	if err != nil {
		t.Fatal(err)
	}
	want := Sequential(g, nil)
	for _, mode := range []bfs.Mode{bfs.ForcePush, bfs.ForcePull} {
		opt := Options{Mode: mode}
		opt.Threads = 4
		res := Run(g, opt)
		if d := MaxDiff(res.BC, want); d > tol {
			t.Fatalf("mode %v: max diff %g", mode, d)
		}
		if res.Phase1 <= 0 || res.Phase2 <= 0 {
			t.Fatalf("mode %v: phase timings empty", mode)
		}
	}
}

func TestSampledSources(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(8, 6, 7))
	if err != nil {
		t.Fatal(err)
	}
	sources := []graph.V{0, 5, 17}
	want := Sequential(g, sources)
	res := Run(g, Options{Sources: sources, Mode: bfs.ForcePull})
	if d := MaxDiff(res.BC, want); d > tol {
		t.Fatalf("sampled: max diff %g", d)
	}
}

func TestDisconnectedGraph(t *testing.T) {
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	g := b.MustBuild()
	want := Sequential(g, nil)
	for _, mode := range []bfs.Mode{bfs.ForcePush, bfs.ForcePull} {
		res := Run(g, Options{Mode: mode})
		if d := MaxDiff(res.BC, want); d > tol {
			t.Fatalf("mode %v: %v vs %v", mode, res.BC, want)
		}
		// Middle vertices of each path carry bc 2.
		if res.BC[1] != 2 || res.BC[4] != 2 {
			t.Fatalf("mode %v: bc = %v", mode, res.BC)
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(0).MustBuild()
	res := Run(g, Options{})
	if len(res.BC) != 0 {
		t.Fatal("empty graph scores")
	}
}

func TestAutoModeDefaultsToPush(t *testing.T) {
	g := gen.Path(4)
	res := Run(g, Options{Mode: bfs.Auto})
	want := Sequential(g, nil)
	if d := MaxDiff(res.BC, want); d > tol {
		t.Fatalf("auto mode: %v vs %v", res.BC, want)
	}
}

// Property: push and pull BC agree with sequential Brandes on random
// graphs.
func TestVariantsAgreeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g, err := gen.ErdosRenyi(60, 3, seed)
		if err != nil {
			return false
		}
		want := Sequential(g, nil)
		for _, mode := range []bfs.Mode{bfs.ForcePush, bfs.ForcePull} {
			opt := Options{Mode: mode}
			opt.Threads = 3
			res := Run(g, opt)
			if MaxDiff(res.BC, want) > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBCPush(b *testing.B) {
	g, _ := gen.RMAT(gen.DefaultRMAT(9, 6, 1))
	sources := []graph.V{0, 1, 2, 3}
	opt := Options{Sources: sources, Mode: bfs.ForcePush}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(g, opt)
	}
}

func BenchmarkBCPull(b *testing.B) {
	g, _ := gen.RMAT(gen.DefaultRMAT(9, 6, 1))
	sources := []graph.V{0, 1, 2, 3}
	opt := Options{Sources: sources, Mode: bfs.ForcePull}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(g, opt)
	}
}
