package pr

import (
	"testing"

	"pushpull/internal/core"
	"pushpull/internal/graph"
)

// seq pins kernels to one inline worker for allocation measurements.
func seq() core.Options { return core.Options{Threads: 1} }

// Steady-state zero-allocation proof: running more iterations must not
// allocate more. Each kernel's setup (rank arrays, the reserved
// per-iteration stats) is a fixed cost; the round loop itself — hoisted
// phase closures, pre-sized stats — must stay off the allocator. The
// kernels run at Threads 1 so ParallelFor executes inline and goroutine
// spawning does not drown the measurement.
func TestKernelSteadyStateAllocs(t *testing.T) {
	g := testGraph(t)
	dg := directedFixture(t, 600, 4000, 11)
	hs := graph.BuildHubSplit(g, 64)
	dhs := graph.BuildHubSplit(dg.In, 32)
	kernels := map[string]func(iters int){
		"push":          func(iters int) { Push(g, Options{Options: seq(), Iterations: iters}) },
		"pull":          func(iters int) { Pull(g, Options{Options: seq(), Iterations: iters}) },
		"pull-hub":      func(iters int) { PullHub(g, hs, Options{Options: seq(), Iterations: iters}) },
		"push-directed": func(iters int) { PushDirected(dg, Options{Options: seq(), Iterations: iters}) },
		"pull-directed": func(iters int) { PullDirected(dg, Options{Options: seq(), Iterations: iters}) },
		"pull-directed-hub": func(iters int) {
			PullDirectedHub(dg, dhs, Options{Options: seq(), Iterations: iters})
		},
	}
	for name, run := range kernels {
		short := testing.AllocsPerRun(3, func() { run(8) })
		long := testing.AllocsPerRun(3, func() { run(40) })
		if long != short {
			t.Errorf("%s: steady-state iterations allocate: %.0f allocs at 8 iters vs %.0f at 40", name, short, long)
		}
	}
}
