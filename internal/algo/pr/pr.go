// Package pr implements push- and pull-based PageRank (paper §3.1 and
// Algorithm 1) plus the Partition-Awareness acceleration of §5 (Algorithm
// 8).
//
// In the push variant, the thread owning v adds f·pr[v]/d(v) to new_pr[u]
// for every neighbor u — a write conflict per edge, resolved with an atomic
// CAS loop because CPUs have no float atomics (§4.1 charges these as
// O(Lm) synchronization events). In the pull variant, the thread owning v
// reads pr[u] and d(u) of every neighbor and accumulates privately — no
// synchronization, but two random reads per edge instead of one random
// write, which is exactly the cache-miss trade-off Table 1 reports.
package pr

import (
	"math"
	"time"

	"pushpull/internal/atomicx"
	"pushpull/internal/core"
	"pushpull/internal/graph"
	"pushpull/internal/sched"
)

// DefaultDamping is the damp factor f used when none is set explicitly.
const DefaultDamping = 0.85

// DefaultIterations is the power-iteration count L used when none is set.
const DefaultIterations = 20

// Options configures a PageRank run.
type Options struct {
	core.Options
	// Iterations is the power-iteration count L (default 20).
	Iterations int
	// Damping is the damp factor f. A zero value left by struct literal
	// means "use DefaultDamping"; to request a genuine zero-damping run
	// (pure teleport distribution), call SetDamping(0) instead of
	// assigning the field.
	Damping float64
	// dampingSet distinguishes an explicit SetDamping(0) from the zero
	// value of the struct, so zero damping is expressible.
	dampingSet bool
}

// SetDamping pins the damp factor explicitly, including zero; defaults()
// will not rewrite a value set through here.
func (o *Options) SetDamping(f float64) {
	o.Damping = f
	o.dampingSet = true
}

func (o *Options) defaults() {
	if o.Iterations <= 0 {
		o.Iterations = DefaultIterations
	}
	if !o.dampingSet && o.Damping == 0 {
		o.Damping = DefaultDamping
	}
}

// Sequential computes the reference ranks with a single thread; push and
// pull variants are cross-validated against it.
func Sequential(g *graph.CSR, opt Options) []float64 {
	opt.defaults()
	n := g.N()
	pr := make([]float64, n)
	next := make([]float64, n)
	if n == 0 {
		return pr
	}
	initRank := 1 / float64(n)
	for i := range pr {
		pr[i] = initRank
	}
	base := (1 - opt.Damping) / float64(n)
	for l := 0; l < opt.Iterations; l++ {
		for i := range next {
			next[i] = base
		}
		for v := graph.V(0); v < g.NumV; v++ {
			d := g.Degree(v)
			if d == 0 {
				continue
			}
			c := opt.Damping * pr[v] / float64(d)
			for _, u := range g.Neighbors(v) {
				next[u] += c
			}
		}
		pr, next = next, pr
	}
	return pr
}

// Push runs the push-based variant: each vertex distributes its rank to its
// neighbors through atomic float adds.
func Push(g *graph.CSR, opt Options) ([]float64, core.RunStats) {
	opt.defaults()
	n := g.N()
	stats := core.RunStats{Direction: core.Push}
	pr := make([]float64, n)
	if n == 0 {
		return pr, stats
	}
	stats.Reserve(opt.Iterations)
	t := sched.Clamp(opt.Threads, n)
	initRank := 1 / float64(n)
	for i := range pr {
		pr[i] = initRank
	}
	nextBits := make([]uint64, n)
	base := (1 - opt.Damping) / float64(n)
	baseBits := math.Float64bits(base)
	// Phase bodies are hoisted out of the round loop: a func literal in
	// the loop would allocate its capture record every iteration, and the
	// steady state must not allocate.
	clearNext := func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			nextBits[i] = baseBits
		}
	}
	scatter := func(w, lo, hi int) {
		for vi := lo; vi < hi; vi++ {
			v := graph.V(vi)
			d := g.Degree(v)
			if d == 0 {
				continue
			}
			c := opt.Damping * pr[v] / float64(d)
			for _, u := range g.Neighbors(v) {
				atomicx.AddFloat64(&nextBits[u], c)
			}
		}
	}
	commit := func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			pr[i] = math.Float64frombits(nextBits[i])
		}
	}
	for l := 0; l < opt.Iterations; l++ {
		if opt.Canceled() {
			stats.Canceled = true
			break
		}
		start := time.Now()
		sched.ParallelFor(n, t, opt.Schedule, 0, clearNext)
		sched.ParallelFor(n, t, opt.Schedule, 0, scatter)
		sched.ParallelFor(n, t, opt.Schedule, 0, commit)
		el := time.Since(start)
		stats.Record(el)
		opt.Tick(l, el)
	}
	return pr, stats
}

// Pull runs the pull-based variant: each vertex gathers f·pr[u]/d(u) from
// its neighbors with no synchronization at all.
func Pull(g *graph.CSR, opt Options) ([]float64, core.RunStats) {
	opt.defaults()
	n := g.N()
	stats := core.RunStats{Direction: core.Pull}
	pr := make([]float64, n)
	if n == 0 {
		return pr, stats
	}
	stats.Reserve(opt.Iterations)
	t := sched.Clamp(opt.Threads, n)
	initRank := 1 / float64(n)
	for i := range pr {
		pr[i] = initRank
	}
	next := make([]float64, n)
	base := (1 - opt.Damping) / float64(n)
	// Hoisted gather body; it captures pr and next by reference, so the
	// per-round swap below stays visible without re-allocating the
	// closure each iteration.
	gather := func(w, lo, hi int) {
		for vi := lo; vi < hi; vi++ {
			v := graph.V(vi)
			sum := 0.0
			for _, u := range g.Neighbors(v) {
				du := g.Degree(u)
				if du == 0 {
					continue
				}
				sum += pr[u] / float64(du)
			}
			next[v] = base + opt.Damping*sum
		}
	}
	for l := 0; l < opt.Iterations; l++ {
		if opt.Canceled() {
			stats.Canceled = true
			break
		}
		start := time.Now()
		sched.ParallelFor(n, t, opt.Schedule, 0, gather)
		pr, next = next, pr
		el := time.Since(start)
		stats.Record(el)
		opt.Tick(l, el)
	}
	return pr, stats
}

// PushPA runs push-based PageRank with the Partition-Awareness strategy
// (Algorithm 8): phase 1 updates same-owner neighbors with plain stores,
// a barrier separates the phases, then phase 2 updates remote neighbors
// with atomics. The number of atomics drops from 2m to the remote-edge
// count of the PA layout.
func PushPA(pa *graph.PAGraph, opt Options) ([]float64, core.RunStats) {
	opt.defaults()
	g := pa.G
	n := g.N()
	stats := core.RunStats{Direction: core.Push}
	pr := make([]float64, n)
	if n == 0 {
		return pr, stats
	}
	stats.Reserve(opt.Iterations)
	t := pa.Part.P
	initRank := 1 / float64(n)
	for i := range pr {
		pr[i] = initRank
	}
	nextBits := make([]uint64, n)
	base := (1 - opt.Damping) / float64(n)
	baseBits := math.Float64bits(base)
	pool := sched.NewPool(t)
	defer pool.Close()
	barrier := sched.NewBarrier(t)
	// Hoisted round body — allocating the closure per round would put the
	// allocator in the steady state.
	round := func(w int) {
		lo, hi := pa.Part.Range(w)
		for i := lo; i < hi; i++ {
			nextBits[i] = baseBits
		}
		barrier.Wait()
		// Phase 1: local updates, no atomics. Only thread w writes
		// vertices owned by w, so plain read-modify-write is safe.
		for v := lo; v < hi; v++ {
			d := g.Degree(v)
			if d == 0 {
				continue
			}
			c := opt.Damping * pr[v] / float64(d)
			for _, u := range pa.Local(v) {
				nextBits[u] = math.Float64bits(math.Float64frombits(nextBits[u]) + c)
			}
		}
		// The lightweight barrier of Algorithm 8, line 10.
		barrier.Wait()
		// Phase 2: remote updates with atomics.
		for v := lo; v < hi; v++ {
			d := g.Degree(v)
			if d == 0 {
				continue
			}
			c := opt.Damping * pr[v] / float64(d)
			for _, u := range pa.Remote(v) {
				atomicx.AddFloat64(&nextBits[u], c)
			}
		}
		barrier.Wait()
		for i := lo; i < hi; i++ {
			pr[i] = math.Float64frombits(nextBits[i])
		}
	}
	for l := 0; l < opt.Iterations; l++ {
		if opt.Canceled() {
			stats.Canceled = true
			break
		}
		start := time.Now()
		pool.Run(round)
		el := time.Since(start)
		stats.Record(el)
		opt.Tick(l, el)
	}
	return pr, stats
}

// MaxDiff returns the maximum absolute element difference between two rank
// vectors — the cross-validation metric.
func MaxDiff(a, b []float64) float64 {
	max := 0.0
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > max {
			max = d
		}
	}
	return max
}

// Sum returns the total rank mass (≈1 for graphs without isolated or
// dangling vertices).
func Sum(a []float64) float64 {
	s := 0.0
	for _, v := range a {
		s += v
	}
	return s
}
