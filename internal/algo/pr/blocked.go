package pr

import (
	"time"

	"pushpull/internal/core"
	"pushpull/internal/graph"
	"pushpull/internal/memsim"
	"pushpull/internal/sched"
)

// Block-sequential pull PageRank over an out-of-core BlockCSR, after
// HybridGraph's BPull: workers walk destination blocks in storage order,
// so the edge traffic the in-memory kernel pays as random DRAM reads
// becomes sequential segment reads the OS can prefetch — page faults
// arrive in file order. Only the O(n) vertex state (ranks, degrees,
// offsets) is resident; the O(m) adjacency streams through per-worker
// cursors. Results match Pull/PullDirected up to floating-point
// reassociation, the same ≤1e-9 contract the hub kernels carry.

// contribDegrees returns the per-vertex degree a neighbor's contribution
// scales by: the out-degree sidecar of a directed file, or the pull-view
// degree of an undirected one, materialized once so the gather pays a
// single indexed read per edge instead of re-deriving from offsets.
func contribDegrees(bg *graph.BlockCSR) []int64 {
	if bg.OutDeg != nil {
		return bg.OutDeg
	}
	n := bg.N()
	deg := make([]int64, n)
	for i := 0; i < n; i++ {
		deg[i] = bg.Offsets[i+1] - bg.Offsets[i]
	}
	return deg
}

// PullBlocked runs pull PageRank over a block-format graph. Parallelism
// is over blocks: a static schedule hands each worker a contiguous block
// range, keeping every worker's I/O sequential within its span.
func PullBlocked(bg *graph.BlockCSR, opt Options) ([]float64, core.RunStats, error) {
	opt.defaults()
	n := bg.N()
	stats := core.RunStats{Direction: core.Pull}
	pr := make([]float64, n)
	if n == 0 {
		return pr, stats, nil
	}
	stats.Reserve(opt.Iterations)
	numBlocks := bg.NumBlocks()
	t := sched.Clamp(opt.Threads, numBlocks)
	initRank := 1 / float64(n)
	for i := range pr {
		pr[i] = initRank
	}
	next := make([]float64, n)
	deg := contribDegrees(bg)
	base := (1 - opt.Damping) / float64(n)
	// Per-worker cursors and error slots, hoisted with the gather body so
	// the steady state allocates nothing (the cursor's fallback buffer
	// grows to the largest segment once, then is reused every round).
	curs := make([]graph.BlockCursor, t)
	errs := make([]error, t)
	gather := func(w, lo, hi int) {
		cur := &curs[w]
		for bi := lo; bi < hi; bi++ {
			if errs[w] != nil {
				return
			}
			if err := bg.Load(bi, cur); err != nil {
				errs[w] = err
				return
			}
			blo, bhi := bg.BlockRange(bi)
			for v := blo; v < bhi; v++ {
				sum := 0.0
				for _, u := range cur.Row(v) {
					du := deg[u]
					if du == 0 {
						continue
					}
					sum += pr[u] / float64(du)
				}
				next[v] = base + opt.Damping*sum
			}
		}
	}
	for l := 0; l < opt.Iterations; l++ {
		if opt.Canceled() {
			stats.Canceled = true
			break
		}
		start := time.Now()
		sched.ParallelFor(numBlocks, t, opt.Schedule, 0, gather)
		for _, err := range errs {
			if err != nil {
				return nil, stats, err
			}
		}
		pr, next = next, pr
		el := time.Since(start)
		stats.Record(el)
		opt.Tick(l, el)
	}
	return pr, stats, nil
}

// blockArrays models the out-of-core state: the resident offset, degree
// and rank arrays plus the streamed adjacency and the small block index
// consulted once per block.
type blockArrays struct {
	off, adj, deg, blockOff, pr, next memsim.Array
}

func modelBlockArrays(bg *graph.BlockCSR, space *memsim.AddressSpace) blockArrays {
	if space == nil {
		space = &memsim.AddressSpace{}
	}
	n := bg.N()
	return blockArrays{
		off:      space.NewArray(n+1, 8),
		adj:      space.NewArray(int(bg.M()), 4),
		deg:      space.NewArray(n, 8),
		blockOff: space.NewArray(bg.NumBlocks()+1, 8),
		pr:       space.NewArray(n, 8),
		next:     space.NewArray(n, 8),
	}
}

// PullBlockedProfiled executes blocked pull PageRank deterministically
// under the probes. The traffic signature it reports is the point of the
// layout: adjacency reads are sequential within a block segment, and the
// only random accesses are the O(n)-resident rank and degree arrays —
// the probe trace shows sequential edge I/O where PullProfiled shows a
// random off-array walk.
func PullBlockedProfiled(bg *graph.BlockCSR, opt Options, prof core.Profile, space *memsim.AddressSpace) ([]float64, error) {
	opt.defaults()
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	n := bg.N()
	a := modelBlockArrays(bg, space)
	pr := make([]float64, n)
	next := make([]float64, n)
	if n == 0 {
		return pr, nil
	}
	for i := range pr {
		pr[i] = 1 / float64(n)
	}
	deg := contribDegrees(bg)
	base := (1 - opt.Damping) / float64(n)
	numBlocks := bg.NumBlocks()
	curs := make([]graph.BlockCursor, prof.Threads)
	errs := make([]error, prof.Threads)
	gatherPhase := func(w, lo, hi int) {
		p := prof.Probes[w]
		p.Exec(regionBlockGather)
		cur := &curs[w]
		for bi := lo; bi < hi; bi++ {
			if errs[w] != nil {
				return
			}
			p.Read(a.blockOff.Addr(int64(bi)), 8)
			if err := bg.Load(bi, cur); err != nil {
				errs[w] = err
				return
			}
			blo, bhi := bg.BlockRange(bi)
			for v := blo; v < bhi; v++ {
				p.Read(a.off.Addr(int64(v)), 8)
				sum := 0.0
				offs := bg.Offsets[v]
				for i, u := range cur.Row(v) {
					p.Branch(true)
					p.Read(a.adj.Addr(offs+int64(i)), 4) // sequential within the segment
					p.Read(a.pr.Addr(int64(u)), 8)       // R: random rank read
					p.Read(a.deg.Addr(int64(u)), 8)      // random degree read
					du := deg[u]
					if du == 0 {
						continue
					}
					sum += pr[u] / float64(du)
				}
				p.Write(a.next.Addr(int64(v)), 8) // private, no conflict
				next[v] = base + opt.Damping*sum
			}
		}
	}
	for l := 0; l < opt.Iterations; l++ {
		iterStart := time.Now()
		sched.SequentialFor(numBlocks, prof.Threads, gatherPhase)
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		pr, next = next, pr
		opt.Tick(l, time.Since(iterStart))
	}
	return pr, nil
}
