package pr

import (
	"time"

	"pushpull/internal/core"
	"pushpull/internal/graph"
	"pushpull/internal/memsim"
	"pushpull/internal/sched"
)

// Hub-cached pull PageRank, after "A New Frontier for Pull-Based Graph
// Processing": the plain pull gather pays two random reads per edge —
// pr[u] and d(u) — and on skewed graphs most of those land on the same
// few high-degree hubs. The hub split assigns those vertices compact slot
// ids, and each iteration refreshes a k-entry contribution cache
// (contrib[s] = pr[hub]/d(hub)) once; the gather then serves every
// hub-prefix edge from the cache-resident array and only chases the
// residual suffix through the full-size state. The per-vertex sum adds
// hub contributions first, then residuals, so ranks match the plain
// kernels up to floating-point reassociation (≤1e-9 in practice), not
// bit-for-bit.

// PullHub runs pull PageRank over an undirected CSR with the hub cache.
// hs must be BuildHubSplit(g, k) for the same g.
func PullHub(g *graph.CSR, hs *graph.HubSplit, opt Options) ([]float64, core.RunStats) {
	opt.defaults()
	n := g.N()
	stats := core.RunStats{Direction: core.Pull}
	pr := make([]float64, n)
	if n == 0 {
		return pr, stats
	}
	stats.Reserve(opt.Iterations)
	t := sched.Clamp(opt.Threads, n)
	initRank := 1 / float64(n)
	for i := range pr {
		pr[i] = initRank
	}
	next := make([]float64, n)
	contrib := make([]float64, hs.K)
	base := (1 - opt.Damping) / float64(n)
	// Hoisted bodies: pr and next are captured by reference so the
	// per-round swap stays visible, and nothing allocates per iteration.
	refresh := func() {
		for s, h := range hs.Hubs {
			d := g.Degree(h)
			if d == 0 {
				contrib[s] = 0
				continue
			}
			contrib[s] = pr[h] / float64(d)
		}
	}
	gather := func(w, lo, hi int) {
		for vi := lo; vi < hi; vi++ {
			v := graph.V(vi)
			sum := 0.0
			for _, s := range hs.HubRow(v) {
				sum += contrib[s] // one sequential cache read, no degree fetch
			}
			for _, u := range hs.ResidualRow(v) {
				du := g.Degree(u)
				if du == 0 {
					continue
				}
				sum += pr[u] / float64(du)
			}
			next[v] = base + opt.Damping*sum
		}
	}
	for l := 0; l < opt.Iterations; l++ {
		if opt.Canceled() {
			stats.Canceled = true
			break
		}
		start := time.Now()
		refresh()
		sched.ParallelFor(n, t, opt.Schedule, 0, gather)
		pr, next = next, pr
		el := time.Since(start)
		stats.Record(el)
		opt.Tick(l, el)
	}
	return pr, stats
}

// PullDirectedHub runs pull directed PageRank with the hub cache. hs must
// be BuildHubSplit(dg.In, k): hubs are the vertices read most often along
// in-edges, and their contribution scales by *out*-degree (§7.3).
func PullDirectedHub(dg *DirectedGraph, hs *graph.HubSplit, opt Options) ([]float64, core.RunStats) {
	opt.defaults()
	n := dg.Out.N()
	stats := core.RunStats{Direction: core.Pull}
	pr := make([]float64, n)
	if n == 0 {
		return pr, stats
	}
	stats.Reserve(opt.Iterations)
	t := sched.Clamp(opt.Threads, n)
	for i := range pr {
		pr[i] = 1 / float64(n)
	}
	next := make([]float64, n)
	contrib := make([]float64, hs.K)
	base := (1 - opt.Damping) / float64(n)
	refresh := func() {
		for s, h := range hs.Hubs {
			d := dg.Out.Degree(h)
			if d == 0 {
				contrib[s] = 0
				continue
			}
			contrib[s] = pr[h] / float64(d)
		}
	}
	gather := func(w, lo, hi int) {
		for vi := lo; vi < hi; vi++ {
			v := graph.V(vi)
			sum := 0.0
			for _, s := range hs.HubRow(v) {
				sum += contrib[s]
			}
			for _, u := range hs.ResidualRow(v) {
				du := dg.Out.Degree(u)
				if du == 0 {
					continue
				}
				sum += pr[u] / float64(du)
			}
			next[v] = base + opt.Damping*sum
		}
	}
	for l := 0; l < opt.Iterations; l++ {
		if opt.Canceled() {
			stats.Canceled = true
			break
		}
		start := time.Now()
		refresh()
		sched.ParallelFor(n, t, opt.Schedule, 0, gather)
		pr, next = next, pr
		el := time.Since(start)
		stats.Record(el)
		opt.Tick(l, el)
	}
	return pr, stats
}

// hubArrays models the hub split's extra state: the contribution cache,
// the per-row split points, and the reordered adjacency (which replaces
// the plain CSR adjacency in the gather's traffic).
type hubArrays struct {
	off, adj, hubEnd, contrib, pr, next memsim.Array
}

func modelHubArrays(n int, m int, k int, space *memsim.AddressSpace) hubArrays {
	if space == nil {
		space = &memsim.AddressSpace{}
	}
	return hubArrays{
		off:     space.NewArray(n+1, 8),
		adj:     space.NewArray(m, 4),
		hubEnd:  space.NewArray(n, 8),
		contrib: space.NewArray(k, 8),
		pr:      space.NewArray(n, 8),
		next:    space.NewArray(n, 8),
	}
}

// PullHubProfiled executes hub-cached pull PageRank deterministically
// under the probes. The hub prefix charges one sequential adj read plus
// one read into the k-entry cache per edge — no random rank or degree
// fetch — which is exactly the traffic reduction the optimization claims;
// the residual suffix pays the plain pull costs.
func PullHubProfiled(g *graph.CSR, hs *graph.HubSplit, opt Options, prof core.Profile, space *memsim.AddressSpace) ([]float64, error) {
	opt.defaults()
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	n := g.N()
	a := modelHubArrays(n, int(g.M()), hs.K, space)
	pr := make([]float64, n)
	next := make([]float64, n)
	if n == 0 {
		return pr, nil
	}
	for i := range pr {
		pr[i] = 1 / float64(n)
	}
	contrib := make([]float64, hs.K)
	base := (1 - opt.Damping) / float64(n)
	refreshPhase := func(w, lo, hi int) {
		p := prof.Probes[w]
		p.Exec(regionHubRefresh)
		if w != 0 {
			return // the k-entry refresh is a single-thread prologue
		}
		for s, h := range hs.Hubs {
			p.Read(a.pr.Addr(int64(h)), 8)
			p.Read(a.off.Addr(int64(h)), 8)
			d := g.Degree(h)
			p.Branch(d == 0)
			if d == 0 {
				contrib[s] = 0
			} else {
				contrib[s] = pr[h] / float64(d)
			}
			p.Write(a.contrib.Addr(int64(s)), 8)
		}
	}
	gatherPhase := func(w, lo, hi int) {
		p := prof.Probes[w]
		p.Exec(regionHubGather)
		for vi := lo; vi < hi; vi++ {
			v := graph.V(vi)
			p.Read(a.off.Addr(int64(vi)), 8)
			p.Read(a.hubEnd.Addr(int64(vi)), 8)
			sum := 0.0
			offs := g.Offsets[v]
			for i, s := range hs.HubRow(v) {
				p.Branch(true)                       // loop condition
				p.Read(a.adj.Addr(offs+int64(i)), 4) // sequential adj read
				p.Read(a.contrib.Addr(int64(s)), 8)  // cache-resident contribution
				sum += contrib[s]
			}
			resBase := hs.HubEnd[v]
			for i, u := range hs.ResidualRow(v) {
				p.Branch(true)
				p.Read(a.adj.Addr(resBase+int64(i)), 4) // sequential adj read
				p.Read(a.pr.Addr(int64(u)), 8)          // R: random rank read
				p.Read(a.off.Addr(int64(u)), 8)         // random degree read
				du := g.Degree(u)
				if du == 0 {
					continue
				}
				sum += pr[u] / float64(du)
			}
			p.Write(a.next.Addr(int64(vi)), 8) // private, no conflict
			next[vi] = base + opt.Damping*sum
		}
	}
	for l := 0; l < opt.Iterations; l++ {
		iterStart := time.Now()
		sched.SequentialFor(n, prof.Threads, refreshPhase)
		sched.SequentialFor(n, prof.Threads, gatherPhase)
		pr, next = next, pr
		opt.Tick(l, time.Since(iterStart))
	}
	return pr, nil
}

// PullDirectedHubProfiled executes hub-cached directed pull PageRank under
// the probes; hs must be built on dg.In, contributions scale by the
// out-degree of the hub.
func PullDirectedHubProfiled(dg *DirectedGraph, hs *graph.HubSplit, opt Options, prof core.Profile, space *memsim.AddressSpace) ([]float64, error) {
	opt.defaults()
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	n := dg.Out.N()
	da := modelDirectedArrays(dg, space)
	var sp *memsim.AddressSpace
	if space != nil {
		sp = space
	} else {
		sp = &memsim.AddressSpace{}
	}
	hubEndA := sp.NewArray(n, 8)
	contribA := sp.NewArray(hs.K, 8)
	pr := make([]float64, n)
	next := make([]float64, n)
	if n == 0 {
		return pr, nil
	}
	for i := range pr {
		pr[i] = 1 / float64(n)
	}
	contrib := make([]float64, hs.K)
	base := (1 - opt.Damping) / float64(n)
	refreshPhase := func(w, lo, hi int) {
		p := prof.Probes[w]
		p.Exec(regionHubRefresh)
		if w != 0 {
			return
		}
		for s, h := range hs.Hubs {
			p.Read(da.pr.Addr(int64(h)), 8)
			p.Read(da.outOff.Addr(int64(h)), 8)
			d := dg.Out.Degree(h)
			p.Branch(d == 0)
			if d == 0 {
				contrib[s] = 0
			} else {
				contrib[s] = pr[h] / float64(d)
			}
			p.Write(contribA.Addr(int64(s)), 8)
		}
	}
	gatherPhase := func(w, lo, hi int) {
		p := prof.Probes[w]
		p.Exec(regionHubGather)
		for vi := lo; vi < hi; vi++ {
			v := graph.V(vi)
			p.Read(da.inOff.Addr(int64(vi)), 8)
			p.Read(hubEndA.Addr(int64(vi)), 8)
			sum := 0.0
			offs := dg.In.Offsets[v]
			for i, s := range hs.HubRow(v) {
				p.Branch(true)
				p.Read(da.inAdj.Addr(offs+int64(i)), 4)
				p.Read(contribA.Addr(int64(s)), 8)
				sum += contrib[s]
			}
			resBase := hs.HubEnd[v]
			for i, u := range hs.ResidualRow(v) {
				p.Branch(true)
				p.Read(da.inAdj.Addr(resBase+int64(i)), 4)
				p.Read(da.pr.Addr(int64(u)), 8)
				p.Read(da.outOff.Addr(int64(u)), 8)
				du := dg.Out.Degree(u)
				if du == 0 {
					continue
				}
				sum += pr[u] / float64(du)
			}
			p.Write(da.next.Addr(int64(vi)), 8)
			next[vi] = base + opt.Damping*sum
		}
	}
	for l := 0; l < opt.Iterations; l++ {
		iterStart := time.Now()
		sched.SequentialFor(n, prof.Threads, refreshPhase)
		sched.SequentialFor(n, prof.Threads, gatherPhase)
		pr, next = next, pr
		opt.Tick(l, time.Since(iterStart))
	}
	return pr, nil
}
