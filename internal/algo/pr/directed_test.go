package pr

import (
	"math"
	"testing"
	"testing/quick"

	"pushpull/internal/core"
	"pushpull/internal/counters"
	"pushpull/internal/graph"
	"pushpull/internal/rng"
)

// directedFixture builds a small DAG-ish directed graph.
func directedFixture(t testing.TB, n int, edges int, seed uint64) *DirectedGraph {
	t.Helper()
	r := rng.New(seed)
	b := graph.NewBuilder(n).Directed()
	for i := 0; i < edges; i++ {
		b.AddEdge(graph.V(r.Intn(n)), graph.V(r.Intn(n)))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return NewDirected(g)
}

func TestDirectedPushPullAgree(t *testing.T) {
	dg := directedFixture(t, 500, 3000, 17)
	opt := Options{Iterations: 15}
	opt.Threads = 4
	want := SequentialDirected(dg, opt)
	push, sPush := PushDirected(dg, opt)
	pull, sPull := PullDirected(dg, opt)
	if d := MaxDiff(push, want); d > tol {
		t.Fatalf("directed push diff %g", d)
	}
	if d := MaxDiff(pull, want); d > tol {
		t.Fatalf("directed pull diff %g", d)
	}
	if sPush.Iterations != 15 || sPull.Iterations != 15 {
		t.Fatal("iteration bookkeeping wrong")
	}
}

func TestDirectedChain(t *testing.T) {
	// 0 → 1 → 2: rank accumulates downstream; vertex 0 keeps only the
	// base mass, vertex 2 gets the most.
	b := graph.NewBuilder(3).Directed()
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	dg := NewDirected(b.MustBuild())
	ranks, _ := PullDirected(dg, Options{Iterations: 40})
	if !(ranks[0] < ranks[1] && ranks[1] < ranks[2]) {
		t.Fatalf("chain ranks not monotone: %v", ranks)
	}
	base := (1 - 0.85) / 3.0
	if math.Abs(ranks[0]-base) > tol {
		t.Fatalf("source rank = %v, want base %v", ranks[0], base)
	}
}

func TestDirectedVsUndirectedConsistency(t *testing.T) {
	// A symmetric directed graph (both arcs present) must match the
	// undirected implementation exactly.
	r := rng.New(5)
	const n = 200
	und := graph.NewBuilder(n)
	dir := graph.NewBuilder(n).Directed()
	for i := 0; i < 800; i++ {
		u, v := graph.V(r.Intn(n)), graph.V(r.Intn(n))
		und.AddEdge(u, v)
		dir.AddEdge(u, v)
		dir.AddEdge(v, u)
	}
	gu := und.MustBuild()
	dg := NewDirected(dir.MustBuild())
	opt := Options{Iterations: 12}
	want := Sequential(gu, opt)
	got, _ := PushDirected(dg, opt)
	if d := MaxDiff(got, want); d > tol {
		t.Fatalf("symmetric directed vs undirected diff %g", d)
	}
}

func TestDirectedDanglingVertices(t *testing.T) {
	// Sinks (no out-edges) absorb rank; sources keep base rank only.
	b := graph.NewBuilder(4).Directed()
	b.AddEdge(0, 3)
	b.AddEdge(1, 3)
	b.AddEdge(2, 3)
	dg := NewDirected(b.MustBuild())
	push, _ := PushDirected(dg, Options{Iterations: 10})
	pull, _ := PullDirected(dg, Options{Iterations: 10})
	if d := MaxDiff(push, pull); d > tol {
		t.Fatalf("dangling diff %g", d)
	}
	if !(push[3] > push[0]) {
		t.Fatalf("sink did not absorb rank: %v", push)
	}
}

func TestDirectedEmpty(t *testing.T) {
	dg := NewDirected(graph.NewBuilder(0).Directed().MustBuild())
	if rks, _ := PushDirected(dg, Options{}); len(rks) != 0 {
		t.Fatal("empty push")
	}
	if rks, _ := PullDirected(dg, Options{}); len(rks) != 0 {
		t.Fatal("empty pull")
	}
}

// Property: directed push == pull == sequential for random digraphs.
func TestDirectedAgreementProperty(t *testing.T) {
	f := func(seed uint64) bool {
		dg := directedFixture(t, 120, 600, seed)
		opt := Options{Iterations: 8}
		opt.Threads = 3
		want := SequentialDirected(dg, opt)
		a, _ := PushDirected(dg, opt)
		b, _ := PullDirected(dg, opt)
		return MaxDiff(a, want) < tol && MaxDiff(b, want) < tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestDirectedProfiledMatchesFast: the instrumented §4.8 kernels return
// the fast kernels' exact ranks and charge the expected synchronization —
// atomics per out-arc when pushing, none when pulling.
func TestDirectedProfiledMatchesFast(t *testing.T) {
	dg := directedFixture(t, 300, 1800, 23)
	opt := Options{Iterations: 6}
	opt.Threads = 3
	wantPush, _ := PushDirected(dg, opt)
	wantPull, _ := PullDirected(dg, opt)

	prof, grp := core.CountingProfile(3)
	push, err := PushDirectedProfiled(dg, opt, prof, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxDiff(push, wantPush); d > tol {
		t.Fatalf("profiled directed push diff %g", d)
	}
	pushRep := grp.Report()
	if pushRep.Get(counters.Atomics) == 0 {
		t.Fatal("profiled directed push issued no atomics")
	}

	prof, grp = core.CountingProfile(3)
	pull, err := PullDirectedProfiled(dg, opt, prof, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxDiff(pull, wantPull); d > tol {
		t.Fatalf("profiled directed pull diff %g", d)
	}
	pullRep := grp.Report()
	if got := pullRep.Get(counters.Atomics); got != 0 {
		t.Fatalf("profiled directed pull issued %d atomics, want 0", got)
	}
	if pullRep.Get(counters.Reads) == 0 {
		t.Fatal("profiled directed pull recorded no reads")
	}

	// A push-only DirectedGraph may omit the in-view entirely.
	noIn := &DirectedGraph{Out: dg.Out}
	push2, err := PushDirectedProfiled(noIn, opt, core.Profile{}, nil)
	if err == nil {
		t.Fatal("invalid profile accepted") // Validate must still fire
	}
	prof, _ = core.CountingProfile(2)
	push2, err = PushDirectedProfiled(noIn, opt, prof, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxDiff(push2, wantPush); d > tol {
		t.Fatalf("in-less profiled push diff %g", d)
	}
}

func BenchmarkDirectedPush(b *testing.B) {
	dg := directedFixture(b, 1<<12, 1<<15, 1)
	opt := Options{Iterations: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PushDirected(dg, opt)
	}
}

func BenchmarkDirectedPull(b *testing.B) {
	dg := directedFixture(b, 1<<12, 1<<15, 1)
	opt := Options{Iterations: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PullDirected(dg, opt)
	}
}
