package pr

import (
	"time"

	"pushpull/internal/core"
	"pushpull/internal/graph"
	"pushpull/internal/memsim"
	"pushpull/internal/sched"
)

// Code regions for instruction-TLB modeling: each maps to one code page.
const (
	regionPushInit = iota
	regionPushScatter
	regionPushCommit
	regionPullGather
	regionPAPhase1
	regionPAPhase2
	regionHubRefresh
	regionHubGather
	regionBlockGather
)

// arrays bundles the modeled address ranges of the PageRank state so the
// cache simulator sees the same layout the fast variants use: the CSR
// offsets and adjacency, the rank vector and the next-rank vector.
type arrays struct {
	off, adj, pr, next memsim.Array
}

func modelArrays(g *graph.CSR, space *memsim.AddressSpace) arrays {
	if space == nil {
		space = &memsim.AddressSpace{}
	}
	return arrays{
		off:  space.NewArray(g.N()+1, 8),
		adj:  space.NewArray(int(g.M()), 4),
		pr:   space.NewArray(g.N(), 8),
		next: space.NewArray(g.N(), 8),
	}
}

// PushProfiled executes push PageRank deterministically, reporting every
// access at the R/W-marked points of Algorithm 1 to the per-thread probes.
// The returned ranks equal the fast variants' output.
func PushProfiled(g *graph.CSR, opt Options, prof core.Profile, space *memsim.AddressSpace) ([]float64, error) {
	opt.defaults()
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	n := g.N()
	a := modelArrays(g, space)
	pr := make([]float64, n)
	next := make([]float64, n)
	if n == 0 {
		return pr, nil
	}
	for i := range pr {
		pr[i] = 1 / float64(n)
	}
	base := (1 - opt.Damping) / float64(n)
	// Phase bodies hoisted out of the iteration loop so the modeled run
	// allocates nothing per round, matching the fast variants.
	initPhase := func(w, lo, hi int) {
		p := prof.Probes[w]
		p.Exec(regionPushInit)
		for i := lo; i < hi; i++ {
			next[i] = base
			p.Write(a.next.Addr(int64(i)), 8)
		}
	}
	scatterPhase := func(w, lo, hi int) {
		p := prof.Probes[w]
		p.Exec(regionPushScatter)
		for vi := lo; vi < hi; vi++ {
			v := graph.V(vi)
			// Read pr[v] and the two offsets bounding N(v).
			p.Read(a.pr.Addr(int64(vi)), 8)
			p.Read(a.off.Addr(int64(vi)), 8)
			d := g.Degree(v)
			p.Branch(d == 0)
			if d == 0 {
				continue
			}
			c := opt.Damping * pr[v] / float64(d)
			offs := g.Offsets[v]
			for i, u := range g.Neighbors(v) {
				p.Branch(true)                       // loop condition
				p.Read(a.adj.Addr(offs+int64(i)), 4) // sequential adj read
				p.Atomic(a.next.Addr(int64(u)), 8)   // W f: conflicting float add
				p.Jump()                             // call into the CAS helper
				next[u] += c                         // deterministic execution: no retries
			}
		}
	}
	commitPhase := func(w, lo, hi int) {
		p := prof.Probes[w]
		p.Exec(regionPushCommit)
		for i := lo; i < hi; i++ {
			p.Read(a.next.Addr(int64(i)), 8)
			p.Write(a.pr.Addr(int64(i)), 8)
			pr[i] = next[i]
		}
	}
	for l := 0; l < opt.Iterations; l++ {
		iterStart := time.Now()
		sched.SequentialFor(n, prof.Threads, initPhase)
		sched.SequentialFor(n, prof.Threads, scatterPhase)
		sched.SequentialFor(n, prof.Threads, commitPhase)
		opt.Tick(l, time.Since(iterStart))
	}
	return pr, nil
}

// PullProfiled executes pull PageRank deterministically under the probes.
// Note the two random reads per edge — pr[u] and the offset pair giving
// d(u) — versus the single random atomic of pushing; this asymmetry is what
// Table 1's higher pull miss counts measure.
func PullProfiled(g *graph.CSR, opt Options, prof core.Profile, space *memsim.AddressSpace) ([]float64, error) {
	opt.defaults()
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	n := g.N()
	a := modelArrays(g, space)
	pr := make([]float64, n)
	next := make([]float64, n)
	if n == 0 {
		return pr, nil
	}
	for i := range pr {
		pr[i] = 1 / float64(n)
	}
	base := (1 - opt.Damping) / float64(n)
	// Hoisted gather body; pr and next are captured by reference, so the
	// per-round swap stays visible.
	gatherPhase := func(w, lo, hi int) {
		p := prof.Probes[w]
		p.Exec(regionPullGather)
		for vi := lo; vi < hi; vi++ {
			v := graph.V(vi)
			p.Read(a.off.Addr(int64(vi)), 8)
			sum := 0.0
			offs := g.Offsets[v]
			for i, u := range g.Neighbors(v) {
				p.Branch(true)                       // loop condition
				p.Read(a.adj.Addr(offs+int64(i)), 4) // sequential adj read
				p.Read(a.pr.Addr(int64(u)), 8)       // R: random rank read
				p.Read(a.off.Addr(int64(u)), 8)      // random degree read
				du := g.Degree(u)
				if du == 0 {
					continue
				}
				sum += pr[u] / float64(du)
			}
			p.Write(a.next.Addr(int64(vi)), 8) // private, no conflict
			next[vi] = base + opt.Damping*sum
		}
	}
	for l := 0; l < opt.Iterations; l++ {
		iterStart := time.Now()
		sched.SequentialFor(n, prof.Threads, gatherPhase)
		pr, next = next, pr
		opt.Tick(l, time.Since(iterStart))
	}
	return pr, nil
}

// PushPAProfiled executes partition-aware push PageRank under the probes:
// local edges issue plain writes, remote edges issue atomics, and the extra
// offset arrays of the 2n+2m layout are modeled too (the +n reads that make
// PA slower on sparse road graphs, §6.2).
func PushPAProfiled(pa *graph.PAGraph, opt Options, prof core.Profile, space *memsim.AddressSpace) ([]float64, error) {
	opt.defaults()
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	if prof.Threads != pa.Part.P {
		prof = core.Profile{Threads: pa.Part.P, Probes: prof.Probes}
		if err := prof.Validate(); err != nil {
			return nil, err
		}
	}
	g := pa.G
	n := g.N()
	if space == nil {
		space = &memsim.AddressSpace{}
	}
	// PA layout: separate local/remote offset and adjacency arrays.
	locOff := space.NewArray(n+1, 8)
	remOff := space.NewArray(n+1, 8)
	locAdj := space.NewArray(len(pa.LocAdj), 4)
	remAdj := space.NewArray(len(pa.RemAdj), 4)
	off := space.NewArray(n+1, 8)
	prA := space.NewArray(n, 8)
	nextA := space.NewArray(n, 8)

	pr := make([]float64, n)
	next := make([]float64, n)
	if n == 0 {
		return pr, nil
	}
	for i := range pr {
		pr[i] = 1 / float64(n)
	}
	base := (1 - opt.Damping) / float64(n)
	// Phase bodies hoisted out of the iteration loop so the modeled run
	// allocates nothing per round, matching the fast variants.
	initPhase := func(w, lo, hi int) {
		p := prof.Probes[w]
		p.Exec(regionPushInit)
		for i := lo; i < hi; i++ {
			next[i] = base
			p.Write(nextA.Addr(int64(i)), 8)
		}
	}
	// Phase 1: local, non-atomic.
	localPhase := func(w, lo, hi int) {
		p := prof.Probes[w]
		p.Exec(regionPAPhase1)
		for vi := lo; vi < hi; vi++ {
			v := graph.V(vi)
			p.Read(prA.Addr(int64(vi)), 8)
			p.Read(off.Addr(int64(vi)), 8)
			d := g.Degree(v)
			p.Branch(d == 0)
			if d == 0 {
				continue
			}
			c := opt.Damping * pr[v] / float64(d)
			p.Read(locOff.Addr(int64(vi)), 8)
			offs := pa.LocOff[v]
			for i, u := range pa.Local(v) {
				p.Branch(true)
				p.Read(locAdj.Addr(offs+int64(i)), 4)
				p.Read(nextA.Addr(int64(u)), 8)
				p.Write(nextA.Addr(int64(u)), 8) // plain store, no atomic
				next[u] += c
			}
		}
	}
	// Phase 2: remote, atomic.
	remotePhase := func(w, lo, hi int) {
		p := prof.Probes[w]
		p.Exec(regionPAPhase2)
		for vi := lo; vi < hi; vi++ {
			v := graph.V(vi)
			p.Read(prA.Addr(int64(vi)), 8)
			d := g.Degree(v)
			p.Branch(d == 0)
			if d == 0 {
				continue
			}
			c := opt.Damping * pr[v] / float64(d)
			p.Read(remOff.Addr(int64(vi)), 8)
			offs := pa.RemOff[v]
			for i, u := range pa.Remote(v) {
				p.Branch(true)
				p.Read(remAdj.Addr(offs+int64(i)), 4)
				p.Atomic(nextA.Addr(int64(u)), 8) // W i per Algorithm 8
				p.Jump()
				next[u] += c
			}
		}
	}
	commitPhase := func(w, lo, hi int) {
		p := prof.Probes[w]
		p.Exec(regionPushCommit)
		for i := lo; i < hi; i++ {
			p.Read(nextA.Addr(int64(i)), 8)
			p.Write(prA.Addr(int64(i)), 8)
			pr[i] = next[i]
		}
	}
	for l := 0; l < opt.Iterations; l++ {
		iterStart := time.Now()
		sched.SequentialFor(n, prof.Threads, initPhase)
		sched.SequentialFor(n, prof.Threads, localPhase)
		sched.SequentialFor(n, prof.Threads, remotePhase)
		sched.SequentialFor(n, prof.Threads, commitPhase)
		opt.Tick(l, time.Since(iterStart))
	}
	return pr, nil
}
