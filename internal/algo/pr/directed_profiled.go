package pr

import (
	"time"

	"pushpull/internal/core"
	"pushpull/internal/graph"
	"pushpull/internal/memsim"
	"pushpull/internal/sched"
)

// Instrumented directed PageRank: the §4.8 kernels under the
// deterministic probes, charging exactly what the fast variants do — one
// conflicting atomic per out-edge when pushing, two random reads per
// in-edge (rank and out-degree of the in-neighbor) when pulling. The
// modeled layout adds the transpose's offset and adjacency arrays, the
// extra n + 2m cells a directed graph pays for serving both views.

// directedArrays bundles the modeled address ranges of directed PageRank:
// the out-CSR, the in-CSR (transpose), and the two rank vectors.
type directedArrays struct {
	outOff, outAdj, inOff, inAdj, pr, next memsim.Array
}

func modelDirectedArrays(dg *DirectedGraph, space *memsim.AddressSpace) directedArrays {
	if space == nil {
		space = &memsim.AddressSpace{}
	}
	a := directedArrays{
		outOff: space.NewArray(dg.Out.N()+1, 8),
		outAdj: space.NewArray(int(dg.Out.M()), 4),
		pr:     space.NewArray(dg.Out.N(), 8),
		next:   space.NewArray(dg.Out.N(), 8),
	}
	// Push-only runs carry no in-view (the engine materializes the
	// transpose lazily, for pulls alone); skip its model arrays then.
	if dg.In != nil {
		a.inOff = space.NewArray(dg.In.N()+1, 8)
		a.inAdj = space.NewArray(int(dg.In.M()), 4)
	}
	return a
}

// PushDirectedProfiled executes push directed PageRank deterministically
// under the probes: rank scatters along out-edges, an atomic float add per
// arc. The returned ranks equal PushDirected's output.
func PushDirectedProfiled(dg *DirectedGraph, opt Options, prof core.Profile, space *memsim.AddressSpace) ([]float64, error) {
	opt.defaults()
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	n := dg.Out.N()
	a := modelDirectedArrays(dg, space)
	pr := make([]float64, n)
	next := make([]float64, n)
	if n == 0 {
		return pr, nil
	}
	for i := range pr {
		pr[i] = 1 / float64(n)
	}
	base := (1 - opt.Damping) / float64(n)
	// Phase bodies hoisted out of the iteration loop so the modeled run
	// allocates nothing per round, matching the fast variants.
	initPhase := func(w, lo, hi int) {
		p := prof.Probes[w]
		p.Exec(regionPushInit)
		for i := lo; i < hi; i++ {
			next[i] = base
			p.Write(a.next.Addr(int64(i)), 8)
		}
	}
	scatterPhase := func(w, lo, hi int) {
		p := prof.Probes[w]
		p.Exec(regionPushScatter)
		for vi := lo; vi < hi; vi++ {
			v := graph.V(vi)
			p.Read(a.pr.Addr(int64(vi)), 8)
			p.Read(a.outOff.Addr(int64(vi)), 8)
			d := dg.Out.Degree(v)
			p.Branch(d == 0)
			if d == 0 {
				continue
			}
			c := opt.Damping * pr[v] / float64(d)
			offs := dg.Out.Offsets[v]
			for i, u := range dg.Out.Neighbors(v) {
				p.Branch(true)                          // loop condition
				p.Read(a.outAdj.Addr(offs+int64(i)), 4) // sequential out-adj read
				p.Atomic(a.next.Addr(int64(u)), 8)      // W f: conflicting float add
				p.Jump()                                // CAS helper
				next[u] += c
			}
		}
	}
	commitPhase := func(w, lo, hi int) {
		p := prof.Probes[w]
		p.Exec(regionPushCommit)
		for i := lo; i < hi; i++ {
			p.Read(a.next.Addr(int64(i)), 8)
			p.Write(a.pr.Addr(int64(i)), 8)
			pr[i] = next[i]
		}
	}
	for l := 0; l < opt.Iterations; l++ {
		iterStart := time.Now()
		sched.SequentialFor(n, prof.Threads, initPhase)
		sched.SequentialFor(n, prof.Threads, scatterPhase)
		sched.SequentialFor(n, prof.Threads, commitPhase)
		opt.Tick(l, time.Since(iterStart))
	}
	return pr, nil
}

// PullDirectedProfiled executes pull directed PageRank deterministically
// under the probes: each vertex gathers along its in-edges with no
// synchronization, paying two random reads per arc — the in-neighbor's
// rank and its *out*-degree (§7.3). The returned ranks equal
// PullDirected's output.
func PullDirectedProfiled(dg *DirectedGraph, opt Options, prof core.Profile, space *memsim.AddressSpace) ([]float64, error) {
	opt.defaults()
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	n := dg.Out.N()
	a := modelDirectedArrays(dg, space)
	pr := make([]float64, n)
	next := make([]float64, n)
	if n == 0 {
		return pr, nil
	}
	for i := range pr {
		pr[i] = 1 / float64(n)
	}
	base := (1 - opt.Damping) / float64(n)
	// Hoisted gather body; pr and next are captured by reference, so the
	// per-round swap stays visible.
	gatherPhase := func(w, lo, hi int) {
		p := prof.Probes[w]
		p.Exec(regionPullGather)
		for vi := lo; vi < hi; vi++ {
			v := graph.V(vi)
			p.Read(a.inOff.Addr(int64(vi)), 8)
			sum := 0.0
			offs := dg.In.Offsets[v]
			for i, u := range dg.In.Neighbors(v) {
				p.Branch(true)                         // loop condition
				p.Read(a.inAdj.Addr(offs+int64(i)), 4) // sequential in-adj read
				p.Read(a.pr.Addr(int64(u)), 8)         // R: random rank read
				p.Read(a.outOff.Addr(int64(u)), 8)     // random out-degree read
				du := dg.Out.Degree(u)
				if du == 0 {
					continue
				}
				sum += pr[u] / float64(du)
			}
			p.Write(a.next.Addr(int64(vi)), 8) // private, no conflict
			next[vi] = base + opt.Damping*sum
		}
	}
	for l := 0; l < opt.Iterations; l++ {
		iterStart := time.Now()
		sched.SequentialFor(n, prof.Threads, gatherPhase)
		pr, next = next, pr
		opt.Tick(l, time.Since(iterStart))
	}
	return pr, nil
}
