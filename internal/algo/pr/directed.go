package pr

import (
	"math"
	"time"

	"pushpull/internal/atomicx"
	"pushpull/internal/core"
	"pushpull/internal/graph"
	"pushpull/internal/sched"
)

// Directed-graph PageRank, reproducing the paper's §4.8 observation:
// "Pushing entails iterating over all outgoing edges of a subset of the
// vertices, while pulling entails iterating over all incoming edges of all
// (or most) of the vertices" — so the cost bounds depend on d̂out for
// pushing and d̂in for pulling instead of d̂.
//
// The input is a directed CSR (out-edges); pulling needs the transpose
// (in-edges), which DirectedGraph precomputes once so repeated runs do not
// pay for it.

// DirectedGraph bundles a directed graph with its transpose, the pair of
// views the two update directions iterate.
type DirectedGraph struct {
	Out *graph.CSR // row v = out-neighbors of v
	In  *graph.CSR // row v = in-neighbors of v (the transpose)
}

// NewDirected builds the two views from a directed CSR.
func NewDirected(out *graph.CSR) *DirectedGraph {
	return &DirectedGraph{Out: out, In: out.Transpose()}
}

// SequentialDirected computes reference directed ranks: rank flows along
// edge direction, distributed over each vertex's out-degree.
func SequentialDirected(dg *DirectedGraph, opt Options) []float64 {
	opt.defaults()
	n := dg.Out.N()
	pr := make([]float64, n)
	next := make([]float64, n)
	if n == 0 {
		return pr
	}
	for i := range pr {
		pr[i] = 1 / float64(n)
	}
	base := (1 - opt.Damping) / float64(n)
	for l := 0; l < opt.Iterations; l++ {
		for i := range next {
			next[i] = base
		}
		for v := graph.V(0); v < dg.Out.NumV; v++ {
			d := dg.Out.Degree(v)
			if d == 0 {
				continue
			}
			c := opt.Damping * pr[v] / float64(d)
			for _, u := range dg.Out.Neighbors(v) {
				next[u] += c
			}
		}
		pr, next = next, pr
	}
	return pr
}

// PushDirected scatters rank along out-edges with atomic adds: the §4.8
// push direction, whose per-vertex cost is bounded by d̂out.
func PushDirected(dg *DirectedGraph, opt Options) ([]float64, core.RunStats) {
	opt.defaults()
	n := dg.Out.N()
	stats := core.RunStats{Direction: core.Push}
	pr := make([]float64, n)
	if n == 0 {
		return pr, stats
	}
	stats.Reserve(opt.Iterations)
	t := sched.Clamp(opt.Threads, n)
	for i := range pr {
		pr[i] = 1 / float64(n)
	}
	nextBits := make([]uint64, n)
	base := (1 - opt.Damping) / float64(n)
	baseBits := math.Float64bits(base)
	// Phase bodies hoisted out of the round loop: the steady state must
	// not allocate, and a literal in the loop allocates its captures.
	clearNext := func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			nextBits[i] = baseBits
		}
	}
	scatter := func(w, lo, hi int) {
		for vi := lo; vi < hi; vi++ {
			v := graph.V(vi)
			d := dg.Out.Degree(v)
			if d == 0 {
				continue
			}
			c := opt.Damping * pr[v] / float64(d)
			for _, u := range dg.Out.Neighbors(v) {
				atomicx.AddFloat64(&nextBits[u], c)
			}
		}
	}
	commit := func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			pr[i] = math.Float64frombits(nextBits[i])
		}
	}
	for l := 0; l < opt.Iterations; l++ {
		if opt.Canceled() {
			stats.Canceled = true
			break
		}
		start := time.Now()
		sched.ParallelFor(n, t, opt.Schedule, 0, clearNext)
		sched.ParallelFor(n, t, opt.Schedule, 0, scatter)
		sched.ParallelFor(n, t, opt.Schedule, 0, commit)
		el := time.Since(start)
		stats.Record(el)
		opt.Tick(l, el)
	}
	return pr, stats
}

// PullDirected gathers rank along in-edges with no synchronization: the
// §4.8 pull direction, whose per-vertex cost is bounded by d̂in. Note the
// extra reads relative to pushing: the out-degree of every in-neighbor
// must be fetched to scale its contribution (§7.3).
func PullDirected(dg *DirectedGraph, opt Options) ([]float64, core.RunStats) {
	opt.defaults()
	n := dg.Out.N()
	stats := core.RunStats{Direction: core.Pull}
	pr := make([]float64, n)
	if n == 0 {
		return pr, stats
	}
	stats.Reserve(opt.Iterations)
	t := sched.Clamp(opt.Threads, n)
	for i := range pr {
		pr[i] = 1 / float64(n)
	}
	next := make([]float64, n)
	base := (1 - opt.Damping) / float64(n)
	// Hoisted gather body; pr and next are captured by reference, so the
	// per-round swap stays visible.
	gather := func(w, lo, hi int) {
		for vi := lo; vi < hi; vi++ {
			v := graph.V(vi)
			sum := 0.0
			for _, u := range dg.In.Neighbors(v) {
				du := dg.Out.Degree(u) // out-degree of the in-neighbor
				if du == 0 {
					continue
				}
				sum += pr[u] / float64(du)
			}
			next[v] = base + opt.Damping*sum
		}
	}
	for l := 0; l < opt.Iterations; l++ {
		if opt.Canceled() {
			stats.Canceled = true
			break
		}
		start := time.Now()
		sched.ParallelFor(n, t, opt.Schedule, 0, gather)
		pr, next = next, pr
		el := time.Since(start)
		stats.Record(el)
		opt.Tick(l, el)
	}
	return pr, stats
}
