package pr

import (
	"testing"

	"pushpull/internal/core"
	"pushpull/internal/counters"
	"pushpull/internal/graph"
)

func TestPullHubMatchesSequential(t *testing.T) {
	g := testGraph(t)
	opt := Options{Iterations: 15}
	opt.Threads = 4
	want := Sequential(g, opt)
	for _, k := range []int{0, 1, 16, 256, g.N()} {
		hs := graph.BuildHubSplit(g, k)
		got, stats := PullHub(g, hs, opt)
		if d := MaxDiff(got, want); d > tol {
			t.Fatalf("k=%d: hub pull vs sequential: max diff %g", k, d)
		}
		if stats.Direction != core.Pull || stats.Iterations != 15 {
			t.Fatalf("k=%d: stats = %+v", k, stats)
		}
	}
}

func TestPullHubOnDegreeSorted(t *testing.T) {
	// The composition the engine runs on skewed graphs: degree-sort, then
	// hub-split the sorted view; results un-permute to the sequential ranks.
	g := testGraph(t)
	opt := Options{Iterations: 12}
	opt.Threads = 4
	want := Sequential(g, opt)
	ds := graph.SortByDegree(g)
	hs := graph.BuildHubSplit(ds.G, 64)
	got, _ := PullHub(ds.G, hs, opt)
	unperm := make([]float64, len(got))
	for newID, old := range ds.Perm {
		unperm[old] = got[newID]
	}
	if d := MaxDiff(unperm, want); d > tol {
		t.Fatalf("degree-sorted hub pull: max diff %g", d)
	}
}

func TestPullDirectedHubMatchesSequential(t *testing.T) {
	dg := directedFixture(t, 500, 3000, 17)
	opt := Options{Iterations: 15}
	opt.Threads = 4
	want := SequentialDirected(dg, opt)
	for _, k := range []int{0, 16, 256} {
		hs := graph.BuildHubSplit(dg.In, k)
		got, _ := PullDirectedHub(dg, hs, opt)
		if d := MaxDiff(got, want); d > tol {
			t.Fatalf("k=%d: directed hub pull: max diff %g", k, d)
		}
	}
}

func TestPullHubProfiledMatchesFast(t *testing.T) {
	g := testGraph(t)
	opt := Options{Iterations: 8}
	opt.Threads = 3
	hs := graph.BuildHubSplit(g, 32)
	want, _ := PullHub(g, hs, opt)
	prof, grp := core.CountingProfile(3)
	got, err := PullHubProfiled(g, hs, opt, prof, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxDiff(got, want); d != 0 {
		t.Fatalf("profiled hub pull differs from fast: %g", d)
	}
	tot := grp.Report()
	if tot.Get(counters.Atomics) != 0 {
		t.Fatalf("pull charged %d atomics", tot.Get(counters.Atomics))
	}
	// The hub prefix must reduce read traffic below plain pull's shape:
	// hub edges pay 2 reads (adj + cache), residual edges 3 (adj + rank +
	// degree).
	if hs.HubEdges() == 0 {
		t.Fatal("fixture has no hub edges")
	}
	profPlain, grpPlain := core.CountingProfile(3)
	if _, err := PullProfiled(g, opt, profPlain, nil); err != nil {
		t.Fatal(err)
	}
	if tot.Get(counters.Reads) >= grpPlain.Report().Get(counters.Reads) {
		t.Fatalf("hub pull reads %d, plain pull %d: cache saved nothing",
			tot.Get(counters.Reads), grpPlain.Report().Get(counters.Reads))
	}
}

func TestPullDirectedHubProfiledMatchesFast(t *testing.T) {
	dg := directedFixture(t, 500, 3000, 17)
	opt := Options{Iterations: 8}
	opt.Threads = 3
	hs := graph.BuildHubSplit(dg.In, 32)
	want, _ := PullDirectedHub(dg, hs, opt)
	prof, grp := core.CountingProfile(3)
	got, err := PullDirectedHubProfiled(dg, hs, opt, prof, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxDiff(got, want); d != 0 {
		t.Fatalf("profiled directed hub pull differs from fast: %g", d)
	}
	if grp.Report().Get(counters.Atomics) != 0 {
		t.Fatalf("pull charged atomics")
	}
}
