package pr

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"pushpull/internal/core"
	"pushpull/internal/counters"
	"pushpull/internal/gen"
	"pushpull/internal/graph"
	"pushpull/internal/memsim"
)

const tol = 1e-9

func testGraph(t *testing.T) *graph.CSR {
	t.Helper()
	g, err := gen.RMAT(gen.DefaultRMAT(10, 8, 42))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPushMatchesSequential(t *testing.T) {
	g := testGraph(t)
	opt := Options{Iterations: 15}
	opt.Threads = 4
	want := Sequential(g, opt)
	got, stats := Push(g, opt)
	if d := MaxDiff(got, want); d > tol {
		t.Fatalf("push vs sequential: max diff %g", d)
	}
	if stats.Iterations != 15 || stats.Direction != core.Push {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestPullMatchesSequential(t *testing.T) {
	g := testGraph(t)
	opt := Options{Iterations: 15}
	opt.Threads = 4
	want := Sequential(g, opt)
	got, stats := Pull(g, opt)
	if d := MaxDiff(got, want); d > tol {
		t.Fatalf("pull vs sequential: max diff %g", d)
	}
	if stats.Direction != core.Pull {
		t.Fatalf("direction = %v", stats.Direction)
	}
}

func TestPushPAMatchesSequential(t *testing.T) {
	g := testGraph(t)
	opt := Options{Iterations: 15}
	for _, p := range []int{1, 2, 4, 7} {
		pa := graph.BuildPA(g, graph.NewPartition(g.N(), p))
		want := Sequential(g, opt)
		got, _ := PushPA(pa, opt)
		if d := MaxDiff(got, want); d > tol {
			t.Fatalf("P=%d: push+PA vs sequential: max diff %g", p, d)
		}
	}
}

func TestRankMassConserved(t *testing.T) {
	// On a connected graph with no zero-degree vertices, total rank ≈ 1.
	g := gen.Ring(1000)
	opt := Options{Iterations: 30}
	ranks := Sequential(g, opt)
	if s := Sum(ranks); math.Abs(s-1) > 1e-9 {
		t.Fatalf("rank mass = %v", s)
	}
	// Ring symmetry: every rank equals 1/n.
	for i, r := range ranks {
		if math.Abs(r-1.0/1000) > 1e-12 {
			t.Fatalf("rank[%d] = %v", i, r)
		}
	}
}

func TestStarRanks(t *testing.T) {
	// On a star, the center must accumulate far more rank than leaves.
	g := gen.Star(101)
	ranks := Sequential(g, Options{Iterations: 50})
	if ranks[0] < 10*ranks[1] {
		t.Fatalf("center %v vs leaf %v", ranks[0], ranks[1])
	}
	// All leaves identical.
	for i := 2; i < 101; i++ {
		if math.Abs(ranks[i]-ranks[1]) > 1e-12 {
			t.Fatalf("leaf ranks differ: %v vs %v", ranks[i], ranks[1])
		}
	}
}

func TestEmptyAndTinyGraphs(t *testing.T) {
	empty := graph.NewBuilder(0).MustBuild()
	if r, _ := Push(empty, Options{}); len(r) != 0 {
		t.Fatal("empty graph ranks")
	}
	if r, _ := Pull(empty, Options{}); len(r) != 0 {
		t.Fatal("empty graph ranks")
	}
	// Isolated vertices keep base rank.
	iso := graph.NewBuilder(3).MustBuild()
	r, _ := Pull(iso, Options{Iterations: 5, Damping: 0.85})
	base := (1 - 0.85) / 3.0
	for _, x := range r {
		if math.Abs(x-base) > tol {
			t.Fatalf("isolated rank = %v, want %v", x, base)
		}
	}
}

func TestOnIterationHook(t *testing.T) {
	g := gen.Ring(64)
	var iters []int
	opt := Options{Iterations: 5}
	opt.OnIteration = func(i int, _ time.Duration) { iters = append(iters, i) }
	Push(g, opt)
	if len(iters) != 5 || iters[0] != 0 || iters[4] != 4 {
		t.Fatalf("push iterations hook = %v", iters)
	}
	iters = nil
	Pull(g, opt)
	if len(iters) != 5 {
		t.Fatalf("pull iterations hook = %v", iters)
	}
	iters = nil
	pa := graph.BuildPA(g, graph.NewPartition(g.N(), 2))
	PushPA(pa, opt)
	if len(iters) != 5 {
		t.Fatalf("PA iterations hook = %v", iters)
	}
}

func TestDefaults(t *testing.T) {
	var o Options
	o.defaults()
	if o.Iterations != 20 || o.Damping != DefaultDamping {
		t.Fatalf("defaults = %+v", o)
	}
}

func TestSetDampingZeroIsExpressible(t *testing.T) {
	// Assigning Damping = 0 means "default" for zero-value compatibility;
	// SetDamping(0) pins a genuine zero-damping run.
	var implicit Options
	implicit.Damping = 0
	implicit.defaults()
	if implicit.Damping != DefaultDamping {
		t.Fatalf("implicit zero rewritten to %v, want default %v", implicit.Damping, DefaultDamping)
	}
	var explicit Options
	explicit.SetDamping(0)
	explicit.defaults()
	if explicit.Damping != 0 {
		t.Fatalf("SetDamping(0) rewritten to %v", explicit.Damping)
	}
	var pinned Options
	pinned.SetDamping(0.5)
	pinned.defaults()
	if pinned.Damping != 0.5 {
		t.Fatalf("SetDamping(0.5) rewritten to %v", pinned.Damping)
	}
	// Zero damping yields the uniform teleport distribution.
	g, err := gen.ErdosRenyi(100, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Iterations: 5}
	opt.SetDamping(0)
	ranks, _ := Pull(g, opt)
	want := 1 / float64(g.N())
	for v, r := range ranks {
		if math.Abs(r-want) > 1e-15 {
			t.Fatalf("zero-damping rank[%d] = %g, want %g", v, r, want)
		}
	}
}

func TestPushPullEquivalenceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g, err := gen.ErdosRenyi(300, 4, seed)
		if err != nil {
			return false
		}
		opt := Options{Iterations: 10}
		opt.Threads = 3
		a, _ := Push(g, opt)
		b, _ := Pull(g, opt)
		return MaxDiff(a, b) < tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestProfiledVariantsMatchFast(t *testing.T) {
	g := testGraph(t)
	opt := Options{Iterations: 5}
	want := Sequential(g, opt)

	prof, _ := core.CountingProfile(4)
	got, err := PushProfiled(g, opt, prof, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxDiff(got, want); d > tol {
		t.Fatalf("profiled push diff %g", d)
	}

	prof2, _ := core.CountingProfile(4)
	got2, err := PullProfiled(g, opt, prof2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxDiff(got2, want); d > tol {
		t.Fatalf("profiled pull diff %g", d)
	}

	pa := graph.BuildPA(g, graph.NewPartition(g.N(), 4))
	prof3, _ := core.CountingProfile(4)
	got3, err := PushPAProfiled(pa, opt, prof3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxDiff(got3, want); d > tol {
		t.Fatalf("profiled push+PA diff %g", d)
	}
}

// The central Table 1 shape: pushing issues ≈ L·2m atomics, pulling zero;
// pulling reads more than pushing; PA strictly reduces atomics.
func TestCounterShapes(t *testing.T) {
	g := testGraph(t)
	opt := Options{Iterations: 3}
	L := int64(3)
	m2 := g.M() // directed slots = 2m

	profPush, gPush := core.CountingProfile(4)
	if _, err := PushProfiled(g, opt, profPush, nil); err != nil {
		t.Fatal(err)
	}
	push := gPush.Report()

	profPull, gPull := core.CountingProfile(4)
	if _, err := PullProfiled(g, opt, profPull, nil); err != nil {
		t.Fatal(err)
	}
	pull := gPull.Report()

	if got := push.Get(counters.Atomics); got != L*m2 {
		t.Fatalf("push atomics = %d, want %d", got, L*m2)
	}
	if got := pull.Get(counters.Atomics); got != 0 {
		t.Fatalf("pull atomics = %d, want 0", got)
	}
	if pull.Get(counters.Reads) <= push.Get(counters.Reads) {
		t.Fatalf("pull reads %d not > push reads %d",
			pull.Get(counters.Reads), push.Get(counters.Reads))
	}
	if pull.Get(counters.Locks) != 0 || push.Get(counters.Locks) != 0 {
		t.Fatal("PR variants must not take locks (CAS-float counted as atomics)")
	}

	pa := graph.BuildPA(g, graph.NewPartition(g.N(), 4))
	profPA, gPA := core.CountingProfile(4)
	if _, err := PushPAProfiled(pa, opt, profPA, nil); err != nil {
		t.Fatal(err)
	}
	paRep := gPA.Report()
	if got, want := paRep.Get(counters.Atomics), L*pa.RemoteEdges(); got != want {
		t.Fatalf("PA atomics = %d, want %d", got, want)
	}
	if paRep.Get(counters.Atomics) >= push.Get(counters.Atomics) {
		t.Fatal("PA did not reduce atomics")
	}
}

// Cache-model shape from Table 1: pull suffers more L1 misses than push on
// a dense power-law graph (two random arrays per edge vs one).
func TestCacheMissShape(t *testing.T) {
	g := testGraph(t)
	opt := Options{Iterations: 2}

	machine := memsim.NewMachine(memsim.XeonE5SandyBridge(), 4)
	prof := core.Profile{Threads: 4, Probes: machine.Probes()}
	if _, err := PushProfiled(g, opt, prof, machine.Space()); err != nil {
		t.Fatal(err)
	}
	pushMiss := machine.Report().Get(counters.L1Miss)

	machine2 := memsim.NewMachine(memsim.XeonE5SandyBridge(), 4)
	prof2 := core.Profile{Threads: 4, Probes: machine2.Probes()}
	if _, err := PullProfiled(g, opt, prof2, machine2.Space()); err != nil {
		t.Fatal(err)
	}
	pullMiss := machine2.Report().Get(counters.L1Miss)

	if pullMiss <= pushMiss {
		t.Fatalf("pull L1 misses %d not > push %d", pullMiss, pushMiss)
	}
}

func TestProfiledValidation(t *testing.T) {
	g := gen.Ring(10)
	bad := core.Profile{Threads: 2, Probes: []counters.Probe{counters.NopProbe{}}}
	if _, err := PushProfiled(g, Options{}, bad, nil); err == nil {
		t.Fatal("bad profile accepted")
	}
	if _, err := PullProfiled(g, Options{}, bad, nil); err == nil {
		t.Fatal("bad profile accepted")
	}
}

func BenchmarkPush(b *testing.B) {
	g, _ := gen.RMAT(gen.DefaultRMAT(12, 8, 1))
	opt := Options{Iterations: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Push(g, opt)
	}
}

func BenchmarkPull(b *testing.B) {
	g, _ := gen.RMAT(gen.DefaultRMAT(12, 8, 1))
	opt := Options{Iterations: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Pull(g, opt)
	}
}

func BenchmarkPushPA(b *testing.B) {
	g, _ := gen.RMAT(gen.DefaultRMAT(12, 8, 1))
	pa := graph.BuildPA(g, graph.NewPartition(g.N(), 4))
	opt := Options{Iterations: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PushPA(pa, opt)
	}
}
