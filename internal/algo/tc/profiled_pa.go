package tc

import (
	"pushpull/internal/core"
	"pushpull/internal/counters"
	"pushpull/internal/graph"
	"pushpull/internal/memsim"
)

// Code regions of the partition-aware kernel.
const (
	regionPALocal = iota + 2 // continue after the plain regions
	regionPARemote
)

// PushPAProfiled runs the instrumented partition-aware push variant
// (Algorithm 8 applied to TC): hits whose target is owned by the executing
// thread commit with a read-modify-write pair of plain accesses in phase 1;
// hits into other threads' counters pay one fetch-and-add each in phase 2.
// The atomic count therefore equals the remote hit count — the §5 reduction
// from all 2m hits to only the cross-partition ones.
//
// The intersection work charges one sequential adjacency read per merge
// step, identical in both phases, so the phases differ purely by their
// commit protocol. Counts equal the fast PushPA variant's output.
func PushPAProfiled(pa *graph.PAGraph, prof core.Profile, space *memsim.AddressSpace) ([]int64, error) {
	if prof.Threads != pa.Part.P {
		prof = core.Profile{Threads: pa.Part.P, Probes: prof.Probes}
	}
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	g := pa.G
	n := g.N()
	if space == nil {
		space = &memsim.AddressSpace{}
	}
	offA := space.NewArray(n+1, 8)
	adjA := space.NewArray(int(g.M()), 4)
	locOffA := space.NewArray(n+1, 8)
	locAdjA := space.NewArray(len(pa.LocAdj), 4)
	remOffA := space.NewArray(n+1, 8)
	remAdjA := space.NewArray(len(pa.RemAdj), 4)
	tcA := space.NewArray(n, 8)

	tc := make([]int64, n)
	if n == 0 {
		return tc, nil
	}
	// profiledIntersect merges N(v) and N(w1), charging one adjacency read
	// per step of either cursor, and returns the hit count.
	profiledIntersect := func(p counters.Probe, v, w1 graph.V) int {
		a, b := g.Neighbors(v), g.Neighbors(w1)
		aOff, bOff := g.Offsets[v], g.Offsets[w1]
		i, j, hits := 0, 0, 0
		for i < len(a) && j < len(b) {
			p.Branch(a[i] < b[j])
			switch {
			case a[i] < b[j]:
				p.Read(adjA.Addr(aOff+int64(i)), 4)
				i++
			case a[i] > b[j]:
				p.Read(adjA.Addr(bOff+int64(j)), 4)
				j++
			default:
				p.Read(adjA.Addr(aOff+int64(i)), 4)
				p.Read(adjA.Addr(bOff+int64(j)), 4)
				hits++
				i++
				j++
			}
		}
		return hits
	}

	// Phase 1: local targets (owner(w1) == w), plain read-modify-write.
	for w := 0; w < prof.Threads; w++ {
		p := prof.Probes[w]
		p.Exec(regionPALocal)
		lo, hi := pa.Part.Range(w)
		for v := lo; v < hi; v++ {
			p.Read(offA.Addr(int64(v)), 8)
			p.Read(locOffA.Addr(int64(v)), 8)
			offs := pa.LocOff[v]
			for j, w1 := range pa.Local(v) {
				p.Branch(true)
				p.Read(locAdjA.Addr(offs+int64(j)), 4)
				p.Read(offA.Addr(int64(w1)), 8)
				hits := profiledIntersect(p, v, w1)
				if hits > 0 {
					p.Read(tcA.Addr(int64(w1)), 8)
					p.Write(tcA.Addr(int64(w1)), 8) // owned: plain add
					tc[w1] += int64(hits)
				}
			}
		}
	}
	// Phase 2 (after the Algorithm 8 barrier): remote targets, atomics —
	// one FAA per hit, the W i accounting of Algorithm 2.
	for w := 0; w < prof.Threads; w++ {
		p := prof.Probes[w]
		p.Exec(regionPARemote)
		lo, hi := pa.Part.Range(w)
		for v := lo; v < hi; v++ {
			p.Read(remOffA.Addr(int64(v)), 8)
			offs := pa.RemOff[v]
			for j, w1 := range pa.Remote(v) {
				p.Branch(true)
				p.Read(remAdjA.Addr(offs+int64(j)), 4)
				p.Read(offA.Addr(int64(w1)), 8)
				hits := profiledIntersect(p, v, w1)
				for h := 0; h < hits; h++ {
					p.Atomic(tcA.Addr(int64(w1)), 8)
					p.Jump()
					tc[w1]++
				}
			}
		}
	}
	for i := range tc {
		tc[i] /= 2
	}
	return tc, nil
}
