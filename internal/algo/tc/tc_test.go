package tc

import (
	"testing"
	"testing/quick"

	"pushpull/internal/core"
	"pushpull/internal/counters"
	"pushpull/internal/gen"
	"pushpull/internal/graph"
)

// bruteForce counts triangles per vertex by enumerating all vertex triples.
func bruteForce(g *graph.CSR) []int64 {
	n := g.NumV
	tc := make([]int64, n)
	for a := graph.V(0); a < n; a++ {
		for b := a + 1; b < n; b++ {
			if !g.HasEdge(a, b) {
				continue
			}
			for c := b + 1; c < n; c++ {
				if g.HasEdge(b, c) && g.HasEdge(a, c) {
					tc[a]++
					tc[b]++
					tc[c]++
				}
			}
		}
	}
	return tc
}

func TestKnownCounts(t *testing.T) {
	// Triangle with a tail: vertices 0,1,2 form the only triangle.
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	g := b.MustBuild()
	want := []int64{1, 1, 1, 0, 0}

	if got := Sequential(g); !Equal(got, want) {
		t.Fatalf("sequential = %v", got)
	}
	if got, _ := Push(g, Options{}); !Equal(got, want) {
		t.Fatalf("push = %v", got)
	}
	if got, _ := Pull(g, Options{}); !Equal(got, want) {
		t.Fatalf("pull = %v", got)
	}
	if Total(want) != 1 {
		t.Fatalf("Total = %d", Total(want))
	}
}

func TestCompleteGraph(t *testing.T) {
	// K5: every vertex is in C(4,2) = 6 triangles; total C(5,3) = 10.
	g := gen.Complete(5)
	got := Sequential(g)
	for v, c := range got {
		if c != 6 {
			t.Fatalf("tc[%d] = %d, want 6", v, c)
		}
	}
	if Total(got) != 10 {
		t.Fatalf("Total = %d", Total(got))
	}
}

func TestTriangleFree(t *testing.T) {
	// Bipartite graphs have no triangles.
	g := gen.BipartiteFull(4, 5)
	for _, c := range Sequential(g) {
		if c != 0 {
			t.Fatal("triangle in bipartite graph")
		}
	}
	// Rings of length > 3 have none either.
	for _, c := range Sequential(gen.Ring(10)) {
		if c != 0 {
			t.Fatal("triangle in C10")
		}
	}
}

func TestAgainstBruteForce(t *testing.T) {
	g, err := gen.ErdosRenyi(60, 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteForce(g)
	if got := Sequential(g); !Equal(got, want) {
		t.Fatalf("sequential vs brute force:\n got %v\nwant %v", got, want)
	}
}

func TestPushPullAgreeOnRMAT(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(9, 6, 3))
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{}
	opt.Threads = 4
	push, sPush := Push(g, opt)
	pull, sPull := Pull(g, opt)
	seq := Sequential(g)
	if !Equal(push, seq) {
		t.Fatal("push != sequential")
	}
	if !Equal(pull, seq) {
		t.Fatal("pull != sequential")
	}
	if sPush.Direction != core.Push || sPull.Direction != core.Pull {
		t.Fatal("directions wrong")
	}
}

func TestPushPAMatches(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(9, 6, 5))
	if err != nil {
		t.Fatal(err)
	}
	seq := Sequential(g)
	for _, p := range []int{1, 3, 4} {
		pa := graph.BuildPA(g, graph.NewPartition(g.N(), p))
		got, _ := PushPA(pa, Options{})
		if !Equal(got, seq) {
			t.Fatalf("P=%d: PA push mismatch", p)
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(0).MustBuild()
	if got, _ := Push(g, Options{}); len(got) != 0 {
		t.Fatal("empty push")
	}
	if got, _ := Pull(g, Options{}); len(got) != 0 {
		t.Fatal("empty pull")
	}
}

// Property: push == pull == sequential on random graphs.
func TestVariantsAgreeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g, err := gen.ErdosRenyi(80, 4, seed)
		if err != nil {
			return false
		}
		opt := Options{}
		opt.Threads = 3
		a, _ := Push(g, opt)
		b, _ := Pull(g, opt)
		c := Sequential(g)
		return Equal(a, c) && Equal(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestProfiledMatchesFast(t *testing.T) {
	g, err := gen.ErdosRenyi(100, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := Sequential(g)

	prof, _ := core.CountingProfile(3)
	got, err := PushProfiled(g, prof, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(got, want) {
		t.Fatal("profiled push mismatch")
	}

	prof2, _ := core.CountingProfile(3)
	got2, err := PullProfiled(g, prof2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(got2, want) {
		t.Fatal("profiled pull mismatch")
	}
}

// Table 1 shape for TC: push atomics = 2·Σtc·3... exactly the hit count;
// pull atomics = 0; read counts comparable.
func TestCounterShapes(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(8, 6, 9))
	if err != nil {
		t.Fatal(err)
	}
	profPush, gPush := core.CountingProfile(2)
	tcs, err := PushProfiled(g, profPush, nil)
	if err != nil {
		t.Fatal(err)
	}
	push := gPush.Report()

	profPull, gPull := core.CountingProfile(2)
	if _, err := PullProfiled(g, profPull, nil); err != nil {
		t.Fatal(err)
	}
	pull := gPull.Report()

	// Hits before halving: Σ tc(v) · 2.
	var hits int64
	for _, c := range tcs {
		hits += 2 * c
	}
	if got := push.Get(counters.Atomics); got != hits {
		t.Fatalf("push atomics = %d, want %d (one FAA per hit)", got, hits)
	}
	if got := pull.Get(counters.Atomics); got != 0 {
		t.Fatalf("pull atomics = %d", got)
	}
	if pull.Get(counters.Writes) >= push.Get(counters.Atomics)+push.Get(counters.Writes) {
		// Pull writes only into tc[v]; push writes are all atomic.
		t.Log("note: write counts", pull.Get(counters.Writes), push.Get(counters.Writes))
	}
	// Branch and read volumes are dominated by the shared pair loop: equal
	// within 1% between variants (Table 1: 3,173T vs 3,173T cond branches).
	pr, lr := push.Get(counters.Reads), pull.Get(counters.Reads)
	if diff := pr - lr; diff < 0 {
		diff = -diff
	} else if float64(diff) > 0.01*float64(pr) {
		t.Fatalf("read volumes diverge: push %d pull %d", pr, lr)
	}
}

func TestProfiledValidation(t *testing.T) {
	g := gen.Ring(10)
	bad := core.Profile{Threads: 2, Probes: []counters.Probe{counters.NopProbe{}}}
	if _, err := PushProfiled(g, bad, nil); err == nil {
		t.Fatal("bad profile accepted")
	}
}

func BenchmarkPush(b *testing.B) {
	g, _ := gen.RMAT(gen.DefaultRMAT(10, 6, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Push(g, Options{})
	}
}

func BenchmarkPull(b *testing.B) {
	g, _ := gen.RMAT(gen.DefaultRMAT(10, 6, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Pull(g, Options{})
	}
}
