// Package tc implements push- and pull-based triangle counting (paper §3.2
// and Algorithm 2, the parallel NodeIterator scheme of Schank [49]).
//
// Thread t[v] enumerates ordered neighbor pairs (w1, w2) of v and tests
// adj(w1, w2). On a hit, the push variant increments tc[w1] — a write into
// another thread's vertex, resolved with a fetch-and-add — while the pull
// variant increments tc[v], which t[v] owns, with a plain add. Final counts
// are halved (each triangle is seen twice per member vertex). The fast
// variants intersect sorted adjacency lists (same hit set as the literal
// pair loop, without the binary-search factor); the profiled variants
// follow Algorithm 2's loops literally so the counter stream matches the
// paper's accounting.
package tc

import (
	"sync/atomic"
	"time"

	"pushpull/internal/core"
	"pushpull/internal/graph"
	"pushpull/internal/sched"
)

// Options configures a triangle-counting run.
type Options struct {
	core.Options
}

// Sequential counts triangles per vertex with a single thread (reference).
func Sequential(g *graph.CSR) []int64 {
	tc := make([]int64, g.N())
	for v := graph.V(0); v < g.NumV; v++ {
		adj := g.Neighbors(v)
		for _, w1 := range adj {
			tc[v] += int64(intersectCount(adj, g.Neighbors(w1)))
		}
	}
	for i := range tc {
		tc[i] /= 2
	}
	return tc
}

// intersectCount returns |a ∩ b| for sorted slices.
func intersectCount(a, b []graph.V) int {
	i, j, c := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}

// Push counts triangles with the push variant: every adjacency hit
// (v, w1, w2) issues a fetch-and-add on tc[w1], the O(m·d̂) atomics of
// §4.2.
func Push(g *graph.CSR, opt Options) ([]int64, core.RunStats) {
	n := g.N()
	stats := core.RunStats{Direction: core.Push}
	tc := make([]int64, n)
	if n == 0 {
		return tc, stats
	}
	start := time.Now()
	t := sched.Clamp(opt.Threads, n)
	// Dynamic schedule: power-law degree skew makes static blocks lopsided.
	var skipped atomic.Bool
	sched.ParallelFor(n, t, sched.Dynamic, 64, func(w, lo, hi int) {
		if opt.Canceled() {
			skipped.Store(true) // skip remaining chunks; counts stay partial
			return
		}
		for vi := lo; vi < hi; vi++ {
			v := graph.V(vi)
			adj := g.Neighbors(v)
			for _, w1 := range adj {
				// Each common neighbor is one hit for pair (w1, ·):
				// increment tc[w1] once per hit, as Algorithm 2 does.
				hits := intersectCount(adj, g.Neighbors(w1))
				for h := 0; h < hits; h++ {
					atomic.AddInt64(&tc[w1], 1)
				}
			}
		}
	})
	stats.Canceled = skipped.Load()
	stats.Record(time.Since(start))
	finalize(tc, t)
	return tc, stats
}

// Pull counts triangles with the pull variant: hits accumulate into tc[v],
// owned by the executing thread — no atomics at all (§4.9).
func Pull(g *graph.CSR, opt Options) ([]int64, core.RunStats) {
	n := g.N()
	stats := core.RunStats{Direction: core.Pull}
	tc := make([]int64, n)
	if n == 0 {
		return tc, stats
	}
	start := time.Now()
	t := sched.Clamp(opt.Threads, n)
	var skipped atomic.Bool
	sched.ParallelFor(n, t, sched.Dynamic, 64, func(w, lo, hi int) {
		if opt.Canceled() {
			skipped.Store(true) // skip remaining chunks; counts stay partial
			return
		}
		for vi := lo; vi < hi; vi++ {
			v := graph.V(vi)
			adj := g.Neighbors(v)
			local := int64(0)
			for _, w1 := range adj {
				local += int64(intersectCount(adj, g.Neighbors(w1)))
			}
			tc[v] = local // only t[v] writes tc[v]
		}
	})
	stats.Canceled = skipped.Load()
	stats.Record(time.Since(start))
	finalize(tc, t)
	return tc, stats
}

// PushPA counts triangles with Partition-Awareness (§5): hits whose target
// w1 is owned by the executing thread are committed with plain adds in
// phase 1; a barrier; then remote hits with atomics in phase 2.
func PushPA(pa *graph.PAGraph, opt Options) ([]int64, core.RunStats) {
	g := pa.G
	n := g.N()
	stats := core.RunStats{Direction: core.Push}
	tc := make([]int64, n)
	if n == 0 {
		return tc, stats
	}
	start := time.Now()
	p := pa.Part.P
	pool := sched.NewPool(p)
	defer pool.Close()
	barrier := sched.NewBarrier(p)
	// Cancellation is polled at phase granularity: a worker that observes
	// it skips its loops but still reaches every barrier, so the pool's
	// lockstep protocol stays intact.
	var skipped atomic.Bool
	pool.Run(func(w int) {
		lo, hi := pa.Part.Range(w)
		// Phase 1: local targets (owner(w1) == w), plain adds.
		if opt.Canceled() {
			skipped.Store(true)
		} else {
			for v := lo; v < hi; v++ {
				adj := g.Neighbors(v)
				for _, w1 := range pa.Local(v) {
					hits := intersectCount(adj, g.Neighbors(w1))
					tc[w1] += int64(hits)
				}
			}
		}
		barrier.Wait()
		// Phase 2: remote targets, atomics.
		if opt.Canceled() {
			skipped.Store(true)
		} else {
			for v := lo; v < hi; v++ {
				adj := g.Neighbors(v)
				for _, w1 := range pa.Remote(v) {
					hits := intersectCount(adj, g.Neighbors(w1))
					if hits > 0 {
						atomic.AddInt64(&tc[w1], int64(hits))
					}
				}
			}
		}
	})
	stats.Canceled = skipped.Load()
	stats.Record(time.Since(start))
	finalize(tc, p)
	return tc, stats
}

// finalize halves all counts in parallel (Algorithm 2, line 9).
func finalize(tc []int64, t int) {
	sched.ParallelFor(len(tc), t, sched.Static, 0, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			tc[i] /= 2
		}
	})
}

// Total returns the number of distinct triangles: Σ tc(v) / 3.
func Total(tc []int64) int64 {
	var s int64
	for _, c := range tc {
		s += c
	}
	return s / 3
}

// Equal reports whether two count vectors match exactly.
func Equal(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
