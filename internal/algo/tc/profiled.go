package tc

import (
	"pushpull/internal/core"
	"pushpull/internal/graph"
	"pushpull/internal/memsim"
	"pushpull/internal/sched"
)

// Code regions for instruction-TLB modeling.
const (
	regionScan = iota
	regionUpdate
)

type arrays struct {
	off, adj, tc memsim.Array
}

func modelArrays(g *graph.CSR, space *memsim.AddressSpace) arrays {
	if space == nil {
		space = &memsim.AddressSpace{}
	}
	return arrays{
		off: space.NewArray(g.N()+1, 8),
		adj: space.NewArray(int(g.M()), 4),
		tc:  space.NewArray(g.N(), 8),
	}
}

// profiledRun executes Algorithm 2 literally — the nested w1/w2 pair loops
// with a binary-search adjacency oracle — reporting every access to the
// probes. push selects which counter the hit increments (tc[w1] with an
// atomic vs. tc[v] with a private add).
func profiledRun(g *graph.CSR, prof core.Profile, space *memsim.AddressSpace, push bool) ([]int64, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	a := modelArrays(g, space)
	n := g.N()
	tc := make([]int64, n)
	sched.SequentialFor(n, prof.Threads, func(w, lo, hi int) {
		p := prof.Probes[w]
		p.Exec(regionScan)
		for vi := lo; vi < hi; vi++ {
			v := graph.V(vi)
			p.Read(a.off.Addr(int64(vi)), 8)
			adj := g.Neighbors(v)
			offs := g.Offsets[v]
			for i, w1 := range adj {
				p.Branch(true) // w1 loop condition
				p.Read(a.adj.Addr(offs+int64(i)), 4)
				p.Read(a.off.Addr(int64(w1)), 8) // bounds of N(w1) for adj()
				nw1 := g.Neighbors(w1)
				w1off := g.Offsets[w1]
				for j, w2 := range adj {
					p.Branch(true) // w2 loop condition
					p.Read(a.adj.Addr(offs+int64(j)), 4)
					if w2 == w1 {
						continue
					}
					// adj(w1, w2): binary search over N(w1); each probe is
					// one random read of the adjacency array (the R mark).
					lo2, hi2 := 0, len(nw1)
					hit := false
					for lo2 < hi2 {
						mid := (lo2 + hi2) / 2
						p.Read(a.adj.Addr(w1off+int64(mid)), 4)
						p.Branch(nw1[mid] < w2)
						if nw1[mid] == w2 {
							hit = true
							break
						} else if nw1[mid] < w2 {
							lo2 = mid + 1
						} else {
							hi2 = mid
						}
					}
					if hit {
						p.Exec(regionUpdate)
						if push {
							p.Atomic(a.tc.Addr(int64(w1)), 8) // W i: FAA
							p.Jump()
							tc[w1]++
						} else {
							p.Read(a.tc.Addr(int64(vi)), 8)
							p.Write(a.tc.Addr(int64(vi)), 8) // private
							tc[vi]++
						}
					}
				}
			}
		}
	})
	for i := range tc {
		tc[i] /= 2
	}
	return tc, nil
}

// PushProfiled runs the instrumented push variant.
func PushProfiled(g *graph.CSR, prof core.Profile, space *memsim.AddressSpace) ([]int64, error) {
	return profiledRun(g, prof, space, true)
}

// PullProfiled runs the instrumented pull variant.
func PullProfiled(g *graph.CSR, prof core.Profile, space *memsim.AddressSpace) ([]int64, error) {
	return profiledRun(g, prof, space, false)
}
