package mst

import (
	"sort"
	"time"

	"pushpull/internal/core"
	"pushpull/internal/graph"
	"pushpull/internal/memsim"
	"pushpull/internal/sched"
)

// Code regions for instruction-TLB modeling.
const (
	regionFM = iota
	regionBMT
	regionM
)

// BoruvkaProfiled runs a deterministic, instrumented Borůvka MST with the
// Algorithm 7 event accounting: in the Find-Minimum phase the pull variant
// charges only reads plus private writes of each supervertex's own slot,
// while the push variant charges one lock per cross-supervertex candidate
// write (the O(n²) conflicts of §4.7). The Build-Merge-Tree and Merge
// phases are common bookkeeping, charged to the worker owning each
// supervertex under a block decomposition.
//
// Weight ties break on edge endpoints, so the returned tree is byte-
// identical to the fast variants' output.
func BoruvkaProfiled(g *graph.CSR, opt Options, dir core.Direction, prof core.Profile, space *memsim.AddressSpace) (*Result, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	n := g.N()
	res := &Result{}
	res.Stats.Direction = dir
	if n == 0 {
		return res, nil
	}
	if space == nil {
		space = &memsim.AddressSpace{}
	}
	offA := space.NewArray(n+1, 8)
	adjA := space.NewArray(int(g.M()), 4)
	wA := space.NewArray(int(g.M()), 4)
	svFlagA := space.NewArray(n, 4)
	minEA := space.NewArray(n, 24) // the tentative minimum-edge slots
	parentA := space.NewArray(n, 4)

	t := prof.Threads
	svFlag := make([]int32, n)
	sv := make([][]graph.V, n)
	for i := 0; i < n; i++ {
		svFlag[i] = int32(i)
		sv[i] = []graph.V{graph.V(i)}
	}
	avail := make([]int32, n)
	for i := range avail {
		avail[i] = int32(i)
	}
	minE := make([]minEdge, n)
	parent := make([]int32, n)

	// The scan body and root comparator are hoisted out of the round loop
	// so the steady state does not allocate closures; roots and
	// rootMembers are captured by reference.
	var roots []int32
	var rootMembers map[int32][]int32
	rootsByID := func(i, j int) bool { return roots[i] < roots[j] }
	scanSV := func(w int, f int32, push bool) {
		p := prof.Probes[w]
		for _, v := range sv[f] {
			p.Read(offA.Addr(int64(v)), 8)
			ws := g.NeighborWeights(v)
			offs := g.Offsets[v]
			for j, u := range g.Neighbors(v) {
				p.Branch(true)
				p.Read(adjA.Addr(offs+int64(j)), 4)
				p.Read(svFlagA.Addr(int64(u)), 4) // R: neighbor's flag
				tgt := svFlag[u]
				if tgt == f {
					continue
				}
				wt := float32(1)
				if ws != nil {
					wt = ws[j]
					p.Read(wA.Addr(offs+int64(j)), 4)
				}
				if push {
					// Cross-supervertex write: the candidate improvement
					// serializes on the target's slot (§4.7).
					p.Lock(minEA.Addr(int64(tgt)))
					p.Read(minEA.Addr(int64(tgt)), 24)
					slot := &minE[tgt]
					if slot.better(wt, u, v) {
						*slot = minEdge{w: wt, inside: u, other: v, target: f, valid: true}
						p.Write(minEA.Addr(int64(tgt)), 24)
					}
				} else {
					// Own slot only: read-compare-write, no lock.
					p.Read(minEA.Addr(int64(f)), 24)
					best := &minE[f]
					if best.better(wt, v, u) {
						*best = minEdge{w: wt, inside: v, other: u, target: tgt, valid: true}
						p.Write(minEA.Addr(int64(f)), 24)
					}
				}
			}
		}
	}

	for len(avail) > 1 {
		iterStart := time.Now()

		// ---- Phase FM: find minimum outgoing edges ----
		fmStart := time.Now()
		for _, f := range avail {
			minE[f] = minEdge{}
		}
		for w := 0; w < t; w++ {
			prof.Probes[w].Exec(regionFM)
			lo, hi := sched.BlockRange(len(avail), t, w)
			for i := lo; i < hi; i++ {
				scanSV(w, avail[i], dir == core.Push)
			}
		}
		res.PhaseFM = append(res.PhaseFM, time.Since(fmStart))

		anyValid := false
		for _, f := range avail {
			if minE[f].valid {
				anyValid = true
				break
			}
		}
		if !anyValid {
			res.PhaseBMT = append(res.PhaseBMT, 0)
			res.PhaseM = append(res.PhaseM, 0)
			res.Iterations++
			res.Stats.Record(time.Since(iterStart))
			break
		}

		// ---- Phase BMT: hook, break 2-cycles, pointer-jump to roots ----
		bmtStart := time.Now()
		for w := 0; w < t; w++ {
			p := prof.Probes[w]
			p.Exec(regionBMT)
			lo, hi := sched.BlockRange(len(avail), t, w)
			for i := lo; i < hi; i++ {
				f := avail[i]
				p.Read(minEA.Addr(int64(f)), 24)
				p.Write(parentA.Addr(int64(f)), 4)
				if minE[f].valid {
					parent[f] = minE[f].target
				} else {
					parent[f] = f
				}
			}
		}
		for w := 0; w < t; w++ {
			p := prof.Probes[w]
			lo, hi := sched.BlockRange(len(avail), t, w)
			for i := lo; i < hi; i++ {
				f := avail[i]
				pf := parent[f]
				p.Read(parentA.Addr(int64(f)), 4)
				p.Read(parentA.Addr(int64(pf)), 4)
				if parent[pf] == f && f < pf {
					parent[f] = f // the smaller id of a 2-cycle becomes root
					p.Write(parentA.Addr(int64(f)), 4)
				}
			}
		}
		for w := 0; w < t; w++ {
			p := prof.Probes[w]
			lo, hi := sched.BlockRange(len(avail), t, w)
			for i := lo; i < hi; i++ {
				f := avail[i]
				for parent[f] != parent[parent[f]] {
					p.Read(parentA.Addr(int64(parent[f])), 4)
					p.Write(parentA.Addr(int64(f)), 4)
					parent[f] = parent[parent[f]]
				}
			}
		}
		res.PhaseBMT = append(res.PhaseBMT, time.Since(bmtStart))

		// ---- Phase M: contract components into their roots ----
		// roots must start nil, not truncated: the previous round's slice
		// became avail, which this round still iterates.
		mStart := time.Now()
		rootMembers = map[int32][]int32{}
		roots = nil
		for i, f := range avail {
			p := prof.Probes[sched.OwnerOf(len(avail), t, i)]
			p.Exec(regionM)
			p.Read(parentA.Addr(int64(f)), 4)
			r := parent[f]
			if _, ok := rootMembers[r]; !ok {
				roots = append(roots, r)
				//pushpull:allow alloc rootMembers is the round's contraction table; its size is the supervertex count, which halves every round
				rootMembers[r] = nil
			}
			if r == f {
				continue
			}
			//pushpull:allow alloc rootMembers is the round's contraction table; its size is the supervertex count, which halves every round
			rootMembers[r] = append(rootMembers[r], f)
			// Every non-root contributes its minimum edge to the MST.
			p.Read(minEA.Addr(int64(f)), 24)
			e := minE[f]
			a, b := canon(e.inside, e.other)
			res.Edges = append(res.Edges, graph.Edge{U: a, V: b, Weight: e.w})
			res.TotalWeight += float64(e.w)
		}
		sort.Slice(roots, rootsByID)
		for w := 0; w < t; w++ {
			p := prof.Probes[w]
			lo, hi := sched.BlockRange(len(roots), t, w)
			for i := lo; i < hi; i++ {
				r := roots[i]
				for _, f := range rootMembers[r] {
					for _, v := range sv[f] {
						p.Write(svFlagA.Addr(int64(v)), 4)
						svFlag[v] = r
					}
					sv[r] = append(sv[r], sv[f]...)
					sv[f] = nil
				}
			}
		}
		avail = roots
		res.PhaseM = append(res.PhaseM, time.Since(mStart))

		res.Iterations++
		el := time.Since(iterStart)
		res.Stats.Record(el)
		opt.Tick(res.Iterations-1, el)
	}
	sortEdges(res.Edges)
	return res, nil
}
