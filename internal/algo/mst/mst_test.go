package mst

import (
	"math"
	"testing"
	"testing/quick"

	"pushpull/internal/core"
	"pushpull/internal/gen"
	"pushpull/internal/graph"
)

func weighted(t testing.TB, scale, ef int, seed uint64) *graph.CSR {
	t.Helper()
	g, err := gen.RMAT(gen.DefaultRMAT(scale, ef, seed))
	if err != nil {
		t.Fatal(err)
	}
	return gen.WithUniformWeights(g, 1, 100, seed+1)
}

func TestKnownTree(t *testing.T) {
	// Square with diagonal: 0-1 (1), 1-2 (2), 2-3 (3), 3-0 (4), 0-2 (5).
	// MST = {0-1, 1-2, 2-3} with weight 6.
	b := graph.NewBuilder(4)
	b.AddEdgeW(0, 1, 1)
	b.AddEdgeW(1, 2, 2)
	b.AddEdgeW(2, 3, 3)
	b.AddEdgeW(3, 0, 4)
	b.AddEdgeW(0, 2, 5)
	g := b.MustBuild()

	want := Kruskal(g)
	if want.TotalWeight != 6 || len(want.Edges) != 3 {
		t.Fatalf("kruskal: %+v", want)
	}
	for _, dir := range []core.Direction{core.Push, core.Pull} {
		got := Boruvka(g, Options{}, dir)
		if !SameTree(got, want) {
			t.Fatalf("%v: edges %v, want %v", dir, got.Edges, want.Edges)
		}
		if got.TotalWeight != 6 {
			t.Fatalf("%v: weight %v", dir, got.TotalWeight)
		}
	}
	if p := Prim(g); !SameTree(p, want) {
		t.Fatalf("prim: %v", p.Edges)
	}
}

func TestAllVariantsAgreeOnRMAT(t *testing.T) {
	g := weighted(t, 10, 8, 5)
	want := Kruskal(g)
	prim := Prim(g)
	if !SameTree(prim, want) {
		t.Fatal("prim != kruskal")
	}
	for _, dir := range []core.Direction{core.Push, core.Pull} {
		opt := Options{}
		opt.Threads = 4
		got := Boruvka(g, opt, dir)
		if !SameTree(got, want) {
			t.Fatalf("%v: tree differs from kruskal", dir)
		}
		if math.Abs(got.TotalWeight-want.TotalWeight) > 1e-6 {
			t.Fatalf("%v: weight %v vs %v", dir, got.TotalWeight, want.TotalWeight)
		}
		if got.Iterations < 1 || len(got.PhaseFM) != got.Iterations {
			t.Fatalf("%v: phase bookkeeping: %d iters, %d FM entries",
				dir, got.Iterations, len(got.PhaseFM))
		}
	}
}

func TestSpanningTreeEdgeCount(t *testing.T) {
	// A connected graph's MST has exactly n-1 edges.
	g := weighted(t, 9, 10, 7)
	s := graph.ComputeStats(g)
	want := g.N() - s.Components
	for _, dir := range []core.Direction{core.Push, core.Pull} {
		got := Boruvka(g, Options{}, dir)
		if len(got.Edges) != want {
			t.Fatalf("%v: %d edges, want %d", dir, len(got.Edges), want)
		}
	}
}

func TestDisconnectedForest(t *testing.T) {
	b := graph.NewBuilder(6)
	b.AddEdgeW(0, 1, 1)
	b.AddEdgeW(1, 2, 2)
	b.AddEdgeW(3, 4, 3)
	b.AddEdgeW(4, 5, 4)
	g := b.MustBuild()
	want := Kruskal(g)
	for _, dir := range []core.Direction{core.Push, core.Pull} {
		got := Boruvka(g, Options{}, dir)
		if !SameTree(got, want) {
			t.Fatalf("%v: %v vs %v", dir, got.Edges, want.Edges)
		}
		if len(got.Edges) != 4 {
			t.Fatalf("%v: forest has %d edges", dir, len(got.Edges))
		}
	}
	if p := Prim(g); !SameTree(p, want) {
		t.Fatal("prim forest differs")
	}
}

func TestEqualWeightsDeterministic(t *testing.T) {
	// All weights equal: tie-breaking must still produce one consistent
	// tree across all algorithms.
	g := gen.Complete(8) // unweighted → weight 1 everywhere
	want := Kruskal(g)
	if len(want.Edges) != 7 {
		t.Fatalf("kruskal edges = %d", len(want.Edges))
	}
	for _, dir := range []core.Direction{core.Push, core.Pull} {
		got := Boruvka(g, Options{}, dir)
		if !SameTree(got, want) {
			t.Fatalf("%v: tie-broken tree differs: %v vs %v", dir, got.Edges, want.Edges)
		}
	}
	if p := Prim(g); !SameTree(p, want) {
		t.Fatal("prim tie-broken tree differs")
	}
}

func TestRoadNetwork(t *testing.T) {
	g, err := gen.RoadGrid(20, 20, 1.0, 3) // full grid: connected
	if err != nil {
		t.Fatal(err)
	}
	g = gen.WithUniformWeights(g, 1, 10, 4)
	want := Kruskal(g)
	for _, dir := range []core.Direction{core.Push, core.Pull} {
		got := Boruvka(g, Options{}, dir)
		if !SameTree(got, want) {
			t.Fatalf("%v differs", dir)
		}
	}
}

func TestEmptyAndSingle(t *testing.T) {
	empty := graph.NewBuilder(0).MustBuild()
	if res := Boruvka(empty, Options{}, core.Push); len(res.Edges) != 0 {
		t.Fatal("empty graph produced edges")
	}
	single := graph.NewBuilder(1).MustBuild()
	if res := Boruvka(single, Options{}, core.Pull); len(res.Edges) != 0 {
		t.Fatal("single vertex produced edges")
	}
	iso := graph.NewBuilder(3).MustBuild() // no edges at all
	if res := Boruvka(iso, Options{}, core.Push); len(res.Edges) != 0 {
		t.Fatal("edgeless graph produced edges")
	}
}

func TestIterationsLogarithmic(t *testing.T) {
	// Borůvka halves components per round: ~log2(n) iterations.
	g := weighted(t, 10, 8, 9)
	res := Boruvka(g, Options{}, core.Pull)
	if res.Iterations > 14 {
		t.Fatalf("iterations = %d for n=1024", res.Iterations)
	}
}

// Property: push == pull == Kruskal == Prim on random weighted graphs.
func TestVariantsAgreeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g, err := gen.ErdosRenyi(100, 4, seed)
		if err != nil {
			return false
		}
		g = gen.WithUniformWeights(g, 1, 50, seed+3)
		want := Kruskal(g)
		if !SameTree(Prim(g), want) {
			return false
		}
		opt := Options{}
		opt.Threads = 3
		return SameTree(Boruvka(g, opt, core.Push), want) &&
			SameTree(Boruvka(g, opt, core.Pull), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBoruvkaPush(b *testing.B) {
	g := weighted(b, 11, 8, 1)
	opt := Options{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Boruvka(g, opt, core.Push)
	}
}

func BenchmarkBoruvkaPull(b *testing.B) {
	g := weighted(b, 11, 8, 1)
	opt := Options{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Boruvka(g, opt, core.Pull)
	}
}

func BenchmarkKruskal(b *testing.B) {
	g := weighted(b, 11, 8, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Kruskal(g)
	}
}
