// Package mst implements push- and pull-based Borůvka minimum spanning
// tree computation (paper §3.7 and Algorithm 7), plus the sequential
// Kruskal and Prim baselines it is verified against.
//
// Each Borůvka iteration runs three phases, timed separately because
// Figure 4 reports them separately:
//
//   - Find-Minimum (FM): every supervertex determines the cheapest edge
//     leaving it. The pull variant lets each supervertex scan its own
//     edges and write only its own slot; the push variant lets each
//     supervertex override the tentative minima of its *neighbor*
//     supervertices — cross-thread writes that must be resolved with a
//     lock per candidate improvement (the O(n²) conflicts of §4.7).
//   - Build-Merge-Tree (BMT): hook edges are turned into a forest by
//     breaking two-cycles and pointer-jumping to roots.
//   - Merge (M): vertex lists, MST edges and supervertex labels are
//     contracted into the roots.
//
// Weight ties are broken by edge endpoints, making the MST unique and the
// two directions byte-identical.
package mst

import (
	"sort"
	"time"

	"pushpull/internal/atomicx"
	"pushpull/internal/core"
	"pushpull/internal/graph"
	"pushpull/internal/sched"
)

// Options configures a Borůvka run.
type Options struct {
	core.Options
}

// Result carries the tree and the per-phase timings of Figure 4.
type Result struct {
	Edges       []graph.Edge
	TotalWeight float64
	Iterations  int
	PhaseFM     []time.Duration
	PhaseBMT    []time.Duration
	PhaseM      []time.Duration
	Stats       core.RunStats
}

// minEdge is one supervertex's tentative minimum outgoing edge.
type minEdge struct {
	w      float32
	inside graph.V // endpoint inside the supervertex
	other  graph.V // endpoint outside
	target int32   // new_flag: the supervertex on the other side
	valid  bool
}

// better reports whether candidate (w, a, b) beats the current slot, with
// deterministic endpoint tie-breaking.
func (m *minEdge) better(w float32, a, b graph.V) bool {
	if !m.valid {
		return true
	}
	if w != m.w {
		return w < m.w
	}
	ca, cb := canon(a, b)
	ma, mb := canon(m.inside, m.other)
	if ca != ma {
		return ca < ma
	}
	return cb < mb
}

func canon(a, b graph.V) (graph.V, graph.V) {
	if a > b {
		return b, a
	}
	return a, b
}

// Boruvka computes the MST (or forest, for disconnected graphs) with the
// given update direction.
func Boruvka(g *graph.CSR, opt Options, dir core.Direction) *Result {
	n := g.N()
	res := &Result{}
	res.Stats.Direction = dir
	if n == 0 {
		return res
	}
	t := sched.Clamp(opt.Threads, n)

	svFlag := make([]int32, n)
	sv := make([][]graph.V, n)
	for i := 0; i < n; i++ {
		svFlag[i] = int32(i)
		sv[i] = []graph.V{graph.V(i)}
	}
	avail := make([]int32, n)
	for i := range avail {
		avail[i] = int32(i)
	}
	minE := make([]minEdge, n)
	locks := make([]atomicx.SpinLock, n)
	parent := make([]int32, n)

	// Phase bodies and the root comparator are hoisted out of the round
	// loop so the steady state does not allocate closures; avail, roots
	// and rootMembers are captured by reference, so each round's
	// reassignment stays visible.
	fmPull := func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			f := avail[i]
			best := &minE[f]
			for _, v := range sv[f] {
				ws := g.NeighborWeights(v)
				for j, u := range g.Neighbors(v) {
					if svFlag[u] == f {
						continue
					}
					wt := float32(1)
					if ws != nil {
						wt = ws[j]
					}
					if best.better(wt, v, u) {
						*best = minEdge{w: wt, inside: v, other: u, target: svFlag[u], valid: true}
					}
				}
			}
		}
	}
	fmPush := func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			f := avail[i]
			for _, v := range sv[f] {
				ws := g.NeighborWeights(v)
				for j, u := range g.Neighbors(v) {
					tgt := svFlag[u]
					if tgt == f {
						continue
					}
					wt := float32(1)
					if ws != nil {
						wt = ws[j]
					}
					// Cross-supervertex write: serialize on the
					// target's lock (the push conflicts of §4.7).
					locks[tgt].Lock()
					slot := &minE[tgt]
					if slot.better(wt, u, v) {
						*slot = minEdge{w: wt, inside: u, other: v, target: f, valid: true}
					}
					locks[tgt].Unlock()
				}
			}
		}
	}
	var roots []int32
	var rootMembers map[int32][]int32
	rootsByID := func(i, j int) bool { return roots[i] < roots[j] }
	contract := func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			r := roots[i]
			for _, f := range rootMembers[r] {
				for _, v := range sv[f] {
					svFlag[v] = r
				}
				sv[r] = append(sv[r], sv[f]...)
				sv[f] = nil
			}
		}
	}

	for len(avail) > 1 {
		if opt.Canceled() {
			res.Stats.Canceled = true
			break
		}
		iterStart := time.Now()

		// ---- Phase FM: find minimum outgoing edges ----
		fmStart := time.Now()
		for _, f := range avail {
			minE[f] = minEdge{}
		}
		if dir == core.Pull {
			// Each supervertex scans its own edges, writes its own slot.
			sched.ParallelFor(len(avail), t, sched.Dynamic, 8, fmPull)
		} else {
			// Push: scanning supervertex f overrides its neighbors' slots
			// (from g's perspective the inside endpoint is u).
			sched.ParallelFor(len(avail), t, sched.Dynamic, 8, fmPush)
		}
		res.PhaseFM = append(res.PhaseFM, time.Since(fmStart))

		anyValid := false
		for _, f := range avail {
			if minE[f].valid {
				anyValid = true
				break
			}
		}
		if !anyValid {
			res.PhaseBMT = append(res.PhaseBMT, 0)
			res.PhaseM = append(res.PhaseM, 0)
			res.Iterations++
			res.Stats.Record(time.Since(iterStart))
			break
		}

		// ---- Phase BMT: hook, break 2-cycles, pointer-jump to roots ----
		bmtStart := time.Now()
		for _, f := range avail {
			if minE[f].valid {
				parent[f] = minE[f].target
			} else {
				parent[f] = f
			}
		}
		for _, f := range avail {
			if p := parent[f]; parent[p] == f && f < p {
				parent[f] = f // the smaller id of a 2-cycle becomes the root
			}
		}
		for _, f := range avail {
			for parent[f] != parent[parent[f]] {
				parent[f] = parent[parent[f]]
			}
		}
		res.PhaseBMT = append(res.PhaseBMT, time.Since(bmtStart))

		// ---- Phase M: contract components into their roots ----
		// roots must start nil, not truncated: the previous round's slice
		// became avail, which this round still iterates.
		mStart := time.Now()
		rootMembers = map[int32][]int32{}
		roots = nil
		for _, f := range avail {
			r := parent[f]
			if r == f {
				if _, ok := rootMembers[r]; !ok {
					roots = append(roots, r)
					//pushpull:allow alloc rootMembers is the round's contraction table; its size is the supervertex count, which halves every round
					rootMembers[r] = nil
				}
				continue
			}
			if _, ok := rootMembers[r]; !ok {
				roots = append(roots, r)
				//pushpull:allow alloc rootMembers is the round's contraction table; its size is the supervertex count, which halves every round
				rootMembers[r] = nil
			}
			//pushpull:allow alloc rootMembers is the round's contraction table; its size is the supervertex count, which halves every round
			rootMembers[r] = append(rootMembers[r], f)
			// Every non-root contributes its minimum edge to the MST.
			e := minE[f]
			a, b := canon(e.inside, e.other)
			res.Edges = append(res.Edges, graph.Edge{U: a, V: b, Weight: e.w})
			res.TotalWeight += float64(e.w)
		}
		sort.Slice(roots, rootsByID)
		sched.ParallelFor(len(roots), t, sched.Dynamic, 4, contract)
		avail = roots
		res.PhaseM = append(res.PhaseM, time.Since(mStart))

		res.Iterations++
		el := time.Since(iterStart)
		res.Stats.Record(el)
		opt.Tick(res.Iterations-1, el)
	}
	sortEdges(res.Edges)
	return res
}

// Kruskal computes the reference MST with sorted edges and union-find.
func Kruskal(g *graph.CSR) *Result {
	res := &Result{Iterations: 1}
	var edges []graph.Edge
	for v := graph.V(0); v < g.NumV; v++ {
		ws := g.NeighborWeights(v)
		for j, u := range g.Neighbors(v) {
			if u < v {
				continue
			}
			wt := float32(1)
			if ws != nil {
				wt = ws[j]
			}
			edges = append(edges, graph.Edge{U: v, V: u, Weight: wt})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.Weight != b.Weight {
			return a.Weight < b.Weight
		}
		if a.U != b.U {
			return a.U < b.U
		}
		return a.V < b.V
	})
	uf := newUnionFind(g.N())
	for _, e := range edges {
		if uf.union(e.U, e.V) {
			res.Edges = append(res.Edges, e)
			res.TotalWeight += float64(e.Weight)
		}
	}
	sortEdges(res.Edges)
	return res
}

// Prim computes the reference MST with a lazy heap from vertex 0 (restarted
// per component so disconnected graphs produce the full forest).
func Prim(g *graph.CSR) *Result {
	res := &Result{Iterations: 1}
	n := g.N()
	inTree := make([]bool, n)
	type item struct {
		w    float32
		u, v graph.V // u in tree, v candidate
	}
	var h []item
	less := func(a, b item) bool {
		if a.w != b.w {
			return a.w < b.w
		}
		ca, cb := canon(a.u, a.v)
		da, db := canon(b.u, b.v)
		if ca != da {
			return ca < da
		}
		return cb < db
	}
	push := func(it item) {
		h = append(h, it)
		for i := len(h) - 1; i > 0; {
			p := (i - 1) / 2
			if less(h[i], h[p]) {
				h[i], h[p] = h[p], h[i]
				i = p
			} else {
				break
			}
		}
	}
	pop := func() item {
		top := h[0]
		h[0] = h[len(h)-1]
		h = h[:len(h)-1]
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < len(h) && less(h[l], h[m]) {
				m = l
			}
			if r < len(h) && less(h[r], h[m]) {
				m = r
			}
			if m == i {
				break
			}
			h[i], h[m] = h[m], h[i]
			i = m
		}
		return top
	}
	addVertex := func(v graph.V) {
		inTree[v] = true
		ws := g.NeighborWeights(v)
		for j, u := range g.Neighbors(v) {
			if !inTree[u] {
				wt := float32(1)
				if ws != nil {
					wt = ws[j]
				}
				push(item{w: wt, u: v, v: u})
			}
		}
	}
	for start := graph.V(0); start < g.NumV; start++ {
		if inTree[start] {
			continue
		}
		addVertex(start)
		for len(h) > 0 {
			it := pop()
			if inTree[it.v] {
				continue
			}
			a, b := canon(it.u, it.v)
			res.Edges = append(res.Edges, graph.Edge{U: a, V: b, Weight: it.w})
			res.TotalWeight += float64(it.w)
			addVertex(it.v)
		}
	}
	sortEdges(res.Edges)
	return res
}

// sortEdges orders edges canonically so results compare byte-for-byte.
func sortEdges(es []graph.Edge) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
}

// unionFind is a path-halving union-by-size structure.
type unionFind struct {
	parent []int32
	size   []int32
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int32, n), size: make([]int32, n)}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
		uf.size[i] = 1
	}
	return uf
}

func (uf *unionFind) find(x graph.V) int32 {
	r := int32(x)
	for uf.parent[r] != r {
		uf.parent[r] = uf.parent[uf.parent[r]]
		r = uf.parent[r]
	}
	return r
}

func (uf *unionFind) union(a, b graph.V) bool {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return false
	}
	if uf.size[ra] < uf.size[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	uf.size[ra] += uf.size[rb]
	return true
}

// SameTree reports whether two results select the same edge set.
func SameTree(a, b *Result) bool {
	if len(a.Edges) != len(b.Edges) {
		return false
	}
	for i := range a.Edges {
		if a.Edges[i].U != b.Edges[i].U || a.Edges[i].V != b.Edges[i].V {
			return false
		}
	}
	return true
}
