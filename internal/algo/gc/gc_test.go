package gc

import (
	"testing"
	"testing/quick"

	"pushpull/internal/core"
	"pushpull/internal/counters"
	"pushpull/internal/gen"
	"pushpull/internal/graph"
)

func rmat(t testing.TB, scale, ef int, seed uint64) *graph.CSR {
	t.Helper()
	g, err := gen.RMAT(gen.DefaultRMAT(scale, ef, seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGreedyValid(t *testing.T) {
	for _, g := range []*graph.CSR{gen.Ring(10), gen.Complete(6), gen.Star(8), rmat(t, 9, 6, 1)} {
		res := Greedy(g)
		if err := Validate(g, res.Colors); err != nil {
			t.Fatal(err)
		}
	}
	// Greedy on K6 uses exactly 6 colors; on a star exactly 2.
	if got := Greedy(gen.Complete(6)).NumColors; got != 6 {
		t.Fatalf("K6 colors = %d", got)
	}
	if got := Greedy(gen.Star(8)).NumColors; got != 2 {
		t.Fatalf("star colors = %d", got)
	}
}

func TestBomanPushValid(t *testing.T) {
	g := rmat(t, 10, 8, 5)
	part := graph.NewPartition(g.N(), 4)
	res, err := Push(g, part, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(g, res.Colors); err != nil {
		t.Fatal(err)
	}
	if res.Iterations < 1 {
		t.Fatal("no iterations recorded")
	}
	if res.NumColors < 2 {
		t.Fatalf("colors = %d", res.NumColors)
	}
}

func TestBomanPullValid(t *testing.T) {
	g := rmat(t, 10, 8, 6)
	part := graph.NewPartition(g.N(), 4)
	res, err := Pull(g, part, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(g, res.Colors); err != nil {
		t.Fatal(err)
	}
}

func TestBomanSinglePartitionConvergesInOneIteration(t *testing.T) {
	// P=1: no border, no conflicts; one iteration must suffice.
	g := rmat(t, 8, 6, 7)
	part := graph.NewPartition(g.N(), 1)
	res, err := Push(g, part, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 1 {
		t.Fatalf("iterations = %d, want 1", res.Iterations)
	}
	if err := Validate(g, res.Colors); err != nil {
		t.Fatal(err)
	}
}

func TestBomanPartitionMismatch(t *testing.T) {
	g := gen.Ring(10)
	if _, err := Push(g, graph.NewPartition(5, 2), Options{}); err == nil {
		t.Fatal("partition mismatch accepted")
	}
}

func TestFrontierExploitValid(t *testing.T) {
	for _, dir := range []core.Direction{core.Push, core.Pull} {
		g := rmat(t, 10, 8, 8)
		opt := Options{MaxIters: 4096}
		res := FrontierExploit(g, opt, dir, nil)
		if err := Validate(g, res.Colors); err != nil {
			t.Fatalf("dir %v: %v", dir, err)
		}
		if res.Iterations < 2 {
			t.Fatalf("dir %v: iterations = %d", dir, res.Iterations)
		}
	}
}

func TestFrontierExploitRoadFewIterations(t *testing.T) {
	// On a road network FE finishes in few rounds (Fig 6b: rca +FE = 5)
	// because the initial independent set saturates the sparse graph.
	g, err := gen.RoadGrid(40, 40, 0.8, 3)
	if err != nil {
		t.Fatal(err)
	}
	res := FrontierExploit(g, Options{MaxIters: 4096}, core.Push, nil)
	if err := Validate(g, res.Colors); err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 12 {
		t.Fatalf("road FE iterations = %d, want small", res.Iterations)
	}
}

func TestGrSReducesIterations(t *testing.T) {
	g := rmat(t, 10, 8, 9)
	opt := Options{MaxIters: 4096}
	plain := FrontierExploit(g, opt, core.Push, nil)
	grs := GrS(g, opt, core.Push, 0.1)
	if err := Validate(g, grs.Colors); err != nil {
		t.Fatal(err)
	}
	if grs.Iterations > plain.Iterations {
		t.Fatalf("GrS iterations %d > plain FE %d", grs.Iterations, plain.Iterations)
	}
}

func TestGSValid(t *testing.T) {
	g := rmat(t, 10, 8, 10)
	res := GS(g, Options{MaxIters: 4096}, core.Push, 1.0)
	if err := Validate(g, res.Colors); err != nil {
		t.Fatal(err)
	}
}

func TestConflictRemoval(t *testing.T) {
	g := rmat(t, 10, 8, 11)
	part := graph.NewPartition(g.N(), 4)
	res, err := ConflictRemoval(g, part, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 1 {
		t.Fatalf("CR iterations = %d, want exactly 1", res.Iterations)
	}
	if err := Validate(g, res.Colors); err != nil {
		t.Fatal(err)
	}
	if _, err := ConflictRemoval(g, graph.NewPartition(3, 2), Options{}); err == nil {
		t.Fatal("partition mismatch accepted")
	}
}

func TestValidateCatchesBadColorings(t *testing.T) {
	g := gen.Ring(4)
	if err := Validate(g, []int32{0, 1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := Validate(g, []int32{0, -1, 0, 1}); err == nil {
		t.Fatal("uncolored vertex accepted")
	}
	if err := Validate(g, []int32{0, 0, 1, 2}); err == nil {
		t.Fatal("monochromatic edge accepted")
	}
	if err := Validate(g, []int32{0, 1, 0, 1}); err != nil {
		t.Fatalf("valid 2-coloring rejected: %v", err)
	}
}

func TestCountColors(t *testing.T) {
	if got := CountColors([]int32{0, 2, 2, 5, -1}); got != 3 {
		t.Fatalf("CountColors = %d", got)
	}
	if got := CountColors(nil); got != 0 {
		t.Fatalf("CountColors(nil) = %d", got)
	}
}

func TestEmptyGraphs(t *testing.T) {
	g := graph.NewBuilder(0).MustBuild()
	part := graph.NewPartition(0, 2)
	if res, err := Push(g, part, Options{}); err != nil || len(res.Colors) != 0 {
		t.Fatal("empty push")
	}
	if res := FrontierExploit(g, Options{}, core.Push, nil); len(res.Colors) != 0 {
		t.Fatal("empty FE")
	}
}

// Property: every variant yields a valid coloring on random graphs.
func TestAllVariantsValidProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g, err := gen.ErdosRenyi(120, 4, seed)
		if err != nil {
			return false
		}
		part := graph.NewPartition(g.N(), 3)
		opt := Options{MaxIters: 256}
		if r, err := Push(g, part, opt); err != nil || Validate(g, r.Colors) != nil {
			return false
		}
		if r, err := Pull(g, part, opt); err != nil || Validate(g, r.Colors) != nil {
			return false
		}
		if r := FrontierExploit(g, Options{MaxIters: 4096}, core.Push, nil); Validate(g, r.Colors) != nil {
			return false
		}
		if r, err := ConflictRemoval(g, part, opt); err != nil || Validate(g, r.Colors) != nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestProfiledValidAndCounterShapes(t *testing.T) {
	g := rmat(t, 9, 8, 13)
	part := graph.NewPartition(g.N(), 4)
	opt := Options{}

	profPush, gPush := core.CountingProfile(4)
	rp, err := PushProfiled(g, part, opt, profPush, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(g, rp.Colors); err != nil {
		t.Fatalf("profiled push: %v", err)
	}
	push := gPush.Report()

	profPull, gPull := core.CountingProfile(4)
	rl, err := PullProfiled(g, part, opt, profPull, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(g, rl.Colors); err != nil {
		t.Fatalf("profiled pull: %v", err)
	}
	pull := gPull.Report()

	// Table 1 BGC shapes: atomics 0 in both; locks > 0 in both; pull
	// strictly more reads (full border rescans).
	if push.Get(counters.Atomics) != 0 || pull.Get(counters.Atomics) != 0 {
		t.Fatal("BGC must use locks, not atomics")
	}
	if push.Get(counters.Locks) == 0 || pull.Get(counters.Locks) == 0 {
		t.Fatalf("locks: push %d pull %d, both must be > 0",
			push.Get(counters.Locks), pull.Get(counters.Locks))
	}
	if pull.Get(counters.Reads) <= push.Get(counters.Reads) {
		t.Fatalf("pull reads %d not > push reads %d",
			pull.Get(counters.Reads), push.Get(counters.Reads))
	}
}

func TestProfiledValidation(t *testing.T) {
	g := gen.Ring(10)
	part := graph.NewPartition(10, 2)
	bad := core.Profile{Threads: 2, Probes: []counters.Probe{counters.NopProbe{}}}
	if _, err := PushProfiled(g, part, Options{}, bad, nil); err == nil {
		t.Fatal("bad profile accepted")
	}
}

func BenchmarkBomanPush(b *testing.B) {
	g := rmat(b, 11, 8, 1)
	part := graph.NewPartition(g.N(), 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Push(g, part, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBomanPull(b *testing.B) {
	g := rmat(b, 11, 8, 1)
	part := graph.NewPartition(g.N(), 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Pull(g, part, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGrS(b *testing.B) {
	g := rmat(b, 11, 8, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GrS(g, Options{MaxIters: 4096}, core.Push, 0.1)
	}
}
