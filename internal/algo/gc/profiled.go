package gc

import (
	"time"

	"pushpull/internal/core"
	"pushpull/internal/graph"
	"pushpull/internal/memsim"
	"pushpull/internal/sched"
)

// Code regions for instruction-TLB modeling.
const (
	regionColor = iota
	regionFix
)

// ProfiledResult carries the coloring produced by an instrumented run.
type ProfiledResult struct {
	Colors     []int32
	Iterations int
}

// runProfiled executes the Boman algorithm deterministically, reporting
// accesses to the per-thread probes with the Table 1 BGC accounting: one
// lock per conflict marking in *both* directions (the paper measures equal
// lock counts), while pull issues strictly more reads because it rescans
// the full border set every iteration instead of the push-maintained dirty
// set.
func runProfiled(g *graph.CSR, part graph.Partition, opt Options, prof core.Profile, space *memsim.AddressSpace, dir core.Direction) (*ProfiledResult, error) {
	opt.defaults()
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	if part.P != prof.Threads {
		part = graph.NewPartition(g.N(), prof.Threads)
	}
	n := g.N()
	if space == nil {
		space = &memsim.AddressSpace{}
	}
	offA := space.NewArray(n+1, 8)
	adjA := space.NewArray(int(g.M()), 4)
	colA := space.NewArray(n, 4)
	availA := space.NewArray(n, 8) // first word of each row, the hot part

	s := newState(g, part)
	res := &ProfiledResult{Colors: make([]int32, n)}
	if n == 0 {
		return res, nil
	}
	border := part.Border(g)
	borderByOwner := make([][]graph.V, part.P)
	for _, v := range border {
		o := part.Owner(v)
		borderByOwner[o] = append(borderByOwner[o], v)
	}
	dirty := border
	// Reused across iterations (and across the modeled "threads", which
	// run sequentially here): the taken-color scratch set and the phase-2
	// scan body, hoisted so the iteration loop itself allocates nothing
	// beyond the dirty list it maintains.
	taken := map[int32]bool{}
	var conflicts int
	var nextDirty []graph.V
	scanFor := func(w int, verts []graph.V) {
		p := prof.Probes[w]
		p.Exec(regionFix)
		for _, v := range verts {
			ov := part.Owner(v)
			p.Read(colA.Addr(int64(v)), 4)
			cv := s.colors[v]
			offs := g.Offsets[v]
			p.Read(offA.Addr(int64(v)), 8)
			for j, u := range g.Neighbors(v) {
				p.Branch(true)
				p.Read(adjA.Addr(offs+int64(j)), 4)
				if part.Owner(u) == ov {
					continue
				}
				p.Read(colA.Addr(int64(u)), 4) // R: other thread's color
				if s.colors[u] != cv {
					continue
				}
				conflicts++
				if dir == core.Push {
					loser := v
					if u > v {
						loser = u
					}
					p.Lock(availA.Addr(int64(loser)))
					p.Write(availA.Addr(int64(loser)), 8) // W i
					s.avail[loser].set(cv)
					if s.needs.Set(loser) {
						nextDirty = append(nextDirty, loser)
					}
				} else if v > u {
					p.Lock(availA.Addr(int64(v)))
					p.Write(availA.Addr(int64(v)), 8)
					s.avail[v].set(cv)
					s.needs.Set(v)
				}
			}
		}
	}

	for iter := 0; iter < opt.MaxIters; iter++ {
		iterStart := time.Now()
		// Phase 1 (profiled): greedy coloring of vertices needing color.
		for w := 0; w < part.P; w++ {
			p := prof.Probes[w]
			p.Exec(regionColor)
			lo, hi := part.Range(w)
			for v := lo; v < hi; v++ {
				p.Read(colA.Addr(int64(v)), 4)
				p.Branch(!s.needs.Get(v))
				if !s.needs.Get(v) {
					continue
				}
				clear(taken)
				p.Read(offA.Addr(int64(v)), 8)
				offs := g.Offsets[v]
				for j, u := range g.Neighbors(v) {
					p.Branch(true)
					p.Read(adjA.Addr(offs+int64(j)), 4)
					p.Read(colA.Addr(int64(u)), 4)
					if part.Owner(u) == w && s.colors[u] >= 0 {
						//pushpull:allow alloc taken is a reused scratch set, cleared per vertex; it only grows to one neighborhood's palette
						taken[s.colors[u]] = true
					}
				}
				p.Read(availA.Addr(int64(v)), 8)
				s.colors[v] = smallestAllowed(s.avail[v], taken)
				p.Write(colA.Addr(int64(v)), 4)
			}
		}
		s.needs.Clear()

		// Phase 2 (profiled): conflict fixing. nextDirty must start nil,
		// not truncated: dedupe below aliases its backing array into
		// dirty, which the next round still scans.
		conflicts = 0
		nextDirty = nil
		if dir == core.Push {
			// The dirty list is scanned in deterministic block order.
			t := part.P
			for w := 0; w < t; w++ {
				lo, hi := sched.BlockRange(len(dirty), t, w)
				scanFor(w, dirty[lo:hi])
			}
			dirty = dedupe(nextDirty)
		} else {
			for w := 0; w < part.P; w++ {
				scanFor(w, borderByOwner[w])
			}
		}
		res.Iterations++
		// Same per-iteration contract as the plain runs: the hook sees the
		// wall time of every instrumented iteration (probe bookkeeping
		// included, so it is slower than an uninstrumented pass).
		opt.Tick(iter, time.Since(iterStart))
		if conflicts == 0 {
			break
		}
	}
	copy(res.Colors, s.colors)
	return res, nil
}

// PushProfiled runs the instrumented push variant.
func PushProfiled(g *graph.CSR, part graph.Partition, opt Options, prof core.Profile, space *memsim.AddressSpace) (*ProfiledResult, error) {
	return runProfiled(g, part, opt, prof, space, core.Push)
}

// PullProfiled runs the instrumented pull variant.
func PullProfiled(g *graph.CSR, part graph.Partition, opt Options, prof core.Profile, space *memsim.AddressSpace) (*ProfiledResult, error) {
	return runProfiled(g, part, opt, prof, space, core.Pull)
}
