package gc

import (
	"fmt"
	"time"

	"pushpull/internal/atomicx"
	"pushpull/internal/core"
	"pushpull/internal/frontier"
	"pushpull/internal/graph"
	"pushpull/internal/memsim"
	"pushpull/internal/sched"
)

// Hub-cached pull coloring, extending the hub split of "A New Frontier
// for Pull-Based Graph Processing" to the Boman conflict scan and the
// Frontier-Exploit pull discovery. Both pull kernels pay one random read
// per scanned edge — colors[u] in the conflict scan, the frontier bit of
// u in FE discovery — and on skewed graphs most of those land on the same
// few hubs. The split's hub prefix stores compact slot ids, so the scan
// serves hub neighbors from a k-entry cache refreshed once per round
// (colors are only written in phase 1, frontier membership only between
// rounds, so the cached values are exact, not stale): the colorings are
// identical to the plain pull kernels, edge for edge.

// Code regions for instruction-TLB modeling of the hub-cached kernels
// (continuing after the strategy regions).
const (
	regionHubRefresh = iota + 7
	regionHubFix
	regionHubDiscover
)

// PullHub runs Boman coloring with a hub-cached pull conflict scan: the
// per-iteration border rescan reads hub neighbors' colors (and owners)
// out of k-entry caches refreshed after phase 1 instead of chasing them
// through the full color array. hs must be BuildHubSplit(g, k) for the
// same g. The coloring equals Pull's exactly — the scan visits the same
// conflict edges with the same outcomes, only reordered within each row.
func PullHub(g *graph.CSR, hs *graph.HubSplit, part graph.Partition, opt Options) (*Result, error) {
	opt.defaults()
	n := g.N()
	res := &Result{Colors: make([]int32, n)}
	res.Stats.Direction = core.Pull
	if n == 0 {
		return res, nil
	}
	if int(part.NumV) != n {
		return nil, fmt.Errorf("gc: partition over %d vertices for a graph with %d", part.NumV, n)
	}
	s := newState(g, part)
	t := part.P
	pool := sched.NewPool(t)
	defer pool.Close()

	border := part.Border(g)
	borderByOwner := make([][]graph.V, t)
	for _, v := range border {
		o := part.Owner(v)
		borderByOwner[o] = append(borderByOwner[o], v)
	}
	conflictCount := make([]int, t)
	// Same one-lock-per-marking accounting as the plain variants (Table 1).
	rowLocks := make([]atomicx.SpinLock, n)

	// The caches: color refreshed per iteration, owner fixed for the run.
	hubColor := make([]int32, hs.K)
	hubOwner := make([]int32, hs.K)
	for sl, h := range hs.Hubs {
		hubOwner[sl] = int32(part.Owner(h))
	}

	colorPhase := func(w int) { s.colorPartition(w) }
	refresh := func() {
		for sl, h := range hs.Hubs {
			hubColor[sl] = s.colors[h]
		}
	}
	fixConflicts := func(w int) {
		mark := func(loser graph.V, c int32) {
			rowLocks[loser].Lock()
			s.avail[loser].set(c)
			rowLocks[loser].Unlock()
			s.needs.Set(loser)
		}
		// Pull: each thread scans only the border vertices it owns and
		// only ever modifies those — hub neighbors come from the caches.
		for _, v := range borderByOwner[w] {
			cv := s.colors[v]
			for _, sl := range hs.HubRow(v) {
				if hubOwner[sl] == int32(w) || hubColor[sl] != cv {
					continue
				}
				conflictCount[w]++
				if v > hs.Hubs[sl] { // v loses: mark own state only
					mark(v, cv)
				}
			}
			for _, u := range hs.ResidualRow(v) {
				if part.Owner(u) == w || s.colors[u] != cv {
					continue
				}
				conflictCount[w]++
				if v > u {
					mark(v, cv)
				}
			}
		}
	}

	for iter := 0; iter < opt.MaxIters; iter++ {
		if opt.Canceled() {
			res.Stats.Canceled = true
			break
		}
		start := time.Now()
		pool.Run(colorPhase)
		s.needs.Clear()
		refresh()
		for i := range conflictCount {
			conflictCount[i] = 0
		}
		pool.Run(fixConflicts)
		res.Iterations++
		el := time.Since(start)
		res.Stats.Record(el)
		opt.Tick(iter, el)

		total := 0
		for _, c := range conflictCount {
			total += c
		}
		if total == 0 {
			break
		}
	}
	copy(res.Colors, s.colors)
	res.NumColors = CountColors(res.Colors)
	return res, nil
}

// PullHubProfiled runs the instrumented hub-cached pull variant. The hub
// prefix of each border row charges one sequential adjacency read plus one
// read into the k-entry color cache — no random color fetch — which is
// exactly the traffic reduction the split claims; the residual suffix pays
// the plain pull costs, and every conflict marking still takes its row
// lock (the Table 1 BGC parity).
func PullHubProfiled(g *graph.CSR, hs *graph.HubSplit, part graph.Partition, opt Options, prof core.Profile, space *memsim.AddressSpace) (*ProfiledResult, error) {
	opt.defaults()
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	if part.P != prof.Threads {
		part = graph.NewPartition(g.N(), prof.Threads)
	}
	n := g.N()
	if space == nil {
		space = &memsim.AddressSpace{}
	}
	offA := space.NewArray(n+1, 8)
	adjA := space.NewArray(int(g.M()), 4)
	colA := space.NewArray(n, 4)
	availA := space.NewArray(n, 8)
	hubColA := space.NewArray(hs.K, 4)

	s := newState(g, part)
	res := &ProfiledResult{Colors: make([]int32, n)}
	if n == 0 {
		return res, nil
	}
	border := part.Border(g)
	borderByOwner := make([][]graph.V, part.P)
	for _, v := range border {
		o := part.Owner(v)
		borderByOwner[o] = append(borderByOwner[o], v)
	}
	hubColor := make([]int32, hs.K)
	hubOwner := make([]int32, hs.K)
	for sl, h := range hs.Hubs {
		hubOwner[sl] = int32(part.Owner(h))
	}
	taken := map[int32]bool{}
	var conflicts int
	scanFor := func(w int, verts []graph.V) {
		p := prof.Probes[w]
		p.Exec(regionHubFix)
		for _, v := range verts {
			p.Read(colA.Addr(int64(v)), 4)
			cv := s.colors[v]
			offs := g.Offsets[v]
			p.Read(offA.Addr(int64(v)), 8)
			for j, sl := range hs.HubRow(v) {
				p.Branch(true)
				p.Read(adjA.Addr(offs+int64(j)), 4) // sequential slot read
				p.Read(hubColA.Addr(int64(sl)), 4)  // cache-resident color
				if hubOwner[sl] == int32(w) || hubColor[sl] != cv {
					continue
				}
				conflicts++
				if v > hs.Hubs[sl] {
					p.Lock(availA.Addr(int64(v)))
					p.Write(availA.Addr(int64(v)), 8)
					s.avail[v].set(cv)
					s.needs.Set(v)
				}
			}
			resBase := hs.HubEnd[v]
			for j, u := range hs.ResidualRow(v) {
				p.Branch(true)
				p.Read(adjA.Addr(resBase+int64(j)), 4)
				if part.Owner(u) == w {
					continue
				}
				p.Read(colA.Addr(int64(u)), 4) // R: random residual color
				if s.colors[u] != cv {
					continue
				}
				conflicts++
				if v > u {
					p.Lock(availA.Addr(int64(v)))
					p.Write(availA.Addr(int64(v)), 8)
					s.avail[v].set(cv)
					s.needs.Set(v)
				}
			}
		}
	}

	for iter := 0; iter < opt.MaxIters; iter++ {
		iterStart := time.Now()
		// Phase 1 (profiled): identical to the plain instrumented run.
		for w := 0; w < part.P; w++ {
			p := prof.Probes[w]
			p.Exec(regionColor)
			lo, hi := part.Range(w)
			for v := lo; v < hi; v++ {
				p.Read(colA.Addr(int64(v)), 4)
				p.Branch(!s.needs.Get(v))
				if !s.needs.Get(v) {
					continue
				}
				clear(taken)
				p.Read(offA.Addr(int64(v)), 8)
				offs := g.Offsets[v]
				for j, u := range g.Neighbors(v) {
					p.Branch(true)
					p.Read(adjA.Addr(offs+int64(j)), 4)
					p.Read(colA.Addr(int64(u)), 4)
					if part.Owner(u) == w && s.colors[u] >= 0 {
						//pushpull:allow alloc taken is a reused scratch set, cleared per vertex; it only grows to one neighborhood's palette
						taken[s.colors[u]] = true
					}
				}
				p.Read(availA.Addr(int64(v)), 8)
				s.colors[v] = smallestAllowed(s.avail[v], taken)
				p.Write(colA.Addr(int64(v)), 4)
			}
		}
		s.needs.Clear()

		// Cache refresh: a single-thread k-entry prologue on probe 0.
		p0 := prof.Probes[0]
		p0.Exec(regionHubRefresh)
		for sl, h := range hs.Hubs {
			p0.Read(colA.Addr(int64(h)), 4)
			hubColor[sl] = s.colors[h]
			p0.Write(hubColA.Addr(int64(sl)), 4)
		}

		// Phase 2 (profiled): the hub-cached border rescan.
		conflicts = 0
		for w := 0; w < part.P; w++ {
			scanFor(w, borderByOwner[w])
		}
		res.Iterations++
		opt.Tick(iter, time.Since(iterStart))
		if conflicts == 0 {
			break
		}
	}
	copy(res.Colors, s.colors)
	return res, nil
}

// FrontierExploitHub runs the FE strategy with hub-cached pull discovery:
// pull rounds probe hub neighbors' frontier membership in a k-bit cache
// (refreshed from the frontier bitmap each round) and only residual
// neighbors in the full bitmap. Push rounds and conflict resolution are
// untouched, so the coloring — and the per-iteration direction trace under
// a switching policy — equals FrontierExploit's exactly.
func FrontierExploitHub(g *graph.CSR, hs *graph.HubSplit, opt Options, dir core.Direction, policy core.SwitchPolicy) *Result {
	return frontierExploit(g, hs, opt, dir, policy)
}

// hubFrontier is the k-bit frontier-membership cache of FE pull rounds.
type hubFrontier struct {
	hs    *graph.HubSplit
	words []uint64
}

func newHubFrontier(hs *graph.HubSplit) *hubFrontier {
	return &hubFrontier{hs: hs, words: make([]uint64, (hs.K+63)/64)}
}

// refresh rebuilds the cache from the current frontier bitmap.
func (h *hubFrontier) refresh(inF *frontier.Bitmap) {
	for i := range h.words {
		h.words[i] = 0
	}
	for sl, hub := range h.hs.Hubs {
		if inF.Get(hub) {
			h.words[sl>>6] |= 1 << (uint(sl) & 63)
		}
	}
}

// get reports slot sl's cached frontier membership.
func (h *hubFrontier) get(sl graph.V) bool {
	return h.words[sl>>6]&(1<<(uint(sl)&63)) != 0
}
