// Package gc implements push- and pull-based Boman graph coloring (paper
// §3.6 and Algorithm 6) together with the acceleration strategies of §5:
// Frontier-Exploit (FE), Generic-Switch (GS), Greedy-Switch (GrS) and
// Conflict-Removal (CR), plus the optimized sequential greedy baseline they
// switch to.
//
// Boman coloring alternates two phases. Phase 1 colors each thread's
// partition independently (seq_color_partition). Phase 2 scans border
// vertices for cross-partition conflicts; a conflicting pair schedules one
// endpoint for recoloring by forbidding its color in the avail matrix. The
// push variant writes avail[u][c] of the *other* thread's vertex — which
// also lets it hand the exact set of dirty vertices to the next iteration —
// while the pull variant may only write its own avail[v][c], so every
// iteration must rescan all border vertices to find out what changed. That
// asymmetry (same lock count, more pull reads) is the Table 1 BGC column.
package gc

import (
	"errors"
	"fmt"
	"time"

	"pushpull/internal/atomicx"
	"pushpull/internal/core"
	"pushpull/internal/frontier"
	"pushpull/internal/graph"
	"pushpull/internal/sched"
)

// Options configures a coloring run.
type Options struct {
	core.Options
	// MaxIters bounds the conflict-resolution iterations L (default 64).
	MaxIters int
}

func (o *Options) defaults() {
	if o.MaxIters <= 0 {
		o.MaxIters = 64
	}
}

// Result carries the coloring and run metadata.
type Result struct {
	Colors     []int32
	Iterations int
	NumColors  int
	Stats      core.RunStats
	// Dirs records the direction of every iteration for the switching
	// strategies (Frontier-Exploit under Generic-Switch); fixed-direction
	// runs leave it nil and Stats.Direction is authoritative.
	Dirs []core.Direction
}

// bitrow is a growable bitset of forbidden colors for one vertex.
type bitrow []uint64

func (b *bitrow) set(c int32) {
	w := int(c) >> 6
	for len(*b) <= w {
		*b = append(*b, 0)
	}
	(*b)[w] |= 1 << (uint(c) & 63)
}

func (b bitrow) get(c int32) bool {
	w := int(c) >> 6
	return w < len(b) && b[w]&(1<<(uint(c)&63)) != 0
}

// smallestAllowed returns the smallest color not forbidden by the row and
// not present in taken (a scratch set of same-partition neighbor colors).
func smallestAllowed(row bitrow, taken map[int32]bool) int32 {
	for c := int32(0); ; c++ {
		if !row.get(c) && !taken[c] {
			return c
		}
	}
}

// state is the shared coloring state of one Boman run.
type state struct {
	g      *graph.CSR
	part   graph.Partition
	colors []int32
	avail  []bitrow
	// needs[v] marks vertices requiring (re)coloring in the next phase 1.
	needs *frontier.Bitmap
}

func newState(g *graph.CSR, part graph.Partition) *state {
	n := g.N()
	s := &state{
		g:      g,
		part:   part,
		colors: make([]int32, n),
		avail:  make([]bitrow, n),
		needs:  frontier.NewBitmap(n),
	}
	for i := range s.colors {
		s.colors[i] = -1
		s.needs.SetSeq(graph.V(i))
	}
	return s
}

// colorPartition is seq_color_partition of Algorithm 6: greedily color the
// vertices of one partition that need a color, respecting the avail matrix
// and the current colors of same-partition neighbors only.
func (s *state) colorPartition(w int) {
	lo, hi := s.part.Range(w)
	taken := map[int32]bool{}
	for v := lo; v < hi; v++ {
		if !s.needs.Get(v) {
			continue
		}
		clear(taken)
		for _, u := range s.g.Neighbors(v) {
			if s.part.Owner(u) == w && s.colors[u] >= 0 {
				taken[s.colors[u]] = true
			}
		}
		s.colors[v] = smallestAllowed(s.avail[v], taken)
	}
}

// Push runs Boman coloring with push-based conflict fixing: the thread
// scanning border vertex v writes the loser's avail row and dirty flag
// directly, so the next iteration only visits the exact dirty set.
func Push(g *graph.CSR, part graph.Partition, opt Options) (*Result, error) {
	return runBoman(g, part, opt, core.Push)
}

// Pull runs Boman coloring with pull-based conflict fixing: each thread
// only writes its own vertices' state, so it must rescan every border
// vertex every iteration to detect conflicts.
func Pull(g *graph.CSR, part graph.Partition, opt Options) (*Result, error) {
	return runBoman(g, part, opt, core.Pull)
}

func runBoman(g *graph.CSR, part graph.Partition, opt Options, dir core.Direction) (*Result, error) {
	opt.defaults()
	n := g.N()
	res := &Result{Colors: make([]int32, n)}
	res.Stats.Direction = dir
	if n == 0 {
		return res, nil
	}
	if int(part.NumV) != n {
		return nil, fmt.Errorf("gc: partition over %d vertices for a graph with %d", part.NumV, n)
	}
	s := newState(g, part)
	t := part.P
	pool := sched.NewPool(t)
	defer pool.Close()

	border := part.Border(g)
	// Pull threads may only touch their own vertices, so the pull scan is
	// the owner's slice of the border set — recomputed wholesale every
	// iteration because no one may tell a thread which neighbors changed.
	borderByOwner := make([][]graph.V, t)
	for _, v := range border {
		o := part.Owner(v)
		borderByOwner[o] = append(borderByOwner[o], v)
	}
	// Push, by contrast, maintains the exact dirty set: whoever forbids a
	// color also flags the victim for the next scan.
	dirty := border
	dirtyNext := frontier.NewPerThread(t)
	conflictCount := make([]int, t)
	// rowLocks guard the growable avail rows. Both variants acquire one
	// lock per conflict marking, reproducing Table 1's identical BGC lock
	// counts for push and pull.
	rowLocks := make([]atomicx.SpinLock, g.N())

	// Phase bodies hoisted out of the iteration loop so the steady state
	// does not allocate; dirty is captured by reference, so the per-round
	// reassignment below stays visible.
	colorPhase := func(w int) { s.colorPartition(w) }
	fixConflicts := func(w int) {
		mark := func(loser graph.V, c int32) {
			rowLocks[loser].Lock()
			s.avail[loser].set(c)
			rowLocks[loser].Unlock()
			if s.needs.Set(loser) && dir == core.Push {
				dirtyNext.Add(w, loser)
			}
		}
		if dir == core.Push {
			// Scan the dirty set; any thread may mark any loser.
			lo, hi := sched.BlockRange(len(dirty), t, w)
			for i := lo; i < hi; i++ {
				v := dirty[i]
				ov := part.Owner(v)
				cv := s.colors[v]
				for _, u := range g.Neighbors(v) {
					if part.Owner(u) == ov || s.colors[u] != cv {
						continue
					}
					conflictCount[w]++
					// Deterministic loser: the higher id — written
					// directly even when owned by another thread.
					if u > v {
						mark(u, cv) // W i in Algorithm 6
					} else {
						mark(v, cv)
					}
				}
			}
			return
		}
		// Pull: each thread scans only the border vertices it owns and
		// only ever modifies those.
		for _, v := range borderByOwner[w] {
			cv := s.colors[v]
			for _, u := range g.Neighbors(v) {
				if part.Owner(u) == w || s.colors[u] != cv {
					continue
				}
				conflictCount[w]++
				if v > u { // v loses: mark own state only
					mark(v, cv)
				}
			}
		}
	}

	for iter := 0; iter < opt.MaxIters; iter++ {
		if opt.Canceled() {
			res.Stats.Canceled = true
			break
		}
		start := time.Now()
		// Phase 1: color each partition independently.
		pool.Run(colorPhase)
		s.needs.Clear()

		// Phase 2: fix_conflicts over border vertices.
		for i := range conflictCount {
			conflictCount[i] = 0
		}
		pool.Run(fixConflicts)
		res.Iterations++
		el := time.Since(start)
		res.Stats.Record(el)
		opt.Tick(iter, el)

		total := 0
		for _, c := range conflictCount {
			total += c
		}
		if dir == core.Push {
			var merged frontier.Sparse
			dirtyNext.Merge(&merged)
			dirty = dedupe(merged.Vertices())
		}
		if total == 0 {
			break
		}
	}
	copy(res.Colors, s.colors)
	res.NumColors = CountColors(res.Colors)
	return res, nil
}

// dedupe removes duplicate vertices, preserving first-seen order.
func dedupe(vs []graph.V) []graph.V {
	seen := map[graph.V]bool{}
	out := vs[:0]
	for _, v := range vs {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// Greedy colors the whole graph with the optimized sequential greedy scheme
// — the baseline Greedy-Switch falls back to, and the CR border pass.
func Greedy(g *graph.CSR) *Result {
	n := g.N()
	res := &Result{Colors: make([]int32, n), Iterations: 1}
	for i := range res.Colors {
		res.Colors[i] = -1
	}
	start := time.Now()
	greedyColorSubset(g, res.Colors, nil)
	res.Stats.Record(time.Since(start))
	res.NumColors = CountColors(res.Colors)
	return res
}

// greedyColorSubset greedily colors the given vertices (nil = all, in id
// order) respecting all already-assigned neighbor colors.
func greedyColorSubset(g *graph.CSR, colors []int32, verts []graph.V) {
	taken := map[int32]bool{}
	colorOne := func(v graph.V) {
		if colors[v] >= 0 {
			return
		}
		clear(taken)
		for _, u := range g.Neighbors(v) {
			if colors[u] >= 0 {
				taken[colors[u]] = true
			}
		}
		for c := int32(0); ; c++ {
			if !taken[c] {
				colors[v] = c
				return
			}
		}
	}
	if verts == nil {
		for v := graph.V(0); v < g.NumV; v++ {
			colorOne(v)
		}
		return
	}
	for _, v := range verts {
		colorOne(v)
	}
}

// ConflictRemoval implements the CR strategy (§5, Algorithm 9): color the
// border set sequentially first, then color each partition in parallel —
// no cross-partition conflict can occur, so a single iteration suffices.
func ConflictRemoval(g *graph.CSR, part graph.Partition, opt Options) (*Result, error) {
	opt.defaults()
	n := g.N()
	res := &Result{Colors: make([]int32, n)}
	if n == 0 {
		return res, nil
	}
	if int(part.NumV) != n {
		return nil, fmt.Errorf("gc: partition over %d vertices for a graph with %d", part.NumV, n)
	}
	colors := make([]int32, n)
	for i := range colors {
		colors[i] = -1
	}
	start := time.Now()
	// Cancellation is polled between the two phases; a cancelled run
	// returns the partially-colored state (uncolored vertices stay -1).
	canceled := opt.Canceled()
	if !canceled {
		// seq_color_partition(B): border first, sequentially, conflict-free.
		greedyColorSubset(g, colors, part.Border(g))
		canceled = opt.Canceled()
	}
	if !canceled {
		// Then all partitions in parallel; border vertices are fixed,
		// interior vertices of different partitions are never adjacent.
		pool := sched.NewPool(part.P)
		defer pool.Close()
		pool.Run(func(w int) {
			lo, hi := part.Range(w)
			taken := map[int32]bool{}
			for v := lo; v < hi; v++ {
				if colors[v] >= 0 {
					continue
				}
				clear(taken)
				for _, u := range g.Neighbors(v) {
					if colors[u] >= 0 {
						taken[colors[u]] = true
					}
				}
				for c := int32(0); ; c++ {
					if !taken[c] {
						colors[v] = c
						break
					}
				}
			}
		})
	}
	res.Stats.Canceled = canceled
	res.Iterations = 1
	res.Stats.Record(time.Since(start))
	copy(res.Colors, colors)
	res.NumColors = CountColors(res.Colors)
	return res, nil
}

// Validate returns an error if the coloring is invalid: an uncolored vertex
// or a monochromatic edge.
func Validate(g *graph.CSR, colors []int32) error {
	if len(colors) != g.N() {
		return errors.New("gc: color array length mismatch")
	}
	for v := graph.V(0); v < g.NumV; v++ {
		if colors[v] < 0 {
			return fmt.Errorf("gc: vertex %d uncolored", v)
		}
		for _, u := range g.Neighbors(v) {
			if u != v && colors[u] == colors[v] {
				return fmt.Errorf("gc: edge (%d,%d) monochromatic (color %d)", v, u, colors[v])
			}
		}
	}
	return nil
}

// CountColors returns the number of distinct colors used.
func CountColors(colors []int32) int {
	seen := map[int32]bool{}
	for _, c := range colors {
		if c >= 0 {
			seen[c] = true
		}
	}
	return len(seen)
}
