package gc

import (
	"sort"
	"time"

	"pushpull/internal/core"
	"pushpull/internal/counters"
	"pushpull/internal/frontier"
	"pushpull/internal/graph"
	"pushpull/internal/memsim"
	"pushpull/internal/sched"
)

// Code regions for instruction-TLB modeling of the §5 strategies.
const (
	regionMIS = iota + 2 // continue after the Boman regions
	regionDiscover
	regionResolve
	regionCRBorder
	regionCRPartition
)

// feArrays bundles the modeled state of a Frontier-Exploit run.
type feArrays struct {
	off, adj, col, cand, inF memsim.Array
}

func feModel(g *graph.CSR, space *memsim.AddressSpace) feArrays {
	if space == nil {
		space = &memsim.AddressSpace{}
	}
	return feArrays{
		off:  space.NewArray(g.N()+1, 8),
		adj:  space.NewArray(int(g.M()), 4),
		col:  space.NewArray(g.N(), 4),
		cand: space.NewArray(g.N(), 1),
		inF:  space.NewArray(g.N(), 1),
	}
}

// profiledGreedySubset charges the sequential greedy coloring pass (the
// Greedy-Switch fallback and the isolated-leftover tail) to probe p.
func profiledGreedySubset(g *graph.CSR, colors []int32, p counters.Probe, a feArrays) {
	taken := map[int32]bool{}
	for v := graph.V(0); v < g.NumV; v++ {
		p.Read(a.col.Addr(int64(v)), 4)
		p.Branch(colors[v] >= 0)
		if colors[v] >= 0 {
			continue
		}
		clear(taken)
		p.Read(a.off.Addr(int64(v)), 8)
		offs := g.Offsets[v]
		for j, u := range g.Neighbors(v) {
			p.Branch(true)
			p.Read(a.adj.Addr(offs+int64(j)), 4)
			p.Read(a.col.Addr(int64(u)), 4)
			if colors[u] >= 0 {
				taken[colors[u]] = true
			}
		}
		for c := int32(0); ; c++ {
			if !taken[c] {
				colors[v] = c
				p.Write(a.col.Addr(int64(v)), 4)
				break
			}
		}
	}
}

// FrontierExploitProfiled runs the FE strategy (§5) deterministically under
// the probes, with the same policy steering as FrontierExploit: push-side
// candidate discovery charges an atomic claim per first touch of an
// uncolored neighbor, pull-side discovery charges only reads plus the
// owner's plain candidate write. Result.Dirs records the direction of every
// iteration, so a Generic-Switch flip is visible in the trace.
//
// Both the instrumented and the fast variant resolve candidates in
// canonical id order, so the probed coloring equals the uninstrumented
// run's exactly.
func FrontierExploitProfiled(g *graph.CSR, opt Options, dir core.Direction, policy core.SwitchPolicy, prof core.Profile, space *memsim.AddressSpace) (*Result, error) {
	return frontierExploitProfiled(g, nil, opt, dir, policy, prof, space)
}

// FrontierExploitHubProfiled runs the hub-cached FE strategy under the
// probes: pull-round hub probes charge one read into the k-bit frontier
// cache instead of a random bitmap byte, after a per-round refresh charged
// to probe 0. The coloring equals FrontierExploitHub's (and so the plain
// FE variants') exactly.
func FrontierExploitHubProfiled(g *graph.CSR, hs *graph.HubSplit, opt Options, dir core.Direction, policy core.SwitchPolicy, prof core.Profile, space *memsim.AddressSpace) (*Result, error) {
	return frontierExploitProfiled(g, hs, opt, dir, policy, prof, space)
}

func frontierExploitProfiled(g *graph.CSR, hs *graph.HubSplit, opt Options, dir core.Direction, policy core.SwitchPolicy, prof core.Profile, space *memsim.AddressSpace) (*Result, error) {
	opt.defaults()
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	if policy == nil {
		policy = core.NeverSwitch{}
	}
	n := g.N()
	res := &Result{Colors: make([]int32, n)}
	res.Stats.Direction = dir
	if n == 0 {
		return res, nil
	}
	if space == nil {
		space = &memsim.AddressSpace{}
	}
	a := feModel(g, space)
	var hubF *hubFrontier
	var hubFA memsim.Array
	if hs != nil {
		hubF = newHubFrontier(hs)
		hubFA = space.NewArray((hs.K+63)/64, 8)
	}
	colors := make([]int32, n)
	for i := range colors {
		colors[i] = -1
	}
	t := prof.Threads

	// Round 0: greedy maximal independent set, colored c₀ = 0. The scan is
	// inherently sequential; its events are charged to probe 0.
	start := time.Now()
	p0 := prof.Probes[0]
	p0.Exec(regionMIS)
	inF := frontier.NewBitmap(n)
	var f []graph.V
	for v := graph.V(0); v < g.NumV; v++ {
		ok := true
		p0.Read(a.off.Addr(int64(v)), 8)
		offs := g.Offsets[v]
		for j, u := range g.Neighbors(v) {
			p0.Branch(true)
			p0.Read(a.adj.Addr(offs+int64(j)), 4)
			p0.Read(a.inF.Addr(int64(u)), 1)
			if inF.Get(u) {
				ok = false
				break
			}
		}
		if ok {
			inF.SetSeq(v)
			colors[v] = 0
			p0.Write(a.inF.Addr(int64(v)), 1)
			p0.Write(a.col.Addr(int64(v)), 4)
			f = append(f, v)
		}
	}
	colored := len(f)
	nextColor := int32(1)
	res.Iterations++
	res.Dirs = append(res.Dirs, dir)
	res.Stats.Record(time.Since(start))
	opt.Tick(0, res.Stats.PerIteration[0])

	progress, conflicts := colored, 0
	candMark := frontier.NewBitmap(n)

	// Round-scoped buffers hoisted out of the iteration loop and reused:
	// their contents are copied into f and colors before each reset, so
	// truncation never aliases live data.
	perThread := make([][]graph.V, t)
	var cands []graph.V
	byID := func(i, j int) bool { return cands[i] < cands[j] }

	for colored < n && res.Iterations < opt.MaxIters {
		start = time.Now()
		switch policy.Decide(res.Iterations, progress, conflicts, n-colored) {
		case core.SwitchDirection:
			if dir == core.Push {
				dir = core.Pull
			} else {
				dir = core.Push
			}
		case core.GoSequential:
			p0.Exec(regionResolve)
			profiledGreedySubset(g, colors, p0, a)
			colored = n
			res.Iterations++
			res.Dirs = append(res.Dirs, dir)
			el := time.Since(start)
			res.Stats.Record(el)
			opt.Tick(res.Iterations-1, el)
			continue
		}

		// Candidate discovery (deterministic worker order).
		candMark.Clear()
		for w := range perThread {
			perThread[w] = perThread[w][:0]
		}
		if dir == core.Push {
			for w := 0; w < t; w++ {
				p := prof.Probes[w]
				p.Exec(regionDiscover)
				lo, hi := sched.BlockRange(len(f), t, w)
				for i := lo; i < hi; i++ {
					v := f[i]
					p.Read(a.off.Addr(int64(v)), 8)
					offs := g.Offsets[v]
					for j, u := range g.Neighbors(v) {
						p.Branch(true)
						p.Read(a.adj.Addr(offs+int64(j)), 4)
						p.Read(a.col.Addr(int64(u)), 4)
						if colors[u] >= 0 {
							continue
						}
						p.Atomic(a.cand.Addr(int64(u)), 1) // claim (W i)
						p.Jump()
						if candMark.Set(u) {
							perThread[w] = append(perThread[w], u)
						}
					}
				}
			}
		} else if hubF != nil {
			// Hub-cached pull discovery: refresh the k-bit cache (probe 0
			// prologue), then probe hub slots in the cache and residuals in
			// the full bitmap. Same candidate set as the plain pull scan.
			p0.Exec(regionHubDiscover)
			hubF.refresh(inF)
			for sl := range hs.Hubs {
				p0.Read(a.inF.Addr(int64(hs.Hubs[sl])), 1)
			}
			for i := range hubF.words {
				p0.Write(hubFA.Addr(int64(i)), 8)
			}
			for w := 0; w < t; w++ {
				p := prof.Probes[w]
				p.Exec(regionHubDiscover)
				lo, hi := sched.BlockRange(n, t, w)
				for vi := lo; vi < hi; vi++ {
					v := graph.V(vi)
					p.Read(a.col.Addr(int64(vi)), 4)
					p.Branch(colors[v] >= 0)
					if colors[v] >= 0 {
						continue
					}
					p.Read(a.off.Addr(int64(vi)), 8)
					offs := g.Offsets[v]
					found := false
					for j, sl := range hs.HubRow(v) {
						p.Branch(true)
						p.Read(a.adj.Addr(offs+int64(j)), 4)
						p.Read(hubFA.Addr(int64(sl>>6)), 8) // cache-resident probe
						if hubF.get(sl) {
							found = true
							break
						}
					}
					if !found {
						resBase := hs.HubEnd[v]
						for j, u := range hs.ResidualRow(v) {
							p.Branch(true)
							p.Read(a.adj.Addr(resBase+int64(j)), 4)
							p.Read(a.inF.Addr(int64(u)), 1)
							if inF.Get(u) {
								found = true
								break
							}
						}
					}
					if found {
						candMark.SetSeq(v)
						p.Write(a.cand.Addr(int64(vi)), 1) // own vertex
						perThread[w] = append(perThread[w], v)
					}
				}
			}
		} else {
			for w := 0; w < t; w++ {
				p := prof.Probes[w]
				p.Exec(regionDiscover)
				lo, hi := sched.BlockRange(n, t, w)
				for vi := lo; vi < hi; vi++ {
					v := graph.V(vi)
					p.Read(a.col.Addr(int64(vi)), 4)
					p.Branch(colors[v] >= 0)
					if colors[v] >= 0 {
						continue
					}
					p.Read(a.off.Addr(int64(vi)), 8)
					offs := g.Offsets[v]
					for j, u := range g.Neighbors(v) {
						p.Branch(true)
						p.Read(a.adj.Addr(offs+int64(j)), 4)
						p.Read(a.inF.Addr(int64(u)), 1)
						if inF.Get(u) {
							candMark.SetSeq(v)
							p.Write(a.cand.Addr(int64(vi)), 1) // own vertex
							perThread[w] = append(perThread[w], v)
							break
						}
					}
				}
			}
		}
		cands = cands[:0]
		for w := 0; w < t; w++ {
			cands = append(cands, perThread[w]...)
		}
		// Same canonical id order as the fast variant, so the probed
		// coloring equals the uninstrumented one exactly.
		sort.Slice(cands, byID)

		// Deterministic conflict resolution (sequential, charged to probe 0
		// like the MIS pass): a candidate takes the round's color cᵢ unless
		// a same-round winner neighbor already holds it; then it defers to
		// the next round, exactly as the fast variant does.
		p0.Exec(regionResolve)
		ci := nextColor
		conflicts = 0
		winners := cands[:0]
		for _, v := range cands {
			ok := true
			offs := g.Offsets[v]
			for j, u := range g.Neighbors(v) {
				p0.Branch(true)
				p0.Read(a.adj.Addr(offs+int64(j)), 4)
				p0.Read(a.col.Addr(int64(u)), 4)
				if colors[u] == ci {
					ok = false
					break
				}
			}
			if !ok {
				conflicts++
				continue
			}
			colors[v] = ci
			p0.Write(a.col.Addr(int64(v)), 4)
			winners = append(winners, v)
		}
		nextColor = ci + 1
		colored += len(winners)
		progress = len(winners)

		// New frontier = this round's winners.
		inF.Clear()
		f = append(f[:0], winners...)
		for _, v := range winners {
			inF.SetSeq(v)
			p0.Write(a.inF.Addr(int64(v)), 1)
		}

		res.Iterations++
		res.Dirs = append(res.Dirs, dir)
		el := time.Since(start)
		res.Stats.Record(el)
		opt.Tick(res.Iterations-1, el)
		if progress == 0 {
			// Isolated leftovers: finish them greedily.
			profiledGreedySubset(g, colors, p0, a)
			colored = n
		}
	}
	if colored < n {
		// MaxIters cut the run short: same greedy-finish iteration as the
		// fast variant, so the probed coloring stays valid and equal.
		start = time.Now()
		p0.Exec(regionResolve)
		profiledGreedySubset(g, colors, p0, a)
		res.Iterations++
		res.Dirs = append(res.Dirs, dir)
		el := time.Since(start)
		res.Stats.Record(el)
		opt.Tick(res.Iterations-1, el)
	}
	copy(res.Colors, colors)
	res.NumColors = CountColors(res.Colors)
	res.Stats.Direction = dir
	return res, nil
}

// ConflictRemovalProfiled runs the CR strategy (§5, Algorithm 9) under the
// probes: the sequential border pass is charged to probe 0, the parallel
// partition pass to each owner. The coloring equals the uninstrumented
// ConflictRemoval exactly (both are deterministic given the partition).
func ConflictRemovalProfiled(g *graph.CSR, part graph.Partition, opt Options, prof core.Profile, space *memsim.AddressSpace) (*Result, error) {
	opt.defaults()
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	if part.P != prof.Threads {
		part = graph.NewPartition(g.N(), prof.Threads)
	}
	n := g.N()
	res := &Result{}
	res.Colors = make([]int32, n)
	if n == 0 {
		return res, nil
	}
	a := feModel(g, space)
	colors := make([]int32, n)
	for i := range colors {
		colors[i] = -1
	}
	start := time.Now()

	// seq_color_partition(B): border first, sequentially, conflict-free.
	p0 := prof.Probes[0]
	p0.Exec(regionCRBorder)
	taken := map[int32]bool{}
	colorOne := func(p counters.Probe, v graph.V) {
		p.Read(a.col.Addr(int64(v)), 4)
		p.Branch(colors[v] >= 0)
		if colors[v] >= 0 {
			return
		}
		clear(taken)
		p.Read(a.off.Addr(int64(v)), 8)
		offs := g.Offsets[v]
		for j, u := range g.Neighbors(v) {
			p.Branch(true)
			p.Read(a.adj.Addr(offs+int64(j)), 4)
			p.Read(a.col.Addr(int64(u)), 4)
			if colors[u] >= 0 {
				taken[colors[u]] = true
			}
		}
		for c := int32(0); ; c++ {
			if !taken[c] {
				colors[v] = c
				p.Write(a.col.Addr(int64(v)), 4)
				break
			}
		}
	}
	for _, v := range part.Border(g) {
		colorOne(p0, v)
	}
	// Then all partitions in parallel; border vertices are fixed, interior
	// vertices of different partitions are never adjacent.
	for w := 0; w < part.P; w++ {
		p := prof.Probes[w]
		p.Exec(regionCRPartition)
		lo, hi := part.Range(w)
		for v := lo; v < hi; v++ {
			colorOne(p, v)
		}
	}
	res.Iterations = 1
	res.Stats.Record(time.Since(start))
	copy(res.Colors, colors)
	res.NumColors = CountColors(res.Colors)
	return res, nil
}
